#!/usr/bin/env python3
"""Assert the machine-readable bench reports, and smoke-test batch resume.

Assert mode (used by CI and by hand after `dune exec bench/main.exe`):

    tools/check_bench.py BENCH_parallel.json --min-jobs 4 \
        --min-speedup 2.0 --max-minor-words ac-sweep=400
    tools/check_bench.py BENCH_batch.json --min-jobs 2 \
        --min-batch-speedup 1.0 --max-batch-minor-words 4e6

dispatches on the report's "experiment" field:
  parallel: every bench must be bit-identical between jobs=1 and every
            measured worker count, the best speedup must clear
            --min-speedup (default 1.0), any bench named in
            --max-minor-words must stay under its minor-allocation cap
            (words per solve, measured at --jobs 1), and any bench named
            in --min-curve-speedup must clear that floor at every point
            of its speedups_by_jobs curve;
            both parallel and batch reports must have been timed over at
            least --min-repeats repeated runs (median reported);
  batch:    every job either completes or is prefiltered as provably
            infeasible (completed + prefiltered_jobs == n_jobs), at least
            --min-prefiltered jobs must have been prefiltered, the journal
            must be byte-identical between sequential and parallel runs
            and across a resume from a torn journal, parallel throughput
            must clear --min-batch-speedup, per-job allocation must
            stay under --max-batch-minor-words when given, and the
            stage_cache section must clear --min-cache-hit-rate /
            --min-cache-speedup when given (with cached and uncached
            journals byte-identical);
  serve:    the HTTP service's journal must be byte-identical to the
            sequential batch reference, the drain must have finished every
            accepted job, the read path must clear --min-rps and
            --max-p99-ms, and the capacity-1 burst must have shed at least
            --min-queue-full requests with 429 (proof the queue bound is
            enforced, not absorbed).

Speedup targets assume the host can scale: when a report's host_cores is
below --min-jobs the scaling gates degrade (loudly) to --no-slowdown-floor,
so the committed single-core BENCH files stay honest while multi-core CI
enforces the full targets.  Cache gates never degrade -- avoided work is
avoided on any host.

Smoke mode drives the real `msyn batch` CLI through an interruption:

    tools/check_bench.py --smoke examples/batch_manifest.jsonl \
        --msyn _build/default/bin/msyn.exe --jobs 4 \
        --expect-failed inject-raise --expect-timed-out inject-hang \
        --expect-infeasible infeasible-gain

It runs the manifest to completion at --jobs 1, then runs it again at
--jobs N, SIGKILLs that run mid-flight, appends a torn half-record to the
journal, resumes, and demands the resumed journal be byte-identical to the
uninterrupted one.  --expect-failed/--expect-timed-out assert the status
the named jobs must land on.
"""

import argparse
import json
import os
import shlex
import signal
import subprocess
import sys
import tempfile
import time


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


# ---------------------------------------------------------------- assert mode


def parse_word_caps(pairs):
    """--max-minor-words NAME=WORDS pairs -> {name: words}"""
    caps = {}
    for pair in pairs:
        name, sep, words = pair.partition("=")
        if not sep:
            fail(f"--max-minor-words wants NAME=WORDS, got {pair!r}")
        caps[name] = float(words)
    return caps


def check_repeats(report, args):
    repeats = report.get("repeats", 1)
    if repeats < args.min_repeats:
        fail(
            f"bench timed over {repeats} repeat(s), need >= {args.min_repeats} "
            f"(set MIXSYN_BENCH_REPEATS and rerun)"
        )


def scaling_gate(report, args, want, what):
    """A speedup target only makes sense when the host has the cores to
    scale onto.  The BENCH reports record host_cores for exactly this
    reconciliation: on an under-provisioned host the gate degrades --
    loudly -- to the no-slowdown floor, so a laptop or 1-core container
    can still run the checks while multi-core CI enforces the real
    target.  A report without host_cores predates the field and is held
    to the full target."""
    host = report.get("host_cores")
    if host is not None and host < args.min_jobs:
        floor = min(want, args.no_slowdown_floor)
        print(
            f"WARNING: host has {host} core(s) but the gate asks for "
            f"{args.min_jobs} workers; {what} target degraded from {want}x "
            f"to the no-slowdown floor {floor}x (the full target is "
            f"enforced on multi-core CI)",
            file=sys.stderr,
        )
        return floor
    return want


def check_parallel(report, args):
    if report["jobs"] < args.min_jobs:
        fail(f"parallel bench ran at {report['jobs']} jobs, need >= {args.min_jobs}")
    check_repeats(report, args)
    caps = parse_word_caps(args.max_minor_words)
    curve_floors = parse_word_caps(args.min_curve_speedup)
    for b in report["benches"]:
        if not b["identical"]:
            fail(f"parallel result diverged: {b}")
        cap = caps.pop(b["name"], None)
        if cap is not None:
            words = b.get("minor_words_per_item")
            if words is None:
                fail(f"{b['name']}: no minor_words_per_item in report; rerun the bench")
            if words > cap:
                fail(
                    f"{b['name']} allocates {words} minor words/item, "
                    f"cap is {cap} (allocation regression in the solve kernels?)"
                )
        floor = curve_floors.pop(b["name"], None)
        if floor is not None:
            points = b.get("speedups_by_jobs")
            if not points:
                fail(f"{b['name']}: no speedups_by_jobs curve in report; rerun the bench")
            for pt in points:
                if pt["speedup"] < floor:
                    fail(
                        f"{b['name']} slowed down at jobs={pt['jobs']}: "
                        f"{pt['speedup']}x, floor is {floor}x (parallel must "
                        f"never lose to sequential at any worker count)"
                    )
    if caps:
        fail(f"--max-minor-words names unknown benches: {sorted(caps)}")
    if curve_floors:
        fail(f"--min-curve-speedup names unknown benches: {sorted(curve_floors)}")
    min_speedup = scaling_gate(report, args, args.min_speedup, "parallel speedup")
    if report["best_speedup"] < min_speedup:
        fail(f"no speedup at {report['jobs']} jobs: {report}")
    print(f"ok: best speedup {report['best_speedup']}x at {report['jobs']} jobs")


def check_batch(report, args):
    if report["jobs"] < args.min_jobs:
        fail(f"batch bench ran at {report['jobs']} jobs, need >= {args.min_jobs}")
    check_repeats(report, args)
    prefiltered = report.get("prefiltered_jobs", 0)
    if report["completed"] + prefiltered != report["n_jobs"]:
        fail(
            f"only {report['completed']} completed + {prefiltered} prefiltered "
            f"of {report['n_jobs']} batch jobs"
        )
    if prefiltered < args.min_prefiltered:
        fail(
            f"only {prefiltered} jobs prefiltered as infeasible, "
            f"need >= {args.min_prefiltered} (is the static prefilter wired in?)"
        )
    if not report["identical"]:
        fail("batch journal differs between sequential and parallel runs")
    if not report["resume_identical"]:
        fail("batch journal differs after resuming from a torn journal")
    if report["resume_skipped"] <= 0:
        fail("batch resume re-ran every job; the checkpoint was ignored")
    min_batch = scaling_gate(report, args, args.min_batch_speedup, "batch throughput")
    if report["speedup"] < min_batch:
        fail(
            f"batch throughput gained only {report['speedup']}x at "
            f"{report['jobs']} workers, need >= {min_batch}"
        )
    if args.min_cache_hit_rate is not None or args.min_cache_speedup is not None:
        cache = report.get("stage_cache")
        if cache is None:
            fail("no stage_cache section in report; rerun the bench")
        if not cache.get("identical", False):
            fail("batch journal differs with the stage cache on vs off")
        if (
            args.min_cache_hit_rate is not None
            and cache["hit_rate"] < args.min_cache_hit_rate
        ):
            fail(
                f"stage-cache hit rate {cache['hit_rate']} on the repeated-spec "
                f"manifest, need >= {args.min_cache_hit_rate}"
            )
        # cache wins come from work avoided, not from extra cores, so this
        # gate holds on any host and is never degraded
        if (
            args.min_cache_speedup is not None
            and cache["speedup"] < args.min_cache_speedup
        ):
            fail(
                f"stage cache sped the repeated-spec manifest up only "
                f"{cache['speedup']}x, need >= {args.min_cache_speedup}"
            )
    if args.max_batch_minor_words is not None:
        words = report.get("minor_words_per_job")
        if words is None:
            fail("no minor_words_per_job in report; rerun the bench")
        if words > args.max_batch_minor_words:
            fail(
                f"batch jobs allocate {words} minor words each, "
                f"cap is {args.max_batch_minor_words}"
            )
    print(
        f"ok: {report['n_jobs']} jobs ({prefiltered} prefiltered), "
        f"{report['jobs_per_s']} jobs/s at "
        f"{report['jobs']} workers, journals identical (resume skipped "
        f"{report['resume_skipped']})"
    )


def check_serve(report, args):
    if not report["journal_identical"]:
        fail("serve journal differs from the sequential batch reference")
    if not report["drained"]:
        fail("serve drain left accepted jobs unfinished")
    # latency gates are absolute, not scaling gates: a 1-core host still
    # answers loopback status reads quickly, so these never degrade
    if report["rps"] < args.min_rps:
        fail(
            f"serve read path managed {report['rps']} requests/s, "
            f"need >= {args.min_rps}"
        )
    if args.max_p99_ms is not None and report["p99_ms"] > args.max_p99_ms:
        fail(
            f"serve p99 latency {report['p99_ms']} ms over the "
            f"{args.max_p99_ms} ms cap (p50 {report['p50_ms']} ms)"
        )
    if report["queue_full_429"] < args.min_queue_full:
        fail(
            f"the capacity-1 burst drew only {report['queue_full_429']} "
            f"429(s), need >= {args.min_queue_full} (is the queue bound "
            f"enforced?)"
        )
    print(
        f"ok: {report['rps']} req/s (p50 {report['p50_ms']} ms, "
        f"p99 {report['p99_ms']} ms), {report['n_jobs']} jobs byte-identical, "
        f"{report['queue_full_429']} queue-full 429(s)"
    )


CHECKS = {"parallel": check_parallel, "batch": check_batch, "serve": check_serve}


def run_assert(args):
    for path in args.reports:
        with open(path) as f:
            report = json.load(f)
        experiment = report.get("experiment")
        if experiment not in CHECKS:
            fail(f"{path}: unknown experiment {experiment!r}")
        print(f"{path}: ", end="")
        CHECKS[experiment](report, args)


# ----------------------------------------------------------------- smoke mode


def read_records(journal):
    records = {}
    with open(journal) as f:
        for line in f:
            line = line.strip()
            if line:
                r = json.loads(line)
                records[r["id"]] = r
    return records


def check_expectations(records, args):
    for job_id in args.expect_failed:
        status = records.get(job_id, {}).get("status")
        if status != "failed":
            fail(f"job {job_id} should be failed, is {status!r}")
    for job_id in args.expect_timed_out:
        status = records.get(job_id, {}).get("status")
        if status != "timed_out":
            fail(f"job {job_id} should be timed_out, is {status!r}")
    for job_id in args.expect_infeasible:
        record = records.get(job_id, {})
        if record.get("status") != "infeasible":
            fail(f"job {job_id} should be infeasible, is {record.get('status')!r}")
        if record.get("attempts") != 0 or "spec" not in record or "bound" not in record:
            fail(f"infeasible record for {job_id} is malformed: {record}")


def run_smoke(args):
    msyn = shlex.split(args.msyn)
    workdir = tempfile.mkdtemp(prefix="msyn_smoke_")
    ja = os.path.join(workdir, "reference.journal")
    jb = os.path.join(workdir, "interrupted.journal")

    def batch(journal, jobs, check=True):
        cmd = msyn + ["batch", args.manifest, "--journal", journal, "--jobs", str(jobs)]
        proc = subprocess.run(cmd)
        if check and proc.returncode != 0:
            fail(f"{' '.join(cmd)} exited {proc.returncode}")

    print(f"smoke: reference run at --jobs 1 -> {ja}")
    batch(ja, 1)
    reference = read_records(ja)
    check_expectations(reference, args)

    print(f"smoke: interrupted run at --jobs {args.jobs} -> {jb}")
    cmd = msyn + ["batch", args.manifest, "--journal", jb, "--jobs", str(args.jobs)]
    proc = subprocess.Popen(cmd, start_new_session=True)
    # let it record at least one job, then kill the whole process group
    deadline = time.time() + args.kill_timeout
    while time.time() < deadline and proc.poll() is None:
        if os.path.exists(jb) and open(jb).read().count("\n") >= 1:
            break
        time.sleep(0.1)
    if proc.poll() is None:
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait()
        print(f"smoke: killed after {open(jb).read().count(chr(10))} record(s)")
    else:
        print("smoke: run finished before the kill; resume will be a no-op check")
    # simulate a record torn mid-write by the kill
    with open(jb, "a") as f:
        f.write('{"id":"torn-by-kill","seed":1,"att')

    print("smoke: resuming")
    batch(jb, args.jobs)
    a, b = open(ja, "rb").read(), open(jb, "rb").read()
    if a != b:
        fail(f"resumed journal {jb} differs from uninterrupted {ja}")
    check_expectations(read_records(jb), args)
    print(
        f"ok: resumed journal byte-identical ({len(b)} bytes, "
        f"{len(read_records(jb))} records)"
    )


# ------------------------------------------------------------------------ cli


def main():
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("reports", nargs="*", help="BENCH_*.json files to assert")
    p.add_argument("--min-jobs", type=int, default=1)
    p.add_argument("--min-repeats", type=int, default=1,
                   help="require the report's timings to be medians over at "
                        "least this many repeats")
    p.add_argument("--min-speedup", type=float, default=1.0,
                   help="parallel: required best speedup over --jobs 1")
    p.add_argument("--min-batch-speedup", type=float, default=0.0,
                   help="batch: required parallel-over-sequential throughput gain")
    p.add_argument("--max-minor-words", action="append", default=[],
                   metavar="NAME=WORDS",
                   help="parallel: cap minor words/item for the named bench "
                        "(e.g. ac-sweep=400); repeatable")
    p.add_argument("--max-batch-minor-words", type=float, default=None,
                   metavar="WORDS", help="batch: cap minor words per job")
    p.add_argument("--min-curve-speedup", action="append", default=[],
                   metavar="NAME=SPEEDUP",
                   help="parallel: floor for every point of the named bench's "
                        "speedups_by_jobs curve (e.g. ac-sweep=0.9); repeatable")
    p.add_argument("--min-cache-hit-rate", type=float, default=None,
                   metavar="RATE",
                   help="batch: required stage-cache hit rate on the "
                        "repeated-spec manifest (0..1)")
    p.add_argument("--min-cache-speedup", type=float, default=None,
                   metavar="SPEEDUP",
                   help="batch: required cached-over-uncached speedup on the "
                        "repeated-spec manifest")
    p.add_argument("--min-rps", type=float, default=0.0,
                   help="serve: required read-path requests/s")
    p.add_argument("--max-p99-ms", type=float, default=None,
                   help="serve: cap on read-path p99 latency in ms")
    p.add_argument("--min-queue-full", type=int, default=1,
                   help="serve: required 429 count from the capacity-1 burst")
    p.add_argument("--no-slowdown-floor", type=float, default=0.9,
                   help="degraded speedup gate applied when the host has "
                        "fewer cores than --min-jobs (see the BENCH reports' "
                        "host_cores field)")
    p.add_argument("--min-prefiltered", type=int, default=0,
                   help="batch: require at least this many jobs skipped as "
                        "provably infeasible by the static prefilter")
    p.add_argument("--smoke", metavar="MANIFEST", dest="manifest",
                   help="run the kill/resume smoke against this manifest")
    p.add_argument("--msyn", default="_build/default/bin/msyn.exe",
                   help="msyn command for --smoke (shell-split)")
    p.add_argument("--jobs", type=int, default=4,
                   help="worker count for the interrupted smoke run")
    p.add_argument("--kill-timeout", type=float, default=300.0,
                   help="give up waiting for the first record after this long")
    p.add_argument("--expect-failed", action="append", default=[], metavar="ID")
    p.add_argument("--expect-timed-out", action="append", default=[], metavar="ID")
    p.add_argument("--expect-infeasible", action="append", default=[], metavar="ID")
    args = p.parse_args()
    if not args.reports and not args.manifest:
        p.error("nothing to do: pass BENCH_*.json files and/or --smoke MANIFEST")
    if args.reports:
        run_assert(args)
    if args.manifest:
        run_smoke(args)


if __name__ == "__main__":
    main()
