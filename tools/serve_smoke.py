#!/usr/bin/env python3
"""End-to-end smoke for `msyn serve`: the CI-gated service contract.

    tools/serve_smoke.py examples/batch_manifest.jsonl \
        --msyn _build/default/bin/msyn.exe --workers 4

Three phases, each against a real `msyn serve` process over loopback HTTP:

A. Fresh service: boot on an ephemeral port, health-check, reject a
   malformed body (400) and an unknown route (404), submit every manifest
   job, poll to completion, fetch each result and demand it byte-match
   the corresponding line of a sequential `msyn batch` reference journal,
   read /metrics, then SIGTERM and assert a graceful drain (exit 0, every
   accepted job journalled, journal byte-identical to the reference).

B. Torn-journal resume: a journal holding a prefix of the reference plus
   a line torn mid-write -- what SIGKILL during an append leaves -- must
   boot, answer resubmissions of recorded jobs idempotently (200, no
   re-execution), execute the rest, and finish byte-identical again.

C. Drain semantics: while a deliberately slow job pins the server open,
   POST /drain must stop admissions (503 for new submissions) while
   status reads keep answering, and the process must exit 0 once the
   pinned job finishes.
"""

import argparse
import json
import os
import shlex
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def manifest_jobs(path):
    """The manifest's job lines, in order, as (id, line) pairs."""
    jobs = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            jobs.append((json.loads(line)["id"], line))
    return jobs


def journal_lines(path):
    """Journal records keyed by id, each the exact bytes of its line."""
    records = {}
    with open(path, "rb") as f:
        for raw in f.read().split(b"\n"):
            if raw:
                records[json.loads(raw)["id"]] = raw
    return records


class Server:
    """One `msyn serve` process on an ephemeral port."""

    def __init__(self, msyn, journal, extra=()):
        self.proc = subprocess.Popen(
            msyn + ["serve", journal, "--port", "0"] + list(extra),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self.port = None
        deadline = time.time() + 60
        while time.time() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            if "listening on http://" in line:
                self.port = int(line.rsplit(":", 1)[1])
                break
        if self.port is None:
            self.proc.kill()
            fail("msyn serve never announced its port")

    def req(self, method, path, body=None):
        """One request; returns (status, parsed-or-raw body, raw bytes)."""
        r = urllib.request.Request(
            f"http://127.0.0.1:{self.port}{path}",
            data=body.encode() if body is not None else None,
            method=method,
        )
        try:
            with urllib.request.urlopen(r, timeout=60) as resp:
                raw = resp.read()
                status = resp.status
        except urllib.error.HTTPError as e:
            raw = e.read()
            status = e.code
        try:
            return status, json.loads(raw), raw
        except ValueError:
            return status, None, raw

    def poll_done(self, job_id, deadline_s=600):
        deadline = time.time() + deadline_s
        while time.time() < deadline:
            status, body, _ = self.req("GET", f"/jobs/{job_id}")
            if status != 200:
                fail(f"status of {job_id}: HTTP {status}")
            if body["state"] not in ("queued", "running"):
                return body["state"]
            time.sleep(0.1)
        fail(f"job {job_id} never finished")

    def finish(self, sig=None, timeout=600):
        """Drain (by signal, or assume a drain was already requested) and
        return (exit code, remaining stdout)."""
        if sig is not None:
            self.proc.send_signal(sig)
        try:
            out, _ = self.proc.communicate(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            fail("msyn serve did not exit after drain")
        return self.proc.returncode, out


def phase_a(args, jobs, reference):
    print(f"serve smoke A: fresh service, {len(jobs)} jobs")
    journal = tempfile.mktemp(prefix="msyn_serve_smoke_a", suffix=".journal")
    srv = Server(args.msyn_argv, journal, args.serve_args)

    status, body, _ = srv.req("GET", "/healthz")
    if status != 200 or body.get("status") != "ok":
        fail(f"healthz: HTTP {status} {body}")
    status, _, _ = srv.req("POST", "/jobs", "this is not json")
    if status != 400:
        fail(f"malformed submit drew HTTP {status}, want 400")
    status, _, _ = srv.req("GET", "/no/such/route")
    if status != 404:
        fail(f"unknown route drew HTTP {status}, want 404")

    for _, line in jobs:
        status, _, _ = srv.req("POST", "/jobs", line)
        if status != 202:
            fail(f"submit drew HTTP {status}, want 202: {line}")
    for job_id, _ in jobs:
        srv.poll_done(job_id)
    for job_id, _ in jobs:
        status, _, raw = srv.req("GET", f"/jobs/{job_id}/result")
        if status != 200:
            fail(f"result of {job_id}: HTTP {status}")
        if raw != reference[job_id]:
            fail(
                f"result of {job_id} differs from the batch journal line:\n"
                f"  serve: {raw!r}\n  batch: {reference[job_id]!r}"
            )

    status, metrics, _ = srv.req("GET", "/metrics")
    if status != 200:
        fail(f"metrics: HTTP {status}")
    if metrics["jobs"]["finished"] != len(jobs):
        fail(f"metrics says {metrics['jobs']['finished']} finished, want {len(jobs)}")
    for key in ("stage_cache", "worker_busy_s", "telemetry"):
        if key not in metrics:
            fail(f"metrics lacks {key!r}: {sorted(metrics)}")

    code, out = srv.finish(sig=signal.SIGTERM)
    if code != 0:
        fail(f"SIGTERM drain exited {code}:\n{out}")
    if "drained" not in out:
        fail(f"no drain report in serve output:\n{out}")
    served = journal_lines(journal)
    if served != reference:
        fail("serve journal differs from the sequential batch reference")
    os.remove(journal)
    print(f"serve smoke A ok: {len(jobs)} results byte-identical, graceful drain")


def phase_b(args, jobs, reference, ref_path):
    print("serve smoke B: torn-journal resume")
    with open(ref_path, "rb") as f:
        ref_bytes = f.read()
    lines = ref_bytes.split(b"\n")
    keep = len(jobs) // 2
    torn = b"\n".join(lines[:keep]) + b"\n" + lines[keep][: max(1, len(lines[keep]) // 2)]
    journal = tempfile.mktemp(prefix="msyn_serve_smoke_b", suffix=".journal")
    with open(journal, "wb") as f:
        f.write(torn)

    srv = Server(args.msyn_argv, journal, args.serve_args)
    resumed = 0
    for job_id, line in jobs:
        status, _, _ = srv.req("POST", "/jobs", line)
        if status == 200:
            resumed += 1  # already known from the journal prefix
        elif status != 202:
            fail(f"resubmit of {job_id} drew HTTP {status}")
    if resumed != keep:
        fail(f"{resumed} jobs answered from the journal prefix, want {keep}")
    for job_id, _ in jobs:
        srv.poll_done(job_id)
    status, _, _ = srv.req("POST", "/drain")
    if status != 202:
        fail(f"POST /drain drew HTTP {status}")
    code, out = srv.finish()
    if code != 0:
        fail(f"drain after resume exited {code}:\n{out}")
    with open(journal, "rb") as f:
        resumed_bytes = f.read()
    if resumed_bytes != ref_bytes:
        fail("resumed journal differs from the uninterrupted reference")
    os.remove(journal)
    print(f"serve smoke B ok: {keep} records resumed, journal byte-identical")


def phase_c(args):
    print("serve smoke C: drain semantics under load")
    # a fault:"hang" job spins at a guard point until its own timeout, so
    # it deterministically pins the server open for a few seconds
    pin = json.dumps(
        {"id": "drain-pin", "seed": 1,
         "specs": [{"name": "gain_db", "at_least": 40.0}],
         "fault": "hang", "timeout_s": 6.0}
    )
    late = json.dumps({"id": "too-late", "seed": 2})
    journal = tempfile.mktemp(prefix="msyn_serve_smoke_c", suffix=".journal")
    srv = Server(args.msyn_argv, journal, args.serve_args)
    status, _, _ = srv.req("POST", "/jobs", pin)
    if status != 202:
        fail(f"pin submit drew HTTP {status}")
    status, _, _ = srv.req("POST", "/drain")
    if status != 202:
        fail(f"POST /drain drew HTTP {status}")
    status, _, _ = srv.req("POST", "/jobs", late)
    if status != 503:
        fail(f"submission while draining drew HTTP {status}, want 503")
    status, body, _ = srv.req("GET", "/jobs/drain-pin")
    if status != 200:
        fail(f"status read while draining drew HTTP {status}, want 200")
    code, out = srv.finish()
    if code != 0:
        fail(f"drain under load exited {code}:\n{out}")
    records = journal_lines(journal)
    if set(records) != {"drain-pin"}:
        fail(f"drained journal holds {sorted(records)}, want only drain-pin")
    os.remove(journal)
    print("serve smoke C ok: 503 while draining, reads answered, clean exit")


def main():
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("manifest", help="JSONL manifest whose jobs to serve")
    p.add_argument("--msyn", default="_build/default/bin/msyn.exe",
                   help="msyn command (shell-split)")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--timeout", type=float, default=120.0,
                   help="per-job timeout passed to both batch and serve")
    p.add_argument("--retries", type=int, default=1,
                   help="retry budget passed to both batch and serve")
    args = p.parse_args()
    args.msyn_argv = shlex.split(args.msyn)
    args.serve_args = [
        "--workers", str(args.workers),
        "--timeout", str(args.timeout),
        "--retries", str(args.retries),
    ]

    jobs = manifest_jobs(args.manifest)
    if not jobs:
        fail(f"no jobs in {args.manifest}")

    # the contract's other side: a sequential `msyn batch` over the same
    # manifest, whose journal every serve phase is compared against
    ref_path = tempfile.mktemp(prefix="msyn_serve_smoke_ref", suffix=".journal")
    cmd = args.msyn_argv + [
        "batch", args.manifest, "--journal", ref_path, "--jobs", "1",
        "--timeout", str(args.timeout), "--retries", str(args.retries),
    ]
    print(f"serve smoke: batch reference: {' '.join(cmd)}")
    if subprocess.run(cmd).returncode != 0:
        fail("reference batch run failed")
    reference = journal_lines(ref_path)

    phase_a(args, jobs, reference)
    phase_b(args, jobs, reference, ref_path)
    phase_c(args)
    os.remove(ref_path)
    print("serve smoke: all phases ok")


if __name__ == "__main__":
    main()
