(* msyn: the mixsyn command-line driver.

   One subcommand per stage of the mixed-signal flow, mirroring the paper's
   structure: frontend (topo, size, table1), backend (layout), system
   assembly (floorplan, powergrid, wren) and the full flow (flow). *)

open Cmdliner

let find_template name =
  match
    List.find_opt
      (fun t -> t.Mixsyn_circuit.Template.t_name = name)
      Mixsyn_circuit.Topology.all
  with
  | Some t -> t
  | None ->
    Printf.eprintf "unknown topology %s; available:\n" name;
    List.iter
      (fun (t : Mixsyn_circuit.Template.t) ->
        Printf.eprintf "  %s - %s\n" t.Mixsyn_circuit.Template.t_name
          t.Mixsyn_circuit.Template.description)
      Mixsyn_circuit.Topology.all;
    exit 1

let specs_of ~gain ~ugf ~pm =
  [ Mixsyn_synth.Spec.spec "gain_db" (Mixsyn_synth.Spec.At_least gain);
    Mixsyn_synth.Spec.spec "ugf_hz" (Mixsyn_synth.Spec.At_least ugf);
    Mixsyn_synth.Spec.spec "phase_margin_deg" (Mixsyn_synth.Spec.At_least pm) ]

let objectives = [ Mixsyn_synth.Spec.minimize "power_w" ]

(* common arguments *)
let gain_arg =
  Arg.(value & opt float 70.0 & info [ "gain" ] ~docv:"DB" ~doc:"Minimum DC gain in dB.")

let ugf_arg =
  Arg.(value & opt float 10e6 & info [ "ugf" ] ~docv:"HZ" ~doc:"Minimum unity-gain frequency.")

let pm_arg =
  Arg.(value & opt float 60.0 & info [ "pm" ] ~docv:"DEG" ~doc:"Minimum phase margin.")

let cl_arg =
  Arg.(value & opt float 5e-12 & info [ "cl" ] ~docv:"F" ~doc:"Load capacitance.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

(* job counts are validated in one place (Pool.jobs_of_string) for both the
   --jobs flag and the MIXSYN_JOBS environment variable, so `--jobs 0` and
   `MIXSYN_JOBS=-2` die with the same clear error instead of silently
   clamping downstream *)
let jobs_conv =
  let parse s =
    match Mixsyn_util.Pool.jobs_of_string s with
    | Ok n -> Ok n
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_env =
  Cmd.Env.info "MIXSYN_JOBS"
    ~doc:"Default worker-domain count for the parallel evaluation loops; the $(b,--jobs) \
          flag overrides it.  Rejected unless a positive integer."

let jobs_arg =
  Arg.(value & opt (some jobs_conv) None
       & info [ "jobs" ] ~docv:"N" ~env:jobs_env
           ~doc:"Worker domains for the parallel evaluation loops (corner sweeps, annealing \
                 multi-starts, placement retries, frequency sweeps, batch jobs).  Defaults \
                 to $(b,MIXSYN_JOBS) or the machine's core count; results are identical at \
                 any value.  Must be at least 1.")

let apply_jobs = function
  | Some n -> Mixsyn_util.Pool.set_default_jobs n
  | None -> ()

let telemetry_arg =
  Arg.(value & flag
       & info [ "telemetry" ]
           ~doc:"Print the flow-wide telemetry report (counters and timed spans) after the command.")

let report_telemetry enabled =
  if enabled then Format.printf "@.%a@." Mixsyn_util.Telemetry.pp_report ()

let topology_arg =
  Arg.(value & opt string "miller-ota" & info [ "topology" ] ~docv:"NAME" ~doc:"Topology name.")

let strategy_arg =
  Arg.(value & opt string "sim"
       & info [ "strategy" ] ~docv:"S" ~doc:"Sizing strategy: plan, eq, awe or sim.")

(* --- size ------------------------------------------------------------ *)

let size_cmd =
  let run topology strategy gain ugf pm cl seed jobs telemetry =
    apply_jobs jobs;
    let template = find_template topology in
    let strategy =
      match strategy with
      | "plan" ->
        let plan =
          match
            List.find_opt
              (fun (p : Mixsyn_synth.Design_plan.t) ->
                p.Mixsyn_synth.Design_plan.topology.Mixsyn_circuit.Template.t_name = topology)
              Mixsyn_synth.Design_plan.all
          with
          | Some p -> p
          | None ->
            Printf.eprintf "no design plan for %s\n" topology;
            exit 1
        in
        Mixsyn_synth.Sizing.Design_plan plan
      | "eq" -> Mixsyn_synth.Sizing.Equation_annealing
      | "awe" -> Mixsyn_synth.Sizing.Awe_annealing
      | _ -> Mixsyn_synth.Sizing.Simulation_annealing
    in
    let result =
      Mixsyn_synth.Sizing.size ~seed ~context:[ ("cl", cl); ("load_cap_f", cl) ] strategy
        template ~specs:(specs_of ~gain ~ugf ~pm) ~objectives
    in
    Format.printf "%a@." Mixsyn_synth.Sizing.pp_result result;
    Array.iteri
      (fun i p ->
        Format.printf "  %-6s = %s@." p.Mixsyn_circuit.Template.p_name
          (Mixsyn_util.Units.format result.Mixsyn_synth.Sizing.params.(i) ""))
      template.Mixsyn_circuit.Template.params;
    report_telemetry telemetry
  in
  Cmd.v (Cmd.info "size" ~doc:"Size a topology against specifications.")
    Term.(const run $ topology_arg $ strategy_arg $ gain_arg $ ugf_arg $ pm_arg $ cl_arg $ seed_arg
          $ jobs_arg $ telemetry_arg)

(* --- topo ------------------------------------------------------------ *)

let topo_cmd =
  let run gain ugf pm telemetry =
    let specs = specs_of ~gain ~ugf ~pm in
    let feasible = Mixsyn_synth.Topo_select.interval_feasible specs Mixsyn_circuit.Topology.all in
    Format.printf "interval-feasible: %s@."
      (String.concat ", "
         (List.map (fun (t : Mixsyn_circuit.Template.t) -> t.Mixsyn_circuit.Template.t_name) feasible));
    List.iter
      (fun (v : Mixsyn_synth.Topo_select.verdict) ->
        Format.printf "%-16s score %6.2f@." v.Mixsyn_synth.Topo_select.template.Mixsyn_circuit.Template.t_name
          v.Mixsyn_synth.Topo_select.score;
        List.iter (Format.printf "    %s@.") v.Mixsyn_synth.Topo_select.rationale)
      (Mixsyn_synth.Topo_select.rule_based specs Mixsyn_circuit.Topology.all);
    report_telemetry telemetry
  in
  Cmd.v (Cmd.info "topo" ~doc:"Rank candidate topologies for a specification set.")
    Term.(const run $ gain_arg $ ugf_arg $ pm_arg $ telemetry_arg)

(* --- layout ----------------------------------------------------------- *)

let layout_cmd =
  let run topology seed jobs telemetry =
    apply_jobs jobs;
    let template = find_template topology in
    let tech = Mixsyn_circuit.Tech.generic_07um in
    let params = Mixsyn_circuit.Template.midpoint template in
    let nl = template.Mixsyn_circuit.Template.build tech params in
    let koan = Mixsyn_layout.Cell_flow.koan ~seed nl in
    let proc = Mixsyn_layout.Cell_flow.procedural ~style:0 nl in
    let show (r : Mixsyn_layout.Cell_flow.report) =
      Format.printf "%-20s area %8.0f um2  wire %7.1f um  vias %3d  %s@."
        r.Mixsyn_layout.Cell_flow.flow_name
        (r.Mixsyn_layout.Cell_flow.area_m2 *. 1e12)
        (r.Mixsyn_layout.Cell_flow.wirelength_m *. 1e6)
        r.Mixsyn_layout.Cell_flow.vias
        (if r.Mixsyn_layout.Cell_flow.complete then "routed" else "INCOMPLETE")
    in
    show proc;
    show koan;
    report_telemetry telemetry
  in
  Cmd.v (Cmd.info "layout" ~doc:"Lay out a midpoint-sized topology, procedural vs KOAN.")
    Term.(const run $ topology_arg $ seed_arg $ jobs_arg $ telemetry_arg)

(* --- table1 ----------------------------------------------------------- *)

let table1_cmd =
  let run seed moves telemetry =
    let rows = Mixsyn_synth.Pulse_detector.table1 ~seed ~moves () in
    Format.printf "%a@." Mixsyn_synth.Pulse_detector.pp_rows rows;
    report_telemetry telemetry
  in
  let moves_arg =
    Arg.(value & opt int 40 & info [ "moves" ] ~docv:"N" ~doc:"Annealing moves per stage.")
  in
  Cmd.v (Cmd.info "table1" ~doc:"Reproduce the paper's Table 1 synthesis experiment.")
    Term.(const run $ seed_arg $ moves_arg $ telemetry_arg)

(* --- floorplan / powergrid / wren -------------------------------------- *)

let floorplan_cmd =
  let run seed telemetry =
    let blocks = Mixsyn_assembly.Block.data_channel_testbench () in
    let fp = Mixsyn_assembly.Floorplan.floorplan ~seed blocks in
    Format.printf "chip %.2f x %.2f mm, wirelength %.2f mm@."
      (fp.Mixsyn_assembly.Floorplan.chip_w *. 1e3)
      (fp.Mixsyn_assembly.Floorplan.chip_h *. 1e3)
      (fp.Mixsyn_assembly.Floorplan.fp_wirelength *. 1e3);
    List.iter
      (fun (p : Mixsyn_assembly.Floorplan.placement) ->
        Format.printf "  %-14s at (%.2f, %.2f) mm%s@."
          p.Mixsyn_assembly.Floorplan.block.Mixsyn_assembly.Block.b_name
          (p.Mixsyn_assembly.Floorplan.x *. 1e3) (p.Mixsyn_assembly.Floorplan.y *. 1e3)
          (if p.Mixsyn_assembly.Floorplan.rotated then " (rotated)" else ""))
      fp.Mixsyn_assembly.Floorplan.placements;
    List.iter
      (fun (name, v) -> Format.printf "  substrate noise at %-14s %.1f mV@." name (v *. 1e3))
      fp.Mixsyn_assembly.Floorplan.victim_noise;
    report_telemetry telemetry
  in
  Cmd.v (Cmd.info "floorplan" ~doc:"WRIGHT-style substrate-aware floorplan of the testbench chip.")
    Term.(const run $ seed_arg $ telemetry_arg)

let powergrid_cmd =
  let run seed telemetry =
    let blocks = Mixsyn_assembly.Block.data_channel_testbench () in
    let fp = Mixsyn_assembly.Floorplan.floorplan ~seed blocks in
    let r = Mixsyn_assembly.Power_grid.synthesize fp in
    let show name (m : Mixsyn_assembly.Power_grid.metrics) =
      Format.printf "%-8s ir %5.2f%%  spike %5.2f%%  victim %5.2f%%  em %5.2fx  metal %.3f mm2@."
        name
        (m.Mixsyn_assembly.Power_grid.ir_drop *. 100.)
        (m.Mixsyn_assembly.Power_grid.spike *. 100.)
        (m.Mixsyn_assembly.Power_grid.victim_bounce *. 100.)
        m.Mixsyn_assembly.Power_grid.em_overload
        (m.Mixsyn_assembly.Power_grid.metal_area *. 1e6)
    in
    show "before" r.Mixsyn_assembly.Power_grid.before;
    show "after" r.Mixsyn_assembly.Power_grid.after;
    Format.printf "%d iterations, constraints %s@." r.Mixsyn_assembly.Power_grid.iterations
      (if r.Mixsyn_assembly.Power_grid.meets then "MET" else "violated");
    report_telemetry telemetry
  in
  Cmd.v (Cmd.info "powergrid" ~doc:"RAIL-style power-grid synthesis (the Fig. 3 experiment).")
    Term.(const run $ seed_arg $ telemetry_arg)

let wren_cmd =
  let run seed telemetry =
    let blocks = Mixsyn_assembly.Block.data_channel_testbench () in
    let fp = Mixsyn_assembly.Floorplan.floorplan ~seed blocks in
    List.iter
      (fun (name, mode) ->
        let r = Mixsyn_assembly.Wren.route ~mode fp in
        Format.printf "%-12s routed %d/%d  length %.1f mm  shared-with-aggressor %.0f um@."
          name
          (List.length r.Mixsyn_assembly.Wren.routed)
          (List.length r.Mixsyn_assembly.Wren.routed + List.length r.Mixsyn_assembly.Wren.unrouted)
          (r.Mixsyn_assembly.Wren.total_length *. 1e3)
          (r.Mixsyn_assembly.Wren.shared_length *. 1e6))
      [ ("noise-blind", Mixsyn_assembly.Wren.Noise_blind);
        ("snr", Mixsyn_assembly.Wren.Snr_constrained);
        ("segregated", Mixsyn_assembly.Wren.Segregated) ];
    report_telemetry telemetry
  in
  Cmd.v (Cmd.info "wren" ~doc:"WREN global routing under the three noise disciplines.")
    Term.(const run $ seed_arg $ telemetry_arg)

(* --- hierarchy ---------------------------------------------------------- *)

let hierarchy_cmd =
  let run gain ugf telemetry =
    let specs =
      [ Mixsyn_synth.Spec.spec "gain_db" (Mixsyn_synth.Spec.At_least gain);
        Mixsyn_synth.Spec.spec "ugf_hz" (Mixsyn_synth.Spec.At_least ugf) ]
    in
    let r = Mixsyn_synth.Hierarchy.design Mixsyn_synth.Hierarchy.two_stage_amplifier specs in
    Format.printf "%a@." Mixsyn_synth.Hierarchy.pp r;
    Format.printf "chain specs %s@."
      (if Mixsyn_synth.Hierarchy.meets r specs then "MET" else "violated");
    report_telemetry telemetry
  in
  Cmd.v
    (Cmd.info "hierarchy"
       ~doc:"Hierarchical top-down/bottom-up design of a two-stage amplification chain.")
    Term.(const run $ gain_arg $ ugf_arg $ telemetry_arg)

(* --- yield --------------------------------------------------------------- *)

let yield_cmd =
  let run gain ugf pm seed telemetry =
    let specs = specs_of ~gain ~ugf ~pm in
    let report =
      Mixsyn_synth.Manufacturability.synthesize ~seed Mixsyn_circuit.Topology.miller_ota
        ~specs ~objectives
    in
    let y which params =
      let v =
        Mixsyn_synth.Manufacturability.yield_estimate Mixsyn_circuit.Topology.miller_ota
          params ~specs
      in
      Format.printf "%-22s yield %5.1f%%@." which (100.0 *. v)
    in
    y "nominal sizing" report.Mixsyn_synth.Manufacturability.nominal.Mixsyn_synth.Sizing.params;
    y "corner-robust sizing" report.Mixsyn_synth.Manufacturability.robust.Mixsyn_synth.Sizing.params;
    Format.printf "corner-synthesis CPU overhead: %.1fx@."
      report.Mixsyn_synth.Manufacturability.cpu_ratio;
    report_telemetry telemetry
  in
  Cmd.v
    (Cmd.info "yield" ~doc:"Monte-Carlo parametric yield of nominal vs corner-robust sizing.")
    Term.(const run $ gain_arg $ ugf_arg $ pm_arg $ seed_arg $ telemetry_arg)

(* --- adc ----------------------------------------------------------------- *)

let adc_cmd =
  let bits_arg = Arg.(value & opt int 10 & info [ "bits" ] ~docv:"N" ~doc:"Resolution.") in
  let rate_arg =
    Arg.(value & opt float 1e6 & info [ "rate" ] ~docv:"HZ" ~doc:"Sample rate.")
  in
  let run bits rate seed telemetry =
    let module C = Mixsyn_synth.Converter in
    let spec = { C.bits; rate_hz = rate; vref = 2.0 } in
    let estimates, _ = C.select spec in
    List.iter
      (fun (e : C.estimate) ->
        Format.printf "%-12s %s@." (C.architecture_name e.C.arch)
          (if e.C.feasible then Mixsyn_util.Units.format e.C.power_w "W"
           else "infeasible: " ^ Option.value e.C.infeasible_reason ~default:"?"))
      estimates;
    let s = C.synthesize ~seed spec in
    Format.printf "chosen: %s; comparator sized at device level: %s, specs %s@."
      (C.architecture_name s.C.chosen.C.arch)
      (Mixsyn_util.Units.format
         (Option.value
            (Mixsyn_synth.Spec.lookup s.C.comparator.Mixsyn_synth.Sizing.performance "power_w")
            ~default:0.0)
         "W")
      (if s.C.comparator.Mixsyn_synth.Sizing.meets_specs then "MET" else "MISSED");
    report_telemetry telemetry
  in
  Cmd.v
    (Cmd.info "adc" ~doc:"High-level A/D converter synthesis: architecture selection and comparator sizing.")
    Term.(const run $ bits_arg $ rate_arg $ seed_arg $ telemetry_arg)

(* --- lint -------------------------------------------------------------- *)

let lint_cmd =
  let module D = Mixsyn_check.Diagnostic in
  let module L = Mixsyn_check.Lint in
  let lint_topology_arg =
    Arg.(value & opt string "all"
         & info [ "topology" ] ~docv:"NAME" ~doc:"Topology to check, or $(b,all) for every one.")
  in
  let layout_arg =
    Arg.(value & flag
         & info [ "layout" ]
             ~doc:"Also lay each topology out (KOAN flow at midpoint sizing) and run the \
                   layout DRC and constraint-audit passes on it.")
  in
  let flow_arg =
    Arg.(value & flag
         & info [ "flow" ]
             ~doc:"Run the full synthesis flow once and lint its finished design with all \
                   three passes.  Overrides $(b,--topology) and $(b,--layout).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as a JSON array.")
  in
  let suppress_arg =
    Arg.(value & opt_all string []
         & info [ "suppress" ] ~docv:"RULE"
             ~doc:"Drop warnings/infos with this rule id (repeatable).  Errors are never \
                   suppressed.")
  in
  let inject_arg =
    Arg.(value & opt string "none"
         & info [ "inject" ] ~docv:"FAULT"
             ~doc:"Deliberately break the design before linting, to prove the gate trips: \
                   $(b,floating-gate) disconnects a MOS gate, $(b,broken-symmetry) splits a \
                   matched pair and mis-places one half (implies $(b,--layout)).")
  in
  let list_rules_arg =
    Arg.(value & flag
         & info [ "list-rules" ]
             ~doc:"Print every diagnostic rule id any pass can emit, with its one-line \
                   documentation, and exit.")
  in
  let run list_rules topology layout flow json suppress inject seed telemetry =
    if list_rules then begin
      Format.printf "%a@." Mixsyn_check.Registry.pp ();
      exit 0
    end;
    let module Netlist = Mixsyn_circuit.Netlist in
    let tech = Mixsyn_circuit.Tech.generic_07um in
    (* prefix each location with the design it came from so a combined run
       stays readable *)
    let tag name ds = List.map (fun (d : D.t) -> { d with D.loc = name ^ "/" ^ d.D.loc }) ds in
    let break_gate nl =
      (* reconnect the first MOS gate to a fresh, otherwise untouched net *)
      let nl = Netlist.copy nl in
      let orphan = Netlist.new_net ~name:"orphan" nl in
      let first = ref true in
      Netlist.map_elements nl (function
        | Netlist.Mos m when !first ->
          first := false;
          Netlist.Mos { m with Netlist.gate = orphan }
        | e -> e)
    in
    let split_pair nl =
      (* nudge one half of the first matched pair out of its stacking
         compatibility class (stacking needs exact L equality, matching
         tolerates 1 %) so the pair is realized as two separate cells *)
      match Mixsyn_layout.Sensitivity.matching_pairs nl with
      | [] ->
        Printf.eprintf "lint --inject broken-symmetry: design has no matched pair\n";
        exit 2
      | (_, b) :: _ ->
        ( Netlist.map_elements nl (function
            | Netlist.Mos m when m.Netlist.m_name = b ->
              Netlist.Mos { m with Netlist.l = m.Netlist.l *. 1.005 }
            | e -> e),
          b )
    in
    let displace_cell nl device (r : Mixsyn_layout.Cell_flow.report) =
      (* nudge the cell realizing [device] off its mirror position *)
      let stacking = Mixsyn_layout.Stacker.linear (Netlist.mos_list nl) in
      let item =
        match
          List.find_opt
            (fun (st : Mixsyn_layout.Stacker.stack) ->
              List.mem device st.Mixsyn_layout.Stacker.devices)
            stacking.Mixsyn_layout.Stacker.stacks
        with
        | Some { Mixsyn_layout.Stacker.devices = [ single ]; _ } -> single
        | Some st -> st.Mixsyn_layout.Stacker.st_name
        | None -> device
      in
      { r with
        Mixsyn_layout.Cell_flow.placed =
          List.map
            (fun (c : Mixsyn_layout.Cell.t) ->
              if c.Mixsyn_layout.Cell.cell_name = item then
                Mixsyn_layout.Cell.translate 0.0 8e-6 c
              else c)
            r.Mixsyn_layout.Cell_flow.placed }
    in
    let lint_one (t : Mixsyn_circuit.Template.t) =
      let nl = t.Mixsyn_circuit.Template.build tech (Mixsyn_circuit.Template.midpoint t) in
      let ds =
        match inject with
        | "floating-gate" ->
          let nl = break_gate nl in
          if layout then L.full nl (Mixsyn_layout.Cell_flow.koan ~seed nl) else L.netlist nl
        | "broken-symmetry" ->
          let nl, device = split_pair nl in
          L.full nl (displace_cell nl device (Mixsyn_layout.Cell_flow.koan ~seed nl))
        | "none" ->
          if layout then L.full nl (Mixsyn_layout.Cell_flow.koan ~seed nl) else L.netlist nl
        | other ->
          Printf.eprintf "lint: unknown fault %s (floating-gate or broken-symmetry)\n" other;
          exit 2
      in
      tag t.Mixsyn_circuit.Template.t_name ds
    in
    let diags =
      if flow then begin
        let o =
          Mixsyn_flow.Flow.run ~seed ~checks:false
            ~specs:(specs_of ~gain:70.0 ~ugf:10e6 ~pm:60.0)
            ~objectives ~context:[ ("cl", 5e-12) ] ()
        in
        let nl =
          o.Mixsyn_flow.Flow.template.Mixsyn_circuit.Template.build tech
            o.Mixsyn_flow.Flow.sizing.Mixsyn_synth.Sizing.params
        in
        tag o.Mixsyn_flow.Flow.template.Mixsyn_circuit.Template.t_name
          (L.full nl o.Mixsyn_flow.Flow.layout)
      end
      else begin
        let templates =
          if topology = "all" then Mixsyn_circuit.Topology.all else [ find_template topology ]
        in
        List.concat_map lint_one templates
      end
    in
    let diags = D.suppress ~rules:suppress diags in
    print_string (if json then D.to_json diags else D.render diags);
    print_newline ();
    report_telemetry telemetry;
    exit (L.exit_code diags)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static verification: netlist ERC, and with --layout/--flow also layout DRC \
             and the symmetry/connectivity constraint audit.  Exits nonzero when any \
             error-severity diagnostic is found.")
    Term.(const run $ list_rules_arg $ lint_topology_arg $ layout_arg $ flow_arg $ json_arg
          $ suppress_arg $ inject_arg $ seed_arg $ telemetry_arg)

(* --- feas -------------------------------------------------------------- *)

let feas_cmd =
  let module B = Mixsyn_check.Bounds in
  let module I = Mixsyn_util.Interval in
  let module Json = Mixsyn_util.Json in
  let module Template = Mixsyn_circuit.Template in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as a JSON array.")
  in
  let contract_arg =
    Arg.(value & flag
         & info [ "contract" ]
             ~doc:"Also run the branch-and-prune box contractor against the \
                   specification set and report how many sub-boxes it proved \
                   infeasible on each topology.")
  in
  let run gain ugf pm cl json do_contract telemetry =
    let specs = specs_of ~gain ~ugf ~pm in
    let context = [ ("cl", cl) ] in
    let topologies = Mixsyn_circuit.Topology.all in
    let report (t : Template.t) =
      let certified = B.certify ~context t in
      let infeasible = B.infeasible_specs ~context specs t in
      let drift = B.annotation_drift t in
      let contraction = if do_contract then Some (B.contract ~context specs t) else None in
      (t, certified, infeasible, drift, contraction)
    in
    let reports = List.map report topologies in
    let any_feasible =
      List.exists (fun (_, _, infeasible, _, _) -> infeasible = []) reports
    in
    if json then begin
      let iv_json iv = Json.Obj [ ("lo", Json.Num (I.lo iv)); ("hi", Json.Num (I.hi iv)) ] in
      let items =
        List.map
          (fun ((t : Template.t), certified, infeasible, drift, contraction) ->
            Json.Obj
              ([ ("topology", Json.Str t.Template.t_name);
                 ("feasible", Json.Bool (infeasible = []));
                 ("certified", Json.Obj (List.map (fun (n, iv) -> (n, iv_json iv)) certified));
                 ( "infeasible",
                   Json.Arr
                     (List.map
                        (fun ((s : Mixsyn_synth.Spec.t), iv) ->
                          Json.Obj
                            [ ("spec", Json.Str s.Mixsyn_synth.Spec.s_name);
                              ("bound", Json.Str (B.bound_to_string s.Mixsyn_synth.Spec.bound));
                              ("certified_lo", Json.Num (I.lo iv));
                              ("certified_hi", Json.Num (I.hi iv)) ])
                        infeasible) );
                 ( "drift",
                   Json.Arr
                     (List.map
                        (fun (d : Mixsyn_check.Diagnostic.t) ->
                          Json.Obj
                            [ ("rule", Json.Str d.Mixsyn_check.Diagnostic.rule);
                              ("loc", Json.Str d.Mixsyn_check.Diagnostic.loc);
                              ("msg", Json.Str d.Mixsyn_check.Diagnostic.msg) ])
                        drift) ) ]
              @
              match contraction with
              | None -> []
              | Some c ->
                [ ( "contraction",
                    Json.Obj
                      [ ("explored", Json.Num (float_of_int c.B.explored));
                        ("pruned", Json.Num (float_of_int c.B.pruned));
                        ("infeasible", Json.Bool c.B.c_infeasible) ] ) ]))
          reports
      in
      print_endline (Json.to_string (Json.Arr items))
    end
    else
      List.iter
        (fun ((t : Template.t), certified, infeasible, drift, contraction) ->
          Format.printf "%s: %s@." t.Template.t_name
            (if infeasible = [] then "feasible" else "INFEASIBLE");
          List.iter
            (fun (name, iv) ->
              match List.assoc_opt name t.Template.feasibility with
              | Some hand ->
                Format.printf "  %-18s certified %a  hand %a@." name I.pp iv I.pp hand
              | None -> Format.printf "  %-18s certified %a@." name I.pp iv)
            certified;
          List.iter
            (fun ((s : Mixsyn_synth.Spec.t), iv) ->
              Format.printf "  spec %s %s is provably unsatisfiable: certified %a@."
                s.Mixsyn_synth.Spec.s_name
                (B.bound_to_string s.Mixsyn_synth.Spec.bound)
                I.pp iv)
            infeasible;
          List.iter
            (fun (d : Mixsyn_check.Diagnostic.t) ->
              Format.printf "  drift %s: %s@." d.Mixsyn_check.Diagnostic.loc
                d.Mixsyn_check.Diagnostic.msg)
            drift;
          Option.iter
            (fun (c : B.contraction) ->
              Format.printf "  contraction: pruned %d/%d sub-boxes%s@." c.B.pruned
                c.B.explored
                (if c.B.c_infeasible then " (entire box infeasible)" else ""))
            contraction)
        reports;
    report_telemetry telemetry;
    if not any_feasible then exit 1
  in
  let man =
    [ `S Manpage.s_description;
      `P "Abstract interpretation of the design equations over each topology's \
          parameter box: every metric gets a certified interval that encloses \
          everything any sizing inside the box can achieve.  A specification \
          outside the certified interval is provably unsatisfiable — the same \
          static screen the $(b,flow) pre-flight gate and the $(b,batch) \
          prefilter apply.";
      `P "Hand-annotated feasibility ranges that claim performance outside the \
          certified enclosure are reported as $(b,feas.annotation-drift) drift \
          lines.  Exits nonzero when the specification set is provably \
          unsatisfiable on every topology." ]
  in
  Cmd.v
    (Cmd.info "feas" ~man
       ~doc:"Certified interval performance bounds per topology, with spec \
             feasibility verdicts and annotation-drift warnings.")
    Term.(const run $ gain_arg $ ugf_arg $ pm_arg $ cl_arg $ json_arg $ contract_arg
          $ telemetry_arg)

(* --- batch ------------------------------------------------------------- *)

let batch_cmd =
  let module Batch = Mixsyn_flow.Batch in
  let manifest_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"MANIFEST"
             ~doc:"JSONL job manifest: one job object per line ($(b,id) required and \
                   unique; $(b,seed), $(b,specs), $(b,objectives), $(b,context), \
                   $(b,topology), $(b,max_redesigns), $(b,timeout_s), $(b,fault) \
                   optional).  Blank and $(b,#) comment lines are skipped.")
  in
  let journal_arg =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"Append-only JSONL journal (default $(i,MANIFEST).journal).  Doubles as \
                   the checkpoint: re-running with the same manifest skips recorded jobs \
                   and resumes, tolerating a line truncated by a crash or kill.")
  in
  let timeout_arg =
    Arg.(value & opt float 0.0
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Per-job wall-clock timeout; expired jobs are recorded as \
                   $(b,timed_out) and the batch continues.  0 (the default) disables \
                   it; a job's $(b,timeout_s) manifest field overrides it.")
  in
  let retries_arg =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Re-run a job that raised up to $(i,N) more times, each attempt with a \
                   deterministically perturbed seed, before recording it as $(b,failed).  \
                   Timeouts are not retried.")
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Emit the summary as JSON.") in
  let no_prefilter_arg =
    Arg.(value & flag
         & info [ "no-prefilter" ]
             ~doc:"Disable the static feasibility prefilter and run every job, even \
                   those whose specs the certified interval bounds prove \
                   unsatisfiable.")
  in
  let no_stage_cache_arg =
    Arg.(value & flag
         & info [ "no-stage-cache" ]
             ~doc:"Disable the cross-job sizing stage cache, so every job re-runs its \
                   sizing even when another job already computed the identical \
                   (topology, specs, objectives, context, seed) combination.  The \
                   journal is byte-identical with the cache on or off — this flag \
                   exists for A/B timing and for identity tests.")
  in
  let strict_arg =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Exit nonzero when any job failed or timed out (by default the batch \
                   reports them in the summary and exits 0).")
  in
  let run manifest journal jobs timeout retries json no_prefilter no_stage_cache strict
      telemetry =
    apply_jobs jobs;
    if retries < 0 then begin
      Printf.eprintf "msyn batch: retries must be non-negative (got %d)\n" retries;
      exit 2
    end;
    let journal = Option.value journal ~default:(manifest ^ ".journal") in
    let timeout_s = if timeout > 0.0 then Some timeout else None in
    match Batch.load_manifest manifest with
    | Error msg ->
      Printf.eprintf "msyn batch: %s\n" msg;
      exit 2
    | Ok jobs_list ->
      (match
         Batch.run ?timeout_s ~retries ~prefilter:(not no_prefilter)
           ~stage_cache:(not no_stage_cache) ~journal jobs_list
       with
       | summary ->
         if json then begin
           print_endline (Mixsyn_util.Json.to_string (Batch.summary_to_json summary));
           (* keep stdout a single parseable document in JSON mode *)
           Format.eprintf "journal: %s@." journal
         end
         else begin
           Format.printf "%a" Batch.pp_summary summary;
           Format.printf "journal: %s@." journal
         end;
         report_telemetry telemetry;
         if strict && summary.Batch.completed < summary.Batch.total then exit 1
       | exception Invalid_argument msg ->
         Printf.eprintf "msyn batch: %s\n" msg;
         exit 2)
  in
  let man =
    [ `S Manpage.s_description;
      `P "Execute a manifest of synthesis jobs concurrently on the shared domain pool, \
          streaming one record per job to an append-only JSONL journal.  A job that \
          raises (solver divergence, static-check gate, NaN guard) becomes a structured \
          $(b,failed) record with its diagnostics; a job past $(b,--timeout) is \
          cancelled cooperatively and recorded as $(b,timed_out); everything else \
          keeps running.";
      `P "Before any job runs, the static feasibility prefilter (see $(b,msyn feas)) \
          certifies interval performance bounds over each job's candidate topologies; \
          a job with a provably unsatisfiable spec is journalled as $(b,infeasible) \
          (with the spec, its bound and the certified range) without consuming a \
          worker, a timeout slot or any annealing work.  $(b,--no-prefilter) disables \
          the screen.  Prefilter decisions are a pure function of the manifest, so \
          journal byte-identity across $(b,--jobs) values and resumes is preserved.";
      `P "The journal is the checkpoint: records are flushed in manifest order, so an \
          interrupted run leaves a clean prefix (at worst one truncated line, discarded \
          on resume).  Re-running the same command skips recorded jobs, and the finished \
          journal is byte-identical whether or not the run was interrupted, at any \
          $(b,--jobs) value and with the stage cache on or off.";
      `P "Jobs whose sizing inputs coincide (same topology, specs, objectives, context \
          and seed — the common stratified-manifest shape) share one sizing run through \
          the cross-job stage cache; concurrent workers reaching the same key compute \
          it once (single-flight).  $(b,--no-stage-cache) bypasses the cache for A/B \
          timing.  The summary reports the run's hit/miss counts and per-domain busy \
          seconds.";
      `S "SCHEDULER KNOBS";
      `P "Whole jobs are the unit of work stealing: each domain claims one job at a \
          time from the shared queue, keeping its warm per-domain solver workspaces \
          across consecutive jobs.  $(b,--jobs) (or $(b,MIXSYN_JOBS)) sets the worker \
          count, but the pool never runs more domains than the machine has cores: \
          $(b,MIXSYN_POOL_CORES) overrides the detected core count and \
          $(b,MIXSYN_POOL_OVERSUBSCRIBE=1) removes the cap for A/B measurements.  \
          $(b,MIXSYN_POOL_MIN_WORK_US) tunes the minimum estimated work (default \
          1000 µs) below which a parallel loop runs inline, and \
          $(b,MIXSYN_MINOR_HEAP) sizes each worker's minor heap in words \
          (default 4M).";
      `S "MANIFEST FORMAT";
      `P "One JSON object per line, for example:";
      `Pre "  {\"id\": \"ota-70db\", \"seed\": 13,\n\
           \   \"specs\": [{\"name\": \"gain_db\", \"at_least\": 70.0}],\n\
           \   \"objectives\": [{\"minimize\": \"power_w\"}],\n\
           \   \"context\": {\"cl\": 5e-12}, \"topology\": \"miller-ota\"}";
      `P "Spec bounds are $(b,at_least), $(b,at_most) or $(b,between) (with an optional \
          $(b,weight)); $(b,timeout_s) overrides the batch timeout per job; \
          $(b,fault) ($(i,raise) or $(i,hang)) injects a deliberate failure for \
          pipeline smoke tests." ]
  in
  Cmd.v
    (Cmd.info "batch" ~man
       ~doc:"High-throughput batch synthesis from a JSONL manifest, with per-job \
             timeouts, retries and checkpoint/resume.")
    Term.(const run $ manifest_arg $ journal_arg $ jobs_arg $ timeout_arg $ retries_arg
          $ json_arg $ no_prefilter_arg $ no_stage_cache_arg $ strict_arg $ telemetry_arg)

(* --- serve ------------------------------------------------------------- *)

let serve_cmd =
  let module Serve = Mixsyn_flow.Serve in
  let journal_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"JOURNAL"
             ~doc:"Append-only JSONL journal, shared with $(b,msyn batch): every admitted \
                   job is checkpointed here in submission order, and an existing journal's \
                   valid prefix is adopted on boot so a killed or drained server resumes \
                   where it stopped.")
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let port_arg =
    Arg.(value & opt int 8642
         & info [ "port" ] ~docv:"PORT"
             ~doc:"TCP port; $(b,0) binds an ephemeral port (printed on stdout).")
  in
  let workers_arg =
    Arg.(value & opt (some jobs_conv) None
         & info [ "workers" ] ~docv:"N"
             ~doc:"Worker domains executing jobs (default $(b,MIXSYN_JOBS) or the \
                   machine's core count), each running its job exactly like a \
                   $(b,msyn batch) worker.")
  in
  let queue_arg =
    Arg.(value & opt int 64
         & info [ "queue-capacity" ] ~docv:"N"
             ~doc:"Bound on queued (admitted but not yet running) jobs; past it \
                   submissions get $(b,429) with a $(b,Retry-After) header.")
  in
  let rate_arg =
    Arg.(value & opt float 0.0
         & info [ "rate-limit" ] ~docv:"R"
             ~doc:"Per-client token-bucket rate limit on submissions, in jobs per \
                   second; $(b,0) (the default) disables it.")
  in
  let burst_arg =
    Arg.(value & opt float 8.0
         & info [ "rate-burst" ] ~docv:"N"
             ~doc:"Token-bucket capacity: how many submissions a client may burst \
                   before the $(b,--rate-limit) rate applies.")
  in
  let timeout_arg =
    Arg.(value & opt float 0.0
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Default per-job wall-clock timeout, as in $(b,msyn batch); 0 \
                   disables it; a job's $(b,timeout_s) field overrides it.")
  in
  let retries_arg =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Per-job retry budget on exceptions, as in $(b,msyn batch).")
  in
  let request_timeout_arg =
    Arg.(value & opt float 10.0
         & info [ "request-timeout" ] ~docv:"SECONDS"
             ~doc:"Per-request read/handle deadline; a stalled client is answered \
                   with $(b,408) and its connection is released.")
  in
  let no_prefilter_arg =
    Arg.(value & flag
         & info [ "no-prefilter" ]
             ~doc:"Disable the static feasibility screen on admission (see \
                   $(b,msyn batch)).")
  in
  let run journal host port workers queue_capacity rate_limit rate_burst timeout retries
      request_timeout no_prefilter telemetry =
    apply_jobs workers;
    if retries < 0 then begin
      Printf.eprintf "msyn serve: retries must be non-negative (got %d)\n" retries;
      exit 2
    end;
    if queue_capacity < 1 then begin
      Printf.eprintf "msyn serve: queue capacity must be at least 1 (got %d)\n"
        queue_capacity;
      exit 2
    end;
    let cfg =
      { (Serve.default_config ~journal) with
        Serve.host;
        port;
        workers = Option.value workers ~default:(Mixsyn_util.Pool.default_jobs ());
        queue_capacity;
        rate_limit;
        rate_burst;
        timeout_s = (if timeout > 0.0 then Some timeout else None);
        retries;
        prefilter = not no_prefilter;
        request_timeout_s = request_timeout }
    in
    match
      Serve.run
        ~on_ready:(fun h ->
          (* SIGTERM/SIGINT request a graceful drain: stop admitting, finish
             queued and running jobs, flush the journal, exit 0.  Serve.drain
             is a single atomic store, safe inside a signal handler. *)
          Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> Serve.drain h));
          Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> Serve.drain h));
          Printf.printf "msyn serve: listening on http://%s:%d\n" host (Serve.port h);
          Printf.printf "msyn serve: journal %s\n%!" journal)
        cfg
    with
    | stats ->
      Printf.printf
        "msyn serve: drained — %d request(s), %d job(s) accepted (%d resumed), %d \
         finished, %d cancelled, rejected %d queue-full / %d rate-limited / %d draining\n"
        stats.Serve.requests stats.Serve.accepted stats.Serve.resumed stats.Serve.finished
        stats.Serve.cancelled stats.Serve.rejected_queue_full
        stats.Serve.rejected_rate_limited stats.Serve.rejected_draining;
      report_telemetry telemetry
    | exception Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "msyn serve: %s(%s): %s\n" fn arg (Unix.error_message e);
      exit 1
  in
  let man =
    [ `S Manpage.s_description;
      `P "Run the batch layer as a persistent HTTP/1.1 JSON service: one warm process \
          — domain pool spawned, sizing stage cache populated — accepting synthesis \
          jobs over HTTP instead of paying process cold-start per manifest.  Jobs use \
          the $(b,msyn batch) manifest line format and execute through exactly the \
          batch code path, so the journal the service writes is byte-identical to the \
          journal $(b,msyn batch) writes for the same jobs in the same order.";
      `P "Admitted jobs land in a bounded work queue feeding $(b,--workers) domains.  \
          When the queue is full, submissions are rejected with $(b,429) and a \
          $(b,Retry-After) header; $(b,--rate-limit) adds a per-client token bucket \
          on top.  Every admitted job is appended to the journal-as-checkpoint, so \
          killing the server (even $(b,SIGKILL)) loses at most one torn trailing \
          line, and rebooting against the same journal resumes: recorded jobs answer \
          instantly on resubmission.";
      `S "ENDPOINTS";
      `P "$(b,POST /jobs) — submit one job (manifest line format).  $(b,202) on \
          admission with $(i,{\"id\",\"state\"}); $(b,200) when the id is already \
          known (idempotent); $(b,400) malformed body; $(b,429) queue full or \
          rate-limited; $(b,503) draining."; `Noblank;
      `P "$(b,GET /jobs) — all job ids and states, in submission order."; `Noblank;
      `P "$(b,GET /jobs/)$(i,ID) — one job's state ($(i,queued), $(i,running), \
          $(i,completed), $(i,failed), $(i,timed_out), $(i,infeasible), \
          $(i,cancelled))."; `Noblank;
      `P "$(b,GET /jobs/)$(i,ID)$(b,/result) — the finished job's record, byte-for-byte \
          its journal line; $(b,409) while still queued or running."; `Noblank;
      `P "$(b,POST /jobs/)$(i,ID)$(b,/cancel) — cancel: a queued job is journalled \
          $(i,cancelled) without executing; a running job is cancelled cooperatively \
          at its next guard point; $(b,409) once finished."; `Noblank;
      `P "$(b,POST /drain) — graceful shutdown, identical to $(b,SIGTERM)."; `Noblank;
      `P "$(b,GET /healthz) — liveness; $(b,GET /metrics) — queue depth, job and \
          rejection counts, stage-cache hit rate, per-worker busy seconds and the \
          full telemetry rollup, as canonical JSON.";
      `S "DRAIN SEMANTICS";
      `P "$(b,SIGTERM), $(b,SIGINT) and $(b,POST /drain) all trigger the same \
          graceful drain: new submissions are refused with $(b,503) while status, \
          result and metrics queries keep answering; every queued and running job \
          finishes and is journalled; the journal is flushed and closed; the process \
          exits 0.  A drained journal is a clean prefix a later $(b,msyn serve) or \
          $(b,msyn batch) run resumes from." ]
  in
  Cmd.v
    (Cmd.info "serve" ~man
       ~doc:"Persistent HTTP synthesis service over the batch layer, with a bounded \
             work queue, rate limits, journal checkpointing and graceful drain.")
    Term.(const run $ journal_arg $ host_arg $ port_arg $ workers_arg $ queue_arg
          $ rate_arg $ burst_arg $ timeout_arg $ retries_arg $ request_timeout_arg
          $ no_prefilter_arg $ telemetry_arg)

(* --- flow -------------------------------------------------------------- *)

let flow_cmd =
  let run gain ugf pm cl seed jobs telemetry =
    apply_jobs jobs;
    match
      Mixsyn_flow.Flow.run ~seed ~specs:(specs_of ~gain ~ugf ~pm) ~objectives
        ~context:[ ("cl", cl) ] ()
    with
    | o ->
      Format.printf "%a@." Mixsyn_flow.Flow.pp_outcome o;
      report_telemetry telemetry
    | exception Mixsyn_check.Lint.Check_failed diags ->
      Printf.eprintf "flow: static checks failed\n%s\n"
        (Mixsyn_check.Diagnostic.render (Mixsyn_check.Diagnostic.errors diags));
      report_telemetry telemetry;
      exit 1
  in
  Cmd.v (Cmd.info "flow" ~doc:"Full top-to-bottom flow: specs to verified layout.")
    Term.(const run $ gain_arg $ ugf_arg $ pm_arg $ cl_arg $ seed_arg $ jobs_arg $ telemetry_arg)

let main =
  let doc = "mixed-signal circuit synthesis and layout (DAC'96 reproduction)" in
  let man =
    [ `S Manpage.s_description;
      `P "One subcommand per stage of the mixed-signal flow:";
      `P "$(b,topo) — rank candidate topologies for a specification set.";
      `P "$(b,size) — size a topology against specifications.";
      `P "$(b,layout) — lay out a midpoint-sized topology, procedural vs KOAN.";
      `P "$(b,lint) — static verification: ERC, layout DRC, constraint audit \
          ($(b,--list-rules) prints the rule catalogue).";
      `P "$(b,feas) — certified interval performance bounds per topology, with \
          spec feasibility verdicts and annotation-drift warnings.";
      `P "$(b,table1) — reproduce the paper's Table 1 synthesis experiment.";
      `P "$(b,floorplan) — substrate-aware floorplan of the testbench chip.";
      `P "$(b,powergrid) — RAIL-style power-grid synthesis (Fig. 3).";
      `P "$(b,wren) — WREN global routing under the three noise disciplines.";
      `P "$(b,hierarchy) — hierarchical design of a two-stage amplification chain.";
      `P "$(b,yield) — Monte-Carlo parametric yield, nominal vs corner-robust.";
      `P "$(b,adc) — high-level A/D converter synthesis.";
      `P "$(b,flow) — full top-to-bottom flow: specs to verified layout.";
      `P "$(b,batch) — run a JSONL manifest of flow jobs with timeouts, retries and \
          checkpoint/resume.";
      `P "$(b,serve) — run the batch layer as a persistent HTTP synthesis service \
          with a bounded work queue, rate limits and graceful drain.";
      `P "An unknown subcommand prints usage on standard error and exits nonzero.";
      `S "PARALLELISM";
      `P "$(b,size), $(b,layout), $(b,flow) and $(b,batch) accept $(b,--jobs) $(i,N) to \
          run their evaluation loops on $(i,N) worker domains ($(b,MIXSYN_JOBS) sets the \
          same default from the environment; both reject counts below 1).  Results are \
          bit-identical at any job count.";
      `P "Library callers can additionally pass $(b,?chunk) to any pool entry point \
          ($(b,Pool.parallel_map) and the loops built on it, e.g. $(b,Ac.solve)): \
          workers claim that many consecutive items per atomic fetch.  Larger chunks \
          amortize claim overhead across fine items such as AC frequency points; \
          $(b,chunk = 1) keeps coarse items (annealing chains) evenly spread.  Like \
          $(b,--jobs), it changes scheduling only — never the result.";
      `P "Parallelism does not always pay.  Each wired loop carries a learned \
          per-item cost estimate; when the estimated total work of a call falls \
          under $(b,MIXSYN_POOL_MIN_WORK_US) microseconds (default 1000), the pool \
          runs it inline on the calling domain instead of waking workers — counted \
          as $(b,pool.grain_fallbacks) in the telemetry report, and still \
          bit-identical.  Set it to $(b,0) to always go parallel.";
      `P "Worker domains run with an enlarged minor heap — $(b,MIXSYN_MINOR_HEAP) \
          words, default 4194304, minimum 65536 — because OCaml's stop-the-world \
          minor collections pause every domain: allocation-heavy workers throttle \
          each other, and on such workloads $(b,--jobs) 4 can lose to $(b,--jobs) 1. \
          The $(b,pool.minor_collections) / $(b,pool.major_collections) telemetry \
          counters report the collections observed during parallel regions; if they \
          grow with the job count, reduce allocation (or raise the minor heap) \
          before adding workers." ]
  in
  Cmd.group
    (Cmd.info "msyn" ~version:"1.0.0" ~doc ~man)
    [ size_cmd; topo_cmd; layout_cmd; lint_cmd; feas_cmd; table1_cmd; floorplan_cmd;
      powergrid_cmd; wren_cmd; hierarchy_cmd; yield_cmd; adc_cmd; flow_cmd; batch_cmd;
      serve_cmd ]

let () = exit (Cmd.eval main)
