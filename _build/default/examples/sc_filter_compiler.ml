(* A small switched-capacitor filter compiler in the style the paper cites
   ([30]: an SC filter silicon compiler; [52]: automated SC filter layout):
   from filter requirements to a verified biquad, its SPICE deck, and a CIF
   layout of the capacitor bank.

   Run with:  dune exec examples/sc_filter_compiler.exe *)

module SC = Mixsyn_circuit.Sc_filter
module N = Mixsyn_circuit.Netlist

let () =
  let spec = { SC.f_clock = 1e6; f0 = 20e3; q = 0.8; gain = 4.0 } in
  Format.printf "=== SC lowpass biquad: f0=%.0f kHz, Q=%.2f, gain=%.1f, clock %.1f MHz ===@.@."
    (spec.SC.f0 /. 1e3) spec.SC.q spec.SC.gain (spec.SC.f_clock /. 1e6);

  (* compile and verify against the continuous-time prototype *)
  let nl = SC.biquad_lowpass spec in
  let op = Mixsyn_engine.Dc.solve nl in
  let out = N.find_net nl "out" in
  let freqs = [| 1e3; 10e3; 20e3; 40e3; 100e3 |] in
  let ac = Mixsyn_engine.Ac.solve nl op ~freqs in
  Format.printf "%10s %12s %12s@." "freq" "simulated" "prototype";
  Array.iteri
    (fun k f ->
      Format.printf "%7.0f Hz %12.4f %12.4f@." f
        (Mixsyn_engine.Ac.magnitude ac k out)
        (SC.expected_magnitude spec f))
    freqs;
  Format.printf "@.capacitor spread: %.1f (the metric SC compilers minimise)@."
    (SC.capacitor_spread spec);

  (* the compiler's outputs: a SPICE deck and a capacitor-bank layout *)
  let deck = N.to_spice ~title:"sc biquad" nl in
  Format.printf "@.SPICE deck: %d lines (first three below)@."
    (List.length (String.split_on_char '\n' deck));
  List.iteri
    (fun i line -> if i < 3 then Format.printf "  %s@." line)
    (String.split_on_char '\n' deck);

  (* capacitor bank layout: one generated cell per integrator capacitor,
     placed and routed by the standard cell flow, exported as CIF *)
  let report = Mixsyn_layout.Cell_flow.procedural ~style:0 nl in
  let path = Filename.temp_file "sc_biquad" ".cif" in
  Mixsyn_layout.Cif.write_file ~path ~cells:report.Mixsyn_layout.Cell_flow.placed
    ~wires:report.Mixsyn_layout.Cell_flow.route.Mixsyn_layout.Maze_router.wires ();
  Format.printf "@.layout: %.0f um2, %s; CIF written to %s@."
    (report.Mixsyn_layout.Cell_flow.area_m2 *. 1e12)
    (if report.Mixsyn_layout.Cell_flow.complete then "fully routed" else "incomplete")
    path
