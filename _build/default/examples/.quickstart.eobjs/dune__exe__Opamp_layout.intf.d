examples/opamp_layout.mli:
