examples/mixed_signal_chip.mli:
