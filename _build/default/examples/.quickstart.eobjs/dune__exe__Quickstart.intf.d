examples/quickstart.mli:
