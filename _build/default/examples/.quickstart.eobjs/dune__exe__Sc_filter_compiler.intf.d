examples/sc_filter_compiler.mli:
