examples/pulse_detector.mli:
