examples/opamp_layout.ml: Format List Mixsyn_circuit Mixsyn_layout
