examples/pulse_detector.ml: Array Format Mixsyn_circuit Mixsyn_engine Mixsyn_synth Mixsyn_util
