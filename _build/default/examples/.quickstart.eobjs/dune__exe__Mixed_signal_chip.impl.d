examples/mixed_signal_chip.ml: Format List Mixsyn_assembly
