examples/sc_filter_compiler.ml: Array Filename Format List Mixsyn_circuit Mixsyn_engine Mixsyn_layout String
