examples/quickstart.ml: Array Format Mixsyn_circuit Mixsyn_synth Mixsyn_util
