(* The Table 1 experiment end to end: a particle-detector front-end
   (charge-sensitive amplifier + CR-RC^4 pulse shaper) sized automatically
   and compared against the expert manual design.

   Run with:  dune exec examples/pulse_detector.exe *)

module PD = Mixsyn_synth.Pulse_detector
module D = Mixsyn_circuit.Detector

let () =
  Format.printf "=== pulse-detector front-end synthesis (paper Table 1) ===@.@.";

  (* the manual baseline, measured by transient simulation *)
  (match PD.measure ~use_transient:true PD.manual with
   | None -> Format.printf "manual design failed to bias!@."
   | Some m ->
     Format.printf "expert manual design:@.  %a@.@." Mixsyn_synth.Spec.pp_performance m);

  (* automatic synthesis: annealing + simplex against the Table 1 specs *)
  let synth = PD.synthesize ~seed:11 ~moves:40 () in
  Format.printf "synthesis: %d evaluations in %.1f s, specs %s@."
    synth.PD.evaluations synth.PD.elapsed_s
    (if synth.PD.meets then "MET" else "VIOLATED");
  Format.printf "  %a@.@." Mixsyn_synth.Spec.pp_performance synth.PD.metrics;
  let s = synth.PD.sizing in
  Format.printf
    "  sizing: W1=%s L1=%s Id1=%s Cf=%s Rf=%s tau=%s a=%.2f@.@."
    (Mixsyn_util.Units.format s.D.w1 "m") (Mixsyn_util.Units.format s.D.l1 "m")
    (Mixsyn_util.Units.format s.D.id1 "A") (Mixsyn_util.Units.format s.D.cf "F")
    (Mixsyn_util.Units.format s.D.rf "ohm") (Mixsyn_util.Units.format s.D.tau "s")
    s.D.a_stage;

  (* the synthesized pulse, rendered in the terminal *)
  let tech = Mixsyn_circuit.Tech.generic_07um in
  let nl = D.build tech synth.PD.sizing in
  (match Mixsyn_engine.Dc.solve ~tech nl with
   | op ->
     let out = Mixsyn_circuit.Netlist.find_net nl "out" in
     let tr = Mixsyn_engine.Tran.solve ~tech nl op ~t_stop:6e-6 ~dt:10e-9 in
     let w = Mixsyn_engine.Tran.waveform tr out in
     let v0 = snd w.(0) in
     let rel = Array.map (fun (t, v) -> (t *. 1e6, v -. v0)) w in
     Format.printf "synthesized pulse shape (V vs us):@.%s@."
       (Mixsyn_util.Ascii_plot.line ~width:64 ~height:12 rel)
   | exception Mixsyn_engine.Dc.No_convergence _ -> ());

  (* the full Table 1, paper values side by side with ours *)
  let rows = PD.table1 ~seed:11 ~moves:40 () in
  Format.printf "%a@." PD.pp_rows rows;
  let power r = Mixsyn_synth.Spec.lookup r "power_w" in
  (match (PD.measure ~use_transient:true PD.manual, synth.PD.metrics) with
   | Some manual, synth_metrics ->
     (match (power manual, power synth_metrics) with
      | Some pm, Some ps when ps > 0.0 ->
        Format.printf "power reduction vs manual: %.1fx (paper reports 5.7x)@." (pm /. ps)
      | _ -> ())
   | _ -> ())
