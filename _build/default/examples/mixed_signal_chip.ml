(* Mixed-signal system assembly on a synthetic data-channel chip (the
   Fig. 3 setting): WRIGHT substrate-aware floorplanning, WREN global
   routing under SNR constraints, and RAIL power-grid synthesis.

   Run with:  dune exec examples/mixed_signal_chip.exe *)

module A = Mixsyn_assembly

let () =
  let blocks = A.Block.data_channel_testbench () in
  Format.printf "=== mixed-signal system assembly (paper Fig. 3 setting) ===@.@.";
  Format.printf "blocks:@.";
  List.iter
    (fun (b : A.Block.t) ->
      Format.printf "  %-14s %4.1f x %3.1f mm  %s@." b.A.Block.b_name
        (b.A.Block.bw *. 1e3) (b.A.Block.bh *. 1e3)
        (match b.A.Block.kind with
         | A.Block.Digital -> "digital (aggressor)"
         | A.Block.Clock -> "clock (aggressor)"
         | A.Block.Analog_sensitive -> "analog (sensitive)"
         | A.Block.Analog -> "analog"))
    blocks;

  (* WRIGHT: the substrate-noise term changes where the aggressors land *)
  let fp_aware = A.Floorplan.floorplan ~seed:5 ~noise_weight:2.0 blocks in
  let fp_blind = A.Floorplan.floorplan ~seed:5 ~noise_weight:0.0 blocks in
  Format.printf "@.floorplanning (WRIGHT):@.";
  List.iter
    (fun (name, fp) ->
      Format.printf "  %-12s %.2f mm2, victim substrate noise %.1f mV@." name
        (fp.A.Floorplan.fp_area *. 1e6)
        (A.Floorplan.total_victim_noise fp *. 1e3))
    [ ("noise-aware", fp_aware); ("noise-blind", fp_blind) ];

  (* WREN: route the signal nets under the three noise disciplines *)
  Format.printf "@.global routing (WREN):@.";
  List.iter
    (fun (name, mode) ->
      let r = A.Wren.route ~mode fp_aware in
      Format.printf "  %-12s %d/%d nets, %.1f mm wire, %4.0f um shared with aggressors@."
        name
        (List.length r.A.Wren.routed)
        (List.length r.A.Wren.routed + List.length r.A.Wren.unrouted)
        (r.A.Wren.total_length *. 1e3)
        (r.A.Wren.shared_length *. 1e6))
    [ ("noise-blind", A.Wren.Noise_blind);
      ("snr", A.Wren.Snr_constrained);
      ("segregated", A.Wren.Segregated) ];

  (* RAIL: synthesise the power grid against dc/transient/EM constraints *)
  Format.printf "@.power-grid synthesis (RAIL):@.";
  let pg = A.Power_grid.synthesize fp_aware in
  let show name (m : A.Power_grid.metrics) =
    Format.printf "  %-8s ir %5.2f%%  spike %5.2f%%  victim %5.2f%%  em %6.2fx  metal %.3f mm2@."
      name
      (m.A.Power_grid.ir_drop *. 100.)
      (m.A.Power_grid.spike *. 100.)
      (m.A.Power_grid.victim_bounce *. 100.)
      m.A.Power_grid.em_overload
      (m.A.Power_grid.metal_area *. 1e6)
  in
  show "before" pg.A.Power_grid.before;
  show "after" pg.A.Power_grid.after;
  Format.printf "  constraints %s after %d sizing iterations@."
    (if pg.A.Power_grid.meets then "MET" else "violated")
    pg.A.Power_grid.iterations
