(* The Fig. 2 experiment: six layouts of the identical CMOS opamp — four
   procedural-recipe baselines (standing in for the paper's manual layouts)
   and two KOAN/ANAGRAM II-style automatic layouts.

   Run with:  dune exec examples/opamp_layout.exe *)

module CF = Mixsyn_layout.Cell_flow

let () =
  let tech = Mixsyn_circuit.Tech.generic_07um in
  (* the identical opamp for every layout: a sized two-stage Miller OTA *)
  let x = [| 60e-6; 20e-6; 30e-6; 60e-6; 45e-6; 1e-6; 50e-6; 3e-12; 5e-12 |] in
  let nl = Mixsyn_circuit.Topology.miller_ota.Mixsyn_circuit.Template.build tech x in

  Format.printf "=== six layouts of the identical CMOS opamp (paper Fig. 2) ===@.@.";

  (* stacking preview *)
  let devices = Mixsyn_circuit.Netlist.mos_list nl in
  let st = Mixsyn_layout.Stacker.linear devices in
  Format.printf "%d devices -> %d stacks (%d merged junctions)@.@."
    (List.length devices)
    (List.length st.Mixsyn_layout.Stacker.stacks)
    st.Mixsyn_layout.Stacker.merged_junctions;

  let show (r : CF.report) =
    Format.printf "%-20s area %8.0f um2  wire %7.1f um  vias %3d  %-10s coupling %.2f fF@."
      r.CF.flow_name (r.CF.area_m2 *. 1e12) (r.CF.wirelength_m *. 1e6) r.CF.vias
      (if r.CF.complete then "routed" else "INCOMPLETE")
      (r.CF.sensitive_coupling_f *. 1e15)
  in
  (* four procedural baselines *)
  List.iter (fun style -> show (CF.procedural ~style nl)) [ 0; 1; 2; 3 ];
  (* two automatic layouts *)
  List.iter (fun seed -> show (CF.koan ~seed nl)) [ 23; 57 ];

  Format.printf
    "@.The automatic layouts compare favourably with the recipe baselines,@.";
  Format.printf "as the paper observes of KOAN/ANAGRAM II's results.@."
