(* Quickstart: size a two-stage Miller OTA against a specification set,
   verify it with the simulator, and print the result.

   Run with:  dune exec examples/quickstart.exe *)

module Spec = Mixsyn_synth.Spec
module Sizing = Mixsyn_synth.Sizing

let () =
  (* 1. the specification: what the circuit must achieve *)
  let specs =
    [ Spec.spec "gain_db" (Spec.At_least 70.0);
      Spec.spec "ugf_hz" (Spec.At_least 10e6);
      Spec.spec "phase_margin_deg" (Spec.At_least 60.0) ]
  in
  let objectives = [ Spec.minimize "power_w" ] in

  (* 2. the environment: a 5 pF load *)
  let context = [ ("cl", 5e-12); ("load_cap_f", 5e-12) ] in

  (* 3. pick a topology and size it with simulation in the loop (the
        FRIDGE-style strategy of the paper's Fig. 1b) *)
  let template = Mixsyn_circuit.Topology.miller_ota in
  let result =
    Sizing.size ~seed:5 ~context Sizing.Simulation_annealing template ~specs ~objectives
  in

  Format.printf "sized %s in %.2f s (%d simulator calls)@."
    template.Mixsyn_circuit.Template.t_name result.Sizing.elapsed_s result.Sizing.evaluations;
  Format.printf "specifications %s@."
    (if result.Sizing.meets_specs then "MET" else "VIOLATED");
  Format.printf "verified performance:@.  %a@." Spec.pp_performance result.Sizing.performance;
  Format.printf "device sizes:@.";
  Array.iteri
    (fun i p ->
      Format.printf "  %-4s = %s@." p.Mixsyn_circuit.Template.p_name
        (Mixsyn_util.Units.format result.Sizing.params.(i) ""))
    template.Mixsyn_circuit.Template.params;

  (* 4. compare with the knowledge-based route: an executable design plan
        solves the same specs in microseconds (Fig. 1a) *)
  let plan_result =
    Sizing.size ~context (Sizing.Design_plan Mixsyn_synth.Design_plan.plan_miller) template
      ~specs ~objectives
  in
  Format.printf "@.design-plan alternative (IDAC/OASYS style): specs %s, %.4f s@."
    (if plan_result.Sizing.meets_specs then "MET" else "VIOLATED")
    plan_result.Sizing.elapsed_s;
  Format.printf "  %a@." Spec.pp_performance plan_result.Sizing.performance
