(** Asymptotic Waveform Evaluation (Pillage & Rohrer [61]).

    Computes the first [2q] moments of a linear(ised) network by repeated
    back-substitution on a single LU factorisation of G, then matches them
    with a [q]-pole Padé approximant.  The result is a pole/residue transfer
    function that evaluates in O(q) — the fast electrical oracle behind
    ASTRX/OBLX's AC evaluation and RAIL's power-grid analysis.

    Moments are frequency-scaled before the Hankel solve to tame the
    notorious ill-conditioning; if the solve is still singular the order is
    reduced until it succeeds. *)

type tf = {
  poles : Complex.t array;
  residues : Complex.t array;
  moments : float array;   (** the raw moments m_0 .. m_{2q-1} *)
  order : int;             (** the order actually achieved *)
}

val moments :
  g:float array array -> c:float array array -> b:float array -> out:int ->
  count:int -> float array
(** [moments ~g ~c ~b ~out ~count] returns m_0..m_{count-1} of the transfer
    from source vector [b] to unknown [out], where the network is
    [(G + sC) x = b]. *)

val pade : float array -> order:int -> tf
(** Match the given moments with [order] poles (order reduced on numerical
    failure).  @raise Failure when even order 1 fails. *)

val of_network :
  g:float array array -> c:float array array -> b:float array -> out:int ->
  order:int -> tf

val of_circuit :
  ?tech:Mixsyn_circuit.Tech.t ->
  Mixsyn_circuit.Netlist.t ->
  Mixsyn_engine.Mna.op ->
  out:Mixsyn_circuit.Netlist.net ->
  order:int ->
  tf
(** AWE of the linearised circuit seen from its AC sources. *)

val eval : tf -> Complex.t -> Complex.t
(** H(s) = sum residues/(s - poles). *)

val magnitude : tf -> float -> float
(** |H(j 2 pi f)|. *)

val impulse_response : tf -> float -> float
(** h(t) = sum k_i exp(p_i t) (real part). *)

val step_response : tf -> float -> float
(** Integral of the impulse response from 0 to t. *)

val dominant_pole : tf -> Complex.t option
(** Stable pole with the smallest magnitude, if any. *)

val stable : tf -> bool
(** All poles strictly in the left half plane. *)

val stable_part : tf -> tf
(** Drop right-half-plane poles — the standard guard against the spurious
    unstable poles high-order Padé approximants produce.  Sound whenever the
    dropped residues are small; callers should validate the resulting
    response. *)
