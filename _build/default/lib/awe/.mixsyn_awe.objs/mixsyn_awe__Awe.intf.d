lib/awe/awe.mli: Complex Mixsyn_circuit Mixsyn_engine
