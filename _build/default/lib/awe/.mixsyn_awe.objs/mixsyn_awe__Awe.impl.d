lib/awe/awe.ml: Array Complex Float List Mixsyn_circuit Mixsyn_engine Mixsyn_util
