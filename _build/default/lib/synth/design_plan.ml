module Tech = Mixsyn_circuit.Tech

type env = (string * float) list

exception Plan_failed of string

type step =
  | Compute of string * (Tech.t -> env -> (string * float) list)
  | Check of string * (Tech.t -> env -> bool)

let compute label f = Compute (label, f)
let check label f = Check (label, f)

type t = {
  plan_name : string;
  topology : Mixsyn_circuit.Template.t;
  steps : step list;
  emit : env -> float array;
}

let get env key =
  match List.assoc_opt key env with
  | Some v -> v
  | None -> raise (Plan_failed (Printf.sprintf "missing design variable %s" key))

let seed_env specs =
  List.map
    (fun (s : Spec.t) ->
      let edge =
        match s.Spec.bound with
        | Spec.At_least v -> v
        | Spec.At_most v -> v
        | Spec.Between (lo, hi) -> 0.5 *. (lo +. hi)
      in
      ("spec_" ^ s.Spec.s_name, edge))
    specs

let run_steps tech steps env0 =
  List.fold_left
    (fun env step ->
      match step with
      | Compute (_, f) -> f tech env @ env
      | Check (label, f) ->
        if f tech env then env
        else raise (Plan_failed (Printf.sprintf "check failed: %s" label)))
    env0 steps

let execute ?(tech = Tech.generic_07um) ?(context = []) plan specs =
  let seeded =
    List.map (fun (name, v) -> ("spec_" ^ name, v)) context @ seed_env specs
  in
  let env = run_steps tech plan.steps seeded in
  (plan.emit env, env)

(* ------------------------------------------------------------------ *)
(* Shared design knowledge: sizing a differential input stage for a
   target transconductance at a chosen overdrive.                      *)

let default_vov = 0.2

let diff_stage_steps ~gm_key ~out_prefix =
  let key suffix = out_prefix ^ "_" ^ suffix in
  [ compute "bias the pair at the standard overdrive"
      (fun _tech env ->
        let gm = get env gm_key in
        let id = gm *. default_vov /. 2.0 in
        [ (key "id", id) ]);
    compute "input device width from gm and bias"
      (fun tech env ->
        let gm = get env gm_key in
        let id = get env (key "id") in
        let l = get env "l" in
        let w1 = gm *. gm *. l /. (2.0 *. tech.Tech.kp_n *. id) in
        [ (key "w1", Float.max tech.Tech.w_min w1) ]);
    compute "mirror load width at matched overdrive"
      (fun tech env ->
        let id = get env (key "id") in
        let l = get env "l" in
        let vov = 0.25 in
        let w3 = 2.0 *. id *. l /. (tech.Tech.kp_p *. vov *. vov) in
        [ (key "w3", Float.max tech.Tech.w_min w3) ]);
    check "input pair remains in moderate inversion"
      (fun _tech env ->
        let gm = get env gm_key in
        let id = get env (key "id") in
        gm /. id < 25.0) ]

(* tail current source at a fixed overdrive *)
let tail_step ~id_key ~out_key =
  compute "tail current source width"
    (fun tech env ->
      let ib = 2.0 *. get env id_key in
      let l = get env "l" in
      let vov = 0.25 in
      let w5 = 2.0 *. ib *. l /. (tech.Tech.kp_n *. vov *. vov) in
      [ (out_key, Float.max tech.Tech.w_min w5); ("ib", ib) ])

(* choose channel length from the gain requirement: first-order gain of a
   single stage is ~ 2/(vov*lambda) = 2L/(vov*lambda_factor) *)
let choose_length ~stages ~gain_key =
  compute "channel length from the gain requirement"
    (fun tech env ->
      let gain_db = get env gain_key in
      let gain = 10.0 ** (gain_db /. 20.0) in
      let per_stage = gain ** (1.0 /. float_of_int stages) in
      (* per-stage gain ~ gm/(2*lambda*id) = 1/(vov*lambda) with margin 2x *)
      let l =
        2.0 *. per_stage *. default_vov *. tech.Tech.lambda_factor /. 2.0
      in
      [ ("l", Float.min 5e-6 (Float.max tech.Tech.l_min l)) ])

let plan_ota_5t =
  { plan_name = "plan-ota-5t";
    topology = Mixsyn_circuit.Topology.ota_5t;
    steps =
      [ compute "load capacitance from context"
          (fun _tech env ->
            [ ("cl", try get env "spec_load_cap_f" with Plan_failed _ -> 2e-12) ]);
        choose_length ~stages:1 ~gain_key:"spec_gain_db";
        compute "input gm from the unity-gain frequency"
          (fun _tech env ->
            let ugf = get env "spec_ugf_hz" in
            let cl = get env "cl" in
            [ ("gm1", 2.0 *. Float.pi *. ugf *. cl *. 1.3) ]) ]
      @ diff_stage_steps ~gm_key:"gm1" ~out_prefix:"in"
      @ [ tail_step ~id_key:"in_id" ~out_key:"w5";
          check "power budget respected when specified"
            (fun tech env ->
              match List.assoc_opt "spec_power_w" env with
              | None -> true
              | Some budget -> 2.0 *. tech.Tech.vdd *. get env "ib" <= budget) ];
    emit =
      (fun env ->
        [| get env "in_w1"; get env "in_w3"; get env "w5"; get env "l";
           get env "ib"; get env "cl" |]) }

let plan_miller =
  { plan_name = "plan-miller";
    topology = Mixsyn_circuit.Topology.miller_ota;
    steps =
      [ compute "load capacitance from context"
          (fun _tech env ->
            [ ("cl", try get env "spec_load_cap_f" with Plan_failed _ -> 5e-12) ]);
        choose_length ~stages:2 ~gain_key:"spec_gain_db";
        compute "compensation capacitor for the phase-margin target"
          (fun _tech env ->
            let cl = get env "cl" in
            let pm = try get env "spec_phase_margin_deg" with Plan_failed _ -> 60.0 in
            (* cc/cl = 0.22 gives ~60 deg; scale with the requirement *)
            let ratio = 0.22 *. (1.0 +. ((pm -. 60.0) /. 60.0)) in
            [ ("cc", Float.max 0.2e-12 (ratio *. cl)) ]);
        compute "input gm from the unity-gain frequency"
          (fun _tech env ->
            let ugf = get env "spec_ugf_hz" in
            let cc = get env "cc" in
            [ ("gm1", 2.0 *. Float.pi *. ugf *. cc *. 1.3) ]) ]
      @ diff_stage_steps ~gm_key:"gm1" ~out_prefix:"in"
      @ [ tail_step ~id_key:"in_id" ~out_key:"w5";
          compute "second-stage gm to push out the output pole"
            (fun _tech env ->
              let ugf = get env "spec_ugf_hz" in
              let cl = get env "cl" in
              [ ("gm6", 2.0 *. Float.pi *. 2.5 *. ugf *. cl) ]);
          compute "second-stage device sizes"
            (fun tech env ->
              let gm6 = get env "gm6" in
              let l = get env "l" in
              let vov6 = 0.25 in
              let i7 = gm6 *. vov6 /. 2.0 in
              let w6 = gm6 *. gm6 *. l /. (2.0 *. tech.Tech.kp_p *. i7) in
              let ib = get env "ib" in
              let w5 = get env "w5" in
              let w7 = w5 *. i7 /. ib in
              [ ("i7", i7); ("w6", Float.max tech.Tech.w_min w6);
                ("w7", Float.max tech.Tech.w_min w7) ]);
          check "second stage current stays practical"
            (fun _tech env -> get env "i7" < 50e-3) ];
    emit =
      (fun env ->
        [| get env "in_w1"; get env "in_w3"; get env "w5"; get env "w6";
           get env "w7"; get env "l"; get env "ib"; get env "cc"; get env "cl" |]) }

let plan_folded_cascode =
  { plan_name = "plan-folded-cascode";
    topology = Mixsyn_circuit.Topology.folded_cascode;
    steps =
      [ compute "load capacitance from context"
          (fun _tech env ->
            [ ("cl", try get env "spec_load_cap_f" with Plan_failed _ -> 2e-12) ]);
        (* cascoding squares the per-stage gain, but the fixed cascode
           gate biases and body effect eat margin: budget the length as a
           two-stage design with an extra 2x *)
        choose_length ~stages:2 ~gain_key:"spec_gain_db";
        compute "derate the length for bias margins"
          (fun tech env -> [ ("l", Float.min 5e-6 (Float.max tech.Tech.l_min (1.5 *. get env "l"))) ]);
        compute "input gm from the unity-gain frequency"
          (fun _tech env ->
            let ugf = get env "spec_ugf_hz" in
            let cl = get env "cl" in
            [ ("gm1", 2.0 *. Float.pi *. ugf *. cl *. 1.3) ]) ]
      (* OASYS-style reuse: the same differential-stage subplan the other
         plans use *)
      @ diff_stage_steps ~gm_key:"gm1" ~out_prefix:"in"
      @ [ compute "fold the branches: current sources and cascodes"
            (fun tech env ->
              let id = get env "in_id" in
              let l = get env "l" in
              let ib = 2.0 *. id in
              (* structural ratios of the template: the top sources mirror
                 the bias diode 2:1 (carry 2*ib), so each folded branch
                 carries 2*ib - ib/2 = 1.5*ib *)
              let i_top = 2.0 *. ib in
              let i_branch = 1.5 *. ib in
              let size kp i vov = 2.0 *. i *. l /. (kp *. vov *. vov) in
              let wp = size tech.Tech.kp_p i_top 0.25 in
              (* cascode gates sit at fixed 1.6 V from the rails: overdrives
                 chosen so every device keeps saturation headroom *)
              let wcp = size tech.Tech.kp_p i_branch 0.25 in
              let wcn = size tech.Tech.kp_n i_branch 0.32 in
              let wn = size tech.Tech.kp_n i_branch 0.22 in
              [ ("ib", ib); ("wp", Float.max tech.Tech.w_min wp);
                ("wcp", Float.max tech.Tech.w_min wcp);
                ("wcn", Float.max tech.Tech.w_min wcn);
                ("wn", Float.max tech.Tech.w_min wn) ]);
          check "output swing survives two cascodes per side"
            (fun tech env ->
              ignore env;
              tech.Tech.vdd -. (4.0 *. 0.25) -. 0.6 > 0.5) ];
    emit =
      (fun env ->
        [| get env "in_w1"; get env "wp"; get env "wcp"; get env "wn";
           get env "wcn"; get env "l"; get env "ib"; get env "cl" |]) }

let all = [ plan_ota_5t; plan_miller; plan_folded_cascode ]
