(** Manufacturability-aware synthesis — the worst-case extension of
    ASTRX/OBLX ([31]).

    The robust cost of a candidate sizing is its violation at the worst
    corner of the disturbance space (supply, temperature, threshold, Kp),
    found by the {!Mixsyn_opt.Corner_search} sweep.  The paper reports a
    4X-10X CPU increase over nominal synthesis; the benchmark records the
    measured ratio. *)

type report = {
  nominal : Sizing.result;
  robust : Sizing.result;
  nominal_worst_violation : float;  (** nominal design scored at its worst corner *)
  robust_worst_violation : float;
  worst_corner : Mixsyn_circuit.Tech.corner;
  cpu_ratio : float;                (** robust synthesis time / nominal time *)
}

val worst_case_violation :
  ?tech:Mixsyn_circuit.Tech.t ->
  Mixsyn_circuit.Template.t ->
  float array ->
  specs:Spec.t list ->
  Mixsyn_circuit.Tech.corner * float
(** Worst corner of a fixed design over {!Mixsyn_circuit.Tech.corner_space}
    (evaluated with the equation models for speed). *)

val synthesize :
  ?tech:Mixsyn_circuit.Tech.t ->
  ?seed:int ->
  Mixsyn_circuit.Template.t ->
  specs:Spec.t list ->
  objectives:Spec.objective list ->
  report
(** Nominal equation-annealing synthesis, then the corner-robust rerun
    whose cost is the worst over all corners. *)

val yield_estimate :
  ?tech:Mixsyn_circuit.Tech.t ->
  ?seed:int ->
  ?samples:int ->
  Mixsyn_circuit.Template.t ->
  float array ->
  specs:Spec.t list ->
  float
(** Monte-Carlo parametric yield: the fraction of sampled process/environment
    points (Gaussian Vth/Kp, uniform supply and temperature) at which the
    design meets every spec — the "statistical process tolerances" concern
    the paper raises for industrial practice.  Uses the equation models, so
    thousands of samples cost milliseconds. *)
