type node =
  | Leaf of {
      leaf_name : string;
      template : Mixsyn_circuit.Template.t;
      strategy : Sizing.strategy;
      context : (string * float) list;
    }
  | Composite of {
      comp_name : string;
      children : node list;
      translate : margin:float -> Spec.t list -> (string * Spec.t list) list;
      compose : (string * Spec.performance) list -> Spec.performance;
    }

type result = {
  node_name : string;
  performance : Spec.performance;
  children : result list;
  sizing : Sizing.result option;
  redesigns : int;
}

let node_name = function
  | Leaf { leaf_name; _ } -> leaf_name
  | Composite { comp_name; _ } -> comp_name

let rec design ?(tech = Mixsyn_circuit.Tech.generic_07um) ?(seed = 21) ?(max_redesigns = 2)
    node specs =
  match node with
  | Leaf { leaf_name; template; strategy; context } ->
    let sizing =
      Sizing.size ~tech ~seed ~context strategy template ~specs
        ~objectives:[ Spec.minimize "power_w" ]
    in
    { node_name = leaf_name;
      performance = sizing.Sizing.performance;
      children = [];
      sizing = Some sizing;
      redesigns = 0 }
  | Composite { comp_name; children; translate; compose } ->
    (* top-down: translate, design children; bottom-up: compose, verify;
       tighten the translation margin when the composition falls short *)
    let rec attempt k margin =
      let child_specs = translate ~margin specs in
      let child_results =
        List.map
          (fun child ->
            let name = node_name child in
            let specs_for_child =
              match List.assoc_opt name child_specs with
              | Some s -> s
              | None -> []
            in
            design ~tech ~seed:(seed + (Hashtbl.hash name mod 97)) ~max_redesigns child
              specs_for_child)
          children
      in
      let performance =
        compose (List.map (fun r -> (r.node_name, r.performance)) child_results)
      in
      if Spec.satisfied specs performance || k >= max_redesigns then
        { node_name = comp_name;
          performance;
          children = child_results;
          sizing = None;
          redesigns = k }
      else attempt (k + 1) (margin *. 1.1)
    in
    attempt 0 1.0

let meets result specs = Spec.satisfied specs result.performance

(* ------------------------------------------------------------------ *)
(* Worked composite: a two-stage amplification chain.                  *)

let get_or specs name default =
  List.fold_left
    (fun acc (s : Spec.t) ->
      if s.Spec.s_name = name then
        match s.Spec.bound with
        | Spec.At_least v -> v
        | Spec.At_most v -> v
        | Spec.Between (lo, hi) -> 0.5 *. (lo +. hi)
      else acc)
    default specs

let two_stage_amplifier =
  let translate ~margin specs =
    let gain = get_or specs "gain_db" 80.0 *. margin in
    let ugf = get_or specs "ugf_hz" 10e6 *. margin in
    let pm = get_or specs "phase_margin_deg" 60.0 in
    (* gain budget: the front stage carries most of it; both stages need
       bandwidth beyond the chain target since cascading erodes it *)
    let stage_specs fraction =
      [ Spec.spec "gain_db" (Spec.At_least (gain *. fraction));
        Spec.spec "ugf_hz" (Spec.At_least (1.3 *. ugf));
        Spec.spec "phase_margin_deg" (Spec.At_least (pm +. 10.0)) ]
    in
    [ ("gain-stage", stage_specs 0.65); ("output-stage", stage_specs 0.35) ]
  in
  let compose child_perfs =
    let get name metric default =
      match List.assoc_opt name child_perfs with
      | None -> default
      | Some p -> Option.value (Spec.lookup p metric) ~default
    in
    let g1 = get "gain-stage" "gain_db" 0.0 and g2 = get "output-stage" "gain_db" 0.0 in
    let u1 = get "gain-stage" "ugf_hz" 0.0 and u2 = get "output-stage" "ugf_hz" 0.0 in
    let p1 = get "gain-stage" "phase_margin_deg" 0.0 in
    let p2 = get "output-stage" "phase_margin_deg" 0.0 in
    [ ("gain_db", g1 +. g2);
      (* the chain crosses unity near the slower stage, slightly below *)
      ("ugf_hz", 0.8 *. Float.min u1 u2);
      ("phase_margin_deg", Float.min p1 p2 -. 10.0);
      ("power_w",
       get "gain-stage" "power_w" 0.0 +. get "output-stage" "power_w" 0.0);
      ("area_m2", get "gain-stage" "area_m2" 0.0 +. get "output-stage" "area_m2" 0.0) ]
  in
  Composite
    { comp_name = "two-stage-chain";
      children =
        [ Leaf
            { leaf_name = "gain-stage";
              template = Mixsyn_circuit.Topology.miller_ota;
              strategy = Sizing.Awe_annealing;
              context = [ ("cl", 1e-12) ] };
          Leaf
            { leaf_name = "output-stage";
              template = Mixsyn_circuit.Topology.ota_5t;
              strategy = Sizing.Awe_annealing;
              context = [ ("cl", 5e-12) ] } ];
      translate;
      compose }

let rec pp ppf r =
  Format.fprintf ppf "%s (%d redesigns): %a@\n" r.node_name r.redesigns Spec.pp_performance
    r.performance;
  List.iter (fun c -> Format.fprintf ppf "  %a" pp c) r.children
