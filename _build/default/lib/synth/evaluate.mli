(** Performance evaluation of a sized OTA template — the oracle inside every
    optimization loop of Fig. 1b.

    Three evaluators with the paper's cost/accuracy trade-off:
    - {!full_simulation}: DC Newton + AC sweep on the engine (FRIDGE [22]);
    - {!awe_hybrid}: DC Newton + AWE instead of the frequency sweep
      (the ASTRX/OBLX style [23], here with the dc part retained);
    - {!Equations}: closed-form square-law design equations, no matrix work
      at all (the evaluation inside design plans and OPTIMAN [10]).

    All evaluators produce the same metric names: [gain_db], [ugf_hz],
    [phase_margin_deg], [power_w], [area_m2], [swing_low_v], [swing_high_v]. *)

val full_simulation :
  ?tech:Mixsyn_circuit.Tech.t ->
  Mixsyn_circuit.Template.t ->
  float array ->
  Spec.performance option
(** [None] when the operating point does not converge. *)

val awe_hybrid :
  ?tech:Mixsyn_circuit.Tech.t ->
  Mixsyn_circuit.Template.t ->
  float array ->
  Spec.performance option

val sweep_freqs : float array
(** The AC grid used by [full_simulation]. *)
