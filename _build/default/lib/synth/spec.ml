type bound =
  | At_least of float
  | At_most of float
  | Between of float * float

type t = {
  s_name : string;
  bound : bound;
  weight : float;
}

type objective = {
  o_name : string;
  direction : [ `Minimize | `Maximize ];
  o_weight : float;
}

type performance = (string * float) list

let spec ?(weight = 1.0) s_name bound = { s_name; bound; weight }

let minimize ?(weight = 1.0) o_name = { o_name; direction = `Minimize; o_weight = weight }
let maximize ?(weight = 1.0) o_name = { o_name; direction = `Maximize; o_weight = weight }

let lookup perf name = List.assoc_opt name perf

(* normalised shortfall relative to the bound magnitude *)
let relative shortfall reference =
  shortfall /. Float.max (Float.abs reference) 1e-30

let violation_of s perf =
  match lookup perf s.s_name with
  | None -> s.weight *. 10.0 (* missing metric: heavily penalised *)
  | Some v ->
    let raw =
      match s.bound with
      | At_least target -> if v >= target then 0.0 else relative (target -. v) target
      | At_most target -> if v <= target then 0.0 else relative (v -. target) target
      | Between (lo, hi) ->
        if v < lo then relative (lo -. v) lo
        else if v > hi then relative (v -. hi) hi
        else 0.0
    in
    s.weight *. raw

let total_violation specs perf =
  List.fold_left (fun acc s -> acc +. violation_of s perf) 0.0 specs

let satisfied specs perf = List.for_all (fun s -> violation_of s perf = 0.0) specs

let objective_value objectives perf =
  List.fold_left
    (fun acc o ->
      match lookup perf o.o_name with
      | None -> acc
      | Some v ->
        let magnitude = log (Float.max (Float.abs v) 1e-30) in
        acc +. (o.o_weight *. (match o.direction with `Minimize -> magnitude | `Maximize -> -.magnitude)))
    0.0 objectives

let violation_dominance = 100.0

let cost ~specs ~objectives perf =
  let v = total_violation specs perf in
  (violation_dominance *. v) +. objective_value objectives perf

let pp_performance ppf perf =
  List.iter (fun (name, v) -> Format.fprintf ppf "%s=%g " name v) perf
