(** The Table 1 experiment: synthesis of a particle-detector front-end
    (charge-sensitive amplifier + 4-stage pulse shaper) and comparison with
    an expert manual design.

    Metrics, with Table 1's names:
    - [peaking_time_s]   — time from charge injection to the shaper peak;
    - [counting_rate_hz] — 1 / (time for the pulse to return within 1 % of
      its peak), the rate at which pulses stay distinguishable;
    - [enc_electrons]    — equivalent noise charge;
    - [gain_v_per_fc]    — peak output voltage per femtocoulomb;
    - [swing_v]          — symmetric output range;
    - [power_w], [area_m2] — the minimisation objectives. *)

type metrics = Spec.performance

val measure :
  ?tech:Mixsyn_circuit.Tech.t ->
  ?config:Mixsyn_circuit.Detector.config ->
  ?use_transient:bool ->
  Mixsyn_circuit.Detector.sizing ->
  metrics option
(** Full measurement of one sizing.  The pulse shape comes from an order-8
    AWE model of the linearised front-end by default; [use_transient] runs
    the trapezoidal engine instead (slower, used for final verification).
    [None] when the bias point fails. *)

val specs : Spec.t list
(** The Table 1 specification column. *)

val objectives : Spec.objective list
(** Minimise power, then area. *)

val manual : Mixsyn_circuit.Detector.sizing
(** The expert baseline (Table 1's "manual" column). *)

type synthesis = {
  sizing : Mixsyn_circuit.Detector.sizing;
  metrics : metrics;
  evaluations : int;
  elapsed_s : float;
  meets : bool;
}

val synthesize : ?tech:Mixsyn_circuit.Tech.t -> ?seed:int -> ?moves:int -> unit -> synthesis
(** AMGIE-style automatic sizing: annealing + simplex polish against
    {!specs}, minimising {!objectives}. *)

(** One row of the reproduced Table 1. *)
type row = {
  metric : string;
  spec_text : string;
  paper_manual : string;
  paper_synthesis : string;
  ours_manual : string;
  ours_synthesis : string;
}

val table1 : ?tech:Mixsyn_circuit.Tech.t -> ?seed:int -> ?moves:int -> unit -> row list

val pp_rows : Format.formatter -> row list -> unit
