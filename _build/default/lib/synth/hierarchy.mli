(** The hierarchical, performance-driven design methodology of Section 2.1.

    A design node is either a leaf cell (sized directly by a {!Sizing}
    strategy) or a composite whose specifications are first *translated*
    into specifications for its subblocks (top-down), after which each
    subblock is designed and the achieved performances are *composed* back
    into block-level performance (bottom-up).  When composition misses the
    block specs, the translation is retried with a tightened margin — the
    "redesign iterations" the methodology prescribes.

    The translation step is the AMGIE/[29]-style budgeting move: split a
    block-level budget across subblocks using designer-provided weights. *)

type node =
  | Leaf of {
      leaf_name : string;
      template : Mixsyn_circuit.Template.t;
      strategy : Sizing.strategy;
      context : (string * float) list;
    }
  | Composite of {
      comp_name : string;
      children : node list;
      translate : margin:float -> Spec.t list -> (string * Spec.t list) list;
          (** block specs -> per-child spec sets, keyed by child name *)
      compose : (string * Spec.performance) list -> Spec.performance;
          (** child performances -> block performance *)
    }

type result = {
  node_name : string;
  performance : Spec.performance;
  children : result list;
  sizing : Sizing.result option;  (** present on leaves *)
  redesigns : int;
}

val design :
  ?tech:Mixsyn_circuit.Tech.t ->
  ?seed:int ->
  ?max_redesigns:int ->
  node ->
  Spec.t list ->
  result
(** Run the top-down/bottom-up alternation.  Redesign loops tighten the
    translation margin by 10 % per retry. *)

val meets : result -> Spec.t list -> bool

val two_stage_amplifier : node
(** Worked composite: an amplification chain decomposed into a gain stage
    and an output stage, each a Miller/5T leaf — gain budget split in dB,
    bandwidth budget passed through, power summed on the way up. *)

val pp : Format.formatter -> result -> unit
