type architecture = Flash | Sar | Pipeline | Delta_sigma

let architecture_name = function
  | Flash -> "flash"
  | Sar -> "sar"
  | Pipeline -> "pipeline"
  | Delta_sigma -> "delta-sigma"

let all_architectures = [ Flash; Sar; Pipeline; Delta_sigma ]

type adc_spec = {
  bits : int;
  rate_hz : float;
  vref : float;
}

type estimate = {
  arch : architecture;
  feasible : bool;
  infeasible_reason : string option;
  power_w : float;
  area_m2 : float;
  comparator_count : int;
  comparator_bw_hz : float;
  comparator_gain_db : float;
}

(* behavioural constants for the generic 0.7 um class *)
let comparator_power_per_bw = 2e-10   (* W per Hz of comparator bandwidth *)
let comparator_area = 2.5e-9          (* m^2 each *)
let dac_area_per_bit = 4e-9
let digital_power_per_hz_bit = 2e-12
let max_comparator_bw = 400e6         (* what the technology supports *)
let oversampling = 64                 (* delta-sigma OSR *)

(* gain to resolve half an LSB from a ~Vref/4 overdrive reference point *)
let gain_needed_db spec =
  let lsb = spec.vref /. (2.0 ** float_of_int spec.bits) in
  20.0 *. log10 (Float.max 10.0 (spec.vref /. lsb *. 2.0))

let estimate spec arch =
  let two_n = 2.0 ** float_of_int spec.bits in
  let gain = gain_needed_db spec in
  let make ~count ~bw ~extra_power ~extra_area =
    let feasible, why =
      if bw > max_comparator_bw then
        (false, Some (Printf.sprintf "comparators need %.0f MHz > %.0f MHz available"
                        (bw /. 1e6) (max_comparator_bw /. 1e6)))
      else if count > 4096 then (false, Some "comparator count explodes")
      else (true, None)
    in
    { arch;
      feasible;
      infeasible_reason = why;
      power_w =
        (float_of_int count *. comparator_power_per_bw *. bw)
        +. extra_power
        +. (digital_power_per_hz_bit *. spec.rate_hz *. float_of_int spec.bits);
      area_m2 = (float_of_int count *. comparator_area) +. extra_area;
      comparator_count = count;
      comparator_bw_hz = bw;
      comparator_gain_db = gain }
  in
  match arch with
  | Flash ->
    (* 2^N - 1 comparators, each settling in one sample period *)
    make
      ~count:(int_of_float two_n - 1)
      ~bw:(3.0 *. spec.rate_hz)
      ~extra_power:0.0
      ~extra_area:(dac_area_per_bit *. float_of_int spec.bits)
  | Sar ->
    (* one comparator cycled N times per sample *)
    make ~count:1
      ~bw:(3.0 *. spec.rate_hz *. float_of_int spec.bits)
      ~extra_power:(1e-12 *. spec.rate_hz *. float_of_int spec.bits)
      ~extra_area:(2.0 *. dac_area_per_bit *. float_of_int spec.bits)
  | Pipeline ->
    (* one 1.5-bit stage per bit: N comparator pairs plus residue amps *)
    make ~count:(2 * spec.bits)
      ~bw:(4.0 *. spec.rate_hz)
      ~extra_power:(float_of_int spec.bits *. 3e-11 *. spec.rate_hz)
      ~extra_area:(float_of_int spec.bits *. 3.0 *. dac_area_per_bit)
  | Delta_sigma ->
    (* one comparator at the oversampled rate; the loop filter dominates *)
    make ~count:1
      ~bw:(3.0 *. spec.rate_hz *. float_of_int oversampling)
      ~extra_power:(2e-11 *. spec.rate_hz *. float_of_int oversampling)
      ~extra_area:(6.0 *. dac_area_per_bit *. float_of_int spec.bits)

let select spec =
  let estimates = List.map (estimate spec) all_architectures in
  let best =
    List.fold_left
      (fun acc e ->
        if not e.feasible then acc
        else
          match acc with
          | None -> Some e
          | Some b -> if e.power_w < b.power_w then Some e else Some b)
      None estimates
  in
  (estimates, best)

let translate spec chosen =
  [ Spec.spec "gain_db" (Spec.At_least chosen.comparator_gain_db);
    Spec.spec "ugf_hz" (Spec.At_least chosen.comparator_bw_hz);
    Spec.spec "swing_high_v" (Spec.At_least (0.6 *. spec.vref)) ]

type synthesis = {
  chosen : estimate;
  comparator_specs : Spec.t list;
  comparator : Sizing.result;
  total_power_w : float;
}

let synthesize ?(tech = Mixsyn_circuit.Tech.generic_07um) ?(seed = 29) spec =
  let _, best = select spec in
  match best with
  | None -> failwith "converter: no feasible architecture"
  | Some chosen ->
    let comparator_specs = translate spec chosen in
    (* size against 8%-guard-banded targets (standard budgeting practice),
       verify against the translated specs proper; retry seeds if needed *)
    let guarded =
      List.map
        (fun (s : Spec.t) ->
          match s.Spec.bound with
          | Spec.At_least v -> { s with Spec.bound = Spec.At_least (1.08 *. v) }
          | Spec.At_most v -> { s with Spec.bound = Spec.At_most (v /. 1.08) }
          | Spec.Between _ -> s)
        comparator_specs
    in
    let schedule =
      { Mixsyn_opt.Anneal.t_start = 50.0; t_end = 1e-3; cooling = 0.88; moves_per_stage = 60 }
    in
    let attempt k =
      let r =
        Sizing.size ~tech ~seed:(seed + k) ~schedule Sizing.Awe_annealing
          Mixsyn_circuit.Topology.comparator ~specs:guarded
          ~objectives:[ Spec.minimize "power_w" ]
      in
      { r with
        Sizing.meets_specs = Spec.satisfied comparator_specs r.Sizing.performance;
        cost = Spec.cost ~specs:comparator_specs ~objectives:[ Spec.minimize "power_w" ]
            r.Sizing.performance }
    in
    let rec search k best =
      if k >= 3 then best
      else begin
        let r = attempt k in
        if r.Sizing.meets_specs then r
        else search (k + 1) (if r.Sizing.cost < best.Sizing.cost then r else best)
      end
    in
    let first = attempt 0 in
    let comparator = if first.Sizing.meets_specs then first else search 1 first in
    let comparator_power =
      Option.value (Spec.lookup comparator.Sizing.performance "power_w") ~default:0.0
    in
    let total_power_w =
      chosen.power_w
      -. (float_of_int chosen.comparator_count *. comparator_power_per_bw
          *. chosen.comparator_bw_hz)
      +. (float_of_int chosen.comparator_count *. comparator_power)
    in
    { chosen; comparator_specs; comparator; total_power_w }
