(** High-level synthesis of A/D converters — the paper's opening
    hierarchical example ("for an analog-to-digital converter ... selecting
    between a flash, a successive approximation, a Delta-Sigma or any other
    topology") and the AZTECA/CATALYST / SDOPT line ([19,20]).

    Architectures are captured as behavioural models: feasibility rules plus
    power/area estimators parametrised by resolution and sample rate.
    {!select} picks the feasible architecture of least estimated power
    (topology selection), {!translate} maps the converter specification onto
    its critical subblock — the comparator — and {!synthesize} closes the
    loop by sizing that comparator on the device-level template with a real
    sizing engine: high-level synthesis feeding cell-level synthesis, the
    §2.1 methodology across two hierarchy levels. *)

type architecture = Flash | Sar | Pipeline | Delta_sigma

val architecture_name : architecture -> string
val all_architectures : architecture list

(** Converter requirement. *)
type adc_spec = {
  bits : int;           (** resolution *)
  rate_hz : float;      (** output sample rate *)
  vref : float;         (** full-scale reference, V *)
}

(** Behavioural estimate for one architecture at one spec point. *)
type estimate = {
  arch : architecture;
  feasible : bool;
  infeasible_reason : string option;
  power_w : float;
  area_m2 : float;
  comparator_count : int;
  comparator_bw_hz : float;   (** bandwidth each comparator must reach *)
  comparator_gain_db : float; (** gain needed to resolve half an LSB *)
}

val estimate : adc_spec -> architecture -> estimate

val select : adc_spec -> estimate list * estimate option
(** All estimates (for reporting) and the feasible one of least power. *)

val translate : adc_spec -> estimate -> Spec.t list
(** Comparator specifications implied by the chosen architecture
    (specification translation, §2.1). *)

type synthesis = {
  chosen : estimate;
  comparator_specs : Spec.t list;
  comparator : Sizing.result;
  total_power_w : float;  (** behavioural estimate refined with the sized comparator *)
}

val synthesize :
  ?tech:Mixsyn_circuit.Tech.t -> ?seed:int -> adc_spec -> synthesis
(** Architecture selection, spec translation, and device-level sizing of the
    comparator with the AWE-annealing engine.
    @raise Failure when no architecture is feasible. *)
