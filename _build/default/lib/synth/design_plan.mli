(** Knowledge-based circuit sizing: executable design plans (Fig. 1a).

    A plan is the IDAC/OASYS artifact: an ordered list of named steps that a
    human expert authored, each computing derived quantities from the
    specifications, earlier results and the technology, with explicit
    design-knowledge checks.  Execution is microseconds — the strength the
    paper credits to the approach — and the weakness is equally visible: a
    plan exists only for topologies someone took the time to encode
    (the 4x-the-design-effort observation of [5]).

    OASYS's contribution, hierarchical reuse, appears here as step-list
    combinators: {!plan_miller} reuses the differential-stage steps of
    {!plan_ota_5t} rather than duplicating them. *)

type env = (string * float) list

exception Plan_failed of string
(** A check step rejected the intermediate design. *)

type step

val compute : string -> (Mixsyn_circuit.Tech.t -> env -> (string * float) list) -> step
(** A derivation step: its bindings are appended to the environment. *)

val check : string -> (Mixsyn_circuit.Tech.t -> env -> bool) -> step
(** A design-knowledge guard; failure aborts the plan. *)

type t = {
  plan_name : string;
  topology : Mixsyn_circuit.Template.t;
  steps : step list;
  emit : env -> float array;  (** assemble the template parameter vector *)
}

val get : env -> string -> float
(** @raise Plan_failed when the key is missing. *)

val seed_env : Spec.t list -> env
(** Specification targets as [spec_<name>] bindings (the bound's edge
    value). *)

val execute :
  ?tech:Mixsyn_circuit.Tech.t ->
  ?context:(string * float) list ->
  t -> Spec.t list -> float array * env
(** Run the plan; returns the sized parameter vector and the full trace
    environment.  [context] entries become [spec_<name>] bindings alongside
    the specification targets.  @raise Plan_failed *)

val diff_stage_steps : gm_key:string -> out_prefix:string -> step list
(** Reusable subplan: size an NMOS differential pair + PMOS mirror for a
    required transconductance.  Reads [gm_key], ["l"]; writes
    [<prefix>_id], [<prefix>_w1], [<prefix>_w3]. *)

val plan_ota_5t : t
val plan_miller : t

val plan_folded_cascode : t
(** Reuses {!diff_stage_steps} a second time — the OASYS leverage story. *)

val all : t list
