lib/synth/converter.ml: Float List Mixsyn_circuit Mixsyn_opt Option Printf Sizing Spec
