lib/synth/sizing.mli: Design_plan Format Mixsyn_circuit Mixsyn_opt Spec
