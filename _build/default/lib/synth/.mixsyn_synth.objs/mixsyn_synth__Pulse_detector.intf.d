lib/synth/pulse_detector.mli: Format Mixsyn_circuit Spec
