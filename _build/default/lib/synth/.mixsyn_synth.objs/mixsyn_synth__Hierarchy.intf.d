lib/synth/hierarchy.mli: Format Mixsyn_circuit Sizing Spec
