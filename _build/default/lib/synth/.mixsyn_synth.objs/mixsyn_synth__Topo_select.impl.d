lib/synth/topo_select.ml: Array Equations Float List Mixsyn_circuit Mixsyn_opt Mixsyn_util Printf Spec
