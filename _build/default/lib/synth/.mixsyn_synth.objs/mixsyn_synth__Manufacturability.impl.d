lib/synth/manufacturability.ml: Equations Evaluate Float List Mixsyn_circuit Mixsyn_opt Mixsyn_util Option Sizing Spec Unix
