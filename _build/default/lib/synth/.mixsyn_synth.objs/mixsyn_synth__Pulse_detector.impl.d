lib/synth/pulse_detector.ml: Array Float Format List Mixsyn_awe Mixsyn_circuit Mixsyn_engine Mixsyn_opt Mixsyn_util Option Printf Spec String Unix
