lib/synth/design_plan.ml: Float List Mixsyn_circuit Printf Spec
