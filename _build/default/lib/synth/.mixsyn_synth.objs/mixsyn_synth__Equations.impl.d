lib/synth/equations.ml: Float List Mixsyn_circuit Mixsyn_util
