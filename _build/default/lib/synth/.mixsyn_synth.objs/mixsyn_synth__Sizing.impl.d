lib/synth/sizing.ml: Array Design_plan Equations Evaluate Format List Mixsyn_circuit Mixsyn_opt Mixsyn_util Option Spec Unix
