lib/synth/design_plan.mli: Mixsyn_circuit Spec
