lib/synth/converter.mli: Mixsyn_circuit Sizing Spec
