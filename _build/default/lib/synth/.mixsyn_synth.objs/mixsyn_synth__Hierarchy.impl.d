lib/synth/hierarchy.ml: Float Format Hashtbl List Mixsyn_circuit Option Sizing Spec
