lib/synth/topo_select.mli: Mixsyn_circuit Mixsyn_opt Spec
