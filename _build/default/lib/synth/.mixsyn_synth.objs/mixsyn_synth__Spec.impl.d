lib/synth/spec.ml: Float Format List
