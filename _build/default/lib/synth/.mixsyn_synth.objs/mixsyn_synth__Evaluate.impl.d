lib/synth/evaluate.ml: Complex Float Mixsyn_awe Mixsyn_circuit Mixsyn_engine Mixsyn_util Option
