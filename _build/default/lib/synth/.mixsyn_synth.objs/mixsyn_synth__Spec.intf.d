lib/synth/spec.mli: Format
