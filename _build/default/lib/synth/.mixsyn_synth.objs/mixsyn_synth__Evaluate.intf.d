lib/synth/evaluate.mli: Mixsyn_circuit Spec
