lib/synth/manufacturability.mli: Mixsyn_circuit Sizing Spec
