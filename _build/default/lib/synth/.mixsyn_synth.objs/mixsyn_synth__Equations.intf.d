lib/synth/equations.mli: Mixsyn_circuit Spec
