module Tech = Mixsyn_circuit.Tech
module Template = Mixsyn_circuit.Template

type report = {
  nominal : Sizing.result;
  robust : Sizing.result;
  nominal_worst_violation : float;
  robust_worst_violation : float;
  worst_corner : Tech.corner;
  cpu_ratio : float;
}

let violation_at tech template x ~specs corner =
  let cornered = Tech.apply_corner tech corner in
  match Equations.evaluate ~tech:cornered template x with
  | None -> 10.0
  | Some perf -> Spec.total_violation specs perf

let worst_case_violation ?(tech = Tech.generic_07um) template x ~specs =
  List.fold_left
    (fun ((_, best_v) as best) corner ->
      let v = violation_at tech template x ~specs corner in
      if v > best_v then (corner, v) else best)
    (Tech.nominal_corner, violation_at tech template x ~specs Tech.nominal_corner)
    Tech.corner_space

let synthesize ?(tech = Tech.generic_07um) ?(seed = 3) template ~specs ~objectives =
  let t0 = Unix.gettimeofday () in
  let nominal = Sizing.size ~tech ~seed Sizing.Equation_annealing template ~specs ~objectives in
  let t1 = Unix.gettimeofday () in
  (* robust synthesis: the annealing cost becomes the worst-corner cost,
     i.e. every move pays one evaluation per corner *)
  let evaluations = ref 0 in
  let robust_cost x =
    incr evaluations;
    List.fold_left
      (fun worst corner ->
        let cornered = Tech.apply_corner tech corner in
        match Equations.evaluate ~tech:cornered template x with
        | None -> Float.max worst 1e7
        | Some perf -> Float.max worst (Spec.cost ~specs ~objectives perf))
      neg_infinity Tech.corner_space
  in
  let rng = Mixsyn_util.Rng.create seed in
  let schedule =
    { Mixsyn_opt.Anneal.t_start = 50.0; t_end = 1e-3; cooling = 0.90; moves_per_stage = 120 }
  in
  let problem =
    { Mixsyn_opt.Anneal.initial = Template.midpoint template;
      cost = robust_cost;
      neighbor =
        (fun rng ~temp01 x -> Template.perturb template rng ~scale:(0.02 +. (0.3 *. temp01)) x) }
  in
  let outcome = Mixsyn_opt.Anneal.minimize ~schedule ~rng problem in
  let robust_params = outcome.Mixsyn_opt.Anneal.best in
  let t2 = Unix.gettimeofday () in
  let robust_perf =
    Option.value (Evaluate.full_simulation ~tech template robust_params) ~default:[]
  in
  let robust : Sizing.result =
    { strategy_name = "corner-robust-annealing";
      params = robust_params;
      performance = robust_perf;
      predicted = Option.value (Equations.evaluate ~tech template robust_params) ~default:[];
      cost = outcome.Mixsyn_opt.Anneal.best_cost;
      evaluations = !evaluations;
      elapsed_s = t2 -. t1;
      meets_specs = Spec.satisfied specs robust_perf }
  in
  let _, nominal_worst = worst_case_violation ~tech template nominal.Sizing.params ~specs in
  let worst_corner, robust_worst = worst_case_violation ~tech template robust_params ~specs in
  { nominal;
    robust;
    nominal_worst_violation = nominal_worst;
    robust_worst_violation = robust_worst;
    worst_corner;
    cpu_ratio = (t2 -. t1) /. Float.max (t1 -. t0) 1e-9 }

let yield_estimate ?(tech = Tech.generic_07um) ?(seed = 19) ?(samples = 2000) template x ~specs =
  let rng = Mixsyn_util.Rng.create seed in
  let pass = ref 0 in
  for _ = 1 to samples do
    let corner =
      { Tech.corner_name = "mc";
        d_vdd = Mixsyn_util.Rng.uniform rng (-0.1) 0.1;
        d_temp = Mixsyn_util.Rng.uniform rng (-60.0) 125.0;
        d_vth = Mixsyn_util.Rng.gaussian rng ~mean:0.0 ~sigma:0.015;
        d_kp = Mixsyn_util.Rng.gaussian rng ~mean:0.0 ~sigma:0.03 }
    in
    match Equations.evaluate ~tech:(Tech.apply_corner tech corner) template x with
    | Some perf when Spec.satisfied specs perf -> incr pass
    | Some _ | None -> ()
  done;
  float_of_int !pass /. float_of_int samples
