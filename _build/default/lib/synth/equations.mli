(** First-order design equations for the topology library.

    These are the hand-derived square-law expressions a designer (or IDAC's
    plan author, or ISAAC's simplifier) writes down: transconductances from
    W/L and bias, gain from gm/gds ratios, poles from node capacitances.
    Evaluation costs nanoseconds, which is what makes design plans and
    equation-based optimization fast (Fig. 1a and the OPASYN/OPTIMAN row of
    the paper); the price is first-order accuracy. *)

val supported : Mixsyn_circuit.Template.t -> bool

val evaluate :
  ?tech:Mixsyn_circuit.Tech.t ->
  Mixsyn_circuit.Template.t ->
  float array ->
  Spec.performance option
(** Same metric names as {!Evaluate.full_simulation}; [None] for templates
    without an equation model. *)

val gm_of : Mixsyn_circuit.Tech.t -> kp:float -> w:float -> l:float -> id:float -> float
(** Square-law transconductance sqrt(2 kp (W/L) Id). *)

val gds_of : Mixsyn_circuit.Tech.t -> l:float -> id:float -> float
(** Channel-length-modulation output conductance lambda(L) * Id. *)

val vov_of : kp:float -> w:float -> l:float -> id:float -> float
(** Overdrive voltage sqrt(2 Id / (kp W/L)). *)
