(** Performance specifications and their scoring.

    A specification set is the input of every frontend strategy (Fig. 1 of
    the paper): hard bounds plus optional optimization objectives.  Violation
    is normalised per-spec so one cost function serves annealing, genetic
    search and corner analysis alike. *)

type bound =
  | At_least of float
  | At_most of float
  | Between of float * float

type t = {
  s_name : string;  (** performance metric name, e.g. ["gain_db"] *)
  bound : bound;
  weight : float;   (** relative importance in the violation sum *)
}

type objective = {
  o_name : string;
  direction : [ `Minimize | `Maximize ];
  o_weight : float;
}

type performance = (string * float) list

val spec : ?weight:float -> string -> bound -> t
val minimize : ?weight:float -> string -> objective
val maximize : ?weight:float -> string -> objective

val lookup : performance -> string -> float option

val violation_of : t -> performance -> float
(** Normalised violation of one spec (0 when met). *)

val total_violation : t list -> performance -> float

val satisfied : t list -> performance -> bool

val objective_value : objective list -> performance -> float
(** Scalarised objective: sum of weighted log-magnitudes, oriented so that
    smaller is better. *)

val cost : specs:t list -> objectives:objective list -> performance -> float
(** The standard synthesis cost: a large violation term that dominates until
    all specs are met, plus the scalarised objectives. *)

val pp_performance : Format.formatter -> performance -> unit
