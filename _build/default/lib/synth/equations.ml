module Tech = Mixsyn_circuit.Tech
module Template = Mixsyn_circuit.Template

let gm_of (tech : Tech.t) ~kp ~w ~l ~id =
  (* square law capped by the weak-inversion limit gm <= Id/(n vT): the
     square-law estimate diverges from silicon exactly where optimizers like
     to hide (huge W at tiny Id) *)
  let vt = Mixsyn_util.Units.boltzmann *. tech.Tech.temp /. Mixsyn_util.Units.electron_charge in
  Float.min (sqrt (2.0 *. kp *. (w /. l) *. id)) (id /. (1.5 *. vt))

let gds_of (tech : Tech.t) ~l ~id = tech.Tech.lambda_factor /. l *. id

let vov_of ~kp ~w ~l ~id = sqrt (2.0 *. id /. (kp *. (w /. l)))

let deg_atan x = atan x *. 180.0 /. Float.pi

let gate_cap (tech : Tech.t) ~w ~l = (2.0 /. 3.0 *. tech.Tech.cox *. w *. l) +. (tech.Tech.cov *. w)

let ota_5t_equations (tech : Tech.t) x =
  match x with
  | [| w1; w3; w5; l; ib; cl |] ->
    let id = ib /. 2.0 in
    let gm1 = gm_of tech ~kp:tech.Tech.kp_n ~w:w1 ~l ~id in
    let gm3 = gm_of tech ~kp:tech.Tech.kp_p ~w:w3 ~l ~id in
    let gds2 = gds_of tech ~l ~id and gds4 = gds_of tech ~l ~id in
    let gain = gm1 /. (gds2 +. gds4) in
    let ugf = gm1 /. (2.0 *. Float.pi *. cl) in
    (* non-dominant pole at the mirror node *)
    let cmirror = gate_cap tech ~w:w3 ~l *. 2.0 in
    let p2 = gm3 /. (2.0 *. Float.pi *. cmirror) in
    let pm = 90.0 -. deg_atan (ugf /. (2.0 *. p2)) in
    let vov1 = vov_of ~kp:tech.Tech.kp_n ~w:w1 ~l ~id in
    let vov5 = vov_of ~kp:tech.Tech.kp_n ~w:w5 ~l ~id:ib in
    let vov4 = vov_of ~kp:tech.Tech.kp_p ~w:w3 ~l ~id in
    let vcm = Mixsyn_circuit.Topology.common_mode_fraction *. tech.Tech.vdd in
    let swing_low = vcm -. tech.Tech.vth0_n +. vov1 in
    let swing_high = tech.Tech.vdd -. vov4 in
    let power = tech.Tech.vdd *. 2.0 *. ib in
    let area = (2.0 *. w1 *. l) +. (2.0 *. w3 *. l) +. (2.0 *. w5 *. l) in
    ignore vov5;
    Some
      [ ("gain_db", 20.0 *. log10 gain);
        ("ugf_hz", ugf);
        ("phase_margin_deg", pm);
        ("power_w", power);
        ("area_m2", area);
        ("swing_low_v", swing_low);
        ("swing_high_v", swing_high) ]
  | _ -> None

let miller_equations (tech : Tech.t) x =
  match x with
  | [| w1; w3; w5; w6; w7; l; ib; cc; cl |] ->
    let id1 = ib /. 2.0 in
    let i7 = ib *. (w7 /. w5) in
    let gm1 = gm_of tech ~kp:tech.Tech.kp_n ~w:w1 ~l ~id:id1 in
    let gm6 = gm_of tech ~kp:tech.Tech.kp_p ~w:w6 ~l ~id:i7 in
    let gds2 = gds_of tech ~l ~id:id1 and gds4 = gds_of tech ~l ~id:id1 in
    let gds6 = gds_of tech ~l ~id:i7 and gds7 = gds_of tech ~l ~id:i7 in
    let a1 = gm1 /. (gds2 +. gds4) in
    let a2 = gm6 /. (gds6 +. gds7) in
    (* second-stage systematic offset: M6 mirrors vsg4, so its current wants
       to be id1 * w6/w3 while M7 sinks i7; the imbalance lands on the
       output through the stage output resistance and rails the stage when
       large (a first-order model of what the simulator shows exactly) *)
    let i6_implied = id1 *. (w6 /. w3) in
    let v_offset = (i6_implied -. i7) /. (gds6 +. gds7) in
    let derate = 1.0 /. (1.0 +. ((v_offset /. 0.5) ** 2.0)) in
    let a2 = a2 *. derate in
    let gain = a1 *. a2 in
    (* the compensation capacitor competes with the device parasitics it is
       wired across *)
    let cc_eff = cc +. gate_cap tech ~w:w6 ~l +. (0.3 *. gate_cap tech ~w:w1 ~l) in
    let ugf = gm1 /. (2.0 *. Float.pi *. cc_eff) in
    (* output pole (the nulling resistor cancels the RHP zero) and the
       mirror pole both erode the margin; pole splitting only works to the
       extent cc dominates the second-stage input capacitance *)
    let cgs6 = gate_cap tech ~w:w6 ~l in
    let split = cc /. (cc +. cgs6) in
    let p2 = gm6 *. split /. (2.0 *. Float.pi *. cl) in
    let gm3 = gm_of tech ~kp:tech.Tech.kp_p ~w:w3 ~l ~id:id1 in
    let p3 = gm3 /. (2.0 *. Float.pi *. (2.0 *. gate_cap tech ~w:w3 ~l)) in
    let pm = 90.0 -. deg_atan (ugf /. p2) -. deg_atan (ugf /. p3) in
    let vov6 = vov_of ~kp:tech.Tech.kp_p ~w:w6 ~l ~id:i7 in
    let vov7 = vov_of ~kp:tech.Tech.kp_n ~w:w7 ~l ~id:i7 in
    let swing_low = vov7 and swing_high = tech.Tech.vdd -. vov6 in
    let power = tech.Tech.vdd *. ((2.0 *. ib) +. i7) in
    let area =
      (2.0 *. w1 *. l) +. (2.0 *. w3 *. l) +. (2.0 *. w5 *. l) +. (w6 *. l) +. (w7 *. l)
    in
    Some
      [ ("gain_db", 20.0 *. log10 gain);
        ("ugf_hz", ugf);
        ("phase_margin_deg", pm);
        ("power_w", power);
        ("area_m2", area);
        ("swing_low_v", swing_low);
        ("swing_high_v", swing_high) ]
  | _ -> None

let folded_cascode_equations (tech : Tech.t) x =
  match x with
  | [| w1; wp; wcp; wn; wcn; l; ib; cl |] ->
    let id = ib /. 2.0 in
    (* each output branch carries roughly ib/2 extra *)
    let ibranch = ib /. 2.0 in
    let gm1 = gm_of tech ~kp:tech.Tech.kp_n ~w:w1 ~l ~id in
    let gmcp = gm_of tech ~kp:tech.Tech.kp_p ~w:wcp ~l ~id:ibranch in
    let gmcn = gm_of tech ~kp:tech.Tech.kp_n ~w:wcn ~l ~id:ibranch in
    let gds l id = gds_of tech ~l ~id in
    (* cascoded output resistances *)
    let rout_up = gmcp /. (gds l ibranch *. gds l (ibranch +. id)) in
    let rout_down = gmcn /. (gds l ibranch *. gds l ibranch) in
    let rout = 1.0 /. ((1.0 /. rout_up) +. (1.0 /. rout_down)) in
    let gain = gm1 *. rout in
    let ugf = gm1 /. (2.0 *. Float.pi *. cl) in
    (* non-dominant pole at the folding node *)
    let cfold = gate_cap tech ~w:wcp ~l +. gate_cap tech ~w:wp ~l in
    let p2 = gmcp /. (2.0 *. Float.pi *. cfold) in
    let pm = 90.0 -. deg_atan (ugf /. p2) in
    let vov_cn = vov_of ~kp:tech.Tech.kp_n ~w:wcn ~l ~id:ibranch in
    let vov_n = vov_of ~kp:tech.Tech.kp_n ~w:wn ~l ~id:ibranch in
    let vov_cp = vov_of ~kp:tech.Tech.kp_p ~w:wcp ~l ~id:ibranch in
    let vov_p = vov_of ~kp:tech.Tech.kp_p ~w:wp ~l ~id:(ibranch +. id) in
    let swing_low = vov_cn +. vov_n and swing_high = tech.Tech.vdd -. vov_cp -. vov_p in
    let power = tech.Tech.vdd *. (ib +. ib +. (2.0 *. ibranch) +. ib) in
    let area =
      ((2.0 *. w1) +. (2.0 *. wp) +. (2.0 *. wcp) +. (2.0 *. wn) +. (2.0 *. wcn)
       +. (4.0 *. w1) +. (wp /. 2.0))
      *. l
    in
    Some
      [ ("gain_db", 20.0 *. log10 gain);
        ("ugf_hz", ugf);
        ("phase_margin_deg", pm);
        ("power_w", power);
        ("area_m2", area);
        ("swing_low_v", swing_low);
        ("swing_high_v", swing_high) ]
  | _ -> None

let comparator_equations (tech : Tech.t) x =
  match x with
  | [| w1; w3; w5; w6; w7; l; ib |] ->
    (match miller_equations tech [| w1; w3; w5; w6; w7; l; ib; 1e-18; 0.05e-12 |] with
     | None -> None
     | Some perf ->
       (* without compensation the bandwidth is the first-stage pole *)
       Some
         (List.map
            (fun (name, v) ->
              if name = "ugf_hz" then begin
                let id1 = ib /. 2.0 in
                let gm1 = gm_of tech ~kp:tech.Tech.kp_n ~w:w1 ~l ~id:id1 in
                (name, gm1 /. (2.0 *. Float.pi *. 0.2e-12))
              end
              else (name, v))
            perf))
  | _ -> None

let evaluate ?(tech = Mixsyn_circuit.Tech.generic_07um) template x =
  let x = Template.clamp template x in
  match template.Template.t_name with
  | "ota-5t" -> ota_5t_equations tech x
  | "miller-ota" -> miller_equations tech x
  | "folded-cascode" -> folded_cascode_equations tech x
  | "comparator" -> comparator_equations tech x
  | _ -> None

let supported template =
  match template.Template.t_name with
  | "ota-5t" | "miller-ota" | "folded-cascode" | "comparator" -> true
  | _ -> false
