type t = { lo : float; hi : float }

let make a b = if a <= b then { lo = a; hi = b } else { lo = b; hi = a }

let point x = { lo = x; hi = x }

let lo t = t.lo
let hi t = t.hi
let width t = t.hi -. t.lo
let mid t = 0.5 *. (t.lo +. t.hi)
let contains t x = t.lo <= x && x <= t.hi
let subset a b = b.lo <= a.lo && a.hi <= b.hi
let intersects a b = a.lo <= b.hi && b.lo <= a.hi

let intersect a b =
  if intersects a b then Some { lo = Float.max a.lo b.lo; hi = Float.min a.hi b.hi }
  else None

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let add a b = { lo = a.lo +. b.lo; hi = a.hi +. b.hi }
let sub a b = { lo = a.lo -. b.hi; hi = a.hi -. b.lo }

let mul a b =
  let p1 = a.lo *. b.lo and p2 = a.lo *. b.hi and p3 = a.hi *. b.lo and p4 = a.hi *. b.hi in
  { lo = Float.min (Float.min p1 p2) (Float.min p3 p4);
    hi = Float.max (Float.max p1 p2) (Float.max p3 p4) }

let div a b =
  if contains b 0.0 then None
  else Some (mul a { lo = 1.0 /. b.hi; hi = 1.0 /. b.lo })

let neg t = { lo = -.t.hi; hi = -.t.lo }

let scale s t = if s >= 0.0 then { lo = s *. t.lo; hi = s *. t.hi } else { lo = s *. t.hi; hi = s *. t.lo }

let split t =
  let m = mid t in
  ({ lo = t.lo; hi = m }, { lo = m; hi = t.hi })

let pp ppf t = Format.fprintf ppf "[%g, %g]" t.lo t.hi
