(** Minimal ASCII charts for CLI output: waveforms, Bode magnitudes,
    pulse shapes.  No external plotting dependency — the examples and the
    benchmark harness render directly into the terminal. *)

val line :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  ?log_x:bool ->
  (float * float) array ->
  string
(** Render one series.  Points are linearly binned onto a [width] x
    [height] character grid; axes are annotated with the data ranges. *)

val multi :
  ?width:int ->
  ?height:int ->
  ?log_x:bool ->
  (string * (float * float) array) list ->
  string
(** Several series on shared axes, each drawn with its own glyph and
    listed in a legend. *)
