(** Polynomials with real coefficients, with complex root extraction.

    Used for transfer-function denominators produced by AWE and the symbolic
    simulator.  Coefficient order is ascending: [c.(k)] multiplies [x^k]. *)

type t = float array

val of_coeffs : float array -> t
(** Copies and trims trailing (near-)zero coefficients. *)

val degree : t -> int
val eval : t -> float -> float
val eval_complex : t -> Complex.t -> Complex.t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : float -> t -> t
val derivative : t -> t

val roots : ?iterations:int -> t -> Complex.t array
(** All complex roots by Durand–Kerner iteration.  Degree 0 yields [||]. *)

val from_roots : Complex.t array -> t
(** Monic real polynomial with the given conjugate-closed root set.
    Imaginary residue from numerical noise is discarded. *)

val pp : Format.formatter -> t -> unit
