(** Engineering-notation formatting and common physical constants. *)

val boltzmann : float
(** J/K *)

val electron_charge : float
(** C *)

val room_temperature : float
(** 300 K, the nominal simulation temperature. *)

val kelvin_of_celsius : float -> float

val format : ?digits:int -> float -> string -> string
(** [format v unit] renders with an SI prefix: [format 2.2e-5 "F"] is
    ["22 uF"]-style output (ASCII prefixes; micro is ["u"]). *)

val db : float -> float
(** [db x] is [20 log10 x]. *)

val undb : float -> float
