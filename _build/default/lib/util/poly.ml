type t = float array

let trim c =
  let n = ref (Array.length c) in
  while !n > 1 && Float.abs c.(!n - 1) = 0.0 do
    decr n
  done;
  Array.sub c 0 !n

let of_coeffs c = trim (Array.copy c)

let degree c = Array.length c - 1

let eval c x =
  let acc = ref 0.0 in
  for k = Array.length c - 1 downto 0 do
    acc := (!acc *. x) +. c.(k)
  done;
  !acc

let eval_complex c z =
  let acc = ref Complex.zero in
  for k = Array.length c - 1 downto 0 do
    acc := Complex.add (Complex.mul !acc z) { Complex.re = c.(k); im = 0.0 }
  done;
  !acc

let add a b =
  let n = max (Array.length a) (Array.length b) in
  let get c k = if k < Array.length c then c.(k) else 0.0 in
  trim (Array.init n (fun k -> get a k +. get b k))

let scale s c = trim (Array.map (( *. ) s) c)

let sub a b = add a (scale (-1.0) b)

let mul a b =
  let n = Array.length a + Array.length b - 1 in
  let r = Array.make n 0.0 in
  Array.iteri (fun i ai -> Array.iteri (fun j bj -> r.(i + j) <- r.(i + j) +. (ai *. bj)) b) a;
  trim r

let derivative c =
  if Array.length c <= 1 then [| 0.0 |]
  else trim (Array.init (Array.length c - 1) (fun k -> float_of_int (k + 1) *. c.(k + 1)))

(* Durand–Kerner: simultaneous iteration on all roots of the monic polynomial.
   The initial guesses lie on a circle of radius based on the coefficient
   bound, rotated off the real axis so real-rooted polynomials converge. *)
let roots ?(iterations = 400) c =
  let c = trim c in
  let n = degree c in
  if n <= 0 then [||]
  else begin
    let lead = c.(n) in
    let monic = Array.map (fun x -> x /. lead) c in
    let radius =
      1.0
      +. Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0
           (Array.sub monic 0 n)
    in
    let angle k = (2.0 *. Float.pi *. float_of_int k /. float_of_int n) +. 0.4 in
    let z =
      Array.init n (fun k -> Complex.polar (radius *. (0.5 +. (0.5 *. float_of_int (k + 1) /. float_of_int n))) (angle k))
    in
    let eval_monic w = eval_complex monic w in
    let step () =
      let moved = ref 0.0 in
      for i = 0 to n - 1 do
        let zi = z.(i) in
        let denom = ref Complex.one in
        for j = 0 to n - 1 do
          if j <> i then denom := Complex.mul !denom (Complex.sub zi z.(j))
        done;
        if Complex.norm !denom > 1e-300 then begin
          let delta = Complex.div (eval_monic zi) !denom in
          z.(i) <- Complex.sub zi delta;
          moved := Float.max !moved (Complex.norm delta)
        end
      done;
      !moved
    in
    let rec iterate k =
      if k < iterations then
        let moved = step () in
        if moved > 1e-13 then iterate (k + 1)
    in
    iterate 0;
    z
  end

let from_roots rs =
  let p = ref [| 1.0 |] in
  (* multiply (x - r) factors pairwise; conjugate pairs combine to real
     quadratics, so accumulate in complex then drop the imaginary part. *)
  let cp = ref [| Complex.one |] in
  Array.iter
    (fun r ->
      let old = !cp in
      let n = Array.length old in
      let next = Array.make (n + 1) Complex.zero in
      for k = 0 to n - 1 do
        next.(k + 1) <- Complex.add next.(k + 1) old.(k);
        next.(k) <- Complex.sub next.(k) (Complex.mul r old.(k))
      done;
      cp := next)
    rs;
  p := Array.map (fun z -> z.Complex.re) !cp;
  trim !p

let pp ppf c =
  Array.iteri
    (fun k v ->
      if k = 0 then Format.fprintf ppf "%g" v else Format.fprintf ppf " %+g s^%d" v k)
    c
