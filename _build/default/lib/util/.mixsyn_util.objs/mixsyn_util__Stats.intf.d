lib/util/stats.mli:
