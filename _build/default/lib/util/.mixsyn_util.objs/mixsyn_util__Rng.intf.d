lib/util/rng.mli:
