lib/util/matrix.ml: Array Complex Float Format
