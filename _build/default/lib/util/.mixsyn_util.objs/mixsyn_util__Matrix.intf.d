lib/util/matrix.mli: Complex Format
