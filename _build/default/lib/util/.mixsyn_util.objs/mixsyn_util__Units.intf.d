lib/util/units.mli:
