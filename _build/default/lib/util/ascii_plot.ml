let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@' |]

let render ?(width = 64) ?(height = 16) ?(log_x = false) series =
  let xform x = if log_x then log10 (Float.max x 1e-300) else x in
  let all_points = List.concat_map (fun (_, pts) -> Array.to_list pts) series in
  match all_points with
  | [] -> "(no data)\n"
  | _ ->
    let xs = List.map (fun (x, _) -> xform x) all_points in
    let ys = List.map snd all_points in
    let x_min = List.fold_left Float.min infinity xs in
    let x_max = List.fold_left Float.max neg_infinity xs in
    let y_min = List.fold_left Float.min infinity ys in
    let y_max = List.fold_left Float.max neg_infinity ys in
    let x_span = Float.max (x_max -. x_min) 1e-300 in
    let y_span = Float.max (y_max -. y_min) 1e-300 in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si (_, pts) ->
        let glyph = glyphs.(si mod Array.length glyphs) in
        Array.iter
          (fun (x, y) ->
            let cx =
              int_of_float (Float.round ((xform x -. x_min) /. x_span *. float_of_int (width - 1)))
            in
            let cy =
              int_of_float (Float.round ((y -. y_min) /. y_span *. float_of_int (height - 1)))
            in
            if cx >= 0 && cx < width && cy >= 0 && cy < height then
              grid.(height - 1 - cy).(cx) <- glyph)
          pts)
      series;
    let buf = Buffer.create ((width + 16) * (height + 3)) in
    Array.iteri
      (fun row line ->
        let y_here =
          y_max -. (float_of_int row /. float_of_int (height - 1) *. y_span)
        in
        Buffer.add_string buf (Printf.sprintf "%10.3g |" y_here);
        Array.iter (Buffer.add_char buf) line;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
    Buffer.add_string buf
      (Printf.sprintf "%10s  %.3g%s%.3g%s\n" ""
         (if log_x then 10.0 ** x_min else x_min)
         (String.make (max 1 (width - 16)) ' ')
         (if log_x then 10.0 ** x_max else x_max)
         (if log_x then " (log)" else ""));
    Buffer.contents buf

let line ?width ?height ?(x_label = "") ?(y_label = "") ?log_x pts =
  let header =
    if x_label = "" && y_label = "" then ""
    else Printf.sprintf "%s vs %s\n" (if y_label = "" then "y" else y_label)
        (if x_label = "" then "x" else x_label)
  in
  header ^ render ?width ?height ?log_x [ ("", pts) ]

let multi ?width ?height ?log_x series =
  let legend =
    String.concat "   "
      (List.mapi
         (fun i (name, _) -> Printf.sprintf "%c = %s" glyphs.(i mod Array.length glyphs) name)
         series)
  in
  render ?width ?height ?log_x series ^ legend ^ "\n"
