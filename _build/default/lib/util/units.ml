let boltzmann = 1.380649e-23
let electron_charge = 1.602176634e-19
let room_temperature = 300.0

let kelvin_of_celsius c = c +. 273.15

let prefixes =
  [ (1e12, "T"); (1e9, "G"); (1e6, "M"); (1e3, "k"); (1.0, ""); (1e-3, "m");
    (1e-6, "u"); (1e-9, "n"); (1e-12, "p"); (1e-15, "f"); (1e-18, "a") ]

let format ?(digits = 3) v unit_name =
  if v = 0.0 then Printf.sprintf "0 %s" unit_name
  else begin
    let mag = Float.abs v in
    let scale, prefix =
      let rec find = function
        | [] -> (1e-18, "a")
        | (s, p) :: rest -> if mag >= s then (s, p) else find rest
      in
      find prefixes
    in
    Printf.sprintf "%.*g %s%s" digits (v /. scale) prefix unit_name
  end

let db x = 20.0 *. log10 x
let undb x = 10.0 ** (x /. 20.0)
