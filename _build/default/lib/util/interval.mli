(** Closed interval arithmetic.

    Used by the topology-selection subsystem ([15] in the paper): each
    candidate topology exports achievable performance ranges, and feasibility
    of a specification set is decided by interval boundary checking. *)

type t = { lo : float; hi : float }

val make : float -> float -> t
(** [make lo hi]; the bounds are reordered if necessary. *)

val point : float -> t
val lo : t -> float
val hi : t -> float
val width : t -> float
val mid : t -> float
val contains : t -> float -> bool
val subset : t -> t -> bool
(** [subset a b] is true when [a] lies within [b]. *)

val intersects : t -> t -> bool
val intersect : t -> t -> t option
val hull : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t option
(** [None] when the divisor spans zero. *)

val neg : t -> t
val scale : float -> t -> t
val split : t -> t * t
(** Bisection at the midpoint. *)

val pp : Format.formatter -> t -> unit
