(** Dense matrices with LU factorisation, generic over the scalar field.

    The circuit engine needs both real matrices (DC, transient) and complex
    matrices (AC, noise), so the solver is a functor over {!SCALAR}.
    Instantiations {!Real} and {!Cplx} are provided. *)

module type SCALAR = sig
  type t

  val zero : t
  val one : t
  val of_float : float -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val magnitude : t -> float
  (** Modulus used for pivot selection. *)

  val pp : Format.formatter -> t -> unit
end

module Make (S : SCALAR) : sig
  type mat = S.t array array
  type vec = S.t array

  val create : int -> int -> mat
  (** Zero-filled [rows] x [cols] matrix. *)

  val identity : int -> mat
  val copy : mat -> mat
  val dims : mat -> int * int
  val add_entry : mat -> int -> int -> S.t -> unit
  (** [add_entry m i j v] performs [m.(i).(j) <- m.(i).(j) + v] (MNA stamping). *)

  val mat_vec : mat -> vec -> vec
  val mat_mul : mat -> mat -> mat
  val transpose : mat -> mat
  val scale : S.t -> mat -> mat
  val add_mat : mat -> mat -> mat

  type lu
  (** LU factorisation with partial pivoting. *)

  exception Singular of int
  (** Raised with the offending pivot column when factorisation fails. *)

  val lu_factor : mat -> lu
  val lu_solve : lu -> vec -> vec
  val solve : mat -> vec -> vec
  (** [solve a b] is [lu_solve (lu_factor a) b] — destructive on neither. *)

  val determinant : mat -> S.t
  val pp : Format.formatter -> mat -> unit
end

module Real_scalar : SCALAR with type t = float
module Cplx_scalar : SCALAR with type t = Complex.t

module Real : module type of Make (Real_scalar)
module Cplx : module type of Make (Cplx_scalar)
