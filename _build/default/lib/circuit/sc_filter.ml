type spec = {
  f_clock : float;
  f0 : float;
  q : float;
  gain : float;
}

let sc_resistance ~f_clock ~farads = 1.0 /. (f_clock *. farads)

(* ideal inverting opamp: a transconductor pulling current out of its output
   against a load resistor; A = gm * r = 1e4 *)
let opamp c ~name ~vin ~vout =
  Netlist.add c
    (Netlist.Vccs { g_name = name ^ "_gm"; p = vout; n = Netlist.gnd; cp = vin; cn = Netlist.gnd;
                    gm = 1.0 });
  Netlist.add c
    (Netlist.Resistor { r_name = name ^ "_ro"; a = vout; b = Netlist.gnd; ohms = 1e4 })

let biquad_lowpass spec =
  if spec.f0 > spec.f_clock /. 10.0 then
    invalid_arg "sc_filter: f0 must sit well below f_clock/10";
  let c = Netlist.create () in
  let vin = Netlist.new_net ~name:"in" c in
  let mid = Netlist.new_net ~name:"mid" c in
  let out = Netlist.new_net ~name:"out" c in
  let x1 = Netlist.new_net ~name:"x1" c in
  let x2 = Netlist.new_net ~name:"x2" c in
  Netlist.add c
    (Netlist.Vsource { v_name = "vin"; p = vin; n = Netlist.gnd; dc = 0.0; ac = 1.0; v_wave = Netlist.Dc_wave });
  (* Tow-Thomas with unit integrator capacitors C and SC resistors:
       R0 = 1/(w0 C): integrator rate;  Rq = Q/(w0 C);  Rin = R0/gain *)
  let c_int = 10e-12 in
  let w0 = 2.0 *. Float.pi *. spec.f0 in
  let r0 = 1.0 /. (w0 *. c_int) in
  let rq = spec.q /. (w0 *. c_int) in
  let rin = r0 /. spec.gain in
  let resistor name a b ohms = Netlist.add c (Netlist.Resistor { r_name = name; a; b; ohms }) in
  let capacitor name a b farads =
    Netlist.add c (Netlist.Capacitor { c_name = name; a; b; farads })
  in
  (* the classic three-opamp loop: two inverting integrators plus a unity
     inverter in the feedback path to fix the loop sign *)
  let x3 = Netlist.new_net ~name:"x3" c in
  let inv = Netlist.new_net ~name:"inv" c in
  (* first (lossy) integrator: sums input, damping and (inverted) feedback *)
  resistor "rin" vin x1 rin;
  resistor "rq" mid x1 rq;
  resistor "rfb" inv x1 r0;
  opamp c ~name:"op1" ~vin:x1 ~vout:mid;
  capacitor "cint1" x1 mid c_int;
  (* second integrator: mid -> out *)
  resistor "r2" mid x2 r0;
  opamp c ~name:"op2" ~vin:x2 ~vout:out;
  capacitor "cint2" x2 out c_int;
  (* unity inverter: out -> inv *)
  resistor "ru1" out x3 1e4;
  resistor "ru2" inv x3 1e4;
  opamp c ~name:"op3" ~vin:x3 ~vout:inv;
  c

let expected_magnitude spec f =
  let w = 2.0 *. Float.pi *. f in
  let w0 = 2.0 *. Float.pi *. spec.f0 in
  (* lowpass: H = g w0^2 / (-w^2 + j w w0/q + w0^2) *)
  let re = (w0 *. w0) -. (w *. w) in
  let im = w *. w0 /. spec.q in
  spec.gain *. w0 *. w0 /. sqrt ((re *. re) +. (im *. im))

let capacitor_spread spec =
  (* with unit integrator caps, the switched capacitors are
     C_sw = 1/(f_clock * R): spread = max/min over {rin, rq, r0} *)
  let c_int = 10e-12 in
  let w0 = 2.0 *. Float.pi *. spec.f0 in
  let r0 = 1.0 /. (w0 *. c_int) in
  let rq = spec.q /. (w0 *. c_int) in
  let rin = r0 /. spec.gain in
  let c_of r = 1.0 /. (spec.f_clock *. r) in
  let caps = [ c_of r0; c_of rq; c_of rin; c_int ] in
  let cmax = List.fold_left Float.max neg_infinity caps in
  let cmin = List.fold_left Float.min infinity caps in
  cmax /. cmin
