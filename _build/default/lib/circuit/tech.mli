(** Technology parameters: a generic 0.7 µm-class CMOS process.

    The paper's systems target processes of this era (IDAC, AMGIE, the
    KOAN/ANAGRAM II layouts).  Corner fields model the disturbance space used
    by the manufacturability extension of ASTRX/OBLX ([31]). *)

type t = {
  tech_name : string;
  vdd : float;          (** nominal supply, V *)
  vth0_n : float;       (** NMOS zero-bias threshold, V *)
  vth0_p : float;       (** PMOS zero-bias threshold magnitude, V *)
  kp_n : float;         (** NMOS transconductance factor µn·Cox, A/V² *)
  kp_p : float;         (** PMOS transconductance factor, A/V² *)
  lambda_factor : float;(** channel-length modulation: λ = lambda_factor / L(m), 1/V·m *)
  gamma : float;        (** body-effect coefficient, V^0.5 *)
  phi : float;          (** surface potential 2φF, V *)
  cox : float;          (** gate capacitance per area, F/m² *)
  cov : float;          (** gate overlap capacitance per width, F/m *)
  cj : float;           (** junction capacitance per area, F/m² *)
  cjsw : float;         (** junction sidewall capacitance per perimeter, F/m *)
  kf : float;           (** flicker noise coefficient, J (SPICE KF) *)
  l_min : float;        (** minimum channel length, m *)
  w_min : float;        (** minimum channel width, m *)
  l_diff : float;       (** source/drain diffusion extent, m *)
  temp : float;         (** simulation temperature, K *)
}

val generic_07um : t
(** The default process used throughout the repository. *)

(** A process/environment corner for worst-case analysis. *)
type corner = {
  corner_name : string;
  d_vdd : float;   (** relative supply deviation, e.g. -0.1 for Vdd-10% *)
  d_temp : float;  (** absolute temperature delta, K *)
  d_vth : float;   (** absolute threshold shift applied to both polarities, V *)
  d_kp : float;    (** relative transconductance-factor deviation *)
}

val nominal_corner : corner

val apply_corner : t -> corner -> t
(** Technology seen at a corner: thresholds shift, mobilities degrade with
    temperature (T^-1.5 scaling), supply scales. *)

val corner_space : corner list
(** The deterministic corner set explored by {!Mixsyn_opt.Corner_search}
    (±10 % Vdd, -40/125 °C, ±50 mV Vth, ±10 % Kp extremes). *)
