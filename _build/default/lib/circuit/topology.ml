module I = Mixsyn_util.Interval

let common_mode_fraction = 0.45

(* construction helpers *)

let mos c ~name ~pol ~d ~g ~s ~b ~w ~l =
  Netlist.add c
    (Netlist.Mos { m_name = name; drain = d; gate = g; source = s; bulk = b; w; l; polarity = pol })

let res c name a b ohms = Netlist.add c (Netlist.Resistor { r_name = name; a; b; ohms })

let cap c name a b farads = Netlist.add c (Netlist.Capacitor { c_name = name; a; b; farads })

let vsrc c name p n dc ac = Netlist.add c (Netlist.Vsource { v_name = name; p; n; dc; ac; v_wave = Netlist.Dc_wave })

let isrc c name p n dc = Netlist.add c (Netlist.Isource { i_name = name; p; n; dc; ac = 0.0; i_wave = Netlist.Dc_wave })

(* The supply + differential input testbench common to all OTAs:
   returns (vdd_net, inp, inn). *)
let testbench c (tech : Tech.t) =
  let vdd = Netlist.new_net ~name:"vdd" c in
  let inp = Netlist.new_net ~name:"inp" c in
  let inn = Netlist.new_net ~name:"inn" c in
  let vcm = common_mode_fraction *. tech.Tech.vdd in
  vsrc c "vdd" vdd Netlist.gnd tech.Tech.vdd 0.0;
  vsrc c "vip" inp Netlist.gnd vcm 0.5;
  vsrc c "vin" inn Netlist.gnd vcm (-0.5);
  (vdd, inp, inn)

let p name lo hi log_scale = { Template.p_name = name; lo; hi; log_scale }

(* -------------------------------------------------------------------- *)

let build_ota_5t tech x =
  match x with
  | [| w1; w3; w5; l; ib; cl |] ->
    let c = Netlist.create () in
    let vdd, inp, inn = testbench c tech in
    let out = Netlist.new_net ~name:"out" c in
    let d1 = Netlist.new_net ~name:"d1" c in
    let tail = Netlist.new_net ~name:"tail" c in
    let nbias = Netlist.new_net ~name:"nbias" c in
    mos c ~name:"m1" ~pol:Netlist.Nmos ~d:d1 ~g:inp ~s:tail ~b:Netlist.gnd ~w:w1 ~l;
    mos c ~name:"m2" ~pol:Netlist.Nmos ~d:out ~g:inn ~s:tail ~b:Netlist.gnd ~w:w1 ~l;
    mos c ~name:"m3" ~pol:Netlist.Pmos ~d:d1 ~g:d1 ~s:vdd ~b:vdd ~w:w3 ~l;
    mos c ~name:"m4" ~pol:Netlist.Pmos ~d:out ~g:d1 ~s:vdd ~b:vdd ~w:w3 ~l;
    mos c ~name:"m5" ~pol:Netlist.Nmos ~d:tail ~g:nbias ~s:Netlist.gnd ~b:Netlist.gnd ~w:w5 ~l;
    mos c ~name:"m6" ~pol:Netlist.Nmos ~d:nbias ~g:nbias ~s:Netlist.gnd ~b:Netlist.gnd ~w:w5 ~l;
    isrc c "ib" nbias vdd ib;
    cap c "cl" out Netlist.gnd cl;
    c
  | _ -> invalid_arg "ota_5t: expected 6 parameters"

let ota_5t =
  { Template.t_name = "ota-5t";
    description = "five-transistor OTA: NMOS pair, PMOS mirror load, tail sink";
    params =
      [| p "w1" 1e-6 500e-6 true;
         p "w3" 1e-6 500e-6 true;
         p "w5" 1e-6 500e-6 true;
         p "l" 0.7e-6 5e-6 true;
         p "ib" 1e-6 2e-3 true;
         p "cl" 0.5e-12 20e-12 true |];
    build = build_ota_5t;
    feasibility =
      [ ("gain_db", I.make 25.0 45.0);
        ("ugf_hz", I.make 1e5 3e8);
        ("phase_margin_deg", I.make 60.0 90.0);
        ("power_w", I.make 1e-5 2e-2) ] }

(* -------------------------------------------------------------------- *)

let build_miller tech x =
  match x with
  | [| w1; w3; w5; w6; w7; l; ib; cc; cl |] ->
    let c = Netlist.create () in
    let vdd, inp, inn = testbench c tech in
    let out = Netlist.new_net ~name:"out" c in
    let o1 = Netlist.new_net ~name:"o1" c in
    let d1 = Netlist.new_net ~name:"d1" c in
    let tail = Netlist.new_net ~name:"tail" c in
    let nbias = Netlist.new_net ~name:"nbias" c in
    let nz = Netlist.new_net ~name:"nz" c in
    mos c ~name:"m1" ~pol:Netlist.Nmos ~d:d1 ~g:inp ~s:tail ~b:Netlist.gnd ~w:w1 ~l;
    mos c ~name:"m2" ~pol:Netlist.Nmos ~d:o1 ~g:inn ~s:tail ~b:Netlist.gnd ~w:w1 ~l;
    mos c ~name:"m3" ~pol:Netlist.Pmos ~d:d1 ~g:d1 ~s:vdd ~b:vdd ~w:w3 ~l;
    mos c ~name:"m4" ~pol:Netlist.Pmos ~d:o1 ~g:d1 ~s:vdd ~b:vdd ~w:w3 ~l;
    mos c ~name:"m5" ~pol:Netlist.Nmos ~d:tail ~g:nbias ~s:Netlist.gnd ~b:Netlist.gnd ~w:w5 ~l;
    mos c ~name:"m8" ~pol:Netlist.Nmos ~d:nbias ~g:nbias ~s:Netlist.gnd ~b:Netlist.gnd ~w:w5 ~l;
    (* second stage: PMOS common source driven by o1, NMOS mirror sink *)
    mos c ~name:"m6" ~pol:Netlist.Pmos ~d:out ~g:o1 ~s:vdd ~b:vdd ~w:w6 ~l;
    mos c ~name:"m7" ~pol:Netlist.Nmos ~d:out ~g:nbias ~s:Netlist.gnd ~b:Netlist.gnd ~w:w7 ~l;
    isrc c "ib" nbias vdd ib;
    (* pole-zero compensation: Cc in series with nulling resistor *)
    cap c "cc" o1 nz cc;
    res c "rz" nz out (1.0 /. (sqrt (2.0 *. tech.Tech.kp_p *. (w6 /. l) *. ib) +. 1e-9));
    cap c "cl" out Netlist.gnd cl;
    c
  | _ -> invalid_arg "miller_ota: expected 9 parameters"

let miller_ota =
  { Template.t_name = "miller-ota";
    description = "two-stage Miller OTA with pole-zero compensation";
    params =
      [| p "w1" 1e-6 500e-6 true;
         p "w3" 1e-6 500e-6 true;
         p "w5" 1e-6 500e-6 true;
         p "w6" 2e-6 1000e-6 true;
         p "w7" 2e-6 1000e-6 true;
         p "l" 0.7e-6 5e-6 true;
         p "ib" 1e-6 2e-3 true;
         p "cc" 0.2e-12 15e-12 true;
         p "cl" 0.5e-12 20e-12 true |];
    build = build_miller;
    feasibility =
      [ ("gain_db", I.make 55.0 90.0);
        ("ugf_hz", I.make 1e5 1e8);
        ("phase_margin_deg", I.make 45.0 80.0);
        ("power_w", I.make 2e-5 5e-2) ] }

(* -------------------------------------------------------------------- *)

let build_folded_cascode tech x =
  match x with
  | [| w1; wp; wcp; wn; wcn; l; ib; cl |] ->
    let c = Netlist.create () in
    let vdd, inp, inn = testbench c tech in
    let out = Netlist.new_net ~name:"out" c in
    let f1 = Netlist.new_net ~name:"f1" c in
    let f2 = Netlist.new_net ~name:"f2" c in
    let m1out = Netlist.new_net ~name:"m1out" c in
    let x1 = Netlist.new_net ~name:"x1" c in
    let x2 = Netlist.new_net ~name:"x2" c in
    let tail = Netlist.new_net ~name:"tail" c in
    let nbias = Netlist.new_net ~name:"nbias" c in
    let pb = Netlist.new_net ~name:"pb" c in
    let vcp = Netlist.new_net ~name:"vcp" c in
    let vcn = Netlist.new_net ~name:"vcn" c in
    (* ideal cascode gate biases *)
    vsrc c "vcp_src" vcp Netlist.gnd (tech.Tech.vdd -. 1.6) 0.0;
    vsrc c "vcn_src" vcn Netlist.gnd 1.6 0.0;
    (* input pair folds into the PMOS sources *)
    mos c ~name:"m1" ~pol:Netlist.Nmos ~d:f1 ~g:inp ~s:tail ~b:Netlist.gnd ~w:w1 ~l;
    mos c ~name:"m2" ~pol:Netlist.Nmos ~d:f2 ~g:inn ~s:tail ~b:Netlist.gnd ~w:w1 ~l;
    mos c ~name:"m5" ~pol:Netlist.Nmos ~d:tail ~g:nbias ~s:Netlist.gnd ~b:Netlist.gnd ~w:(2.0 *. w1) ~l;
    mos c ~name:"m10" ~pol:Netlist.Nmos ~d:nbias ~g:nbias ~s:Netlist.gnd ~b:Netlist.gnd ~w:(2.0 *. w1) ~l;
    isrc c "ib" nbias vdd ib;
    (* top current sources carry I_tail/2 + I_branch; bias from a P diode *)
    mos c ~name:"m3" ~pol:Netlist.Pmos ~d:f1 ~g:pb ~s:vdd ~b:vdd ~w:wp ~l;
    mos c ~name:"m4" ~pol:Netlist.Pmos ~d:f2 ~g:pb ~s:vdd ~b:vdd ~w:wp ~l;
    mos c ~name:"m11" ~pol:Netlist.Pmos ~d:pb ~g:pb ~s:vdd ~b:vdd ~w:(wp /. 2.0) ~l;
    isrc c "ibp" Netlist.gnd pb ib;
    (* PMOS cascodes *)
    mos c ~name:"m6" ~pol:Netlist.Pmos ~d:m1out ~g:vcp ~s:f1 ~b:vdd ~w:wcp ~l;
    mos c ~name:"m7" ~pol:Netlist.Pmos ~d:out ~g:vcp ~s:f2 ~b:vdd ~w:wcp ~l;
    (* cascoded NMOS mirror, diode side at m1out *)
    mos c ~name:"m8" ~pol:Netlist.Nmos ~d:m1out ~g:vcn ~s:x1 ~b:Netlist.gnd ~w:wcn ~l;
    mos c ~name:"m9" ~pol:Netlist.Nmos ~d:out ~g:vcn ~s:x2 ~b:Netlist.gnd ~w:wcn ~l;
    mos c ~name:"m12" ~pol:Netlist.Nmos ~d:x1 ~g:m1out ~s:Netlist.gnd ~b:Netlist.gnd ~w:wn ~l;
    mos c ~name:"m13" ~pol:Netlist.Nmos ~d:x2 ~g:m1out ~s:Netlist.gnd ~b:Netlist.gnd ~w:wn ~l;
    cap c "cl" out Netlist.gnd cl;
    c
  | _ -> invalid_arg "folded_cascode: expected 8 parameters"

let folded_cascode =
  { Template.t_name = "folded-cascode";
    description = "folded-cascode OTA, NMOS input, ideal cascode biases";
    params =
      [| p "w1" 2e-6 500e-6 true;
         p "wp" 4e-6 1000e-6 true;
         p "wcp" 2e-6 500e-6 true;
         p "wn" 2e-6 500e-6 true;
         p "wcn" 2e-6 500e-6 true;
         p "l" 0.7e-6 3e-6 true;
         p "ib" 2e-6 2e-3 true;
         p "cl" 0.5e-12 20e-12 true |];
    build = build_folded_cascode;
    feasibility =
      [ ("gain_db", I.make 60.0 95.0);
        ("ugf_hz", I.make 1e6 2e8);
        ("phase_margin_deg", I.make 60.0 89.0);
        ("power_w", I.make 5e-5 5e-2) ] }

(* -------------------------------------------------------------------- *)

let build_comparator tech x =
  match x with
  | [| w1; w3; w5; w6; w7; l; ib |] ->
    (* the Miller OTA without compensation network and load *)
    build_miller tech [| w1; w3; w5; w6; w7; l; ib; 1e-18; 0.05e-12 |]
  | _ -> invalid_arg "comparator: expected 7 parameters"

let comparator =
  { Template.t_name = "comparator";
    description = "uncompensated two-stage amplifier used open loop";
    params =
      [| p "w1" 1e-6 200e-6 true;
         p "w3" 1e-6 200e-6 true;
         p "w5" 1e-6 200e-6 true;
         p "w6" 2e-6 400e-6 true;
         p "w7" 2e-6 400e-6 true;
         p "l" 0.7e-6 2e-6 true;
         p "ib" 1e-6 1e-3 true |];
    build = build_comparator;
    feasibility =
      [ ("gain_db", I.make 50.0 85.0);
        ("ugf_hz", I.make 1e6 5e8);
        ("power_w", I.make 1e-5 2e-2) ] }

let all = [ ota_5t; miller_ota; folded_cascode; comparator ]
