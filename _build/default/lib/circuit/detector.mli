(** The pulse-detector front-end of Table 1: a charge-sensitive amplifier
    followed by a 4-stage semi-Gaussian pulse-shaping amplifier.

    The CSA is device-level (its input transistor sets the noise floor, which
    is what the synthesis experiment trades against power); the shaper stages
    are transconductor-RC sections, the behavioural level at which AMGIE's
    high-level synthesis reasons about them.  A current pulse injects the
    detector charge; net names:
    - ["csa_in"], ["csa_out"] around the charge amplifier;
    - ["out"] the shaper output;
    - ["vdd"] the supply. *)

type config = {
  cdet : float;      (** detector capacitance at the CSA input, F *)
  n_stages : int;    (** shaper integrator count (4 in the paper) *)
  q_in : float;      (** injected test charge, C *)
  t_inject : float;  (** charge collection time, s *)
}

val default_config : config

(** Sizing degrees of freedom. *)
type sizing = {
  w1 : float;       (** CSA input transistor width, m *)
  l1 : float;       (** CSA input transistor length, m *)
  id1 : float;      (** CSA branch current, A *)
  cf : float;       (** feedback capacitance, F *)
  rf : float;       (** feedback (reset) resistance, ohm *)
  tau : float;      (** shaper stage time constant, s *)
  a_stage : float;  (** shaper per-stage low-frequency gain, linear *)
}

val build : ?config:config -> Tech.t -> sizing -> Netlist.t

val template : ?config:config -> unit -> Template.t
(** The same circuit as a {!Template.t} whose parameter vector is
    [w1; l1; id1; cf; rf; tau; a_stage] — the form the generic sizing
    engines consume. *)

val sizing_of_vector : float array -> sizing
val vector_of_sizing : sizing -> float array

val estimated_power : Tech.t -> sizing -> config -> float
(** Power model: CSA branch current plus one OTA per shaper stage biased at
    gm/10 (a gm/Id of 10), all from Vdd.  Watts. *)

val estimated_area : Tech.t -> sizing -> config -> float
(** Area model: gate area + capacitor area (1 fF/µm² poly-poly) + resistor
    area (50 Ω/sq, 2 µm wide poly).  m². *)

val expert_manual_sizing : sizing
(** The "manual" column baseline: a conservative expert-style design that
    meets every Table 1 spec with generous margins (and correspondingly
    generous power), standing in for the human design of the experiment. *)
