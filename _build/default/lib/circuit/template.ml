type param = {
  p_name : string;
  lo : float;
  hi : float;
  log_scale : bool;
}

type t = {
  t_name : string;
  description : string;
  params : param array;
  build : Tech.t -> float array -> Netlist.t;
  feasibility : (string * Mixsyn_util.Interval.t) list;
}

let param_index t name =
  let rec find i =
    if i >= Array.length t.params then raise Not_found
    else if t.params.(i).p_name = name then i
    else find (i + 1)
  in
  find 0

let clamp t x =
  Array.mapi
    (fun i v ->
      let p = t.params.(i) in
      Float.min p.hi (Float.max p.lo v))
    x

let midpoint t =
  Array.map
    (fun p ->
      if p.log_scale then sqrt (p.lo *. p.hi) else 0.5 *. (p.lo +. p.hi))
    t.params

let random_point t rng =
  Array.map
    (fun p ->
      if p.log_scale then exp (Mixsyn_util.Rng.uniform rng (log p.lo) (log p.hi))
      else Mixsyn_util.Rng.uniform rng p.lo p.hi)
    t.params

let perturb t rng ~scale x =
  let x' = Array.copy x in
  let i = Mixsyn_util.Rng.int rng (Array.length t.params) in
  let p = t.params.(i) in
  let v =
    if p.log_scale then begin
      let span = log (p.hi /. p.lo) in
      x.(i) *. exp (Mixsyn_util.Rng.uniform rng (-.scale *. span) (scale *. span))
    end
    else begin
      let span = p.hi -. p.lo in
      x.(i) +. Mixsyn_util.Rng.uniform rng (-.scale *. span) (scale *. span)
    end
  in
  x'.(i) <- Float.min p.hi (Float.max p.lo v);
  x'

let with_fixed t bindings =
  let params =
    Array.map
      (fun p ->
        match List.assoc_opt p.p_name bindings with
        | None -> p
        | Some v -> { p with lo = v; hi = v })
      t.params
  in
  List.iter
    (fun (name, _) ->
      if not (Array.exists (fun p -> p.p_name = name) t.params) then raise Not_found)
    bindings;
  { t with params }
