lib/circuit/topology.ml: Mixsyn_util Netlist Tech Template
