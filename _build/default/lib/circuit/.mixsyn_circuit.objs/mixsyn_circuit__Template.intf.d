lib/circuit/template.mli: Mixsyn_util Netlist Tech
