lib/circuit/tech.mli:
