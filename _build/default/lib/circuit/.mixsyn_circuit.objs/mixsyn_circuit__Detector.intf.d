lib/circuit/detector.mli: Netlist Tech Template
