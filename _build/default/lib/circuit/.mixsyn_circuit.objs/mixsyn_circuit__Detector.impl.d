lib/circuit/detector.ml: Mixsyn_util Netlist Printf Tech Template
