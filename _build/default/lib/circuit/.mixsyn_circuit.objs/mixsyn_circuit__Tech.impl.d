lib/circuit/tech.ml: Printf
