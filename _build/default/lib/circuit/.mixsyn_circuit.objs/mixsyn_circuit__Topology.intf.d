lib/circuit/topology.mli: Template
