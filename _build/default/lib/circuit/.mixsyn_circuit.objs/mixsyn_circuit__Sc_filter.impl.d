lib/circuit/sc_filter.ml: Float List Netlist
