lib/circuit/sc_filter.mli: Netlist
