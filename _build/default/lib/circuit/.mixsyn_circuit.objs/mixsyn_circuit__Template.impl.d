lib/circuit/template.ml: Array Float List Mixsyn_util Netlist Tech
