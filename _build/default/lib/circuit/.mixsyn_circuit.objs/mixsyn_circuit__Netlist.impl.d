lib/circuit/netlist.ml: Array Buffer Float Format Hashtbl List Printf
