(** Switched-capacitor filters — the procedural-generation application the
    paper cites on both the frontend ([30], an SC filter silicon compiler)
    and backend ([52], automated SC filter layout) sides.

    The electrical model uses the classic SC equivalence: a capacitor C
    switched at [f_clock] behaves as a resistor 1/(f_clock*C) well below the
    clock, so a Tow-Thomas biquad built from two integrators simulates
    directly on the continuous-time engine.  Opamps are ideal high-gain
    stages (the compiler's abstraction level). *)

type spec = {
  f_clock : float;  (** switching frequency, Hz *)
  f0 : float;       (** biquad pole frequency, Hz *)
  q : float;        (** quality factor *)
  gain : float;     (** passband gain, linear *)
}

val biquad_lowpass : spec -> Netlist.t
(** Testbench-ready lowpass biquad: AC source on net ["in"], output on
    ["out"], bandpass tap on ["mid"].
    @raise Invalid_argument when [f0] is not well below [f_clock/10]. *)

val expected_magnitude : spec -> float -> float
(** |H(j2πf)| of the ideal continuous-time prototype. *)

val sc_resistance : f_clock:float -> farads:float -> float
(** The switched-capacitor resistance 1/(f_clock*C). *)

val capacitor_spread : spec -> float
(** Ratio of the largest to the smallest capacitor the biquad needs — the
    design metric SC compilers minimise. *)
