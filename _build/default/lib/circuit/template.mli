(** Parametrised circuit topologies.

    A template is the unit the frontend manipulates: topology selection picks
    a template, circuit sizing picks a value for its parameter vector
    (Section 2.1 of the paper).  [build] instantiates a concrete netlist for
    simulation; [feasibility] publishes coarse achievable performance ranges
    used by the interval-based topology-selection strategy ([15]). *)

type param = {
  p_name : string;
  lo : float;
  hi : float;
  log_scale : bool;  (** explore multiplicatively (currents, capacitors) *)
}

type t = {
  t_name : string;
  description : string;
  params : param array;
  build : Tech.t -> float array -> Netlist.t;
  feasibility : (string * Mixsyn_util.Interval.t) list;
      (** performance name -> achievable interval, coarse *)
}

val param_index : t -> string -> int
(** @raise Not_found *)

val clamp : t -> float array -> float array
(** Project a parameter vector into the box. *)

val midpoint : t -> float array
(** Geometric/arithmetic centre of the box (per [log_scale]). *)

val random_point : t -> Mixsyn_util.Rng.t -> float array

val perturb :
  t -> Mixsyn_util.Rng.t -> scale:float -> float array -> float array
(** Random move of one parameter, relative amplitude [scale] of its range —
    the annealing move generator used by OPTIMAN/FRIDGE-style sizing. *)

val with_fixed : t -> (string * float) list -> t
(** Pin parameters to fixed values (their box collapses to a point) — used
    to hold environment quantities such as the load capacitance while the
    optimizer explores the rest.
    @raise Not_found for unknown parameter names. *)
