type config = {
  cdet : float;
  n_stages : int;
  q_in : float;
  t_inject : float;
}

let default_config = { cdet = 50e-12; n_stages = 4; q_in = 1e-16; t_inject = 10e-9 }

type sizing = {
  w1 : float;
  l1 : float;
  id1 : float;
  cf : float;
  rf : float;
  tau : float;
  a_stage : float;
}

let stage_resistance = 100e3

let build ?(config = default_config) (tech : Tech.t) s =
  let c = Netlist.create () in
  let vdd = Netlist.new_net ~name:"vdd" c in
  let csa_in = Netlist.new_net ~name:"csa_in" c in
  let csa_out = Netlist.new_net ~name:"csa_out" c in
  Netlist.add c (Netlist.Vsource { v_name = "vdd"; p = vdd; n = Netlist.gnd; dc = tech.Tech.vdd; ac = 0.0; v_wave = Netlist.Dc_wave });
  (* detector: capacitance plus the charge injection pulse (also the AC
     excitation, so AC analysis reads transimpedance directly) *)
  Netlist.add c (Netlist.Capacitor { c_name = "cdet"; a = csa_in; b = Netlist.gnd; farads = config.cdet });
  let inject_amps = config.q_in /. config.t_inject in
  Netlist.add c
    (Netlist.Isource { i_name = "qin"; p = csa_in; n = Netlist.gnd; dc = 0.0; ac = 1.0;
                       i_wave = Netlist.Pulse { v0 = 0.0; v1 = inject_amps; delay = 20e-9; rise = 1e-9; width = config.t_inject } });
  (* CSA core: common-source input device under an ideal cascode, modelled
     as a current buffer (a 50 ohm sense resistor whose current a VCCS
     replicates into the output node).  The input device keeps its real gm
     and noise; the cascode gives the 10^5-class open-loop gain a charge
     amplifier needs.  DC self-bias through Rf puts the device at
     vgs = v(csa_out). *)
  let mid = Netlist.new_net ~name:"mid" c in
  let cascode_ref = Netlist.new_net ~name:"cascode_ref" c in
  let sense_ohms = 50.0 in
  Netlist.add c
    (Netlist.Mos { m_name = "m1"; drain = mid; gate = csa_in; source = Netlist.gnd;
                   bulk = Netlist.gnd; w = s.w1; l = s.l1; polarity = Netlist.Nmos });
  Netlist.add c
    (Netlist.Vsource { v_name = "vcasc"; p = cascode_ref; n = Netlist.gnd; dc = 1.2; ac = 0.0; v_wave = Netlist.Dc_wave });
  Netlist.add c (Netlist.Resistor { r_name = "rcasc"; a = cascode_ref; b = mid; ohms = sense_ohms });
  Netlist.add c
    (Netlist.Vccs { g_name = "cascode"; p = csa_out; n = Netlist.gnd; cp = cascode_ref; cn = mid;
                    gm = 1.0 /. sense_ohms });
  Netlist.add c
    (Netlist.Isource { i_name = "iload"; p = csa_out; n = vdd; dc = s.id1; ac = 0.0; i_wave = Netlist.Dc_wave });
  (* finite output resistance of the cascoded branch *)
  Netlist.add c (Netlist.Resistor { r_name = "rload"; a = csa_out; b = Netlist.gnd; ohms = 5e6 });
  Netlist.add c (Netlist.Capacitor { c_name = "cf"; a = csa_out; b = csa_in; farads = s.cf });
  Netlist.add c (Netlist.Resistor { r_name = "rf"; a = csa_out; b = csa_in; ohms = s.rf });
  (* CR differentiator into the shaper *)
  let s0 = Netlist.new_net ~name:"s0" c in
  Netlist.add c (Netlist.Capacitor { c_name = "cdiff"; a = csa_out; b = s0; farads = s.tau /. stage_resistance });
  Netlist.add c (Netlist.Resistor { r_name = "rdiff"; a = s0; b = Netlist.gnd; ohms = stage_resistance });
  (* n_stages transconductor-RC integrators *)
  let gm = s.a_stage /. stage_resistance in
  let previous = ref s0 in
  for k = 1 to config.n_stages do
    let name = if k = config.n_stages then "out" else Printf.sprintf "s%d" k in
    let node = Netlist.new_net ~name c in
    (* inverting transconductor: current gm*v(prev) pulled out of the node *)
    Netlist.add c
      (Netlist.Vccs { g_name = Printf.sprintf "gm%d" k; p = node; n = Netlist.gnd;
                      cp = !previous; cn = Netlist.gnd; gm });
    Netlist.add c (Netlist.Resistor { r_name = Printf.sprintf "rs%d" k; a = node; b = Netlist.gnd; ohms = stage_resistance });
    Netlist.add c
      (Netlist.Capacitor { c_name = Printf.sprintf "cs%d" k; a = node; b = Netlist.gnd;
                           farads = s.tau /. stage_resistance });
    previous := node
  done;
  c

let sizing_of_vector = function
  | [| w1; l1; id1; cf; rf; tau; a_stage |] -> { w1; l1; id1; cf; rf; tau; a_stage }
  | _ -> invalid_arg "detector sizing vector: expected 7 entries"

let vector_of_sizing s = [| s.w1; s.l1; s.id1; s.cf; s.rf; s.tau; s.a_stage |]

let template ?(config = default_config) () =
  let p name lo hi = { Template.p_name = name; lo; hi; log_scale = true } in
  { Template.t_name = "pulse-detector";
    description = "charge-sensitive amplifier + CR-RC^4 pulse shaper";
    params =
      [| p "w1" 10e-6 5000e-6;
         p "l1" 0.7e-6 3e-6;
         p "id1" 20e-6 10e-3;
         p "cf" 20e-15 500e-15;
         p "rf" 1e6 100e6;
         p "tau" 50e-9 1e-6;
         p "a_stage" 1.0 12.0 |];
    build = (fun tech x -> build ~config tech (sizing_of_vector x));
    feasibility =
      [ ("gain_v_per_fc", Mixsyn_util.Interval.make 2.0 100.0);
        ("peaking_time_s", Mixsyn_util.Interval.make 2e-7 4e-6);
        ("enc_electrons", Mixsyn_util.Interval.make 100.0 5000.0) ] }

let estimated_power (tech : Tech.t) s config =
  let gm = s.a_stage /. stage_resistance in
  let stage_current = gm /. 10.0 in
  tech.Tech.vdd *. (s.id1 +. (float_of_int config.n_stages *. stage_current))

let cap_density = 1e-3 (* F/m^2: 1 fF/um^2 poly-poly *)
let res_ohms_per_square = 50.0
let res_width = 2e-6

let estimated_area (tech : Tech.t) s config =
  let gate = s.w1 *. s.l1 in
  let caps =
    (s.cf +. (float_of_int (config.n_stages + 1) *. (s.tau /. stage_resistance)))
    /. cap_density
  in
  let resistor r = r /. res_ohms_per_square *. res_width *. res_width in
  let resistors =
    resistor s.rf
    +. (float_of_int (config.n_stages + 1) *. resistor stage_resistance)
  in
  ignore tech;
  gate +. caps +. resistors

let expert_manual_sizing =
  (* wide device and heavy bias: low noise by brute force; ~7.5 mA from a
     5 V rail is the 40 mW-class conservative design of Table 1 *)
  { w1 = 3000e-6; l1 = 1.0e-6; id1 = 7.5e-3; cf = 20e-15; rf = 20e6;
    tau = 300e-9; a_stage = 8.0 }
