type t = {
  tech_name : string;
  vdd : float;
  vth0_n : float;
  vth0_p : float;
  kp_n : float;
  kp_p : float;
  lambda_factor : float;
  gamma : float;
  phi : float;
  cox : float;
  cov : float;
  cj : float;
  cjsw : float;
  kf : float;
  l_min : float;
  w_min : float;
  l_diff : float;
  temp : float;
}

let generic_07um =
  { tech_name = "generic-0.7um";
    vdd = 5.0;
    vth0_n = 0.75;
    vth0_p = 0.85;
    kp_n = 100e-6;
    kp_p = 35e-6;
    lambda_factor = 0.05e-6;
    gamma = 0.5;
    phi = 0.7;
    cox = 2.4e-3;
    cov = 0.3e-9;
    cj = 0.4e-3;
    cjsw = 0.3e-9;
    kf = 3e-24;
    l_min = 0.7e-6;
    w_min = 1.0e-6;
    l_diff = 1.4e-6;
    temp = 300.0 }

type corner = {
  corner_name : string;
  d_vdd : float;
  d_temp : float;
  d_vth : float;
  d_kp : float;
}

let nominal_corner = { corner_name = "nominal"; d_vdd = 0.0; d_temp = 0.0; d_vth = 0.0; d_kp = 0.0 }

let apply_corner tech c =
  let temp = tech.temp +. c.d_temp in
  (* mobility degrades roughly as T^-1.5; thresholds drift -2 mV/K *)
  let mobility_scale = (temp /. tech.temp) ** (-1.5) in
  let vth_drift = -2e-3 *. c.d_temp in
  { tech with
    tech_name = Printf.sprintf "%s@%s" tech.tech_name c.corner_name;
    vdd = tech.vdd *. (1.0 +. c.d_vdd);
    vth0_n = tech.vth0_n +. c.d_vth +. vth_drift;
    vth0_p = tech.vth0_p +. c.d_vth +. vth_drift;
    kp_n = tech.kp_n *. (1.0 +. c.d_kp) *. mobility_scale;
    kp_p = tech.kp_p *. (1.0 +. c.d_kp) *. mobility_scale;
    temp }

let corner_space =
  let mk name d_vdd d_temp d_vth d_kp = { corner_name = name; d_vdd; d_temp; d_vth; d_kp } in
  [ nominal_corner;
    mk "slow-cold" (-0.1) (-60.0) 0.05 (-0.1);
    mk "slow-hot" (-0.1) 125.0 0.05 (-0.1);
    mk "fast-cold" 0.1 (-60.0) (-0.05) 0.1;
    mk "fast-hot" 0.1 125.0 (-0.05) 0.1;
    mk "low-vdd" (-0.1) 0.0 0.0 0.0;
    mk "high-vdd" 0.1 0.0 0.0 0.0;
    mk "hot" 0.0 125.0 0.0 0.0;
    mk "cold" 0.0 (-60.0) 0.0 0.0 ]
