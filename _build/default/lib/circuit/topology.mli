(** The cell-level topology library.

    Each builder produces a complete testbench-ready netlist: supplies,
    common-mode input sources with a ±0.5 differential AC excitation, bias
    generation from a single reference current, and a load capacitor.  Net
    naming conventions used by the measurement code:
    - ["vdd"] supply net, source named ["vdd"];
    - ["inp"]/["inn"] differential inputs;
    - ["out"] single-ended output;
    - ["o1"] internal first-stage output where applicable.

    Templates expose the degrees of freedom each synthesis strategy of the
    paper must resolve. *)

val ota_5t : Template.t
(** Five-transistor OTA.  Params: [w1] input pair, [w3] mirror loads,
    [w5] tail (and its 1:1 bias diode), [l] common length, [ib] bias
    current, [cl] load capacitance. *)

val miller_ota : Template.t
(** Two-stage Miller-compensated OTA (NMOS pair, PMOS mirror, PMOS
    common-source second stage, NMOS sink).  Params: [w1], [w3], [w5],
    [w6] second-stage PMOS, [w7] sink, [l], [ib], [cc], [rz]. *)

val folded_cascode : Template.t
(** Folded-cascode OTA with ideal cascode gate biases.  Params: [w1] input
    pair, [wp] top PMOS sources, [wcp] PMOS cascodes, [wn] bottom mirror,
    [wcn] NMOS cascodes, [l], [ib], [cl]. *)

val comparator : Template.t
(** Uncompensated two-stage amplifier used as an open-loop comparator.
    Params: [w1], [w3], [w5], [w6], [w7], [l], [ib]. *)

val all : Template.t list
(** Everything above — the candidate set for topology selection. *)

val common_mode_fraction : float
(** Input common mode as a fraction of Vdd used by every builder. *)
