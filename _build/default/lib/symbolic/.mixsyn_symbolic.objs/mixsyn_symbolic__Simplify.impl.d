lib/symbolic/simplify.ml: Analyze Array Complex Expr Float List
