lib/symbolic/analyze.mli: Complex Expr Format Mixsyn_circuit Mixsyn_engine
