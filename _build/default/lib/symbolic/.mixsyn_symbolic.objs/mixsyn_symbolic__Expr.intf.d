lib/symbolic/expr.mli: Complex Format
