lib/symbolic/analyze.ml: Array Complex Expr Float Format Hashtbl List Mixsyn_circuit Mixsyn_engine String
