lib/symbolic/expr.ml: Array Complex Format Hashtbl List
