lib/symbolic/simplify.mli: Analyze
