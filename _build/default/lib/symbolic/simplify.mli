(** Magnitude-based simplification of symbolic transfer functions.

    ISAAC's key insight: a raw symbolic determinant has far too many terms
    for human insight or fast evaluation, but at a nominal operating point
    most terms are negligible.  Pruning drops, within each power of [s],
    every term whose magnitude is below [threshold] times the dominant term
    of that power — the same coefficient-wise criterion ISAAC applies. *)

type report = {
  simplified : Analyze.rational;
  terms_before : int;
  terms_after : int;
  max_coeff_error : float;
      (** worst relative change of any kept s-coefficient *)
}

val prune :
  value:(string -> float) ->
  threshold:float ->
  Analyze.rational ->
  report

val magnitude_error :
  value:(string -> float) ->
  exact:Analyze.rational ->
  approx:Analyze.rational ->
  freqs:float array ->
  float
(** Maximum relative magnitude deviation of [approx] from [exact] over the
    frequency grid. *)
