(** ISAAC-style symbolic small-signal analysis.

    Builds the MNA matrix with symbolic entries (gm_<dev>, gds_<dev>,
    g_<res>, c_<cap>, cgs_<dev>, ...) and extracts exact transfer functions
    by Cramer's rule with a memoised Laplace determinant expansion.  Circuit
    sizes up to full-opamp complexity (10-12 system unknowns) are practical,
    matching the capability the paper reports for ISAAC. *)

type rational = {
  num : Expr.t;
  den : Expr.t;
}

val transfer :
  Mixsyn_circuit.Netlist.t ->
  out:Mixsyn_circuit.Netlist.net ->
  rational
(** Symbolic transfer from the netlist's AC excitation (the sources with a
    nonzero [ac] field) to the output net voltage. *)

val determinant : Expr.t array array -> Expr.t
(** Memoised Laplace expansion; exposed for tests. *)

val valuation :
  ?tech:Mixsyn_circuit.Tech.t ->
  Mixsyn_circuit.Netlist.t ->
  Mixsyn_engine.Mna.op ->
  string ->
  float
(** Symbol values at an operating point: [valuation nl op "gm_m1"] etc.
    @raise Not_found for unknown symbols. *)

val eval_rational : (string -> float) -> rational -> Complex.t -> Complex.t

val num_den_coeffs : (string -> float) -> rational -> float array * float array
(** Numeric numerator/denominator polynomial coefficients in [s]. *)

val term_count : rational -> int
(** Total number of symbolic terms (numerator + denominator). *)

val pp : Format.formatter -> rational -> unit
