type report = {
  simplified : Analyze.rational;
  terms_before : int;
  terms_after : int;
  max_coeff_error : float;
}

let prune_poly ~value ~threshold p =
  let groups = Expr.by_s_power p in
  let errors = ref 0.0 in
  let kept =
    List.concat_map
      (fun (s_pow, group) ->
        let magnitudes =
          List.map (fun t -> Float.abs (Expr.eval_mono value t)) group
        in
        let dominant = List.fold_left Float.max 0.0 magnitudes in
        let total = List.fold_left ( +. ) 0.0
            (List.map (fun t -> Expr.eval_mono value t) group)
        in
        let cut = threshold *. dominant in
        let survivors =
          List.filter (fun t -> Float.abs (Expr.eval_mono value t) >= cut) group
        in
        let kept_total =
          List.fold_left ( +. ) 0.0 (List.map (fun t -> Expr.eval_mono value t) survivors)
        in
        if Float.abs total > 0.0 then
          errors := Float.max !errors (Float.abs ((kept_total -. total) /. total));
        List.map (fun t -> { t with Expr.s_pow }) survivors)
      groups
  in
  (Expr.add kept Expr.zero, !errors)

let prune ~value ~threshold (r : Analyze.rational) =
  let num, e1 = prune_poly ~value ~threshold r.Analyze.num in
  let den, e2 = prune_poly ~value ~threshold r.Analyze.den in
  { simplified = { Analyze.num; den };
    terms_before = Analyze.term_count r;
    terms_after = Expr.term_count num + Expr.term_count den;
    max_coeff_error = Float.max e1 e2 }

let magnitude_error ~value ~exact ~approx ~freqs =
  Array.fold_left
    (fun acc f ->
      let sval = { Complex.re = 0.0; im = 2.0 *. Float.pi *. f } in
      let h_exact = Complex.norm (Analyze.eval_rational value exact sval) in
      let h_approx = Complex.norm (Analyze.eval_rational value approx sval) in
      if h_exact > 0.0 then Float.max acc (Float.abs ((h_approx -. h_exact) /. h_exact))
      else acc)
    0.0 freqs
