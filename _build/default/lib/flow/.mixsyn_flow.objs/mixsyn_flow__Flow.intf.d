lib/flow/flow.mli: Format Mixsyn_circuit Mixsyn_layout Mixsyn_synth
