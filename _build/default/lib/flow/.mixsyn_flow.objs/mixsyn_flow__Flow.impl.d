lib/flow/flow.ml: Float Format List Mixsyn_circuit Mixsyn_engine Mixsyn_layout Mixsyn_synth Option Printf Unix
