lib/opt/corner_search.mli: Mixsyn_circuit
