lib/opt/corner_search.ml: Array List Mixsyn_circuit Nelder_mead
