lib/opt/genetic.mli: Mixsyn_util
