lib/opt/nelder_mead.mli:
