lib/opt/nelder_mead.ml: Array Float
