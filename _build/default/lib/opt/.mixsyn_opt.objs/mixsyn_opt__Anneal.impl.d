lib/opt/anneal.ml: Mixsyn_util
