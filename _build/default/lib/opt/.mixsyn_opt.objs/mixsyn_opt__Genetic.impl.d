lib/opt/genetic.ml: Array Float Mixsyn_util
