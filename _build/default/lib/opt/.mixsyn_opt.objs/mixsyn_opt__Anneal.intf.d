lib/opt/anneal.mli: Mixsyn_util
