(** Nelder–Mead downhill simplex with box clamping.

    Used as the local polisher after global annealing (the "optimize sizes"
    inner loop of Fig. 1b) and by the continuous worst-case corner search. *)

type options = {
  max_evals : int;
  tolerance : float;  (** stop when the simplex cost spread falls below this *)
}

val default_options : options

val minimize :
  ?options:options ->
  lower:float array ->
  upper:float array ->
  f:(float array -> float) ->
  float array ->
  float array * float * int
(** [minimize ~lower ~upper ~f x0] returns (best point, best cost,
    evaluations used).  [x0] is clamped into the box. *)
