(** Substrate-aware macrocell floorplanning — WRIGHT ([57]).

    Slicing-tree floorplanning, annealed over normalized Polish expressions
    with the classic Wong–Liu move set, plus the WRIGHT ingredient: a fast
    substrate-coupling evaluator inside the cost so noisy digital blocks are
    pushed away from sensitive analog ones.

    The substrate model is the simplified single-layer resistive view: the
    noise an aggressor [i] couples into a victim [j] falls off as
    1/(d_ij + d0), scaled by the aggressor's peak switching current. *)

type placement = {
  block : Block.t;
  x : float;
  y : float;
  rotated : bool;
}

type result = {
  placements : placement list;
  chip_w : float;
  chip_h : float;
  fp_area : float;
  fp_wirelength : float;   (** HPWL over block-centre net spans *)
  victim_noise : (string * float) list;
      (** per sensitive block: coupled substrate noise, V *)
}

val substrate_noise_at : placement list -> Block.t -> float * float -> float
(** Noise voltage at a point for a victim (used by the power grid too). *)

val floorplan :
  ?seed:int ->
  ?noise_weight:float ->
  ?schedule:Mixsyn_opt.Anneal.schedule ->
  Block.t list ->
  result
(** [noise_weight = 0.0] disables the WRIGHT substrate term (the ablation
    of experiment E8). *)

val total_victim_noise : result -> float
