(** RAIL-style mixed-signal power-grid synthesis ([58,60], Fig. 3).

    The supply is a mesh of straps over the floorplan.  Casting grid design
    as a routing/sizing problem needs a fast electrical oracle; as in RAIL
    that oracle is AWE over the extracted RC model:
    - DC: nodal solve for ohmic (IR) drop at every tap;
    - transient: AWE transfer impedances turn each digital block's
      switching-current spike into supply bounce, both locally and as
      coupled noise at the sensitive analog taps;
    - electromigration: per-segment current density against the metal limit.

    Synthesis iteratively widens the straps implicated in the worst
    violations until every constraint holds (or the width range is
    exhausted). *)

type constraints = {
  max_ir_drop : float;        (** fraction of Vdd, e.g. 0.05 *)
  max_spike : float;          (** fraction of Vdd *)
  max_current_density : float;(** A per metre of strap width *)
  max_victim_bounce : float;  (** fraction of Vdd at sensitive taps *)
}

val default_constraints : constraints

type metrics = {
  ir_drop : float;            (** worst fractional DC drop *)
  spike : float;              (** worst fractional transient bounce at any tap *)
  victim_bounce : float;      (** worst fractional bounce at a sensitive tap *)
  em_overload : float;        (** worst J/Jmax over segments *)
  metal_area : float;         (** total strap metal, m² *)
}

type design = {
  pitch : float;
  strap_widths : float array;  (** one width per strap (verticals then horizontals) *)
  n_vertical : int;
  n_horizontal : int;
}

type report = {
  initial_design : design;
  final_design : design;
  before : metrics;
  after : metrics;
  iterations : int;
  meets : bool;
}

val evaluate :
  ?vdd:float -> ?awe_order:int -> Floorplan.result -> design -> metrics
(** [awe_order] controls the Padé order of the transient oracle (default 3;
    the ablation benchmark sweeps it). *)

val synthesize :
  ?vdd:float ->
  ?constraints:constraints ->
  ?pitch:float ->
  ?max_iterations:int ->
  Floorplan.result ->
  report
(** Start from minimum-width straps and widen to meet the constraint set. *)
