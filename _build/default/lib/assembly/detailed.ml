module CR = Mixsyn_layout.Channel_router
module MR = Mixsyn_layout.Maze_router

type channel_job = {
  corridor : Wren.corridor;
  nets : (string * Wren.net_kind) list;
  routed : CR.channel_result;
  budget_f : float option;
  coupling_f : float;
  within_budget : bool;
}

type report = {
  jobs : channel_job list;
  total_tracks : int;
  total_shields : int;
  channels_over_budget : int;
}

let same_corridor (a : Wren.corridor) (b : Wren.corridor) =
  a.Wren.cx0 = b.Wren.cx0 && a.Wren.cy0 = b.Wren.cy0 && a.Wren.cx1 = b.Wren.cx1
  && a.Wren.cy1 = b.Wren.cy1

let run ?(total_budget_f = 0.5e-12) fp (global : Wren.result) =
  let budgets = Wren.map_budgets fp global ~total_budget_f in
  (* collect the distinct corridors and their occupant nets *)
  let corridors : (Wren.corridor * (string * Wren.net_kind) list ref) list ref = ref [] in
  List.iter
    (fun (rn : Wren.routed_net) ->
      List.iter
        (fun c ->
          let entry =
            match List.find_opt (fun (c', _) -> same_corridor c c') !corridors with
            | Some (_, l) -> l
            | None ->
              let l = ref [] in
              corridors := (c, l) :: !corridors;
              l
          in
          if not (List.mem_assoc rn.Wren.gn_net !entry) then
            entry := (rn.Wren.gn_net, rn.Wren.kind) :: !entry)
        rn.Wren.corridors)
    global.Wren.routed;
  let jobs =
    List.filter_map
      (fun (corridor, occupants) ->
        let nets = !occupants in
        if List.length nets < 2 then None
        else begin
          (* synthetic pin pattern: each net crosses the channel once, with
             staggered columns so intervals interleave *)
          let pins =
            List.concat
              (List.mapi
                 (fun i (net, _) ->
                   [ { CR.column = 2 * i; edge = CR.Top; cp_net = net };
                     { CR.column = (2 * i) + 3; edge = CR.Bottom; cp_net = net } ])
                 nets)
          in
          let styles =
            List.map
              (fun (net, kind) ->
                { CR.cn_net = net;
                  cn_class = (match kind with Wren.Aggressor -> MR.Noisy | Wren.Quiet -> MR.Sensitive);
                  track_width = 1 })
              nets
          in
          let budget_f =
            List.fold_left
              (fun acc (cb : Wren.channel_budget) ->
                if same_corridor cb.Wren.corridor corridor
                   && List.mem_assoc cb.Wren.cb_net nets
                then
                  Some
                    (match acc with
                     | None -> cb.Wren.budget_f
                     | Some b -> Float.min b cb.Wren.budget_f)
                else acc)
              None budgets
          in
          (* tight budgets ask for an extra spacing track between quiet and
             aggressor trunks (the [55]-style analog measure) *)
          let tight =
            match budget_f with Some b -> b < 50e-15 | None -> false
          in
          let extra_spacing a b =
            let kind n = List.assoc_opt n nets in
            match (kind a, kind b) with
            | Some ka, Some kb when ka <> kb && tight -> 1
            | _ -> 0
          in
          let routed = CR.route ~shielding:true ~extra_spacing ~pins ~styles () in
          let coupling_f =
            List.fold_left (fun acc (_, _, c) -> acc +. c) 0.0 routed.CR.channel_coupling
          in
          let within_budget =
            match budget_f with None -> true | Some b -> coupling_f <= b
          in
          Some { corridor; nets; routed; budget_f; coupling_f; within_budget }
        end)
      !corridors
  in
  { jobs;
    total_tracks = List.fold_left (fun acc j -> acc + j.routed.CR.tracks_used) 0 jobs;
    total_shields = List.fold_left (fun acc j -> acc + List.length j.routed.CR.shields) 0 jobs;
    channels_over_budget =
      List.fold_left (fun acc j -> if j.within_budget then acc else acc + 1) 0 jobs }
