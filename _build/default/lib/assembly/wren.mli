(** WREN: mixed-signal system routing with SNR-style noise constraints
    ([56]), plus the segregated-channels discipline of [53] as a mode.

    The routing fabric is the corridor graph the floorplan leaves between
    blocks.  Signal nets are routed over it by Dijkstra search; the cost of
    sharing a corridor with an incompatible net grows with the coupling it
    would add.  The constraint mapper ([46]-influenced) turns one
    chip-level noise-rejection budget per sensitive net into per-corridor
    coupling budgets proportional to the corridor lengths the net actually
    traverses — the WREN global-to-detailed hand-off. *)

type net_kind = Quiet | Aggressor

val kind_of_net : string -> net_kind
(** Heuristic: clock/data-bus/control nets are aggressors. *)

type mode =
  | Noise_blind          (** shortest paths only *)
  | Snr_constrained      (** coupling-weighted costs (WREN) *)
  | Segregated           (** aggressors and quiet nets never share a corridor ([53]) *)

type corridor = {
  cx0 : float;
  cy0 : float;
  cx1 : float;
  cy1 : float;
}

type routed_net = {
  gn_net : string;
  kind : net_kind;
  corridors : corridor list;
  g_length : float;
}

type result = {
  routed : routed_net list;
  unrouted : string list;
  coupled_noise : (string * float) list;
      (** per quiet net: aggressor exposure, V (coupling model) *)
  total_length : float;
  shared_length : float;
      (** metres of quiet-net corridor shared with an aggressor *)
}

val route : ?mode:mode -> Floorplan.result -> result

type channel_budget = {
  cb_net : string;
  corridor : corridor;
  budget_f : float;  (** coupling capacitance allowed in this corridor, F *)
}

val map_budgets :
  Floorplan.result -> result -> total_budget_f:float -> channel_budget list
(** Split each quiet net's chip-level coupling budget across the corridors
    it traverses, proportionally to corridor length. *)
