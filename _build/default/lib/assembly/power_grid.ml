module Real = Mixsyn_util.Matrix.Real

type constraints = {
  max_ir_drop : float;
  max_spike : float;
  max_current_density : float;
  max_victim_bounce : float;
}

let default_constraints =
  { max_ir_drop = 0.05;
    max_spike = 0.10;
    max_current_density = 1000.0;  (* A per metre of width: 1 mA/um *)
    max_victim_bounce = 0.02 }

type metrics = {
  ir_drop : float;
  spike : float;
  victim_bounce : float;
  em_overload : float;
  metal_area : float;
}

type design = {
  pitch : float;
  strap_widths : float array;
  n_vertical : int;
  n_horizontal : int;
}

type report = {
  initial_design : design;
  final_design : design;
  before : metrics;
  after : metrics;
  iterations : int;
  meets : bool;
}

let sheet_resistance = 0.05 (* ohm/sq for thick top metal *)
let min_width = 2e-6
let max_width = 200e-6
let pad_conductance = 1e3
let node_decap = 20e-12       (* intrinsic decoupling per node, F *)
let block_decap_per_amp = 2e-9 (* block decap scales with its static draw *)

(* --- grid model ------------------------------------------------------ *)

type model = {
  nx : int;
  ny : int;
  node_xy : (float * float) array;
  g : float array array;
  c : float array array;
  (* per segment: (node a, node b, strap index, length) *)
  segments : (int * int * int * float) array;
  taps : (Block.t * int) list;   (** block -> nearest node *)
  pads : int list;
}

let build_model (fp : Floorplan.result) design =
  let w = fp.Floorplan.chip_w and h = fp.Floorplan.chip_h in
  let nx = design.n_vertical and ny = design.n_horizontal in
  let xs = Array.init nx (fun i -> w *. float_of_int i /. float_of_int (max 1 (nx - 1))) in
  let ys = Array.init ny (fun j -> h *. float_of_int j /. float_of_int (max 1 (ny - 1))) in
  let node i j = (j * nx) + i in
  let n = nx * ny in
  let node_xy = Array.init n (fun k -> (xs.(k mod nx), ys.(k / nx))) in
  let g = Array.make_matrix n n 0.0 in
  let c = Array.make_matrix n n 0.0 in
  let segments = ref [] in
  let add_segment a b strap length =
    let width = design.strap_widths.(strap) in
    let resistance = sheet_resistance *. length /. Float.max width 1e-9 in
    let conductance = 1.0 /. resistance in
    g.(a).(a) <- g.(a).(a) +. conductance;
    g.(b).(b) <- g.(b).(b) +. conductance;
    g.(a).(b) <- g.(a).(b) -. conductance;
    g.(b).(a) <- g.(b).(a) -. conductance;
    segments := (a, b, strap, length) :: !segments
  in
  (* vertical straps: strap index i, connecting (i, j)-(i, j+1) *)
  for i = 0 to nx - 1 do
    for j = 0 to ny - 2 do
      add_segment (node i j) (node i (j + 1)) i (ys.(j + 1) -. ys.(j))
    done
  done;
  (* horizontal straps: strap index nx + j *)
  for j = 0 to ny - 1 do
    for i = 0 to nx - 2 do
      add_segment (node i j) (node (i + 1) j) (nx + j) (xs.(i + 1) -. xs.(i))
    done
  done;
  (* node decap *)
  for k = 0 to n - 1 do
    c.(k).(k) <- c.(k).(k) +. node_decap
  done;
  (* block taps: nearest node; add block decap there *)
  let nearest (px, py) =
    let best = ref 0 and best_d = ref infinity in
    Array.iteri
      (fun k (x, y) ->
        let d = ((x -. px) ** 2.0) +. ((y -. py) ** 2.0) in
        if d < !best_d then begin
          best := k;
          best_d := d
        end)
      node_xy;
    !best
  in
  let taps =
    List.map
      (fun (p : Floorplan.placement) ->
        let bw = if p.Floorplan.rotated then p.Floorplan.block.Block.bh else p.Floorplan.block.Block.bw in
        let bh = if p.Floorplan.rotated then p.Floorplan.block.Block.bw else p.Floorplan.block.Block.bh in
        let tap = nearest (p.Floorplan.x +. (bw /. 2.0), p.Floorplan.y +. (bh /. 2.0)) in
        c.(tap).(tap) <-
          c.(tap).(tap) +. (block_decap_per_amp *. p.Floorplan.block.Block.i_static);
        (p.Floorplan.block, tap))
      fp.Floorplan.placements
  in
  (* pads at the four corners, tied to the ideal rail *)
  let pads = [ node 0 0; node (nx - 1) 0; node 0 (ny - 1); node (nx - 1) (ny - 1) ] in
  List.iter (fun p -> g.(p).(p) <- g.(p).(p) +. pad_conductance) pads;
  { nx; ny; node_xy; g; c; segments = Array.of_list !segments; taps; pads }

(* --- evaluation ------------------------------------------------------ *)

let evaluate ?(vdd = 5.0) ?(awe_order = 3) fp design =
  let model = build_model fp design in
  let n = Array.length model.node_xy in
  (* DC: drops relative to the ideal rail; loads sink current *)
  let i_load = Array.make n 0.0 in
  List.iter
    (fun ((b : Block.t), tap) -> i_load.(tap) <- i_load.(tap) +. b.Block.i_static)
    model.taps;
  let drops = Real.solve model.g i_load in
  let ir_drop = Array.fold_left Float.max 0.0 drops /. vdd in
  (* EM: segment currents *)
  let em_overload =
    Array.fold_left
      (fun acc (a, b, strap, length) ->
        let width = design.strap_widths.(strap) in
        let resistance = sheet_resistance *. length /. Float.max width 1e-9 in
        let current = Float.abs (drops.(a) -. drops.(b)) /. resistance in
        let density = current /. Float.max width 1e-9 in
        Float.max acc (density /. default_constraints.max_current_density))
      0.0 model.segments
  in
  (* transient: AWE transfer impedance from each aggressor tap *)
  let victims =
    List.filter (fun ((b : Block.t), _) -> Block.is_victim b) model.taps
  in
  let aggressors =
    List.filter (fun ((b : Block.t), _) -> b.Block.i_peak > 0.0) model.taps
  in
  let spike = ref 0.0 and victim_bounce = ref 0.0 in
  List.iter
    (fun ((b : Block.t), tap) ->
      let bvec = Array.make n 0.0 in
      bvec.(tap) <- 1.0;
      let peak_at out =
        match Mixsyn_awe.Awe.of_network ~g:model.g ~c:model.c ~b:bvec ~out ~order:awe_order with
        | exception Failure _ -> 0.0
        | tf ->
          let tf = Mixsyn_awe.Awe.stable_part tf in
          (* bounce of a current step of i_peak held for t_spike *)
          let samples = 8 in
          let peak = ref 0.0 in
          for k = 1 to samples do
            let t = b.Block.t_spike *. float_of_int k /. float_of_int samples in
            peak := Float.max !peak (Float.abs (Mixsyn_awe.Awe.step_response tf t))
          done;
          b.Block.i_peak *. !peak
      in
      spike := Float.max !spike (peak_at tap /. vdd);
      List.iter
        (fun ((_ : Block.t), victim_tap) ->
          victim_bounce := Float.max !victim_bounce (peak_at victim_tap /. vdd))
        victims)
    aggressors;
  let metal_area =
    Array.fold_left
      (fun acc (_, _, strap, length) -> acc +. (design.strap_widths.(strap) *. length))
      0.0 model.segments
  in
  { ir_drop; spike = !spike; victim_bounce = !victim_bounce; em_overload; metal_area }

(* --- synthesis ------------------------------------------------------- *)

let violations constraints m =
  Float.max 0.0 ((m.ir_drop /. constraints.max_ir_drop) -. 1.0)
  +. Float.max 0.0 ((m.spike /. constraints.max_spike) -. 1.0)
  +. Float.max 0.0 ((m.victim_bounce /. constraints.max_victim_bounce) -. 1.0)
  +. Float.max 0.0 (m.em_overload -. 1.0)

let synthesize ?(vdd = 5.0) ?(constraints = default_constraints) ?(pitch = 0.8e-3)
    ?(max_iterations = 30) fp =
  let n_vertical = max 3 (int_of_float (fp.Floorplan.chip_w /. pitch) + 1) in
  let n_horizontal = max 3 (int_of_float (fp.Floorplan.chip_h /. pitch) + 1) in
  let initial_design =
    { pitch;
      strap_widths = Array.make (n_vertical + n_horizontal) min_width;
      n_vertical;
      n_horizontal }
  in
  let before = evaluate ~vdd fp initial_design in
  let design = ref { initial_design with strap_widths = Array.copy initial_design.strap_widths } in
  let iterations = ref 0 in
  let current = ref before in
  while violations constraints !current > 0.0 && !iterations < max_iterations do
    incr iterations;
    (* sensitivity-guided widening: find the worst-loaded straps via the DC
       segment currents and widen them; global violations widen everything *)
    let model = build_model fp !design in
    let n = Array.length model.node_xy in
    let i_load = Array.make n 0.0 in
    List.iter
      (fun ((b : Block.t), tap) ->
        i_load.(tap) <- i_load.(tap) +. b.Block.i_static +. (0.3 *. b.Block.i_peak))
      model.taps;
    let drops = Real.solve model.g i_load in
    let strap_current = Array.make (Array.length !design.strap_widths) 0.0 in
    Array.iter
      (fun (a, b, strap, length) ->
        let width = !design.strap_widths.(strap) in
        let resistance = sheet_resistance *. length /. Float.max width 1e-9 in
        let current = Float.abs (drops.(a) -. drops.(b)) /. resistance in
        strap_current.(strap) <- Float.max strap_current.(strap) current)
      model.segments;
    let worst = Array.fold_left Float.max 0.0 strap_current in
    let widths = Array.copy !design.strap_widths in
    Array.iteri
      (fun s current ->
        (* electromigration drives the width directly (J = I/w must land
           under the limit even as the widened strap attracts more current);
           IR/spike violations widen the most-loaded straps *)
        let em_width = 1.2 *. current /. constraints.max_current_density in
        let target =
          if current > 0.5 *. worst then Float.max (widths.(s) *. 1.5) em_width
          else Float.max widths.(s) em_width
        in
        widths.(s) <- Float.min max_width target)
      strap_current;
    design := { !design with strap_widths = widths };
    current := evaluate ~vdd fp !design
  done;
  { initial_design;
    final_design = !design;
    before;
    after = !current;
    iterations = !iterations;
    meets = violations constraints !current = 0.0 }
