type kind =
  | Digital
  | Analog_sensitive
  | Analog
  | Clock

type t = {
  b_name : string;
  kind : kind;
  bw : float;
  bh : float;
  i_static : float;
  i_peak : float;
  t_spike : float;
  nets : string list;
}

let make ?(i_static = 1e-3) ?(i_peak = 0.0) ?(t_spike = 1e-9) ?(nets = []) b_name kind ~w ~h =
  { b_name; kind; bw = w; bh = h; i_static; i_peak; t_spike; nets }

let is_aggressor b = match b.kind with Digital | Clock -> true | Analog | Analog_sensitive -> false

let is_victim b = match b.kind with Analog_sensitive -> true | Digital | Clock | Analog -> false

let noise_injection b = b.i_peak

let data_channel_testbench () =
  [ make "dsp-core" Digital ~w:2.2e-3 ~h:2.0e-3 ~i_static:40e-3 ~i_peak:350e-3 ~t_spike:0.8e-9
      ~nets:[ "dbus"; "ctl"; "clk" ];
    make "clockgen" Clock ~w:0.6e-3 ~h:0.5e-3 ~i_static:8e-3 ~i_peak:120e-3 ~t_spike:0.4e-9
      ~nets:[ "clk" ];
    make "read-frontend" Analog_sensitive ~w:1.4e-3 ~h:1.0e-3 ~i_static:12e-3
      ~nets:[ "rin"; "agc"; "vref" ];
    make "pll" Analog_sensitive ~w:0.8e-3 ~h:0.7e-3 ~i_static:6e-3 ~nets:[ "clk"; "vref" ];
    make "adc" Analog_sensitive ~w:1.1e-3 ~h:0.9e-3 ~i_static:15e-3
      ~nets:[ "agc"; "dbus"; "vref"; "clk" ];
    make "servo-dac" Analog ~w:0.7e-3 ~h:0.6e-3 ~i_static:9e-3 ~nets:[ "ctl"; "vref" ];
    make "line-driver" Analog ~w:0.9e-3 ~h:0.5e-3 ~i_static:25e-3 ~i_peak:60e-3 ~t_spike:2e-9
      ~nets:[ "dbus"; "lout" ];
    make "bias-gen" Analog ~w:0.4e-3 ~h:0.4e-3 ~i_static:3e-3 ~nets:[ "vref" ] ]
