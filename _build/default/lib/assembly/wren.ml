type net_kind = Quiet | Aggressor

let kind_of_net = function
  | "clk" | "dbus" | "ctl" -> Aggressor
  | _ -> Quiet

type mode =
  | Noise_blind
  | Snr_constrained
  | Segregated

type corridor = {
  cx0 : float;
  cy0 : float;
  cx1 : float;
  cy1 : float;
}

type routed_net = {
  gn_net : string;
  kind : net_kind;
  corridors : corridor list;
  g_length : float;
}

type result = {
  routed : routed_net list;
  unrouted : string list;
  coupled_noise : (string * float) list;
  total_length : float;
  shared_length : float;
      (** metres of quiet-net corridor shared with an aggressor *)
}

(* Corridor grid: cut lines at every block edge.  A slicing floorplan tiles
   the die with no slack, so block positions are spread by [channel_scale]
   (keeping sizes) to open the wiring channels the assembly needs — the
   standard block-spacing step before global routing. *)
let channel_scale = 1.18

type fabric = {
  xs : float array;  (** cut positions, ascending *)
  ys : float array;
  free : bool array array;  (** cell (i,j) is routable *)
  occupants : (int * int, (string * net_kind) list ref) Hashtbl.t;
  terminals : (int * int, unit) Hashtbl.t;
      (** block-pin cells: exempt from segregation and coupling accounting *)
}

let spread (p : Floorplan.placement) =
  { p with
    Floorplan.x = p.Floorplan.x *. channel_scale;
    Floorplan.y = p.Floorplan.y *. channel_scale }

let build_fabric (fp : Floorplan.result) =
  let fp =
    { fp with
      Floorplan.placements = List.map spread fp.Floorplan.placements;
      Floorplan.chip_w = fp.Floorplan.chip_w *. channel_scale;
      Floorplan.chip_h = fp.Floorplan.chip_h *. channel_scale }
  in
  let xs = ref [ 0.0; fp.Floorplan.chip_w ] in
  let ys = ref [ 0.0; fp.Floorplan.chip_h ] in
  List.iter
    (fun (p : Floorplan.placement) ->
      let w = if p.Floorplan.rotated then p.Floorplan.block.Block.bh else p.Floorplan.block.Block.bw in
      let h = if p.Floorplan.rotated then p.Floorplan.block.Block.bw else p.Floorplan.block.Block.bh in
      xs := p.Floorplan.x :: (p.Floorplan.x +. w) :: !xs;
      ys := p.Floorplan.y :: (p.Floorplan.y +. h) :: !ys)
    fp.Floorplan.placements;
  let dedupe l =
    List.sort_uniq (fun a b -> compare a b) l
    |> List.filter (fun v -> v >= 0.0)
  in
  let xs = Array.of_list (dedupe !xs) and ys = Array.of_list (dedupe !ys) in
  let nx = Array.length xs - 1 and ny = Array.length ys - 1 in
  let free = Array.make_matrix nx ny true in
  (* a cell is blocked when its centre lies inside a block; blocks abut in a
     slicing floorplan, so corridors are the slack cells *)
  for i = 0 to nx - 1 do
    for j = 0 to ny - 1 do
      let cx = 0.5 *. (xs.(i) +. xs.(i + 1)) and cy = 0.5 *. (ys.(j) +. ys.(j + 1)) in
      let inside (p : Floorplan.placement) =
        let w = if p.Floorplan.rotated then p.Floorplan.block.Block.bh else p.Floorplan.block.Block.bw in
        let h = if p.Floorplan.rotated then p.Floorplan.block.Block.bw else p.Floorplan.block.Block.bh in
        cx > p.Floorplan.x && cx < p.Floorplan.x +. w && cy > p.Floorplan.y
        && cy < p.Floorplan.y +. h
      in
      if List.exists inside fp.Floorplan.placements then free.(i).(j) <- false
    done
  done;
  { xs; ys; free; occupants = Hashtbl.create 64; terminals = Hashtbl.create 16 }

let cell_center fabric (i, j) =
  (0.5 *. (fabric.xs.(i) +. fabric.xs.(i + 1)), 0.5 *. (fabric.ys.(j) +. fabric.ys.(j + 1)))

let cell_size fabric (i, j) =
  (fabric.xs.(i + 1) -. fabric.xs.(i), fabric.ys.(j + 1) -. fabric.ys.(j))

let coupling_per_meter = 2.0e-3 (* V of induced noise per metre of shared corridor *)

(* Dijkstra over corridor cells *)
let route_net fabric ~mode ~kind terminals =
  let nx = Array.length fabric.xs - 1 and ny = Array.length fabric.ys - 1 in
  let n = nx * ny in
  let idx i j = (j * nx) + i in
  let step_cost (i, j) =
    if not fabric.free.(i).(j) then infinity
    else begin
      let w, h = cell_size fabric (i, j) in
      let len = 0.5 *. (w +. h) in
      let occupants =
        match Hashtbl.find_opt fabric.occupants (i, j) with Some l -> !l | None -> []
      in
      let incompatible =
        List.exists (fun (_, k) -> k <> kind) occupants
        && not (Hashtbl.mem fabric.terminals (i, j))
      in
      match mode with
      | Noise_blind -> len
      | Snr_constrained -> if incompatible then len *. 25.0 else len
      | Segregated -> if incompatible then infinity else len
    end
  in
  match terminals with
  | [] | [ _ ] -> Some []
  | first :: rest ->
    let tree = ref [ first ] in
    let cells = ref [ first ] in
    let ok = ref true in
    List.iter
      (fun target ->
        if !ok then begin
          let dist = Array.make n infinity and prev = Array.make n (-1) in
          let visited = Array.make n false in
          List.iter (fun (i, j) -> dist.(idx i j) <- 0.0) !tree;
          (* simple O(n^2) Dijkstra: fabric has at most a few hundred cells *)
          let rec run () =
            let best = ref (-1) and best_d = ref infinity in
            for k = 0 to n - 1 do
              if (not visited.(k)) && dist.(k) < !best_d then begin
                best := k;
                best_d := dist.(k)
              end
            done;
            if !best < 0 then ()
            else begin
              let k = !best in
              visited.(k) <- true;
              let i = k mod nx and j = k / nx in
              if (i, j) = target then ()
              else begin
                let try_step i' j' =
                  if i' >= 0 && i' < nx && j' >= 0 && j' < ny then begin
                    let c = step_cost (i', j') in
                    if c < infinity then begin
                      let nd = dist.(k) +. c in
                      if nd < dist.(idx i' j') then begin
                        dist.(idx i' j') <- nd;
                        prev.(idx i' j') <- k
                      end
                    end
                  end
                in
                try_step (i + 1) j;
                try_step (i - 1) j;
                try_step i (j + 1);
                try_step i (j - 1);
                run ()
              end
            end
          in
          run ();
          let ti, tj = target in
          if dist.(idx ti tj) = infinity then ok := false
          else begin
            let rec trace k acc =
              if k = -1 then acc
              else trace prev.(k) ((k mod nx, k / nx) :: acc)
            in
            let path = trace (idx ti tj) [] in
            tree := path @ !tree;
            cells := path @ !cells
          end
        end)
      rest;
    if !ok then Some !cells else None

let route ?(mode = Snr_constrained) (fp : Floorplan.result) =
  let fabric = build_fabric fp in
  let fp =
    { fp with
      Floorplan.placements = List.map spread fp.Floorplan.placements;
      Floorplan.chip_w = fp.Floorplan.chip_w *. channel_scale;
      Floorplan.chip_h = fp.Floorplan.chip_h *. channel_scale }
  in
  let nx = Array.length fabric.xs - 1 and ny = Array.length fabric.ys - 1 in
  (* terminal cell per block: the nearest free cell to the block centre *)
  let terminal_of (p : Floorplan.placement) =
    let w = if p.Floorplan.rotated then p.Floorplan.block.Block.bh else p.Floorplan.block.Block.bw in
    let h = if p.Floorplan.rotated then p.Floorplan.block.Block.bw else p.Floorplan.block.Block.bh in
    let cx = p.Floorplan.x +. (w /. 2.0) and cy = p.Floorplan.y +. (h /. 2.0) in
    let best = ref None in
    for i = 0 to nx - 1 do
      for j = 0 to ny - 1 do
        if fabric.free.(i).(j) then begin
          let x, y = cell_center fabric (i, j) in
          let d = ((x -. cx) ** 2.0) +. ((y -. cy) ** 2.0) in
          match !best with
          | Some (_, _, bd) when bd <= d -> ()
          | Some _ | None -> best := Some (i, j, d)
        end
      done
    done;
    Option.map (fun (i, j, _) -> (i, j)) !best
  in
  (* nets -> blocks *)
  let nets = Hashtbl.create 16 in
  List.iter
    (fun (p : Floorplan.placement) ->
      List.iter
        (fun net ->
          let existing = try Hashtbl.find nets net with Not_found -> [] in
          Hashtbl.replace nets net (p :: existing))
        p.Floorplan.block.Block.nets)
    fp.Floorplan.placements;
  let net_names = Hashtbl.fold (fun k _ acc -> k :: acc) nets [] |> List.sort compare in
  (* aggressors routed first in segregated mode (they claim corridors) *)
  let order =
    List.sort
      (fun a b -> compare (kind_of_net b = Aggressor) (kind_of_net a = Aggressor))
      net_names
  in
  let routed = ref [] and unrouted = ref [] in
  (* register all terminal cells before routing so the segregation rule can
     exempt them *)
  List.iter
    (fun net ->
      let blocks = Hashtbl.find nets net in
      List.iter
        (fun cell -> Hashtbl.replace fabric.terminals cell ())
        (List.filter_map terminal_of blocks))
    order;
  List.iter
    (fun net ->
      let kind = kind_of_net net in
      let blocks = Hashtbl.find nets net in
      let terminals = List.filter_map terminal_of blocks in
      match route_net fabric ~mode ~kind terminals with
      | None -> unrouted := net :: !unrouted
      | Some cells ->
        List.iter
          (fun cell ->
            let l =
              match Hashtbl.find_opt fabric.occupants cell with
              | Some l -> l
              | None ->
                let l = ref [] in
                Hashtbl.replace fabric.occupants cell l;
                l
            in
            l := (net, kind) :: !l)
          cells;
        let corridors =
          List.map
            (fun (i, j) ->
              { cx0 = fabric.xs.(i); cy0 = fabric.ys.(j);
                cx1 = fabric.xs.(i + 1); cy1 = fabric.ys.(j + 1) })
            cells
        in
        let length =
          List.fold_left
            (fun acc cell ->
              let w, h = cell_size fabric cell in
              acc +. (0.5 *. (w +. h)))
            0.0 cells
        in
        routed := { gn_net = net; kind; corridors; g_length = length } :: !routed)
    order;
  (* coupled noise per quiet net: shared corridor length with aggressors
     (block-pin cells excluded: every net must reach its block) *)
  let shared = ref 0.0 in
  let coupled_noise =
    Hashtbl.fold
      (fun cell occupants acc ->
        if Hashtbl.mem fabric.terminals cell then acc
        else begin
          let quiet = List.filter (fun (_, k) -> k = Quiet) !occupants in
          let aggressors = List.filter (fun (_, k) -> k = Aggressor) !occupants in
          if quiet = [] || aggressors = [] then acc
          else begin
            let w, h = cell_size fabric cell in
            let len = 0.5 *. (w +. h) in
            shared := !shared +. (len *. float_of_int (List.length quiet));
            let v = coupling_per_meter *. len *. float_of_int (List.length aggressors) in
            List.fold_left
              (fun acc (net, _) ->
                let prev = try List.assoc net acc with Not_found -> 0.0 in
                (net, prev +. v) :: List.remove_assoc net acc)
              acc quiet
          end
        end)
      fabric.occupants []
  in
  { routed = !routed;
    unrouted = !unrouted;
    coupled_noise;
    total_length = List.fold_left (fun acc r -> acc +. r.g_length) 0.0 !routed;
    shared_length = !shared }

type channel_budget = {
  cb_net : string;
  corridor : corridor;
  budget_f : float;
}

let map_budgets _fp result ~total_budget_f =
  List.concat_map
    (fun r ->
      if r.kind = Aggressor then []
      else begin
        let total_len = Float.max r.g_length 1e-9 in
        List.map
          (fun c ->
            let len = 0.5 *. (c.cx1 -. c.cx0 +. (c.cy1 -. c.cy0)) in
            { cb_net = r.gn_net; corridor = c; budget_f = total_budget_f *. len /. total_len })
          r.corridors
      end)
    result.routed
