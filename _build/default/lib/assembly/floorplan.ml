module Rng = Mixsyn_util.Rng

type placement = {
  block : Block.t;
  x : float;
  y : float;
  rotated : bool;
}

type result = {
  placements : placement list;
  chip_w : float;
  chip_h : float;
  fp_area : float;
  fp_wirelength : float;
  victim_noise : (string * float) list;
}

(* --- substrate coupling model --------------------------------------- *)

let coupling_constant = 0.12 (* V per A at zero distance, empirical scale *)
let coupling_d0 = 0.3e-3     (* m: softening distance *)

let center p = (p.x +. (if p.rotated then p.block.Block.bh else p.block.Block.bw) /. 2.0,
                p.y +. (if p.rotated then p.block.Block.bw else p.block.Block.bh) /. 2.0)

let substrate_noise_at placements _victim (px, py) =
  List.fold_left
    (fun acc p ->
      if Block.is_aggressor p.block then begin
        let ax, ay = center p in
        let d = sqrt (((ax -. px) ** 2.0) +. ((ay -. py) ** 2.0)) in
        acc +. (coupling_constant *. Block.noise_injection p.block /. ((d /. coupling_d0) +. 1.0))
      end
      else acc)
    0.0 placements

(* --- slicing tree / Polish expression ------------------------------- *)

type token = Operand of int | H | V

let is_operator = function H | V -> true | Operand _ -> false

(* evaluate sizes and positions *)
let evaluate blocks rotations expr =
  let dims i =
    let b = blocks.(i) in
    if rotations.(i) then (b.Block.bh, b.Block.bw) else (b.Block.bw, b.Block.bh)
  in
  (* each stack entry: (w, h, place function taking (x, y) -> placements) *)
  let stack = ref [] in
  Array.iter
    (fun token ->
      match token with
      | Operand i ->
        let w, h = dims i in
        let place x y = [ (i, x, y) ] in
        stack := (w, h, place) :: !stack
      | H ->
        (* horizontal cut: second on top of first *)
        (match !stack with
         | (w2, h2, p2) :: (w1, h1, p1) :: rest ->
           let w = Float.max w1 w2 and h = h1 +. h2 in
           let place x y = p1 x y @ p2 x (y +. h1) in
           ignore w2;
           stack := (w, h, place) :: rest
         | _ -> failwith "floorplan: malformed expression")
      | V ->
        (match !stack with
         | (w2, h2, p2) :: (w1, h1, p1) :: rest ->
           let w = w1 +. w2 and h = Float.max h1 h2 in
           let place x y = p1 x y @ p2 (x +. w1) y in
           ignore h2;
           stack := (w, h, place) :: rest
         | _ -> failwith "floorplan: malformed expression"))
    expr;
  match !stack with
  | [ (w, h, place) ] -> (w, h, place 0.0 0.0)
  | _ -> failwith "floorplan: malformed expression"

let wirelength blocks placements =
  (* HPWL over the nets' block centres *)
  let bounds = Hashtbl.create 16 in
  List.iter
    (fun (i, x, y) ->
      let b = blocks.(i) in
      let cx = x +. (b.Block.bw /. 2.0) and cy = y +. (b.Block.bh /. 2.0) in
      List.iter
        (fun net ->
          match Hashtbl.find_opt bounds net with
          | None -> Hashtbl.replace bounds net (cx, cy, cx, cy)
          | Some (x0, y0, x1, y1) ->
            Hashtbl.replace bounds net
              (Float.min x0 cx, Float.min y0 cy, Float.max x1 cx, Float.max y1 cy))
        b.Block.nets)
    placements;
  Hashtbl.fold (fun _ (x0, y0, x1, y1) acc -> acc +. (x1 -. x0) +. (y1 -. y0)) bounds 0.0

let to_placements blocks rotations raw =
  List.map
    (fun (i, x, y) -> { block = blocks.(i); x; y; rotated = rotations.(i) })
    raw

let noise_cost blocks rotations raw =
  let placements = to_placements blocks rotations raw in
  List.fold_left
    (fun acc p ->
      if Block.is_victim p.block then acc +. substrate_noise_at placements p.block (center p)
      else acc)
    0.0 placements

(* annealing state *)
type state = {
  expr : token array;
  rotations : bool array;
}

let valid expr =
  (* every prefix has more operands than operators; total operators = n-1 *)
  let balance = ref 0 in
  Array.for_all
    (fun t ->
      (match t with Operand _ -> incr balance | H | V -> decr balance);
      !balance >= 1)
    expr
  && !balance = 1

let floorplan ?(seed = 5) ?(noise_weight = 1.0) ?schedule blocks_list =
  let blocks = Array.of_list blocks_list in
  let n = Array.length blocks in
  assert (n >= 2);
  let rng = Rng.create seed in
  let initial =
    (* chain: b0 b1 V b2 V b3 H ... alternating cuts *)
    let tokens = ref [ Operand 0 ] in
    for i = 1 to n - 1 do
      tokens := (if i mod 2 = 0 then H else V) :: Operand i :: !tokens
    done;
    { expr = Array.of_list (List.rev !tokens); rotations = Array.make n false }
  in
  let scale =
    let total = Array.fold_left (fun acc b -> acc +. (b.Block.bw *. b.Block.bh)) 0.0 blocks in
    total
  in
  let cost state =
    match evaluate blocks state.rotations state.expr with
    | exception Failure _ -> infinity
    | w, h, raw ->
      let area = w *. h in
      let wl = wirelength blocks raw in
      let noise = if noise_weight > 0.0 then noise_cost blocks state.rotations raw else 0.0 in
      (area /. scale)
      +. (0.15 *. wl /. sqrt scale)
      +. (noise_weight *. noise *. 10.0)
      +. (0.2 *. Float.abs (log (w /. h)))  (* keep the chip roughly square *)
  in
  let neighbor rng ~temp01:_ state =
    let expr = Array.copy state.expr in
    let rotations = Array.copy state.rotations in
    let len = Array.length expr in
    let choice = Rng.int rng 4 in
    if choice = 0 then begin
      (* M1: swap two adjacent operands *)
      let operand_positions =
        Array.to_list (Array.mapi (fun i t -> (i, t)) expr)
        |> List.filter (fun (_, t) -> not (is_operator t))
        |> List.map fst
      in
      let arr = Array.of_list operand_positions in
      if Array.length arr >= 2 then begin
        let k = Rng.int rng (Array.length arr - 1) in
        let i = arr.(k) and j = arr.(k + 1) in
        let tmp = expr.(i) in
        expr.(i) <- expr.(j);
        expr.(j) <- tmp
      end
    end
    else if choice = 1 then begin
      (* M2: complement an operator *)
      let ops =
        Array.to_list (Array.mapi (fun i t -> (i, t)) expr)
        |> List.filter (fun (_, t) -> is_operator t)
        |> List.map fst
      in
      if ops <> [] then begin
        let i = List.nth ops (Rng.int rng (List.length ops)) in
        expr.(i) <- (match expr.(i) with H -> V | V -> H | Operand _ -> expr.(i))
      end
    end
    else if choice = 2 then begin
      (* M3: swap adjacent operand/operator when still valid *)
      let i = Rng.int rng (len - 1) in
      let a = expr.(i) and b = expr.(i + 1) in
      if is_operator a <> is_operator b then begin
        expr.(i) <- b;
        expr.(i + 1) <- a;
        if not (valid expr) then begin
          expr.(i) <- a;
          expr.(i + 1) <- b
        end
      end
    end
    else begin
      (* rotate a block *)
      let i = Rng.int rng n in
      rotations.(i) <- not rotations.(i)
    end;
    { expr; rotations }
  in
  let schedule =
    match schedule with
    | Some s -> s
    | None -> { Mixsyn_opt.Anneal.t_start = 2.0; t_end = 1e-4; cooling = 0.92; moves_per_stage = 80 * n }
  in
  let outcome =
    Mixsyn_opt.Anneal.minimize ~schedule ~rng { Mixsyn_opt.Anneal.initial; cost; neighbor }
  in
  let best = outcome.Mixsyn_opt.Anneal.best in
  let w, h, raw = evaluate blocks best.rotations best.expr in
  let placements = to_placements blocks best.rotations raw in
  let victim_noise =
    List.filter_map
      (fun p ->
        if Block.is_victim p.block then
          Some (p.block.Block.b_name, substrate_noise_at placements p.block (center p))
        else None)
      placements
  in
  { placements;
    chip_w = w;
    chip_h = h;
    fp_area = w *. h;
    fp_wirelength = wirelength blocks raw;
    victim_noise }

let total_victim_noise r = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 r.victim_noise
