lib/assembly/power_grid.ml: Array Block Float Floorplan List Mixsyn_awe Mixsyn_util
