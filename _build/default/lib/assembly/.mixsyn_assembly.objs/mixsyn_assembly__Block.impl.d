lib/assembly/block.ml:
