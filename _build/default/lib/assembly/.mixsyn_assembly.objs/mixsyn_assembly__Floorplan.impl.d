lib/assembly/floorplan.ml: Array Block Float Hashtbl List Mixsyn_opt Mixsyn_util
