lib/assembly/wren.mli: Floorplan
