lib/assembly/detailed.mli: Floorplan Mixsyn_layout Wren
