lib/assembly/wren.ml: Array Block Float Floorplan Hashtbl List Option
