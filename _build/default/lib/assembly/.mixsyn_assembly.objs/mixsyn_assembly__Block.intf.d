lib/assembly/block.mli:
