lib/assembly/power_grid.mli: Floorplan
