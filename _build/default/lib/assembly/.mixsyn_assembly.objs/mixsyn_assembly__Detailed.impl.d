lib/assembly/detailed.ml: Float List Mixsyn_layout Wren
