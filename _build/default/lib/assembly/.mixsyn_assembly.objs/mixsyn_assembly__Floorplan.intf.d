lib/assembly/floorplan.mli: Block Mixsyn_opt
