(** The WREN global-to-detailed hand-off: each corridor the global router
    used becomes a routing channel, the nets inside it become channel pins,
    and the chip-level coupling budgets mapped by {!Wren.map_budgets} decide
    the channel router's analog measures (extra spacing, shields) — the
    constraint-mapping chain of [46] -> [56] -> [55] the paper describes. *)

type channel_job = {
  corridor : Wren.corridor;
  nets : (string * Wren.net_kind) list;
  routed : Mixsyn_layout.Channel_router.channel_result;
  budget_f : float option;     (** tightest per-net budget in this corridor *)
  coupling_f : float;          (** achieved coupling in this corridor *)
  within_budget : bool;
}

type report = {
  jobs : channel_job list;
  total_tracks : int;
  total_shields : int;
  channels_over_budget : int;
}

val run :
  ?total_budget_f:float ->
  Floorplan.result ->
  Wren.result ->
  report
(** Detail-route every multi-net corridor of a global routing result.
    [total_budget_f] is the chip-level coupling budget per quiet net
    (default 0.5 pF). *)
