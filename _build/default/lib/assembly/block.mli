(** Mixed-signal functional blocks — the units of system assembly
    (Section 3.2).

    A block is an opaque laid-out macro: fixed dimensions, a class that
    determines its noise behaviour, a supply-current signature for the
    power-grid and substrate analyses, and the signal nets it connects to. *)

type kind =
  | Digital            (** fast logic: injects switching noise *)
  | Analog_sensitive   (** low-level analog: a substrate/coupling victim *)
  | Analog             (** robust analog (drivers, biasing) *)
  | Clock              (** clock generation: the worst aggressor *)

type t = {
  b_name : string;
  kind : kind;
  bw : float;             (** width, m *)
  bh : float;             (** height, m *)
  i_static : float;       (** DC supply current, A *)
  i_peak : float;         (** transient supply-current spike, A *)
  t_spike : float;        (** spike duration, s *)
  nets : string list;     (** signal nets terminating on this block *)
}

val make :
  ?i_static:float -> ?i_peak:float -> ?t_spike:float -> ?nets:string list ->
  string -> kind -> w:float -> h:float -> t

val is_aggressor : t -> bool
val is_victim : t -> bool

val noise_injection : t -> float
(** Aggressor figure: peak switching current, A. *)

val data_channel_testbench : unit -> t list
(** The synthetic mixed-signal chip standing in for the IBM data-channel
    design of Fig. 3: a DSP core, clock generation, read-channel analog
    front-end, PLL, ADC and output drivers. *)
