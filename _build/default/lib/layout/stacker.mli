(** Device stacking: partition the MOS devices into chains that share
    source/drain diffusions (Section 3.1's "stacks").

    The diffusion graph has a vertex per net and an edge per device
    (source-drain); a stack is a trail, and a stacking is a partition of the
    edges into trails.  Fewer trails = more merged junctions = less parasitic
    capacitance.  Two extractors, the paper's two references:
    - {!exact}: exhaustive trail-partition enumeration ([43], exponential) —
      finds the minimum trail count and counts the optimal stackings;
    - {!linear}: Hierholzer construction ([45], O(n)) — produces one optimal
      stacking directly.

    Devices are only stacked within a compatibility class: same polarity and
    equal width within 10 %. *)

type stack = {
  st_name : string;
  polarity : Mixsyn_circuit.Netlist.polarity;
  st_w : float;
  st_l : float;
  devices : string list;             (** device names along the strip *)
  gates : (string * string) list;    (** (device, gate net) along the strip *)
  nodes : string list;               (** diffusion nets, length = devices+1 *)
}

type stacking = {
  stacks : stack list;
  merged_junctions : int;  (** diffusion contacts saved vs unstacked layout *)
}

type exact_report = {
  best : stacking;
  optimal_count : int;     (** optimal stackings enumerated (capped) *)
  states_explored : int;
  capped : bool;
}

val exact : ?state_cap:int -> Mixsyn_circuit.Netlist.mos list -> exact_report
(** Exhaustive enumeration; [state_cap] (default 2_000_000) bounds the
    search, setting [capped] when hit. *)

val linear : Mixsyn_circuit.Netlist.mos list -> stacking
(** One optimal stacking in time linear in the device count. *)

val junction_capacitance :
  Mixsyn_circuit.Tech.t -> Mixsyn_circuit.Netlist.mos list -> stacking -> float
(** Total source/drain junction capacitance of the stacked layout, F — the
    quantity stacking exists to minimise. *)
