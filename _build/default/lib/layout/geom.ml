type layer =
  | Ndiff
  | Pdiff
  | Poly
  | Metal1
  | Metal2
  | Contact
  | Via12
  | Nwell

let layer_name = function
  | Ndiff -> "ndiff"
  | Pdiff -> "pdiff"
  | Poly -> "poly"
  | Metal1 -> "metal1"
  | Metal2 -> "metal2"
  | Contact -> "contact"
  | Via12 -> "via12"
  | Nwell -> "nwell"

let all_layers = [ Ndiff; Pdiff; Poly; Metal1; Metal2; Contact; Via12; Nwell ]

type rect = {
  layer : layer;
  x0 : float;
  y0 : float;
  x1 : float;
  y1 : float;
}

let rect layer a b c d =
  { layer; x0 = Float.min a c; y0 = Float.min b d; x1 = Float.max a c; y1 = Float.max b d }

let width r = r.x1 -. r.x0
let height r = r.y1 -. r.y0
let area r = width r *. height r
let center r = (0.5 *. (r.x0 +. r.x1), 0.5 *. (r.y0 +. r.y1))

let overlaps a b = a.x0 < b.x1 && b.x0 < a.x1 && a.y0 < b.y1 && b.y0 < a.y1

let intersection_area a b =
  let w = Float.min a.x1 b.x1 -. Float.max a.x0 b.x0 in
  let h = Float.min a.y1 b.y1 -. Float.max a.y0 b.y0 in
  if w > 0.0 && h > 0.0 then w *. h else 0.0

let bloat d r = { r with x0 = r.x0 -. d; y0 = r.y0 -. d; x1 = r.x1 +. d; y1 = r.y1 +. d }

let translate dx dy r = { r with x0 = r.x0 +. dx; y0 = r.y0 +. dy; x1 = r.x1 +. dx; y1 = r.y1 +. dy }

let bbox = function
  | [] -> None
  | r :: rest ->
    let fold acc q =
      { acc with
        x0 = Float.min acc.x0 q.x0;
        y0 = Float.min acc.y0 q.y0;
        x1 = Float.max acc.x1 q.x1;
        y1 = Float.max acc.y1 q.y1 }
    in
    Some (List.fold_left fold r rest)

type orientation = R0 | R90 | R180 | R270 | MX | MY | MXR90 | MYR90

let all_orientations = [| R0; R90; R180; R270; MX; MY; MXR90; MYR90 |]

(* map a point of the w x h cell frame into the transformed frame *)
let transform_point orient ~w ~h (x, y) =
  match orient with
  | R0 -> (x, y)
  | R90 -> (h -. y, x)
  | R180 -> (w -. x, h -. y)
  | R270 -> (y, w -. x)
  | MX -> (x, h -. y)
  | MY -> (w -. x, y)
  | MXR90 -> (h -. y, w -. x)
  | MYR90 -> (y, x)

let transform orient ~w ~h r =
  let xa, ya = transform_point orient ~w ~h (r.x0, r.y0) in
  let xb, yb = transform_point orient ~w ~h (r.x1, r.y1) in
  rect r.layer xa ya xb yb

let pp_rect ppf r =
  Format.fprintf ppf "%s[%g,%g - %g,%g]" (layer_name r.layer) r.x0 r.y0 r.x1 r.y1
