type pin_edge = Top | Bottom

type channel_pin = {
  column : int;
  edge : pin_edge;
  cp_net : string;
}

type net_style = {
  cn_net : string;
  cn_class : Maze_router.net_class;
  track_width : int;
}

type routed_net = {
  rn_net : string;
  track : int;
  left : int;
  right : int;
}

type channel_result = {
  routed : routed_net list;
  shields : int list;
  tracks_used : int;
  channel_coupling : (string * string * float) list;
}

let density ~pins =
  match pins with
  | [] -> 0
  | _ ->
    let nets = Hashtbl.create 16 in
    List.iter
      (fun p ->
        let lo, hi =
          try Hashtbl.find nets p.cp_net with Not_found -> (max_int, min_int)
        in
        Hashtbl.replace nets p.cp_net (min lo p.column, max hi p.column))
      pins;
    let max_col = List.fold_left (fun acc p -> max acc p.column) 0 pins in
    let best = ref 0 in
    for col = 0 to max_col do
      let count =
        Hashtbl.fold (fun _ (lo, hi) acc -> if lo <= col && col <= hi then acc + 1 else acc)
          nets 0
      in
      best := max !best count
    done;
    !best

let route ?(shielding = true) ?(extra_spacing = fun _ _ -> 0) ~pins ~styles () =
  (* net intervals *)
  let interval = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let lo, hi = try Hashtbl.find interval p.cp_net with Not_found -> (max_int, min_int) in
      Hashtbl.replace interval p.cp_net (min lo p.column, max hi p.column))
    pins;
  let net_names = Hashtbl.fold (fun k _ acc -> k :: acc) interval [] |> List.sort compare in
  let style_of n =
    match List.find_opt (fun s -> s.cn_net = n) styles with
    | Some s -> s
    | None -> { cn_net = n; cn_class = Maze_router.Neutral; track_width = 1 }
  in
  (* vertical constraints: at a column with both a top and a bottom pin of
     different nets, the top net's trunk must lie above the bottom net's *)
  let above : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let add_above a b =
    let existing = try Hashtbl.find above a with Not_found -> [] in
    if not (List.mem b existing) then Hashtbl.replace above a (b :: existing)
  in
  let columns = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let tops, bottoms = try Hashtbl.find columns p.column with Not_found -> ([], []) in
      let entry =
        match p.edge with
        | Top -> (p.cp_net :: tops, bottoms)
        | Bottom -> (tops, p.cp_net :: bottoms)
      in
      Hashtbl.replace columns p.column entry)
    pins;
  Hashtbl.iter
    (fun _ (tops, bottoms) ->
      List.iter (fun t -> List.iter (fun b -> if t <> b then add_above t b) bottoms) tops)
    columns;
  (* cycle check by DFS *)
  let visiting = Hashtbl.create 16 and done_ = Hashtbl.create 16 in
  let rec dfs n =
    if Hashtbl.mem done_ n then ()
    else if Hashtbl.mem visiting n then failwith "channel router: vertical constraint cycle"
    else begin
      Hashtbl.add visiting n ();
      List.iter dfs (try Hashtbl.find above n with Not_found -> []);
      Hashtbl.remove visiting n;
      Hashtbl.add done_ n ()
    end
  in
  List.iter dfs net_names;
  (* bottom-up left-edge: a net is placeable once everything it must be
     above is already placed *)
  let placed = Hashtbl.create 16 in
  let remaining = ref net_names in
  let levels = ref [] in
  while !remaining <> [] do
    let placeable =
      List.filter
        (fun n ->
          List.for_all (fun b -> Hashtbl.mem placed b)
            (try Hashtbl.find above n with Not_found -> []))
        !remaining
    in
    if placeable = [] then failwith "channel router: stuck (cycle?)";
    (* greedy left-edge on this level *)
    let sorted =
      List.sort
        (fun a b -> compare (fst (Hashtbl.find interval a)) (fst (Hashtbl.find interval b)))
        placeable
    in
    let level = ref [] in
    let last_right = ref min_int in
    List.iter
      (fun n ->
        let lo, hi = Hashtbl.find interval n in
        if lo > !last_right + 1 then begin
          level := n :: !level;
          last_right := hi
        end)
      sorted;
    let level = List.rev !level in
    List.iter (fun n -> Hashtbl.add placed n ()) level;
    remaining := List.filter (fun n -> not (List.mem n level)) !remaining;
    levels := level :: !levels
  done;
  let levels = List.rev !levels in
  (* assign tracks: advance by level height, spacing and shields *)
  let track = ref 0 in
  let shields = ref [] in
  let routed = ref [] in
  let previous_level = ref [] in
  List.iter
    (fun level ->
      (* spacing and shielding against the previous level *)
      let spacing =
        List.fold_left
          (fun acc n ->
            List.fold_left (fun acc2 m -> max acc2 (extra_spacing n m)) acc !previous_level)
          0 level
      in
      let incompatible =
        List.exists
          (fun n ->
            List.exists
              (fun m ->
                not
                  (Maze_router.compatible (style_of n).cn_class (style_of m).cn_class))
              !previous_level)
          level
      in
      track := !track + spacing;
      if shielding && incompatible then begin
        shields := !track :: !shields;
        incr track
      end;
      let height =
        List.fold_left (fun acc n -> max acc (style_of n).track_width) 1 level
      in
      List.iter
        (fun n ->
          let lo, hi = Hashtbl.find interval n in
          routed := { rn_net = n; track = !track; left = lo; right = hi } :: !routed)
        level;
      track := !track + height;
      previous_level := level)
    levels;
  (* coupling between trunks on vertically adjacent tracks *)
  let routed = List.rev !routed in
  let pitch = Rules.generic_07um.Rules.route_pitch in
  let coupling = ref [] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a.rn_net < b.rn_net then begin
            let dt = abs (a.track - b.track) in
            let overlap = min a.right b.right - max a.left b.left in
            if dt >= 1 && dt <= 2 && overlap > 0 then begin
              let shielded =
                List.exists (fun s -> (s > min a.track b.track) && s < max a.track b.track)
                  !shields
              in
              let attenuation = (if shielded then 10.0 else 1.0) *. float_of_int dt in
              let c =
                Rules.cap_coupling_per_length *. pitch *. float_of_int overlap /. attenuation
              in
              coupling := (a.rn_net, b.rn_net, c) :: !coupling
            end
          end)
        routed)
    routed;
  { routed;
    shields = !shields;
    tracks_used = !track;
    channel_coupling = !coupling }
