let layer_name = function
  | Geom.Ndiff -> "CAA"
  | Geom.Pdiff -> "CSP"
  | Geom.Poly -> "CPG"
  | Geom.Metal1 -> "CMF"
  | Geom.Metal2 -> "CMS"
  | Geom.Contact -> "CCC"
  | Geom.Via12 -> "CVA"
  | Geom.Nwell -> "CWN"

(* CIF unit: centimicron *)
let cif_units v = int_of_float (Float.round (v *. 1e8))

let emit_rect buf r =
  (* CIF box: B width height cx cy *)
  let w = cif_units (Geom.width r) and h = cif_units (Geom.height r) in
  let cx, cy = Geom.center r in
  if w > 0 && h > 0 then
    Buffer.add_string buf
      (Printf.sprintf "  B %d %d %d %d;\n" w h (cif_units cx) (cif_units cy))

let of_layout ?(cell_name = "mixsyn") ~cells ~wires () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "(CIF export of %s by mixsyn);\n" cell_name);
  Buffer.add_string buf "DS 1 1 1;\n";
  Buffer.add_string buf (Printf.sprintf "9 %s;\n" cell_name);
  let by_layer = Hashtbl.create 8 in
  let add r =
    Hashtbl.replace by_layer r.Geom.layer
      (r :: (try Hashtbl.find by_layer r.Geom.layer with Not_found -> []))
  in
  List.iter (fun (c : Cell.t) -> List.iter add c.Cell.rects) cells;
  List.iter (fun (w : Maze_router.wire) -> List.iter add w.Maze_router.rects) wires;
  List.iter
    (fun layer ->
      match Hashtbl.find_opt by_layer layer with
      | None -> ()
      | Some rects ->
        Buffer.add_string buf (Printf.sprintf "L %s;\n" (layer_name layer));
        List.iter (emit_rect buf) rects)
    Geom.all_layers;
  Buffer.add_string buf "DF;\nC 1;\nE\n";
  Buffer.contents buf

let write_file ~path ~cells ~wires () =
  let oc = open_out path in
  (try output_string oc (of_layout ~cells ~wires ())
   with e ->
     close_out oc;
     raise e);
  close_out oc
