(** ANAGRAM II-style analog area router ([35,36]), with the ANAGRAM III /
    ROAD parasitic-bounded cost extension ([39,40]).

    A two-metal-layer grid router over the placed cells:
    - Metal1 is blocked by cell geometry, Metal2 rides over the devices
      (over-the-device routing);
    - every net carries a {!net_class}; stepping adjacent to an
      incompatible net's wire costs extra (crosstalk avoidance), and
      sensitive nets can carry an explicit coupling budget that turns the
      soft cost into a near-hard constraint (parasitic bounds);
    - differential pairs are routed symmetrically: the partner net is laid
      as the mirror image when the mirrored cells are free.

    Multi-terminal nets are routed incrementally (each terminal connects to
    the net's existing tree) with Dijkstra search. *)

type net_class = Sensitive | Noisy | Neutral

val compatible : net_class -> net_class -> bool
(** Only [Sensitive]/[Noisy] adjacency is incompatible. *)

type net_spec = {
  net : string;
  n_class : net_class;
  coupling_budget : float option;
      (** max tolerated coupling capacitance, F (ROAD-style bound) *)
}

type config = {
  rules : Rules.t;
  extra_margin : float;   (** routing area margin around the placement, m *)
  adjacency_penalty : float;  (** cost per step adjacent to an incompatible wire *)
  via_cost : float;
}

val default_config : config

type wire = {
  w_net : string;
  rects : Geom.rect list;
  length : float;
  vias : int;
}

type result = {
  wires : wire list;
  failed : string list;          (** nets that could not be completed *)
  total_length : float;
  total_vias : int;
  coupling : (string * string * float) list;
      (** per incompatible pair: estimated coupling capacitance, F *)
  symmetric_ok : int;            (** pairs successfully mirror-routed *)
}

val route :
  ?config:config ->
  ?symmetric_pairs:(string * string) list ->
  cells:Cell.t list ->
  nets:net_spec list ->
  unit ->
  result
(** Route every listed net over the placed [cells].  Nets not listed in
    [nets] but present on pins are ignored (power routing is the power-grid
    subsystem's job). *)

val coupling_on : result -> string -> float
(** Total coupling capacitance involving the given net. *)
