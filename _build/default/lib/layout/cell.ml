type pin = {
  pin_name : string;
  pin_net : string;
  pin_rect : Geom.rect;
}

type t = {
  cell_name : string;
  rects : Geom.rect list;
  pins : pin list;
  cw : float;
  ch : float;
}

let make cell_name rects pins =
  let everything = rects @ List.map (fun p -> p.pin_rect) pins in
  match Geom.bbox everything with
  | None -> { cell_name; rects = []; pins = []; cw = 0.0; ch = 0.0 }
  | Some bb ->
    let dx = -.bb.Geom.x0 and dy = -.bb.Geom.y0 in
    { cell_name;
      rects = List.map (Geom.translate dx dy) rects;
      pins = List.map (fun p -> { p with pin_rect = Geom.translate dx dy p.pin_rect }) pins;
      cw = Geom.width bb;
      ch = Geom.height bb }

let transform orient cell =
  let w = cell.cw and h = cell.ch in
  let rects = List.map (Geom.transform orient ~w ~h) cell.rects in
  let pins =
    List.map (fun p -> { p with pin_rect = Geom.transform orient ~w ~h p.pin_rect }) cell.pins
  in
  make cell.cell_name rects pins

let translate dx dy cell =
  { cell with
    rects = List.map (Geom.translate dx dy) cell.rects;
    pins = List.map (fun p -> { p with pin_rect = Geom.translate dx dy p.pin_rect }) cell.pins }

let area cell = cell.cw *. cell.ch

let pin_center p = Geom.center p.pin_rect
