type constraint_edge = {
  from_idx : int;
  to_idx : int;
  min_gap : float;
}

let cell_box (c : Cell.t) =
  Geom.bbox (c.Cell.rects @ List.map (fun p -> p.Cell.pin_rect) c.Cell.pins)
  |> Option.value ~default:(Geom.rect Geom.Metal1 0.0 0.0 0.0 0.0)

(* cells already carry absolute coordinates (translated); compaction works on
   their bounding boxes *)
let spacing_between (rules : Rules.t) = rules.Rules.min_spacing Geom.Ndiff

let compact_axis ~horizontal ?(symmetric_pairs = []) rules cells =
  let cells = Array.of_list cells in
  let n = Array.length cells in
  let boxes = Array.map cell_box cells in
  let lo b = if horizontal then b.Geom.x0 else b.Geom.y0 in
  let hi b = if horizontal then b.Geom.x1 else b.Geom.y1 in
  let other_overlap a b =
    if horizontal then a.Geom.y0 < b.Geom.y1 && b.Geom.y0 < a.Geom.y1
    else a.Geom.x0 < b.Geom.x1 && b.Geom.x0 < a.Geom.x1
  in
  let gap = spacing_between rules in
  (* order by lower edge; constraint edges between cells that overlap in the
     perpendicular direction *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare (lo boxes.(a)) (lo boxes.(b))) order;
  let position = Array.make n 0.0 in
  Array.iter
    (fun i ->
      let min_pos = ref 0.0 in
      Array.iter
        (fun j ->
          if lo boxes.(j) < lo boxes.(i) && other_overlap boxes.(i) boxes.(j) then begin
            let width_j = hi boxes.(j) -. lo boxes.(j) in
            min_pos := Float.max !min_pos (position.(j) +. width_j +. gap)
          end)
        order;
      position.(i) <- !min_pos)
    order;
  (* restore symmetry in x: move each pair to equalise distance about the
     common axis by shifting the lighter one right *)
  if horizontal && symmetric_pairs <> [] then begin
    List.iter
      (fun (i, j) ->
        if i < n && j < n then begin
          let wi = hi boxes.(i) -. lo boxes.(i) and wj = hi boxes.(j) -. lo boxes.(j) in
          let ci = position.(i) +. (wi /. 2.0) and cj = position.(j) +. (wj /. 2.0) in
          (* axis = midpoint; push the inner cell outward *)
          let axis = 0.5 *. (ci +. cj) in
          let di = axis -. ci and dj = cj -. axis in
          let d = Float.max di dj in
          position.(i) <- axis -. d -. (wi /. 2.0);
          position.(j) <- axis +. d -. (wj /. 2.0)
        end)
      symmetric_pairs
  end;
  Array.to_list
    (Array.mapi
       (fun i c ->
         let delta = position.(i) -. lo boxes.(i) in
         if horizontal then Cell.translate delta 0.0 c else Cell.translate 0.0 delta c)
       cells)

let compact_x ?(rules = Rules.generic_07um) ?(symmetric_pairs = []) cells =
  compact_axis ~horizontal:true ~symmetric_pairs rules cells

let compact_y ?(rules = Rules.generic_07um) cells =
  compact_axis ~horizontal:false ~symmetric_pairs:[] rules cells

let compact ?(rules = Rules.generic_07um) ?(symmetric_pairs = []) cells =
  compact_y ~rules (compact_x ~rules ~symmetric_pairs cells)

let bounding_area cells =
  match Geom.bbox (List.concat_map (fun (c : Cell.t) -> c.Cell.rects) cells) with
  | Some bb -> Geom.area bb
  | None -> 0.0
