module Netlist = Mixsyn_circuit.Netlist

type sensitivity = {
  sn_net : string;
  dperf_dcap : (string * float) list;
}

let default_probe = 20e-15

let signal_nets nl =
  let n = Netlist.net_count nl in
  let skip name = name = "0" || name = "vdd" || name = "vss" in
  List.filter_map
    (fun i ->
      let name = Netlist.net_name nl i in
      if skip name then None else Some name)
    (List.init (n - 1) (fun i -> i + 1))

let with_probe nl net_name delta =
  let probed = Netlist.copy nl in
  match Netlist.find_net probed net_name with
  | exception Not_found -> None
  | net ->
    Netlist.add probed
      (Netlist.Capacitor { c_name = "probe"; a = net; b = Netlist.gnd; farads = delta });
    Some probed

let analyze ?(delta = default_probe) ?nets nl ~measure =
  let nets = match nets with Some l -> l | None -> signal_nets nl in
  match measure nl with
  | None -> []
  | Some baseline ->
    List.filter_map
      (fun net ->
        match with_probe nl net delta with
        | None -> None
        | Some probed ->
          (match measure probed with
           | None -> None
           | Some perturbed ->
             let dperf_dcap =
               List.filter_map
                 (fun (metric, v0) ->
                   match List.assoc_opt metric perturbed with
                   | None -> None
                   | Some v1 -> Some (metric, (v1 -. v0) /. delta))
                 baseline
             in
             Some { sn_net = net; dperf_dcap }))
      nets

let map_constraints sensitivities ~budgets =
  let n_nets = max 1 (List.length sensitivities) in
  List.map
    (fun s ->
      let bound =
        List.fold_left
          (fun acc (metric, budget) ->
            match List.assoc_opt metric s.dperf_dcap with
            | None -> acc
            | Some slope ->
              if Float.abs slope < 1e-30 then acc
              else Float.min acc (budget /. float_of_int n_nets /. Float.abs slope))
          infinity budgets
      in
      (s.sn_net, bound))
    sensitivities

let matching_pairs nl =
  let devices = Netlist.mos_list nl in
  let rec pairs acc = function
    | [] -> List.rev acc
    | (m : Netlist.mos) :: rest ->
      let matches =
        List.filter
          (fun (m' : Netlist.mos) ->
            m'.Netlist.polarity = m.Netlist.polarity
            && Float.abs (m'.Netlist.w -. m.Netlist.w) < 0.01 *. m.Netlist.w
            && Float.abs (m'.Netlist.l -. m.Netlist.l) < 0.01 *. m.Netlist.l
            && m'.Netlist.source = m.Netlist.source
            && m'.Netlist.m_name <> m.Netlist.m_name)
          rest
      in
      (match matches with
       | partner :: _ ->
         pairs
           ((m.Netlist.m_name, partner.Netlist.m_name) :: acc)
           (List.filter (fun (x : Netlist.mos) -> x.Netlist.m_name <> partner.Netlist.m_name) rest)
       | [] -> pairs acc rest)
  in
  pairs [] devices
