module Netlist = Mixsyn_circuit.Netlist

let default_rules = Rules.generic_07um

(* The diffusion strip of a folded device or a stack:
   contact column, gate, contact column, gate, ..., contact column.
   Returns the geometry plus the x-span of each contact column. *)
let diffusion_strip rules ~polarity ~finger_w ~l ~n_gates =
  let diff_layer = match polarity with Netlist.Nmos -> Geom.Ndiff | Netlist.Pmos -> Geom.Pdiff in
  let contact_col = rules.Rules.contact_size +. (2.0 *. rules.Rules.diff_contact_margin) in
  let total_length = (float_of_int n_gates *. l) +. (float_of_int (n_gates + 1) *. contact_col) in
  let diff = Geom.rect diff_layer 0.0 0.0 total_length finger_w in
  let contact_x =
    Array.init (n_gates + 1) (fun i ->
        let x0 = float_of_int i *. (contact_col +. l) in
        (x0, x0 +. contact_col))
  in
  let gate_x =
    Array.init n_gates (fun i ->
        let x0 = (float_of_int (i + 1) *. contact_col) +. (float_of_int i *. l) in
        (x0, x0 +. l))
  in
  (diff, contact_x, gate_x, total_length)

let contact_stack rules ~x0 ~x1 ~y0 ~y1 =
  let cx = 0.5 *. (x0 +. x1) and cy = 0.5 *. (y0 +. y1) in
  let half = rules.Rules.contact_size /. 2.0 in
  [ Geom.rect Geom.Contact (cx -. half) (cy -. half) (cx +. half) (cy +. half);
    Geom.rect Geom.Metal1 x0 y0 x1 y1 ]

(* generic folded strip with per-column nets; same-net columns can be
   strapped with a metal1 bar above (for drains) or below (for sources) *)
let build_strip rules ~name ~polarity ~finger_w ~l ~column_nets ~gate_nets ~strap =
  let n_gates = List.length gate_nets in
  let diff, contact_x, gate_x, total_length =
    diffusion_strip rules ~polarity ~finger_w ~l ~n_gates
  in
  let ext = rules.Rules.poly_gate_extension in
  let poly_bar_y = finger_w +. ext +. (2.0 *. rules.Rules.lambda) in
  let poly_bar_h = 2.0 *. rules.Rules.lambda in
  (* gates: vertical poly, plus a horizontal bar per distinct gate net *)
  let gate_rects =
    List.concat
      (List.mapi
         (fun i _net ->
           let x0, x1 = gate_x.(i) in
           [ Geom.rect Geom.Poly x0 (-.ext) x1 (poly_bar_y +. poly_bar_h) ])
         gate_nets)
  in
  let distinct_gate_nets = List.sort_uniq compare gate_nets in
  let gate_bars_and_pins =
    List.map
      (fun net ->
        let bar = Geom.rect Geom.Poly 0.0 poly_bar_y total_length (poly_bar_y +. poly_bar_h) in
        let pin =
          { Cell.pin_name = name ^ "_g_" ^ net; pin_net = net;
            pin_rect = Geom.rect Geom.Poly 0.0 poly_bar_y (2.0 *. rules.Rules.lambda) (poly_bar_y +. poly_bar_h) }
        in
        (bar, pin))
      distinct_gate_nets
  in
  (* contact columns with metal pads; strap same-net columns when asked *)
  let columns = Array.of_list column_nets in
  let contact_rects = ref [] in
  let pins = ref [] in
  let strap_rects = ref [] in
  let strap_y_above = finger_w +. ext +. poly_bar_h +. (4.0 *. rules.Rules.lambda) in
  let strap_y_below = -.ext -. (5.0 *. rules.Rules.lambda) in
  let strap_h = 3.0 *. rules.Rules.lambda in
  let nets_done = Hashtbl.create 4 in
  Array.iteri
    (fun i net ->
      let x0, x1 = contact_x.(i) in
      contact_rects := contact_stack rules ~x0 ~x1 ~y0:0.0 ~y1:finger_w @ !contact_rects;
      let columns_of_net =
        Array.to_list (Array.mapi (fun j n -> (j, n)) columns)
        |> List.filter (fun (_, n) -> n = net)
      in
      if strap && List.length columns_of_net > 1 then begin
        if not (Hashtbl.mem nets_done net) then begin
          Hashtbl.add nets_done net ();
          (* vertical tabs to a shared horizontal bar; alternate above/below
             per net so two straps never collide *)
          let above = Hashtbl.length nets_done mod 2 = 1 in
          let bar_y = if above then strap_y_above else strap_y_below in
          let xs = List.map (fun (j, _) -> contact_x.(j)) columns_of_net in
          let min_x = List.fold_left (fun acc (a, _) -> Float.min acc a) infinity xs in
          let max_x = List.fold_left (fun acc (_, b) -> Float.max acc b) neg_infinity xs in
          strap_rects :=
            Geom.rect Geom.Metal1 min_x bar_y max_x (bar_y +. strap_h) :: !strap_rects;
          List.iter
            (fun (xa, xb) ->
              let lo = Float.min bar_y 0.0 and hi = Float.max (bar_y +. strap_h) finger_w in
              strap_rects := Geom.rect Geom.Metal1 xa lo xb hi :: !strap_rects)
            xs;
          pins :=
            { Cell.pin_name = name ^ "_" ^ net; pin_net = net;
              pin_rect = Geom.rect Geom.Metal1 min_x bar_y max_x (bar_y +. strap_h) }
            :: !pins
        end
      end
      else
        pins :=
          { Cell.pin_name = Printf.sprintf "%s_%s_%d" name net i; pin_net = net;
            pin_rect = Geom.rect Geom.Metal1 x0 0.0 x1 finger_w }
          :: !pins)
    columns;
  let well =
    match polarity with
    | Netlist.Pmos ->
      let m = rules.Rules.well_margin in
      [ Geom.rect Geom.Nwell (-.m) (-.ext -. m) (total_length +. m) (finger_w +. ext +. m) ]
    | Netlist.Nmos -> []
  in
  let rects =
    (diff :: gate_rects) @ List.map fst gate_bars_and_pins @ !contact_rects @ !strap_rects @ well
  in
  Cell.make name rects (List.map snd gate_bars_and_pins @ !pins)

let mos ?(rules = default_rules) ~name ~polarity ~w ~l ~folds ~drain_net ~gate_net ~source_net () =
  let folds = max 1 folds in
  let finger_w = w /. float_of_int folds in
  (* alternate source/drain columns: s d s d ... *)
  let column_nets =
    List.init (folds + 1) (fun i -> if i mod 2 = 0 then source_net else drain_net)
  in
  let gate_nets = List.init folds (fun _ -> gate_net) in
  build_strip rules ~name ~polarity ~finger_w ~l ~column_nets ~gate_nets ~strap:true

let stack ?(rules = default_rules) ~name ~polarity ~w ~l ~gates ~nodes () =
  assert (List.length nodes = List.length gates + 1);
  build_strip rules ~name ~polarity ~finger_w:w ~l ~column_nets:nodes
    ~gate_nets:(List.map snd gates) ~strap:false

let cap_density = 1e-3 (* F/m^2 *)

let capacitor ?(rules = default_rules) ~name ~farads ~net_a ~net_b () =
  let side = sqrt (farads /. cap_density) in
  let lam = rules.Rules.lambda in
  let bottom = Geom.rect Geom.Poly 0.0 0.0 side side in
  let top = Geom.rect Geom.Metal1 lam lam (side -. lam) (side -. lam) in
  let pin_a =
    { Cell.pin_name = name ^ "_a"; pin_net = net_a;
      pin_rect = Geom.rect Geom.Metal1 lam lam (3.0 *. lam) (3.0 *. lam) }
  in
  let pin_b =
    { Cell.pin_name = name ^ "_b"; pin_net = net_b;
      pin_rect = Geom.rect Geom.Poly 0.0 (side -. (2.0 *. lam)) (2.0 *. lam) side }
  in
  Cell.make name [ bottom; top ] [ pin_a; pin_b ]

let resistor ?(rules = default_rules) ~name ~ohms ~net_a ~net_b () =
  let lam = rules.Rules.lambda in
  let w = 2.0 *. lam in
  let squares = ohms /. Rules.sheet_resistance Geom.Poly in
  let total_length = Float.max (4.0 *. lam) (squares *. w) in
  (* serpentine with a fixed leg length *)
  let leg = 40.0 *. lam in
  let n_legs = max 1 (int_of_float (Float.ceil (total_length /. leg))) in
  let pitch = 2.0 *. w in
  let rects = ref [] in
  for i = 0 to n_legs - 1 do
    let x = float_of_int i *. pitch in
    rects := Geom.rect Geom.Poly x 0.0 (x +. w) leg :: !rects;
    if i < n_legs - 1 then begin
      let y = if i mod 2 = 0 then leg -. w else 0.0 in
      rects := Geom.rect Geom.Poly x y (x +. pitch +. w) (y +. w) :: !rects
    end
  done;
  let last_x = float_of_int (n_legs - 1) *. pitch in
  let pin_a =
    { Cell.pin_name = name ^ "_a"; pin_net = net_a;
      pin_rect = Geom.rect Geom.Poly 0.0 0.0 w (2.0 *. lam) }
  in
  let pin_b =
    { Cell.pin_name = name ^ "_b"; pin_net = net_b;
      pin_rect =
        Geom.rect Geom.Poly last_x
          (if (n_legs - 1) mod 2 = 0 then leg -. (2.0 *. lam) else 0.0)
          (last_x +. w)
          (if (n_legs - 1) mod 2 = 0 then leg else 2.0 *. lam) }
  in
  Cell.make name !rects [ pin_a; pin_b ]

let choose_folds ?(rules = default_rules) ~w target_height =
  ignore rules;
  let folds = int_of_float (Float.ceil (w /. Float.max target_height 1e-9)) in
  max 1 folds
