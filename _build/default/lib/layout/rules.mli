(** Design rules for the generic 0.7 µm process. *)

type t = {
  lambda : float;         (** the scalable-rule unit, m *)
  min_width : Geom.layer -> float;
  min_spacing : Geom.layer -> float;
  contact_size : float;
  via_size : float;
  poly_gate_extension : float;  (** poly endcap beyond diffusion *)
  diff_contact_margin : float;  (** diffusion surrounding a contact *)
  route_pitch : float;          (** routing grid pitch, m *)
  well_margin : float;          (** nwell surrounding pdiff *)
}

val generic_07um : t

val cap_area : Geom.layer -> float
(** Wire capacitance to substrate per area, F/m². *)

val cap_fringe : Geom.layer -> float
(** Fringe capacitance per perimeter length, F/m. *)

val cap_coupling_per_length : float
(** Lateral coupling between parallel same-layer wires one pitch apart,
    F/m. *)

val sheet_resistance : Geom.layer -> float
(** Ohms per square. *)
