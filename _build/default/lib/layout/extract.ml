module Netlist = Mixsyn_circuit.Netlist

type net_parasitics = {
  ep_net : string;
  cap_ground : float;
  couplings : (string * float) list;
  wire_resistance : float;
}

let of_layout ?(rules = Rules.generic_07um) ~wires ~coupling () =
  ignore rules;
  let by_net = Hashtbl.create 16 in
  List.iter
    (fun (w : Maze_router.wire) ->
      let cap =
        List.fold_left
          (fun acc r ->
            acc
            +. (Geom.area r *. Rules.cap_area r.Geom.layer)
            +. (2.0 *. (Geom.width r +. Geom.height r) *. Rules.cap_fringe r.Geom.layer))
          0.0 w.Maze_router.rects
      in
      let resistance =
        List.fold_left
          (fun acc r ->
            let squares =
              Float.max (Geom.width r) (Geom.height r)
              /. Float.max (Float.min (Geom.width r) (Geom.height r)) 1e-9
            in
            acc +. (squares *. Rules.sheet_resistance r.Geom.layer))
          0.0 w.Maze_router.rects
        /. Float.max 1.0 (float_of_int (List.length w.Maze_router.rects))
        *. 4.0
        (* crude trunk estimate: average squares times a path-length factor *)
      in
      let prev_cap, prev_res =
        try Hashtbl.find by_net w.Maze_router.w_net with Not_found -> (0.0, 0.0)
      in
      Hashtbl.replace by_net w.Maze_router.w_net (prev_cap +. cap, prev_res +. resistance))
    wires;
  let coupling_of net =
    List.filter_map
      (fun (a, b, c) ->
        if a = net then Some (b, c) else if b = net then Some (a, c) else None)
      coupling
  in
  Hashtbl.fold
    (fun net (cap, res) acc ->
      { ep_net = net; cap_ground = cap; couplings = coupling_of net; wire_resistance = res }
      :: acc)
    by_net []

let annotate nl parasitics =
  let annotated = Netlist.copy nl in
  let counter = ref 0 in
  List.iter
    (fun p ->
      match Netlist.find_net annotated p.ep_net with
      | exception Not_found -> ()
      | net ->
        if p.cap_ground > 0.0 then begin
          incr counter;
          Netlist.add annotated
            (Netlist.Capacitor
               { c_name = Printf.sprintf "xcap%d" !counter; a = net; b = Netlist.gnd;
                 farads = p.cap_ground })
        end;
        List.iter
          (fun (other, c) ->
            (* add each coupling once, from the lexicographically smaller net *)
            if p.ep_net < other then begin
              match Netlist.find_net annotated other with
              | exception Not_found -> ()
              | other_net ->
                incr counter;
                Netlist.add annotated
                  (Netlist.Capacitor
                     { c_name = Printf.sprintf "xcc%d" !counter; a = net; b = other_net;
                       farads = c })
            end)
          p.couplings)
    parasitics;
  annotated

let total_wiring_cap parasitics =
  List.fold_left (fun acc p -> acc +. p.cap_ground) 0.0 parasitics
