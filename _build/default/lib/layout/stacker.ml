module Netlist = Mixsyn_circuit.Netlist
module Tech = Mixsyn_circuit.Tech

type stack = {
  st_name : string;
  polarity : Netlist.polarity;
  st_w : float;
  st_l : float;
  devices : string list;
  gates : (string * string) list;
  nodes : string list;
}

type stacking = {
  stacks : stack list;
  merged_junctions : int;
}

type exact_report = {
  best : stacking;
  optimal_count : int;
  states_explored : int;
  capped : bool;
}

(* Edges of one compatibility class; terminals are net ids (strings via the
   caller's naming). *)
type edge = {
  e_id : int;
  dev : Netlist.mos;
  va : int;
  vb : int;
}

let compatibility_classes devices =
  (* group by polarity and width bucket (10 % bins in log space) *)
  let key (m : Netlist.mos) =
    let bucket = int_of_float (Float.round (log m.Netlist.w /. log 1.1)) in
    (m.Netlist.polarity, bucket, m.Netlist.l)
  in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun m ->
      let k = key m in
      Hashtbl.replace tbl k (m :: (try Hashtbl.find tbl k with Not_found -> [])))
    devices;
  Hashtbl.fold (fun _ v acc -> List.rev v :: acc) tbl []

(* net ids local to a class *)
let build_edges devices =
  let net_ids = Hashtbl.create 16 in
  let names = ref [] in
  let intern n =
    match Hashtbl.find_opt net_ids n with
    | Some i -> i
    | None ->
      let i = Hashtbl.length net_ids in
      Hashtbl.add net_ids n i;
      names := n :: !names;
      i
  in
  let edges =
    List.mapi
      (fun i (m : Netlist.mos) ->
        { e_id = i; dev = m; va = intern (string_of_int m.Netlist.source);
          vb = intern (string_of_int m.Netlist.drain) })
      devices
  in
  (edges, Array.of_list (List.rev !names), Hashtbl.length net_ids)

let stack_of_trail ~index ~polarity ~w ~l trail =
  (* trail: list of (edge, forward) from left to right *)
  let devices = List.map (fun (e, _) -> e.dev.Netlist.m_name) trail in
  let gates =
    List.map (fun (e, _) -> (e.dev.Netlist.m_name, string_of_int e.dev.Netlist.gate)) trail
  in
  let nodes =
    match trail with
    | [] -> []
    | (first, fwd) :: _ ->
      let start = if fwd then first.va else first.vb in
      let step acc (e, fwd) = (if fwd then e.vb else e.va) :: acc in
      List.rev (List.fold_left step [ start ] trail)
  in
  ignore nodes;
  (* nodes currently hold local ids; resolve in caller *)
  { st_name = Printf.sprintf "stack%d" index;
    polarity;
    st_w = w;
    st_l = l;
    devices;
    gates;
    nodes = [] (* filled by caller *) }

(* --- O(n): Hierholzer with odd-vertex pairing -----------------------

   Minimum trail cover of a connected multigraph with 2k odd-degree
   vertices is max(1, k): pair the odd vertices with k virtual edges, walk
   the resulting Euler circuit with the stack-splicing Hierholzer
   algorithm, and cut the circuit at the virtual edges. *)

let linear_class devices =
  match devices with
  | [] -> []
  | (first : Netlist.mos) :: _ ->
    let edges, names, n_nets = build_edges devices in
    let edge_array = Array.of_list edges in
    let n_real = Array.length edge_array in
    (* connected components over vertices that carry edges *)
    let parent = Array.init n_nets (fun i -> i) in
    let rec find i = if parent.(i) = i then i else begin
        parent.(i) <- find parent.(i);
        parent.(i)
      end
    in
    let union a b =
      let ra = find a and rb = find b in
      if ra <> rb then parent.(ra) <- rb
    in
    Array.iter (fun e -> union e.va e.vb) edge_array;
    let component_edges = Hashtbl.create 4 in
    Array.iter
      (fun e ->
        let root = find e.va in
        Hashtbl.replace component_edges root
          (e :: (try Hashtbl.find component_edges root with Not_found -> [])))
      edge_array;
    let trails = ref [] in
    Hashtbl.iter
      (fun _root comp_edges ->
        let degree = Hashtbl.create 8 in
        let bump v = Hashtbl.replace degree v (1 + (try Hashtbl.find degree v with Not_found -> 0)) in
        List.iter (fun e -> bump e.va; bump e.vb) comp_edges;
        let odd =
          Hashtbl.fold (fun v d acc -> if d mod 2 = 1 then v :: acc else acc) degree []
          |> List.sort compare
        in
        (* adjacency including virtual pairing edges (id >= n_real) *)
        let adj : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 8 in
        let adj_of v =
          match Hashtbl.find_opt adj v with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.replace adj v l;
            l
        in
        let n_virtual = ref 0 in
        let add_adj id a b =
          (adj_of a) := (id, b) :: !(adj_of a);
          (adj_of b) := (id, a) :: !(adj_of b)
        in
        List.iter (fun e -> add_adj e.e_id e.va e.vb) comp_edges;
        let rec pair_odds = function
          | a :: b :: rest ->
            add_adj (n_real + !n_virtual) a b;
            incr n_virtual;
            pair_odds rest
          | [ _ ] | [] -> ()
        in
        pair_odds odd;
        (* stack-based Hierholzer from any vertex of the component *)
        let start = (List.hd comp_edges).va in
        let used = Hashtbl.create 16 in
        let circuit = ref [] in
        let stack = ref [ (start, None) ] in
        let continue = ref true in
        while !continue do
          match !stack with
          | [] -> continue := false
          | (v, incoming) :: rest ->
            let l = adj_of v in
            let rec next_unused = function
              | [] -> None
              | (id, other) :: more ->
                if Hashtbl.mem used id then next_unused more else Some (id, other, more)
            in
            (match next_unused !l with
             | Some (id, other, remaining_adj) ->
               l := remaining_adj;
               Hashtbl.replace used id ();
               stack := (other, Some (id, v)) :: !stack
             | None ->
               stack := rest;
               (match incoming with
                | Some (id, from_v) -> circuit := (id, from_v, v) :: !circuit
                | None -> ()))
        done;
        (* !circuit is the Euler circuit in forward order (pops reverse the
           traversal, and we prepended) ; cut it at the virtual edges *)
        let segments = ref [] and current = ref [] in
        let flush () =
          if !current <> [] then begin
            segments := List.rev !current :: !segments;
            current := []
          end
        in
        List.iter
          (fun (id, from_v, _to_v) ->
            if id >= n_real then flush ()
            else begin
              let e = edge_array.(id) in
              let fwd = e.va = from_v in
              current := (e, fwd) :: !current
            end)
          !circuit;
        flush ();
        (* a closed circuit (no virtual edge) yields one segment; with k
           virtual edges the circuit is cyclic, so when it neither starts
           nor ends on a virtual edge the last and first segments are one
           trail across the wrap-around point *)
        let ordered = List.rev !segments in
        let wraps =
          !n_virtual > 0
          && (match !circuit with
              | ((id_first, _, _) :: _ as all) ->
                let last_id, _, _ = List.nth all (List.length all - 1) in
                id_first < n_real && last_id < n_real
              | [] -> false)
        in
        let segs =
          if wraps && List.length ordered > 1 then begin
            let rec split_last acc = function
              | [ last ] -> (List.rev acc, last)
              | x :: rest -> split_last (x :: acc) rest
              | [] -> assert false
            in
            match ordered with
            | first_seg :: middle ->
              let middle_front, last_seg = split_last [] middle in
              (last_seg @ first_seg) :: middle_front
            | [] -> ordered
          end
          else ordered
        in
        List.iter (fun seg -> if seg <> [] then trails := seg :: !trails) segs)
      component_edges;
    let polarity = first.Netlist.polarity in
    let w = first.Netlist.w and l = first.Netlist.l in
    List.mapi
      (fun i trail ->
        let s = stack_of_trail ~index:i ~polarity ~w ~l trail in
        let nodes =
          match trail with
          | [] -> []
          | (e0, fwd) :: _ ->
            let start = if fwd then e0.va else e0.vb in
            List.rev
              (List.fold_left (fun acc (e, f) -> (if f then e.vb else e.va) :: acc)
                 [ start ] trail)
        in
        { s with nodes = List.map (fun id -> names.(id)) nodes })
      !trails

let merged_of stacks =
  List.fold_left (fun acc s -> acc + (List.length s.devices - 1)) 0 stacks

let rename_stacks stacks =
  List.mapi (fun i s -> { s with st_name = Printf.sprintf "stack%d" i }) stacks

let linear devices =
  let stacks = List.concat_map linear_class (compatibility_classes devices) in
  let stacks = rename_stacks stacks in
  { stacks; merged_junctions = merged_of stacks }

(* --- exact: exhaustive trail-partition enumeration ------------------ *)

let exact_class ~state_cap ~states ~capped devices =
  match devices with
  | [] -> ([], 0)
  | (first : Netlist.mos) :: _ ->
    let edges, names, _n_nets = build_edges devices in
    let edge_array = Array.of_list edges in
    let n = Array.length edge_array in
    let used = Array.make n false in
    let best_count = ref max_int in
    let best = ref [] in
    let optimal_count = ref 0 in
    (* Enumerate partitions of the edge set into trails.  A trail is grown
       from one of its end edges in either direction; a fresh trail may
       start at any unused edge, so no partition is missed (the count is of
       construction orderings, an upper bound on distinct partitions). *)
    let rec extend open_end current_trail finished remaining =
      incr states;
      if !states > state_cap then capped := true
      else if remaining = 0 then record (List.rev current_trail :: finished)
      else begin
        (* grow the open trail *)
        for i = 0 to n - 1 do
          if not used.(i) then begin
            let e = edge_array.(i) in
            let dir =
              if e.va = open_end then Some true
              else if e.vb = open_end then Some false
              else None
            in
            match dir with
            | Some fwd ->
              used.(i) <- true;
              let next = if fwd then e.vb else e.va in
              extend next ((e, fwd) :: current_trail) finished (remaining - 1);
              used.(i) <- false
            | None -> ()
          end
        done;
        (* or close it and open a new one *)
        start_new (List.rev current_trail :: finished) remaining
      end
    and start_new finished remaining =
      if remaining = 0 then record finished
      else begin
        (* lower bound: the trails already closed plus at least one more *)
        if List.length finished + 1 <= !best_count then
          for i = 0 to n - 1 do
            if not used.(i) then begin
              let e = edge_array.(i) in
              used.(i) <- true;
              extend e.vb [ (e, true) ] finished (remaining - 1);
              extend e.va [ (e, false) ] finished (remaining - 1);
              used.(i) <- false
            end
          done
      end
    and record all =
      let count = List.length all in
      if count < !best_count then begin
        best_count := count;
        best := List.rev all;
        optimal_count := 1
      end
      else if count = !best_count then incr optimal_count
    in
    start_new [] n;
    let polarity = first.Netlist.polarity in
    let w = first.Netlist.w and l = first.Netlist.l in
    let stacks =
      List.mapi
        (fun i trail ->
          let s = stack_of_trail ~index:i ~polarity ~w ~l trail in
          let nodes =
            match trail with
            | [] -> []
            | (e0, fwd) :: _ ->
              let start = if fwd then e0.va else e0.vb in
              List.rev
                (List.fold_left (fun acc (e, f) -> (if f then e.vb else e.va) :: acc)
                   [ start ] trail)
          in
          { s with nodes = List.map (fun id -> names.(id)) nodes })
        !best
    in
    (stacks, !optimal_count)

let exact ?(state_cap = 2_000_000) devices =
  let states = ref 0 and capped = ref false in
  let per_class =
    List.map (exact_class ~state_cap ~states ~capped) (compatibility_classes devices)
  in
  let stacks = rename_stacks (List.concat_map fst per_class) in
  let optimal_count = List.fold_left (fun acc (_, c) -> acc * max 1 c) 1 per_class in
  { best = { stacks; merged_junctions = merged_of stacks };
    optimal_count;
    states_explored = !states;
    capped = !capped }

let junction_capacitance tech devices stacking =
  (* each diffusion contact column of width W costs cj*W*Ldiff + perimeter
     sidewall; merging adjacent devices shares columns *)
  let column_cap w =
    (tech.Tech.cj *. w *. tech.Tech.l_diff)
    +. (tech.Tech.cjsw *. 2.0 *. (w +. tech.Tech.l_diff))
  in
  let unstacked_columns =
    List.fold_left (fun acc (m : Netlist.mos) -> acc +. (2.0 *. column_cap m.Netlist.w)) 0.0 devices
  in
  let saved =
    List.fold_left
      (fun acc st ->
        acc +. (float_of_int (List.length st.devices - 1) *. column_cap st.st_w))
      0.0 stacking.stacks
  in
  unstacked_columns -. saved
