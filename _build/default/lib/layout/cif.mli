(** CIF (Caltech Intermediate Form) export.

    The 1996-era mask interchange format: lets the generated layouts leave
    the tool for inspection in any era-appropriate viewer.  Geometry is
    emitted in CIF's centimicron units (1 unit = 0.01 µm). *)

val layer_name : Geom.layer -> string
(** CIF layer code (CMF = metal1, CMS = metal2, CPG = poly, CAA = active,
    CWN = nwell, CCC = contact, CVA = via, CSP = pdiff select). *)

val of_layout :
  ?cell_name:string ->
  cells:Cell.t list ->
  wires:Maze_router.wire list ->
  unit ->
  string
(** A complete CIF file: one definition containing every rectangle of the
    placed cells and the routed wiring. *)

val write_file :
  path:string -> cells:Cell.t list -> wires:Maze_router.wire list -> unit -> unit
