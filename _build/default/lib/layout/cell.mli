(** Layout cells: geometry plus net-labelled pins.

    A cell is the placer's atom — a generated device (possibly folded), a
    merged device stack, or a passive component. *)

type pin = {
  pin_name : string;   (** terminal label, unique within the cell *)
  pin_net : string;    (** circuit net this pin belongs to *)
  pin_rect : Geom.rect;
}

type t = {
  cell_name : string;
  rects : Geom.rect list;
  pins : pin list;
  cw : float;  (** cell width *)
  ch : float;  (** cell height *)
}

val make : string -> Geom.rect list -> pin list -> t
(** Normalises geometry to the positive quadrant and records the size. *)

val transform : Geom.orientation -> t -> t
(** The cell in a new orientation (still origin-anchored). *)

val translate : float -> float -> t -> t

val area : t -> float

val pin_center : pin -> float * float
