lib/layout/channel_router.ml: Hashtbl List Maze_router Rules
