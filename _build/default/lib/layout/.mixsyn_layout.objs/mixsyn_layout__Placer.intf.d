lib/layout/placer.mli: Cell Geom Mixsyn_opt Rules
