lib/layout/cell.ml: Geom List
