lib/layout/sensitivity.ml: Float List Mixsyn_circuit
