lib/layout/cif.mli: Cell Geom Maze_router
