lib/layout/stacker.ml: Array Float Hashtbl List Mixsyn_circuit Printf
