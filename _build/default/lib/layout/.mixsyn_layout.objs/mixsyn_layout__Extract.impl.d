lib/layout/extract.ml: Float Geom Hashtbl List Maze_router Mixsyn_circuit Printf Rules
