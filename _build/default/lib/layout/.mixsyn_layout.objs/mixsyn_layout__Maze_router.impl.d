lib/layout/maze_router.ml: Array Cell Float Geom Hashtbl List Option Rules
