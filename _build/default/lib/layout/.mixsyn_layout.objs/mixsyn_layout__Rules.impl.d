lib/layout/rules.ml: Geom
