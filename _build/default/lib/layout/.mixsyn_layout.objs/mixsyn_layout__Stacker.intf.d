lib/layout/stacker.mli: Mixsyn_circuit
