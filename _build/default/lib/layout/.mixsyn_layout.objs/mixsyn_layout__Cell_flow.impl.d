lib/layout/cell_flow.ml: Array Cell Extract Generator Geom Hashtbl List Maze_router Mixsyn_circuit Placer Printf Sensitivity Stacker
