lib/layout/maze_router.mli: Cell Geom Rules
