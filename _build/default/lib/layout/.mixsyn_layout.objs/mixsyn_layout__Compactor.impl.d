lib/layout/compactor.ml: Array Cell Float Geom List Option Rules
