lib/layout/placer.ml: Array Cell Float Geom Hashtbl List Mixsyn_opt Mixsyn_util Option Rules
