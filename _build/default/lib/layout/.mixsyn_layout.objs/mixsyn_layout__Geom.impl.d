lib/layout/geom.ml: Float Format List
