lib/layout/cell.mli: Geom
