lib/layout/extract.mli: Maze_router Mixsyn_circuit Rules
