lib/layout/sensitivity.mli: Mixsyn_circuit Mixsyn_synth
