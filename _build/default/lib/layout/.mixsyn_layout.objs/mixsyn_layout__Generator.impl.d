lib/layout/generator.ml: Array Cell Float Geom Hashtbl List Mixsyn_circuit Printf Rules
