lib/layout/generator.mli: Cell Mixsyn_circuit Rules
