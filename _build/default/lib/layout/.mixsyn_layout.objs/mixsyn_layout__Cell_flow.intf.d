lib/layout/cell_flow.mli: Cell Extract Maze_router Mixsyn_circuit Placer
