lib/layout/geom.mli: Format
