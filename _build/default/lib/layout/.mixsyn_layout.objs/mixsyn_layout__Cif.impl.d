lib/layout/cif.ml: Buffer Cell Float Geom Hashtbl List Maze_router Printf
