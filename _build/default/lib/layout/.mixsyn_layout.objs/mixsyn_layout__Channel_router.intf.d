lib/layout/channel_router.mli: Maze_router
