lib/layout/compactor.mli: Cell Rules
