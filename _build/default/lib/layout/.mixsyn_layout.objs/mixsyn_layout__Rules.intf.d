lib/layout/rules.mli: Geom
