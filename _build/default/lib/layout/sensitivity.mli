(** Sensitivity analysis and constraint mapping — the glue the paper calls
    out as linking cell layout and system assembly ([46,47]).

    {!analyze} measures how each performance metric moves per farad of
    parasitic capacitance added to each net (finite differences on the full
    simulator).  {!map_constraints} inverts the relation in the Choudhury &
    Sangiovanni-Vincentelli style: given an acceptable degradation per
    metric, allocate a maximum parasitic capacitance per net that guarantees
    it.  {!matching_pairs} extracts symmetry/matching constraints directly
    from the schematic ([47]). *)

type sensitivity = {
  sn_net : string;
  dperf_dcap : (string * float) list;
      (** metric -> d(metric)/d(cap), per farad *)
}

val analyze :
  ?delta:float ->
  ?nets:string list ->
  Mixsyn_circuit.Netlist.t ->
  measure:(Mixsyn_circuit.Netlist.t -> Mixsyn_synth.Spec.performance option) ->
  sensitivity list
(** [delta] is the probe capacitance (default 20 fF).  [nets] defaults to
    every named net except supplies and ground. *)

val map_constraints :
  sensitivity list ->
  budgets:(string * float) list ->
  (string * float) list
(** [(metric, max degradation)] budgets -> [(net, max capacitance)] bounds.
    Each budget is split equally across the sensitive nets and divided by
    the local sensitivity; a net's bound is its tightest over all metrics. *)

val matching_pairs : Mixsyn_circuit.Netlist.t -> (string * string) list
(** Device pairs that must match/mirror, from schematic structure: equal
    geometry, same polarity, and a common source net (differential pairs,
    current-mirror legs). *)
