(** One-dimensional constraint-graph compaction ([48,49]).

    Longest-path scheduling over the spacing constraint graph in x, then in
    y.  Symmetric pairs move by the mirrored amount so the compaction
    preserves analog symmetry (the [49] extension). *)

type constraint_edge = {
  from_idx : int;   (** cell index, or -1 for the left/bottom wall *)
  to_idx : int;
  min_gap : float;
}

val compact_x :
  ?rules:Rules.t ->
  ?symmetric_pairs:(int * int) list ->
  Cell.t list ->
  Cell.t list
(** Push every cell as far left as spacing rules allow; mirror pairs end
    symmetric about their common axis. *)

val compact_y : ?rules:Rules.t -> Cell.t list -> Cell.t list

val compact : ?rules:Rules.t -> ?symmetric_pairs:(int * int) list -> Cell.t list -> Cell.t list
(** x then y. *)

val bounding_area : Cell.t list -> float
