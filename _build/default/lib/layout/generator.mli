(** Procedural device generators — the module-generation layer every
    macrocell-style system builds on (ILAC's large generator library, KOAN's
    deliberately small one).

    MOS devices support folding (multiple fingers share one diffusion
    strip); same-net fingers are strapped in Metal1, so a device cell
    exposes one pin per terminal.  Device chains produced by the stacker
    become single cells with merged source/drain diffusions — the layout
    optimization that minimises junction capacitance (Section 3.1). *)

val mos :
  ?rules:Rules.t ->
  name:string ->
  polarity:Mixsyn_circuit.Netlist.polarity ->
  w:float ->
  l:float ->
  folds:int ->
  drain_net:string ->
  gate_net:string ->
  source_net:string ->
  unit ->
  Cell.t

val stack :
  ?rules:Rules.t ->
  name:string ->
  polarity:Mixsyn_circuit.Netlist.polarity ->
  w:float ->
  l:float ->
  gates:(string * string) list ->
  nodes:string list ->
  unit ->
  Cell.t
(** [stack ~gates ~nodes] lays a chain of equal-width devices on one
    diffusion strip: [nodes] has length [|gates| + 1] and alternates with
    the gate list; [gates] carries (device name, gate net). *)

val capacitor :
  ?rules:Rules.t -> name:string -> farads:float -> net_a:string -> net_b:string -> unit ->
  Cell.t
(** Poly/Metal1 plate capacitor at 1 fF/µm². *)

val resistor :
  ?rules:Rules.t -> name:string -> ohms:float -> net_a:string -> net_b:string -> unit ->
  Cell.t
(** Poly serpentine resistor. *)

val choose_folds : ?rules:Rules.t -> w:float -> float -> int
(** Fold count that keeps the finger width near the given target height. *)
