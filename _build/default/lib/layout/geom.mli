(** Mask geometry: layers, rectangles, transforms.

    Coordinates are metres (the whole repository is SI); typical cell-level
    features are around 1e-6.  Orientations are the eight elements of the
    rectangle symmetry group, the variant set KOAN-style placers explore. *)

type layer =
  | Ndiff
  | Pdiff
  | Poly
  | Metal1
  | Metal2
  | Contact  (** diffusion/poly to Metal1 *)
  | Via12    (** Metal1 to Metal2 *)
  | Nwell

val layer_name : layer -> string
val all_layers : layer list

type rect = {
  layer : layer;
  x0 : float;
  y0 : float;
  x1 : float;
  y1 : float;
}

val rect : layer -> float -> float -> float -> float -> rect
(** [rect layer x0 y0 x1 y1], normalising the corner order. *)

val width : rect -> float
val height : rect -> float
val area : rect -> float
val center : rect -> float * float
val overlaps : rect -> rect -> bool
(** Strict interior overlap (sharing an edge is not an overlap). *)

val intersection_area : rect -> rect -> float
val bloat : float -> rect -> rect
val translate : float -> float -> rect -> rect
val bbox : rect list -> rect option
(** Bounding box over all layers; [None] for the empty list. *)

type orientation = R0 | R90 | R180 | R270 | MX | MY | MXR90 | MYR90

val all_orientations : orientation array

val transform : orientation -> w:float -> h:float -> rect -> rect
(** Transform within the cell's local [w] x [h] frame, so the result stays in
    the positive quadrant. *)

val transform_point : orientation -> w:float -> h:float -> float * float -> float * float

val pp_rect : Format.formatter -> rect -> unit
