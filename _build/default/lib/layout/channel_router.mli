(** Analog channel routing ([54,55]): classic left-edge/constraint-graph
    channel routing extended with per-net widths, per-pair spacings and
    grounded shield insertion between incompatible nets.

    A channel is a horizontal routing region with pins on its top and bottom
    edges at integer columns.  Each net gets one trunk track (no doglegs);
    vertical constraint cycles are broken by column shifting at input
    preparation time, so the router itself always succeeds given enough
    tracks.  Analog extensions:
    - a net's trunk is [width] tracks wide (wide low-resistance wires);
    - [spacing net_a net_b] extra tracks are kept between adjacent trunks;
    - a grounded shield track is inserted between vertically adjacent
      incompatible nets when [shielding] is on. *)

type pin_edge = Top | Bottom

type channel_pin = {
  column : int;
  edge : pin_edge;
  cp_net : string;
}

type net_style = {
  cn_net : string;
  cn_class : Maze_router.net_class;
  track_width : int;  (** trunk thickness in tracks, >= 1 *)
}

type routed_net = {
  rn_net : string;
  track : int;       (** trunk track index (0 = closest to bottom) *)
  left : int;
  right : int;
}

type channel_result = {
  routed : routed_net list;
  shields : int list;            (** track indices holding grounded shields *)
  tracks_used : int;
  channel_coupling : (string * string * float) list;
      (** adjacent-trunk coupling per (net, net): F per column span *)
}

val route :
  ?shielding:bool ->
  ?extra_spacing:(string -> string -> int) ->
  pins:channel_pin list ->
  styles:net_style list ->
  unit ->
  channel_result
(** @raise Failure on a vertical-constraint cycle (the classic dogleg-free
    limitation; callers shift pin columns to break cycles). *)

val density : pins:channel_pin list -> int
(** Channel density — the left-edge lower bound on track count. *)
