(** Layout parasitic extraction and back-annotation.

    The "detailed design verification (after extraction)" step of the
    bottom-up path (Section 2.1): wire area/fringe capacitance per net,
    plus the router's coupling estimates, folded back into the schematic so
    the engine can re-verify the laid-out circuit. *)

type net_parasitics = {
  ep_net : string;
  cap_ground : float;                 (** wiring capacitance to substrate, F *)
  couplings : (string * float) list;  (** capacitance to other nets, F *)
  wire_resistance : float;            (** trunk series resistance estimate, ohm *)
}

val of_layout :
  ?rules:Rules.t ->
  wires:Maze_router.wire list ->
  coupling:(string * string * float) list ->
  unit ->
  net_parasitics list

val annotate :
  Mixsyn_circuit.Netlist.t -> net_parasitics list -> Mixsyn_circuit.Netlist.t
(** A copy of the netlist with the extracted capacitances added (ground and
    coupling caps); nets unknown to the netlist are ignored. *)

val total_wiring_cap : net_parasitics list -> float
