type t = {
  lambda : float;
  min_width : Geom.layer -> float;
  min_spacing : Geom.layer -> float;
  contact_size : float;
  via_size : float;
  poly_gate_extension : float;
  diff_contact_margin : float;
  route_pitch : float;
  well_margin : float;
}

let l = 0.35e-6 (* lambda for a 0.7 um process *)

let generic_07um =
  { lambda = l;
    min_width =
      (function
        | Geom.Ndiff | Geom.Pdiff -> 3.0 *. l
        | Geom.Poly -> 2.0 *. l
        | Geom.Metal1 -> 3.0 *. l
        | Geom.Metal2 -> 3.0 *. l
        | Geom.Contact | Geom.Via12 -> 2.0 *. l
        | Geom.Nwell -> 10.0 *. l);
    min_spacing =
      (function
        | Geom.Ndiff | Geom.Pdiff -> 3.0 *. l
        | Geom.Poly -> 2.0 *. l
        | Geom.Metal1 -> 3.0 *. l
        | Geom.Metal2 -> 4.0 *. l
        | Geom.Contact | Geom.Via12 -> 2.0 *. l
        | Geom.Nwell -> 10.0 *. l);
    contact_size = 2.0 *. l;
    via_size = 2.0 *. l;
    poly_gate_extension = 2.0 *. l;
    diff_contact_margin = 1.0 *. l;
    route_pitch = 7.0 *. l;  (* wire + spacing *)
    well_margin = 5.0 *. l }

let cap_area = function
  | Geom.Metal1 -> 30e-6   (* F/m^2 *)
  | Geom.Metal2 -> 20e-6
  | Geom.Poly -> 60e-6
  | Geom.Ndiff | Geom.Pdiff -> 400e-6
  | Geom.Contact | Geom.Via12 | Geom.Nwell -> 0.0

let cap_fringe = function
  | Geom.Metal1 -> 40e-12  (* F/m *)
  | Geom.Metal2 -> 30e-12
  | Geom.Poly -> 50e-12
  | Geom.Ndiff | Geom.Pdiff -> 300e-12
  | Geom.Contact | Geom.Via12 | Geom.Nwell -> 0.0

let cap_coupling_per_length = 50e-12 (* F/m between adjacent tracks *)

let sheet_resistance = function
  | Geom.Metal1 -> 0.07
  | Geom.Metal2 -> 0.04
  | Geom.Poly -> 25.0
  | Geom.Ndiff | Geom.Pdiff -> 60.0
  | Geom.Contact | Geom.Via12 -> 2.0 (* per cut *)
  | Geom.Nwell -> 1500.0
