(** Square-law MOS model with smooth subthreshold transition.

    The model is the classic level-1 square law (the one behind every
    first-generation synthesis system surveyed in the paper: IDAC's design
    plans, OASYS, OPASYN and ISAAC's symbolic equations all reason in
    square-law terms), extended with:
    - body effect ([gamma], [phi]),
    - channel-length modulation (λ = lambda_factor / L),
    - a softplus-smoothed overdrive so that Newton iteration does not chatter
      at the cutoff boundary. *)

type region = Cutoff | Triode | Saturation

(** Full Jacobian row of the drain current w.r.t. the four terminal voltages,
    plus reporting quantities.  [ids] flows into the drain terminal. *)
type eval = {
  ids : float;
  did_dvd : float;
  did_dvg : float;
  did_dvs : float;
  did_dvb : float;
  region : region;
  vgs : float;
  vds : float;
  vth : float;
  vdsat : float;
  gm : float;   (** source-referenced transconductance magnitude *)
  gds : float;
  gmb : float;
}

val evaluate : Mixsyn_circuit.Tech.t -> Mixsyn_circuit.Netlist.mos ->
  vd:float -> vg:float -> vs:float -> vb:float -> eval
(** Current and derivatives at the given terminal voltages.  Handles both
    polarities and source/drain inversion. *)

(** Small-signal capacitances at an operating point, in farads. *)
type caps = { cgs : float; cgd : float; cgb : float; cdb : float; csb : float }

val capacitances : Mixsyn_circuit.Tech.t -> Mixsyn_circuit.Netlist.mos -> region -> caps

val thermal_noise_psd : Mixsyn_circuit.Tech.t -> gm:float -> float
(** Channel thermal noise current PSD, A²/Hz: 4kT·(2/3)·gm. *)

val flicker_noise_psd : Mixsyn_circuit.Tech.t -> Mixsyn_circuit.Netlist.mos ->
  gm:float -> freq:float -> float
(** Flicker noise current PSD at [freq], A²/Hz: KF·gm²/(Cox·W·L·f). *)

val pp_region : Format.formatter -> region -> unit
