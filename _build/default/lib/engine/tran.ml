module Netlist = Mixsyn_circuit.Netlist
module Real = Mixsyn_util.Matrix.Real

type result = {
  times : float array;
  samples : float array array;
  tr_layout : Mna.layout;
}

(* Assemble the Newton system for one trapezoidal step.  [caps] carries the
   linearised capacitances with their companion state (voltage and current at
   the previous accepted timepoint). *)
let assemble tech nl (layout : Mna.layout) x ~time ~caps ~geq =
  let n = layout.Mna.size in
  let a = Real.create n n in
  let b = Array.make n 0.0 in
  let v net = if net = Netlist.gnd then 0.0 else x.(Mna.node_index net) in
  let stamp = Mna.stamp_real a and rhs = Mna.rhs_real b in
  let branch = ref (layout.Mna.nets - 1) in
  let each = function
    | Netlist.Resistor { a = na; b = nb; ohms; _ } ->
      let g = 1.0 /. ohms in
      let ia = Mna.node_index na and ib = Mna.node_index nb in
      stamp ia ia g;
      stamp ib ib g;
      stamp ia ib (-.g);
      stamp ib ia (-.g)
    | Netlist.Capacitor _ -> ()
    | Netlist.Vccs { p; n = nn; cp; cn; gm; _ } ->
      let ip = Mna.node_index p and inn = Mna.node_index nn in
      let icp = Mna.node_index cp and icn = Mna.node_index cn in
      stamp ip icp gm;
      stamp ip icn (-.gm);
      stamp inn icp (-.gm);
      stamp inn icn gm
    | Netlist.Isource { p; n = nn; dc; i_wave; _ } ->
      let value = Netlist.wave_value i_wave ~dc time in
      rhs (Mna.node_index p) value;
      rhs (Mna.node_index nn) (-.value)
    | Netlist.Vsource { p; n = nn; dc; v_wave; _ } ->
      let row = !branch in
      incr branch;
      let value = Netlist.wave_value v_wave ~dc time in
      let ip = Mna.node_index p and inn = Mna.node_index nn in
      stamp ip row 1.0;
      stamp inn row (-1.0);
      stamp row ip 1.0;
      stamp row inn (-1.0);
      rhs row value
    | Netlist.Mos m ->
      let e =
        Mos_model.evaluate tech m ~vd:(v m.Netlist.drain) ~vg:(v m.Netlist.gate)
          ~vs:(v m.Netlist.source) ~vb:(v m.Netlist.bulk)
      in
      let id = Mna.node_index m.Netlist.drain
      and ig = Mna.node_index m.Netlist.gate
      and is = Mna.node_index m.Netlist.source
      and ib = Mna.node_index m.Netlist.bulk in
      let open Mos_model in
      stamp id id e.did_dvd;
      stamp id ig e.did_dvg;
      stamp id is e.did_dvs;
      stamp id ib e.did_dvb;
      stamp is id (-.e.did_dvd);
      stamp is ig (-.e.did_dvg);
      stamp is is (-.e.did_dvs);
      stamp is ib (-.e.did_dvb);
      let linear_at_op =
        (e.did_dvd *. v m.Netlist.drain)
        +. (e.did_dvg *. v m.Netlist.gate)
        +. (e.did_dvs *. v m.Netlist.source)
        +. (e.did_dvb *. v m.Netlist.bulk)
      in
      let const = e.ids -. linear_at_op in
      rhs id (-.const);
      rhs is const
  in
  List.iter each (Netlist.elements nl);
  (* trapezoidal companion models: g_eq between the plates plus a history
     current source  I_eq = g_eq * v_prev + i_prev *)
  Array.iteri
    (fun k (na, nb, _c, v_prev, i_prev) ->
      let ia = Mna.node_index na and ib = Mna.node_index nb in
      let g = geq.(k) in
      stamp ia ia g;
      stamp ib ib g;
      stamp ia ib (-.g);
      stamp ib ia (-.g);
      let ieq = (g *. v_prev) +. i_prev in
      rhs ia ieq;
      rhs ib (-.ieq))
    caps;
  (* small gmin for numerical robustness *)
  for i = 0 to layout.Mna.nets - 2 do
    a.(i).(i) <- a.(i).(i) +. 1e-9
  done;
  (a, b)

let solve ?(tech = Mixsyn_circuit.Tech.generic_07um) nl op ~t_stop ~dt =
  let layout = op.Mna.op_layout in
  let n = layout.Mna.size in
  let cap_list = Mna.linear_capacitors tech nl op |> List.filter (fun (a, b, c) -> a <> b && c > 0.0) in
  let v_of x net = if net = Netlist.gnd then 0.0 else x.(Mna.node_index net) in
  let caps =
    Array.of_list
      (List.map
         (fun (a, b, c) -> (a, b, c, v_of op.Mna.x a -. v_of op.Mna.x b, 0.0))
         cap_list)
  in
  let geq = Array.map (fun (_, _, c, _, _) -> 2.0 *. c /. dt) caps in
  let steps = int_of_float (Float.ceil (t_stop /. dt)) in
  let times = Array.init (steps + 1) (fun k -> float_of_int k *. dt) in
  let samples = Array.make (steps + 1) [||] in
  samples.(0) <- Array.copy op.Mna.x;
  let x = Array.copy op.Mna.x in
  for k = 1 to steps do
    let time = times.(k) in
    (* Newton iterate at this timestep *)
    let rec iterate count =
      let a, b = assemble tech nl layout x ~time ~caps ~geq in
      let x_new = Real.solve a b in
      let max_delta = ref 0.0 in
      for i = 0 to n - 1 do
        max_delta := Float.max !max_delta (Float.abs (x_new.(i) -. x.(i)))
      done;
      let limit = 0.5 in
      let scale = if !max_delta > limit then limit /. !max_delta else 1.0 in
      for i = 0 to n - 1 do
        x.(i) <- x.(i) +. (scale *. (x_new.(i) -. x.(i)))
      done;
      if !max_delta > 1e-9 && count < 50 then iterate (count + 1)
    in
    iterate 0;
    (* update companion state *)
    Array.iteri
      (fun i (na, nb, c, v_prev, i_prev) ->
        let v_now = v_of x na -. v_of x nb in
        let i_now = (geq.(i) *. (v_now -. v_prev)) -. i_prev in
        caps.(i) <- (na, nb, c, v_now, i_now))
      caps;
    samples.(k) <- Array.copy x
  done;
  { times; samples; tr_layout = layout }

let voltage r k net =
  if net = Netlist.gnd then 0.0 else r.samples.(k).(Mna.node_index net)

let waveform r net = Array.init (Array.length r.times) (fun k -> (r.times.(k), voltage r k net))

let peak w =
  Array.fold_left
    (fun ((_, best_v) as best) ((_, v) as sample) ->
      if Float.abs v > Float.abs best_v then sample else best)
    w.(0) w

let first_crossing w ~level =
  let n = Array.length w in
  let rec scan i =
    if i >= n then None
    else begin
      let t0, v0 = w.(i - 1) and t1, v1 = w.(i) in
      if (v0 -. level) *. (v1 -. level) <= 0.0 && v0 <> v1 then
        Some (t0 +. ((level -. v0) *. (t1 -. t0) /. (v1 -. v0)))
      else scan (i + 1)
    end
  in
  if n < 2 then None else scan 1

let settling_time w ~final ~tolerance =
  let last_out = ref None in
  Array.iter
    (fun (t, v) -> if Float.abs (v -. final) > tolerance then last_out := Some t)
    w;
  !last_out
