(** Transient analysis: fixed-step trapezoidal integration with Newton
    iteration at each timestep.

    Capacitances are linearised around the DC operating point (explicit
    capacitors exactly, MOS capacitances by region), which is accurate for
    the mostly-linear signal paths the benchmarks exercise (pulse shapers,
    power grids) and adequate for amplifier settling estimates. *)

type result = {
  times : float array;
  samples : float array array;  (** [samples.(k)] is the unknown vector at [times.(k)] *)
  tr_layout : Mna.layout;
}

val solve :
  ?tech:Mixsyn_circuit.Tech.t ->
  Mixsyn_circuit.Netlist.t ->
  Mna.op ->
  t_stop:float ->
  dt:float ->
  result

val voltage : result -> int -> Mixsyn_circuit.Netlist.net -> float

val waveform : result -> Mixsyn_circuit.Netlist.net -> (float * float) array
(** (time, voltage) samples of one net. *)

val peak : (float * float) array -> float * float
(** (time, value) of the sample with the largest absolute value. *)

val first_crossing : (float * float) array -> level:float -> float option
(** First time the waveform crosses [level], by linear interpolation. *)

val settling_time :
  (float * float) array -> final:float -> tolerance:float -> float option
(** Last time the waveform leaves the ±[tolerance] band around [final]. *)
