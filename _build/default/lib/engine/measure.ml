module Netlist = Mixsyn_circuit.Netlist

type bode_point = { f : float; mag_db : float; phase : float }

let bode ac ~out =
  let n = Array.length ac.Ac.freqs in
  let raw =
    Array.init n (fun k ->
        let v = Ac.voltage ac k out in
        (ac.Ac.freqs.(k), Complex.norm v, Complex.arg v *. 180.0 /. Float.pi))
  in
  (* unwrap phase so margins read correctly through multi-pole rolloff *)
  let unwrapped = Array.make n 0.0 in
  let offset = ref 0.0 in
  Array.iteri
    (fun k (_, _, ph) ->
      if k > 0 then begin
        let _, _, prev = raw.(k - 1) in
        let d = ph -. prev in
        if d > 180.0 then offset := !offset -. 360.0
        else if d < -180.0 then offset := !offset +. 360.0
      end;
      unwrapped.(k) <- ph +. !offset)
    raw;
  Array.init n (fun k ->
      let f, mag, _ = raw.(k) in
      { f; mag_db = 20.0 *. log10 (Float.max mag 1e-30); phase = unwrapped.(k) })

let dc_gain pts = if Array.length pts = 0 then 0.0 else 10.0 ** (pts.(0).mag_db /. 20.0)

let unity_gain_freq pts =
  let n = Array.length pts in
  let rec scan i =
    if i >= n then None
    else begin
      let p0 = pts.(i - 1) and p1 = pts.(i) in
      if p0.mag_db >= 0.0 && p1.mag_db < 0.0 then begin
        (* interpolate in log-frequency *)
        let frac = p0.mag_db /. (p0.mag_db -. p1.mag_db) in
        Some (10.0 ** (log10 p0.f +. (frac *. (log10 p1.f -. log10 p0.f))))
      end
      else scan (i + 1)
    end
  in
  if n < 2 then None else scan 1

let phase_at pts freq =
  let n = Array.length pts in
  let rec scan i =
    if i >= n then pts.(n - 1).phase
    else if pts.(i).f >= freq then begin
      if i = 0 then pts.(0).phase
      else begin
        let p0 = pts.(i - 1) and p1 = pts.(i) in
        let frac = (log10 freq -. log10 p0.f) /. (log10 p1.f -. log10 p0.f) in
        p0.phase +. (frac *. (p1.phase -. p0.phase))
      end
    end
    else scan (i + 1)
  in
  scan 0

let phase_margin pts =
  match unity_gain_freq pts with
  | None -> None
  | Some fu ->
    (* reference the phase to its DC value so an inverting amplifier (DC
       phase 180) reads the same margin as a non-inverting one *)
    let drop = Float.abs (phase_at pts fu -. pts.(0).phase) in
    Some (180.0 -. drop)

let gain_at pts freq =
  let n = Array.length pts in
  let rec scan i =
    if i >= n then 10.0 ** (pts.(n - 1).mag_db /. 20.0)
    else if pts.(i).f >= freq then begin
      if i = 0 then 10.0 ** (pts.(0).mag_db /. 20.0)
      else begin
        let p0 = pts.(i - 1) and p1 = pts.(i) in
        let frac = (log10 freq -. log10 p0.f) /. (log10 p1.f -. log10 p0.f) in
        10.0 ** ((p0.mag_db +. (frac *. (p1.mag_db -. p0.mag_db))) /. 20.0)
      end
    end
    else scan (i + 1)
  in
  scan 0

let bandwidth_3db pts =
  let n = Array.length pts in
  if n < 2 then None
  else begin
    let target = pts.(0).mag_db -. 3.0 in
    let rec scan i =
      if i >= n then None
      else begin
        let p0 = pts.(i - 1) and p1 = pts.(i) in
        if p0.mag_db >= target && p1.mag_db < target then begin
          let frac = (p0.mag_db -. target) /. (p0.mag_db -. p1.mag_db) in
          Some (10.0 ** (log10 p0.f +. (frac *. (log10 p1.f -. log10 p0.f))))
        end
        else scan (i + 1)
      end
    in
    scan 1
  end

let output_swing _nl op ~out ~vdd_net =
  let vdd = Mna.voltage op vdd_net in
  let low = ref 0.0 and high = ref vdd in
  List.iter
    (fun ((m : Netlist.mos), (e : Mos_model.eval)) ->
      if m.Netlist.drain = out then begin
        let vdsat = Float.abs e.Mos_model.vdsat in
        let vs = Mna.voltage op m.Netlist.source in
        match m.Netlist.polarity with
        | Netlist.Nmos -> low := Float.max !low (vs +. vdsat)
        | Netlist.Pmos -> high := Float.min !high (vs -. vdsat)
      end)
    op.Mna.mos_evals;
  (!low, !high)

let supply_current _nl op name =
  -.Mna.branch_current op ~layout:op.Mna.op_layout name

let slew_rate ~tail_current ~comp_cap = tail_current /. comp_cap

let mos_area nl =
  List.fold_left (fun acc (m : Netlist.mos) -> acc +. (m.Netlist.w *. m.Netlist.l)) 0.0
    (Netlist.mos_list nl)
