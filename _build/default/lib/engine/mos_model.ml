module Tech = Mixsyn_circuit.Tech
module Netlist = Mixsyn_circuit.Netlist

type region = Cutoff | Triode | Saturation

type eval = {
  ids : float;
  did_dvd : float;
  did_dvg : float;
  did_dvs : float;
  did_dvb : float;
  region : region;
  vgs : float;
  vds : float;
  vth : float;
  vdsat : float;
  gm : float;
  gds : float;
  gmb : float;
}

let subthreshold_slope = 1.5

(* softplus-smoothed overdrive: veff -> vov for strong inversion, decays
   exponentially below threshold; sigma is its derivative. *)
let effective_overdrive tech vov =
  let vt = Mixsyn_util.Units.boltzmann *. tech.Tech.temp /. Mixsyn_util.Units.electron_charge in
  let nvt = subthreshold_slope *. vt in
  let x = vov /. nvt in
  if x > 40.0 then (vov, 1.0)
  else if x < -40.0 then (nvt *. exp (-40.0), 0.0)
  else begin
    let veff = nvt *. log (1.0 +. exp x) in
    let sigma = 1.0 /. (1.0 +. exp (-.x)) in
    (veff, sigma)
  end

(* Core NMOS-oriented evaluation assuming vds >= 0.  Returns (ids, jacobian
   w.r.t. (vd, vg, vs, vb)) together with reporting values. *)
let eval_core tech ~vth0 ~kp m ~vd ~vg ~vs ~vb =
  let vgs = vg -. vs and vds = vd -. vs in
  let vsb = vs -. vb in
  let phi = tech.Tech.phi in
  let sq_arg = Float.max (phi +. vsb) 0.025 in
  let vth = vth0 +. (tech.Tech.gamma *. (sqrt sq_arg -. sqrt phi)) in
  let dvth_dvsb = tech.Tech.gamma /. (2.0 *. sqrt sq_arg) in
  let vov = vgs -. vth in
  let veff, sigma = effective_overdrive tech vov in
  let beta = kp *. m.Netlist.w /. m.Netlist.l in
  let lambda = tech.Tech.lambda_factor /. m.Netlist.l in
  let clm = 1.0 +. (lambda *. vds) in
  let saturated = vds >= veff in
  let ids, gm_raw, gds_raw =
    if saturated then begin
      let i0 = 0.5 *. beta *. veff *. veff in
      (i0 *. clm, beta *. veff *. clm *. sigma, i0 *. lambda)
    end
    else begin
      let i0 = beta *. ((veff *. vds) -. (0.5 *. vds *. vds)) in
      ( i0 *. clm,
        beta *. vds *. clm *. sigma,
        (beta *. (veff -. vds) *. clm) +. (i0 *. lambda) )
    end
  in
  let region = if sigma < 0.5 then Cutoff else if saturated then Saturation else Triode in
  (* dvov/dvb = +dvth_dvsb (raising vb reduces vsb, lowers vth, raises vov) *)
  let gmb = gm_raw *. dvth_dvsb in
  (* Jacobian in terms of terminal voltages:
       ids = f(vgs, vds, vsb)
       did/dvg = gm ; did/dvd = gds ; did/dvb = gmb ;
       did/dvs = -(gm + gds + gmb). *)
  { ids;
    did_dvd = gds_raw;
    did_dvg = gm_raw;
    did_dvs = -.(gm_raw +. gds_raw +. gmb);
    did_dvb = gmb;
    region;
    vgs;
    vds;
    vth;
    vdsat = veff;
    gm = gm_raw;
    gds = gds_raw;
    gmb }

let evaluate tech m ~vd ~vg ~vs ~vb =
  match m.Netlist.polarity with
  | Netlist.Nmos ->
    if vd >= vs then eval_core tech ~vth0:tech.Tech.vth0_n ~kp:tech.Tech.kp_n m ~vd ~vg ~vs ~vb
    else begin
      (* source/drain swap: the device conducts the other way *)
      let e = eval_core tech ~vth0:tech.Tech.vth0_n ~kp:tech.Tech.kp_n m ~vd:vs ~vg ~vs:vd ~vb in
      { e with
        ids = -.e.ids;
        did_dvd = -.e.did_dvs;
        did_dvg = -.e.did_dvg;
        did_dvs = -.e.did_dvd;
        did_dvb = -.e.did_dvb;
        vds = vd -. vs;
        vgs = vg -. vs }
    end
  | Netlist.Pmos ->
    (* mirror all voltages and reuse the NMOS equations:
       id_p(v) = -id_n(-v); d id_p/dvx = d id_n/dvx' at mirrored point *)
    let e =
      let vd' = -.vd and vg' = -.vg and vs' = -.vs and vb' = -.vb in
      if vd' >= vs' then eval_core tech ~vth0:tech.Tech.vth0_p ~kp:tech.Tech.kp_p m ~vd:vd' ~vg:vg' ~vs:vs' ~vb:vb'
      else begin
        let i = eval_core tech ~vth0:tech.Tech.vth0_p ~kp:tech.Tech.kp_p m ~vd:vs' ~vg:vg' ~vs:vd' ~vb:vb' in
        { i with
          ids = -.i.ids;
          did_dvd = -.i.did_dvs;
          did_dvg = -.i.did_dvg;
          did_dvs = -.i.did_dvd;
          did_dvb = -.i.did_dvb;
          vds = vd' -. vs';
          vgs = vg' -. vs' }
      end
    in
    { e with
      ids = -.e.ids;
      (* derivatives survive double sign flip *)
      vgs = vg -. vs;
      vds = vd -. vs;
      vth = -.e.vth;
      vdsat = -.e.vdsat }

type caps = { cgs : float; cgd : float; cgb : float; cdb : float; csb : float }

let capacitances tech m region =
  let w = m.Netlist.w and l = m.Netlist.l in
  let cgate = tech.Tech.cox *. w *. l in
  let cover = tech.Tech.cov *. w in
  let cjunction =
    (tech.Tech.cj *. w *. tech.Tech.l_diff)
    +. (tech.Tech.cjsw *. 2.0 *. (w +. tech.Tech.l_diff))
  in
  match region with
  | Saturation ->
    { cgs = ((2.0 /. 3.0) *. cgate) +. cover; cgd = cover; cgb = 0.0;
      cdb = cjunction; csb = cjunction }
  | Triode ->
    { cgs = (0.5 *. cgate) +. cover; cgd = (0.5 *. cgate) +. cover; cgb = 0.0;
      cdb = cjunction; csb = cjunction }
  | Cutoff ->
    { cgs = cover; cgd = cover; cgb = cgate; cdb = cjunction; csb = cjunction }

let thermal_noise_psd tech ~gm =
  4.0 *. Mixsyn_util.Units.boltzmann *. tech.Tech.temp *. (2.0 /. 3.0) *. gm

let flicker_noise_psd tech m ~gm ~freq =
  let f = Float.max freq 1e-3 in
  tech.Tech.kf *. gm *. gm /. (tech.Tech.cox *. m.Netlist.w *. m.Netlist.l *. f)

let pp_region ppf r =
  Format.pp_print_string ppf
    (match r with Cutoff -> "cutoff" | Triode -> "triode" | Saturation -> "saturation")
