(** Performance extraction: the quantities a specification constrains.

    Interprets raw analysis results as the performance metrics used by the
    synthesis strategies of Section 2 — low-frequency gain, unity-gain
    frequency, phase margin, output swing, power, slew rate. *)

type bode_point = { f : float; mag_db : float; phase : float }

val bode : Ac.result -> out:Mixsyn_circuit.Netlist.net -> bode_point array
(** Magnitude (dB) and unwrapped phase (degrees) of the output node; the
    input excitation is whatever AC sources the netlist carries. *)

val dc_gain : bode_point array -> float
(** Gain (linear) at the lowest swept frequency. *)

val unity_gain_freq : bode_point array -> float option
(** First 0 dB crossing (log-interpolated); [None] when the gain never
    reaches unity inside the sweep. *)

val phase_margin : bode_point array -> float option
(** 180° + phase at the unity-gain frequency. *)

val gain_at : bode_point array -> float -> float
(** Linear-interpolated magnitude (linear scale) at a frequency. *)

val bandwidth_3db : bode_point array -> float option
(** -3 dB frequency relative to the DC gain. *)

val output_swing :
  Mixsyn_circuit.Netlist.t -> Mna.op -> out:Mixsyn_circuit.Netlist.net ->
  vdd_net:Mixsyn_circuit.Netlist.net -> float * float
(** Conservative (low, high) output range: each device whose drain drives the
    output must keep its |Vds| above |Vdsat|. *)

val supply_current : Mixsyn_circuit.Netlist.t -> Mna.op -> string -> float
(** Current delivered by the named voltage source (positive = sourcing). *)

val slew_rate : tail_current:float -> comp_cap:float -> float
(** Classic two-stage estimate: I_tail / C_c. *)

val mos_area : Mixsyn_circuit.Netlist.t -> float
(** Total active gate area of the netlist, m². *)
