(** DC operating-point analysis: damped Newton with source stepping.

    This is the oracle every optimization-based synthesis strategy in the
    paper queries; FRIDGE calls it (as part of full SPICE runs) at every
    annealing move, ASTRX/OBLX deliberately avoids it via the dc-free
    formulation — both strategies are implemented on top of this module. *)

exception No_convergence of string

val solve :
  ?tech:Mixsyn_circuit.Tech.t ->
  ?gmin:float ->
  ?max_iterations:int ->
  Mixsyn_circuit.Netlist.t ->
  Mna.op
(** Operating point of the circuit.  Tries a direct Newton solve first, then
    source stepping (continuation in the source scale), then gmin stepping.
    @raise No_convergence when all strategies fail. *)

val power : Mixsyn_circuit.Netlist.t -> Mna.op -> float
(** Total power delivered by the voltage and current sources, watts. *)

val sweep :
  ?tech:Mixsyn_circuit.Tech.t ->
  Mixsyn_circuit.Netlist.t ->
  source:string ->
  values:float array ->
  (float * Mna.op) array
(** DC transfer sweep: re-solve the operating point for each value of the
    named voltage source's DC level, warm-starting each point from the
    previous solution (the standard .DC analysis).
    @raise Not_found when no voltage source has that name.
    @raise No_convergence when a sweep point fails. *)
