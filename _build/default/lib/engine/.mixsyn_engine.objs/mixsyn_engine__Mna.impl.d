lib/engine/mna.ml: Array Complex List Mixsyn_circuit Mos_model
