lib/engine/mna.mli: Complex Mixsyn_circuit Mos_model
