lib/engine/measure.ml: Ac Array Complex Float List Mixsyn_circuit Mna Mos_model
