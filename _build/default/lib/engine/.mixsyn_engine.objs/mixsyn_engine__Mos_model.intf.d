lib/engine/mos_model.mli: Format Mixsyn_circuit
