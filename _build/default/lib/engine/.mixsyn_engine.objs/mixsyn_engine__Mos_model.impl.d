lib/engine/mos_model.ml: Float Format Mixsyn_circuit Mixsyn_util
