lib/engine/tran.mli: Mixsyn_circuit Mna
