lib/engine/ac.ml: Array Complex Float List Mixsyn_circuit Mixsyn_util Mna Mos_model
