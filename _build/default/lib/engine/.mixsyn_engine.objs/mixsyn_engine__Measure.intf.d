lib/engine/measure.mli: Ac Mixsyn_circuit Mna
