lib/engine/dc.mli: Mixsyn_circuit Mna
