lib/engine/tran.ml: Array Float List Mixsyn_circuit Mixsyn_util Mna Mos_model
