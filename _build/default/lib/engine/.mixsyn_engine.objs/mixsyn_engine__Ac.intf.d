lib/engine/ac.mli: Complex Mixsyn_circuit Mna
