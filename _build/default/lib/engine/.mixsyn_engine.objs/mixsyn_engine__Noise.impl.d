lib/engine/noise.ml: Ac Array Complex Float List Mixsyn_circuit Mixsyn_util Mna Mos_model
