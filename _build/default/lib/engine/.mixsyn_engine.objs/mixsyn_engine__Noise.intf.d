lib/engine/noise.mli: Mixsyn_circuit Mna
