test/test_opt.ml: Alcotest Array Float Mixsyn_circuit Mixsyn_opt Mixsyn_util
