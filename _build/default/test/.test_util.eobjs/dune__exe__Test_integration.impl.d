test/test_integration.ml: Alcotest Array Complex Float Lazy List Mixsyn_awe Mixsyn_circuit Mixsyn_engine Mixsyn_layout Mixsyn_symbolic Mixsyn_synth Option Printf String
