test/test_engine.ml: Alcotest Array Float List Mixsyn_circuit Mixsyn_engine Mixsyn_util Printf QCheck QCheck_alcotest
