test/test_util.ml: Alcotest Array Complex Float Gen List Mixsyn_util QCheck QCheck_alcotest String
