test/test_awe.ml: Alcotest Array Complex Float List Mixsyn_awe Mixsyn_circuit Mixsyn_engine Mixsyn_util Printf
