test/test_layout.ml: Alcotest Array Filename Float List Mixsyn_circuit Mixsyn_engine Mixsyn_layout Mixsyn_util Option Printf QCheck QCheck_alcotest String Sys
