test/test_symbolic.ml: Alcotest Array Complex Float List Mixsyn_circuit Mixsyn_engine Mixsyn_symbolic Mixsyn_util Printf QCheck QCheck_alcotest
