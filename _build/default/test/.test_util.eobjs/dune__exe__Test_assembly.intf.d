test/test_assembly.mli:
