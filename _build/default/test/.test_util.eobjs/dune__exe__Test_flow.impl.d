test/test_flow.ml: Alcotest Format List Mixsyn_circuit Mixsyn_flow Mixsyn_synth String
