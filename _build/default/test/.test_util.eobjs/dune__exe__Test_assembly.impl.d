test/test_assembly.ml: Alcotest Array Float List Mixsyn_assembly Mixsyn_layout Printf
