test/test_synth.ml: Alcotest Array Float Format List Mixsyn_circuit Mixsyn_synth Option
