(* System-assembly tests: floorplanning, WREN global routing, RAIL power
   grid. *)

module A = Mixsyn_assembly
module B = A.Block
module FP = A.Floorplan
module W = A.Wren
module PG = A.Power_grid

let blocks = B.data_channel_testbench ()

let check_close ?(eps = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > eps *. Float.max 1e-30 (Float.abs expected) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

(* --- blocks ------------------------------------------------------------- *)

let test_block_classes () =
  let dsp = List.find (fun b -> b.B.b_name = "dsp-core") blocks in
  let pll = List.find (fun b -> b.B.b_name = "pll") blocks in
  Alcotest.(check bool) "dsp aggressor" true (B.is_aggressor dsp);
  Alcotest.(check bool) "dsp not victim" false (B.is_victim dsp);
  Alcotest.(check bool) "pll victim" true (B.is_victim pll);
  if B.noise_injection dsp <= 0.0 then Alcotest.fail "dsp injects nothing"

let test_testbench_shape () =
  Alcotest.(check int) "eight blocks" 8 (List.length blocks);
  if not (List.exists B.is_victim blocks) then Alcotest.fail "no victims";
  if not (List.exists B.is_aggressor blocks) then Alcotest.fail "no aggressors"

(* --- floorplan ------------------------------------------------------------ *)

let box (p : FP.placement) =
  let w = if p.FP.rotated then p.FP.block.B.bh else p.FP.block.B.bw in
  let h = if p.FP.rotated then p.FP.block.B.bw else p.FP.block.B.bh in
  (p.FP.x, p.FP.y, p.FP.x +. w, p.FP.y +. h)

let test_floorplan_no_overlap () =
  let fp = FP.floorplan ~seed:5 blocks in
  let boxes = List.map box fp.FP.placements in
  let rec pairs = function
    | [] -> ()
    | (x0, y0, x1, y1) :: rest ->
      List.iter
        (fun (a0, b0, a1, b1) ->
          let eps = 1e-12 in
          if x0 < a1 -. eps && a0 < x1 -. eps && y0 < b1 -. eps && b0 < y1 -. eps then
            Alcotest.fail "blocks overlap")
        rest;
      pairs rest
  in
  pairs boxes

let test_floorplan_area_bound () =
  let fp = FP.floorplan ~seed:5 blocks in
  let sum = List.fold_left (fun acc b -> acc +. (b.B.bw *. b.B.bh)) 0.0 blocks in
  if fp.FP.fp_area < sum -. 1e-12 then Alcotest.fail "area below the block sum";
  (* slicing should not waste more than ~80 % *)
  if fp.FP.fp_area > 1.8 *. sum then
    Alcotest.failf "floorplan too loose: %.2f vs %.2f mm2" (fp.FP.fp_area *. 1e6) (sum *. 1e6)

let test_floorplan_all_blocks_inside () =
  let fp = FP.floorplan ~seed:5 blocks in
  List.iter
    (fun p ->
      let x0, y0, x1, y1 = box p in
      if x0 < -1e-12 || y0 < -1e-12 || x1 > fp.FP.chip_w +. 1e-9 || y1 > fp.FP.chip_h +. 1e-9
      then Alcotest.fail "block outside the chip")
    fp.FP.placements

let test_noise_aware_beats_blind () =
  let aware = FP.floorplan ~seed:5 ~noise_weight:2.0 blocks in
  let blind = FP.floorplan ~seed:5 ~noise_weight:0.0 blocks in
  if FP.total_victim_noise aware > FP.total_victim_noise blind +. 1e-9 then
    Alcotest.fail "substrate-aware floorplan is noisier than the blind one"

let test_floorplan_victims_reported () =
  let fp = FP.floorplan ~seed:5 blocks in
  let victims = List.filter B.is_victim blocks in
  Alcotest.(check int) "noise entry per victim" (List.length victims)
    (List.length fp.FP.victim_noise)

(* --- wren ------------------------------------------------------------------ *)

let fp = FP.floorplan ~seed:5 blocks

let test_wren_routes_everything_blind () =
  let r = W.route ~mode:W.Noise_blind fp in
  Alcotest.(check (list string)) "no unrouted" [] r.W.unrouted;
  if r.W.total_length <= 0.0 then Alcotest.fail "zero wirelength"

let test_wren_modes_ordering () =
  let blind = W.route ~mode:W.Noise_blind fp in
  let snr = W.route ~mode:W.Snr_constrained fp in
  (* SNR-constrained routing must not share more corridor than blind *)
  if snr.W.shared_length > blind.W.shared_length +. 1e-12 then
    Alcotest.fail "SNR constraints increased aggressor sharing";
  (* and pays for it in length *)
  if snr.W.total_length < blind.W.total_length -. 1e-9 then
    Alcotest.fail "SNR routing can't be shorter than shortest-path routing"

let test_wren_segregated_zero_sharing () =
  let r = W.route ~mode:W.Segregated fp in
  check_close ~eps:1e-12 "no shared corridors" 0.0 r.W.shared_length

let test_wren_kind_heuristic () =
  Alcotest.(check bool) "clk aggressor" true (W.kind_of_net "clk" = W.Aggressor);
  Alcotest.(check bool) "vref quiet" true (W.kind_of_net "vref" = W.Quiet)

let test_wren_budget_mapping () =
  let r = W.route ~mode:W.Snr_constrained fp in
  let budgets = W.map_budgets fp r ~total_budget_f:1e-13 in
  (* per quiet net, the budgets must sum back to the total *)
  let quiet_nets =
    List.filter_map
      (fun rn -> if rn.W.kind = W.Quiet && rn.W.corridors <> [] then Some rn.W.gn_net else None)
      r.W.routed
  in
  List.iter
    (fun net ->
      let total =
        List.fold_left
          (fun acc cb -> if cb.W.cb_net = net then acc +. cb.W.budget_f else acc)
          0.0 budgets
      in
      check_close ~eps:1e-6 (Printf.sprintf "budget sums for %s" net) 1e-13 total)
    quiet_nets

(* --- detailed hand-off ------------------------------------------------------- *)

let test_detailed_handoff () =
  let global = W.route ~mode:W.Snr_constrained fp in
  let r = A.Detailed.run fp global in
  (* corridors carrying both kinds must exist on this chip and get shields *)
  let mixed =
    List.filter
      (fun (j : A.Detailed.channel_job) ->
        List.exists (fun (_, k) -> k = W.Aggressor) j.A.Detailed.nets
        && List.exists (fun (_, k) -> k = W.Quiet) j.A.Detailed.nets)
      r.A.Detailed.jobs
  in
  if mixed = [] then Alcotest.fail "no mixed corridors to exercise";
  if r.A.Detailed.total_shields = 0 then Alcotest.fail "no shields inserted";
  List.iter
    (fun (j : A.Detailed.channel_job) ->
      if j.A.Detailed.coupling_f < 0.0 then Alcotest.fail "negative coupling";
      Alcotest.(check int) "all nets routed" (List.length j.A.Detailed.nets)
        (List.length j.A.Detailed.routed.Mixsyn_layout.Channel_router.routed))
    r.A.Detailed.jobs

let test_detailed_budgets_respected () =
  let global = W.route ~mode:W.Snr_constrained fp in
  let r = A.Detailed.run ~total_budget_f:1e-9 fp global in
  (* an essentially unlimited budget cannot be exceeded *)
  Alcotest.(check int) "no channel over budget" 0 r.A.Detailed.channels_over_budget

(* --- power grid --------------------------------------------------------------- *)

let test_powergrid_synthesis_meets () =
  let r = PG.synthesize fp in
  Alcotest.(check bool) "constraints met" true r.PG.meets;
  if r.PG.after.PG.ir_drop > PG.default_constraints.PG.max_ir_drop then
    Alcotest.fail "ir drop above limit";
  if r.PG.after.PG.em_overload > 1.0 then Alcotest.fail "electromigration above limit"

let test_powergrid_costs_metal () =
  let r = PG.synthesize fp in
  if r.PG.after.PG.metal_area <= r.PG.before.PG.metal_area then
    Alcotest.fail "meeting constraints should cost metal"

let test_powergrid_monotone_in_width () =
  (* uniformly wider straps can only reduce IR drop *)
  let thin =
    { PG.pitch = 0.8e-3; strap_widths = Array.make 20 2e-6; n_vertical = 10; n_horizontal = 10 }
  in
  let wide = { thin with PG.strap_widths = Array.make 20 40e-6 } in
  let m_thin = PG.evaluate fp thin in
  let m_wide = PG.evaluate fp wide in
  if m_wide.PG.ir_drop >= m_thin.PG.ir_drop then Alcotest.fail "wider straps worsened IR drop"

let test_powergrid_spike_scales_with_ipeak () =
  (* doubling every block's switching spike doubles the bounce, near enough *)
  let double =
    List.map (fun b -> { b with B.i_peak = 2.0 *. b.B.i_peak }) blocks
  in
  let fp2 = { fp with FP.placements =
                        List.map2 (fun p b -> { p with FP.block = b }) fp.FP.placements double }
  in
  let design =
    { PG.pitch = 0.8e-3; strap_widths = Array.make 20 10e-6; n_vertical = 10; n_horizontal = 10 }
  in
  let m1 = PG.evaluate fp design and m2 = PG.evaluate fp2 design in
  check_close ~eps:0.05 "spike doubles" (2.0 *. m1.PG.spike) m2.PG.spike

let () =
  Alcotest.run "assembly"
    [ ( "block",
        [ Alcotest.test_case "classes" `Quick test_block_classes;
          Alcotest.test_case "testbench shape" `Quick test_testbench_shape ] );
      ( "floorplan",
        [ Alcotest.test_case "no overlap" `Quick test_floorplan_no_overlap;
          Alcotest.test_case "area bound" `Quick test_floorplan_area_bound;
          Alcotest.test_case "blocks inside chip" `Quick test_floorplan_all_blocks_inside;
          Alcotest.test_case "noise-aware beats blind" `Quick test_noise_aware_beats_blind;
          Alcotest.test_case "victims reported" `Quick test_floorplan_victims_reported ] );
      ( "wren",
        [ Alcotest.test_case "blind routes all" `Quick test_wren_routes_everything_blind;
          Alcotest.test_case "mode ordering" `Quick test_wren_modes_ordering;
          Alcotest.test_case "segregated zero sharing" `Quick test_wren_segregated_zero_sharing;
          Alcotest.test_case "kind heuristic" `Quick test_wren_kind_heuristic;
          Alcotest.test_case "budget mapping" `Quick test_wren_budget_mapping ] );
      ( "detailed",
        [ Alcotest.test_case "hand-off" `Quick test_detailed_handoff;
          Alcotest.test_case "budgets" `Quick test_detailed_budgets_respected ] );
      ( "power-grid",
        [ Alcotest.test_case "synthesis meets" `Quick test_powergrid_synthesis_meets;
          Alcotest.test_case "costs metal" `Quick test_powergrid_costs_metal;
          Alcotest.test_case "monotone in width" `Quick test_powergrid_monotone_in_width;
          Alcotest.test_case "spike scales" `Quick test_powergrid_spike_scales_with_ipeak ] ) ]
