(* Cross-library integration: pipelines that span frontend, backend and
   verification, beyond what the per-library suites cover. *)

module N = Mixsyn_circuit.Netlist
module Tech = Mixsyn_circuit.Tech
module Spec = Mixsyn_synth.Spec
module Sizing = Mixsyn_synth.Sizing
module DP = Mixsyn_synth.Design_plan
module CF = Mixsyn_layout.Cell_flow

let tech = Tech.generic_07um

let check_close ?(eps = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > eps *. Float.max 1e-30 (Float.abs expected) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

let ota_specs =
  [ Spec.spec "gain_db" (Spec.At_least 70.0);
    Spec.spec "ugf_hz" (Spec.At_least 10e6);
    Spec.spec "phase_margin_deg" (Spec.At_least 60.0) ]

let context = [ ("cl", 5e-12); ("load_cap_f", 5e-12) ]

let measure_ac nl =
  let op = Mixsyn_engine.Dc.solve ~tech nl in
  let out = N.find_net nl "out" in
  let freqs = Mixsyn_engine.Ac.log_sweep ~decades_from:0.0 ~decades_to:9.5 ~points_per_decade:8 in
  let ac = Mixsyn_engine.Ac.solve ~tech nl op ~freqs in
  let bode = Mixsyn_engine.Measure.bode ac ~out in
  ( 20.0 *. log10 (Float.max (Mixsyn_engine.Measure.dc_gain bode) 1e-12),
    Option.value (Mixsyn_engine.Measure.unity_gain_freq bode) ~default:0.0,
    Option.value (Mixsyn_engine.Measure.phase_margin bode) ~default:0.0 )

(* 1. plan -> layout -> extraction -> re-verified performance *)
let test_plan_to_silicon () =
  let r =
    Sizing.size ~context (Sizing.Design_plan DP.plan_miller)
      Mixsyn_circuit.Topology.miller_ota ~specs:ota_specs
      ~objectives:[ Spec.minimize "power_w" ]
  in
  Alcotest.(check bool) "plan meets pre-layout" true r.Sizing.meets_specs;
  let nl = Mixsyn_circuit.Topology.miller_ota.Mixsyn_circuit.Template.build tech r.Sizing.params in
  let layout = CF.koan ~seed:23 nl in
  Alcotest.(check bool) "layout routed" true layout.CF.complete;
  let annotated = Mixsyn_layout.Extract.annotate nl layout.CF.parasitics in
  let gain, ugf, pm = measure_ac annotated in
  (* the plan has margin; layout parasitics must not consume all of it *)
  if gain < 70.0 then Alcotest.failf "post-layout gain %.1f dB below spec" gain;
  if ugf < 9e6 then Alcotest.failf "post-layout ugf %.3g collapsed" ugf;
  if pm < 50.0 then Alcotest.failf "post-layout pm %.1f collapsed" pm

(* shared laid-out-and-extracted miller instance for the read-only tests *)
let extracted_miller =
  lazy
    (let x = [| 60e-6; 20e-6; 30e-6; 60e-6; 45e-6; 1e-6; 50e-6; 3e-12; 5e-12 |] in
     let nl = Mixsyn_circuit.Topology.miller_ota.Mixsyn_circuit.Template.build tech x in
     let layout = CF.koan ~seed:23 nl in
     Mixsyn_layout.Extract.annotate nl layout.CF.parasitics)

(* 2. the symbolic simulator handles the extracted netlist too *)
let test_symbolic_on_extracted () =
  let annotated = Lazy.force extracted_miller in
  let out = N.find_net annotated "out" in
  let r = Mixsyn_symbolic.Analyze.transfer annotated ~out in
  let op = Mixsyn_engine.Dc.solve ~tech annotated in
  let v = Mixsyn_symbolic.Analyze.valuation ~tech annotated op in
  let freqs = [| 10.0; 1e5; 1e7 |] in
  let ac = Mixsyn_engine.Ac.solve ~tech annotated op ~freqs in
  Array.iteri
    (fun k f ->
      let numeric = Mixsyn_engine.Ac.magnitude ac k out in
      let symbolic =
        Complex.norm
          (Mixsyn_symbolic.Analyze.eval_rational v r { Complex.re = 0.0; im = 2.0 *. Float.pi *. f })
      in
      check_close ~eps:1e-3 (Printf.sprintf "f=%g" f) numeric symbolic)
    freqs

(* 3. AWE agrees with AC on the extracted netlist *)
let test_awe_on_extracted () =
  let annotated = Lazy.force extracted_miller in
  let op = Mixsyn_engine.Dc.solve ~tech annotated in
  let out = N.find_net annotated "out" in
  let tf = Mixsyn_awe.Awe.of_circuit ~tech annotated op ~out ~order:4 in
  let freqs = [| 1.0; 1e4 |] in
  let ac = Mixsyn_engine.Ac.solve ~tech annotated op ~freqs in
  Array.iteri
    (fun k f ->
      check_close ~eps:0.02 (Printf.sprintf "f=%g" f)
        (Mixsyn_engine.Ac.magnitude ac k out)
        (Mixsyn_awe.Awe.magnitude tf f))
    freqs

(* 4. SC filter: electrical spec survives its own layout *)
let test_sc_filter_through_layout () =
  let spec = { Mixsyn_circuit.Sc_filter.f_clock = 1e6; f0 = 10e3; q = 0.707; gain = 2.0 } in
  let nl = Mixsyn_circuit.Sc_filter.biquad_lowpass spec in
  let layout = CF.procedural ~style:0 nl in
  let annotated = Mixsyn_layout.Extract.annotate nl layout.CF.parasitics in
  let op = Mixsyn_engine.Dc.solve ~tech annotated in
  let out = N.find_net annotated "out" in
  let ac = Mixsyn_engine.Ac.solve ~tech annotated op ~freqs:[| 1e3 |] in
  let measured = Mixsyn_engine.Ac.magnitude ac 0 out in
  check_close ~eps:0.05 "passband gain survives layout"
    (Mixsyn_circuit.Sc_filter.expected_magnitude spec 1e3)
    measured

(* 5. SPICE export names every element of the netlist *)
let test_spice_deck_complete () =
  let x = [| 60e-6; 20e-6; 30e-6; 60e-6; 45e-6; 1e-6; 50e-6; 3e-12; 5e-12 |] in
  let nl = Mixsyn_circuit.Topology.miller_ota.Mixsyn_circuit.Template.build tech x in
  let deck = N.to_spice nl in
  let contains needle =
    let nl_ = String.length needle and sl = String.length deck in
    let rec scan i = i + nl_ <= sl && (String.sub deck i nl_ = needle || scan (i + 1)) in
    scan 0
  in
  List.iter
    (fun e ->
      let name = N.element_name e in
      if not (contains name) then Alcotest.failf "deck lacks element %s" name)
    (N.elements nl);
  Alcotest.(check bool) ".END present" true (contains ".END")

(* 6. the detector's synthesized sizing still biases at a hot corner *)
let test_detector_sizing_survives_corner () =
  let hot = Tech.apply_corner tech { Tech.corner_name = "hot"; d_vdd = -0.05; d_temp = 60.0; d_vth = 0.02; d_kp = -0.05 } in
  match Mixsyn_synth.Pulse_detector.measure ~tech:hot Mixsyn_synth.Pulse_detector.manual with
  | None -> Alcotest.fail "manual detector fails to bias at the hot corner"
  | Some m ->
    (* functionality persists even if margins shrink *)
    let gain = Option.value (Spec.lookup m "gain_v_per_fc") ~default:0.0 in
    if gain < 10.0 then Alcotest.failf "hot-corner gain collapsed to %.1f V/fC" gain

let () =
  Alcotest.run "integration"
    [ ( "pipelines",
        [ Alcotest.test_case "plan to silicon" `Quick test_plan_to_silicon;
          Alcotest.test_case "symbolic on extracted" `Quick test_symbolic_on_extracted;
          Alcotest.test_case "awe on extracted" `Quick test_awe_on_extracted;
          Alcotest.test_case "sc filter through layout" `Quick test_sc_filter_through_layout;
          Alcotest.test_case "spice deck complete" `Quick test_spice_deck_complete;
          Alcotest.test_case "detector at hot corner" `Quick test_detector_sizing_survives_corner ] ) ]
