(* AWE tests against closed-form RC theory and the numeric AC engine. *)

module N = Mixsyn_circuit.Netlist
module Tech = Mixsyn_circuit.Tech
module Awe = Mixsyn_awe.Awe

let tech = Tech.generic_07um

let check_close ?(eps = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > eps *. Float.max 1e-30 (Float.abs expected) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

(* single-pole RC driven by a current source: Z(s) = R/(1+sRC) *)
let rc r c =
  let g = [| [| 1.0 /. r |] |] in
  let cm = [| [| c |] |] in
  let b = [| 1.0 |] in
  (g, cm, b)

let test_single_pole () =
  let g, c, b = rc 1000.0 1e-9 in
  let tf = Awe.of_network ~g ~c ~b ~out:0 ~order:1 in
  Alcotest.(check int) "order" 1 tf.Awe.order;
  let p = tf.Awe.poles.(0) in
  check_close ~eps:1e-6 "pole" (-1.0 /. (1000.0 *. 1e-9)) p.Complex.re;
  check_close ~eps:1e-6 "H(0)" 1000.0 (Awe.magnitude tf 1e-3);
  (* -3 dB at 1/(2 pi RC) *)
  let f3 = 1.0 /. (2.0 *. Float.pi *. 1000.0 *. 1e-9) in
  check_close ~eps:1e-3 "3 dB point" (1000.0 /. sqrt 2.0) (Awe.magnitude tf f3)

let test_moments_match_theory () =
  (* Z(s) = R(1 - sRC + (sRC)^2 ...) so m_k = R(-RC)^k *)
  let g, c, b = rc 2000.0 0.5e-9 in
  let ms = Awe.moments ~g ~c ~b ~out:0 ~count:4 in
  let rc_ = 2000.0 *. 0.5e-9 in
  Array.iteri
    (fun k m -> check_close ~eps:1e-9 (Printf.sprintf "m%d" k) (2000.0 *. ((-.rc_) ** float_of_int k)) m)
    ms

let test_step_response () =
  let g, c, b = rc 1000.0 1e-9 in
  let tf = Awe.of_network ~g ~c ~b ~out:0 ~order:1 in
  (* unit current step into the RC: v(t) = R(1 - exp(-t/RC)) *)
  let tau = 1e-6 in
  check_close ~eps:1e-4 "step at tau" (1000.0 *. (1.0 -. exp (-1.0))) (Awe.step_response tf tau);
  check_close ~eps:1e-3 "step at 5 tau" (1000.0 *. (1.0 -. exp (-5.0))) (Awe.step_response tf (5.0 *. tau))

let test_impulse_response () =
  let g, c, b = rc 1000.0 1e-9 in
  let tf = Awe.of_network ~g ~c ~b ~out:0 ~order:1 in
  (* h(t) = (1/C) exp(-t/RC) *)
  check_close ~eps:1e-4 "impulse at 0+" 1e9 (Awe.impulse_response tf 1e-12);
  check_close ~eps:1e-3 "impulse at tau" (1e9 *. exp (-1.0)) (Awe.impulse_response tf 1e-6)

let test_two_pole_ladder () =
  (* R1-C1-R2-C2 ladder: compare the AWE magnitude with direct AC solve *)
  let g = [| [| (1.0 /. 1000.0) +. (1.0 /. 500.0); -.(1.0 /. 500.0) |];
             [| -.(1.0 /. 500.0); 1.0 /. 500.0 |] |] in
  let c = [| [| 1e-9; 0.0 |]; [| 0.0; 2e-9 |] |] in
  let b = [| 1.0; 0.0 |] in
  let tf = Awe.of_network ~g ~c ~b ~out:1 ~order:2 in
  List.iter
    (fun f ->
      let omega = 2.0 *. Float.pi *. f in
      let a =
        Array.init 2 (fun i ->
            Array.init 2 (fun j -> { Complex.re = g.(i).(j); im = omega *. c.(i).(j) }))
      in
      let x = Mixsyn_util.Matrix.Cplx.solve a [| Complex.one; Complex.zero |] in
      check_close ~eps:1e-4 (Printf.sprintf "ladder f=%g" f) (Complex.norm x.(1)) (Awe.magnitude tf f))
    [ 1.0; 1e4; 1e5; 1e6; 1e7 ]

let test_stable_part_drops_rhp () =
  let tf =
    { Awe.poles = [| { Complex.re = -1.0; im = 0.0 }; { Complex.re = 2.0; im = 0.0 } |];
      residues = [| Complex.one; Complex.one |];
      moments = [||];
      order = 2 }
  in
  let s = Awe.stable_part tf in
  Alcotest.(check int) "one pole kept" 1 (Array.length s.Awe.poles);
  Alcotest.(check bool) "stable" true (Awe.stable s)

let test_dominant_pole () =
  let tf =
    { Awe.poles = [| { Complex.re = -100.0; im = 0.0 }; { Complex.re = -1.0; im = 0.0 } |];
      residues = [| Complex.one; Complex.one |];
      moments = [||];
      order = 2 }
  in
  match Awe.dominant_pole tf with
  | Some p -> check_close "dominant" (-1.0) p.Complex.re
  | None -> Alcotest.fail "expected a dominant pole"

let test_of_circuit_ota () =
  (* order-reduced AWE of the OTA matches the AC sweep *)
  let t = Mixsyn_circuit.Topology.ota_5t in
  let nl = t.Mixsyn_circuit.Template.build tech [| 50e-6; 25e-6; 40e-6; 1e-6; 100e-6; 2e-12 |] in
  let op = Mixsyn_engine.Dc.solve ~tech nl in
  let out = N.find_net nl "out" in
  let tf = Awe.of_circuit ~tech nl op ~out ~order:4 in
  let freqs = [| 1.0; 1e4; 1e6; 1e8 |] in
  let ac = Mixsyn_engine.Ac.solve ~tech nl op ~freqs in
  Array.iteri
    (fun k f ->
      let numeric = Mixsyn_engine.Ac.magnitude ac k out in
      check_close ~eps:0.01 (Printf.sprintf "f=%g" f) numeric (Awe.magnitude tf f))
    freqs

let test_order_reduction_graceful () =
  (* a 1-pole system asked for order 4 must degrade, not explode *)
  let g, c, b = rc 1000.0 1e-9 in
  let ms = Awe.moments ~g ~c ~b ~out:0 ~count:8 in
  let tf = Awe.pade ms ~order:4 in
  if tf.Awe.order > 4 then Alcotest.fail "order grew";
  check_close ~eps:1e-3 "still accurate" 1000.0 (Awe.magnitude tf 1e-3)

let () =
  Alcotest.run "awe"
    [ ( "exact",
        [ Alcotest.test_case "single pole" `Quick test_single_pole;
          Alcotest.test_case "moments" `Quick test_moments_match_theory;
          Alcotest.test_case "step response" `Quick test_step_response;
          Alcotest.test_case "impulse response" `Quick test_impulse_response;
          Alcotest.test_case "two-pole ladder" `Quick test_two_pole_ladder ] );
      ( "robustness",
        [ Alcotest.test_case "stable part" `Quick test_stable_part_drops_rhp;
          Alcotest.test_case "dominant pole" `Quick test_dominant_pole;
          Alcotest.test_case "ota vs ac" `Quick test_of_circuit_ota;
          Alcotest.test_case "order reduction" `Quick test_order_reduction_graceful ] ) ]
