(* Domain-pool tests: the determinism contract (results independent of the
   job count), exception propagation, nesting, RNG stream independence, and
   sequential-vs-parallel equality on every loop wired to the pool. *)

module Pool = Mixsyn_util.Pool
module Rng = Mixsyn_util.Rng
module Anneal = Mixsyn_opt.Anneal
module GA = Mixsyn_opt.Genetic
module CS = Mixsyn_opt.Corner_search
module Top = Mixsyn_circuit.Topology
module Tp = Mixsyn_circuit.Template

let tech = Mixsyn_circuit.Tech.generic_07um

(* --- core map/reduce --------------------------------------------------- *)

let test_map_matches_sequential () =
  let input = Array.init 257 (fun i -> i) in
  let f x = (x * x) + 3 in
  let expected = Array.map f input in
  List.iter
    (fun jobs ->
      let got = Pool.parallel_map ~jobs f input in
      if got <> expected then Alcotest.failf "parallel_map mismatch at jobs=%d" jobs)
    [ 1; 2; 4; 64 ]

let test_map_edge_cases () =
  (* empty input, jobs > items, singleton *)
  Alcotest.(check (array int)) "empty" [||] (Pool.parallel_map ~jobs:4 (fun x -> x) [||]);
  Alcotest.(check (array int)) "jobs > items" [| 2; 4; 6 |]
    (Pool.parallel_map ~jobs:64 (fun x -> 2 * x) [| 1; 2; 3 |]);
  Alcotest.(check (array int)) "singleton" [| 9 |]
    (Pool.parallel_map ~jobs:8 (fun x -> x * x) [| 3 |]);
  Alcotest.(check (array int)) "init" [| 0; 1; 4; 9 |]
    (Pool.parallel_init ~jobs:3 4 (fun i -> i * i));
  (match Pool.parallel_init ~jobs:2 (-1) (fun i -> i) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "parallel_init (-1) must raise");
  Alcotest.(check (list int)) "map_list" [ 2; 3; 4 ]
    (Pool.parallel_map_list ~jobs:4 succ [ 1; 2; 3 ])

let test_chunk_granularity () =
  (* the band size is a scheduling knob only: any chunk yields the
     sequential answer, in order *)
  let input = Array.init 257 (fun i -> i) in
  let f x = (x * 7) - 1 in
  let expected = Array.map f input in
  List.iter
    (fun (jobs, chunk) ->
      let got = Pool.parallel_map ~jobs ~chunk f input in
      if got <> expected then
        Alcotest.failf "parallel_map mismatch at jobs=%d chunk=%d" jobs chunk)
    [ (1, 1); (4, 1); (4, 7); (4, 64); (4, 10_000); (64, 3) ];
  (* non-commutative reduce: index order must survive any banding *)
  let strings = Array.init 100 (fun i -> i) in
  let seq = String.concat "" (List.map string_of_int (Array.to_list strings)) in
  List.iter
    (fun chunk ->
      Alcotest.(check string) (Printf.sprintf "reduce chunk=%d" chunk) seq
        (Pool.parallel_reduce ~jobs:4 ~chunk ~map:string_of_int ~combine:( ^ ) ~init:""
           strings))
    [ 1; 13; 1000 ];
  Alcotest.(check (array int)) "init with chunk" [| 0; 1; 4; 9 |]
    (Pool.parallel_init ~jobs:3 ~chunk:2 4 (fun i -> i * i));
  Alcotest.(check (list int)) "map_list with chunk" [ 2; 3; 4 ]
    (Pool.parallel_map_list ~jobs:4 ~chunk:1 succ [ 1; 2; 3 ]);
  (* a non-positive chunk is rejected on every path, including the
     sequential jobs=1 short cut *)
  List.iter
    (fun (jobs, chunk) ->
      match Pool.parallel_map ~jobs ~chunk (fun x -> x) [| 1; 2 |] with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "chunk=%d at jobs=%d must raise" chunk jobs)
    [ (4, 0); (4, -3); (1, 0) ]

let test_reduce_index_order () =
  (* string concatenation is non-commutative: only an index-ordered
     reduction gives the sequential answer *)
  let input = Array.init 100 (fun i -> i) in
  let expected = String.concat "" (List.map string_of_int (Array.to_list input)) in
  List.iter
    (fun jobs ->
      let got =
        Pool.parallel_reduce ~jobs ~map:string_of_int ~combine:( ^ ) ~init:"" input
      in
      Alcotest.(check string) (Printf.sprintf "reduce jobs=%d" jobs) expected got)
    [ 1; 3; 64 ]

exception Boom of int

let test_exception_propagation () =
  (* every index >= 50 fails; the caller must see the smallest failing
     index whatever the scheduling *)
  for _ = 1 to 5 do
    match
      Pool.parallel_map ~jobs:4 (fun i -> if i >= 50 then raise (Boom i) else i)
        (Array.init 200 (fun i -> i))
    with
    | _ -> Alcotest.fail "expected Boom"
    | exception Boom i -> Alcotest.(check int) "min failing index" 50 i
  done

let test_nested_calls () =
  (* a parallel call from inside a worker degrades to sequential instead of
     deadlocking *)
  let outer =
    Pool.parallel_init ~jobs:4 8 (fun i ->
        Array.fold_left ( + ) 0 (Pool.parallel_init ~jobs:4 10 (fun j -> (i * 10) + j)))
  in
  let expected = Array.init 8 (fun i -> (100 * i) + 45) in
  Alcotest.(check (array int)) "nested" expected outer

let test_default_jobs_override () =
  let before = Pool.default_jobs () in
  Pool.set_default_jobs 3;
  Alcotest.(check int) "override" 3 (Pool.default_jobs ());
  Pool.set_default_jobs 1000;
  if Pool.default_jobs () > 64 then Alcotest.fail "override must clamp";
  Pool.set_default_jobs before

let test_jobs_validation () =
  (* the one validation point behind --jobs and MIXSYN_JOBS *)
  (match Pool.validate_jobs 4 with
   | Ok 4 -> ()
   | Ok n -> Alcotest.failf "validate_jobs 4 = %d" n
   | Error msg -> Alcotest.failf "validate_jobs 4 rejected: %s" msg);
  (match Pool.validate_jobs 1000 with
   | Ok n when n <= 64 -> ()
   | Ok n -> Alcotest.failf "validate_jobs must clamp, got %d" n
   | Error msg -> Alcotest.failf "validate_jobs 1000 rejected: %s" msg);
  List.iter
    (fun n ->
      match Pool.validate_jobs n with
      | Error _ -> ()
      | Ok m -> Alcotest.failf "validate_jobs %d accepted as %d" n m)
    [ 0; -1; -64 ];
  (match Pool.jobs_of_string " 8 " with
   | Ok 8 -> ()
   | _ -> Alcotest.fail "jobs_of_string must trim and parse");
  List.iter
    (fun s ->
      match Pool.jobs_of_string s with
      | Error _ -> ()
      | Ok n -> Alcotest.failf "jobs_of_string %S accepted as %d" s n)
    [ "0"; "-2"; "many"; "" ];
  List.iter
    (fun n ->
      match Pool.set_default_jobs n with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.failf "set_default_jobs %d must raise" n)
    [ 0; -3 ]

let test_float_results_unboxed_sound () =
  (* results assemble into a flat float array (no option boxing); every
     element must read back exactly, at any jobs/chunk *)
  let input = Array.init 301 (fun i -> float_of_int i) in
  let f x = (x *. 1.5) -. 0.25 in
  let expected = Array.map f input in
  List.iter
    (fun (jobs, chunk) ->
      let got = Pool.parallel_map ~jobs ~chunk f input in
      if got <> expected then
        Alcotest.failf "float parallel_map mismatch at jobs=%d chunk=%d" jobs chunk)
    [ (1, 1); (2, 1); (4, 7); (4, 1000) ];
  (* failure at index 0 exercises the no-successful-piece path *)
  (match
     Pool.parallel_map ~jobs:4 (fun x -> if x = 0.0 then raise (Boom 0) else x) input
   with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 0 -> ()
  | exception Boom i -> Alcotest.failf "wrong index %d" i)

let test_grain_fallback () =
  (* an absurdly high work threshold: after the first (timed) call the
     learned estimate sends later calls down the sequential path, with
     identical results either way *)
  let g = Pool.grain ~min_work_s:1e9 "test.tiny" in
  Alcotest.(check bool) "estimate starts empty" true (Pool.grain_estimate g = None);
  let input = Array.init 64 (fun i -> i) in
  let expected = Array.map succ input in
  let first = Pool.parallel_map ~jobs:4 ~grain:g succ input in
  Alcotest.(check (array int)) "first call" expected first;
  (match Pool.grain_estimate g with
  | Some est -> if est < 0.0 then Alcotest.failf "negative estimate %g" est
  | None -> Alcotest.fail "no estimate learned");
  Mixsyn_util.Telemetry.reset ();
  let second = Pool.parallel_map ~jobs:4 ~grain:g succ input in
  Alcotest.(check (array int)) "second call" expected second;
  if Mixsyn_util.Telemetry.counter "pool.grain_fallbacks" < 1 then
    Alcotest.fail "tiny workload was not routed sequentially";
  (* a zero threshold never falls back *)
  let eager = Pool.grain ~min_work_s:0.0 "test.eager" in
  ignore (Pool.parallel_map ~jobs:4 ~grain:eager succ input);
  Mixsyn_util.Telemetry.reset ();
  ignore (Pool.parallel_map ~jobs:4 ~grain:eager succ input);
  Alcotest.(check int) "no fallback at zero threshold" 0
    (Mixsyn_util.Telemetry.counter "pool.grain_fallbacks")

let test_banded_matches_sequential () =
  (* parallel_banded must agree with a plain index map at any jobs/band
     size, including bands that don't divide n *)
  let n = 257 in
  let expected = Array.init n (fun i -> (i * 3) + 1 ) in
  let f start len = Array.init len (fun k -> ((start + k) * 3) + 1) in
  List.iter
    (fun (jobs, chunk) ->
      let got = Pool.parallel_banded ~jobs ?chunk n f in
      if got <> expected then
        Alcotest.failf "parallel_banded mismatch at jobs=%d chunk=%s" jobs
          (match chunk with Some c -> string_of_int c | None -> "auto"))
    [ (1, None); (4, None); (4, Some 1); (4, Some 7); (4, Some 64); (4, Some 10_000);
      (64, Some 3) ];
  Alcotest.(check (array int)) "empty" [||] (Pool.parallel_banded ~jobs:4 0 f);
  (* a band returning the wrong number of results is a caller bug *)
  (match Pool.parallel_banded ~jobs:4 ~chunk:8 16 (fun _ len -> Array.make (len + 1) 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong band length must raise");
  (match Pool.parallel_banded ~jobs:2 (-1) f with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative n must raise");
  (* exception determinism at band granularity: the smallest failing band
     wins whatever the scheduling *)
  for _ = 1 to 5 do
    match
      Pool.parallel_banded ~jobs:4 ~chunk:10 200 (fun start len ->
          if start + len > 50 then raise (Boom start) else Array.make len 0)
    with
    | _ -> Alcotest.fail "expected Boom"
    | exception Boom i -> Alcotest.(check int) "min failing band" 50 i
  done

let test_small_sweep_fallback () =
  (* the ac-sweep 0.52x regression: a sub-threshold sweep must take the
     sequential path once the grain has a seconds-per-item estimate,
     instead of paying domain fan-out for microseconds of work *)
  let nl = Top.miller_ota.Tp.build tech (Tp.midpoint Top.miller_ota) in
  let op = Mixsyn_engine.Dc.solve ~tech nl in
  let freqs =
    Mixsyn_engine.Ac.log_sweep ~decades_from:0.0 ~decades_to:8.0 ~points_per_decade:5
  in
  (* first call may probe in parallel; it teaches the grain the per-item cost *)
  let first = Mixsyn_engine.Ac.solve ~tech ~jobs:4 nl op ~freqs in
  Mixsyn_util.Telemetry.reset ();
  let second = Mixsyn_engine.Ac.solve ~tech ~jobs:4 nl op ~freqs in
  if first.Mixsyn_engine.Ac.solutions <> second.Mixsyn_engine.Ac.solutions then
    Alcotest.fail "fallback changed the sweep's results";
  if Mixsyn_util.Telemetry.counter "pool.grain_fallbacks" < 1 then
    Alcotest.fail "a 41-point sweep was not routed down the sequential path"

let test_worker_minor_heap_knob () =
  let before = Pool.worker_minor_heap_words () in
  Pool.set_worker_minor_heap_words (1 lsl 20);
  Alcotest.(check int) "roundtrip" (1 lsl 20) (Pool.worker_minor_heap_words ());
  List.iter
    (fun n ->
      match Pool.set_worker_minor_heap_words n with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.failf "minor heap of %d words accepted" n)
    [ 0; -1; 1 lsl 10 ];
  Pool.set_worker_minor_heap_words before;
  (* workers spawned with the configured heap still compute correctly *)
  Alcotest.(check (array int)) "pool functional" [| 1; 2; 3; 4 |]
    (Pool.parallel_init ~jobs:4 4 (fun i -> i + 1))

let test_sequential_scope () =
  (* inside the scope, parallel calls degrade to sequential (the calling
     domain is marked as a pool participant); the flag restores on exit,
     including on raise *)
  let inside =
    Pool.sequential_scope (fun () ->
        Pool.parallel_init ~jobs:8 6 (fun i -> i * i))
  in
  Alcotest.(check (array int)) "scope results" [| 0; 1; 4; 9; 16; 25 |] inside;
  (try Pool.sequential_scope (fun () -> failwith "x") with Failure _ -> ());
  let after = Pool.parallel_init ~jobs:4 4 (fun i -> i + 1) in
  Alcotest.(check (array int)) "pool usable after scope raise" [| 1; 2; 3; 4 |] after

(* --- RNG stream independence ------------------------------------------- *)

let test_split_n_streams () =
  let streams = Rng.split_n (Rng.create 42) 4 in
  Alcotest.(check int) "stream count" 4 (Array.length streams);
  let draws = Array.map (fun rng -> List.init 16 (fun _ -> Rng.int rng 1_000_000_000)) streams in
  (* streams must be pairwise distinct... *)
  Array.iteri
    (fun i di ->
      Array.iteri
        (fun j dj -> if i < j && di = dj then Alcotest.failf "streams %d and %d collide" i j)
        draws)
    draws;
  (* ...and reproducible from the same parent seed *)
  let again = Rng.split_n (Rng.create 42) 4 in
  Array.iteri
    (fun i rng ->
      let d = List.init 16 (fun _ -> Rng.int rng 1_000_000_000) in
      if d <> draws.(i) then Alcotest.failf "stream %d not reproducible" i)
    again;
  Alcotest.(check (array int)) "split_n 0" [||]
    (Array.map (fun _ -> 0) (Rng.split_n (Rng.create 1) 0))

(* --- seq-vs-parallel equality on the wired loops ------------------------ *)

let test_corner_search_jobs_invariant () =
  let violation (c : Mixsyn_circuit.Tech.corner) =
    Float.abs c.Mixsyn_circuit.Tech.d_vdd
    +. (0.01 *. Float.abs c.Mixsyn_circuit.Tech.d_temp)
    +. Float.abs c.Mixsyn_circuit.Tech.d_vth
    +. Float.abs c.Mixsyn_circuit.Tech.d_kp
  in
  let run jobs = CS.worst_corner ~refine:false ~jobs ~violation () in
  let c1, v1, e1 = run 1 and c4, v4, e4 = run 4 in
  Alcotest.(check (float 0.0)) "violation" v1 v4;
  Alcotest.(check int) "evals" e1 e4;
  if c1 <> c4 then Alcotest.fail "corner differs between jobs=1 and jobs=4"

let test_multistart_jobs_invariant () =
  let problem =
    { Anneal.initial = [| 8.0; -6.0 |];
      cost = (fun x -> ((x.(0) -. 2.0) ** 2.0) +. ((x.(1) +. 1.0) ** 2.0));
      neighbor =
        (fun rng ~temp01 x ->
          let x' = Array.copy x in
          let i = Rng.int rng 2 in
          x'.(i) <- x'.(i) +. (Rng.uniform rng (-1.0) 1.0 *. (0.1 +. temp01));
          x') }
  in
  let schedule = { Anneal.t_start = 10.0; t_end = 1e-4; cooling = 0.9; moves_per_stage = 60 } in
  let run jobs =
    Anneal.minimize_multistart ~schedule ~jobs ~restarts:4 ~rng:(Rng.create 7) problem
  in
  let a = run 1 and b = run 4 in
  if a <> b then Alcotest.fail "multistart outcome differs between jobs=1 and jobs=4";
  (* restarts = 1 consumes the rng directly, exactly like minimize *)
  let single = Anneal.minimize_multistart ~schedule ~jobs:4 ~restarts:1 ~rng:(Rng.create 7) problem in
  let direct = Anneal.minimize ~schedule ~rng:(Rng.create 7) problem in
  if single <> direct then Alcotest.fail "restarts=1 must equal plain minimize";
  (match
     Anneal.minimize_multistart ~schedule ~restarts:0 ~rng:(Rng.create 7) problem
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "restarts=0 must raise")

let test_genetic_jobs_invariant () =
  let fitness x = -.(((x.(0) -. 0.3) ** 2.0) +. ((x.(1) +. 0.8) ** 2.0)) in
  let options = { GA.default_options with GA.population = 24; generations = 12 } in
  let run jobs =
    GA.optimize_real ~options ~jobs ~rng:(Rng.create 11) ~lower:[| -2.0; -2.0 |]
      ~upper:[| 2.0; 2.0 |] ~fitness ()
  in
  let a = run 1 and b = run 3 in
  if a <> b then Alcotest.fail "GA result differs between jobs=1 and jobs=3"

let test_sweeps_jobs_invariant () =
  let nl = Top.miller_ota.Tp.build tech (Tp.midpoint Top.miller_ota) in
  let op = Mixsyn_engine.Dc.solve ~tech nl in
  let freqs =
    Mixsyn_engine.Ac.log_sweep ~decades_from:0.0 ~decades_to:9.0 ~points_per_decade:7
  in
  let ac1 = Mixsyn_engine.Ac.solve ~tech ~jobs:1 nl op ~freqs in
  let ac4 = Mixsyn_engine.Ac.solve ~tech ~jobs:4 nl op ~freqs in
  if ac1.Mixsyn_engine.Ac.solutions <> ac4.Mixsyn_engine.Ac.solutions then
    Alcotest.fail "AC solutions differ between jobs=1 and jobs=4";
  (* nor may the band size change anything *)
  List.iter
    (fun chunk ->
      let ac = Mixsyn_engine.Ac.solve ~tech ~jobs:4 ~chunk nl op ~freqs in
      if ac.Mixsyn_engine.Ac.solutions <> ac1.Mixsyn_engine.Ac.solutions then
        Alcotest.failf "AC solutions differ at chunk=%d" chunk)
    [ 1; 5; 1000 ];
  let out = Mixsyn_circuit.Netlist.find_net nl "out" in
  let n1 = Mixsyn_engine.Noise.analyze ~tech ~jobs:1 nl op ~out ~freqs in
  let n4 = Mixsyn_engine.Noise.analyze ~tech ~jobs:4 nl op ~out ~freqs in
  if n1 <> n4 then Alcotest.fail "noise analysis differs between jobs=1 and jobs=4"

let test_koan_jobs_invariant () =
  (* the eager parallel placement-attempt evaluation must reproduce the
     lazy loop's report exactly *)
  let nl = Top.ota_5t.Tp.build tech (Tp.midpoint Top.ota_5t) in
  let r1 = Mixsyn_layout.Cell_flow.koan ~seed:23 ~jobs:1 nl in
  let r4 = Mixsyn_layout.Cell_flow.koan ~seed:23 ~jobs:4 nl in
  if r1 <> r4 then Alcotest.fail "koan report differs between jobs=1 and jobs=4"

(* --- branch-index hashtable -------------------------------------------- *)

let test_branch_index_table () =
  let nl = Top.miller_ota.Tp.build tech (Tp.midpoint Top.miller_ota) in
  let layout = Mixsyn_engine.Mna.layout_of nl in
  Array.iteri
    (fun i name ->
      Alcotest.(check int)
        (Printf.sprintf "branch %s" name)
        (layout.Mixsyn_engine.Mna.nets - 1 + i)
        (Mixsyn_engine.Mna.branch_index layout name))
    layout.Mixsyn_engine.Mna.branch_names;
  match Mixsyn_engine.Mna.branch_index layout "no-such-source" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown branch must raise Not_found"

let () =
  Alcotest.run "pool"
    [ ( "core",
        [ Alcotest.test_case "map matches sequential" `Quick test_map_matches_sequential;
          Alcotest.test_case "map edge cases" `Quick test_map_edge_cases;
          Alcotest.test_case "chunk granularity" `Quick test_chunk_granularity;
          Alcotest.test_case "reduce in index order" `Quick test_reduce_index_order;
          Alcotest.test_case "min-index exception" `Quick test_exception_propagation;
          Alcotest.test_case "nested calls" `Quick test_nested_calls;
          Alcotest.test_case "default-jobs override" `Quick test_default_jobs_override;
          Alcotest.test_case "jobs validation" `Quick test_jobs_validation;
          Alcotest.test_case "float results unboxed" `Quick test_float_results_unboxed_sound;
          Alcotest.test_case "grain fallback" `Quick test_grain_fallback;
          Alcotest.test_case "banded map" `Quick test_banded_matches_sequential;
          Alcotest.test_case "small sweep falls back" `Quick test_small_sweep_fallback;
          Alcotest.test_case "worker minor-heap knob" `Quick test_worker_minor_heap_knob;
          Alcotest.test_case "sequential scope" `Quick test_sequential_scope ] );
      ( "rng",
        [ Alcotest.test_case "split_n streams" `Quick test_split_n_streams ] );
      ( "wired-loops",
        [ Alcotest.test_case "corner search" `Quick test_corner_search_jobs_invariant;
          Alcotest.test_case "anneal multistart" `Quick test_multistart_jobs_invariant;
          Alcotest.test_case "genetic fitness" `Quick test_genetic_jobs_invariant;
          Alcotest.test_case "ac + noise sweeps" `Quick test_sweeps_jobs_invariant;
          Alcotest.test_case "koan attempts" `Slow test_koan_jobs_invariant ] );
      ( "mna",
        [ Alcotest.test_case "branch index table" `Quick test_branch_index_table ] ) ]
