(* Batch synthesis tests: manifest parsing, the failure taxonomy (raise /
   timeout / retry), and the checkpoint journal's determinism contract —
   byte-identical output at any job count, after interruption, and after
   resuming from a torn trailing line. *)

module Batch = Mixsyn_flow.Batch
module Json = Mixsyn_util.Json
module Cancel = Mixsyn_util.Cancel
module Spec = Mixsyn_synth.Spec

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let temp_journal () =
  let path = Filename.temp_file "msyn_test_batch" ".journal" in
  Sys.remove path;
  path

(* a deterministic stand-in executor: no flow, just a value derived from
   the job and seed, so journal bytes depend on nothing else *)
let cheap_executor (job : Batch.job) ~seed =
  Json.Obj
    [ ("echo", Json.Str job.Batch.job_id);
      ("value", Json.Num (float_of_int (seed * 2) +. 0.5)) ]

let manifest_exn text =
  match Batch.manifest_of_string text with
  | Ok jobs -> jobs
  | Error msg -> Alcotest.failf "manifest rejected: %s" msg

let simple_manifest n =
  manifest_exn
    (String.concat "\n"
       (List.init n (fun i -> Printf.sprintf "{\"id\": \"j%02d\", \"seed\": %d}" i (i + 1))))

(* --- manifest parsing --------------------------------------------------- *)

let test_manifest_parse () =
  let jobs =
    manifest_exn
      {|# a comment line
{"id": "a", "seed": 7, "specs": [{"name": "gain_db", "at_least": 60.0}, {"name": "offset_v", "at_most": 1e-3, "weight": 2.0}, {"name": "ugf_hz", "between": [1e6, 1e8]}], "objectives": [{"maximize": "gain_db"}], "context": {"cl": 5e-12}, "topology": "miller-ota", "max_redesigns": 1, "timeout_s": 9.5}

{"id": "b"}
|}
  in
  match jobs with
  | [ a; b ] ->
    Alcotest.(check string) "id" "a" a.Batch.job_id;
    Alcotest.(check int) "seed" 7 a.Batch.seed;
    Alcotest.(check int) "specs" 3 (List.length a.Batch.specs);
    (match a.Batch.specs with
     | [ s1; s2; s3 ] ->
       (match s1.Spec.bound with
        | Spec.At_least v -> Alcotest.(check (float 0.0)) "at_least" 60.0 v
        | _ -> Alcotest.fail "s1 bound");
       (match s2.Spec.bound with
        | Spec.At_most v -> Alcotest.(check (float 0.0)) "at_most" 1e-3 v
        | _ -> Alcotest.fail "s2 bound");
       Alcotest.(check (float 0.0)) "weight" 2.0 s2.Spec.weight;
       (match s3.Spec.bound with
        | Spec.Between (lo, hi) ->
          Alcotest.(check (float 0.0)) "lo" 1e6 lo;
          Alcotest.(check (float 0.0)) "hi" 1e8 hi
        | _ -> Alcotest.fail "s3 bound")
     | _ -> Alcotest.fail "spec shapes");
    Alcotest.(check (option string)) "topology" (Some "miller-ota") a.Batch.topology;
    Alcotest.(check (option int)) "max_redesigns" (Some 1) a.Batch.max_redesigns;
    (match a.Batch.timeout_s with
     | Some t -> Alcotest.(check (float 0.0)) "timeout_s" 9.5 t
     | None -> Alcotest.fail "timeout_s missing");
    Alcotest.(check (list (pair string (float 0.0)))) "context" [ ("cl", 5e-12) ]
      a.Batch.context;
    (* defaults on the minimal job *)
    Alcotest.(check string) "default id" "b" b.Batch.job_id;
    Alcotest.(check int) "default seed" 13 b.Batch.seed;
    Alcotest.(check int) "default objectives" 1 (List.length b.Batch.objectives);
    Alcotest.(check bool) "no fault" true (b.Batch.fault = None)
  | l -> Alcotest.failf "expected 2 jobs, got %d" (List.length l)

let test_manifest_rejects () =
  let reject ?needle text =
    match Batch.manifest_of_string text with
    | Ok _ -> Alcotest.failf "manifest accepted: %s" text
    | Error msg ->
      (match needle with
       | None -> ()
       | Some n ->
         let nl = String.length n and ml = String.length msg in
         let rec scan i = i + nl <= ml && (String.sub msg i nl = n || scan (i + 1)) in
         if not (scan 0) then Alcotest.failf "error %S lacks %S" msg n)
  in
  reject ~needle:"duplicate" "{\"id\": \"x\"}\n{\"id\": \"x\"}";
  reject ~needle:"no jobs" "# only a comment\n";
  reject ~needle:"line 2" "{\"id\": \"ok\"}\n{\"id\": \"bad\", \"seed\": }";
  reject ~needle:"\"id\"" "{\"seed\": 3}";
  reject ~needle:"fault" "{\"id\": \"x\", \"fault\": \"explode\"}";
  reject ~needle:"bound" "{\"id\": \"x\", \"specs\": [{\"name\": \"gain_db\", \"at_least\": 1.0, \"at_most\": 2.0}]}";
  reject "{\"id\": \"x\", \"specs\": [{\"name\": \"gain_db\"}]}";
  reject "{\"id\": \"x\", \"objectives\": [{\"minimize\": \"a\", \"maximize\": \"b\"}]}"

let test_record_roundtrip () =
  let records =
    [ { Batch.rec_id = "ok"; rec_seed = 4; attempts = 1;
        status = Batch.Completed (Json.Obj [ ("v", Json.Num 1.25) ]) };
      { Batch.rec_id = "bad"; rec_seed = 1_000_007; attempts = 2;
        status = Batch.Failed { Batch.error = "check-failed"; diagnostics = [ "drc.x a: b" ] } };
      { Batch.rec_id = "slow"; rec_seed = 9; attempts = 1; status = Batch.Timed_out };
      { Batch.rec_id = "hopeless"; rec_seed = 3; attempts = 0;
        status =
          Batch.Infeasible
            { Batch.inf_spec = "gain_db"; inf_bound = "at least 1000";
              inf_lo = -30.0; inf_hi = 121.5 } } ]
  in
  List.iter
    (fun r ->
      let json = Batch.record_to_json r in
      match Batch.record_of_json json with
      | Ok r' when r' = r -> ()
      | Ok _ -> Alcotest.failf "record %s did not round-trip" r.Batch.rec_id
      | Error msg -> Alcotest.failf "record %s rejected: %s" r.Batch.rec_id msg)
    records

(* --- run_job: the failure taxonomy -------------------------------------- *)

let job_with ?fault ?timeout_s id =
  match
    Batch.manifest_of_string (Printf.sprintf "{\"id\": %S, \"seed\": 3}" id)
  with
  | Ok [ j ] -> { j with Batch.fault; timeout_s }
  | _ -> assert false

let test_run_job_completes () =
  let r = Batch.run_job ~executor:cheap_executor (job_with "fine") in
  Alcotest.(check int) "attempts" 1 r.Batch.attempts;
  Alcotest.(check int) "seed" 3 r.Batch.rec_seed;
  match r.Batch.status with
  | Batch.Completed (Json.Obj fields) ->
    Alcotest.(check bool) "echoes id" true
      (List.assoc_opt "echo" fields = Some (Json.Str "fine"))
  | _ -> Alcotest.fail "expected Completed"

let test_run_job_raise_fault () =
  let r = Batch.run_job ~executor:cheap_executor (job_with ~fault:Batch.Raise "boom") in
  match r.Batch.status with
  | Batch.Failed f ->
    Alcotest.(check bool) "classified" true
      (String.length f.Batch.error >= 8 && String.sub f.Batch.error 0 8 = "failure:")
  | _ -> Alcotest.fail "expected Failed"

let test_run_job_timeout () =
  let r =
    Batch.run_job ~executor:cheap_executor ~retries:3
      (job_with ~fault:Batch.Hang ~timeout_s:0.05 "spin")
  in
  Alcotest.(check bool) "timed out" true (r.Batch.status = Batch.Timed_out);
  (* timeouts are terminal, never retried *)
  Alcotest.(check int) "single attempt" 1 r.Batch.attempts

let test_run_job_per_job_timeout_overrides () =
  (* batch-wide 60s, per-job 0.05s: the per-job bound must win *)
  let t0 = Unix.gettimeofday () in
  let r =
    Batch.run_job ~executor:cheap_executor ~timeout_s:60.0
      (job_with ~fault:Batch.Hang ~timeout_s:0.05 "spin")
  in
  Alcotest.(check bool) "timed out" true (r.Batch.status = Batch.Timed_out);
  if Unix.gettimeofday () -. t0 > 10.0 then Alcotest.fail "per-job timeout ignored"

let test_run_job_retries_perturb_seed () =
  let seeds = ref [] in
  let executor (_ : Batch.job) ~seed =
    seeds := seed :: !seeds;
    if List.length !seeds < 3 then failwith "flaky" else Json.Num (float_of_int seed)
  in
  let r = Batch.run_job ~executor ~retries:2 (job_with "flaky") in
  Alcotest.(check int) "attempts" 3 r.Batch.attempts;
  Alcotest.(check (list int)) "deterministic seed schedule"
    [ 3; 3 + 1_000_003; 3 + (2 * 1_000_003) ]
    (List.rev !seeds);
  Alcotest.(check int) "recorded seed is the succeeding one" (3 + (2 * 1_000_003))
    r.Batch.rec_seed;
  match r.Batch.status with
  | Batch.Completed _ -> ()
  | _ -> Alcotest.fail "retry should have succeeded"

let test_run_job_retries_exhausted () =
  let calls = ref 0 in
  let executor (_ : Batch.job) ~seed:_ = incr calls; failwith "always" in
  let r = Batch.run_job ~executor ~retries:2 (job_with "doomed") in
  Alcotest.(check int) "three attempts" 3 !calls;
  match r.Batch.status with
  | Batch.Failed f -> Alcotest.(check string) "error" "failure: always" f.Batch.error
  | _ -> Alcotest.fail "expected Failed"

(* --- the journal contract ----------------------------------------------- *)

let run_to_journal ?jobs ?timeout_s ?retries manifest =
  let journal = temp_journal () in
  let summary =
    Batch.run ?jobs ?timeout_s ?retries ~executor:cheap_executor ~journal manifest
  in
  let bytes = read_file journal in
  Sys.remove journal;
  (summary, bytes)

let test_journal_jobs_invariant () =
  let manifest = simple_manifest 17 in
  let s1, b1 = run_to_journal ~jobs:1 manifest in
  Alcotest.(check int) "all completed" 17 s1.Batch.completed;
  List.iter
    (fun jobs ->
      let s, b = run_to_journal ~jobs manifest in
      Alcotest.(check int) (Printf.sprintf "completed at jobs=%d" jobs) 17 s.Batch.completed;
      if not (String.equal b1 b) then
        Alcotest.failf "journal bytes differ between jobs=1 and jobs=%d" jobs)
    [ 2; 4 ]

let test_journal_resume_skips () =
  let manifest = simple_manifest 9 in
  let journal = temp_journal () in
  let _, full_bytes = run_to_journal ~jobs:1 manifest in
  (* first run executes only a prefix: simulate by pre-writing 4 records *)
  let prefix =
    let lines = String.split_on_char '\n' full_bytes in
    String.concat "\n" (List.filteri (fun i _ -> i < 4) lines) ^ "\n"
  in
  write_file journal prefix;
  let calls = ref [] in
  let executor (job : Batch.job) ~seed =
    calls := job.Batch.job_id :: !calls;
    cheap_executor job ~seed
  in
  let s = Batch.run ~jobs:2 ~executor ~journal manifest in
  Alcotest.(check int) "skipped" 4 s.Batch.skipped;
  Alcotest.(check int) "total" 9 s.Batch.total;
  Alcotest.(check int) "completed counts the whole manifest" 9 s.Batch.completed;
  Alcotest.(check (list string)) "only pending jobs executed"
    [ "j04"; "j05"; "j06"; "j07"; "j08" ]
    (List.sort compare !calls);
  Alcotest.(check string) "resumed journal identical" full_bytes (read_file journal);
  Sys.remove journal

let test_journal_resume_truncated_line () =
  let manifest = simple_manifest 7 in
  let journal = temp_journal () in
  let _, full_bytes = run_to_journal ~jobs:1 manifest in
  let prefix =
    let lines = String.split_on_char '\n' full_bytes in
    String.concat "\n" (List.filteri (fun i _ -> i < 3) lines) ^ "\n"
  in
  (* interruption damage: a record cut mid-write, no trailing newline *)
  write_file journal (prefix ^ "{\"id\":\"j03\",\"seed\":4,\"att");
  let s = Batch.run ~jobs:2 ~executor:cheap_executor ~journal manifest in
  Alcotest.(check int) "only intact records skip" 3 s.Batch.skipped;
  Alcotest.(check string) "repaired journal identical" full_bytes (read_file journal);
  Sys.remove journal

let test_journal_foreign_record_rejected () =
  let manifest = simple_manifest 3 in
  let journal = temp_journal () in
  write_file journal "{\"id\":\"stranger\",\"seed\":1,\"attempts\":1,\"status\":\"timed_out\"}\n";
  (match Batch.run ~jobs:1 ~executor:cheap_executor ~journal manifest with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "journal with foreign id must be rejected");
  Sys.remove journal

let test_run_rejects_bad_args () =
  let manifest = simple_manifest 2 in
  (match Batch.run ~retries:(-1) ~executor:cheap_executor ~journal:"/dev/null" manifest with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "negative retries must be rejected");
  let dup = [ List.hd manifest; List.hd manifest ] in
  match Batch.run ~executor:cheap_executor ~journal:"/dev/null" dup with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate ids must be rejected"

let test_faults_recorded_others_complete () =
  let manifest =
    manifest_exn
      (String.concat "\n"
         [ "{\"id\": \"good-1\", \"seed\": 1}";
           "{\"id\": \"bad\", \"seed\": 2, \"fault\": \"raise\"}";
           "{\"id\": \"good-2\", \"seed\": 3}";
           "{\"id\": \"slow\", \"seed\": 4, \"fault\": \"hang\", \"timeout_s\": 0.05}";
           "{\"id\": \"good-3\", \"seed\": 5}" ])
  in
  let s, bytes = run_to_journal ~jobs:2 manifest in
  Alcotest.(check int) "completed" 3 s.Batch.completed;
  Alcotest.(check int) "failed" 1 s.Batch.failed;
  Alcotest.(check int) "timed out" 1 s.Batch.timed_out;
  (* the journal stays in manifest order whatever finished first *)
  let ids =
    List.filter_map
      (fun line ->
        if line = "" then None
        else
          match Json.parse line with
          | Ok json -> Option.bind (Json.member "id" json) Json.to_str
          | Error _ -> None)
      (String.split_on_char '\n' bytes)
  in
  Alcotest.(check (list string)) "manifest order"
    [ "good-1"; "bad"; "good-2"; "slow"; "good-3" ] ids

let test_summary_json_shape () =
  let manifest = simple_manifest 3 in
  let s, _ = run_to_journal ~jobs:1 manifest in
  let json = Batch.summary_to_json s in
  Alcotest.(check (option (float 0.0))) "total" (Some 3.0)
    (Option.bind (Json.member "total" json) Json.to_float);
  Alcotest.(check (option (float 0.0))) "completed" (Some 3.0)
    (Option.bind (Json.member "completed" json) Json.to_float);
  match Option.bind (Json.member "records" json) Json.to_list with
  | Some l -> Alcotest.(check int) "records" 3 (List.length l)
  | None -> Alcotest.fail "summary lacks records"

(* --- the static prefilter ------------------------------------------------ *)

let infeasible_line ?(extra = "") id =
  Printf.sprintf
    "{\"id\": %S, \"seed\": 5, \"specs\": [{\"name\": \"gain_db\", \"at_least\": 1000.0}], \"topology\": \"ota-5t\"%s}"
    id extra

let test_prefilter_skips_infeasible () =
  let manifest =
    manifest_exn
      (String.concat "\n"
         [ "{\"id\": \"fine\", \"seed\": 1}"; infeasible_line "hopeless";
           "{\"id\": \"fine-2\", \"seed\": 2}" ])
  in
  let called = ref [] in
  let executor (job : Batch.job) ~seed =
    called := job.Batch.job_id :: !called;
    cheap_executor job ~seed
  in
  let journal = temp_journal () in
  let s = Batch.run ~jobs:1 ~executor ~journal manifest in
  Sys.remove journal;
  Alcotest.(check int) "prefiltered" 1 s.Batch.prefiltered;
  Alcotest.(check int) "completed" 2 s.Batch.completed;
  Alcotest.(check (list string)) "executor never saw the hopeless job"
    [ "fine"; "fine-2" ] (List.sort compare !called);
  match List.find (fun r -> r.Batch.rec_id = "hopeless") s.Batch.records with
  | { Batch.status = Batch.Infeasible inf; attempts = 0; _ } ->
    Alcotest.(check string) "names the spec" "gain_db" inf.Batch.inf_spec;
    Alcotest.(check string) "names the bound" "at least 1000" inf.Batch.inf_bound;
    Alcotest.(check bool) "enclosure excludes the bound" true (inf.Batch.inf_hi < 1000.0)
  | r ->
    Alcotest.failf "hopeless job recorded with attempts=%d and the wrong status"
      r.Batch.attempts

let test_prefilter_optional () =
  let manifest =
    manifest_exn (String.concat "\n" [ "{\"id\": \"fine\", \"seed\": 1}"; infeasible_line "hopeless" ])
  in
  let journal = temp_journal () in
  let s = Batch.run ~jobs:1 ~prefilter:false ~executor:cheap_executor ~journal manifest in
  Sys.remove journal;
  (* the cheap executor happily "completes" the impossible job: with the
     prefilter off every job must reach the executor *)
  Alcotest.(check int) "nothing prefiltered" 0 s.Batch.prefiltered;
  Alcotest.(check int) "all executed" 2 s.Batch.completed

let test_prefilter_never_skips_faults () =
  (* fault-injected jobs exist to exercise the failure taxonomy; an
     impossible spec must not divert them from the executor *)
  let manifest = manifest_exn (infeasible_line ~extra:", \"fault\": \"raise\"" "trap") in
  let journal = temp_journal () in
  let s = Batch.run ~jobs:1 ~executor:cheap_executor ~journal manifest in
  Sys.remove journal;
  Alcotest.(check int) "nothing prefiltered" 0 s.Batch.prefiltered;
  match (List.hd s.Batch.records).Batch.status with
  | Batch.Failed _ -> ()
  | _ -> Alcotest.fail "fault job must fail in the executor, not prefilter"

let test_prefilter_journal_jobs_invariant () =
  let manifest =
    manifest_exn
      (String.concat "\n"
         (infeasible_line "hopeless-0"
          :: List.init 6 (fun i -> Printf.sprintf "{\"id\": \"j%d\", \"seed\": %d}" i (i + 1))
         @ [ infeasible_line "hopeless-1" ]))
  in
  let run jobs =
    let journal = temp_journal () in
    let s = Batch.run ~jobs ~executor:cheap_executor ~journal manifest in
    let bytes = read_file journal in
    Sys.remove journal;
    (s, bytes)
  in
  let s1, b1 = run 1 in
  Alcotest.(check int) "prefiltered" 2 s1.Batch.prefiltered;
  Alcotest.(check int) "completed" 6 s1.Batch.completed;
  List.iter
    (fun jobs ->
      let s, b = run jobs in
      Alcotest.(check int) (Printf.sprintf "prefiltered at jobs=%d" jobs) 2 s.Batch.prefiltered;
      if not (String.equal b1 b) then
        Alcotest.failf "prefiltered journal bytes differ between jobs=1 and jobs=%d" jobs)
    [ 2; 4 ]

(* --- the cross-job stage cache ------------------------------------------ *)

let test_stage_cache_journal_invariant () =
  (* a repeated-spec manifest through the real sizing stage: the journal
     must be byte-identical at jobs {1,2,4} with the cache on or off, and
     the cached runs must actually hit *)
  let manifest =
    manifest_exn
      (String.concat "\n"
         (List.init 6 (fun i ->
              Printf.sprintf
                "{\"id\": \"c%d\", \"seed\": 11, \"specs\": [{\"name\": \"gain_db\", \"at_least\": %.1f}], \"objectives\": [{\"minimize\": \"power_w\"}], \"topology\": \"ota-5t\"}"
                i
                (30.0 +. float_of_int (i mod 2)))))
  in
  let schedule =
    { Mixsyn_opt.Anneal.t_start = 5.0; t_end = 0.5; cooling = 0.7; moves_per_stage = 40 }
  in
  let sizing_executor ~stage_cache (job : Batch.job) ~seed =
    let r =
      Mixsyn_flow.Flow.size_stage ~strategy:Mixsyn_synth.Sizing.Equation_annealing
        ~schedule ~stage_cache ~seed ~context:job.Batch.context ~specs:job.Batch.specs
        ~objectives:job.Batch.objectives Mixsyn_circuit.Topology.ota_5t
    in
    Json.Obj
      [ ("cost", Json.Num r.Mixsyn_synth.Sizing.cost);
        ("evaluations", Json.Num (float_of_int r.Mixsyn_synth.Sizing.evaluations)) ]
  in
  let run ~stage_cache jobs =
    let journal = temp_journal () in
    let s =
      Batch.run ~jobs ~prefilter:false ~executor:(sizing_executor ~stage_cache) ~journal
        manifest
    in
    let bytes = read_file journal in
    Sys.remove journal;
    (s, bytes)
  in
  let _, reference = run ~stage_cache:false 1 in
  List.iter
    (fun jobs ->
      List.iter
        (fun stage_cache ->
          let s, bytes = run ~stage_cache jobs in
          Alcotest.(check int)
            (Printf.sprintf "completed at jobs=%d cache=%b" jobs stage_cache)
            6 s.Batch.completed;
          if stage_cache && s.Batch.cache_hits + s.Batch.cache_misses < 6 then
            Alcotest.failf "cached run at jobs=%d never consulted the cache" jobs;
          if not (String.equal reference bytes) then
            Alcotest.failf "journal bytes differ at jobs=%d stage_cache=%b" jobs
              stage_cache)
        [ false; true ])
    [ 1; 2; 4 ];
  (* once warm, a repeat run resolves every job from the cache *)
  let s, bytes = run ~stage_cache:true 4 in
  Alcotest.(check int) "warm run misses nothing" 0 s.Batch.cache_misses;
  if s.Batch.cache_hits < 6 then Alcotest.fail "warm run should hit on every job";
  if not (String.equal reference bytes) then
    Alcotest.fail "warm cached journal differs from the uncached reference"

(* --- work-stealing order is unobservable --------------------------------- *)

let prop_stealing_order_invariant =
  QCheck.Test.make ~name:"work-stealing order never changes a journal record"
    ~count:20
    QCheck.(triple (int_range 0 100_000) (int_range 1 12) (int_range 2 4))
    (fun (salt, n, workers) ->
      (* jobs with salt-derived seeds and deliberately skewed costs: the
         busy-work makes some jobs orders of magnitude heavier, so the
         stealing order genuinely varies between runs *)
      let manifest =
        manifest_exn
          (String.concat "\n"
             (List.init n (fun i ->
                  Printf.sprintf "{\"id\": \"q%02d\", \"seed\": %d}" i
                    (1 + ((salt + (i * 7919)) mod 1000)))))
      in
      let executor (job : Batch.job) ~seed =
        let spin = (seed * 31) mod 997 in
        let acc = ref 0.0 in
        for k = 1 to spin * 50 do
          acc := !acc +. sqrt (float_of_int k)
        done;
        Json.Obj
          [ ("echo", Json.Str job.Batch.job_id);
            ("value", Json.Num (float_of_int seed +. (!acc -. !acc))) ]
      in
      let run jobs =
        let journal = temp_journal () in
        ignore (Batch.run ~jobs ~executor ~journal manifest);
        let bytes = read_file journal in
        Sys.remove journal;
        bytes
      in
      String.equal (run 1) (run workers))

(* --- a real flow under the timeout -------------------------------------- *)

let test_flow_executor_times_out () =
  (* an impossible specification would grind for minutes; the cooperative
     guards inside Flow.run must surface the cancel in well under that *)
  let manifest =
    manifest_exn
      "{\"id\": \"doomed\", \"seed\": 13, \"specs\": [{\"name\": \"gain_db\", \"at_least\": 200.0}], \"topology\": \"miller-ota\", \"timeout_s\": 0.3}"
  in
  let t0 = Unix.gettimeofday () in
  let r = Batch.run_job (List.hd manifest) in
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "timed out" true (r.Batch.status = Batch.Timed_out);
  if dt > 30.0 then Alcotest.failf "cancellation took %.1fs" dt

let () =
  Alcotest.run "batch"
    [ ( "manifest",
        [ Alcotest.test_case "parse" `Quick test_manifest_parse;
          Alcotest.test_case "rejects" `Quick test_manifest_rejects;
          Alcotest.test_case "record roundtrip" `Quick test_record_roundtrip ] );
      ( "run-job",
        [ Alcotest.test_case "completes" `Quick test_run_job_completes;
          Alcotest.test_case "raise fault" `Quick test_run_job_raise_fault;
          Alcotest.test_case "timeout" `Quick test_run_job_timeout;
          Alcotest.test_case "per-job timeout wins" `Quick test_run_job_per_job_timeout_overrides;
          Alcotest.test_case "retry seeds" `Quick test_run_job_retries_perturb_seed;
          Alcotest.test_case "retries exhausted" `Quick test_run_job_retries_exhausted ] );
      ( "journal",
        [ Alcotest.test_case "jobs invariant" `Quick test_journal_jobs_invariant;
          Alcotest.test_case "resume skips" `Quick test_journal_resume_skips;
          Alcotest.test_case "torn line resume" `Quick test_journal_resume_truncated_line;
          Alcotest.test_case "foreign record" `Quick test_journal_foreign_record_rejected;
          Alcotest.test_case "bad arguments" `Quick test_run_rejects_bad_args;
          Alcotest.test_case "faults isolated" `Quick test_faults_recorded_others_complete;
          Alcotest.test_case "summary json" `Quick test_summary_json_shape ] );
      ( "prefilter",
        [ Alcotest.test_case "skips infeasible" `Quick test_prefilter_skips_infeasible;
          Alcotest.test_case "optional" `Quick test_prefilter_optional;
          Alcotest.test_case "faults still run" `Quick test_prefilter_never_skips_faults;
          Alcotest.test_case "jobs invariant" `Quick test_prefilter_journal_jobs_invariant ] );
      ( "stage-cache",
        [ Alcotest.test_case "journal invariant" `Quick test_stage_cache_journal_invariant;
          QCheck_alcotest.to_alcotest prop_stealing_order_invariant ] );
      ( "flow",
        [ Alcotest.test_case "cooperative timeout" `Slow test_flow_executor_times_out ] ) ]
