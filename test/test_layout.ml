(* Backend tests: geometry, generators, stacking, placement, routing,
   channels, compaction, extraction, sensitivity. *)

module G = Mixsyn_layout.Geom
module Rules = Mixsyn_layout.Rules
module Cell = Mixsyn_layout.Cell
module Gen = Mixsyn_layout.Generator
module St = Mixsyn_layout.Stacker
module P = Mixsyn_layout.Placer
module MR = Mixsyn_layout.Maze_router
module CR = Mixsyn_layout.Channel_router
module Comp = Mixsyn_layout.Compactor
module Ex = Mixsyn_layout.Extract
module Sens = Mixsyn_layout.Sensitivity
module CF = Mixsyn_layout.Cell_flow
module N = Mixsyn_circuit.Netlist
module Tp = Mixsyn_circuit.Template

let tech = Mixsyn_circuit.Tech.generic_07um

let check_close ?(eps = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > eps *. Float.max 1e-30 (Float.abs expected) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

let miller_netlist () =
  let x = [| 60e-6; 20e-6; 30e-6; 60e-6; 45e-6; 1e-6; 50e-6; 3e-12; 5e-12 |] in
  Mixsyn_circuit.Topology.miller_ota.Tp.build tech x

(* --- geometry ------------------------------------------------------------ *)

let test_rect_normalisation () =
  let r = G.rect G.Metal1 5.0 6.0 1.0 2.0 in
  check_close "x0" 1.0 r.G.x0;
  check_close "y1" 6.0 r.G.y1;
  check_close "area" 16.0 (G.area r)

let test_overlap () =
  let a = G.rect G.Metal1 0.0 0.0 2.0 2.0 in
  let b = G.rect G.Metal1 1.0 1.0 3.0 3.0 in
  let c = G.rect G.Metal1 2.0 0.0 4.0 2.0 in
  Alcotest.(check bool) "overlapping" true (G.overlaps a b);
  Alcotest.(check bool) "edge-sharing is not overlap" false (G.overlaps a c);
  check_close "intersection" 1.0 (G.intersection_area a b)

let test_bbox () =
  match G.bbox [ G.rect G.Metal1 0.0 0.0 1.0 1.0; G.rect G.Poly 3.0 (-1.0) 4.0 2.0 ] with
  | Some bb ->
    check_close "x0" 0.0 bb.G.x0;
    check_close "y0" (-1.0) bb.G.y0;
    check_close "x1" 4.0 bb.G.x1
  | None -> Alcotest.fail "bbox of non-empty list"

let prop_transform_preserves_area =
  QCheck.Test.make ~name:"orientation transforms preserve area" ~count:300
    QCheck.(pair (int_range 0 7) (quad (float_range 0. 10.) (float_range 0. 10.)
                                    (float_range 0.1 5.) (float_range 0.1 5.)))
    (fun (oi, (x, y, w, h)) ->
      let r = G.rect G.Metal1 x y (x +. w) (y +. h) in
      let orient = G.all_orientations.(oi) in
      let r' = G.transform orient ~w:20.0 ~h:20.0 r in
      Float.abs (G.area r -. G.area r') < 1e-9)

let test_transform_r90_swaps_dims () =
  let r = G.rect G.Metal1 0.0 0.0 4.0 1.0 in
  let r' = G.transform G.R90 ~w:4.0 ~h:1.0 r in
  check_close "width" 1.0 (G.width r');
  check_close "height" 4.0 (G.height r')

(* --- cells / generators ---------------------------------------------------- *)

let test_cell_normalised_to_origin () =
  let rects = [ G.rect G.Metal1 5.0 5.0 7.0 8.0 ] in
  let c = Cell.make "c" rects [] in
  check_close "width" 2.0 c.Cell.cw;
  check_close "height" 3.0 c.Cell.ch;
  match c.Cell.rects with
  | [ r ] -> check_close "anchored" 0.0 r.G.x0
  | _ -> Alcotest.fail "rect lost"

let test_mos_cell_pins () =
  let c =
    Gen.mos ~name:"m1" ~polarity:N.Nmos ~w:20e-6 ~l:1e-6 ~folds:2 ~drain_net:"d"
      ~gate_net:"g" ~source_net:"s" ()
  in
  let nets = List.sort_uniq compare (List.map (fun p -> p.Cell.pin_net) c.Cell.pins) in
  Alcotest.(check (list string)) "terminal nets" [ "d"; "g"; "s" ] nets;
  if Cell.area c <= 0.0 then Alcotest.fail "degenerate cell"

let test_mos_folding_shrinks_height () =
  let tall =
    Gen.mos ~name:"m" ~polarity:N.Nmos ~w:40e-6 ~l:1e-6 ~folds:1 ~drain_net:"d"
      ~gate_net:"g" ~source_net:"s" ()
  in
  let folded =
    Gen.mos ~name:"m" ~polarity:N.Nmos ~w:40e-6 ~l:1e-6 ~folds:4 ~drain_net:"d"
      ~gate_net:"g" ~source_net:"s" ()
  in
  if folded.Cell.ch >= tall.Cell.ch then Alcotest.fail "folding should reduce height"

let test_pmos_cell_has_well () =
  let c =
    Gen.mos ~name:"m" ~polarity:N.Pmos ~w:10e-6 ~l:1e-6 ~folds:1 ~drain_net:"d"
      ~gate_net:"g" ~source_net:"s" ()
  in
  Alcotest.(check bool) "nwell present" true
    (List.exists (fun r -> r.G.layer = G.Nwell) c.Cell.rects)

let test_stack_cell_nodes () =
  let c =
    Gen.stack ~name:"st" ~polarity:N.Nmos ~w:10e-6 ~l:1e-6
      ~gates:[ ("m1", "g1"); ("m2", "g2") ] ~nodes:[ "a"; "b"; "c" ] ()
  in
  let nets = List.sort_uniq compare (List.map (fun p -> p.Cell.pin_net) c.Cell.pins) in
  Alcotest.(check (list string)) "all nets pinned" [ "a"; "b"; "c"; "g1"; "g2" ] nets

let test_capacitor_area_scales () =
  let small = Gen.capacitor ~name:"c1" ~farads:1e-12 ~net_a:"a" ~net_b:"b" () in
  let big = Gen.capacitor ~name:"c2" ~farads:4e-12 ~net_a:"a" ~net_b:"b" () in
  check_close ~eps:0.05 "4x capacitance = 4x area" 4.0 (Cell.area big /. Cell.area small)

let test_resistor_squares () =
  let r = Gen.resistor ~name:"r1" ~ohms:10e3 ~net_a:"a" ~net_b:"b" () in
  if Cell.area r <= 0.0 then Alcotest.fail "degenerate resistor";
  Alcotest.(check int) "two pins" 2 (List.length r.Cell.pins)

(* --- stacking ----------------------------------------------------------------- *)

let test_stacker_covers_all_devices () =
  let nl = miller_netlist () in
  let devices = N.mos_list nl in
  let s = St.linear devices in
  let stacked = List.concat_map (fun st -> st.St.devices) s.St.stacks in
  Alcotest.(check int) "every device stacked once" (List.length devices)
    (List.length stacked);
  Alcotest.(check int) "no duplicates" (List.length stacked)
    (List.length (List.sort_uniq compare stacked))

let test_stacker_merges_diff_pair () =
  (* the miller input pair shares its source: must merge *)
  let nl = miller_netlist () in
  let s = St.linear (N.mos_list nl) in
  if s.St.merged_junctions < 2 then
    Alcotest.failf "expected >= 2 merges, got %d" s.St.merged_junctions

let test_exact_matches_linear_optimum () =
  let nl = miller_netlist () in
  let devices = N.mos_list nl in
  let lin = St.linear devices in
  let ex = St.exact devices in
  Alcotest.(check int) "same merge count" lin.St.merged_junctions
    ex.St.best.St.merged_junctions;
  if ex.St.optimal_count < 1 then Alcotest.fail "no optimal stacking counted"

let test_junction_capacitance_improves () =
  let nl = miller_netlist () in
  let devices = N.mos_list nl in
  let merged = St.linear devices in
  let unstacked = { St.stacks = []; merged_junctions = 0 } in
  let c_merged = St.junction_capacitance tech devices merged in
  let c_flat = St.junction_capacitance tech devices unstacked in
  if c_merged >= c_flat then Alcotest.fail "stacking should reduce junction capacitance"

let test_stacker_respects_polarity () =
  let nl = miller_netlist () in
  let s = St.linear (N.mos_list nl) in
  List.iter
    (fun st ->
      List.iter
        (fun d ->
          let m = N.find_mos nl d in
          if m.N.polarity <> st.St.polarity then Alcotest.fail "mixed-polarity stack")
        st.St.devices)
    s.St.stacks

(* --- placement ------------------------------------------------------------------ *)

let items () =
  let nl = miller_netlist () in
  CF.items_of_netlist nl

let test_placer_overlap_free () =
  let its, _, sym = items () in
  let placement = P.place ~seed:23 its sym in
  Alcotest.(check bool) "no overlaps" true (P.overlap_free its placement)

let test_placer_beats_initial_wirelength () =
  let its, _, sym = items () in
  let placement = P.place ~seed:23 its sym in
  (* a naive far-apart lineup for comparison *)
  let spread =
    Array.mapi
      (fun i _ ->
        { P.variant = 0; orient = G.R0; x = float_of_int i *. 150e-6; y = 0.0 })
      its
  in
  if P.wirelength its placement >= P.wirelength its spread then
    Alcotest.fail "annealing did not improve on the spread lineup"

let test_placer_cost_parts_nonnegative () =
  let its, _, sym = items () in
  let placement = P.place ~seed:23 its sym in
  let overlap, area, wl, symv = P.cost_parts its sym placement in
  if overlap < 0.0 || area <= 0.0 || wl < 0.0 || symv < 0.0 then
    Alcotest.fail "nonsensical cost parts"

(* --- incremental evaluator ------------------------------------------------ *)

let lineup its =
  Array.mapi
    (fun i _ -> { P.variant = 0; orient = G.R0; x = float_of_int i *. 40e-6; y = 0.0 })
    its

(* drive [ev] through one random tentative move, returning after the
   delta; the caller decides commit/revert *)
let random_move rng its ev =
  let n = Array.length its in
  let i = Mixsyn_util.Rng.int rng n in
  if n > 1 && Mixsyn_util.Rng.int rng 10 >= 7 then
    let j = (i + 1 + Mixsyn_util.Rng.int rng (n - 1)) mod n in
    P.Eval.swap_positions ev i j
  else
    P.Eval.set_site ev i
      { P.variant = Mixsyn_util.Rng.int rng (Array.length its.(i).P.variants);
        orient = Mixsyn_util.Rng.choice rng G.all_orientations;
        x = Mixsyn_util.Rng.uniform rng (-200e-6) 200e-6;
        y = Mixsyn_util.Rng.uniform rng (-200e-6) 200e-6 }

(* the evaluator's contract: after ANY sequence of moves, commits, and
   reverts, its state is bit-equal to a fresh build of the same placement —
   exact float equality, no epsilon *)
let prop_eval_matches_full_recompute =
  QCheck.Test.make ~name:"incremental eval == full recompute, bit-exact" ~count:25
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let its, _, sym = items () in
      let rng = Mixsyn_util.Rng.create seed in
      let ev = P.Eval.create its sym (lineup its) in
      for _ = 1 to 120 do
        let (_ : float) = random_move rng its ev in
        if Mixsyn_util.Rng.bool rng then P.Eval.commit ev else P.Eval.revert ev
      done;
      let o1, a1, w1, s1 = P.Eval.cost_parts ev in
      let o2, a2, w2, s2 = P.cost_parts its sym (P.Eval.placement ev) in
      o1 = o2 && a1 = a2 && w1 = w2 && s1 = s2)

let prop_eval_revert_exact =
  QCheck.Test.make ~name:"revert restores cost_parts bit-exactly" ~count:25
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let its, _, sym = items () in
      let rng = Mixsyn_util.Rng.create seed in
      let ev = P.Eval.create its sym (lineup its) in
      (* wander to an arbitrary committed state first *)
      for _ = 1 to 40 do
        let (_ : float) = random_move rng its ev in
        P.Eval.commit ev
      done;
      let ok = ref true in
      for _ = 1 to 60 do
        let before = P.Eval.cost_parts ev in
        let (_ : float) = random_move rng its ev in
        P.Eval.revert ev;
        if P.Eval.cost_parts ev <> before then ok := false
      done;
      !ok)

let test_place_jobs_invariant () =
  let its, _, sym = items () in
  (* a short schedule: invariance does not depend on schedule length *)
  let schedule =
    { Mixsyn_opt.Anneal.t_start = 1e12; t_end = 1e6; cooling = 0.6; moves_per_stage = 40 }
  in
  let run jobs = P.place ~schedule ~seed:23 ~restarts:4 ~jobs its sym in
  let p1 = run 1 in
  Alcotest.(check bool) "jobs 1 = jobs 2" true (p1 = run 2);
  Alcotest.(check bool) "jobs 1 = jobs 4" true (p1 = run 4)

(* --- maze routing ------------------------------------------------------------------ *)

let test_route_miller_complete () =
  let nl = miller_netlist () in
  let r = CF.koan ~seed:23 nl in
  Alcotest.(check (list string)) "no failures" [] r.CF.route.MR.failed;
  if r.CF.wirelength_m <= 0.0 then Alcotest.fail "no wire laid"

let test_route_coupling_reported () =
  let nl = miller_netlist () in
  let r = CF.koan ~seed:23 nl in
  (* coupling entries must be symmetric-free and positive *)
  List.iter
    (fun (a, b, c) ->
      if a = b then Alcotest.fail "self coupling";
      if c <= 0.0 then Alcotest.fail "non-positive coupling")
    r.CF.route.MR.coupling

let test_net_class_compatibility () =
  Alcotest.(check bool) "sensitive vs noisy" false (MR.compatible MR.Sensitive MR.Noisy);
  Alcotest.(check bool) "sensitive vs sensitive" true (MR.compatible MR.Sensitive MR.Sensitive);
  Alcotest.(check bool) "neutral vs noisy" true (MR.compatible MR.Neutral MR.Noisy)

let test_parasitic_bound_reduces_coupling () =
  (* ROAD-style: a tight coupling budget on o1 must not increase its
     coupling exposure *)
  let nl = miller_netlist () in
  let plain = CF.koan ~seed:23 nl in
  let bounded = CF.koan ~seed:23 ~coupling_budgets:[ ("o1", 1e-18) ] nl in
  let c_plain = MR.coupling_on plain.CF.route "o1" in
  let c_bounded = MR.coupling_on bounded.CF.route "o1" in
  if c_bounded > c_plain +. 1e-18 then
    Alcotest.failf "budgeted routing coupled more: %g > %g" c_bounded c_plain

(* --- channel routing --------------------------------------------------------------- *)

let channel_pins =
  [ { CR.column = 0; edge = CR.Top; cp_net = "a" };
    { CR.column = 4; edge = CR.Bottom; cp_net = "a" };
    { CR.column = 2; edge = CR.Top; cp_net = "b" };
    { CR.column = 6; edge = CR.Bottom; cp_net = "b" };
    { CR.column = 5; edge = CR.Top; cp_net = "c" };
    { CR.column = 8; edge = CR.Bottom; cp_net = "c" } ]

let test_channel_density () =
  Alcotest.(check int) "density" 2 (CR.density ~pins:channel_pins)

let test_channel_routes_all () =
  let r = CR.route ~pins:channel_pins ~styles:[] () in
  Alcotest.(check int) "all nets" 3 (List.length r.CR.routed);
  (* trunks span their pin columns *)
  List.iter
    (fun rn ->
      let pins = List.filter (fun p -> p.CR.cp_net = rn.CR.rn_net) channel_pins in
      List.iter
        (fun p ->
          if p.CR.column < rn.CR.left || p.CR.column > rn.CR.right then
            Alcotest.fail "trunk misses a pin column")
        pins)
    r.CR.routed

let test_channel_vertical_constraints () =
  (* at column 3, net t is on top and net b on bottom: t must be above b *)
  let pins =
    [ { CR.column = 0; edge = CR.Top; cp_net = "t" };
      { CR.column = 3; edge = CR.Top; cp_net = "t" };
      { CR.column = 3; edge = CR.Bottom; cp_net = "b" };
      { CR.column = 6; edge = CR.Bottom; cp_net = "b" } ]
  in
  let r = CR.route ~pins ~styles:[] () in
  let track n = (List.find (fun x -> x.CR.rn_net = n) r.CR.routed).CR.track in
  if track "t" <= track "b" then Alcotest.fail "vertical constraint violated"

let test_channel_shield_between_incompatible () =
  (* column-overlapping trunks so the coupling term is live *)
  let pins =
    [ { CR.column = 0; edge = CR.Top; cp_net = "quiet" };
      { CR.column = 4; edge = CR.Top; cp_net = "quiet" };
      { CR.column = 2; edge = CR.Bottom; cp_net = "loud" };
      { CR.column = 6; edge = CR.Bottom; cp_net = "loud" } ]
  in
  let styles =
    [ { CR.cn_net = "quiet"; cn_class = MR.Sensitive; track_width = 1 };
      { CR.cn_net = "loud"; cn_class = MR.Noisy; track_width = 1 } ]
  in
  let shielded = CR.route ~shielding:true ~pins ~styles () in
  let bare = CR.route ~shielding:false ~pins ~styles () in
  if List.length shielded.CR.shields = 0 then Alcotest.fail "no shield inserted";
  let total r =
    List.fold_left (fun acc (_, _, c) -> acc +. c) 0.0 r.CR.channel_coupling
  in
  if total shielded >= total bare then Alcotest.fail "shield did not reduce coupling"

let test_channel_cycle_detected () =
  (* t above b at column 0, b above t at column 3: a cycle *)
  let pins =
    [ { CR.column = 0; edge = CR.Top; cp_net = "t" };
      { CR.column = 0; edge = CR.Bottom; cp_net = "b" };
      { CR.column = 3; edge = CR.Top; cp_net = "b" };
      { CR.column = 3; edge = CR.Bottom; cp_net = "t" } ]
  in
  match CR.route ~pins ~styles:[] () with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected cycle failure"

let test_channel_wide_nets () =
  let styles = [ { CR.cn_net = "a"; cn_class = MR.Neutral; track_width = 3 } ] in
  let r = CR.route ~pins:channel_pins ~styles () in
  let plain = CR.route ~pins:channel_pins ~styles:[] () in
  if r.CR.tracks_used <= plain.CR.tracks_used then
    Alcotest.fail "wide trunk should consume extra tracks"

let prop_channel_router_covers_pins =
  QCheck.Test.make ~name:"channel trunks span their pins" ~count:100
    QCheck.(pair (int_range 0 10000) (int_range 2 8))
    (fun (seed, n_nets) ->
      let rng = Mixsyn_util.Rng.create seed in
      let pins =
        List.concat
          (List.init n_nets (fun i ->
               let net = Printf.sprintf "n%d" i in
               let n_pins = 2 + Mixsyn_util.Rng.int rng 3 in
               List.init n_pins (fun _ ->
                   { CR.column = Mixsyn_util.Rng.int rng 30;
                     edge = (if Mixsyn_util.Rng.bool rng then CR.Top else CR.Bottom);
                     cp_net = net })))
      in
      match CR.route ~pins ~styles:[] () with
      | exception Failure _ -> true (* vertical-constraint cycle: allowed *)
      | r ->
        List.length r.CR.routed = n_nets
        && List.for_all
             (fun rn ->
               List.for_all
                 (fun p ->
                   p.CR.cp_net <> rn.CR.rn_net
                   || (p.CR.column >= rn.CR.left && p.CR.column <= rn.CR.right))
                 pins)
             r.CR.routed)

(* --- compaction --------------------------------------------------------------------- *)

let test_compaction_shrinks () =
  let far_apart =
    [ Cell.translate 0.0 0.0 (Gen.capacitor ~name:"c1" ~farads:1e-12 ~net_a:"a" ~net_b:"b" ());
      Cell.translate 500e-6 0.0 (Gen.capacitor ~name:"c2" ~farads:1e-12 ~net_a:"c" ~net_b:"d" ());
      Cell.translate 0.0 400e-6 (Gen.capacitor ~name:"c3" ~farads:1e-12 ~net_a:"e" ~net_b:"f" ()) ]
  in
  let before = Comp.bounding_area far_apart in
  let after = Comp.bounding_area (Comp.compact far_apart) in
  if after >= before then Alcotest.fail "compaction did not shrink the layout"

let test_compaction_no_overlap () =
  let cells =
    [ Cell.translate 0.0 0.0 (Gen.capacitor ~name:"c1" ~farads:1e-12 ~net_a:"a" ~net_b:"b" ());
      Cell.translate 300e-6 10e-6 (Gen.capacitor ~name:"c2" ~farads:2e-12 ~net_a:"c" ~net_b:"d" ()) ]
  in
  let compacted = Comp.compact cells in
  match compacted with
  | [ a; b ] ->
    let box c =
      Option.get (G.bbox (c.Cell.rects @ List.map (fun p -> p.Cell.pin_rect) c.Cell.pins))
    in
    if G.overlaps (box a) (box b) then Alcotest.fail "compaction created an overlap"
  | _ -> Alcotest.fail "cell count changed"

(* --- extraction ----------------------------------------------------------------------- *)

let test_extract_and_annotate () =
  let nl = miller_netlist () in
  let r = CF.koan ~seed:23 nl in
  let parasitics = r.CF.parasitics in
  if Ex.total_wiring_cap parasitics <= 0.0 then Alcotest.fail "no wiring capacitance";
  let annotated = Ex.annotate nl parasitics in
  if N.device_count annotated <= N.device_count nl then
    Alcotest.fail "annotation added no parasitics";
  (* the annotated netlist still solves *)
  (match Mixsyn_engine.Dc.solve ~tech annotated with
   | exception Mixsyn_engine.Dc.No_convergence _ -> Alcotest.fail "annotated netlist diverges"
   | _ -> ())

let test_extraction_degrades_bandwidth () =
  let nl = miller_netlist () in
  let r = CF.koan ~seed:23 nl in
  let annotated = Ex.annotate nl r.CF.parasitics in
  let ugf netlist =
    let op = Mixsyn_engine.Dc.solve ~tech netlist in
    let out = N.find_net netlist "out" in
    let freqs = Mixsyn_engine.Ac.log_sweep ~decades_from:0.0 ~decades_to:9.5 ~points_per_decade:8 in
    let ac = Mixsyn_engine.Ac.solve ~tech netlist op ~freqs in
    Option.value (Mixsyn_engine.Measure.unity_gain_freq (Mixsyn_engine.Measure.bode ac ~out))
      ~default:0.0
  in
  let before = ugf nl and after = ugf annotated in
  if after > before *. 1.001 then Alcotest.fail "parasitics cannot speed the circuit up"

(* --- cif export --------------------------------------------------------------- *)

let test_cif_export () =
  let nl = miller_netlist () in
  let r = CF.koan ~seed:23 nl in
  let cif =
    Mixsyn_layout.Cif.of_layout ~cells:r.CF.placed ~wires:r.CF.route.MR.wires ()
  in
  List.iter
    (fun needle ->
      let found =
        let nl_ = String.length needle and sl = String.length cif in
        let rec scan i = i + nl_ <= sl && (String.sub cif i nl_ = needle || scan (i + 1)) in
        scan 0
      in
      if not found then Alcotest.failf "CIF lacks %s" needle)
    [ "DS 1 1 1;"; "L CMF;"; "L CPG;"; "B "; "DF;"; "E" ];
  (* write/read roundtrip *)
  let path = Filename.temp_file "mixsyn" ".cif" in
  Mixsyn_layout.Cif.write_file ~path ~cells:r.CF.placed ~wires:r.CF.route.MR.wires ();
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check int) "file matches string" (String.length cif) len

let test_cif_layer_names_distinct () =
  let names = List.map Mixsyn_layout.Cif.layer_name G.all_layers in
  Alcotest.(check int) "distinct codes" (List.length names)
    (List.length (List.sort_uniq compare names))

(* --- sensitivity ------------------------------------------------------------------------- *)

let test_matching_pairs_found () =
  let nl = miller_netlist () in
  let pairs = Sens.matching_pairs nl in
  let has a b =
    List.exists (fun (x, y) -> (x = a && y = b) || (x = b && y = a)) pairs
  in
  Alcotest.(check bool) "diff pair" true (has "m1" "m2");
  Alcotest.(check bool) "mirror legs" true (has "m3" "m4")

let test_sensitivity_and_constraints () =
  let nl = miller_netlist () in
  let measure netlist =
    match Mixsyn_engine.Dc.solve ~tech netlist with
    | exception Mixsyn_engine.Dc.No_convergence _ -> None
    | op ->
      let out = N.find_net netlist "out" in
      let freqs = Mixsyn_engine.Ac.log_sweep ~decades_from:0.0 ~decades_to:9.5 ~points_per_decade:6 in
      let ac = Mixsyn_engine.Ac.solve ~tech netlist op ~freqs in
      let bode = Mixsyn_engine.Measure.bode ac ~out in
      Some [ ("ugf_hz", Option.value (Mixsyn_engine.Measure.unity_gain_freq bode) ~default:0.0) ]
  in
  let sens = Sens.analyze ~nets:[ "o1"; "out"; "nbias" ] nl ~measure in
  Alcotest.(check int) "three nets" 3 (List.length sens);
  (* o1 carries the miller node: adding capacitance there must move ugf *)
  let o1 = List.find (fun s -> s.Sens.sn_net = "o1") sens in
  (match List.assoc_opt "ugf_hz" o1.Sens.dperf_dcap with
   | Some slope -> if Float.abs slope <= 0.0 then Alcotest.fail "o1 insensitive?"
   | None -> Alcotest.fail "no ugf sensitivity");
  let bounds = Sens.map_constraints sens ~budgets:[ ("ugf_hz", 1e6) ] in
  List.iter
    (fun (_, b) -> if b <= 0.0 then Alcotest.fail "nonpositive capacitance bound")
    bounds

let () =
  let qt t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "layout"
    [ ( "geometry",
        [ Alcotest.test_case "rect normalisation" `Quick test_rect_normalisation;
          Alcotest.test_case "overlap" `Quick test_overlap;
          Alcotest.test_case "bbox" `Quick test_bbox;
          Alcotest.test_case "r90 swaps dims" `Quick test_transform_r90_swaps_dims;
          qt prop_transform_preserves_area ] );
      ( "generator",
        [ Alcotest.test_case "cell anchoring" `Quick test_cell_normalised_to_origin;
          Alcotest.test_case "mos pins" `Quick test_mos_cell_pins;
          Alcotest.test_case "folding" `Quick test_mos_folding_shrinks_height;
          Alcotest.test_case "pmos well" `Quick test_pmos_cell_has_well;
          Alcotest.test_case "stack nodes" `Quick test_stack_cell_nodes;
          Alcotest.test_case "capacitor area" `Quick test_capacitor_area_scales;
          Alcotest.test_case "resistor" `Quick test_resistor_squares ] );
      ( "stacker",
        [ Alcotest.test_case "covers all devices" `Quick test_stacker_covers_all_devices;
          Alcotest.test_case "merges diff pair" `Quick test_stacker_merges_diff_pair;
          Alcotest.test_case "exact = linear optimum" `Quick test_exact_matches_linear_optimum;
          Alcotest.test_case "junction cap saved" `Quick test_junction_capacitance_improves;
          Alcotest.test_case "polarity respected" `Quick test_stacker_respects_polarity ] );
      ( "placer",
        [ Alcotest.test_case "overlap free" `Quick test_placer_overlap_free;
          Alcotest.test_case "beats spread lineup" `Quick test_placer_beats_initial_wirelength;
          Alcotest.test_case "cost parts sane" `Quick test_placer_cost_parts_nonnegative;
          qt prop_eval_matches_full_recompute;
          qt prop_eval_revert_exact;
          Alcotest.test_case "place invariant in jobs" `Quick test_place_jobs_invariant ] );
      ( "maze-router",
        [ Alcotest.test_case "miller complete" `Quick test_route_miller_complete;
          Alcotest.test_case "coupling reported" `Quick test_route_coupling_reported;
          Alcotest.test_case "class compatibility" `Quick test_net_class_compatibility;
          Alcotest.test_case "parasitic bounds" `Quick test_parasitic_bound_reduces_coupling ] );
      ( "channel-router",
        [ Alcotest.test_case "density" `Quick test_channel_density;
          Alcotest.test_case "routes all" `Quick test_channel_routes_all;
          Alcotest.test_case "vertical constraints" `Quick test_channel_vertical_constraints;
          Alcotest.test_case "shields" `Quick test_channel_shield_between_incompatible;
          Alcotest.test_case "cycle detection" `Quick test_channel_cycle_detected;
          Alcotest.test_case "wide nets" `Quick test_channel_wide_nets ] );
      ( "channel-properties",
        [ QCheck_alcotest.to_alcotest prop_channel_router_covers_pins ] );
      ( "compactor",
        [ Alcotest.test_case "shrinks" `Quick test_compaction_shrinks;
          Alcotest.test_case "no overlap" `Quick test_compaction_no_overlap ] );
      ( "extract",
        [ Alcotest.test_case "annotate" `Quick test_extract_and_annotate;
          Alcotest.test_case "bandwidth degrades" `Quick test_extraction_degrades_bandwidth ] );
      ( "cif",
        [ Alcotest.test_case "export" `Quick test_cif_export;
          Alcotest.test_case "layer names" `Quick test_cif_layer_names_distinct ] );
      ( "sensitivity",
        [ Alcotest.test_case "matching pairs" `Quick test_matching_pairs_found;
          Alcotest.test_case "constraint mapping" `Quick test_sensitivity_and_constraints ] ) ]
