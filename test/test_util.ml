(* Unit and property tests for the numerical substrate. *)

module Rng = Mixsyn_util.Rng
module Real = Mixsyn_util.Matrix.Real
module Cplx = Mixsyn_util.Matrix.Cplx
module Poly = Mixsyn_util.Poly
module I = Mixsyn_util.Interval
module Stats = Mixsyn_util.Stats
module Units = Mixsyn_util.Units
module T = Mixsyn_util.Telemetry
module EC = Mixsyn_util.Eval_cache

let close ?(eps = 1e-9) a b =
  Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let check_close ?(eps = 1e-9) msg expected actual =
  if not (close ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- rng -------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "int out of bounds: %d" v;
    let f = Rng.float rng 3.5 in
    if f < 0.0 || f >= 3.5 then Alcotest.failf "float out of bounds: %g" f;
    let u = Rng.uniform rng (-2.0) 5.0 in
    if u < -2.0 || u >= 5.0 then Alcotest.failf "uniform out of bounds: %g" u
  done

let test_rng_gauss_moments () =
  let rng = Rng.create 11 in
  let n = 40_000 in
  let samples = Array.init n (fun _ -> Rng.gauss rng) in
  if Float.abs (Stats.mean samples) > 0.02 then
    Alcotest.failf "gauss mean too far from 0: %g" (Stats.mean samples);
  if Float.abs (Stats.stddev samples -. 1.0) > 0.02 then
    Alcotest.failf "gauss stddev too far from 1: %g" (Stats.stddev samples)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 3 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_split_independent () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  let a = Array.init 10 (fun _ -> Rng.int parent 1000) in
  let b = Array.init 10 (fun _ -> Rng.int child 1000) in
  if a = b then Alcotest.fail "split streams identical"

(* --- matrices --------------------------------------------------------- *)

let random_system rng n =
  let a =
    Array.init n (fun i ->
        Array.init n (fun j ->
            Rng.uniform rng (-1.0) 1.0 +. if i = j then 4.0 else 0.0))
  in
  let x = Array.init n (fun _ -> Rng.uniform rng (-5.0) 5.0) in
  (a, x)

let test_real_solve_roundtrip () =
  let rng = Rng.create 17 in
  for _ = 1 to 50 do
    let n = 1 + Rng.int rng 12 in
    let a, x = random_system rng n in
    let b = Real.mat_vec a x in
    let x' = Real.solve a b in
    Array.iteri (fun i xi -> check_close ~eps:1e-8 "solve" xi x'.(i)) x
  done

let test_real_identity () =
  let i5 = Real.identity 5 in
  let b = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (array (float 1e-12))) "identity solve" b (Real.solve i5 b)

let test_real_singular () =
  let a = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  match Real.lu_factor a with
  | exception Real.Singular _ -> ()
  | _ -> Alcotest.fail "singular matrix not detected"

let test_real_determinant () =
  let a = [| [| 2.0; 0.0; 0.0 |]; [| 0.0; 3.0; 0.0 |]; [| 1.0; 1.0; 4.0 |] |] in
  check_close "det" 24.0 (Real.determinant a);
  let b = [| a.(1); a.(0); a.(2) |] in
  check_close "det sign" (-24.0) (Real.determinant b)

let test_cplx_solve () =
  let j = { Complex.re = 0.0; im = 1.0 } in
  let one = Complex.one in
  (* (1+j) x = 2 -> x = 1-j *)
  let a = [| [| Complex.add one j |] |] in
  let b = [| { Complex.re = 2.0; im = 0.0 } |] in
  let x = Cplx.solve a b in
  check_close "re" 1.0 x.(0).Complex.re;
  check_close "im" (-1.0) x.(0).Complex.im

let test_mat_mul_assoc () =
  let rng = Rng.create 23 in
  let m () = Array.init 4 (fun _ -> Array.init 4 (fun _ -> Rng.uniform rng (-1.0) 1.0)) in
  let a = m () and b = m () and c = m () in
  let left = Real.mat_mul (Real.mat_mul a b) c in
  let right = Real.mat_mul a (Real.mat_mul b c) in
  Array.iteri
    (fun i row -> Array.iteri (fun k v -> check_close ~eps:1e-10 "assoc" v right.(i).(k)) row)
    left

(* --- flat kernels ------------------------------------------------------ *)

module Fmat = Mixsyn_util.Fmat

(* [Fmat] promises the exact scalar operation sequence of [Matrix.Make], so
   these comparisons are bit-for-bit ([=] on floats), not within an eps. *)

let test_fmat_real_bitexact () =
  let rng = Rng.create 29 in
  for _ = 1 to 60 do
    let n = 1 + Rng.int rng 12 in
    let a, x = random_system rng n in
    let b = Real.mat_vec a x in
    let boxed = Real.solve a b in
    let flat = Array.make n 0.0 in
    (* draw from the domain pool so reuse of a dirty workspace is exercised *)
    Fmat.with_real n (fun ws ->
        Fmat.Real.clear ws;
        for i = 0 to n - 1 do
          Fmat.Real.rhs ws i b.(i);
          for j = 0 to n - 1 do
            Fmat.Real.stamp ws i j a.(i).(j)
          done
        done;
        Fmat.Real.factor ws;
        Fmat.Real.solve ws flat);
    Array.iteri
      (fun i v ->
        if v <> flat.(i) then
          Alcotest.failf "n=%d x.(%d): boxed %.17g <> flat %.17g" n i v flat.(i))
      boxed
  done

let random_cplx_system rng n =
  (* diagonally dominant split planes, as an AC system (g + j omega c) *)
  let g =
    Array.init n (fun i ->
        Array.init n (fun j ->
            Rng.uniform rng (-1.0) 1.0 +. if i = j then 5.0 else 0.0))
  in
  let c = Array.init n (fun _ -> Array.init n (fun _ -> Rng.uniform rng (-1.0) 1.0)) in
  let br = Array.init n (fun _ -> Rng.uniform rng (-2.0) 2.0) in
  let bi = Array.init n (fun _ -> Rng.uniform rng (-2.0) 2.0) in
  (g, c, br, bi)

let test_fmat_cplx_bitexact () =
  let rng = Rng.create 31 in
  for _ = 1 to 60 do
    let n = 1 + Rng.int rng 10 in
    let g, c, br, bi = random_cplx_system rng n in
    let omega = Rng.uniform rng 0.1 10.0 in
    let a =
      Array.init n (fun i ->
          Array.init n (fun j -> { Complex.re = g.(i).(j); im = omega *. c.(i).(j) }))
    in
    let b = Array.init n (fun i -> { Complex.re = br.(i); im = bi.(i) }) in
    let boxed = Cplx.solve a b in
    let gf = Fmat.flatten g and cf = Fmat.flatten c in
    let flat = Array.make n Complex.zero in
    Fmat.with_cplx n (fun ws ->
        Fmat.Cplx.load_ac ws ~g:gf ~c:cf ~omega;
        Fmat.Cplx.set_rhs ws ~re:(Float.Array.init n (fun i -> br.(i))) ~im:(Float.Array.init n (fun i -> bi.(i)));
        Fmat.Cplx.factor ws;
        Fmat.Cplx.solve ws flat);
    Array.iteri
      (fun i (v : Complex.t) ->
        if v.Complex.re <> flat.(i).Complex.re || v.Complex.im <> flat.(i).Complex.im then
          Alcotest.failf "n=%d x.(%d): boxed %.17g%+.17gi <> flat %.17g%+.17gi" n i
            v.Complex.re v.Complex.im flat.(i).Complex.re flat.(i).Complex.im)
      boxed;
    (* the adjoint loader must equal the boxed solve of the transpose *)
    let at = Array.init n (fun i -> Array.init n (fun j -> a.(j).(i))) in
    let boxed_t = Cplx.solve at b in
    Fmat.with_cplx n (fun ws ->
        Fmat.Cplx.load_ac_transposed ws ~g:gf ~c:cf ~omega;
        Fmat.Cplx.set_rhs ws ~re:(Float.Array.init n (fun i -> br.(i))) ~im:(Float.Array.init n (fun i -> bi.(i)));
        Fmat.Cplx.factor ws;
        Fmat.Cplx.solve ws flat);
    Array.iteri
      (fun i (v : Complex.t) ->
        if v <> flat.(i) then Alcotest.failf "transposed solve differs at %d" i)
      boxed_t
  done

let test_fmat_scaled_pivot () =
  (* threshold shape shared by both kernels *)
  Alcotest.(check (float 0.0)) "absolute floor" 1e-300 (Fmat.pivot_threshold 0.0);
  Alcotest.(check (float 0.0)) "relative" 1e-14 (Fmat.pivot_threshold 1.0);
  (* tiny-valued but well-conditioned (pF/nS-scale stamps) must factor *)
  let tiny = [| [| 1e-12; 1e-14 |]; [| 2e-14; 2e-12 |] |] in
  let b = [| 3e-12; 1e-12 |] in
  let boxed = Real.solve tiny b in
  let flat = Array.make 2 0.0 in
  Fmat.with_real 2 (fun ws ->
      Fmat.Real.clear ws;
      Array.iteri (fun i row -> Array.iteri (fun j v -> Fmat.Real.stamp ws i j v) row) tiny;
      Array.iteri (fun i v -> Fmat.Real.rhs ws i v) b;
      Fmat.Real.factor ws;
      Fmat.Real.solve ws flat);
  Array.iteri (fun i v -> check_close ~eps:1e-12 "tiny system agrees" v flat.(i)) boxed;
  (* numerically singular relative to its own scale: the second pivot is
     ~1e-15 of the column — far above the old absolute 1e-300 floor, so
     only the scaled test catches it, in both kernels *)
  let near = [| [| 1.0; 1.0 |]; [| 1.0; 1.0 +. 1e-15 |] |] in
  (match Real.lu_factor (Array.map Array.copy near) with
   | exception Real.Singular _ -> ()
   | _ -> Alcotest.fail "boxed kernel missed scale-relative singularity");
  (match
     Fmat.with_real 2 (fun ws ->
         Fmat.Real.clear ws;
         Array.iteri (fun i row -> Array.iteri (fun j v -> Fmat.Real.stamp ws i j v) row) near;
         Fmat.Real.factor ws)
   with
   | exception Fmat.Singular _ -> ()
   | _ -> Alcotest.fail "flat kernel missed scale-relative singularity")

let test_fmat_workspace_reuse () =
  (* the pooled workspace is reused across calls of the same size within a
     domain and isolated between nested checkouts *)
  let n = 4 in
  let id = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1.0 else 0.0)) in
  let load ws m =
    Fmat.Real.clear ws;
    Array.iteri (fun i row -> Array.iteri (fun j v -> Fmat.Real.stamp ws i j v) row) m
  in
  let x = Array.make n 0.0 in
  Fmat.with_real n (fun ws ->
      load ws id;
      Array.iteri (fun i _ -> Fmat.Real.rhs ws i (float_of_int (i + 1))) x;
      Fmat.Real.factor ws;
      Fmat.Real.solve ws x;
      (* nested same-size checkout must not hand back the busy workspace *)
      Fmat.with_real n (fun ws2 ->
          if ws2 == ws then Alcotest.fail "nested checkout returned the busy workspace";
          load ws2 id));
  Alcotest.(check (array (float 0.0))) "identity solve" [| 1.0; 2.0; 3.0; 4.0 |] x;
  (* after release the same buffer comes back (same domain, same size) *)
  let first = Fmat.with_real n (fun ws -> ws) in
  let second = Fmat.with_real n (fun ws -> ws) in
  if first != second then Alcotest.fail "pool did not reuse the released workspace"

(* --- polynomials ------------------------------------------------------ *)

let test_poly_eval () =
  let p = Poly.of_coeffs [| 1.0; -3.0; 2.0 |] in
  check_close "p(0.5)" 0.0 (Poly.eval p 0.5);
  check_close "p(1)" 0.0 (Poly.eval p 1.0);
  check_close "p(2)" 3.0 (Poly.eval p 2.0)

let test_poly_roots_quadratic () =
  let p = Poly.of_coeffs [| 2.0; -3.0; 1.0 |] in
  let roots = Poly.roots p in
  let reals = Array.map (fun (z : Complex.t) -> z.Complex.re) roots in
  Array.sort compare reals;
  check_close ~eps:1e-6 "root 1" 1.0 reals.(0);
  check_close ~eps:1e-6 "root 2" 2.0 reals.(1)

let test_poly_roots_complex () =
  let roots = Poly.roots (Poly.of_coeffs [| 1.0; 0.0; 1.0 |]) in
  Array.iter
    (fun (z : Complex.t) ->
      check_close ~eps:1e-6 "re" 0.0 z.Complex.re;
      check_close ~eps:1e-6 "im magnitude" 1.0 (Float.abs z.Complex.im))
    roots

let test_poly_from_roots_roundtrip () =
  let roots = [| { Complex.re = -1.0; im = 0.0 }; { Complex.re = -2.0; im = 3.0 };
                 { Complex.re = -2.0; im = -3.0 } |] in
  let p = Poly.from_roots roots in
  Array.iter
    (fun r ->
      let v = Poly.eval_complex p r in
      if Complex.norm v > 1e-9 then Alcotest.failf "root not preserved: |p(r)|=%g" (Complex.norm v))
    roots

let test_poly_derivative () =
  let p = Poly.of_coeffs [| 5.0; 1.0; 3.0 |] in
  let p' = Poly.derivative p in
  check_close "d/dx at 2" 13.0 (Poly.eval p' 2.0)

(* --- intervals --------------------------------------------------------- *)

let test_interval_basic () =
  let a = I.make 1.0 3.0 in
  Alcotest.(check bool) "contains" true (I.contains a 2.0);
  Alcotest.(check bool) "not contains" false (I.contains a 4.0);
  check_close "mid" 2.0 (I.mid a);
  check_close "width" 2.0 (I.width a)

let test_interval_reorder () =
  let a = I.make 3.0 1.0 in
  check_close "lo" 1.0 (I.lo a);
  check_close "hi" 3.0 (I.hi a)

let test_interval_div_by_zero_span () =
  match I.div (I.make 1.0 2.0) (I.make (-1.0) 1.0) with
  | None -> ()
  | Some _ -> Alcotest.fail "division by zero-spanning interval should be None"

let test_interval_intersect () =
  (match I.intersect (I.make 0.0 2.0) (I.make 1.0 3.0) with
   | Some r ->
     check_close "lo" 1.0 (I.lo r);
     check_close "hi" 2.0 (I.hi r)
   | None -> Alcotest.fail "expected intersection");
  match I.intersect (I.make 0.0 1.0) (I.make 2.0 3.0) with
  | None -> ()
  | Some _ -> Alcotest.fail "expected disjoint"

let test_interval_nan_rejected () =
  (* [make] is the validating constructor: NaN endpoints must raise rather
     than silently produce an interval that poisons every later bound *)
  Alcotest.check_raises "nan lo" (Invalid_argument "Interval.make: NaN bound") (fun () ->
      ignore (I.make Float.nan 1.0));
  Alcotest.check_raises "nan hi" (Invalid_argument "Interval.make: NaN bound") (fun () ->
      ignore (I.make 0.0 Float.nan));
  (* [of_bounds] is the total variant: NaN collapses to the empty interval *)
  Alcotest.(check bool) "of_bounds nan empty" true (I.is_empty (I.of_bounds Float.nan 1.0));
  Alcotest.(check bool) "of_bounds ok" false (I.is_empty (I.of_bounds 1.0 2.0))

let test_interval_empty_propagates () =
  let e = I.empty and a = I.make 1.0 2.0 in
  Alcotest.(check bool) "empty is empty" true (I.is_empty e);
  Alcotest.(check bool) "add" true (I.is_empty (I.add e a));
  Alcotest.(check bool) "mul" true (I.is_empty (I.mul a e));
  Alcotest.(check bool) "neg" true (I.is_empty (I.neg e));
  Alcotest.(check bool) "ediv num" true (I.is_empty (I.ediv e a));
  Alcotest.(check bool) "sqrt" true (I.is_empty (I.sqrt_ e));
  Alcotest.(check bool) "contains nothing" false (I.contains e 0.0);
  Alcotest.(check bool) "width 0" true (I.width e = 0.0);
  Alcotest.(check bool) "hull absorbs" true (I.hull e a = a);
  Alcotest.(check bool) "subset of all" true (I.subset e a)

let test_interval_ediv_cases () =
  (* Kahan extended division: never raises, never returns NaN bounds *)
  let whole = I.ediv (I.make 1.0 2.0) (I.make (-1.0) 1.0) in
  Alcotest.(check bool) "span -> whole" true
    (I.lo whole = Float.neg_infinity && I.hi whole = Float.infinity);
  Alcotest.(check bool) "zero divisor -> empty" true
    (I.is_empty (I.ediv (I.make 1.0 2.0) (I.point 0.0)));
  (* 0 / nonzero: zero up to outward rounding (one ulp around 0) *)
  let zero_num = I.ediv (I.point 0.0) (I.make 1.0 2.0) in
  Alcotest.(check bool) "0/x ~ 0" true
    (I.contains zero_num 0.0 && I.width zero_num < 1e-300);
  (* 0 / zero-spanning: the quotient set really is {0} *)
  let zero_span = I.ediv (I.point 0.0) (I.make (-1.0) 1.0) in
  Alcotest.(check bool) "0/span = 0" true (I.lo zero_span = 0.0 && I.hi zero_span = 0.0);
  (* divisor pinned at zero on one side: a half-line, sign from numerator *)
  let half = I.ediv (I.make 1.0 2.0) (I.make 0.0 4.0) in
  Alcotest.(check bool) "half-line up" true
    (I.lo half >= 0.25 -. 1e-12 && I.hi half = Float.infinity);
  let nhalf = I.ediv (I.make (-2.0) (-1.0)) (I.make 0.0 4.0) in
  Alcotest.(check bool) "half-line down" true
    (I.lo nhalf = Float.neg_infinity && I.hi nhalf <= -0.25 +. 1e-12);
  (* plain division still outward-contains the true quotient set *)
  let q = I.ediv (I.make 1.0 2.0) (I.make 4.0 8.0) in
  Alcotest.(check bool) "plain" true (I.contains q 0.125 && I.contains q 0.5)

let test_interval_domain_clipping () =
  Alcotest.(check bool) "sqrt of negative -> empty" true
    (I.is_empty (I.sqrt_ (I.make (-4.0) (-1.0))));
  let s = I.sqrt_ (I.make (-4.0) 9.0) in
  Alcotest.(check bool) "sqrt clips lo" true (I.lo s = 0.0 && I.contains s 3.0);
  Alcotest.(check bool) "log of nonpositive -> empty" true
    (I.is_empty (I.log10_ (I.make (-2.0) 0.0)));
  let l = I.log10_ (I.make 0.0 100.0) in
  Alcotest.(check bool) "log spans -inf" true
    (I.lo l = Float.neg_infinity && I.contains l 2.0);
  let e = I.exp_ (I.make (-1.0) 1.0) in
  Alcotest.(check bool) "exp positive" true (I.lo e >= 0.0 && I.contains e (Float.exp 1.0))

let test_interval_powi () =
  let a = I.make (-2.0) 3.0 in
  let sq = I.powi a 2 in
  Alcotest.(check bool) "even power spans zero" true
    (I.lo sq <= 0.0 && I.contains sq 9.0 && I.contains sq 4.0 && not (I.contains sq 10.0));
  let cube = I.powi a 3 in
  Alcotest.(check bool) "odd power monotone" true
    (I.contains cube (-8.0) && I.contains cube 27.0);
  let one = I.powi a 0 in
  Alcotest.(check bool) "zeroth power" true (I.lo one = 1.0 && I.hi one = 1.0)

(* --- stats ------------------------------------------------------------- *)

let test_stats_known () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_close "mean" 5.0 (Stats.mean xs);
  check_close ~eps:1e-6 "stddev" (sqrt (32.0 /. 7.0)) (Stats.stddev xs);
  check_close "median" 4.5 (Stats.percentile xs 50.0);
  check_close "min" 2.0 (Stats.minimum xs);
  check_close "max" 9.0 (Stats.maximum xs)

let test_stats_linear_fit () =
  let pts = Array.init 10 (fun i -> (float_of_int i, (3.0 *. float_of_int i) +. 1.0)) in
  let slope, intercept = Stats.linear_fit pts in
  check_close "slope" 3.0 slope;
  check_close "intercept" 1.0 intercept

let test_stats_geometric_mean () =
  check_close "geomean" 4.0 (Stats.geometric_mean [| 2.0; 8.0 |])

let test_stats_percentile_clamps_and_sorts () =
  (* deliberately unsorted input; out-of-range p clamps to the extremes *)
  let xs = [| 3.0; 1.0; 2.0 |] in
  check_close "p < 0 clamps to minimum" 1.0 (Stats.percentile xs (-10.0));
  check_close "p > 100 clamps to maximum" 3.0 (Stats.percentile xs 250.0);
  check_close "p = 0 is minimum" 1.0 (Stats.percentile xs 0.0);
  check_close "p = 100 is maximum" 3.0 (Stats.percentile xs 100.0);
  check_close "median of unsorted input" 2.0 (Stats.percentile xs 50.0)

(* --- telemetry ---------------------------------------------------------- *)

let test_telemetry_counters () =
  T.reset ();
  Alcotest.(check int) "untouched counter reads 0" 0 (T.counter "a");
  T.count "a";
  T.count "a";
  T.add "b" 5;
  Alcotest.(check int) "count increments" 2 (T.counter "a");
  Alcotest.(check int) "add accumulates" 5 (T.counter "b");
  Alcotest.(check (list (pair string int))) "alist sorted by name"
    [ ("a", 2); ("b", 5) ] (T.counters_alist ());
  T.reset ();
  Alcotest.(check int) "reset clears" 0 (T.counter "a");
  Alcotest.(check (list (pair string int))) "reset empties alist" [] (T.counters_alist ())

let test_telemetry_counters_merge_across_domains () =
  (* counters shard per domain; reads must merge every shard's view and
     reset must clear them all, whatever the job count *)
  List.iter
    (fun jobs ->
      T.reset ();
      ignore
        (Mixsyn_util.Pool.parallel_init ~jobs ~chunk:1 40 (fun i ->
             T.count "shard.hits";
             T.add "shard.bytes" i;
             i));
      Alcotest.(check int)
        (Printf.sprintf "count merged at jobs=%d" jobs)
        40 (T.counter "shard.hits");
      Alcotest.(check int)
        (Printf.sprintf "add merged at jobs=%d" jobs)
        (40 * 39 / 2) (T.counter "shard.bytes");
      (* the run itself emits pool.* counters; compare only our own *)
      let ours =
        List.filter (fun (n, _) -> String.length n >= 6 && String.sub n 0 6 = "shard.")
          (T.counters_alist ())
      in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "alist merged at jobs=%d" jobs)
        [ ("shard.bytes", 40 * 39 / 2); ("shard.hits", 40) ]
        ours;
      T.reset ();
      Alcotest.(check int) "reset clears every shard" 0 (T.counter "shard.hits"))
    [ 1; 2; 4 ]

let test_telemetry_spans_nest_and_accumulate () =
  T.reset ();
  T.with_span "outer" (fun () ->
      T.with_span "inner" (fun () -> ());
      T.with_span "inner" (fun () -> ()));
  T.with_span "outer" (fun () -> ());
  (match T.spans () with
   | [ o ] ->
     Alcotest.(check string) "root name" "outer" o.T.span_name;
     Alcotest.(check int) "outer calls accumulate" 2 o.T.calls;
     (match o.T.children with
      | [ i ] ->
        Alcotest.(check string) "child name" "inner" i.T.span_name;
        Alcotest.(check int) "inner calls accumulate" 2 i.T.calls
      | l -> Alcotest.failf "expected one child span, got %d" (List.length l))
   | l -> Alcotest.failf "expected one root span, got %d" (List.length l));
  Alcotest.(check int) "span_calls sums the forest" 2 (T.span_calls "inner");
  if T.span_seconds "outer" < 0.0 then Alcotest.fail "negative span time"

let test_telemetry_span_exception_safe () =
  T.reset ();
  let result = T.with_span "ok" (fun () -> 41 + 1) in
  Alcotest.(check int) "with_span returns the body's value" 42 result;
  (try T.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "span closed on raise" 1 (T.span_calls "boom");
  (* the stack must have popped: the next span is a sibling root, not a
     child of the raising span *)
  T.with_span "after" (fun () -> ());
  Alcotest.(check int) "three roots" 3 (List.length (T.spans ()));
  T.reset ();
  Alcotest.(check (list pass)) "reset clears spans" [] (T.spans ())

let test_telemetry_report_and_json () =
  T.reset ();
  T.count "hits";
  T.with_span "work" (fun () -> ());
  let r = T.report () in
  let contains needle hay =
    let nl_ = String.length needle and sl = String.length hay in
    let rec scan i = i + nl_ <= sl && (String.sub hay i nl_ = needle || scan (i + 1)) in
    scan 0
  in
  if not (contains "hits" r) then Alcotest.fail "report lacks the counter";
  if not (contains "work" r) then Alcotest.fail "report lacks the span";
  let j = T.to_json () in
  if not (contains "\"hits\"" j && contains "\"work\"" j) then
    Alcotest.fail "json dump lacks entries"

(* --- eval cache --------------------------------------------------------- *)

let test_eval_cache_memoizes () =
  T.reset ();
  let c = EC.create "test.cache" in
  let calls = ref 0 in
  let f k = incr calls; k * 2 in
  Alcotest.(check int) "first lookup computes" 4 (EC.find_or_compute c 2 f);
  Alcotest.(check int) "second lookup replays" 4 (EC.find_or_compute c 2 f);
  Alcotest.(check int) "distinct key computes" 6 (EC.find_or_compute c 3 f);
  Alcotest.(check int) "computation ran once per key" 2 !calls;
  Alcotest.(check int) "hits" 1 (EC.hits c);
  Alcotest.(check int) "misses" 2 (EC.misses c);
  Alcotest.(check int) "length" 2 (EC.length c);
  check_close "hit rate" (1.0 /. 3.0) (EC.hit_rate c);
  Alcotest.(check int) "hits mirrored to telemetry" 1 (T.counter "test.cache.hits");
  Alcotest.(check int) "misses mirrored to telemetry" 2 (T.counter "test.cache.misses")

let test_eval_cache_float_array_keys () =
  let c = EC.create "test.veccache" in
  let f (k : float array) = Array.fold_left ( +. ) 0.0 k in
  ignore (EC.find_or_compute c [| 1.0; 2.0 |] f);
  (* a structurally equal but physically distinct array must hit *)
  check_close "structural key equality" 3.0 (EC.find_or_compute c [| 1.0; 2.0 |] f);
  Alcotest.(check int) "hit on equal array" 1 (EC.hits c)

let test_eval_cache_shards () =
  let c = EC.create "test.shards" in
  Alcotest.(check int) "default stripe count" 16 (EC.shard_count c);
  (* a single stripe is a valid (fully serialized) configuration *)
  let one = EC.create ~shards:1 "test.oneshard" in
  Alcotest.(check int) "one stripe" 1 (EC.shard_count one);
  for k = 0 to 40 do
    Alcotest.(check int) "single-stripe memoizes" (3 * k)
      (EC.find_or_compute one k (fun k -> 3 * k))
  done;
  Alcotest.(check int) "length spans keys" 41 (EC.length one);
  (match EC.create ~shards:0 "test.badshards" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "shards=0 must raise");
  (* counters aggregate across stripes: 64 keys spread over 16 stripes *)
  let spread = EC.create "test.spread" in
  for k = 0 to 63 do
    ignore (EC.find_or_compute spread k (fun k -> k))
  done;
  for k = 0 to 63 do
    ignore (EC.find_or_compute spread k (fun k -> k))
  done;
  Alcotest.(check int) "misses aggregate" 64 (EC.misses spread);
  Alcotest.(check int) "hits aggregate" 64 (EC.hits spread);
  Alcotest.(check int) "length aggregates" 64 (EC.length spread)

let test_eval_cache_single_flight () =
  (* concurrent first visits of one key run the evaluator exactly once:
     the in-flight marker is planted under the stripe lock before anyone
     computes, so late arrivals block on the flight instead of re-running *)
  let c = EC.create "test.flight" in
  let runs = Atomic.make 0 in
  let f k =
    Atomic.incr runs;
    (* widen the race window so waiters really do arrive mid-flight *)
    for _ = 1 to 2_000_000 do
      Domain.cpu_relax ()
    done;
    k * 7
  in
  let workers =
    Array.init 4 (fun _ -> Domain.spawn (fun () -> EC.find_or_compute c 6 f))
  in
  let results = Array.map Domain.join workers in
  Array.iter (fun v -> Alcotest.(check int) "all see one value" 42 v) results;
  Alcotest.(check int) "evaluator ran once" 1 (Atomic.get runs);
  Alcotest.(check int) "one entry" 1 (EC.length c);
  (* an evaluator that raises caches nothing and releases the waiters *)
  let again = Atomic.make 0 in
  (match EC.find_or_compute c 9 (fun _ -> failwith "boom") with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "exception must propagate");
  Alcotest.(check int) "failed flight cached nothing" 1 (EC.length c);
  Alcotest.(check int) "retry recomputes" 63
    (EC.find_or_compute c 9 (fun k -> Atomic.incr again; k * 7));
  Alcotest.(check int) "retry ran" 1 (Atomic.get again)

(* --- json --------------------------------------------------------------- *)

module J = Mixsyn_util.Json

let test_json_parse_values () =
  let parse s =
    match J.parse s with
    | Ok v -> v
    | Error msg -> Alcotest.failf "parse %S: %s" s msg
  in
  Alcotest.(check bool) "null" true (parse " null " = J.Null);
  Alcotest.(check bool) "true" true (parse "true" = J.Bool true);
  Alcotest.(check bool) "num" true (parse "-1.5e3" = J.Num (-1500.0));
  Alcotest.(check bool) "string escapes" true
    (parse "\"a\\n\\\"b\\u0041\"" = J.Str "a\n\"bA");
  Alcotest.(check bool) "array" true
    (parse "[1, 2, 3]" = J.Arr [ J.Num 1.0; J.Num 2.0; J.Num 3.0 ]);
  Alcotest.(check bool) "object" true
    (parse "{\"a\": 1, \"b\": [true]}"
     = J.Obj [ ("a", J.Num 1.0); ("b", J.Arr [ J.Bool true ]) ]);
  List.iter
    (fun s ->
      match J.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parse %S must fail" s)
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "1 2"; "\"unterminated"; "nan" ]

let test_json_print_roundtrip () =
  let rt v =
    let s = J.to_string v in
    match J.parse s with
    | Ok v' when v' = v -> s
    | Ok _ -> Alcotest.failf "%s did not round-trip" s
    | Error msg -> Alcotest.failf "reparse %s: %s" s msg
  in
  Alcotest.(check string) "canonical object" "{\"a\":1,\"b\":[true,null,\"x\"]}"
    (rt (J.Obj [ ("a", J.Num 1.0); ("b", J.Arr [ J.Bool true; J.Null; J.Str "x" ]) ]));
  Alcotest.(check string) "integral float" "42" (rt (J.Num 42.0));
  Alcotest.(check string) "negative zero keeps its sign" "-0" (rt (J.Num (-0.0)));
  Alcotest.(check string) "shortest float" "0.1" (rt (J.Num 0.1));
  Alcotest.(check string) "string escapes" "\"a\\n\\\"\\\\\"" (rt (J.Str "a\n\"\\"));
  Alcotest.(check string) "non-finite is null" "null" (J.to_string (J.Num Float.nan));
  (* every float must reprint to a string that parses back to the same bits *)
  let rng = Rng.create 99 in
  for _ = 1 to 1000 do
    let x = Rng.uniform rng (-1e9) 1e9 *. (10.0 ** float_of_int (Rng.int rng 18 - 9)) in
    let s = J.float_repr x in
    if float_of_string s <> x then Alcotest.failf "float_repr %s loses %.17g" s x
  done

let test_json_accessors () =
  let v =
    J.Obj [ ("n", J.Num 3.0); ("x", J.Num 2.5); ("s", J.Str "hi"); ("b", J.Bool false) ]
  in
  Alcotest.(check (option int)) "to_int" (Some 3) (Option.bind (J.member "n" v) J.to_int);
  Alcotest.(check (option int)) "to_int non-integral" None
    (Option.bind (J.member "x" v) J.to_int);
  Alcotest.(check (option (float 0.0))) "to_float" (Some 2.5)
    (Option.bind (J.member "x" v) J.to_float);
  Alcotest.(check (option string)) "to_str" (Some "hi")
    (Option.bind (J.member "s" v) J.to_str);
  Alcotest.(check (option bool)) "to_bool" (Some false)
    (Option.bind (J.member "b" v) J.to_bool);
  Alcotest.(check (option string)) "missing member" None
    (Option.bind (J.member "zz" v) J.to_str);
  Alcotest.(check (option string)) "member of non-object" None
    (Option.bind (J.member "a" (J.Num 1.0)) J.to_str)

(* --- cancellation -------------------------------------------------------- *)

module C = Mixsyn_util.Cancel

let test_cancel_token () =
  let t = C.create () in
  Alcotest.(check bool) "fresh token live" false (C.cancelled t);
  C.check t;
  C.cancel t;
  Alcotest.(check bool) "cancelled" true (C.cancelled t);
  (match C.check t with
   | exception C.Cancelled -> ()
   | () -> Alcotest.fail "check of cancelled token must raise");
  let expired = C.create ~timeout_s:0.0 () in
  Alcotest.(check bool) "zero timeout expires" true (C.cancelled expired);
  let live = C.create ~timeout_s:60.0 () in
  Alcotest.(check bool) "future deadline live" false (C.cancelled live)

let test_cancel_ambient_guard () =
  C.guard ();
  (* no ambient token: a no-op *)
  Alcotest.(check bool) "no ambient token" true (C.active () = None);
  let t = C.create () in
  let saw = ref false in
  C.with_token t (fun () ->
      Alcotest.(check bool) "ambient installed" true (C.active () = Some t);
      C.guard ();
      C.cancel t;
      match C.guard () with
      | exception C.Cancelled -> saw := true
      | () -> Alcotest.fail "guard must raise after cancel");
  Alcotest.(check bool) "cancel observed" true !saw;
  Alcotest.(check bool) "ambient restored" true (C.active () = None);
  (* exception safety: the token must not leak out of with_token *)
  (try C.with_token (C.create ()) (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check bool) "restored on raise" true (C.active () = None)

(* --- telemetry rollup ----------------------------------------------------- *)

let test_telemetry_rollup () =
  T.reset ();
  Alcotest.(check (list (pair string int))) "empty" [] (T.top_counters ());
  T.add "small" 1;
  T.add "big" 50;
  T.add "mid" 7;
  Alcotest.(check (list (pair string int))) "sorted by value desc"
    [ ("big", 50); ("mid", 7); ("small", 1) ]
    (T.top_counters ());
  Alcotest.(check (list (pair string int))) "limited" [ ("big", 50) ]
    (T.top_counters ~limit:1 ());
  let line = Format.asprintf "%a" (fun ppf () -> T.pp_rollup ppf ()) () in
  Alcotest.(check string) "one-line rollup" "big=50, mid=7, small=1" line;
  T.reset ();
  Alcotest.(check string) "empty rollup"
    "(no counters)"
    (Format.asprintf "%a" (fun ppf () -> T.pp_rollup ppf ()) ())

(* --- units ------------------------------------------------------------- *)

let test_units_format () =
  Alcotest.(check string) "milli" "2.2 mW" (Units.format 2.2e-3 "W");
  Alcotest.(check string) "micro" "15 uA" (Units.format 15e-6 "A");
  Alcotest.(check string) "zero" "0 F" (Units.format 0.0 "F")

let test_units_db () =
  check_close "db" 40.0 (Units.db 100.0);
  check_close "undb" 100.0 (Units.undb 40.0)

(* --- properties -------------------------------------------------------- *)

let prop_interval_add_contains =
  QCheck.Test.make ~name:"interval add contains pointwise sum" ~count:500
    QCheck.(quad (float_range (-100.) 100.) (float_range 0. 10.)
              (float_range (-100.) 100.) (float_range 0. 10.))
    (fun (a, wa, b, wb) ->
      let ia = I.make a (a +. wa) and ib = I.make b (b +. wb) in
      let x = a +. (wa /. 3.0) and y = b +. (wb /. 2.0) in
      I.contains (I.add ia ib) (x +. y))

let prop_interval_mul_contains =
  QCheck.Test.make ~name:"interval mul contains pointwise product" ~count:500
    QCheck.(quad (float_range (-10.) 10.) (float_range 0. 5.)
              (float_range (-10.) 10.) (float_range 0. 5.))
    (fun (a, wa, b, wb) ->
      let ia = I.make a (a +. wa) and ib = I.make b (b +. wb) in
      let x = a +. (wa /. 2.0) and y = b +. (wb /. 4.0) in
      I.contains (I.mul ia ib) (x *. y))

let prop_interval_ediv_contains =
  QCheck.Test.make ~name:"interval ediv contains pointwise quotient" ~count:500
    QCheck.(quad (float_range (-10.) 10.) (float_range 0. 5.)
              (float_range (-10.) 10.) (float_range 0. 5.))
    (fun (a, wa, b, wb) ->
      let ia = I.make a (a +. wa) and ib = I.make b (b +. wb) in
      let x = a +. (wa /. 2.0) and y = b +. (wb /. 3.0) in
      QCheck.assume (y <> 0.0);
      I.contains (I.ediv ia ib) (x /. y))

let prop_interval_monotone_contains =
  (* sqrt/exp/log/powi over a positive box must enclose every pointwise
     image, outward rounding included *)
  QCheck.Test.make ~name:"interval sqrt/exp/log/powi contain pointwise image" ~count:500
    QCheck.(triple (float_range 0.01 50.) (float_range 0. 10.) (float_range 0. 1.))
    (fun (a, w, frac) ->
      let ia = I.make a (a +. w) in
      let x = a +. (frac *. w) in
      I.contains (I.sqrt_ ia) (sqrt x)
      && I.contains (I.exp_ (I.scale 0.1 ia)) (Float.exp (0.1 *. x))
      && I.contains (I.log10_ ia) (Float.log10 x)
      && I.contains (I.powi ia 3) (x *. x *. x)
      && I.contains (I.powi ia 2) (x *. x))

let prop_poly_add_eval =
  QCheck.Test.make ~name:"poly add is pointwise" ~count:300
    QCheck.(pair (list_of_size (Gen.int_range 1 6) (float_range (-5.) 5.))
              (list_of_size (Gen.int_range 1 6) (float_range (-5.) 5.)))
    (fun (ca, cb) ->
      let pa = Poly.of_coeffs (Array.of_list ca) and pb = Poly.of_coeffs (Array.of_list cb) in
      let s = Poly.add pa pb in
      List.for_all
        (fun x -> close ~eps:1e-9 (Poly.eval s x) (Poly.eval pa x +. Poly.eval pb x))
        [ -2.0; -0.5; 0.0; 1.0; 3.0 ])

let prop_poly_mul_eval =
  QCheck.Test.make ~name:"poly mul is pointwise" ~count:300
    QCheck.(pair (list_of_size (Gen.int_range 1 5) (float_range (-3.) 3.))
              (list_of_size (Gen.int_range 1 5) (float_range (-3.) 3.)))
    (fun (ca, cb) ->
      let pa = Poly.of_coeffs (Array.of_list ca) and pb = Poly.of_coeffs (Array.of_list cb) in
      let m = Poly.mul pa pb in
      List.for_all
        (fun x -> close ~eps:1e-7 (Poly.eval m x) (Poly.eval pa x *. Poly.eval pb x))
        [ -1.5; 0.0; 0.7; 2.0 ])

let prop_matrix_solve_residual =
  QCheck.Test.make ~name:"LU solve has small residual" ~count:100
    QCheck.(int_range 1 10)
    (fun n ->
      let rng = Rng.create (n * 7919) in
      let a, x = random_system rng n in
      let b = Real.mat_vec a x in
      let x' = Real.solve a b in
      let b' = Real.mat_vec a x' in
      Array.for_all (fun ok -> ok) (Array.mapi (fun i u -> close ~eps:1e-8 u b'.(i)) b))

(* --- ascii plot ----------------------------------------------------------- *)

let test_ascii_plot_shapes () =
  let pts = Array.init 50 (fun i -> (float_of_int i, sin (float_of_int i /. 5.0))) in
  let chart = Mixsyn_util.Ascii_plot.line ~width:40 ~height:10 pts in
  let lines = String.split_on_char '\n' chart in
  if List.length lines < 10 then Alcotest.fail "chart too short";
  if not (String.contains chart '*') then Alcotest.fail "no data glyphs"

let test_ascii_plot_multi_legend () =
  let a = [| (0.0, 0.0); (1.0, 1.0) |] and b = [| (0.0, 1.0); (1.0, 0.0) |] in
  let chart = Mixsyn_util.Ascii_plot.multi [ ("up", a); ("down", b) ] in
  List.iter
    (fun needle ->
      let nl_ = String.length needle and sl = String.length chart in
      let rec scan i = i + nl_ <= sl && (String.sub chart i nl_ = needle || scan (i + 1)) in
      if not (scan 0) then Alcotest.failf "legend lacks %s" needle)
    [ "up"; "down" ]

let test_ascii_plot_empty () =
  Alcotest.(check string) "empty series" "(no data)\n" (Mixsyn_util.Ascii_plot.line [||])

let () =
  let qt t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "util"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gauss_moments;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent ] );
      ( "matrix",
        [ Alcotest.test_case "solve roundtrip" `Quick test_real_solve_roundtrip;
          Alcotest.test_case "identity" `Quick test_real_identity;
          Alcotest.test_case "singular detected" `Quick test_real_singular;
          Alcotest.test_case "determinant" `Quick test_real_determinant;
          Alcotest.test_case "complex solve" `Quick test_cplx_solve;
          Alcotest.test_case "mat_mul associative" `Quick test_mat_mul_assoc;
          qt prop_matrix_solve_residual ] );
      ( "fmat",
        [ Alcotest.test_case "real bit-exact vs boxed" `Quick test_fmat_real_bitexact;
          Alcotest.test_case "complex bit-exact vs boxed" `Quick test_fmat_cplx_bitexact;
          Alcotest.test_case "scaled pivot threshold" `Quick test_fmat_scaled_pivot;
          Alcotest.test_case "workspace pool reuse" `Quick test_fmat_workspace_reuse ] );
      ( "poly",
        [ Alcotest.test_case "eval" `Quick test_poly_eval;
          Alcotest.test_case "quadratic roots" `Quick test_poly_roots_quadratic;
          Alcotest.test_case "complex roots" `Quick test_poly_roots_complex;
          Alcotest.test_case "from_roots roundtrip" `Quick test_poly_from_roots_roundtrip;
          Alcotest.test_case "derivative" `Quick test_poly_derivative;
          qt prop_poly_add_eval;
          qt prop_poly_mul_eval ] );
      ( "interval",
        [ Alcotest.test_case "basics" `Quick test_interval_basic;
          Alcotest.test_case "reorder" `Quick test_interval_reorder;
          Alcotest.test_case "div by zero-span" `Quick test_interval_div_by_zero_span;
          Alcotest.test_case "intersect" `Quick test_interval_intersect;
          Alcotest.test_case "nan rejected" `Quick test_interval_nan_rejected;
          Alcotest.test_case "empty propagates" `Quick test_interval_empty_propagates;
          Alcotest.test_case "ediv cases" `Quick test_interval_ediv_cases;
          Alcotest.test_case "domain clipping" `Quick test_interval_domain_clipping;
          Alcotest.test_case "powi" `Quick test_interval_powi;
          qt prop_interval_add_contains;
          qt prop_interval_mul_contains;
          qt prop_interval_ediv_contains;
          qt prop_interval_monotone_contains ] );
      ( "stats",
        [ Alcotest.test_case "known values" `Quick test_stats_known;
          Alcotest.test_case "linear fit" `Quick test_stats_linear_fit;
          Alcotest.test_case "geometric mean" `Quick test_stats_geometric_mean;
          Alcotest.test_case "percentile clamps" `Quick test_stats_percentile_clamps_and_sorts ] );
      ( "telemetry",
        [ Alcotest.test_case "counters" `Quick test_telemetry_counters;
          Alcotest.test_case "counters merge across domains" `Quick
            test_telemetry_counters_merge_across_domains;
          Alcotest.test_case "spans nest" `Quick test_telemetry_spans_nest_and_accumulate;
          Alcotest.test_case "exception safety" `Quick test_telemetry_span_exception_safe;
          Alcotest.test_case "report and json" `Quick test_telemetry_report_and_json;
          Alcotest.test_case "rollup" `Quick test_telemetry_rollup ] );
      ( "json",
        [ Alcotest.test_case "parse values" `Quick test_json_parse_values;
          Alcotest.test_case "print roundtrip" `Quick test_json_print_roundtrip;
          Alcotest.test_case "accessors" `Quick test_json_accessors ] );
      ( "cancel",
        [ Alcotest.test_case "token" `Quick test_cancel_token;
          Alcotest.test_case "ambient guard" `Quick test_cancel_ambient_guard ] );
      ( "eval-cache",
        [ Alcotest.test_case "memoizes" `Quick test_eval_cache_memoizes;
          Alcotest.test_case "float array keys" `Quick test_eval_cache_float_array_keys;
          Alcotest.test_case "lock stripes" `Quick test_eval_cache_shards;
          Alcotest.test_case "single flight" `Quick test_eval_cache_single_flight ] );
      ( "ascii-plot",
        [ Alcotest.test_case "shapes" `Quick test_ascii_plot_shapes;
          Alcotest.test_case "legend" `Quick test_ascii_plot_multi_legend;
          Alcotest.test_case "empty" `Quick test_ascii_plot_empty ] );
      ( "units",
        [ Alcotest.test_case "format" `Quick test_units_format;
          Alcotest.test_case "db" `Quick test_units_db ] ) ]
