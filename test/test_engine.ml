(* Engine tests: every analysis checked against closed-form circuit theory. *)

module N = Mixsyn_circuit.Netlist
module Tech = Mixsyn_circuit.Tech
module Mos = Mixsyn_engine.Mos_model
module Dc = Mixsyn_engine.Dc
module Ac = Mixsyn_engine.Ac
module Tran = Mixsyn_engine.Tran
module Noise = Mixsyn_engine.Noise
module Measure = Mixsyn_engine.Measure
module Mna = Mixsyn_engine.Mna

let tech = Tech.generic_07um

let check_close ?(eps = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > eps *. Float.max 1e-30 (Float.abs expected) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

let divider () =
  let c = N.create () in
  let vin = N.new_net ~name:"vin" c and out = N.new_net ~name:"out" c in
  N.add c (N.Vsource { v_name = "v1"; p = vin; n = N.gnd; dc = 2.0; ac = 1.0; v_wave = N.Dc_wave });
  N.add c (N.Resistor { r_name = "r1"; a = vin; b = out; ohms = 1000.0 });
  N.add c (N.Resistor { r_name = "r2"; a = out; b = N.gnd; ohms = 1000.0 });
  N.add c (N.Capacitor { c_name = "c1"; a = out; b = N.gnd; farads = 1e-6 });
  (c, out)

(* --- DC ---------------------------------------------------------------- *)

let test_dc_divider () =
  let c, out = divider () in
  let op = Dc.solve ~tech c in
  check_close "midpoint" 1.0 (Mna.voltage op out)

let test_dc_current_source_into_resistor () =
  let c = N.create () in
  let a = N.new_net c in
  N.add c (N.Isource { i_name = "i1"; p = a; n = N.gnd; dc = 1e-3; ac = 0.0; i_wave = N.Dc_wave });
  N.add c (N.Resistor { r_name = "r1"; a; b = N.gnd; ohms = 2000.0 });
  let op = Dc.solve ~tech c in
  check_close ~eps:1e-5 "ohm's law" 2.0 (Mna.voltage op a)

let test_dc_vccs () =
  (* VCCS of 1 mS sensing 1 V drives 1 mA into 1 kohm: 1 V *)
  let c = N.create () in
  let ctl = N.new_net c and out = N.new_net c in
  N.add c (N.Vsource { v_name = "vc"; p = ctl; n = N.gnd; dc = 1.0; ac = 0.0; v_wave = N.Dc_wave });
  N.add c (N.Vccs { g_name = "g1"; p = N.gnd; n = out; cp = ctl; cn = N.gnd; gm = 1e-3 });
  N.add c (N.Resistor { r_name = "rl"; a = out; b = N.gnd; ohms = 1000.0 });
  let op = Dc.solve ~tech c in
  check_close ~eps:1e-5 "vccs gain" 1.0 (Mna.voltage op out)

let test_dc_power_balance () =
  (* power from the source equals dissipation in the resistors *)
  let c, _ = divider () in
  let op = Dc.solve ~tech c in
  (* 2 V across 2 kohm: 2 mW delivered *)
  check_close ~eps:1e-5 "power" 2e-3 (Dc.power c op)

let test_dc_branch_current () =
  let c, _ = divider () in
  let op = Dc.solve ~tech c in
  let layout = op.Mna.op_layout in
  (* current into the + terminal: the source delivers 1 mA, so -1 mA *)
  check_close ~eps:1e-5 "branch current" (-1e-3) (Mna.branch_current op ~layout "v1")

(* --- MOS model --------------------------------------------------------- *)

let nmos w l = { N.m_name = "m"; drain = 1; gate = 2; source = 0; bulk = 0; w; l; polarity = N.Nmos }
let pmos w l = { (nmos w l) with N.polarity = N.Pmos }

let test_mos_square_law () =
  let m = nmos 10e-6 1e-6 in
  let e = Mos.evaluate tech m ~vd:3.0 ~vg:1.75 ~vs:0.0 ~vb:0.0 in
  (* vov = 1.0, saturation: ids = 0.5*kp*(W/L)*vov^2*(1+lambda*vds) *)
  let lambda = tech.Tech.lambda_factor /. 1e-6 in
  let expected = 0.5 *. tech.Tech.kp_n *. 10.0 *. 1.0 *. (1.0 +. (lambda *. 3.0)) in
  check_close ~eps:0.02 "saturation current" expected e.Mos.ids;
  Alcotest.(check bool) "saturated" true (e.Mos.region = Mos.Saturation)

let test_mos_cutoff () =
  let m = nmos 10e-6 1e-6 in
  let e = Mos.evaluate tech m ~vd:3.0 ~vg:0.2 ~vs:0.0 ~vb:0.0 in
  if e.Mos.ids > 1e-9 then Alcotest.failf "cutoff leaks too much: %g" e.Mos.ids;
  Alcotest.(check bool) "cutoff region" true (e.Mos.region = Mos.Cutoff)

let test_mos_triode () =
  let m = nmos 10e-6 1e-6 in
  let e = Mos.evaluate tech m ~vd:0.1 ~vg:2.75 ~vs:0.0 ~vb:0.0 in
  Alcotest.(check bool) "triode region" true (e.Mos.region = Mos.Triode);
  (* small vds: ids ~ kp W/L vov vds *)
  let expected = tech.Tech.kp_n *. 10.0 *. 2.0 *. 0.1 in
  check_close ~eps:0.1 "triode current" expected e.Mos.ids

let test_mos_pmos_mirror_symmetry () =
  let mn = nmos 10e-6 1e-6 and mp = pmos 10e-6 1e-6 in
  let en = Mos.evaluate tech mn ~vd:2.0 ~vg:1.75 ~vs:0.0 ~vb:0.0 in
  (* mirrored PMOS with kp_p: scale expectation by kp ratio *)
  let ep = Mos.evaluate { tech with Tech.vth0_p = tech.Tech.vth0_n; kp_p = tech.Tech.kp_n }
      mp ~vd:(-2.0) ~vg:(-1.75) ~vs:0.0 ~vb:0.0 in
  check_close ~eps:1e-9 "pmos mirrors nmos" en.Mos.ids (-.ep.Mos.ids)

let test_mos_source_drain_swap () =
  let m = nmos 10e-6 1e-6 in
  let fwd = Mos.evaluate tech m ~vd:1.0 ~vg:2.0 ~vs:0.0 ~vb:0.0 in
  let rev = Mos.evaluate tech m ~vd:0.0 ~vg:2.0 ~vs:1.0 ~vb:0.0 in
  (* exchanging drain and source (same gate and bulk) reverses the current *)
  check_close ~eps:1e-6 "swap antisymmetry" fwd.Mos.ids (-.rev.Mos.ids)

let test_mos_jacobian_consistency () =
  (* finite differences confirm the analytic Jacobian *)
  let m = nmos 20e-6 1.4e-6 in
  let at vd vg vs vb = (Mos.evaluate tech m ~vd ~vg ~vs ~vb).Mos.ids in
  let e = Mos.evaluate tech m ~vd:1.8 ~vg:1.4 ~vs:0.2 ~vb:0.0 in
  let h = 1e-7 in
  let fd f x0 = (f (x0 +. h) -. f (x0 -. h)) /. (2.0 *. h) in
  check_close ~eps:1e-3 "did/dvd" (fd (fun v -> at v 1.4 0.2 0.0) 1.8) e.Mos.did_dvd;
  check_close ~eps:1e-3 "did/dvg" (fd (fun v -> at 1.8 v 0.2 0.0) 1.4) e.Mos.did_dvg;
  check_close ~eps:1e-3 "did/dvs" (fd (fun v -> at 1.8 1.4 v 0.0) 0.2) e.Mos.did_dvs;
  check_close ~eps:1e-3 "did/dvb" (fd (fun v -> at 1.8 1.4 0.2 v) 0.0) e.Mos.did_dvb

let test_mos_diode_bias () =
  let c = N.create () in
  let d = N.new_net c in
  N.add c (N.Isource { i_name = "ib"; p = d; n = N.gnd; dc = 100e-6; ac = 0.0; i_wave = N.Dc_wave });
  N.add c (N.Mos { m_name = "m1"; drain = d; gate = d; source = N.gnd; bulk = N.gnd;
                   w = 7e-6; l = 0.7e-6; polarity = N.Nmos });
  let op = Dc.solve ~tech c in
  let vgs = Mna.voltage op d in
  (* vth + sqrt(2 I / beta) with beta = kp W/L = 1e-3 *)
  check_close ~eps:0.03 "diode vgs" (tech.Tech.vth0_n +. sqrt 0.2) vgs

(* --- AC ------------------------------------------------------------------ *)

let test_ac_rc_pole () =
  let c, out = divider () in
  let op = Dc.solve ~tech c in
  let freqs = Ac.log_sweep ~decades_from:0.0 ~decades_to:5.0 ~points_per_decade:20 in
  let ac = Ac.solve ~tech c op ~freqs in
  let bode = Measure.bode ac ~out in
  check_close ~eps:1e-3 "dc gain" 0.5 (Measure.dc_gain bode);
  (* pole of the divided source: f = 1/(2 pi (R1||R2) C) = 318.3 Hz *)
  (match Measure.bandwidth_3db bode with
   | Some f -> check_close ~eps:0.02 "3 dB" 318.3 f
   | None -> Alcotest.fail "no 3 dB point");
  (* phase at the pole is -45 degrees *)
  let k = ref 0 in
  Array.iteri (fun i p -> if Float.abs (p.Measure.f -. 318.0) < 20.0 && !k = 0 then k := i) bode;
  check_close ~eps:0.05 "pole phase" (-45.0) bode.(!k).Measure.phase

let test_ac_sweep_grid () =
  let freqs = Ac.log_sweep ~decades_from:0.0 ~decades_to:2.0 ~points_per_decade:10 in
  Alcotest.(check int) "grid points" 21 (Array.length freqs);
  check_close "first" 1.0 freqs.(0);
  check_close ~eps:1e-9 "last" 100.0 freqs.(20)

let test_ac_sweep_endpoint () =
  (* regression: (0.3 - 0.1) *. 10. = 1.9999999999999998, which
     int_of_float truncated to 1 — the sweep silently lost its top point *)
  let freqs = Ac.log_sweep ~decades_from:0.1 ~decades_to:0.3 ~points_per_decade:10 in
  Alcotest.(check int) "rounded step count" 3 (Array.length freqs);
  if freqs.(2) <> 10.0 ** 0.3 then
    Alcotest.failf "endpoint %.17g <> 10^0.3 = %.17g" freqs.(2) (10.0 ** 0.3);
  (* the endpoint is pinned exactly (not within an eps) for every sweep
     that lands on its top decade *)
  List.iter
    (fun (a, b, ppd, n) ->
      let f = Ac.log_sweep ~decades_from:a ~decades_to:b ~points_per_decade:ppd in
      Alcotest.(check int) "point count" n (Array.length f);
      if f.(n - 1) <> 10.0 ** b then
        Alcotest.failf "sweep %g..%g ppd %d: last %.17g <> %.17g" a b ppd f.(n - 1)
          (10.0 ** b))
    [ (0.0, 9.0, 300, 2701); (0.0, 9.5, 8, 77); (0.0, 0.5, 2, 2); (2.0, 8.0, 8, 49) ];
  (* a fractional span still rounds to the nearest step count *)
  let frac = Ac.log_sweep ~decades_from:0.3 ~decades_to:6.0 ~points_per_decade:8 in
  Alcotest.(check int) "45.6 steps round to 46" 47 (Array.length frac)

let test_ac_flat_matches_boxed () =
  (* the flat per-domain kernel must reproduce the boxed Matrix.Cplx path
     bit-for-bit on real amplifier systems, at any job count *)
  let module Cplx = Mixsyn_util.Matrix.Cplx in
  List.iter
    (fun t ->
      let nl = t.Mixsyn_circuit.Template.build tech (Mixsyn_circuit.Template.midpoint t) in
      let op = Dc.solve ~tech nl in
      let freqs = Ac.log_sweep ~decades_from:0.0 ~decades_to:9.0 ~points_per_decade:4 in
      let ac = Ac.solve ~tech ~jobs:4 nl op ~freqs in
      let g, c, b = Ac.build_system tech nl op in
      let n = Array.length b in
      Array.iteri
        (fun k f ->
          let omega = 2.0 *. Float.pi *. f in
          let a =
            Array.init n (fun i ->
                Array.init n (fun j ->
                    { Complex.re = g.(i).(j); im = omega *. c.(i).(j) }))
          in
          let x = Cplx.solve a b in
          Array.iteri
            (fun i (v : Complex.t) ->
              if v <> ac.Ac.solutions.(k).(i) then
                Alcotest.failf "%s: solution differs at point %d unknown %d"
                  t.Mixsyn_circuit.Template.t_name k i)
            x)
        freqs)
    [ Mixsyn_circuit.Topology.ota_5t; Mixsyn_circuit.Topology.miller_ota ]

let test_ac_ota_gain_formula () =
  (* 5T OTA gain ~ gm1/(gds2+gds4): check the simulator against the
     small-signal parameters it itself reports *)
  let t = Mixsyn_circuit.Topology.ota_5t in
  let nl = t.Mixsyn_circuit.Template.build tech [| 50e-6; 25e-6; 40e-6; 1e-6; 100e-6; 2e-12 |] in
  let op = Dc.solve ~tech nl in
  let find name =
    List.find (fun ((m : N.mos), _) -> m.N.m_name = name) op.Mna.mos_evals |> snd
  in
  let gm1 = (find "m2").Mos.gm in
  let gds2 = (find "m2").Mos.gds and gds4 = (find "m4").Mos.gds in
  let out = N.find_net nl "out" in
  let freqs = [| 1.0 |] in
  let ac = Ac.solve ~tech nl op ~freqs in
  let gain = Ac.magnitude ac 0 out in
  check_close ~eps:0.1 "gm/gds gain" (gm1 /. (gds2 +. gds4)) gain

(* --- transient -------------------------------------------------------------- *)

let test_tran_rc_step () =
  let c = N.create () in
  let vin = N.new_net c and out = N.new_net ~name:"out" c in
  N.add c (N.Vsource { v_name = "v1"; p = vin; n = N.gnd; dc = 0.0; ac = 0.0;
                       v_wave = N.Pulse { v0 = 0.0; v1 = 1.0; delay = 1e-5; rise = 1e-7; width = 1.0 } });
  N.add c (N.Resistor { r_name = "r1"; a = vin; b = out; ohms = 1000.0 });
  N.add c (N.Capacitor { c_name = "c1"; a = out; b = N.gnd; farads = 1e-7 });
  let op = Dc.solve ~tech c in
  let tr = Tran.solve ~tech c op ~t_stop:1e-3 ~dt:1e-6 in
  let w = Tran.waveform tr out in
  (match Tran.first_crossing w ~level:(1.0 -. exp (-1.0)) with
   | Some t -> check_close ~eps:0.02 "tau" 1.1e-4 t
   | None -> Alcotest.fail "no crossing");
  (* final value *)
  let _, v_final = w.(Array.length w - 1) in
  check_close ~eps:1e-3 "settles to 1" 1.0 v_final

let test_tran_settling_time () =
  let w = Array.init 100 (fun i -> (float_of_int i, 1.0 -. exp (-.float_of_int i /. 10.0))) in
  match Tran.settling_time w ~final:1.0 ~tolerance:0.02 with
  | Some t -> if t < 30.0 || t > 50.0 then Alcotest.failf "settling %g out of range" t
  | None -> Alcotest.fail "expected settling time"

let test_tran_energy_conservation () =
  (* charging a capacitor through a resistor: the capacitor ends with CV^2/2 *)
  let c = N.create () in
  let vin = N.new_net c and out = N.new_net c in
  N.add c (N.Vsource { v_name = "v1"; p = vin; n = N.gnd; dc = 0.0; ac = 0.0;
                       v_wave = N.Pulse { v0 = 0.0; v1 = 2.0; delay = 0.0; rise = 1e-9; width = 1.0 } });
  N.add c (N.Resistor { r_name = "r1"; a = vin; b = out; ohms = 100.0 });
  N.add c (N.Capacitor { c_name = "c1"; a = out; b = N.gnd; farads = 1e-6 });
  let op = Dc.solve ~tech c in
  let tr = Tran.solve ~tech c op ~t_stop:2e-3 ~dt:2e-6 in
  let w = Tran.waveform tr out in
  let _, v_final = w.(Array.length w - 1) in
  check_close ~eps:1e-2 "fully charged" 2.0 v_final

(* --- noise ------------------------------------------------------------------ *)

let test_noise_resistor_4ktr () =
  let c, out = divider () in
  let op = Dc.solve ~tech c in
  let freqs = [| 10.0 |] in
  let r = Noise.analyze ~tech c op ~out ~freqs in
  (* two 1k resistors in parallel seen from out: 500 ohm -> 4kT*500 *)
  let expected = 4.0 *. Mixsyn_util.Units.boltzmann *. tech.Tech.temp *. 500.0 in
  check_close ~eps:0.01 "thermal floor" expected r.Noise.points.(0).Noise.total_psd

let test_noise_ktc () =
  (* integrated noise of an RC is kT/C regardless of R *)
  let total r_ohms =
    let c = N.create () in
    let out = N.new_net ~name:"out" c in
    N.add c (N.Resistor { r_name = "r1"; a = out; b = N.gnd; ohms = r_ohms });
    N.add c (N.Capacitor { c_name = "c1"; a = out; b = N.gnd; farads = 1e-9 });
    let op = Dc.solve ~tech c in
    let freqs = Ac.log_sweep ~decades_from:0.0 ~decades_to:9.0 ~points_per_decade:16 in
    let r = Noise.analyze ~tech c op ~out ~freqs in
    r.Noise.integrated_rms
  in
  let expected = sqrt (Mixsyn_util.Units.boltzmann *. tech.Tech.temp /. 1e-9) in
  check_close ~eps:0.05 "kT/C at 10k" expected (total 1e4);
  check_close ~eps:0.05 "kT/C at 1M" expected (total 1e6)

let test_noise_flicker_corner () =
  (* flicker PSD falls as 1/f *)
  let m = nmos 10e-6 1e-6 in
  let p1 = Mos.flicker_noise_psd tech m ~gm:1e-3 ~freq:100.0 in
  let p2 = Mos.flicker_noise_psd tech m ~gm:1e-3 ~freq:1000.0 in
  check_close ~eps:1e-9 "1/f" 10.0 (p1 /. p2)

(* --- measure ----------------------------------------------------------------- *)

let test_measure_swing () =
  let t = Mixsyn_circuit.Topology.ota_5t in
  let nl = t.Mixsyn_circuit.Template.build tech [| 50e-6; 25e-6; 40e-6; 1e-6; 100e-6; 2e-12 |] in
  let op = Dc.solve ~tech nl in
  let out = N.find_net nl "out" and vdd = N.find_net nl "vdd" in
  let low, high = Measure.output_swing nl op ~out ~vdd_net:vdd in
  if low >= high then Alcotest.fail "inverted swing";
  if high > tech.Tech.vdd then Alcotest.fail "swing above the rail"

let test_measure_ugf_pm () =
  (* all topologies at midpoint must produce a finite, positive UGF *)
  List.iter
    (fun t ->
      let nl = t.Mixsyn_circuit.Template.build tech (Mixsyn_circuit.Template.midpoint t) in
      match Dc.solve ~tech nl with
      | exception Dc.No_convergence _ -> Alcotest.failf "%s: no DC" t.Mixsyn_circuit.Template.t_name
      | op ->
        let out = N.find_net nl "out" in
        let freqs = Ac.log_sweep ~decades_from:0.0 ~decades_to:9.5 ~points_per_decade:8 in
        let ac = Ac.solve ~tech nl op ~freqs in
        let bode = Measure.bode ac ~out in
        (match Measure.unity_gain_freq bode with
         | Some f when f > 0.0 -> ()
         | Some _ | None -> Alcotest.failf "%s: no unity-gain crossing" t.Mixsyn_circuit.Template.t_name))
    Mixsyn_circuit.Topology.all

(* --- cross-analysis properties ------------------------------------------- *)

(* random RC ladder driven by a voltage source *)
let random_ladder seed n =
  let rng = Mixsyn_util.Rng.create seed in
  let c = N.create () in
  let vin = N.new_net ~name:"vin" c in
  N.add c (N.Vsource { v_name = "v1"; p = vin; n = N.gnd; dc = 1.0; ac = 1.0; v_wave = N.Dc_wave });
  let prev = ref vin in
  let last = ref vin in
  for k = 1 to n do
    let node = N.new_net ~name:(Printf.sprintf "l%d" k) c in
    N.add c (N.Resistor { r_name = Printf.sprintf "r%d" k; a = !prev; b = node;
                          ohms = Mixsyn_util.Rng.uniform rng 100.0 10e3 });
    N.add c (N.Capacitor { c_name = Printf.sprintf "c%d" k; a = node; b = N.gnd;
                           farads = Mixsyn_util.Rng.uniform rng 1e-12 1e-9 });
    (* occasional shunt resistor so the DC value is nontrivial *)
    if Mixsyn_util.Rng.bool rng then
      N.add c (N.Resistor { r_name = Printf.sprintf "rs%d" k; a = node; b = N.gnd;
                            ohms = Mixsyn_util.Rng.uniform rng 1e3 100e3 });
    prev := node;
    last := node
  done;
  (c, !last)

let prop_ac_dc_consistency =
  QCheck.Test.make ~name:"AC at ~0 Hz equals the DC solution" ~count:60
    QCheck.(pair (int_range 0 5000) (int_range 1 6))
    (fun (seed, n) ->
      let c, out = random_ladder seed n in
      let op = Dc.solve ~tech c in
      let v_dc = Mna.voltage op out in
      let ac = Ac.solve ~tech c op ~freqs:[| 1e-3 |] in
      let v_ac = Ac.magnitude ac 0 out in
      (* the DC solve biases every node with gmin = 1e-9 S; across up to
         6 x 10 kohm of ladder that shifts the bias by ~1e-4 at most *)
      Float.abs (v_dc -. v_ac) < 1e-4 +. (1e-4 *. Float.abs v_dc))

let prop_transient_settles_to_dc =
  QCheck.Test.make ~name:"transient settles to the DC solution" ~count:20
    QCheck.(pair (int_range 0 5000) (int_range 1 4))
    (fun (seed, n) ->
      let c, out = random_ladder seed n in
      let op = Dc.solve ~tech c in
      (* time constants max ~ 10k * 1n = 1e-5; simulate 10x that *)
      let tr = Tran.solve ~tech c op ~t_stop:1e-4 ~dt:2e-7 in
      let w = Tran.waveform tr out in
      let _, v_final = w.(Array.length w - 1) in
      Float.abs (v_final -. Mna.voltage op out) < 1e-6 +. (1e-4 *. Float.abs v_final))

(* --- dc sweep ------------------------------------------------------------ *)

let test_dc_sweep_divider () =
  let c, out = divider () in
  let values = [| 0.0; 1.0; 2.0; 4.0 |] in
  let results = Dc.sweep ~tech c ~source:"v1" ~values in
  Array.iter
    (fun (v, op) -> check_close ~eps:1e-6 "half the source" (v /. 2.0) (Mna.voltage op out))
    results

let test_dc_sweep_unknown_source () =
  let c, _ = divider () in
  match Dc.sweep ~tech c ~source:"nonexistent" ~values:[| 1.0 |] with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

let test_dc_sweep_comparator_transfer () =
  (* sweeping the + input of the open-loop comparator walks the output
     from one rail toward the other *)
  let t = Mixsyn_circuit.Topology.comparator in
  let nl = t.Mixsyn_circuit.Template.build tech (Mixsyn_circuit.Template.midpoint t) in
  let out = N.find_net nl "out" in
  let vcm = Mixsyn_circuit.Topology.common_mode_fraction *. tech.Tech.vdd in
  let values = Array.init 9 (fun i -> vcm -. 0.02 +. (0.005 *. float_of_int i)) in
  let results = Dc.sweep ~tech nl ~source:"vip" ~values in
  let v_low = Mna.voltage (snd results.(0)) out in
  let v_high = Mna.voltage (snd results.(8)) out in
  if Float.abs (v_high -. v_low) < 1.0 then
    Alcotest.failf "comparator transfer too shallow: %.3f -> %.3f" v_low v_high

let () =
  Alcotest.run "engine"
    [ ( "dc",
        [ Alcotest.test_case "divider" `Quick test_dc_divider;
          Alcotest.test_case "current source" `Quick test_dc_current_source_into_resistor;
          Alcotest.test_case "vccs" `Quick test_dc_vccs;
          Alcotest.test_case "power balance" `Quick test_dc_power_balance;
          Alcotest.test_case "branch current" `Quick test_dc_branch_current;
          Alcotest.test_case "mos diode bias" `Quick test_mos_diode_bias ] );
      ( "mos-model",
        [ Alcotest.test_case "square law" `Quick test_mos_square_law;
          Alcotest.test_case "cutoff" `Quick test_mos_cutoff;
          Alcotest.test_case "triode" `Quick test_mos_triode;
          Alcotest.test_case "pmos mirror symmetry" `Quick test_mos_pmos_mirror_symmetry;
          Alcotest.test_case "source/drain swap" `Quick test_mos_source_drain_swap;
          Alcotest.test_case "jacobian consistency" `Quick test_mos_jacobian_consistency ] );
      ( "ac",
        [ Alcotest.test_case "rc pole" `Quick test_ac_rc_pole;
          Alcotest.test_case "sweep grid" `Quick test_ac_sweep_grid;
          Alcotest.test_case "sweep endpoint exact" `Quick test_ac_sweep_endpoint;
          Alcotest.test_case "flat kernel matches boxed" `Quick test_ac_flat_matches_boxed;
          Alcotest.test_case "ota gain formula" `Quick test_ac_ota_gain_formula ] );
      ( "transient",
        [ Alcotest.test_case "rc step" `Quick test_tran_rc_step;
          Alcotest.test_case "settling time" `Quick test_tran_settling_time;
          Alcotest.test_case "charge completion" `Quick test_tran_energy_conservation ] );
      ( "noise",
        [ Alcotest.test_case "4kTR floor" `Quick test_noise_resistor_4ktr;
          Alcotest.test_case "kT/C invariant" `Quick test_noise_ktc;
          Alcotest.test_case "flicker 1/f" `Quick test_noise_flicker_corner ] );
      ( "cross-analysis",
        [ QCheck_alcotest.to_alcotest prop_ac_dc_consistency;
          QCheck_alcotest.to_alcotest prop_transient_settles_to_dc ] );
      ( "dc-sweep",
        [ Alcotest.test_case "divider" `Quick test_dc_sweep_divider;
          Alcotest.test_case "unknown source" `Quick test_dc_sweep_unknown_source;
          Alcotest.test_case "comparator transfer" `Quick test_dc_sweep_comparator_transfer ] );
      ( "measure",
        [ Alcotest.test_case "swing" `Quick test_measure_swing;
          Alcotest.test_case "ugf on all topologies" `Quick test_measure_ugf_pm ] ) ]
