(* Synthesis service tests: the HTTP framing layer (torn, pipelined,
   oversized and malformed requests) and the end-to-end service contract —
   submit/status/result/cancel/drain over real sockets, rate limiting and
   queue bounds, and journal byte-identity with an equivalent Batch.run,
   including resume from a torn journal. *)

module Http = Mixsyn_util.Http
module Json = Mixsyn_util.Json
module Cancel = Mixsyn_util.Cancel
module Batch = Mixsyn_flow.Batch
module Serve = Mixsyn_flow.Serve

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let temp_journal () =
  let path = Filename.temp_file "msyn_test_serve" ".journal" in
  Sys.remove path;
  path

(* same deterministic stand-in executor as the batch tests: journal bytes
   depend only on the job and seed *)
let cheap_executor (job : Batch.job) ~seed =
  Json.Obj
    [ ("echo", Json.Str job.Batch.job_id);
      ("value", Json.Num (float_of_int (seed * 2) +. 0.5)) ]

(* --- pure request parsing ----------------------------------------------- *)

let parse_exn buf =
  match Http.parse_request buf with
  | Ok v -> v
  | Error _ -> Alcotest.fail "request rejected"

let test_parse_request () =
  let req, consumed =
    parse_exn "POST /jobs?limit=2&full HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbodyleftover"
  in
  Alcotest.(check string) "meth" "POST" req.Http.meth;
  Alcotest.(check string) "path" "/jobs" req.Http.path;
  Alcotest.(check (list (pair string string))) "query" [ ("limit", "2"); ("full", "") ]
    req.Http.query;
  Alcotest.(check string) "body" "body" req.Http.body;
  Alcotest.(check (option string)) "header lowercased" (Some "x") (Http.header req "HOST");
  (* consumed stops at the end of the body, leaving pipelined bytes *)
  Alcotest.(check int) "consumed" (String.length "POST /jobs?limit=2&full HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody") consumed

let test_parse_partial_and_bad () =
  let partial buf =
    match Http.parse_request buf with
    | Error Http.Partial -> ()
    | Ok _ -> Alcotest.failf "parsed a partial request: %S" buf
    | Error _ -> Alcotest.failf "partial misclassified: %S" buf
  in
  let malformed buf =
    match Http.parse_request buf with
    | Error (Http.Malformed _) -> ()
    | _ -> Alcotest.failf "malformed accepted: %S" buf
  in
  partial "GET /x HTTP/1.1\r\nHost:";
  partial "GET /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nhalf";
  partial "";
  malformed "FETCH-THE-THING\r\n\r\n";
  malformed "GET nothing HTTP/1.1\r\n\r\n";
  malformed "GET /x SPDY/9\r\n\r\n";
  malformed "GET /x HTTP/1.1\r\nbadheader\r\n\r\n";
  malformed "GET /x HTTP/1.1\r\nContent-Length: many\r\n\r\n";
  malformed "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"

let test_parse_oversized () =
  let too_large buf =
    match Http.parse_request ~max_header_bytes:64 ~max_body_bytes:32 buf with
    | Error (Http.Too_large _) -> ()
    | _ -> Alcotest.fail "oversized accepted"
  in
  too_large ("GET /x HTTP/1.1\r\nPadding: " ^ String.make 100 'a' ^ "\r\n\r\n");
  (* an unterminated header block already past the cap must not read as
     Partial, or a hostile client grows the buffer forever *)
  too_large ("GET /x HTTP/1.1\r\nPadding: " ^ String.make 100 'a');
  too_large "POST /x HTTP/1.1\r\nContent-Length: 4096\r\n\r\n"

(* --- the buffered connection reader ------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let send fd s = ignore (Unix.write_substring fd s 0 (String.length s))

let test_conn_pipelined () =
  with_socketpair @@ fun client server ->
  let c = Http.conn server in
  (* two full requests land in one write; both must parse without another
     socket read *)
  send client "GET /one HTTP/1.1\r\n\r\nGET /two HTTP/1.1\r\n\r\n";
  (match Http.next_request ~timeout_s:2.0 c with
   | Ok r -> Alcotest.(check string) "first" "/one" r.Http.path
   | Error _ -> Alcotest.fail "first request lost");
  Unix.close client;
  (match Http.next_request ~timeout_s:2.0 c with
   | Ok r -> Alcotest.(check string) "second" "/two" r.Http.path
   | Error _ -> Alcotest.fail "second request lost");
  match Http.next_request ~timeout_s:2.0 c with
  | Error Http.Closed -> ()
  | _ -> Alcotest.fail "expected Closed at end of stream"

let test_conn_torn_and_timeout () =
  with_socketpair (fun client server ->
      let c = Http.conn server in
      send client "POST /jobs HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly-a-fragment";
      Unix.close client;
      match Http.next_request ~timeout_s:2.0 c with
      | Error Http.Torn -> ()
      | _ -> Alcotest.fail "mid-request close must read as Torn");
  with_socketpair (fun client server ->
      let c = Http.conn server in
      send client "GET /slow HTTP/1.1\r\n";
      match Http.next_request ~timeout_s:0.2 c with
      | Error Http.Timeout -> ()
      | _ -> Alcotest.fail "stalled request must time out")

let test_conn_oversized () =
  with_socketpair @@ fun client server ->
  let c = Http.conn ~max_body_bytes:64 server in
  send client "POST /jobs HTTP/1.1\r\nContent-Length: 4096\r\n\r\n";
  match Http.next_request ~timeout_s:2.0 c with
  | Error (Http.Too_big _) -> ()
  | _ -> Alcotest.fail "oversized body must be rejected before it is read"

(* --- service helpers ----------------------------------------------------- *)

let with_server ?(workers = 2) ?(tweak = fun c -> c) ?(executor = cheap_executor)
    ?journal f =
  let journal = match journal with Some j -> j | None -> temp_journal () in
  let cfg = tweak { (Serve.default_config ~journal) with Serve.workers } in
  let slot = Atomic.make None in
  let server = Domain.spawn (fun () -> Serve.run ~executor ~on_ready:(fun h -> Atomic.set slot (Some h)) cfg) in
  let rec handle () =
    match Atomic.get slot with
    | Some h -> h
    | None ->
      Unix.sleepf 0.005;
      handle ()
  in
  let h = handle () in
  let finish () =
    Serve.drain h;
    Domain.join server
  in
  match f h with
  | v ->
    let stats = finish () in
    (v, stats, journal)
  | exception exn ->
    ignore (finish ());
    raise exn

let call h meth path body =
  match
    Http.request ~timeout_s:10.0 ?body ~host:"127.0.0.1" ~port:(Serve.port h) ~meth ~path ()
  with
  | Ok (status, headers, body) -> (status, headers, body)
  | Error msg -> Alcotest.failf "%s %s: %s" meth path msg

let get h path = call h "GET" path None
let post h path body = call h "POST" path (Some body)

let state_of body =
  match Json.parse body with
  | Ok json -> Option.value ~default:"?" (Option.bind (Json.member "state" json) Json.to_str)
  | Error msg -> Alcotest.failf "bad state body %S: %s" body msg

let rec poll_done ?(deadline = 30.0) h id =
  let status, _, body = get h ("/jobs/" ^ id) in
  Alcotest.(check int) ("status of " ^ id) 200 status;
  match state_of body with
  | "queued" | "running" ->
    if deadline <= 0.0 then Alcotest.failf "job %s never finished" id;
    Unix.sleepf 0.02;
    poll_done ~deadline:(deadline -. 0.02) h id
  | s -> s

(* --- end-to-end service tests -------------------------------------------- *)

let test_submit_status_result () =
  let (), stats, journal =
    with_server (fun h ->
        let status, _, body = post h "/jobs" {|{"id": "j1", "seed": 4}|} in
        Alcotest.(check int) "submit" 202 status;
        Alcotest.(check bool) "admitted state" true
          (List.mem (state_of body) [ "queued"; "running" ]);
        (* resubmission of a known id is idempotent, not a second job *)
        let status, _, _ = post h "/jobs" {|{"id": "j1", "seed": 4}|} in
        Alcotest.(check int) "idempotent resubmit" 200 status;
        Alcotest.(check string) "completes" "completed" (poll_done h "j1");
        let status, _, result = get h "/jobs/j1/result" in
        Alcotest.(check int) "result" 200 status;
        (* the result body is the record, which must parse back *)
        (match Result.bind (Json.parse result) Batch.record_of_json with
         | Ok r ->
           Alcotest.(check string) "record id" "j1" r.Batch.rec_id;
           Alcotest.(check int) "seed" 4 r.Batch.rec_seed
         | Error msg -> Alcotest.failf "result line invalid: %s" msg);
        let status, _, body = get h "/jobs" in
        Alcotest.(check int) "list" 200 status;
        (match Result.bind (Json.parse body) (fun j ->
             Option.to_result ~none:"jobs" (Option.bind (Json.member "jobs" j) Json.to_list))
         with
         | Ok [ _ ] -> ()
         | Ok l -> Alcotest.failf "expected 1 job listed, got %d" (List.length l)
         | Error m -> Alcotest.fail m))
  in
  Alcotest.(check int) "accepted" 1 stats.Serve.accepted;
  Alcotest.(check int) "finished" 1 stats.Serve.finished;
  (* drained journal holds exactly the one record *)
  let records, _ = Batch.read_journal journal in
  Alcotest.(check int) "journal records" 1 (List.length records)

let test_error_taxonomy () =
  let (), _, _ =
    with_server (fun h ->
        let status, _, _ = post h "/jobs" "this is not json" in
        Alcotest.(check int) "bad json" 400 status;
        let status, _, _ = post h "/jobs" {|{"seed": 3}|} in
        Alcotest.(check int) "schema violation" 400 status;
        let status, _, _ = get h "/no/such/route" in
        Alcotest.(check int) "unknown route" 404 status;
        let status, _, _ = post h "/healthz" "" in
        Alcotest.(check int) "wrong method" 405 status;
        let status, _, _ = get h "/jobs/ghost" in
        Alcotest.(check int) "unknown job" 404 status;
        let status, _, _ = post h "/jobs/ghost/cancel" "" in
        Alcotest.(check int) "cancel unknown job" 404 status;
        let status, _, _ = get h "/jobs/ghost/result" in
        Alcotest.(check int) "result of unknown job" 404 status;
        let status, _, body = get h "/healthz" in
        Alcotest.(check int) "healthz" 200 status;
        (match Json.parse body with
         | Ok j ->
           Alcotest.(check (option string)) "healthz ok" (Some "ok")
             (Option.bind (Json.member "status" j) Json.to_str)
         | Error m -> Alcotest.fail m))
  in
  ()

let test_metrics () =
  let (), _, _ =
    with_server (fun h ->
        ignore (post h "/jobs" {|{"id": "m1"}|});
        Alcotest.(check string) "done" "completed" (poll_done h "m1");
        let status, _, body = get h "/metrics" in
        Alcotest.(check int) "metrics" 200 status;
        match Json.parse body with
        | Error m -> Alcotest.failf "metrics not JSON: %s" m
        | Ok j ->
          let num path =
            match
              List.fold_left (fun acc k -> Option.bind acc (Json.member k)) (Some j) path
            with
            | Some v -> Option.value ~default:Float.nan (Json.to_float v)
            | None -> Alcotest.failf "metrics lacks %s" (String.concat "." path)
          in
          Alcotest.(check (float 0.0)) "accepted" 1.0 (num [ "jobs"; "accepted" ]);
          Alcotest.(check (float 0.0)) "finished" 1.0 (num [ "jobs"; "finished" ]);
          ignore (num [ "queue"; "capacity" ]);
          ignore (num [ "stage_cache"; "hit_rate" ]);
          (* the telemetry rollup and per-worker busy seconds ride along *)
          (match Json.member "telemetry" j with
           | Some (Json.Obj _) -> ()
           | _ -> Alcotest.fail "metrics lacks telemetry rollup");
          (match Json.member "worker_busy_s" j with
           | Some (Json.Obj l) ->
             Alcotest.(check int) "one entry per worker" 2 (List.length l)
           | _ -> Alcotest.fail "metrics lacks worker_busy_s"))
  in
  ()

let test_rate_limit () =
  let (), stats, _ =
    with_server
      ~tweak:(fun c -> { c with Serve.rate_limit = 0.5; rate_burst = 1.0 })
      (fun h ->
        let status, _, _ = post h "/jobs" {|{"id": "r1"}|} in
        Alcotest.(check int) "first passes" 202 status;
        let status, headers, _ = post h "/jobs" {|{"id": "r2"}|} in
        Alcotest.(check int) "second rate-limited" 429 status;
        (match List.assoc_opt "retry-after" headers with
         | Some v -> Alcotest.(check bool) "retry-after positive" true (int_of_string v > 0)
         | None -> Alcotest.fail "429 without Retry-After");
        Alcotest.(check string) "r1 still completes" "completed" (poll_done h "r1"))
  in
  Alcotest.(check int) "one rejection counted" 1 stats.Serve.rejected_rate_limited

(* an executor that spins at guard points until cancelled (or for
   [busy_s] if it is positive) *)
let spin_executor ?(busy_s = 0.0) () (_ : Batch.job) ~seed =
  let t0 = Unix.gettimeofday () in
  let forever = busy_s <= 0.0 in
  while forever || Unix.gettimeofday () -. t0 < busy_s do
    Cancel.guard ();
    Unix.sleepf 0.005
  done;
  Json.Obj [ ("seed", Json.Num (float_of_int seed)) ]

let rec poll_state ?(deadline = 30.0) h id want =
  let _, _, body = get h ("/jobs/" ^ id) in
  let s = state_of body in
  if s = want then ()
  else begin
    if deadline <= 0.0 then Alcotest.failf "job %s stuck in %s, wanted %s" id s want;
    Unix.sleepf 0.02;
    poll_state ~deadline:(deadline -. 0.02) h id want
  end

let test_queue_full_and_cancel_queued () =
  let (), stats, journal =
    with_server ~workers:1
      ~tweak:(fun c -> { c with Serve.queue_capacity = 1 })
      ~executor:(spin_executor ~busy_s:1.2 ())
      (fun h ->
        ignore (post h "/jobs" {|{"id": "slow"}|});
        (* wait until the lone worker owns it, so the queue is empty again *)
        poll_state h "slow" "running";
        let status, _, _ = post h "/jobs" {|{"id": "waiting"}|} in
        Alcotest.(check int) "fills the queue" 202 status;
        let status, headers, _ = post h "/jobs" {|{"id": "overflow"}|} in
        Alcotest.(check int) "queue full" 429 status;
        Alcotest.(check bool) "retry-after present" true
          (List.mem_assoc "retry-after" headers);
        (* cancel the queued job: journalled immediately, never executed *)
        let status, _, body = post h "/jobs/waiting/cancel" "" in
        Alcotest.(check int) "cancel queued" 200 status;
        Alcotest.(check string) "cancelled state" "cancelled" (state_of body);
        let status, _, result = get h "/jobs/waiting/result" in
        Alcotest.(check int) "cancelled result available" 200 status;
        (match Result.bind (Json.parse result) Batch.record_of_json with
         | Ok r ->
           Alcotest.(check bool) "status cancelled" true (r.Batch.status = Batch.Cancelled);
           Alcotest.(check int) "never attempted" 0 r.Batch.attempts
         | Error m -> Alcotest.fail m);
        let status, _, _ = post h "/jobs/waiting/cancel" "" in
        Alcotest.(check int) "cancel of finished job" 409 status)
  in
  Alcotest.(check int) "queue-full rejection counted" 1 stats.Serve.rejected_queue_full;
  Alcotest.(check int) "cancelled counted" 1 stats.Serve.cancelled;
  (* journal: slow (completed) then waiting (cancelled), in submission order *)
  match Batch.read_journal journal |> fst with
  | [ a; b ] ->
    Alcotest.(check string) "first line" "slow" a.Batch.rec_id;
    Alcotest.(check string) "second line" "waiting" b.Batch.rec_id;
    Alcotest.(check bool) "cancelled journalled" true (b.Batch.status = Batch.Cancelled)
  | l -> Alcotest.failf "expected 2 journal records, got %d" (List.length l)

let test_cancel_running () =
  let (), stats, _ =
    with_server ~workers:1 ~executor:(spin_executor ())
      (fun h ->
        ignore (post h "/jobs" {|{"id": "spin"}|});
        poll_state h "spin" "running";
        let status, _, _ = post h "/jobs/spin/cancel" "" in
        Alcotest.(check int) "cancel accepted" 202 status;
        Alcotest.(check string) "ends cancelled" "cancelled" (poll_done h "spin"))
  in
  Alcotest.(check int) "cancelled counted" 1 stats.Serve.cancelled

let test_drain_rejects_submissions () =
  (* a deliberately slow job keeps the drain window open: the server only
     exits once the queue is empty and nothing is running, so while [d1]
     spins we can observe draining behaviour over live connections *)
  let (), stats, _ =
    with_server ~workers:1 ~executor:(spin_executor ~busy_s:1.5 ())
      (fun h ->
        ignore (post h "/jobs" {|{"id": "d1"}|});
        poll_state h "d1" "running";
        let status, _, _ = post h "/drain" "" in
        Alcotest.(check int) "drain accepted" 202 status;
        Alcotest.(check bool) "draining visible" true (Serve.draining h);
        let status, _, _ = post h "/jobs" {|{"id": "late"}|} in
        Alcotest.(check int) "draining rejects submits" 503 status;
        (* reads keep answering during the drain *)
        let status, _, _ = get h "/jobs/d1" in
        Alcotest.(check int) "status during drain" 200 status)
  in
  Alcotest.(check int) "draining rejection counted" 1 stats.Serve.rejected_draining;
  Alcotest.(check int) "late job not admitted" 1 stats.Serve.accepted

(* the byte-identity contract: a serve session and a batch run over the
   same jobs in the same order write the same journal bytes.  The mix
   covers executed, prefiltered and fault-injected records. *)
let identity_manifest =
  [ {|{"id": "a", "seed": 1}|};
    {|{"id": "b", "seed": 2, "specs": [{"name": "gain_db", "at_least": 40.0}]}|};
    {|{"id": "impossible", "specs": [{"name": "gain_db", "at_least": 1000.0}], "topology": "ota-5t"}|};
    {|{"id": "boom", "fault": "raise"}|};
    {|{"id": "c", "seed": 3}|} ]

let batch_reference () =
  let journal = temp_journal () in
  let jobs =
    match Batch.manifest_of_string (String.concat "\n" identity_manifest) with
    | Ok jobs -> jobs
    | Error msg -> Alcotest.failf "identity manifest invalid: %s" msg
  in
  ignore (Batch.run ~jobs:1 ~executor:cheap_executor ~journal jobs);
  let bytes = read_file journal in
  Sys.remove journal;
  bytes

let test_journal_identity_with_batch () =
  let reference = batch_reference () in
  let (), _, journal =
    with_server (fun h ->
        List.iter
          (fun line ->
            let status, _, _ = post h "/jobs" line in
            if status <> 202 then Alcotest.failf "submit %s -> %d" line status;
            (* sequential submission, like a batch manifest: wait out each
               job so journal order is also completion order *)
            match Json.parse line with
            | Ok j ->
              let id = Option.get (Option.bind (Json.member "id" j) Json.to_str) in
              ignore (poll_done h id)
            | Error m -> Alcotest.fail m)
          identity_manifest)
  in
  let served = read_file journal in
  Sys.remove journal;
  Alcotest.(check string) "serve journal byte-identical to batch" reference served

(* kill-mid-request resume: the same torn-journal machinery batch resume
   uses.  A journal holding a valid prefix plus a torn trailing line —
   what a SIGKILL mid-write leaves — boots cleanly, answers the recorded
   jobs without re-executing them, and finishes byte-identical. *)
let test_resume_from_torn_journal () =
  let reference = batch_reference () in
  let lines = String.split_on_char '\n' reference in
  let first_line = List.hd lines ^ "\n" in
  let torn = first_line ^ String.sub (List.nth lines 1) 0 20 in
  let journal = temp_journal () in
  write_file journal torn;
  let executed = Atomic.make [] in
  let counting_executor job ~seed =
    let rec note () =
      let l = Atomic.get executed in
      if not (Atomic.compare_and_set executed l (job.Batch.job_id :: l)) then note ()
    in
    note ();
    cheap_executor job ~seed
  in
  let (), stats, journal =
    with_server ~journal ~executor:counting_executor (fun h ->
        List.iter
          (fun line ->
            let status, _, _ = post h "/jobs" line in
            (* the resumed job answers 200 from the record, the rest 202 *)
            if status <> 200 && status <> 202 then
              Alcotest.failf "resubmit %s -> %d" line status;
            match Json.parse line with
            | Ok j ->
              let id = Option.get (Option.bind (Json.member "id" j) Json.to_str) in
              ignore (poll_done h id)
            | Error m -> Alcotest.fail m)
          identity_manifest)
  in
  Alcotest.(check int) "one record resumed" 1 stats.Serve.resumed;
  Alcotest.(check bool) "resumed job not re-executed" false
    (List.mem "a" (Atomic.get executed));
  let resumed = read_file journal in
  Sys.remove journal;
  Alcotest.(check string) "torn journal resumes byte-identical" reference resumed

(* a raw-socket request the Http client cannot produce: malformed framing
   must get a clean 400 and the connection must close, not take the accept
   loop down *)
let test_raw_malformed_request () =
  let (), _, _ =
    with_server (fun h ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            Unix.connect fd
              (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", Serve.port h));
            let msg = "NOT-HTTP-AT-ALL\r\n\r\n" in
            ignore (Unix.write_substring fd msg 0 (String.length msg));
            let buf = Bytes.create 1024 in
            let n = Unix.read fd buf 0 1024 in
            let text = Bytes.sub_string buf 0 n in
            Alcotest.(check bool) "answers 400" true
              (String.length text >= 12 && String.sub text 9 3 = "400"));
        (* and the server still answers afterwards *)
        let status, _, _ = get h "/healthz" in
        Alcotest.(check int) "still alive" 200 status)
  in
  ()

let () =
  Alcotest.run "serve"
    [ ( "http",
        [ Alcotest.test_case "parse request" `Quick test_parse_request;
          Alcotest.test_case "partial and malformed" `Quick test_parse_partial_and_bad;
          Alcotest.test_case "oversized" `Quick test_parse_oversized;
          Alcotest.test_case "pipelined connection" `Quick test_conn_pipelined;
          Alcotest.test_case "torn and stalled" `Quick test_conn_torn_and_timeout;
          Alcotest.test_case "oversized on the wire" `Quick test_conn_oversized ] );
      ( "service",
        [ Alcotest.test_case "submit, status, result" `Quick test_submit_status_result;
          Alcotest.test_case "error taxonomy" `Quick test_error_taxonomy;
          Alcotest.test_case "metrics" `Quick test_metrics;
          Alcotest.test_case "rate limit" `Quick test_rate_limit;
          Alcotest.test_case "queue bound and queued cancel" `Quick
            test_queue_full_and_cancel_queued;
          Alcotest.test_case "cancel running job" `Quick test_cancel_running;
          Alcotest.test_case "drain rejects submissions" `Quick
            test_drain_rejects_submissions;
          Alcotest.test_case "journal identity with batch" `Quick
            test_journal_identity_with_batch;
          Alcotest.test_case "resume from torn journal" `Quick
            test_resume_from_torn_journal;
          Alcotest.test_case "raw malformed request" `Quick test_raw_malformed_request ] ) ]
