(* Optimization-engine tests: each algorithm must solve a problem with a
   known optimum. *)

module Rng = Mixsyn_util.Rng
module Anneal = Mixsyn_opt.Anneal
module NM = Mixsyn_opt.Nelder_mead
module GA = Mixsyn_opt.Genetic
module CS = Mixsyn_opt.Corner_search

let check_close ?(eps = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > eps *. Float.max 1e-30 (Float.abs expected) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

(* --- annealing -------------------------------------------------------- *)

let test_anneal_quadratic () =
  let rng = Rng.create 1 in
  let problem =
    { Anneal.initial = [| 8.0; -6.0 |];
      cost = (fun x -> ((x.(0) -. 2.0) ** 2.0) +. ((x.(1) +. 1.0) ** 2.0));
      neighbor =
        (fun rng ~temp01 x ->
          let x' = Array.copy x in
          let i = Rng.int rng 2 in
          x'.(i) <- x'.(i) +. Rng.uniform rng (-1.0) 1.0 *. (0.1 +. temp01);
          x') }
  in
  let schedule = { Anneal.t_start = 10.0; t_end = 1e-6; cooling = 0.9; moves_per_stage = 100 } in
  let r = Anneal.minimize ~schedule ~rng problem in
  if r.Anneal.best_cost > 0.01 then Alcotest.failf "annealing stalled at %g" r.Anneal.best_cost;
  if r.Anneal.proposed <= 0 || r.Anneal.accepted <= 0 then Alcotest.fail "no moves recorded"

let test_anneal_deterministic () =
  let run seed =
    let rng = Rng.create seed in
    let problem =
      { Anneal.initial = [| 5.0 |];
        cost = (fun x -> Float.abs x.(0));
        neighbor =
          (fun rng ~temp01:_ x -> [| x.(0) +. Rng.uniform rng (-0.5) 0.5 |]) }
    in
    (Anneal.minimize ~rng problem).Anneal.best_cost
  in
  check_close "same seed same result" (run 42) (run 42);
  ()

let test_auto_schedule () =
  let s = Anneal.auto_schedule ~cost_scale:100.0 () in
  if s.Anneal.t_start <= s.Anneal.t_end then Alcotest.fail "degenerate schedule";
  (* a non-positive (or nan) cost scale must be rejected at construction,
     not discovered as a divergent schedule deep inside minimize *)
  List.iter
    (fun scale ->
      match Anneal.auto_schedule ~cost_scale:scale () with
      | exception Invalid_argument msg ->
        let has_name =
          let needle = "cost_scale" in
          let nl = String.length needle and sl = String.length msg in
          let rec scan i = i + nl <= sl && (String.sub msg i nl = needle || scan (i + 1)) in
          scan 0
        in
        if not has_name then Alcotest.failf "error %S does not name cost_scale" msg
      | _ -> Alcotest.failf "auto_schedule accepted cost_scale %g" scale)
    [ 0.0; -1.0; -1e9; Float.nan ]

let scalar_problem =
  { Anneal.initial = [| 5.0 |];
    cost = (fun x -> x.(0) ** 2.0);
    neighbor = (fun rng ~temp01:_ x -> [| x.(0) +. Rng.uniform rng (-0.5) 0.5 |]) }

let test_anneal_rejects_divergent_schedule () =
  let rng = Rng.create 1 in
  let expect_invalid name schedule =
    match Anneal.minimize ~schedule ~rng scalar_problem with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "non-terminating schedule accepted: %s" name
  in
  let base = { Anneal.t_start = 10.0; t_end = 1e-3; cooling = 0.9; moves_per_stage = 5 } in
  expect_invalid "cooling = 1" { base with Anneal.cooling = 1.0 };
  expect_invalid "cooling > 1" { base with Anneal.cooling = 1.5 };
  expect_invalid "cooling = 0" { base with Anneal.cooling = 0.0 };
  expect_invalid "cooling < 0" { base with Anneal.cooling = -0.5 };
  expect_invalid "t_end = 0" { base with Anneal.t_end = 0.0 };
  expect_invalid "t_end < 0" { base with Anneal.t_end = -1.0 };
  expect_invalid "t_start = 0" { base with Anneal.t_start = 0.0 };
  (* a valid schedule still runs *)
  ignore (Anneal.minimize ~schedule:base ~rng scalar_problem)

let test_anneal_stage_cap_backstop () =
  (* cooling this close to 1 would take ~10^8 stages to reach t_end; the
     backstop must terminate the run instead *)
  let rng = Rng.create 2 in
  let schedule =
    { Anneal.t_start = 10.0; t_end = 1e-3; cooling = 0.9999999; moves_per_stage = 1 }
  in
  let r = Anneal.minimize ~schedule ~rng scalar_problem in
  if r.Anneal.stages > 100_000 then
    Alcotest.failf "stage cap not applied: %d stages" r.Anneal.stages;
  Alcotest.(check int) "one proposal per capped stage" r.Anneal.stages r.Anneal.proposed

(* --- move-based annealing ------------------------------------------------ *)

(* the quadratic again, as ONE mutable vector per chain: propose perturbs a
   coordinate in place and returns the exact delta, revert restores it *)
type qstate = {
  xs : float array;
  mutable pend_i : int;
  mutable pend_old : float;
  best : float array;
}

let quadratic_cost xs = ((xs.(0) -. 2.0) ** 2.0) +. ((xs.(1) +. 1.0) ** 2.0)

let quadratic_moves =
  { Anneal.create =
      (fun () ->
        { xs = [| 8.0; -6.0 |]; pend_i = -1; pend_old = 0.0; best = [| 8.0; -6.0 |] });
    full_cost = (fun s -> quadratic_cost s.xs);
    propose =
      (fun s rng ~temp01 ->
        let before = quadratic_cost s.xs in
        let i = Rng.int rng 2 in
        s.pend_i <- i;
        s.pend_old <- s.xs.(i);
        s.xs.(i) <- s.xs.(i) +. (Rng.uniform rng (-1.0) 1.0 *. (0.1 +. temp01));
        quadratic_cost s.xs -. before);
    commit = (fun s -> s.pend_i <- -1);
    revert =
      (fun s ->
        if s.pend_i >= 0 then s.xs.(s.pend_i) <- s.pend_old;
        s.pend_i <- -1);
    remember = (fun s -> Array.blit s.xs 0 s.best 0 2);
    recall = (fun s -> Array.blit s.best 0 s.xs 0 2) }

let test_moves_quadratic () =
  let rng = Rng.create 1 in
  let schedule = { Anneal.t_start = 10.0; t_end = 1e-6; cooling = 0.9; moves_per_stage = 100 } in
  let r = Anneal.minimize_moves ~schedule ~rng quadratic_moves in
  if r.Anneal.best_cost > 0.01 then
    Alcotest.failf "move-based annealing stalled at %g" r.Anneal.best_cost;
  if r.Anneal.proposed <= 0 || r.Anneal.accepted <= 0 then Alcotest.fail "no moves recorded";
  (* best_cost must be the exact full cost of the returned state, not the
     accumulated-delta estimate *)
  check_close ~eps:0.0 "exact best cost" (quadratic_cost r.Anneal.best.xs) r.Anneal.best_cost

let test_moves_deterministic () =
  let run () =
    let rng = Rng.create 42 in
    (Anneal.minimize_moves ~rng quadratic_moves).Anneal.best_cost
  in
  check_close ~eps:0.0 "same seed same result" (run ()) (run ())

let test_moves_multistart_jobs_invariant () =
  let run jobs =
    let rng = Rng.create 7 in
    Anneal.minimize_moves_multistart ~jobs ~restarts:4 ~rng quadratic_moves
  in
  let r1 = run 1 and r2 = run 2 and r4 = run 4 in
  check_close ~eps:0.0 "jobs 1 = jobs 2" r1.Anneal.best_cost r2.Anneal.best_cost;
  check_close ~eps:0.0 "jobs 1 = jobs 4" r1.Anneal.best_cost r4.Anneal.best_cost;
  Alcotest.(check bool) "same winning state" true (r1.Anneal.best.xs = r4.Anneal.best.xs);
  Alcotest.(check int) "same total proposals" r1.Anneal.proposed r4.Anneal.proposed

let test_moves_rejects_divergent_schedule () =
  let rng = Rng.create 1 in
  let schedule = { Anneal.t_start = 10.0; t_end = 1e-3; cooling = 1.5; moves_per_stage = 5 } in
  match Anneal.minimize_moves ~schedule ~rng quadratic_moves with
  | exception Invalid_argument msg ->
    if not (String.length msg > 0) then Alcotest.fail "empty error"
  | _ -> Alcotest.fail "divergent schedule accepted"

let test_moves_multistart_rejects_zero_restarts () =
  let rng = Rng.create 1 in
  match Anneal.minimize_moves_multistart ~restarts:0 ~rng quadratic_moves with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "restarts = 0 accepted"

(* --- nelder-mead -------------------------------------------------------- *)

let test_nm_rosenbrock () =
  let f x =
    let a = 1.0 -. x.(0) and b = x.(1) -. (x.(0) ** 2.0) in
    (a ** 2.0) +. (20.0 *. (b ** 2.0))
  in
  let options = { NM.max_evals = 4000; tolerance = 1e-14 } in
  let x, fx, evals =
    NM.minimize ~options ~lower:[| -5.0; -5.0 |] ~upper:[| 5.0; 5.0 |] ~f [| -2.0; 2.0 |]
  in
  if fx > 1e-5 then Alcotest.failf "rosenbrock stalled at %g" fx;
  check_close ~eps:0.01 "x0" 1.0 x.(0);
  check_close ~eps:0.02 "x1" 1.0 x.(1);
  if evals > 4000 then Alcotest.fail "budget exceeded"

let test_nm_respects_bounds () =
  (* optimum outside the box: solution must sit on the boundary *)
  let f x = (x.(0) -. 10.0) ** 2.0 in
  let x, _, _ = NM.minimize ~lower:[| 0.0 |] ~upper:[| 2.0 |] ~f [| 1.0 |] in
  check_close ~eps:1e-6 "clamped to boundary" 2.0 x.(0)

(* --- genetic -------------------------------------------------------------- *)

let test_ga_onemax () =
  let rng = Rng.create 3 in
  let fitness bits = float_of_int (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bits) in
  let best, fit = GA.optimize_bits ~rng ~length:24 ~fitness () in
  if fit < 22.0 then Alcotest.failf "onemax reached only %g/24" fit;
  Alcotest.(check int) "length preserved" 24 (Array.length best)

let test_ga_real_sphere () =
  let rng = Rng.create 5 in
  let fitness x = -.(((x.(0) -. 1.0) ** 2.0) +. ((x.(1) +. 2.0) ** 2.0)) in
  let best, _ =
    GA.optimize_real ~rng ~lower:[| -10.0; -10.0 |] ~upper:[| 10.0; 10.0 |] ~fitness ()
  in
  if Float.abs (best.(0) -. 1.0) > 0.5 || Float.abs (best.(1) +. 2.0) > 0.5 then
    Alcotest.failf "sphere optimum missed: (%g, %g)" best.(0) best.(1)

(* --- corner search ----------------------------------------------------------- *)

let test_corner_search_monotone () =
  (* violation grows with vdd deviation: worst corner is at a vdd extreme *)
  let violation (c : Mixsyn_circuit.Tech.corner) = Float.abs c.Mixsyn_circuit.Tech.d_vdd in
  let corner, value, evals = CS.worst_corner ~refine:false ~violation () in
  check_close ~eps:1e-9 "worst value" 0.1 value;
  check_close ~eps:1e-9 "at the extreme" 0.1 (Float.abs corner.Mixsyn_circuit.Tech.d_vdd);
  if evals < 16 then Alcotest.fail "did not sweep the vertices"

let test_corner_search_refinement () =
  (* maximum in the interior: refinement must beat the vertices *)
  let violation (c : Mixsyn_circuit.Tech.corner) =
    1.0 -. ((c.Mixsyn_circuit.Tech.d_temp -. 30.0) /. 100.0) ** 2.0
  in
  let _, value, _ = CS.worst_corner ~violation () in
  let _, vertex_value, _ = CS.worst_corner ~refine:false ~violation () in
  if value < vertex_value -. 1e-12 then Alcotest.fail "refinement made things worse"

let test_corner_of_point () =
  let c = CS.corner_of_point "x" [| 0.1; -40.0; 0.02; -0.05 |] in
  check_close "vdd" 0.1 c.Mixsyn_circuit.Tech.d_vdd;
  check_close "temp" (-40.0) c.Mixsyn_circuit.Tech.d_temp;
  match CS.corner_of_point "x" [| 1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let () =
  Alcotest.run "opt"
    [ ( "anneal",
        [ Alcotest.test_case "quadratic" `Quick test_anneal_quadratic;
          Alcotest.test_case "deterministic" `Quick test_anneal_deterministic;
          Alcotest.test_case "auto schedule" `Quick test_auto_schedule;
          Alcotest.test_case "rejects divergent schedule" `Quick
            test_anneal_rejects_divergent_schedule;
          Alcotest.test_case "stage cap backstop" `Quick test_anneal_stage_cap_backstop ] );
      ( "anneal-moves",
        [ Alcotest.test_case "quadratic" `Quick test_moves_quadratic;
          Alcotest.test_case "deterministic" `Quick test_moves_deterministic;
          Alcotest.test_case "multistart invariant in jobs" `Quick
            test_moves_multistart_jobs_invariant;
          Alcotest.test_case "rejects divergent schedule" `Quick
            test_moves_rejects_divergent_schedule;
          Alcotest.test_case "rejects zero restarts" `Quick
            test_moves_multistart_rejects_zero_restarts ] );
      ( "nelder-mead",
        [ Alcotest.test_case "rosenbrock" `Quick test_nm_rosenbrock;
          Alcotest.test_case "bounds" `Quick test_nm_respects_bounds ] );
      ( "genetic",
        [ Alcotest.test_case "onemax" `Quick test_ga_onemax;
          Alcotest.test_case "real sphere" `Quick test_ga_real_sphere ] );
      ( "corner-search",
        [ Alcotest.test_case "monotone" `Quick test_corner_search_monotone;
          Alcotest.test_case "refinement" `Quick test_corner_search_refinement;
          Alcotest.test_case "corner_of_point" `Quick test_corner_of_point ] ) ]
