(* Tests for the circuit database, technology and topology templates. *)

module N = Mixsyn_circuit.Netlist
module Tech = Mixsyn_circuit.Tech
module Tp = Mixsyn_circuit.Template
module Top = Mixsyn_circuit.Topology
module D = Mixsyn_circuit.Detector

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. Float.max 1.0 (Float.abs expected) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

(* --- netlist ----------------------------------------------------------- *)

let test_netlist_nets () =
  let c = N.create () in
  let a = N.new_net ~name:"alpha" c in
  let b = N.new_net c in
  Alcotest.(check int) "ground is 0" 0 N.gnd;
  Alcotest.(check int) "first net" 1 a;
  Alcotest.(check int) "second net" 2 b;
  Alcotest.(check int) "count" 3 (N.net_count c);
  Alcotest.(check int) "lookup" a (N.find_net c "alpha");
  Alcotest.(check string) "name" "alpha" (N.net_name c a);
  Alcotest.(check string) "auto name" "n2" (N.net_name c b)

let test_netlist_elements () =
  let c = N.create () in
  let a = N.new_net c in
  N.add c (N.Resistor { r_name = "r1"; a; b = N.gnd; ohms = 100.0 });
  N.add c (N.Mos { m_name = "m1"; drain = a; gate = a; source = N.gnd; bulk = N.gnd;
                   w = 1e-6; l = 1e-6; polarity = N.Nmos });
  Alcotest.(check int) "device count" 2 (N.device_count c);
  Alcotest.(check int) "mos count" 1 (List.length (N.mos_list c));
  let m = N.find_mos c "m1" in
  Alcotest.(check string) "mos name" "m1" m.N.m_name;
  (match N.find_mos c "nope" with
   | exception Not_found -> ()
   | _ -> Alcotest.fail "expected Not_found");
  Alcotest.(check (list string)) "element order" [ "r1"; "m1" ]
    (List.map N.element_name (N.elements c))

let test_netlist_validate () =
  let c = N.create () in
  let a = N.new_net c in
  N.add c (N.Resistor { r_name = "r1"; a; b = N.gnd; ohms = 100.0 });
  Alcotest.(check (list string)) "sound netlist" [] (N.validate c);
  Alcotest.(check (list int)) "element nets" [ a; N.gnd ]
    (N.element_nets (List.hd (N.elements c)));
  (* duplicate element name *)
  N.add c (N.Resistor { r_name = "r1"; a; b = N.gnd; ohms = 200.0 });
  (* terminal referencing a net that was never created *)
  N.add c (N.Capacitor { c_name = "c1"; a; b = 42; farads = 1e-12 });
  (match N.validate c with
   | [ bad; dup ] ->
     Alcotest.(check string) "bad-net-id first" "bad-net-id" (String.sub bad 0 10);
     Alcotest.(check string) "duplicate named" "duplicate-name" (String.sub dup 0 14)
   | other -> Alcotest.failf "expected 2 problems, got %d" (List.length other));
  (* negative ids are out of range too *)
  let c2 = N.create () in
  N.add c2 (N.Resistor { r_name = "r"; a = -1; b = N.gnd; ohms = 1.0 });
  Alcotest.(check int) "negative id flagged" 1 (List.length (N.validate c2))

let test_netlist_copy_independent () =
  let c = N.create () in
  let a = N.new_net c in
  N.add c (N.Resistor { r_name = "r1"; a; b = N.gnd; ohms = 100.0 });
  let c2 = N.copy c in
  N.add c2 (N.Resistor { r_name = "r2"; a; b = N.gnd; ohms = 200.0 });
  Alcotest.(check int) "original unchanged" 1 (N.device_count c);
  Alcotest.(check int) "copy extended" 2 (N.device_count c2)

let test_wave_pulse () =
  let w = N.Pulse { v0 = 0.0; v1 = 2.0; delay = 1.0; rise = 0.5; width = 3.0 } in
  check_close "before" 0.0 (N.wave_value w ~dc:9.0 0.5);
  check_close "mid rise" 1.0 (N.wave_value w ~dc:9.0 1.25);
  check_close "plateau" 2.0 (N.wave_value w ~dc:9.0 2.0);
  check_close "after fall" 0.0 (N.wave_value w ~dc:9.0 6.0)

let test_wave_pwl () =
  let w = N.Pwl [ (0.0, 0.0); (1.0, 2.0); (3.0, 2.0) ] in
  check_close "interp" 1.0 (N.wave_value w ~dc:0.0 0.5);
  check_close "hold" 2.0 (N.wave_value w ~dc:0.0 5.0)

let test_wave_sine () =
  let w = N.Sine { offset = 1.0; ampl = 2.0; freq = 1.0 } in
  check_close ~eps:1e-9 "quarter period" 3.0 (N.wave_value w ~dc:0.0 0.25)

(* --- technology --------------------------------------------------------- *)

let test_corner_nominal_is_identity () =
  let t = Tech.generic_07um in
  let t' = Tech.apply_corner t Tech.nominal_corner in
  check_close "vdd" t.Tech.vdd t'.Tech.vdd;
  check_close "vth" t.Tech.vth0_n t'.Tech.vth0_n;
  check_close "kp" t.Tech.kp_n t'.Tech.kp_n

let test_corner_hot_degrades_mobility () =
  let t = Tech.generic_07um in
  let hot = Tech.apply_corner t { Tech.corner_name = "hot"; d_vdd = 0.0; d_temp = 100.0; d_vth = 0.0; d_kp = 0.0 } in
  if hot.Tech.kp_n >= t.Tech.kp_n then Alcotest.fail "mobility should degrade when hot";
  if hot.Tech.vth0_n >= t.Tech.vth0_n then Alcotest.fail "vth should drop when hot";
  check_close "temp" (t.Tech.temp +. 100.0) hot.Tech.temp

let test_corner_space_has_nominal () =
  Alcotest.(check bool) "nominal present" true
    (List.exists (fun c -> c.Tech.corner_name = "nominal") Tech.corner_space)

(* --- templates ----------------------------------------------------------- *)

let test_template_clamp () =
  let t = Top.ota_5t in
  let x = Array.make (Array.length t.Tp.params) 1e9 in
  let clamped = Tp.clamp t x in
  Array.iteri
    (fun i v ->
      if v > t.Tp.params.(i).Tp.hi +. 1e-30 then Alcotest.fail "clamp exceeded hi")
    clamped

let test_template_midpoint_in_box () =
  List.iter
    (fun t ->
      let m = Tp.midpoint t in
      Array.iteri
        (fun i v ->
          let p = t.Tp.params.(i) in
          if v < p.Tp.lo || v > p.Tp.hi then
            Alcotest.failf "%s midpoint out of box" t.Tp.t_name)
        m)
    Top.all

let test_template_with_fixed () =
  let t = Tp.with_fixed Top.miller_ota [ ("cl", 7e-12) ] in
  let i = Tp.param_index t "cl" in
  check_close "lo pinned" 7e-12 t.Tp.params.(i).Tp.lo;
  check_close "hi pinned" 7e-12 t.Tp.params.(i).Tp.hi;
  check_close "midpoint pinned" 7e-12 (Tp.midpoint t).(i);
  match Tp.with_fixed Top.miller_ota [ ("nonexistent", 1.0) ] with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found for unknown parameter"

let prop_perturb_stays_in_box =
  QCheck.Test.make ~name:"perturb stays inside the parameter box" ~count:300
    QCheck.(pair (int_range 0 10000) (float_range 0.01 0.5))
    (fun (seed, scale) ->
      let t = Top.miller_ota in
      let rng = Mixsyn_util.Rng.create seed in
      let x = Tp.random_point t rng in
      let x' = Tp.perturb t rng ~scale x in
      Array.for_all (fun ok -> ok)
        (Array.mapi
           (fun i v -> v >= t.Tp.params.(i).Tp.lo -. 1e-30 && v <= t.Tp.params.(i).Tp.hi +. 1e-30)
           x'))

(* --- topologies ------------------------------------------------------------ *)

let build t = t.Tp.build Tech.generic_07um (Tp.midpoint t)

let test_topologies_build () =
  List.iter
    (fun t ->
      let nl = build t in
      (* every OTA exposes the standard ports *)
      List.iter
        (fun name ->
          match N.find_net nl name with
          | exception Not_found -> Alcotest.failf "%s lacks net %s" t.Tp.t_name name
          | _ -> ())
        [ "vdd"; "inp"; "inn"; "out" ];
      if List.length (N.mos_list nl) < 4 then
        Alcotest.failf "%s has suspiciously few devices" t.Tp.t_name)
    Top.all

let test_topology_device_counts () =
  let count t = List.length (N.mos_list (build t)) in
  Alcotest.(check int) "ota-5t devices" 6 (count Top.ota_5t);
  Alcotest.(check int) "miller devices" 8 (count Top.miller_ota);
  Alcotest.(check int) "folded-cascode devices" 13 (count Top.folded_cascode)

let test_detector_build () =
  let nl = D.build Tech.generic_07um D.expert_manual_sizing in
  List.iter
    (fun name ->
      match N.find_net nl name with
      | exception Not_found -> Alcotest.failf "detector lacks net %s" name
      | _ -> ())
    [ "csa_in"; "csa_out"; "out"; "vdd" ];
  (* 4 shaper stages -> s0..s3 + out *)
  (match N.find_net nl "s3" with
   | exception Not_found -> Alcotest.fail "detector lacks stage net s3"
   | _ -> ());
  Alcotest.(check int) "one MOS device" 1 (List.length (N.mos_list nl))

let test_detector_vector_roundtrip () =
  let s = D.expert_manual_sizing in
  let s' = D.sizing_of_vector (D.vector_of_sizing s) in
  check_close "w1" s.D.w1 s'.D.w1;
  check_close "tau" s.D.tau s'.D.tau

let test_detector_power_model_monotone () =
  let t = Tech.generic_07um in
  let base = D.estimated_power t D.expert_manual_sizing D.default_config in
  let hotter =
    D.estimated_power t { D.expert_manual_sizing with D.id1 = 2.0 *. D.expert_manual_sizing.D.id1 }
      D.default_config
  in
  if hotter <= base then Alcotest.fail "power should grow with bias current"

(* --- sc filter ---------------------------------------------------------- *)

module SC = Mixsyn_circuit.Sc_filter

let test_sc_biquad_matches_prototype () =
  let spec = { SC.f_clock = 1e6; f0 = 10e3; q = 0.707; gain = 2.0 } in
  let nl = SC.biquad_lowpass spec in
  let op = Mixsyn_engine.Dc.solve nl in
  let out = N.find_net nl "out" in
  let freqs = [| 100.0; 5e3; 10e3; 50e3 |] in
  let ac = Mixsyn_engine.Ac.solve nl op ~freqs in
  Array.iteri
    (fun k f ->
      check_close ~eps:0.01 (Printf.sprintf "f=%g" f) (SC.expected_magnitude spec f)
        (Mixsyn_engine.Ac.magnitude ac k out))
    freqs

let test_sc_clock_guard () =
  match SC.biquad_lowpass { SC.f_clock = 1e5; f0 = 50e3; q = 1.0; gain = 1.0 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for f0 too close to f_clock"

let test_sc_resistance () =
  check_close "equivalence" 1e6 (SC.sc_resistance ~f_clock:1e6 ~farads:1e-12)

let test_sc_spread () =
  let spread = SC.capacitor_spread { SC.f_clock = 1e6; f0 = 10e3; q = 0.707; gain = 2.0 } in
  if spread < 1.0 then Alcotest.fail "spread below 1";
  if spread > 1000.0 then Alcotest.failf "implausible spread %g" spread

let () =
  let qt t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "circuit"
    [ ( "netlist",
        [ Alcotest.test_case "nets" `Quick test_netlist_nets;
          Alcotest.test_case "elements" `Quick test_netlist_elements;
          Alcotest.test_case "validate" `Quick test_netlist_validate;
          Alcotest.test_case "copy independent" `Quick test_netlist_copy_independent;
          Alcotest.test_case "pulse wave" `Quick test_wave_pulse;
          Alcotest.test_case "pwl wave" `Quick test_wave_pwl;
          Alcotest.test_case "sine wave" `Quick test_wave_sine ] );
      ( "tech",
        [ Alcotest.test_case "nominal corner identity" `Quick test_corner_nominal_is_identity;
          Alcotest.test_case "hot corner degrades" `Quick test_corner_hot_degrades_mobility;
          Alcotest.test_case "corner space sane" `Quick test_corner_space_has_nominal ] );
      ( "template",
        [ Alcotest.test_case "clamp" `Quick test_template_clamp;
          Alcotest.test_case "midpoint in box" `Quick test_template_midpoint_in_box;
          Alcotest.test_case "with_fixed" `Quick test_template_with_fixed;
          qt prop_perturb_stays_in_box ] );
      ( "topology",
        [ Alcotest.test_case "all build" `Quick test_topologies_build;
          Alcotest.test_case "device counts" `Quick test_topology_device_counts ] );
      ( "sc-filter",
        [ Alcotest.test_case "matches prototype" `Quick test_sc_biquad_matches_prototype;
          Alcotest.test_case "clock guard" `Quick test_sc_clock_guard;
          Alcotest.test_case "sc resistance" `Quick test_sc_resistance;
          Alcotest.test_case "capacitor spread" `Quick test_sc_spread ] );
      ( "detector",
        [ Alcotest.test_case "build" `Quick test_detector_build;
          Alcotest.test_case "vector roundtrip" `Quick test_detector_vector_roundtrip;
          Alcotest.test_case "power model monotone" `Quick test_detector_power_model_monotone ] ) ]
