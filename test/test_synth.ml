(* Frontend synthesis tests: specs, plans, evaluators, sizing strategies,
   topology selection, manufacturability, the Table 1 machinery. *)

module Spec = Mixsyn_synth.Spec
module DP = Mixsyn_synth.Design_plan
module Sizing = Mixsyn_synth.Sizing
module Eq = Mixsyn_synth.Equations
module Ev = Mixsyn_synth.Evaluate
module TS = Mixsyn_synth.Topo_select
module Man = Mixsyn_synth.Manufacturability
module PD = Mixsyn_synth.Pulse_detector
module Top = Mixsyn_circuit.Topology
module Tp = Mixsyn_circuit.Template

let check_close ?(eps = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > eps *. Float.max 1e-30 (Float.abs expected) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

(* --- specs -------------------------------------------------------------- *)

let test_spec_violation () =
  let s = Spec.spec "gain_db" (Spec.At_least 60.0) in
  check_close "met" 0.0 (Spec.violation_of s [ ("gain_db", 70.0) ]);
  if Spec.violation_of s [ ("gain_db", 54.0) ] <= 0.0 then Alcotest.fail "missed violation";
  if Spec.violation_of s [] <= 0.0 then Alcotest.fail "missing metric not penalised"

let test_spec_between () =
  let s = Spec.spec "gain_v_per_fc" (Spec.Between (19.0, 22.0)) in
  check_close "inside" 0.0 (Spec.violation_of s [ ("gain_v_per_fc", 20.0) ]);
  if Spec.violation_of s [ ("gain_v_per_fc", 25.0) ] <= 0.0 then Alcotest.fail "above band";
  if Spec.violation_of s [ ("gain_v_per_fc", 10.0) ] <= 0.0 then Alcotest.fail "below band"

let test_spec_cost_orders_designs () =
  let specs = [ Spec.spec "gain_db" (Spec.At_least 60.0) ] in
  let objectives = [ Spec.minimize "power_w" ] in
  let good = [ ("gain_db", 65.0); ("power_w", 1e-3) ] in
  let better = [ ("gain_db", 65.0); ("power_w", 1e-4) ] in
  let broken = [ ("gain_db", 40.0); ("power_w", 1e-6) ] in
  let c = Spec.cost ~specs ~objectives in
  if c better >= c good then Alcotest.fail "lower power should cost less";
  if c broken <= c good then Alcotest.fail "violations must dominate objectives"

(* --- design plans --------------------------------------------------------- *)

let ota_specs =
  [ Spec.spec "gain_db" (Spec.At_least 70.0);
    Spec.spec "ugf_hz" (Spec.At_least 10e6);
    Spec.spec "phase_margin_deg" (Spec.At_least 60.0) ]

let context = [ ("cl", 5e-12); ("load_cap_f", 5e-12) ]

let test_plan_miller_meets_specs () =
  let r =
    Sizing.size ~context (Sizing.Design_plan DP.plan_miller) Top.miller_ota ~specs:ota_specs
      ~objectives:[ Spec.minimize "power_w" ]
  in
  if not r.Sizing.meets_specs then
    Alcotest.failf "plan result violates specs: %s"
      (Format.asprintf "%a" Spec.pp_performance r.Sizing.performance);
  (* plans execute without a single simulator call *)
  Alcotest.(check int) "no evaluator calls" 0 r.Sizing.evaluations

let test_plan_ota5t_runs () =
  let specs =
    [ Spec.spec "gain_db" (Spec.At_least 35.0);
      Spec.spec "ugf_hz" (Spec.At_least 20e6) ]
  in
  let x, env = DP.execute ~context:[ ("load_cap_f", 2e-12) ] DP.plan_ota_5t specs in
  Alcotest.(check int) "parameter count" 6 (Array.length x);
  if DP.get env "gm1" <= 0.0 then Alcotest.fail "plan derived nonpositive gm"

let test_plan_check_fails_loudly () =
  (* an impossible power budget trips the plan's check step *)
  let specs =
    [ Spec.spec "gain_db" (Spec.At_least 35.0);
      Spec.spec "ugf_hz" (Spec.At_least 50e6);
      Spec.spec "power_w" (Spec.At_most 1e-9) ]
  in
  match DP.execute ~context:[ ("load_cap_f", 10e-12) ] DP.plan_ota_5t specs with
  | exception DP.Plan_failed _ -> ()
  | _ -> Alcotest.fail "expected Plan_failed on impossible budget"

let test_plan_env_seeding () =
  let env = DP.seed_env ota_specs in
  check_close "gain seeded" 70.0 (DP.get env "spec_gain_db");
  match DP.get env "spec_missing" with
  | exception DP.Plan_failed _ -> ()
  | _ -> Alcotest.fail "expected Plan_failed for missing key"

(* --- evaluators -------------------------------------------------------------- *)

let test_equations_close_to_simulation () =
  (* at the plan's design point, equations and simulation should agree on
     gain within a few dB and on ugf within ~40% (first-order accuracy) *)
  let x, _ = DP.execute ~context DP.plan_miller ota_specs in
  let x = Tp.clamp Top.miller_ota x in
  match (Eq.evaluate Top.miller_ota x, Ev.full_simulation Top.miller_ota x) with
  | Some eq, Some sim ->
    let get p n = Option.get (Spec.lookup p n) in
    if Float.abs (get eq "gain_db" -. get sim "gain_db") > 8.0 then
      Alcotest.failf "gain mismatch: eq %.1f dB vs sim %.1f dB" (get eq "gain_db")
        (get sim "gain_db");
    let ratio = get eq "ugf_hz" /. get sim "ugf_hz" in
    if ratio < 0.6 || ratio > 1.7 then Alcotest.failf "ugf ratio %.2f out of band" ratio
  | _ -> Alcotest.fail "evaluators failed"

let test_awe_hybrid_close_to_simulation () =
  let x = Tp.midpoint Top.ota_5t in
  match (Ev.awe_hybrid Top.ota_5t x, Ev.full_simulation Top.ota_5t x) with
  | Some a, Some s ->
    let get p n = Option.get (Spec.lookup p n) in
    check_close ~eps:0.05 "gain agreement" (get s "gain_db") (get a "gain_db");
    let ratio = get a "ugf_hz" /. get s "ugf_hz" in
    if ratio < 0.9 || ratio > 1.1 then Alcotest.failf "awe ugf ratio %.3f" ratio
  | _ -> Alcotest.fail "evaluators failed"

let test_equations_unsupported () =
  let fake = { Top.ota_5t with Tp.t_name = "unknown-topology" } in
  Alcotest.(check bool) "unsupported" false (Eq.supported fake);
  match Eq.evaluate fake (Tp.midpoint fake) with
  | None -> ()
  | Some _ -> Alcotest.fail "expected None for unsupported topology"

(* --- sizing strategies --------------------------------------------------------- *)

let test_sizing_simulation_annealing () =
  let r =
    Sizing.size ~seed:5 ~context Sizing.Simulation_annealing Top.miller_ota ~specs:ota_specs
      ~objectives:[ Spec.minimize "power_w" ]
  in
  if not r.Sizing.meets_specs then
    Alcotest.failf "simulation annealing failed: %s"
      (Format.asprintf "%a" Spec.pp_performance r.Sizing.performance)

let test_sizing_awe_annealing () =
  let r =
    Sizing.size ~seed:5 ~context Sizing.Awe_annealing Top.miller_ota ~specs:ota_specs
      ~objectives:[ Spec.minimize "power_w" ]
  in
  if not r.Sizing.meets_specs then Alcotest.fail "awe annealing failed"

let test_sizing_pins_context_params () =
  let r =
    Sizing.size ~seed:5 ~context Sizing.Awe_annealing Top.miller_ota ~specs:ota_specs
      ~objectives:[]
  in
  let i = Tp.param_index Top.miller_ota "cl" in
  check_close ~eps:1e-9 "cl pinned" 5e-12 r.Sizing.params.(i)

let test_sizing_guardband_fixes_equations () =
  (* raw equation sizing misses PM at verification; a 25% guardband lands it *)
  let banded =
    Sizing.size ~seed:5 ~context ~guardband:1.25 Sizing.Equation_annealing Top.miller_ota
      ~specs:ota_specs ~objectives:[ Spec.minimize "power_w" ]
  in
  if not banded.Sizing.meets_specs then
    Alcotest.failf "guard-banded equation sizing still misses: %s"
      (Format.asprintf "%a" Spec.pp_performance banded.Sizing.performance)

let test_sizing_cache_bit_identical () =
  (* a short fixed-seed schedule: cache on and cache off must walk the same
     trajectory and land on the same answer, with the cache strictly not
     increasing evaluator work *)
  let schedule =
    { Mixsyn_opt.Anneal.t_start = 5.0; t_end = 0.5; cooling = 0.7; moves_per_stage = 10 }
  in
  let run cache =
    Sizing.size ~seed:7 ~schedule ~cache ~context Sizing.Awe_annealing Top.miller_ota
      ~specs:ota_specs ~objectives:[ Spec.minimize "power_w" ]
  in
  Mixsyn_util.Telemetry.reset ();
  let cached = run true in
  let hits = Mixsyn_util.Telemetry.counter "sizing.cache.hits" in
  let uncached = run false in
  Alcotest.(check (array (float 0.0))) "params bit-identical"
    uncached.Sizing.params cached.Sizing.params;
  check_close ~eps:0.0 "cost identical" uncached.Sizing.cost cached.Sizing.cost;
  if cached.Sizing.performance <> uncached.Sizing.performance then
    Alcotest.fail "verified performance differs with the cache on";
  if cached.Sizing.evaluations > uncached.Sizing.evaluations then
    Alcotest.failf "cache increased evaluator invocations: %d > %d"
      cached.Sizing.evaluations uncached.Sizing.evaluations;
  if hits <= 0 then Alcotest.fail "cache never hit on an annealing run"

(* --- topology selection ----------------------------------------------------------- *)

let test_interval_pruning () =
  let hard = [ Spec.spec "gain_db" (Spec.At_least 85.0) ] in
  let feasible = TS.interval_feasible hard Top.all in
  if List.exists (fun (t : Tp.t) -> t.Tp.t_name = "ota-5t") feasible then
    Alcotest.fail "5T OTA cannot reach 85 dB";
  if not (List.exists (fun (t : Tp.t) -> t.Tp.t_name = "folded-cascode") feasible) then
    Alcotest.fail "folded cascode should survive"

let test_rule_based_ranking () =
  let easy = [ Spec.spec "gain_db" (Spec.At_least 30.0) ] in
  match TS.rule_based easy Top.all with
  | [] -> Alcotest.fail "no verdicts"
  | best :: rest ->
    List.iter
      (fun (v : TS.verdict) -> if v.TS.score > best.TS.score then Alcotest.fail "not sorted")
      rest

let test_ga_select_picks_feasible () =
  let specs =
    [ Spec.spec "gain_db" (Spec.At_least 75.0); Spec.spec "ugf_hz" (Spec.At_least 5e6) ]
  in
  let template, params, _fitness =
    TS.ga_select ~seed:3 specs ~objectives:[ Spec.minimize "power_w" ] Top.all
  in
  if template.Tp.t_name = "ota-5t" then Alcotest.fail "GA chose an infeasible topology";
  Alcotest.(check int) "params decoded" (Array.length template.Tp.params) (Array.length params)

(* --- manufacturability ----------------------------------------------------------- *)

let test_worst_case_violation () =
  let x, _ = DP.execute ~context DP.plan_miller ota_specs in
  let x = Tp.clamp Top.miller_ota x in
  let _, worst = Man.worst_case_violation Top.miller_ota x ~specs:ota_specs in
  let nominal =
    match Eq.evaluate Top.miller_ota x with
    | Some p -> Spec.total_violation ota_specs p
    | None -> infinity
  in
  if worst < nominal -. 1e-12 then Alcotest.fail "worst corner better than nominal"

let test_manufacturability_cpu_ratio () =
  let report =
    Man.synthesize ~seed:3 Top.ota_5t
      ~specs:
        [ Spec.spec "gain_db" (Spec.At_least 35.0);
          Spec.spec "ugf_hz" (Spec.At_least 5e6) ]
      ~objectives:[ Spec.minimize "power_w" ]
  in
  (* the paper reports 4x-10x; we only require a clear overhead *)
  if report.Man.cpu_ratio < 2.0 then
    Alcotest.failf "corner synthesis suspiciously cheap: %.1fx" report.Man.cpu_ratio;
  if report.Man.robust_worst_violation > report.Man.nominal_worst_violation +. 1e-9 then
    Alcotest.fail "robust synthesis should improve the worst corner"

(* --- hierarchy -------------------------------------------------------------- *)

module H = Mixsyn_synth.Hierarchy

let test_hierarchy_two_stage () =
  let specs =
    [ Spec.spec "gain_db" (Spec.At_least 100.0);
      Spec.spec "ugf_hz" (Spec.At_least 5e6) ]
  in
  let r = H.design ~seed:21 H.two_stage_amplifier specs in
  if not (H.meets r specs) then
    Alcotest.failf "hierarchical design misses specs: %s"
      (Format.asprintf "%a" Spec.pp_performance r.H.performance);
  Alcotest.(check int) "two children" 2 (List.length r.H.children);
  (* the chain-level specs must hold; individual leaves may run out of
     margin on their (deliberately tightened) translated specs *)
  List.iter
    (fun (c : H.result) ->
      match c.H.sizing with
      | Some _ ->
        if c.H.performance = [] then Alcotest.failf "%s has no performance" c.H.node_name
      | None -> Alcotest.fail "leaf without sizing")
    r.H.children

let test_hierarchy_composition_sums_power () =
  let specs = [ Spec.spec "gain_db" (Spec.At_least 90.0) ] in
  let r = H.design ~seed:21 H.two_stage_amplifier specs in
  let child_power =
    List.fold_left
      (fun acc (c : H.result) ->
        acc +. Option.value (Spec.lookup c.H.performance "power_w") ~default:0.0)
      0.0 r.H.children
  in
  let total = Option.value (Spec.lookup r.H.performance "power_w") ~default:0.0 in
  check_close ~eps:1e-9 "power sums" child_power total

(* --- yield ------------------------------------------------------------------- *)

let test_yield_robust_beats_nominal () =
  let specs =
    [ Spec.spec "gain_db" (Spec.At_least 70.0);
      Spec.spec "ugf_hz" (Spec.At_least 8e6);
      Spec.spec "phase_margin_deg" (Spec.At_least 55.0) ]
  in
  let report =
    Man.synthesize ~seed:3 Top.miller_ota ~specs ~objectives:[ Spec.minimize "power_w" ]
  in
  let y_nom =
    Man.yield_estimate ~samples:500 Top.miller_ota report.Man.nominal.Sizing.params ~specs
  in
  let y_rob =
    Man.yield_estimate ~samples:500 Top.miller_ota report.Man.robust.Sizing.params ~specs
  in
  if y_rob < y_nom then Alcotest.failf "robust yield %.2f below nominal %.2f" y_rob y_nom;
  if y_rob < 0.9 then Alcotest.failf "robust design yield only %.2f" y_rob

let test_yield_bounds () =
  let y =
    Man.yield_estimate ~samples:200 Top.ota_5t (Tp.midpoint Top.ota_5t)
      ~specs:[ Spec.spec "gain_db" (Spec.At_least 0.0) ]
  in
  if y < 0.0 || y > 1.0 then Alcotest.failf "yield %g out of [0,1]" y

(* --- folded-cascode plan ------------------------------------------------------ *)

let test_plan_folded_cascode_meets () =
  let specs =
    [ Spec.spec "gain_db" (Spec.At_least 80.0);
      Spec.spec "ugf_hz" (Spec.At_least 20e6);
      Spec.spec "phase_margin_deg" (Spec.At_least 60.0) ]
  in
  let r =
    Sizing.size ~context:[ ("cl", 2e-12); ("load_cap_f", 2e-12) ]
      (Sizing.Design_plan DP.plan_folded_cascode) Top.folded_cascode ~specs
      ~objectives:[ Spec.minimize "power_w" ]
  in
  if not r.Sizing.meets_specs then
    Alcotest.failf "folded plan violates: %s"
      (Format.asprintf "%a" Spec.pp_performance r.Sizing.performance)

(* --- converter ---------------------------------------------------------------- *)

module C = Mixsyn_synth.Converter

let test_converter_regions () =
  (* slow + any resolution -> SAR; fast + low resolution -> pipeline or flash *)
  let best spec = snd (C.select spec) in
  (match best { C.bits = 12; rate_hz = 100e3; vref = 2.0 } with
   | Some e -> Alcotest.(check string) "12b/100k" "sar" (C.architecture_name e.C.arch)
   | None -> Alcotest.fail "no architecture for 12b/100k");
  (match best { C.bits = 6; rate_hz = 50e6; vref = 2.0 } with
   | Some e ->
     if e.C.arch = C.Sar then Alcotest.fail "SAR cannot cycle at 50 MS/s"
   | None -> Alcotest.fail "no architecture for 6b/50M")

let test_converter_flash_explodes () =
  let e = C.estimate { C.bits = 14; rate_hz = 44.1e3; vref = 2.0 } C.Flash in
  Alcotest.(check bool) "14-bit flash infeasible" false e.C.feasible

let test_converter_power_monotone_in_rate () =
  let p rate =
    (C.estimate { C.bits = 10; rate_hz = rate; vref = 2.0 } C.Sar).C.power_w
  in
  if p 1e6 <= p 100e3 then Alcotest.fail "power should grow with rate"

let test_converter_synthesize () =
  let s = C.synthesize ~seed:29 { C.bits = 10; rate_hz = 1e6; vref = 2.0 } in
  Alcotest.(check string) "architecture" "sar" (C.architecture_name s.C.chosen.C.arch);
  if not s.C.comparator.Sizing.meets_specs then
    Alcotest.failf "comparator misses translated specs: %s"
      (Format.asprintf "%a" Spec.pp_performance s.C.comparator.Sizing.performance);
  if s.C.total_power_w <= 0.0 then Alcotest.fail "nonpositive refined power"

(* --- pulse detector ----------------------------------------------------------------- *)

let test_detector_measure_consistency () =
  match (PD.measure PD.manual, PD.measure ~use_transient:true PD.manual) with
  | Some fast, Some slow ->
    List.iter
      (fun (name, v) ->
        let v' = Option.get (Spec.lookup slow name) in
        check_close ~eps:0.05 name v' v)
      fast
  | _ -> Alcotest.fail "measurement failed"

let test_detector_manual_meets_specs () =
  match PD.measure ~use_transient:true PD.manual with
  | Some m ->
    if not (Spec.satisfied PD.specs m) then
      Alcotest.failf "manual baseline violates Table 1 specs: %s"
        (Format.asprintf "%a" Spec.pp_performance m)
  | None -> Alcotest.fail "manual design failed to measure"

let test_detector_gain_tracks_a_stage () =
  let module D = Mixsyn_circuit.Detector in
  let gain a =
    match PD.measure { PD.manual with D.a_stage = a } with
    | Some m -> Option.get (Spec.lookup m "gain_v_per_fc")
    | None -> Alcotest.fail "measure failed"
  in
  if gain 9.0 <= gain 7.0 then Alcotest.fail "gain should grow with stage gain"

let () =
  Alcotest.run "synth"
    [ ( "spec",
        [ Alcotest.test_case "violation" `Quick test_spec_violation;
          Alcotest.test_case "between" `Quick test_spec_between;
          Alcotest.test_case "cost ordering" `Quick test_spec_cost_orders_designs ] );
      ( "design-plan",
        [ Alcotest.test_case "miller meets specs" `Quick test_plan_miller_meets_specs;
          Alcotest.test_case "ota-5t runs" `Quick test_plan_ota5t_runs;
          Alcotest.test_case "check fails loudly" `Quick test_plan_check_fails_loudly;
          Alcotest.test_case "env seeding" `Quick test_plan_env_seeding ] );
      ( "evaluators",
        [ Alcotest.test_case "equations vs simulation" `Quick test_equations_close_to_simulation;
          Alcotest.test_case "awe vs simulation" `Quick test_awe_hybrid_close_to_simulation;
          Alcotest.test_case "unsupported template" `Quick test_equations_unsupported ] );
      ( "sizing",
        [ Alcotest.test_case "simulation annealing" `Quick test_sizing_simulation_annealing;
          Alcotest.test_case "awe annealing" `Quick test_sizing_awe_annealing;
          Alcotest.test_case "context pinning" `Quick test_sizing_pins_context_params;
          Alcotest.test_case "guardband" `Quick test_sizing_guardband_fixes_equations;
          Alcotest.test_case "cache bit-identical" `Quick test_sizing_cache_bit_identical ] );
      ( "topology-selection",
        [ Alcotest.test_case "interval pruning" `Quick test_interval_pruning;
          Alcotest.test_case "rule ranking" `Quick test_rule_based_ranking;
          Alcotest.test_case "ga selection" `Quick test_ga_select_picks_feasible ] );
      ( "manufacturability",
        [ Alcotest.test_case "worst-case violation" `Quick test_worst_case_violation;
          Alcotest.test_case "cpu ratio" `Quick test_manufacturability_cpu_ratio ] );
      ( "hierarchy",
        [ Alcotest.test_case "two-stage chain" `Quick test_hierarchy_two_stage;
          Alcotest.test_case "power composition" `Quick test_hierarchy_composition_sums_power ] );
      ( "yield",
        [ Alcotest.test_case "robust beats nominal" `Quick test_yield_robust_beats_nominal;
          Alcotest.test_case "bounds" `Quick test_yield_bounds ] );
      ( "folded-plan",
        [ Alcotest.test_case "meets specs" `Quick test_plan_folded_cascode_meets ] );
      ( "converter",
        [ Alcotest.test_case "architecture regions" `Quick test_converter_regions;
          Alcotest.test_case "flash explodes" `Quick test_converter_flash_explodes;
          Alcotest.test_case "power vs rate" `Quick test_converter_power_monotone_in_rate;
          Alcotest.test_case "synthesize" `Quick test_converter_synthesize ] );
      ( "pulse-detector",
        [ Alcotest.test_case "awe vs transient" `Quick test_detector_measure_consistency;
          Alcotest.test_case "manual meets specs" `Quick test_detector_manual_meets_specs;
          Alcotest.test_case "gain tracks stage gain" `Quick test_detector_gain_tracks_a_stage ] ) ]
