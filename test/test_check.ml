(* Static-verification tests: diagnostics, ERC, DRC, constraint audit and
   the lint gate.  Each rule id gets a deliberately broken fixture; clean
   designs must produce zero diagnostics. *)

module D = Mixsyn_check.Diagnostic
module Erc = Mixsyn_check.Erc
module Drc = Mixsyn_check.Drc
module Audit = Mixsyn_check.Audit
module Lint = Mixsyn_check.Lint
module N = Mixsyn_circuit.Netlist
module Tp = Mixsyn_circuit.Template
module G = Mixsyn_layout.Geom
module Cell = Mixsyn_layout.Cell
module MR = Mixsyn_layout.Maze_router
module CF = Mixsyn_layout.Cell_flow

let tech = Mixsyn_circuit.Tech.generic_07um

let miller_netlist () =
  let x = [| 60e-6; 20e-6; 30e-6; 60e-6; 45e-6; 1e-6; 50e-6; 3e-12; 5e-12 |] in
  Mixsyn_circuit.Topology.miller_ota.Tp.build tech x

let rules ds = List.sort_uniq compare (List.map (fun (d : D.t) -> d.D.rule) ds)
let has rule ds = List.exists (fun (d : D.t) -> d.D.rule = rule) ds

let assert_fires rule ds =
  if not (has rule ds) then
    Alcotest.failf "expected %s among [%s]" rule (String.concat "; " (rules ds))

let assert_severity rule sev ds =
  match List.find_opt (fun (d : D.t) -> d.D.rule = rule) ds with
  | Some d ->
    Alcotest.(check string)
      (rule ^ " severity") (D.severity_name sev) (D.severity_name d.D.severity)
  | None -> Alcotest.failf "%s did not fire" rule

(* --- diagnostic plumbing ------------------------------------------------- *)

let diag_ordering () =
  let ds =
    [ D.info ~rule:"z" ~loc:"a" "i"; D.error ~rule:"b" ~loc:"a" "e";
      D.warning ~rule:"a" ~loc:"a" "w"; D.error ~rule:"a" ~loc:"a" "e" ]
  in
  let sorted = List.sort D.compare ds in
  Alcotest.(check (list string))
    "severity then rule"
    [ "a"; "b"; "a"; "z" ]
    (List.map (fun (d : D.t) -> d.D.rule) sorted);
  Alcotest.(check int) "errors" 2 (List.length (D.errors ds));
  Alcotest.(check int) "warnings" 1 (List.length (D.warnings ds))

let diag_suppress () =
  let ds =
    [ D.error ~rule:"x.err" ~loc:"l" "e"; D.warning ~rule:"x.warn" ~loc:"l" "w";
      D.info ~rule:"x.info" ~loc:"l" "i" ]
  in
  let kept = D.suppress ~rules:[ "x.warn"; "x.info"; "x.err" ] ds in
  (* warnings and infos drop; errors are never suppressed *)
  Alcotest.(check (list string)) "errors survive" [ "x.err" ] (rules kept)

let diag_render_json () =
  Alcotest.(check string) "empty render" "clean: no diagnostics" (D.render []);
  Alcotest.(check string) "empty json" "[]" (D.to_json []);
  let ds = [ D.error ~rule:"r.a" ~loc:"spot \"q\"" "broke" ] in
  Alcotest.(check string) "escaped object"
    "[{\"severity\": \"error\", \"rule\": \"r.a\", \"loc\": \"spot \\\"q\\\"\", \"msg\": \"broke\"}]"
    (D.to_json ds);
  let rendered = D.render ds in
  let tail = "1 error(s), 0 warning(s), 0 info" in
  Alcotest.(check string) "summary line" tail
    (String.sub rendered (String.length rendered - String.length tail) (String.length tail))

(* --- ERC ------------------------------------------------------------------ *)

(* minimal live scaffold: vdd rail with a resistor load keeps every node
   DC-connected, so fixtures only trip the rule under test *)
let scaffold () =
  let nl = N.create () in
  let vdd = N.new_net ~name:"vdd" nl in
  N.add nl (N.Vsource { v_name = "v1"; p = vdd; n = N.gnd; dc = 3.0; ac = 0.0; v_wave = N.Dc_wave });
  (nl, vdd)

let erc_clean () =
  let nl = miller_netlist () in
  Alcotest.(check (list string)) "clean topology" [] (rules (Erc.check nl));
  List.iter
    (fun (t : Tp.t) ->
      let nl = t.Tp.build tech (Tp.midpoint t) in
      Alcotest.(check (list string)) (t.Tp.t_name ^ " clean") [] (rules (Erc.check nl)))
    Mixsyn_circuit.Topology.all

let erc_floating_gate () =
  let nl, vdd = scaffold () in
  let d = N.new_net ~name:"d" nl in
  let g = N.new_net ~name:"g" nl in
  N.add nl (N.Resistor { r_name = "r1"; a = vdd; b = d; ohms = 1e4 });
  N.add nl
    (N.Mos { m_name = "m1"; drain = d; gate = g; source = N.gnd; bulk = N.gnd;
             w = 10e-6; l = 1e-6; polarity = N.Nmos });
  let ds = Erc.check nl in
  assert_fires "erc.floating-gate" ds;
  assert_severity "erc.floating-gate" D.Error ds;
  Alcotest.(check int) "lint gate trips" 1 (Lint.exit_code ds)

let erc_floating_bulk () =
  let nl, vdd = scaffold () in
  let d = N.new_net ~name:"d" nl in
  let b = N.new_net ~name:"b" nl in
  N.add nl (N.Resistor { r_name = "r1"; a = vdd; b = d; ohms = 1e4 });
  N.add nl
    (N.Mos { m_name = "m1"; drain = d; gate = vdd; source = N.gnd; bulk = b;
             w = 10e-6; l = 1e-6; polarity = N.Nmos });
  assert_fires "erc.floating-bulk" (Erc.check nl)

let erc_dangling_net () =
  let nl, vdd = scaffold () in
  let stub = N.new_net ~name:"stub" nl in
  N.add nl (N.Resistor { r_name = "r1"; a = vdd; b = stub; ohms = 1e4 });
  let ds = Erc.check nl in
  assert_fires "erc.dangling-net" ds;
  assert_severity "erc.dangling-net" D.Error ds

let erc_unused_net () =
  let nl, _ = scaffold () in
  let _orphan = N.new_net ~name:"orphan" nl in
  let ds = Erc.check nl in
  assert_fires "erc.unused-net" ds;
  assert_severity "erc.unused-net" D.Warning ds

let erc_no_dc_path () =
  let nl, _ = scaffold () in
  let x = N.new_net ~name:"x" nl in
  N.add nl (N.Capacitor { c_name = "c1"; a = x; b = N.gnd; farads = 1e-12 });
  N.add nl (N.Isource { i_name = "i1"; p = x; n = N.gnd; dc = 1e-6; ac = 0.0; i_wave = N.Dc_wave });
  let ds = Erc.check nl in
  assert_fires "erc.no-dc-path" ds;
  (* a resistor to ground heals it *)
  N.add nl (N.Resistor { r_name = "r1"; a = x; b = N.gnd; ohms = 1e6 });
  Alcotest.(check bool) "healed" false (has "erc.no-dc-path" (Erc.check nl))

let erc_shorted_vsource () =
  let nl, vdd = scaffold () in
  N.add nl
    (N.Vsource { v_name = "vshort"; p = vdd; n = vdd; dc = 1.0; ac = 0.0; v_wave = N.Dc_wave });
  assert_fires "erc.shorted-vsource" (Erc.check nl)

let erc_parallel_vsources () =
  let nl, vdd = scaffold () in
  N.add nl
    (N.Vsource { v_name = "v2"; p = vdd; n = N.gnd; dc = 2.5; ac = 0.0; v_wave = N.Dc_wave });
  assert_fires "erc.parallel-vsources" (Erc.check nl)

let erc_values () =
  let nl, vdd = scaffold () in
  N.add nl (N.Resistor { r_name = "rbad"; a = vdd; b = N.gnd; ohms = -50.0 });
  N.add nl (N.Capacitor { c_name = "chuge"; a = vdd; b = N.gnd; farads = 1.0 });
  let ds = Erc.check nl in
  assert_fires "erc.nonpositive-value" ds;
  assert_severity "erc.nonpositive-value" D.Error ds;
  assert_fires "erc.suspicious-value" ds;
  assert_severity "erc.suspicious-value" D.Warning ds

let erc_structural () =
  let nl, vdd = scaffold () in
  N.add nl (N.Resistor { r_name = "r1"; a = vdd; b = N.gnd; ohms = 1e3 });
  N.add nl (N.Resistor { r_name = "r1"; a = vdd; b = N.gnd; ohms = 2e3 });
  N.add nl (N.Capacitor { c_name = "c1"; a = vdd; b = 99; farads = 1e-12 });
  let ds = Erc.check nl in
  assert_fires "erc.duplicate-name" ds;
  assert_fires "erc.bad-net-id" ds

(* --- DRC ------------------------------------------------------------------ *)

let lambda = 0.35e-6

let drc_clean () =
  (* an isolated exactly-minimum-width wire breaks nothing *)
  let ds = Drc.check [ ("a", G.rect G.Metal1 0.0 0.0 (3.0 *. lambda) (30.0 *. lambda)) ] in
  Alcotest.(check (list string)) "clean" [] (rules ds)

let drc_min_width () =
  let ds = Drc.check [ ("a", G.rect G.Metal1 0.0 0.0 (2.0 *. lambda) (30.0 *. lambda)) ] in
  assert_fires "drc.min-width" ds;
  assert_severity "drc.min-width" D.Error ds

let drc_min_spacing () =
  let bar owner x = (owner, G.rect G.Metal1 x 0.0 (x +. (3.0 *. lambda)) (30.0 *. lambda)) in
  (* one lambda apart: violates the 3-lambda metal1 spacing *)
  let ds = Drc.check [ bar "a" 0.0; bar "b" (4.0 *. lambda) ] in
  assert_fires "drc.min-spacing" ds;
  assert_severity "drc.min-spacing" D.Error ds;
  (* same owner at the same distance is internal geometry: fine *)
  Alcotest.(check (list string)) "same owner ok" []
    (rules (Drc.check [ bar "a" 0.0; bar "a" (4.0 *. lambda) ]));
  (* far enough apart: fine *)
  Alcotest.(check (list string)) "spaced ok" []
    (rules (Drc.check [ bar "a" 0.0; bar "b" (6.0 *. lambda) ]))

let drc_route_spacing () =
  let bar owner x = (owner, G.rect G.Metal1 x 0.0 (x +. (3.0 *. lambda)) (30.0 *. lambda)) in
  let ds = Drc.check [ bar "a" 0.0; bar "net:sig" (4.0 *. lambda) ] in
  (* wire-involved proximity is reported but demoted to a warning *)
  assert_fires "drc.route-spacing" ds;
  assert_severity "drc.route-spacing" D.Warning ds;
  Alcotest.(check bool) "not an error" false (has "drc.min-spacing" ds)

let drc_contact_size () =
  let ds = Drc.check [ ("a", G.rect G.Contact 0.0 0.0 (3.0 *. lambda) (2.0 *. lambda)) ] in
  assert_fires "drc.contact-size" ds

let drc_contact_enclosure () =
  let cut = G.rect G.Contact 0.0 0.0 (2.0 *. lambda) (2.0 *. lambda) in
  (* bare cut: no diffusion, no metal *)
  assert_fires "drc.contact-enclosure" (Drc.check [ ("a", cut) ]);
  (* properly nested cut passes *)
  let diff = G.rect G.Ndiff (-.lambda) (-.lambda) (3.0 *. lambda) (3.0 *. lambda) in
  let m1 = G.rect G.Metal1 (-.lambda) (-.lambda) (3.0 *. lambda) (3.0 *. lambda) in
  Alcotest.(check bool) "enclosed ok" false
    (has "drc.contact-enclosure" (Drc.check [ ("a", cut); ("a", diff); ("a", m1) ]))

let drc_gate_extension () =
  let diff = G.rect G.Ndiff 0.0 0.0 (20.0 *. lambda) (10.0 *. lambda) in
  (* poly strip crossing the diffusion but stopping flush with its edge *)
  let short_poly = G.rect G.Poly (8.0 *. lambda) 0.0 (10.0 *. lambda) (10.0 *. lambda) in
  assert_fires "drc.gate-extension" (Drc.check [ ("a", diff); ("a", short_poly) ]);
  let good_poly =
    G.rect G.Poly (8.0 *. lambda) (-2.0 *. lambda) (10.0 *. lambda) (12.0 *. lambda)
  in
  Alcotest.(check bool) "endcapped ok" false
    (has "drc.gate-extension" (Drc.check [ ("a", diff); ("a", good_poly) ]))

let drc_well_enclosure () =
  let pdiff = G.rect G.Pdiff 0.0 0.0 (10.0 *. lambda) (10.0 *. lambda) in
  assert_fires "drc.well-enclosure" (Drc.check [ ("a", pdiff) ]);
  let well =
    G.rect G.Nwell (-5.0 *. lambda) (-5.0 *. lambda) (15.0 *. lambda) (15.0 *. lambda)
  in
  Alcotest.(check bool) "in well ok" false
    (has "drc.well-enclosure" (Drc.check [ ("a", pdiff); ("a", well) ]))

let drc_layout_clean () =
  (* a real generated layout carries zero DRC errors (route-spacing and
     well-spacing warnings are expected artifacts) *)
  let nl = miller_netlist () in
  let r = CF.koan ~seed:23 nl in
  let ds = Drc.check (CF.tagged_geometry r) in
  Alcotest.(check (list string)) "no errors" [] (rules (D.errors ds))

(* --- audit ---------------------------------------------------------------- *)

(* the miller pair (m1, m2) merges into one stack; nudging m2's L by 0.5 %
   keeps the pair matched (1 % tolerance) but splits the stack, so the
   audit checks the mirror geometry *)
let split_pair_netlist () =
  let nl = miller_netlist () in
  N.map_elements nl (function
    | N.Mos m when m.N.m_name = "m2" -> N.Mos { m with N.l = m.N.l *. 1.005 }
    | e -> e)

let audit_clean () =
  let nl = miller_netlist () in
  let r = CF.koan ~seed:23 nl in
  let ds = Audit.check nl r in
  Alcotest.(check (list string)) "no errors" [] (rules (D.errors ds));
  (* merged pairs are narrated, not flagged *)
  assert_fires "audit.pair-merged" ds;
  assert_severity "audit.pair-merged" D.Info ds

let audit_symmetry_broken () =
  let nl = split_pair_netlist () in
  let r = CF.koan ~seed:23 nl in
  let displaced =
    { r with
      CF.placed =
        List.map
          (fun (c : Cell.t) ->
            if c.Cell.cell_name = "m2" then Cell.translate 0.0 9e-6 c else c)
          r.CF.placed }
  in
  let ds = Audit.check nl displaced in
  assert_fires "audit.symmetry-broken" ds;
  assert_severity "audit.symmetry-broken" D.Error ds

let audit_symmetry_missing () =
  let nl = split_pair_netlist () in
  let r = CF.koan ~seed:23 nl in
  let gutted =
    { r with
      CF.placed = List.filter (fun (c : Cell.t) -> c.Cell.cell_name <> "m2") r.CF.placed }
  in
  assert_fires "audit.symmetry-missing" (Audit.check nl gutted)

let audit_unrouted_net () =
  let nl = miller_netlist () in
  let r = CF.koan ~seed:23 nl in
  let broken = { r with CF.route = { r.CF.route with MR.failed = [ "o1" ] } } in
  assert_fires "audit.unrouted-net" (Audit.check nl broken)

let audit_open_net () =
  let nl = miller_netlist () in
  let r = CF.koan ~seed:23 nl in
  (* erase the routed geometry of a multi-cell net *)
  let victim = "o1" in
  let broken =
    { r with
      CF.route =
        { r.CF.route with
          MR.wires =
            List.filter (fun (w : MR.wire) -> w.MR.w_net <> victim) r.CF.route.MR.wires } }
  in
  assert_fires "audit.open-net" (Audit.check nl broken)

(* --- certified bounds ----------------------------------------------------- *)

module B = Mixsyn_check.Bounds
module Registry = Mixsyn_check.Registry
module I = Mixsyn_util.Interval
module Spec = Mixsyn_synth.Spec
module Eq = Mixsyn_synth.Equations
module Topo = Mixsyn_circuit.Topology

let modelled () = List.filter Eq.supported Topo.all

let find_template name = List.find (fun (t : Tp.t) -> t.Tp.t_name = name) Topo.all

let pp_iv iv = Format.asprintf "%a" I.pp iv

let bounds_certify_midpoint () =
  List.iter
    (fun (t : Tp.t) ->
      let certified = B.certify ~tech t in
      Alcotest.(check bool) (t.Tp.t_name ^ " modelled") true (certified <> []);
      match Eq.evaluate ~tech t (Tp.midpoint t) with
      | None -> Alcotest.failf "%s: no concrete equations" t.Tp.t_name
      | Some perf ->
        List.iter
          (fun (name, v) ->
            match List.assoc_opt name certified with
            | None -> Alcotest.failf "%s: metric %s not certified" t.Tp.t_name name
            | Some iv ->
              if not (I.contains iv v) then
                Alcotest.failf "%s/%s: midpoint value %g outside certified %s"
                  t.Tp.t_name name v (pp_iv iv))
          perf)
    (modelled ())

let bounds_context_pins () =
  (* pinning a parameter is a sub-box, so by inclusion isotonicity every
     certified enclosure can only narrow; unknown names must be ignored *)
  let t = find_template "ota-5t" in
  let free = B.certify ~tech t in
  let pinned = B.certify ~tech ~context:[ ("cl", 5e-12); ("no_such_param", 1.0) ] t in
  Alcotest.(check int) "same metric set" (List.length free) (List.length pinned);
  List.iter
    (fun (name, iv) ->
      let iv0 = List.assoc name free in
      if not (I.subset iv iv0) then
        Alcotest.failf "%s: pinned %s escapes free %s" name (pp_iv iv) (pp_iv iv0))
    pinned

let bounds_infeasible_spec () =
  let impossible = Spec.spec "gain_db" (Spec.At_least 500.0) in
  let unknown = Spec.spec "no_such_metric" (Spec.At_least 1.0) in
  List.iter
    (fun (t : Tp.t) ->
      (match B.infeasible_specs ~tech [ impossible; unknown ] t with
       | [ (s, iv) ] ->
         Alcotest.(check string) (t.Tp.t_name ^ " flags gain") "gain_db" s.Spec.s_name;
         Alcotest.(check bool) (t.Tp.t_name ^ " enclosure excludes 500") true
           (I.hi iv < 500.0)
       | l ->
         Alcotest.failf "%s: expected exactly the gain spec, got %d infeasible"
           t.Tp.t_name (List.length l));
      Alcotest.(check bool) (t.Tp.t_name ^ " infeasible") false
        (B.feasible ~tech [ impossible ] t))
    (modelled ())

let bounds_annotation_drift () =
  (* the hand-written feasibility tables carry exactly three optimistic
     claims; anything else appearing here is a regression in the tables or
     a hole torn in the certified enclosures *)
  let drifts = List.concat_map (fun t -> B.annotation_drift ~tech t) Topo.all in
  List.iter
    (fun (d : D.t) ->
      Alcotest.(check string) "rule" "feas.annotation-drift" d.D.rule;
      Alcotest.(check string) "severity" (D.severity_name D.Warning)
        (D.severity_name d.D.severity))
    drifts;
  Alcotest.(check (list string)) "exactly the known drifts"
    [ "comparator/power_w"; "comparator/ugf_hz"; "folded-cascode/power_w" ]
    (List.sort compare (List.map (fun (d : D.t) -> d.D.loc) drifts))

let contract_specs =
  [ Spec.spec "gain_db" (Spec.At_least 70.0); Spec.spec "ugf_hz" (Spec.At_least 1e7) ]

let bounds_contract_prunes () =
  let t = find_template "ota-5t" in
  let c = B.contract ~tech ~context:[ ("cl", 5e-12) ] contract_specs t in
  Alcotest.(check bool) "pruned boxes" true (c.B.pruned > 0);
  Alcotest.(check bool) "not hopeless" false c.B.c_infeasible;
  Alcotest.(check bool) "explored more than pruned" true (c.B.explored > c.B.pruned);
  (* soundness: the contracted box never grows past the original *)
  Array.iteri
    (fun i (p : Tp.param) ->
      let p' = c.B.c_template.Tp.params.(i) in
      if p'.Tp.lo < p.Tp.lo || p'.Tp.hi > p.Tp.hi then
        Alcotest.failf "%s: contracted [%g, %g] escapes [%g, %g]" p.Tp.p_name
          p'.Tp.lo p'.Tp.hi p.Tp.lo p.Tp.hi)
    t.Tp.params

let bounds_contract_identity () =
  (* nothing prunes on the miller OTA under these specs, so the contractor
     must hand back the physically identical template value — that is what
     keeps the downstream anneal trajectory bit-identical *)
  let t = Mixsyn_circuit.Topology.miller_ota in
  let c = B.contract ~tech ~context:[ ("cl", 5e-12) ] contract_specs t in
  Alcotest.(check int) "nothing pruned" 0 c.B.pruned;
  Alcotest.(check bool) "identical template value" true (c.B.c_template == t)

let bounds_contract_hopeless () =
  let t = find_template "ota-5t" in
  let c = B.contract ~tech [ Spec.spec "gain_db" (Spec.At_least 500.0) ] t in
  Alcotest.(check bool) "provably hopeless" true c.B.c_infeasible;
  Alcotest.(check bool) "template unchanged" true (c.B.c_template == t);
  (* the root box already violates: one evaluation, no splitting *)
  Alcotest.(check int) "root box pruned" 1 c.B.explored;
  Alcotest.(check int) "pruned count" 1 c.B.pruned

(* the acceptance criterion for the whole pass: certified enclosures contain
   every concrete evaluation at >= 1000 random in-box points per topology
   (Template.random_point samples log-scaled parameters geometrically) *)
let bounds_soundness () =
  let samples = 1000 in
  let ln10_over_20 = Float.log 10.0 /. 20.0 in
  List.iter
    (fun (t : Tp.t) ->
      let certified = B.certify ~tech t in
      let rng = Mixsyn_util.Rng.create (42 + Hashtbl.hash t.Tp.t_name) in
      for _ = 1 to samples do
        let x = Tp.random_point t rng in
        match Eq.evaluate ~tech t x with
        | None -> Alcotest.failf "%s: evaluate returned None" t.Tp.t_name
        | Some perf ->
          List.iter
            (fun (name, v) ->
              match List.assoc_opt name certified with
              | None -> Alcotest.failf "%s: metric %s not certified" t.Tp.t_name name
              | Some iv ->
                if Float.is_nan v || not (I.contains iv v) then
                  Alcotest.failf "%s/%s: concrete %g escapes certified %s"
                    t.Tp.t_name name v (pp_iv iv))
            perf;
          (* the derived single-pole position, same formula as the certifier *)
          (match (Spec.lookup perf "gain_db", Spec.lookup perf "ugf_hz") with
           | Some gain, Some ugf ->
             let fp = ugf /. Float.exp (gain *. ln10_over_20) in
             let iv = List.assoc "dominant_pole_hz" certified in
             if not (I.contains iv fp) then
               Alcotest.failf "%s/dominant_pole_hz: concrete %g escapes certified %s"
                 t.Tp.t_name fp (pp_iv iv)
           | _ -> ())
      done)
    (modelled ())

(* --- rule registry --------------------------------------------------------- *)

(* registered last: by the time this runs, every pass exercised above has
   pushed its rule ids through the Diagnostic constructors.  Fixture ids
   the plumbing tests invent ("z", "x.warn", ...) carry no real prefix and
   are skipped; every production-prefixed id must be documented in the
   registry [msyn lint --list-rules] prints. *)
let registry_closed () =
  let production r =
    List.exists (fun p -> String.starts_with ~prefix:p r)
      [ "erc."; "drc."; "audit."; "feas." ]
  in
  let emitted = List.filter production (D.emitted_rules ()) in
  Alcotest.(check bool) "passes emitted rules" true (List.length emitted > 10);
  Alcotest.(check bool) "feas rules exercised" true
    (List.mem "feas.annotation-drift" emitted);
  List.iter
    (fun r ->
      if not (Registry.known r) then
        Alcotest.failf "rule %s was emitted but is missing from Registry.all" r)
    emitted;
  List.iter
    (fun (r, doc) ->
      if String.trim doc = "" then Alcotest.failf "rule %s has an empty doc" r)
    Registry.all

(* --- lint gate ------------------------------------------------------------ *)

let lint_gate () =
  Mixsyn_util.Telemetry.reset ();
  let warn = [ D.warning ~rule:"w" ~loc:"l" "w" ] in
  Alcotest.(check int) "clean passes" 1 (List.length (Lint.gate ~stage:"t" warn));
  Alcotest.(check int) "warning counted" 1 (Mixsyn_util.Telemetry.counter "check.t.warnings");
  (match Lint.gate ~stage:"t" [ D.error ~rule:"e" ~loc:"l" "e" ] with
   | _ -> Alcotest.fail "gate must raise on error"
   | exception Lint.Check_failed [ d ] -> Alcotest.(check string) "carried" "e" d.D.rule
   | exception Lint.Check_failed _ -> Alcotest.fail "diagnostic list shape");
  Alcotest.(check int) "error counted" 1 (Mixsyn_util.Telemetry.counter "check.t.errors")

let lint_full_clean () =
  let nl = miller_netlist () in
  let r = CF.koan ~seed:23 nl in
  let ds = Lint.full nl r in
  Alcotest.(check (list string)) "no errors" [] (rules (D.errors ds));
  Alcotest.(check int) "exit 0" 0 (Lint.exit_code ds)

let () =
  Alcotest.run "check"
    [ ( "diagnostic",
        [ Alcotest.test_case "ordering" `Quick diag_ordering;
          Alcotest.test_case "suppress" `Quick diag_suppress;
          Alcotest.test_case "render json" `Quick diag_render_json ] );
      ( "erc",
        [ Alcotest.test_case "clean topologies" `Quick erc_clean;
          Alcotest.test_case "floating gate" `Quick erc_floating_gate;
          Alcotest.test_case "floating bulk" `Quick erc_floating_bulk;
          Alcotest.test_case "dangling net" `Quick erc_dangling_net;
          Alcotest.test_case "unused net" `Quick erc_unused_net;
          Alcotest.test_case "no dc path" `Quick erc_no_dc_path;
          Alcotest.test_case "shorted vsource" `Quick erc_shorted_vsource;
          Alcotest.test_case "parallel vsources" `Quick erc_parallel_vsources;
          Alcotest.test_case "value sanity" `Quick erc_values;
          Alcotest.test_case "structural" `Quick erc_structural ] );
      ( "drc",
        [ Alcotest.test_case "clean wire" `Quick drc_clean;
          Alcotest.test_case "min width" `Quick drc_min_width;
          Alcotest.test_case "min spacing" `Quick drc_min_spacing;
          Alcotest.test_case "route spacing" `Quick drc_route_spacing;
          Alcotest.test_case "contact size" `Quick drc_contact_size;
          Alcotest.test_case "contact enclosure" `Quick drc_contact_enclosure;
          Alcotest.test_case "gate extension" `Quick drc_gate_extension;
          Alcotest.test_case "well enclosure" `Quick drc_well_enclosure;
          Alcotest.test_case "real layout has no errors" `Slow drc_layout_clean ] );
      ( "audit",
        [ Alcotest.test_case "clean layout" `Slow audit_clean;
          Alcotest.test_case "symmetry broken" `Slow audit_symmetry_broken;
          Alcotest.test_case "symmetry missing" `Slow audit_symmetry_missing;
          Alcotest.test_case "unrouted net" `Slow audit_unrouted_net;
          Alcotest.test_case "open net" `Slow audit_open_net ] );
      ( "lint",
        [ Alcotest.test_case "gate telemetry" `Quick lint_gate;
          Alcotest.test_case "full clean" `Slow lint_full_clean ] );
      ( "bounds",
        [ Alcotest.test_case "midpoint enclosed" `Quick bounds_certify_midpoint;
          Alcotest.test_case "context pins narrow" `Quick bounds_context_pins;
          Alcotest.test_case "impossible spec flagged" `Quick bounds_infeasible_spec;
          Alcotest.test_case "annotation drift" `Quick bounds_annotation_drift;
          Alcotest.test_case "contract prunes" `Quick bounds_contract_prunes;
          Alcotest.test_case "contract identity" `Quick bounds_contract_identity;
          Alcotest.test_case "contract hopeless" `Quick bounds_contract_hopeless;
          Alcotest.test_case "soundness 1000 samples" `Slow bounds_soundness ] );
      (* must stay the last suite: it audits every rule id the preceding
         suites pushed through the Diagnostic constructors *)
      ( "registry",
        [ Alcotest.test_case "emitted rules documented" `Quick registry_closed ] ) ]
