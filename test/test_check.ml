(* Static-verification tests: diagnostics, ERC, DRC, constraint audit and
   the lint gate.  Each rule id gets a deliberately broken fixture; clean
   designs must produce zero diagnostics. *)

module D = Mixsyn_check.Diagnostic
module Erc = Mixsyn_check.Erc
module Drc = Mixsyn_check.Drc
module Audit = Mixsyn_check.Audit
module Lint = Mixsyn_check.Lint
module N = Mixsyn_circuit.Netlist
module Tp = Mixsyn_circuit.Template
module G = Mixsyn_layout.Geom
module Cell = Mixsyn_layout.Cell
module MR = Mixsyn_layout.Maze_router
module CF = Mixsyn_layout.Cell_flow

let tech = Mixsyn_circuit.Tech.generic_07um

let miller_netlist () =
  let x = [| 60e-6; 20e-6; 30e-6; 60e-6; 45e-6; 1e-6; 50e-6; 3e-12; 5e-12 |] in
  Mixsyn_circuit.Topology.miller_ota.Tp.build tech x

let rules ds = List.sort_uniq compare (List.map (fun (d : D.t) -> d.D.rule) ds)
let has rule ds = List.exists (fun (d : D.t) -> d.D.rule = rule) ds

let assert_fires rule ds =
  if not (has rule ds) then
    Alcotest.failf "expected %s among [%s]" rule (String.concat "; " (rules ds))

let assert_severity rule sev ds =
  match List.find_opt (fun (d : D.t) -> d.D.rule = rule) ds with
  | Some d ->
    Alcotest.(check string)
      (rule ^ " severity") (D.severity_name sev) (D.severity_name d.D.severity)
  | None -> Alcotest.failf "%s did not fire" rule

(* --- diagnostic plumbing ------------------------------------------------- *)

let diag_ordering () =
  let ds =
    [ D.info ~rule:"z" ~loc:"a" "i"; D.error ~rule:"b" ~loc:"a" "e";
      D.warning ~rule:"a" ~loc:"a" "w"; D.error ~rule:"a" ~loc:"a" "e" ]
  in
  let sorted = List.sort D.compare ds in
  Alcotest.(check (list string))
    "severity then rule"
    [ "a"; "b"; "a"; "z" ]
    (List.map (fun (d : D.t) -> d.D.rule) sorted);
  Alcotest.(check int) "errors" 2 (List.length (D.errors ds));
  Alcotest.(check int) "warnings" 1 (List.length (D.warnings ds))

let diag_suppress () =
  let ds =
    [ D.error ~rule:"x.err" ~loc:"l" "e"; D.warning ~rule:"x.warn" ~loc:"l" "w";
      D.info ~rule:"x.info" ~loc:"l" "i" ]
  in
  let kept = D.suppress ~rules:[ "x.warn"; "x.info"; "x.err" ] ds in
  (* warnings and infos drop; errors are never suppressed *)
  Alcotest.(check (list string)) "errors survive" [ "x.err" ] (rules kept)

let diag_render_json () =
  Alcotest.(check string) "empty render" "clean: no diagnostics" (D.render []);
  Alcotest.(check string) "empty json" "[]" (D.to_json []);
  let ds = [ D.error ~rule:"r.a" ~loc:"spot \"q\"" "broke" ] in
  Alcotest.(check string) "escaped object"
    "[{\"severity\": \"error\", \"rule\": \"r.a\", \"loc\": \"spot \\\"q\\\"\", \"msg\": \"broke\"}]"
    (D.to_json ds);
  let rendered = D.render ds in
  let tail = "1 error(s), 0 warning(s), 0 info" in
  Alcotest.(check string) "summary line" tail
    (String.sub rendered (String.length rendered - String.length tail) (String.length tail))

(* --- ERC ------------------------------------------------------------------ *)

(* minimal live scaffold: vdd rail with a resistor load keeps every node
   DC-connected, so fixtures only trip the rule under test *)
let scaffold () =
  let nl = N.create () in
  let vdd = N.new_net ~name:"vdd" nl in
  N.add nl (N.Vsource { v_name = "v1"; p = vdd; n = N.gnd; dc = 3.0; ac = 0.0; v_wave = N.Dc_wave });
  (nl, vdd)

let erc_clean () =
  let nl = miller_netlist () in
  Alcotest.(check (list string)) "clean topology" [] (rules (Erc.check nl));
  List.iter
    (fun (t : Tp.t) ->
      let nl = t.Tp.build tech (Tp.midpoint t) in
      Alcotest.(check (list string)) (t.Tp.t_name ^ " clean") [] (rules (Erc.check nl)))
    Mixsyn_circuit.Topology.all

let erc_floating_gate () =
  let nl, vdd = scaffold () in
  let d = N.new_net ~name:"d" nl in
  let g = N.new_net ~name:"g" nl in
  N.add nl (N.Resistor { r_name = "r1"; a = vdd; b = d; ohms = 1e4 });
  N.add nl
    (N.Mos { m_name = "m1"; drain = d; gate = g; source = N.gnd; bulk = N.gnd;
             w = 10e-6; l = 1e-6; polarity = N.Nmos });
  let ds = Erc.check nl in
  assert_fires "erc.floating-gate" ds;
  assert_severity "erc.floating-gate" D.Error ds;
  Alcotest.(check int) "lint gate trips" 1 (Lint.exit_code ds)

let erc_floating_bulk () =
  let nl, vdd = scaffold () in
  let d = N.new_net ~name:"d" nl in
  let b = N.new_net ~name:"b" nl in
  N.add nl (N.Resistor { r_name = "r1"; a = vdd; b = d; ohms = 1e4 });
  N.add nl
    (N.Mos { m_name = "m1"; drain = d; gate = vdd; source = N.gnd; bulk = b;
             w = 10e-6; l = 1e-6; polarity = N.Nmos });
  assert_fires "erc.floating-bulk" (Erc.check nl)

let erc_dangling_net () =
  let nl, vdd = scaffold () in
  let stub = N.new_net ~name:"stub" nl in
  N.add nl (N.Resistor { r_name = "r1"; a = vdd; b = stub; ohms = 1e4 });
  let ds = Erc.check nl in
  assert_fires "erc.dangling-net" ds;
  assert_severity "erc.dangling-net" D.Error ds

let erc_unused_net () =
  let nl, _ = scaffold () in
  let _orphan = N.new_net ~name:"orphan" nl in
  let ds = Erc.check nl in
  assert_fires "erc.unused-net" ds;
  assert_severity "erc.unused-net" D.Warning ds

let erc_no_dc_path () =
  let nl, _ = scaffold () in
  let x = N.new_net ~name:"x" nl in
  N.add nl (N.Capacitor { c_name = "c1"; a = x; b = N.gnd; farads = 1e-12 });
  N.add nl (N.Isource { i_name = "i1"; p = x; n = N.gnd; dc = 1e-6; ac = 0.0; i_wave = N.Dc_wave });
  let ds = Erc.check nl in
  assert_fires "erc.no-dc-path" ds;
  (* a resistor to ground heals it *)
  N.add nl (N.Resistor { r_name = "r1"; a = x; b = N.gnd; ohms = 1e6 });
  Alcotest.(check bool) "healed" false (has "erc.no-dc-path" (Erc.check nl))

let erc_shorted_vsource () =
  let nl, vdd = scaffold () in
  N.add nl
    (N.Vsource { v_name = "vshort"; p = vdd; n = vdd; dc = 1.0; ac = 0.0; v_wave = N.Dc_wave });
  assert_fires "erc.shorted-vsource" (Erc.check nl)

let erc_parallel_vsources () =
  let nl, vdd = scaffold () in
  N.add nl
    (N.Vsource { v_name = "v2"; p = vdd; n = N.gnd; dc = 2.5; ac = 0.0; v_wave = N.Dc_wave });
  assert_fires "erc.parallel-vsources" (Erc.check nl)

let erc_values () =
  let nl, vdd = scaffold () in
  N.add nl (N.Resistor { r_name = "rbad"; a = vdd; b = N.gnd; ohms = -50.0 });
  N.add nl (N.Capacitor { c_name = "chuge"; a = vdd; b = N.gnd; farads = 1.0 });
  let ds = Erc.check nl in
  assert_fires "erc.nonpositive-value" ds;
  assert_severity "erc.nonpositive-value" D.Error ds;
  assert_fires "erc.suspicious-value" ds;
  assert_severity "erc.suspicious-value" D.Warning ds

let erc_structural () =
  let nl, vdd = scaffold () in
  N.add nl (N.Resistor { r_name = "r1"; a = vdd; b = N.gnd; ohms = 1e3 });
  N.add nl (N.Resistor { r_name = "r1"; a = vdd; b = N.gnd; ohms = 2e3 });
  N.add nl (N.Capacitor { c_name = "c1"; a = vdd; b = 99; farads = 1e-12 });
  let ds = Erc.check nl in
  assert_fires "erc.duplicate-name" ds;
  assert_fires "erc.bad-net-id" ds

(* --- DRC ------------------------------------------------------------------ *)

let lambda = 0.35e-6

let drc_clean () =
  (* an isolated exactly-minimum-width wire breaks nothing *)
  let ds = Drc.check [ ("a", G.rect G.Metal1 0.0 0.0 (3.0 *. lambda) (30.0 *. lambda)) ] in
  Alcotest.(check (list string)) "clean" [] (rules ds)

let drc_min_width () =
  let ds = Drc.check [ ("a", G.rect G.Metal1 0.0 0.0 (2.0 *. lambda) (30.0 *. lambda)) ] in
  assert_fires "drc.min-width" ds;
  assert_severity "drc.min-width" D.Error ds

let drc_min_spacing () =
  let bar owner x = (owner, G.rect G.Metal1 x 0.0 (x +. (3.0 *. lambda)) (30.0 *. lambda)) in
  (* one lambda apart: violates the 3-lambda metal1 spacing *)
  let ds = Drc.check [ bar "a" 0.0; bar "b" (4.0 *. lambda) ] in
  assert_fires "drc.min-spacing" ds;
  assert_severity "drc.min-spacing" D.Error ds;
  (* same owner at the same distance is internal geometry: fine *)
  Alcotest.(check (list string)) "same owner ok" []
    (rules (Drc.check [ bar "a" 0.0; bar "a" (4.0 *. lambda) ]));
  (* far enough apart: fine *)
  Alcotest.(check (list string)) "spaced ok" []
    (rules (Drc.check [ bar "a" 0.0; bar "b" (6.0 *. lambda) ]))

let drc_route_spacing () =
  let bar owner x = (owner, G.rect G.Metal1 x 0.0 (x +. (3.0 *. lambda)) (30.0 *. lambda)) in
  let ds = Drc.check [ bar "a" 0.0; bar "net:sig" (4.0 *. lambda) ] in
  (* wire-involved proximity is reported but demoted to a warning *)
  assert_fires "drc.route-spacing" ds;
  assert_severity "drc.route-spacing" D.Warning ds;
  Alcotest.(check bool) "not an error" false (has "drc.min-spacing" ds)

let drc_contact_size () =
  let ds = Drc.check [ ("a", G.rect G.Contact 0.0 0.0 (3.0 *. lambda) (2.0 *. lambda)) ] in
  assert_fires "drc.contact-size" ds

let drc_contact_enclosure () =
  let cut = G.rect G.Contact 0.0 0.0 (2.0 *. lambda) (2.0 *. lambda) in
  (* bare cut: no diffusion, no metal *)
  assert_fires "drc.contact-enclosure" (Drc.check [ ("a", cut) ]);
  (* properly nested cut passes *)
  let diff = G.rect G.Ndiff (-.lambda) (-.lambda) (3.0 *. lambda) (3.0 *. lambda) in
  let m1 = G.rect G.Metal1 (-.lambda) (-.lambda) (3.0 *. lambda) (3.0 *. lambda) in
  Alcotest.(check bool) "enclosed ok" false
    (has "drc.contact-enclosure" (Drc.check [ ("a", cut); ("a", diff); ("a", m1) ]))

let drc_gate_extension () =
  let diff = G.rect G.Ndiff 0.0 0.0 (20.0 *. lambda) (10.0 *. lambda) in
  (* poly strip crossing the diffusion but stopping flush with its edge *)
  let short_poly = G.rect G.Poly (8.0 *. lambda) 0.0 (10.0 *. lambda) (10.0 *. lambda) in
  assert_fires "drc.gate-extension" (Drc.check [ ("a", diff); ("a", short_poly) ]);
  let good_poly =
    G.rect G.Poly (8.0 *. lambda) (-2.0 *. lambda) (10.0 *. lambda) (12.0 *. lambda)
  in
  Alcotest.(check bool) "endcapped ok" false
    (has "drc.gate-extension" (Drc.check [ ("a", diff); ("a", good_poly) ]))

let drc_well_enclosure () =
  let pdiff = G.rect G.Pdiff 0.0 0.0 (10.0 *. lambda) (10.0 *. lambda) in
  assert_fires "drc.well-enclosure" (Drc.check [ ("a", pdiff) ]);
  let well =
    G.rect G.Nwell (-5.0 *. lambda) (-5.0 *. lambda) (15.0 *. lambda) (15.0 *. lambda)
  in
  Alcotest.(check bool) "in well ok" false
    (has "drc.well-enclosure" (Drc.check [ ("a", pdiff); ("a", well) ]))

let drc_layout_clean () =
  (* a real generated layout carries zero DRC errors (route-spacing and
     well-spacing warnings are expected artifacts) *)
  let nl = miller_netlist () in
  let r = CF.koan ~seed:23 nl in
  let ds = Drc.check (CF.tagged_geometry r) in
  Alcotest.(check (list string)) "no errors" [] (rules (D.errors ds))

(* --- audit ---------------------------------------------------------------- *)

(* the miller pair (m1, m2) merges into one stack; nudging m2's L by 0.5 %
   keeps the pair matched (1 % tolerance) but splits the stack, so the
   audit checks the mirror geometry *)
let split_pair_netlist () =
  let nl = miller_netlist () in
  N.map_elements nl (function
    | N.Mos m when m.N.m_name = "m2" -> N.Mos { m with N.l = m.N.l *. 1.005 }
    | e -> e)

let audit_clean () =
  let nl = miller_netlist () in
  let r = CF.koan ~seed:23 nl in
  let ds = Audit.check nl r in
  Alcotest.(check (list string)) "no errors" [] (rules (D.errors ds));
  (* merged pairs are narrated, not flagged *)
  assert_fires "audit.pair-merged" ds;
  assert_severity "audit.pair-merged" D.Info ds

let audit_symmetry_broken () =
  let nl = split_pair_netlist () in
  let r = CF.koan ~seed:23 nl in
  let displaced =
    { r with
      CF.placed =
        List.map
          (fun (c : Cell.t) ->
            if c.Cell.cell_name = "m2" then Cell.translate 0.0 9e-6 c else c)
          r.CF.placed }
  in
  let ds = Audit.check nl displaced in
  assert_fires "audit.symmetry-broken" ds;
  assert_severity "audit.symmetry-broken" D.Error ds

let audit_symmetry_missing () =
  let nl = split_pair_netlist () in
  let r = CF.koan ~seed:23 nl in
  let gutted =
    { r with
      CF.placed = List.filter (fun (c : Cell.t) -> c.Cell.cell_name <> "m2") r.CF.placed }
  in
  assert_fires "audit.symmetry-missing" (Audit.check nl gutted)

let audit_unrouted_net () =
  let nl = miller_netlist () in
  let r = CF.koan ~seed:23 nl in
  let broken = { r with CF.route = { r.CF.route with MR.failed = [ "o1" ] } } in
  assert_fires "audit.unrouted-net" (Audit.check nl broken)

let audit_open_net () =
  let nl = miller_netlist () in
  let r = CF.koan ~seed:23 nl in
  (* erase the routed geometry of a multi-cell net *)
  let victim = "o1" in
  let broken =
    { r with
      CF.route =
        { r.CF.route with
          MR.wires =
            List.filter (fun (w : MR.wire) -> w.MR.w_net <> victim) r.CF.route.MR.wires } }
  in
  assert_fires "audit.open-net" (Audit.check nl broken)

(* --- lint gate ------------------------------------------------------------ *)

let lint_gate () =
  Mixsyn_util.Telemetry.reset ();
  let warn = [ D.warning ~rule:"w" ~loc:"l" "w" ] in
  Alcotest.(check int) "clean passes" 1 (List.length (Lint.gate ~stage:"t" warn));
  Alcotest.(check int) "warning counted" 1 (Mixsyn_util.Telemetry.counter "check.t.warnings");
  (match Lint.gate ~stage:"t" [ D.error ~rule:"e" ~loc:"l" "e" ] with
   | _ -> Alcotest.fail "gate must raise on error"
   | exception Lint.Check_failed [ d ] -> Alcotest.(check string) "carried" "e" d.D.rule
   | exception Lint.Check_failed _ -> Alcotest.fail "diagnostic list shape");
  Alcotest.(check int) "error counted" 1 (Mixsyn_util.Telemetry.counter "check.t.errors")

let lint_full_clean () =
  let nl = miller_netlist () in
  let r = CF.koan ~seed:23 nl in
  let ds = Lint.full nl r in
  Alcotest.(check (list string)) "no errors" [] (rules (D.errors ds));
  Alcotest.(check int) "exit 0" 0 (Lint.exit_code ds)

let () =
  Alcotest.run "check"
    [ ( "diagnostic",
        [ Alcotest.test_case "ordering" `Quick diag_ordering;
          Alcotest.test_case "suppress" `Quick diag_suppress;
          Alcotest.test_case "render json" `Quick diag_render_json ] );
      ( "erc",
        [ Alcotest.test_case "clean topologies" `Quick erc_clean;
          Alcotest.test_case "floating gate" `Quick erc_floating_gate;
          Alcotest.test_case "floating bulk" `Quick erc_floating_bulk;
          Alcotest.test_case "dangling net" `Quick erc_dangling_net;
          Alcotest.test_case "unused net" `Quick erc_unused_net;
          Alcotest.test_case "no dc path" `Quick erc_no_dc_path;
          Alcotest.test_case "shorted vsource" `Quick erc_shorted_vsource;
          Alcotest.test_case "parallel vsources" `Quick erc_parallel_vsources;
          Alcotest.test_case "value sanity" `Quick erc_values;
          Alcotest.test_case "structural" `Quick erc_structural ] );
      ( "drc",
        [ Alcotest.test_case "clean wire" `Quick drc_clean;
          Alcotest.test_case "min width" `Quick drc_min_width;
          Alcotest.test_case "min spacing" `Quick drc_min_spacing;
          Alcotest.test_case "route spacing" `Quick drc_route_spacing;
          Alcotest.test_case "contact size" `Quick drc_contact_size;
          Alcotest.test_case "contact enclosure" `Quick drc_contact_enclosure;
          Alcotest.test_case "gate extension" `Quick drc_gate_extension;
          Alcotest.test_case "well enclosure" `Quick drc_well_enclosure;
          Alcotest.test_case "real layout has no errors" `Slow drc_layout_clean ] );
      ( "audit",
        [ Alcotest.test_case "clean layout" `Slow audit_clean;
          Alcotest.test_case "symmetry broken" `Slow audit_symmetry_broken;
          Alcotest.test_case "symmetry missing" `Slow audit_symmetry_missing;
          Alcotest.test_case "unrouted net" `Slow audit_unrouted_net;
          Alcotest.test_case "open net" `Slow audit_open_net ] );
      ( "lint",
        [ Alcotest.test_case "gate telemetry" `Quick lint_gate;
          Alcotest.test_case "full clean" `Slow lint_full_clean ] ) ]
