(* ISAAC symbolic-simulator tests: exactness against the numeric engine and
   controlled degradation under pruning. *)

module N = Mixsyn_circuit.Netlist
module Tech = Mixsyn_circuit.Tech
module E = Mixsyn_symbolic.Expr
module A = Mixsyn_symbolic.Analyze
module S = Mixsyn_symbolic.Simplify

let tech = Tech.generic_07um

let check_close ?(eps = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > eps *. Float.max 1e-30 (Float.abs expected) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

(* --- expression algebra ------------------------------------------------- *)

let value_of = function
  | "a" -> 2.0
  | "b" -> 3.0
  | "c" -> 5.0
  | _ -> 1.0

let eval p = (E.eval value_of p { Complex.re = 0.5; im = 0.0 }).Complex.re

let test_expr_basic () =
  let a = E.sym "a" and b = E.sym "b" in
  check_close "a+b" 5.0 (eval (E.add a b));
  check_close "a*b" 6.0 (eval (E.mul a b));
  check_close "a-b" (-1.0) (eval (E.sub a b));
  check_close "-(a)" (-2.0) (eval (E.neg a));
  check_close "3a" 6.0 (eval (E.scale 3.0 a))

let test_expr_s_powers () =
  let p = E.add E.one (E.s_times 2 (E.sym "c")) in
  (* 1 + 5 s^2 at s = 0.5 -> 2.25 *)
  check_close "s powers" 2.25 (eval p);
  Alcotest.(check int) "degree" 2 (E.degree_s p);
  let groups = E.by_s_power p in
  Alcotest.(check int) "two groups" 2 (List.length groups)

let test_expr_cancellation () =
  let a = E.sym "a" in
  Alcotest.(check bool) "a - a = 0" true (E.is_zero (E.sub a a));
  Alcotest.(check int) "term count" 0 (E.term_count (E.sub a a))

let test_expr_s_coeffs () =
  let p = E.add (E.scale 2.0 E.one) (E.s_times 1 (E.sym "b")) in
  let coeffs = E.eval_s_coeffs value_of p in
  check_close "c0" 2.0 coeffs.(0);
  check_close "c1" 3.0 coeffs.(1)

(* --- determinant --------------------------------------------------------- *)

let test_determinant_numeric () =
  (* compare symbolic determinant against numeric LU on constant matrices *)
  let rng = Mixsyn_util.Rng.create 9 in
  for _ = 1 to 20 do
    let n = 1 + Mixsyn_util.Rng.int rng 5 in
    let values = Array.init n (fun _ -> Array.init n (fun _ -> Mixsyn_util.Rng.uniform rng (-2.0) 2.0)) in
    let sym_m = Array.map (Array.map E.const) values in
    let det_sym = (E.eval value_of (A.determinant sym_m) Complex.zero).Complex.re in
    let det_num = Mixsyn_util.Matrix.Real.determinant values in
    check_close ~eps:1e-6 "determinant" det_num det_sym
  done

let test_determinant_symbolic_2x2 () =
  let m = [| [| E.sym "a"; E.sym "b" |]; [| E.sym "c"; E.sym "a" |] |] in
  (* det = a^2 - b c = 4 - 15 = -11 *)
  check_close "2x2" (-11.0) ((E.eval value_of (A.determinant m) Complex.zero).Complex.re)

(* --- transfer functions ---------------------------------------------------- *)

let divider () =
  let c = N.create () in
  let vin = N.new_net ~name:"vin" c and out = N.new_net ~name:"out" c in
  N.add c (N.Vsource { v_name = "v1"; p = vin; n = N.gnd; dc = 2.0; ac = 1.0; v_wave = N.Dc_wave });
  N.add c (N.Resistor { r_name = "r1"; a = vin; b = out; ohms = 1000.0 });
  N.add c (N.Resistor { r_name = "r2"; a = out; b = N.gnd; ohms = 1000.0 });
  N.add c (N.Capacitor { c_name = "c1"; a = out; b = N.gnd; farads = 1e-6 });
  (c, out)

let test_transfer_divider () =
  let c, out = divider () in
  let r = A.transfer c ~out in
  let op = Mixsyn_engine.Dc.solve ~tech c in
  let v = A.valuation ~tech c op in
  let h0 = A.eval_rational v r Complex.zero in
  check_close "H(0)" 0.5 h0.Complex.re;
  let hp = Complex.norm (A.eval_rational v r { Complex.re = 0.0; im = 2.0 *. Float.pi *. 318.3 }) in
  check_close ~eps:0.01 "pole magnitude" (0.5 /. sqrt 2.0) hp

let ota () =
  let t = Mixsyn_circuit.Topology.ota_5t in
  let nl = t.Mixsyn_circuit.Template.build tech [| 50e-6; 25e-6; 40e-6; 1e-6; 100e-6; 2e-12 |] in
  let out = N.find_net nl "out" in
  (nl, out)

let test_transfer_matches_numeric_ac () =
  let nl, out = ota () in
  let r = A.transfer nl ~out in
  let op = Mixsyn_engine.Dc.solve ~tech nl in
  let v = A.valuation ~tech nl op in
  let freqs = [| 1.0; 1e4; 1e6; 1e8 |] in
  let ac = Mixsyn_engine.Ac.solve ~tech nl op ~freqs in
  Array.iteri
    (fun k f ->
      let numeric = Mixsyn_engine.Ac.magnitude ac k out in
      let symbolic =
        Complex.norm (A.eval_rational v r { Complex.re = 0.0; im = 2.0 *. Float.pi *. f })
      in
      check_close ~eps:1e-3 (Printf.sprintf "f=%g" f) numeric symbolic)
    freqs

let test_valuation_symbols () =
  let nl, _ = ota () in
  let op = Mixsyn_engine.Dc.solve ~tech nl in
  let v = A.valuation ~tech nl op in
  if v "gm_m1" <= 0.0 then Alcotest.fail "gm must be positive";
  if v "gds_m1" <= 0.0 then Alcotest.fail "gds must be positive";
  check_close ~eps:1e-9 "cap symbol" 2e-12 (v "c_cl");
  (match v "bogus_symbol" with
   | exception Not_found -> ()
   | _ -> Alcotest.fail "expected Not_found")

(* --- pruning ----------------------------------------------------------------- *)

let test_prune_monotone () =
  let nl, out = ota () in
  let r = A.transfer nl ~out in
  let op = Mixsyn_engine.Dc.solve ~tech nl in
  let v = A.valuation ~tech nl op in
  let counts =
    List.map
      (fun th -> (S.prune ~value:v ~threshold:th r).S.terms_after)
      [ 0.001; 0.01; 0.1 ]
  in
  (match counts with
   | [ a; b; c ] ->
     if not (a >= b && b >= c) then Alcotest.fail "term count should fall with threshold";
     if c < 2 then Alcotest.fail "pruning removed everything"
   | _ -> assert false)

let test_prune_error_bounded () =
  let nl, out = ota () in
  let r = A.transfer nl ~out in
  let op = Mixsyn_engine.Dc.solve ~tech nl in
  let v = A.valuation ~tech nl op in
  let report = S.prune ~value:v ~threshold:0.01 r in
  let freqs = Mixsyn_engine.Ac.log_sweep ~decades_from:0.0 ~decades_to:9.0 ~points_per_decade:4 in
  let err = S.magnitude_error ~value:v ~exact:r ~approx:report.S.simplified ~freqs in
  if err > 0.10 then Alcotest.failf "1%% pruning produced %g magnitude error" err;
  if report.S.terms_after >= report.S.terms_before then Alcotest.fail "nothing pruned"

let test_prune_identity_at_zero_threshold () =
  let nl, out = ota () in
  let r = A.transfer nl ~out in
  let op = Mixsyn_engine.Dc.solve ~tech nl in
  let v = A.valuation ~tech nl op in
  let report = S.prune ~value:v ~threshold:0.0 r in
  Alcotest.(check int) "no terms dropped" (A.term_count r) report.S.terms_after

(* --- interval bounds -------------------------------------------------------- *)

module I = Mixsyn_util.Interval

let test_interval_coeffs () =
  let p = E.add (E.scale 2.0 (E.sym "a")) (E.s_times 1 (E.mul (E.sym "b") (E.sym "c"))) in
  let ranges = function
    | "a" -> I.make 1.0 3.0
    | "b" -> I.make 2.0 4.0
    | "c" -> I.make 4.0 6.0
    | _ -> I.point 1.0
  in
  let coeffs = E.eval_s_coeffs_interval ranges p in
  (* a = 2, b = 3, c = 5 (value_of) sit inside the ranges *)
  let concrete = E.eval_s_coeffs value_of p in
  Array.iteri
    (fun k iv ->
      if not (I.contains iv concrete.(k)) then
        Alcotest.failf "s^%d: concrete %g outside [%g, %g]" k concrete.(k) (I.lo iv)
          (I.hi iv))
    coeffs;
  (* and the enclosures are the exact interval products here *)
  Alcotest.(check bool) "c0 = 2*[1,3]" true (I.contains coeffs.(0) 2.0 && I.contains coeffs.(0) 6.0);
  Alcotest.(check bool) "c1 = [2,4]*[4,6]" true (I.contains coeffs.(1) 8.0 && I.contains coeffs.(1) 24.0)

(* enclosure property on a real amplifier: symbol boxes around the operating
   point must contain every concrete figure computed at valuations sampled
   inside those boxes *)
let test_transfer_bounds_enclose () =
  let nl, out = ota () in
  let r = A.transfer nl ~out in
  let op = Mixsyn_engine.Dc.solve ~tech nl in
  let v = A.valuation ~tech nl op in
  let half_band name =
    let x = v name in
    let w = 0.5 *. Float.abs x in
    I.make (x -. w) (x +. w)
  in
  let dc = A.bound_dc_gain half_band r in
  let gbw = A.bound_gbw half_band r in
  let fp = A.bound_dominant_pole half_band r in
  Alcotest.(check bool) "dc bound nonempty" false (I.is_empty dc);
  let num_iv, den_iv = A.bound_num_den half_band r in
  let rng = Mixsyn_util.Rng.create 31 in
  for _ = 1 to 200 do
    (* one concrete valuation drawn uniformly inside every symbol box *)
    let tbl = Hashtbl.create 16 in
    let sample name =
      match Hashtbl.find_opt tbl name with
      | Some x -> x
      | None ->
        let iv = half_band name in
        let x = Mixsyn_util.Rng.uniform rng (I.lo iv) (I.hi iv) in
        Hashtbl.add tbl name x;
        x
    in
    let num, den = A.num_den_coeffs sample r in
    Array.iteri
      (fun k c ->
        if not (I.contains num_iv.(k) c) then
          Alcotest.failf "num s^%d: %g escapes enclosure" k c)
      num;
    Array.iteri
      (fun k c ->
        if not (I.contains den_iv.(k) c) then
          Alcotest.failf "den s^%d: %g escapes enclosure" k c)
      den;
    if not (I.contains dc (num.(0) /. den.(0))) then
      Alcotest.failf "dc gain %g escapes %g..%g" (num.(0) /. den.(0)) (I.lo dc) (I.hi dc);
    let two_pi = 2.0 *. Float.pi in
    if Array.length den > 1 then begin
      if not (I.contains gbw (Float.abs num.(0) /. (two_pi *. Float.abs den.(1)))) then
        Alcotest.fail "gbw escapes enclosure";
      if not (I.contains fp (Float.abs den.(0) /. (two_pi *. Float.abs den.(1)))) then
        Alcotest.fail "dominant pole escapes enclosure"
    end
  done;
  (* the operating point itself is one such valuation *)
  let h0 = (A.eval_rational v r Complex.zero).Complex.re in
  Alcotest.(check bool) "operating-point gain enclosed" true (I.contains dc h0)

let prop_random_ladder_exact =
  QCheck.Test.make ~name:"symbolic transfer matches numeric AC on random ladders" ~count:40
    QCheck.(pair (int_range 0 5000) (int_range 1 4))
    (fun (seed, n) ->
      let rng = Mixsyn_util.Rng.create seed in
      let c = N.create () in
      let vin = N.new_net ~name:"vin" c in
      N.add c (N.Vsource { v_name = "v1"; p = vin; n = N.gnd; dc = 1.0; ac = 1.0; v_wave = N.Dc_wave });
      let prev = ref vin in
      let out = ref vin in
      for k = 1 to n do
        let node = N.new_net c in
        N.add c (N.Resistor { r_name = Printf.sprintf "r%d" k; a = !prev; b = node;
                              ohms = Mixsyn_util.Rng.uniform rng 100.0 10e3 });
        N.add c (N.Capacitor { c_name = Printf.sprintf "c%d" k; a = node; b = N.gnd;
                               farads = Mixsyn_util.Rng.uniform rng 1e-12 1e-9 });
        N.add c (N.Resistor { r_name = Printf.sprintf "rs%d" k; a = node; b = N.gnd;
                              ohms = Mixsyn_util.Rng.uniform rng 1e3 100e3 });
        prev := node;
        out := node
      done;
      let out = !out in
      let r = A.transfer c ~out in
      let op = Mixsyn_engine.Dc.solve ~tech c in
      let v = A.valuation ~tech c op in
      let f = Mixsyn_util.Rng.uniform rng 1.0 1e8 in
      let ac = Mixsyn_engine.Ac.solve ~tech c op ~freqs:[| f |] in
      let numeric = Mixsyn_engine.Ac.magnitude ac 0 out in
      let symbolic =
        Complex.norm (A.eval_rational v r { Complex.re = 0.0; im = 2.0 *. Float.pi *. f })
      in
      Float.abs (numeric -. symbolic) <= 1e-6 +. (1e-4 *. numeric))

let () =
  Alcotest.run "symbolic"
    [ ( "expr",
        [ Alcotest.test_case "algebra" `Quick test_expr_basic;
          Alcotest.test_case "s powers" `Quick test_expr_s_powers;
          Alcotest.test_case "cancellation" `Quick test_expr_cancellation;
          Alcotest.test_case "s coefficients" `Quick test_expr_s_coeffs ] );
      ( "determinant",
        [ Alcotest.test_case "numeric agreement" `Quick test_determinant_numeric;
          Alcotest.test_case "symbolic 2x2" `Quick test_determinant_symbolic_2x2 ] );
      ( "transfer",
        [ Alcotest.test_case "divider" `Quick test_transfer_divider;
          Alcotest.test_case "matches numeric AC" `Quick test_transfer_matches_numeric_ac;
          Alcotest.test_case "valuation" `Quick test_valuation_symbols ] );
      ( "bounds",
        [ Alcotest.test_case "interval coefficients" `Quick test_interval_coeffs;
          Alcotest.test_case "transfer bounds enclose" `Quick test_transfer_bounds_enclose ] );
      ( "properties", [ QCheck_alcotest.to_alcotest prop_random_ladder_exact ] );
      ( "simplify",
        [ Alcotest.test_case "monotone" `Quick test_prune_monotone;
          Alcotest.test_case "error bounded" `Quick test_prune_error_bounded;
          Alcotest.test_case "zero threshold identity" `Quick test_prune_identity_at_zero_threshold ] ) ]
