(* End-to-end flow test: specification to verified layout. *)

module Spec = Mixsyn_synth.Spec
module Flow = Mixsyn_flow.Flow

let specs =
  [ Spec.spec "gain_db" (Spec.At_least 70.0);
    Spec.spec "ugf_hz" (Spec.At_least 10e6);
    Spec.spec "phase_margin_deg" (Spec.At_least 55.0) ]

let objectives = [ Spec.minimize "power_w" ]

let test_flow_end_to_end () =
  let o = Flow.run ~seed:13 ~specs ~objectives ~context:[ ("cl", 5e-12) ] () in
  if not o.Flow.meets_post_layout then
    Alcotest.failf "flow failed post-layout: %s"
      (Format.asprintf "%a" Spec.pp_performance o.Flow.post_layout);
  (* topology selection must not pick the 5T OTA at 70 dB *)
  if o.Flow.template.Mixsyn_circuit.Template.t_name = "ota-5t" then
    Alcotest.fail "infeasible topology selected";
  (* the log shows every methodology stage *)
  let stages = List.map (fun l -> l.Flow.stage) o.Flow.log in
  List.iter
    (fun prefix ->
      if not (List.exists (fun s -> String.length s >= String.length prefix
                                    && String.sub s 0 (String.length prefix) = prefix) stages)
      then Alcotest.failf "missing stage %s" prefix)
    [ "topology-selection"; "sizing"; "layout"; "extraction" ]

(* --- certified pre-flight gate ------------------------------------------ *)

module D = Mixsyn_check.Diagnostic

let test_flow_gate_infeasible () =
  (* 500 dB is outside every certified enclosure: the flow must refuse
     before any sizing or layout work, naming the spec and the rule *)
  let impossible = [ Spec.spec "gain_db" (Spec.At_least 500.0) ] in
  match Flow.run ~seed:13 ~specs:impossible ~objectives ~context:[ ("cl", 5e-12) ] () with
  | _ -> Alcotest.fail "flow accepted a provably impossible spec"
  | exception Mixsyn_check.Lint.Check_failed ds ->
    (match List.find_opt (fun (d : D.t) -> d.D.rule = "feas.infeasible-spec") ds with
     | None -> Alcotest.failf "gate raised without feas.infeasible-spec: %s" (D.to_json ds)
     | Some d -> Alcotest.(check string) "names the spec" "gain_db" d.D.loc)

let test_flow_fallback_warning () =
  (* 46..49 dB falls in the gap of every hand feasibility table, yet every
     certified enclosure reaches it, so the interval screen empties the
     candidate pool without the pre-flight gate firing: the flow must fall
     back to the full list loudly, not silently *)
  Mixsyn_util.Telemetry.reset ();
  let band = [ Spec.spec "gain_db" (Spec.Between (46.0, 49.0)) ] in
  (* checks off: the screen and its warning live in topology selection, and
     the best-effort design this band produces need not pass the layout
     gates — that is not what is under test here *)
  let o =
    Flow.run ~checks:false ~seed:13 ~specs:band ~objectives ~context:[ ("cl", 5e-12) ] ()
  in
  if
    not
      (List.exists (fun (d : D.t) -> d.D.rule = "feas.no-feasible-topology")
         o.Flow.diagnostics)
  then Alcotest.fail "topology fallback happened silently";
  Alcotest.(check bool) "telemetry counted" true
    (Mixsyn_util.Telemetry.counter "flow.no-feasible-topology" >= 1)

(* --- layout retry preference ------------------------------------------- *)

let report ~complete ~area =
  { Mixsyn_layout.Cell_flow.flow_name = "test";
    placed = [];
    route =
      { Mixsyn_layout.Maze_router.wires = [];
        failed = [];
        total_length = 0.0;
        total_vias = 0;
        coupling = [];
        symmetric_ok = 0 };
    area_m2 = area;
    wirelength_m = 0.0;
    vias = 0;
    complete;
    sensitive_coupling_f = 0.0;
    parasitics = [] }

let test_better_layout_keeps_routed () =
  let area r = r.Mixsyn_layout.Cell_flow.area_m2 in
  let routed_big = report ~complete:true ~area:9e-9 in
  let routed_small = report ~complete:true ~area:4e-9 in
  let unrouted_tiny = report ~complete:false ~area:1e-9 in
  let unrouted_small = report ~complete:false ~area:2e-9 in
  (* completeness dominates area, in both argument orders *)
  Alcotest.(check (float 0.0)) "routed beats smaller unrouted" (area routed_big)
    (area (Flow.better_layout routed_big unrouted_tiny));
  Alcotest.(check (float 0.0)) "routed beats smaller unrouted (flipped)" (area routed_big)
    (area (Flow.better_layout unrouted_tiny routed_big));
  (* at equal completeness the smaller area wins *)
  Alcotest.(check (float 0.0)) "smaller routed wins" (area routed_small)
    (area (Flow.better_layout routed_big routed_small));
  Alcotest.(check (float 0.0)) "smaller unrouted wins" (area unrouted_tiny)
    (area (Flow.better_layout unrouted_small unrouted_tiny))

let test_flow_post_layout_never_faster () =
  let o = Flow.run ~seed:13 ~specs ~objectives ~context:[ ("cl", 5e-12) ] () in
  match (Spec.lookup o.Flow.pre_layout "ugf_hz", Spec.lookup o.Flow.post_layout "ugf_hz") with
  | Some pre, Some post ->
    if post > pre *. 1.01 then Alcotest.fail "extraction made the circuit faster"
  | _ -> Alcotest.fail "missing ugf"

let () =
  Alcotest.run "flow"
    [ ( "end-to-end",
        [ Alcotest.test_case "specs to layout" `Quick test_flow_end_to_end;
          Alcotest.test_case "parasitic direction" `Quick test_flow_post_layout_never_faster ] );
      ( "feasibility",
        [ Alcotest.test_case "gate refuses impossible spec" `Quick test_flow_gate_infeasible;
          Alcotest.test_case "loud fallback" `Quick test_flow_fallback_warning ] );
      ( "layout-retry",
        [ Alcotest.test_case "keeps routed layout" `Quick test_better_layout_keeps_routed ] ) ]
