(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus the quantified claims in its text, and (with `micro`)
   runs Bechamel micro-benchmarks of the computational kernels.

     dune exec bench/main.exe            # all experiments
     dune exec bench/main.exe -- table1  # one experiment
     dune exec bench/main.exe -- micro   # Bechamel kernels

   Experiment ids follow DESIGN.md: E1 = Table 1, E2 = Fig. 1, E3 = Fig. 2,
   E4 = Fig. 3, E5 = corners (4X-10X claim), E6 = stack extraction,
   E7 = the 6x power claim (inside E1), E8 = WREN/WRIGHT noise management,
   E9 = ISAAC symbolic simplification, E10 = parasitic-bounded routing. *)

module Spec = Mixsyn_synth.Spec
module Sizing = Mixsyn_synth.Sizing
module Top = Mixsyn_circuit.Topology
module Tp = Mixsyn_circuit.Template
module N = Mixsyn_circuit.Netlist

let tech = Mixsyn_circuit.Tech.generic_07um

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let section fmt = Printf.ksprintf (fun s -> Printf.printf "\n-- %s --\n" s) fmt

(* ---------------------------------------------------------------------- *)
(* E1 + E7: Table 1 - pulse detector synthesis                             *)
(* ---------------------------------------------------------------------- *)

let run_table1 () =
  banner "E1/E7: Table 1 - pulse detector front-end synthesis";
  Printf.printf
    "paper: AMGIE-style synthesis of a CSA + 4-stage shaper meets every\nspec and cuts power ~6x against the expert manual design.\n\n";
  let rows = Mixsyn_synth.Pulse_detector.table1 ~seed:11 ~moves:40 () in
  Format.printf "%a@." Mixsyn_synth.Pulse_detector.pp_rows rows;
  let get metric select =
    List.find_map
      (fun (r : Mixsyn_synth.Pulse_detector.row) ->
        if r.Mixsyn_synth.Pulse_detector.metric = metric then Some (select r) else None)
      rows
  in
  match
    ( get "power_w" (fun r -> r.Mixsyn_synth.Pulse_detector.ours_manual),
      get "power_w" (fun r -> r.Mixsyn_synth.Pulse_detector.ours_synthesis) )
  with
  | Some m, Some s ->
    let parse v = Scanf.sscanf v "%f" (fun x -> x) in
    (try
       Printf.printf "E7 power-reduction shape: paper 40/7 = 5.7x, ours %.1fx\n"
         (parse m /. parse s)
     with Scanf.Scan_failure _ | Failure _ -> ())
  | _ -> ()

(* ---------------------------------------------------------------------- *)
(* E2: Fig. 1 - knowledge-based vs optimization-based synthesis            *)
(* ---------------------------------------------------------------------- *)

let run_fig1 () =
  banner "E2: Fig. 1 - the two frontend strategies on one specification";
  Printf.printf
    "paper: design plans execute fast but exist only where knowledge was\nencoded; optimization is open to new topologies at simulation cost.\n\n";
  let specs =
    [ Spec.spec "gain_db" (Spec.At_least 70.0);
      Spec.spec "ugf_hz" (Spec.At_least 10e6);
      Spec.spec "phase_margin_deg" (Spec.At_least 60.0) ]
  in
  let objectives = [ Spec.minimize "power_w" ] in
  let context = [ ("cl", 5e-12); ("load_cap_f", 5e-12) ] in
  Printf.printf "%-24s %10s %8s %7s %10s %9s\n" "strategy" "time" "evals" "specs" "power"
    "gain";
  List.iter
    (fun (label, strategy, guardband) ->
      let r =
        Sizing.size ~seed:5 ~context ~guardband strategy Top.miller_ota ~specs ~objectives
      in
      Printf.printf "%-24s %9.3fs %8d %7s %10s %8.1fdB\n" label r.Sizing.elapsed_s
        r.Sizing.evaluations
        (if r.Sizing.meets_specs then "MET" else "FAIL")
        (Mixsyn_util.Units.format
           (Option.value (Spec.lookup r.Sizing.performance "power_w") ~default:0.0)
           "W")
        (Option.value (Spec.lookup r.Sizing.performance "gain_db") ~default:0.0))
    [ ("design-plan (Fig. 1a)", Sizing.Design_plan Mixsyn_synth.Design_plan.plan_miller, 1.0);
      ("equation-annealing", Sizing.Equation_annealing, 1.0);
      ("equation + guardband", Sizing.Equation_annealing, 1.25);
      ("awe-annealing (OBLX)", Sizing.Awe_annealing, 1.0);
      ("simulation-annealing", Sizing.Simulation_annealing, 1.0) ];
  Printf.printf
    "\nshape check: the plan is orders of magnitude faster; the equation\nmodel is fast but first-order; simulation in the loop is slowest and\nmost exact.\n"

(* ---------------------------------------------------------------------- *)
(* E3: Fig. 2 - six layouts of the identical opamp                          *)
(* ---------------------------------------------------------------------- *)

let run_fig2 () =
  banner "E3: Fig. 2 - six layouts of the identical CMOS opamp";
  Printf.printf
    "paper: two KOAN/ANAGRAM II automatic layouts compare favourably with\nfour manual layouts of the same opamp.\n\n";
  let nl =
    Top.miller_ota.Tp.build tech
      [| 60e-6; 20e-6; 30e-6; 60e-6; 45e-6; 1e-6; 50e-6; 3e-12; 5e-12 |]
  in
  let show (r : Mixsyn_layout.Cell_flow.report) =
    Printf.printf "%-20s %9.0f um2 %8.1f um %4d vias  %-10s %6.2f fF\n"
      r.Mixsyn_layout.Cell_flow.flow_name
      (r.Mixsyn_layout.Cell_flow.area_m2 *. 1e12)
      (r.Mixsyn_layout.Cell_flow.wirelength_m *. 1e6)
      r.Mixsyn_layout.Cell_flow.vias
      (if r.Mixsyn_layout.Cell_flow.complete then "routed" else "INCOMPLETE")
      (r.Mixsyn_layout.Cell_flow.sensitive_coupling_f *. 1e15)
  in
  Printf.printf "%-20s %13s %11s %9s %10s %9s\n" "layout" "area" "wire" "vias" "routing"
    "coupling";
  List.iter (fun style -> show (Mixsyn_layout.Cell_flow.procedural ~style nl)) [ 0; 1; 2; 3 ];
  List.iter (fun seed -> show (Mixsyn_layout.Cell_flow.koan ~seed nl)) [ 23; 57 ]

(* ---------------------------------------------------------------------- *)
(* E4: Fig. 3 - RAIL power grid                                             *)
(* ---------------------------------------------------------------------- *)

let run_fig3 () =
  banner "E4: Fig. 3 - RAIL power-grid synthesis for the data-channel chip";
  Printf.printf
    "paper: RAIL meets a demanding set of dc, ac and transient constraints\nautomatically, using AWE to evaluate the grid electrically.\n\n";
  let blocks = Mixsyn_assembly.Block.data_channel_testbench () in
  let fp = Mixsyn_assembly.Floorplan.floorplan ~seed:5 blocks in
  let r = Mixsyn_assembly.Power_grid.synthesize fp in
  let c = Mixsyn_assembly.Power_grid.default_constraints in
  let show name (m : Mixsyn_assembly.Power_grid.metrics) =
    Printf.printf "%-8s %8.2f%% %10.2f%% %12.2f%% %8.2fx %12.3f mm2\n" name
      (m.Mixsyn_assembly.Power_grid.ir_drop *. 100.)
      (m.Mixsyn_assembly.Power_grid.spike *. 100.)
      (m.Mixsyn_assembly.Power_grid.victim_bounce *. 100.)
      m.Mixsyn_assembly.Power_grid.em_overload
      (m.Mixsyn_assembly.Power_grid.metal_area *. 1e6)
  in
  Printf.printf "%-8s %9s %11s %13s %9s %14s\n" "design" "IR-drop" "spike" "victim" "EM"
    "metal";
  Printf.printf "%-8s %8.2f%% %10.2f%% %12.2f%% %8s %14s\n" "limit"
    (c.Mixsyn_assembly.Power_grid.max_ir_drop *. 100.)
    (c.Mixsyn_assembly.Power_grid.max_spike *. 100.)
    (c.Mixsyn_assembly.Power_grid.max_victim_bounce *. 100.)
    "1.00x" "minimise";
  show "before" r.Mixsyn_assembly.Power_grid.before;
  show "after" r.Mixsyn_assembly.Power_grid.after;
  Printf.printf "\nconstraints %s after %d width-sizing iterations\n"
    (if r.Mixsyn_assembly.Power_grid.meets then "MET" else "VIOLATED")
    r.Mixsyn_assembly.Power_grid.iterations

(* ---------------------------------------------------------------------- *)
(* E5: corner-aware synthesis CPU overhead                                  *)
(* ---------------------------------------------------------------------- *)

let run_corners () =
  banner "E5: manufacturability - worst-case corner synthesis overhead";
  Printf.printf
    "paper: the ASTRX/OBLX manufacturability extension costs roughly\n4X-10X the nominal synthesis CPU time.\n\n";
  let specs =
    [ Spec.spec "gain_db" (Spec.At_least 70.0);
      Spec.spec "ugf_hz" (Spec.At_least 8e6);
      Spec.spec "phase_margin_deg" (Spec.At_least 55.0) ]
  in
  let report =
    Mixsyn_synth.Manufacturability.synthesize ~seed:3 Top.miller_ota ~specs
      ~objectives:[ Spec.minimize "power_w" ]
  in
  let m = report.Mixsyn_synth.Manufacturability.nominal in
  let r = report.Mixsyn_synth.Manufacturability.robust in
  Printf.printf "%-28s %10.3fs %8d evals\n" "nominal synthesis" m.Sizing.elapsed_s
    m.Sizing.evaluations;
  Printf.printf "%-28s %10.3fs %8d evals\n" "corner-robust synthesis" r.Sizing.elapsed_s
    r.Sizing.evaluations;
  Printf.printf "CPU ratio: %.1fx (paper: 4X-10X; we sweep %d corners per move)\n"
    report.Mixsyn_synth.Manufacturability.cpu_ratio
    (List.length Mixsyn_circuit.Tech.corner_space);
  Printf.printf "worst-corner violation: nominal design %.4f -> robust design %.4f (%s)\n"
    report.Mixsyn_synth.Manufacturability.nominal_worst_violation
    report.Mixsyn_synth.Manufacturability.robust_worst_violation
    report.Mixsyn_synth.Manufacturability.worst_corner.Mixsyn_circuit.Tech.corner_name

(* ---------------------------------------------------------------------- *)
(* E6: stack extraction - exact vs O(n)                                     *)
(* ---------------------------------------------------------------------- *)

let synthetic_devices n seed =
  (* a synthetic diffusion graph: n same-width NMOS devices over a small
     pool of nets, chain-biased so long stacks exist *)
  let rng = Mixsyn_util.Rng.create seed in
  let nets = 2 + (n / 2) in
  List.init n (fun i ->
      let a = 1 + Mixsyn_util.Rng.int rng nets in
      let b = 1 + Mixsyn_util.Rng.int rng nets in
      { N.m_name = Printf.sprintf "m%d" i;
        drain = a;
        gate = 1 + Mixsyn_util.Rng.int rng nets;
        source = (if b = a then ((b + 1) mod nets) + 1 else b);
        bulk = 0;
        w = 10e-6;
        l = 1e-6;
        polarity = N.Nmos })

let run_stacks () =
  banner "E6: device stacking - exact enumeration vs the O(n) algorithm";
  Printf.printf
    "paper: extracting all optimal stacks is exponential [43]; [45]\nextracts one optimal stacking fast enough for a placer's inner loop.\n\n";
  Printf.printf "%6s %12s %12s %10s %12s %10s %8s\n" "n" "exact-time" "linear-time"
    "speedup" "states" "merges" "equal?";
  List.iter
    (fun n ->
      let devices = synthetic_devices n 7 in
      let t0 = Unix.gettimeofday () in
      let ex = Mixsyn_layout.Stacker.exact ~state_cap:300_000 devices in
      let t1 = Unix.gettimeofday () in
      let lin = Mixsyn_layout.Stacker.linear devices in
      let t2 = Unix.gettimeofday () in
      let exact_time = t1 -. t0 and linear_time = t2 -. t1 in
      Printf.printf "%6d %11.4fs %11.6fs %9.0fx %12d %6d/%-3d %8s\n" n exact_time
        linear_time
        (exact_time /. Float.max linear_time 1e-9)
        ex.Mixsyn_layout.Stacker.states_explored
        ex.Mixsyn_layout.Stacker.best.Mixsyn_layout.Stacker.merged_junctions
        lin.Mixsyn_layout.Stacker.merged_junctions
        (if ex.Mixsyn_layout.Stacker.capped then "capped"
         else if
           ex.Mixsyn_layout.Stacker.best.Mixsyn_layout.Stacker.merged_junctions
           = lin.Mixsyn_layout.Stacker.merged_junctions
         then "yes"
         else "no"))
    [ 4; 6; 8; 10; 12; 14; 16 ]

(* ---------------------------------------------------------------------- *)
(* E8: WREN/WRIGHT noise management                                          *)
(* ---------------------------------------------------------------------- *)

let run_wren () =
  banner "E8: WRIGHT substrate-aware floorplanning + WREN SNR routing";
  Printf.printf
    "paper: WRIGHT folds a fast substrate-noise evaluator into floorplan\ncost; WREN routes to designer noise-rejection limits; segregated\nchannels remain practical only for small layouts.\n\n";
  let blocks = Mixsyn_assembly.Block.data_channel_testbench () in
  section "floorplanning";
  Printf.printf "%-14s %10s %12s %16s\n" "cost" "area" "wirelength" "victim noise";
  List.iter
    (fun (label, weight) ->
      let fp = Mixsyn_assembly.Floorplan.floorplan ~seed:5 ~noise_weight:weight blocks in
      Printf.printf "%-14s %7.2f mm2 %9.1f mm %13.1f mV\n" label
        (fp.Mixsyn_assembly.Floorplan.fp_area *. 1e6)
        (fp.Mixsyn_assembly.Floorplan.fp_wirelength *. 1e3)
        (Mixsyn_assembly.Floorplan.total_victim_noise fp *. 1e3))
    [ ("noise-blind", 0.0); ("noise-aware", 2.0) ];
  section "global routing (on the noise-aware floorplan)";
  let fp = Mixsyn_assembly.Floorplan.floorplan ~seed:5 ~noise_weight:2.0 blocks in
  Printf.printf "%-14s %8s %12s %22s\n" "mode" "routed" "wirelength" "shared-with-aggressor";
  List.iter
    (fun (label, mode) ->
      let r = Mixsyn_assembly.Wren.route ~mode fp in
      Printf.printf "%-14s %4d/%-3d %9.1f mm %18.0f um\n" label
        (List.length r.Mixsyn_assembly.Wren.routed)
        (List.length r.Mixsyn_assembly.Wren.routed
         + List.length r.Mixsyn_assembly.Wren.unrouted)
        (r.Mixsyn_assembly.Wren.total_length *. 1e3)
        (r.Mixsyn_assembly.Wren.shared_length *. 1e6))
    [ ("noise-blind", Mixsyn_assembly.Wren.Noise_blind);
      ("snr", Mixsyn_assembly.Wren.Snr_constrained);
      ("segregated", Mixsyn_assembly.Wren.Segregated) ]

(* ---------------------------------------------------------------------- *)
(* E9: ISAAC symbolic analysis and simplification                            *)
(* ---------------------------------------------------------------------- *)

let run_isaac () =
  banner "E9: ISAAC - symbolic analysis up to opamp complexity";
  Printf.printf
    "paper: computer symbolic ac analysis handles full opamps; magnitude\npruning trades term count against accuracy for insight and speed.\n\n";
  let cases =
    [ ("ota-5t", Top.ota_5t, [| 50e-6; 25e-6; 40e-6; 1e-6; 100e-6; 2e-12 |]);
      ("miller-ota", Top.miller_ota,
       [| 60e-6; 20e-6; 30e-6; 60e-6; 45e-6; 1e-6; 50e-6; 3e-12; 5e-12 |]) ]
  in
  List.iter
    (fun (name, t, x) ->
      let nl = t.Tp.build tech x in
      let out = N.find_net nl "out" in
      let t0 = Unix.gettimeofday () in
      let r = Mixsyn_symbolic.Analyze.transfer nl ~out in
      let dt = Unix.gettimeofday () -. t0 in
      let op = Mixsyn_engine.Dc.solve ~tech nl in
      let v = Mixsyn_symbolic.Analyze.valuation ~tech nl op in
      section "%s: %d exact terms in %.2f s" name (Mixsyn_symbolic.Analyze.term_count r) dt;
      Printf.printf "%10s %10s %14s %14s\n" "threshold" "terms" "coeff error" "mag error";
      List.iter
        (fun th ->
          let report = Mixsyn_symbolic.Simplify.prune ~value:v ~threshold:th r in
          let freqs =
            Mixsyn_engine.Ac.log_sweep ~decades_from:0.0 ~decades_to:9.0 ~points_per_decade:3
          in
          let err =
            Mixsyn_symbolic.Simplify.magnitude_error ~value:v ~exact:r
              ~approx:report.Mixsyn_symbolic.Simplify.simplified ~freqs
          in
          Printf.printf "%10.3f %10d %13.2f%% %13.2f%%\n" th
            report.Mixsyn_symbolic.Simplify.terms_after
            (report.Mixsyn_symbolic.Simplify.max_coeff_error *. 100.0)
            (err *. 100.0))
        [ 0.001; 0.01; 0.05; 0.25 ])
    cases

(* ---------------------------------------------------------------------- *)
(* E10: parasitic-bounded routing (ROAD / ANAGRAM III)                        *)
(* ---------------------------------------------------------------------- *)

let run_road () =
  banner "E10: parasitic-bounded routing vs plain maze routing";
  Printf.printf
    "paper: ROAD/ANAGRAM III route against parasitic bounds derived from\nsensitivities instead of generic cost; critical nets get cleaner wire.\n\n";
  let nl =
    Top.miller_ota.Tp.build tech
      [| 60e-6; 20e-6; 30e-6; 60e-6; 45e-6; 1e-6; 50e-6; 3e-12; 5e-12 |]
  in
  let plain = Mixsyn_layout.Cell_flow.koan ~seed:23 nl in
  let bounded =
    Mixsyn_layout.Cell_flow.koan ~seed:23 ~coupling_budgets:[ ("o1", 1e-18); ("d1", 1e-18) ] nl
  in
  Printf.printf "%-22s %16s %16s %12s\n" "router" "o1 coupling" "d1 coupling" "wirelength";
  List.iter
    (fun (label, (r : Mixsyn_layout.Cell_flow.report)) ->
      Printf.printf "%-22s %13.3f fF %13.3f fF %9.1f um\n" label
        (Mixsyn_layout.Maze_router.coupling_on r.Mixsyn_layout.Cell_flow.route "o1" *. 1e15)
        (Mixsyn_layout.Maze_router.coupling_on r.Mixsyn_layout.Cell_flow.route "d1" *. 1e15)
        (r.Mixsyn_layout.Cell_flow.wirelength_m *. 1e6))
    [ ("plain (ANAGRAM II)", plain); ("bounded (ROAD-style)", bounded) ]

(* ---------------------------------------------------------------------- *)
(* Bechamel micro-benchmarks of the computational kernels                    *)
(* ---------------------------------------------------------------------- *)

let micro () =
  let open Bechamel in
  let nl5t = Top.ota_5t.Tp.build tech [| 50e-6; 25e-6; 40e-6; 1e-6; 100e-6; 2e-12 |] in
  let op5t = Mixsyn_engine.Dc.solve ~tech nl5t in
  let out5t = N.find_net nl5t "out" in
  let x_miller = Tp.midpoint Top.miller_ota in
  let tests =
    [ Test.make ~name:"e1-detector-awe-measure"
        (Staged.stage (fun () ->
             ignore
               (Mixsyn_synth.Pulse_detector.measure
                  Mixsyn_circuit.Detector.expert_manual_sizing)));
      Test.make ~name:"e2-dc-newton-miller"
        (Staged.stage (fun () ->
             ignore (Mixsyn_engine.Dc.solve ~tech (Top.miller_ota.Tp.build tech x_miller))));
      Test.make ~name:"e2-equation-evaluate"
        (Staged.stage (fun () ->
             ignore (Mixsyn_synth.Equations.evaluate Top.miller_ota x_miller)));
      Test.make ~name:"e2-awe-of-circuit"
        (Staged.stage (fun () ->
             ignore (Mixsyn_awe.Awe.of_circuit ~tech nl5t op5t ~out:out5t ~order:4)));
      Test.make ~name:"e9-symbolic-transfer-5t"
        (Staged.stage (fun () -> ignore (Mixsyn_symbolic.Analyze.transfer nl5t ~out:out5t)));
      Test.make ~name:"e6-linear-stacking"
        (Staged.stage (fun () -> ignore (Mixsyn_layout.Stacker.linear (N.mos_list nl5t))));
      (let blocks = Mixsyn_assembly.Block.data_channel_testbench () in
       let fp = Mixsyn_assembly.Floorplan.floorplan ~seed:5 blocks in
       let design =
         { Mixsyn_assembly.Power_grid.pitch = 0.8e-3;
           strap_widths = Array.make 20 10e-6;
           n_vertical = 10;
           n_horizontal = 10 }
       in
       Test.make ~name:"e4-powergrid-evaluate"
         (Staged.stage (fun () -> ignore (Mixsyn_assembly.Power_grid.evaluate fp design)))) ]
  in
  List.iter
    (fun test ->
      let instance = Toolkit.Instance.monotonic_clock in
      let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) () in
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          let stats =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| "run" |])
              instance raw
          in
          match Analyze.OLS.estimates stats with
          | Some [ est ] -> Printf.printf "%-28s %12.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-28s (no estimate)\n" name)
        results)
    tests

(* ---------------------------------------------------------------------- *)


(* ---------------------------------------------------------------------- *)
(* Supplementary: high-level converter synthesis (the section 2.1 example)  *)
(* ---------------------------------------------------------------------- *)

let run_adc () =
  banner "Supplementary: A/D converter high-level synthesis (section 2.1's example)";
  Printf.printf
    "paper: the methodology's opening example is selecting flash / SAR /\ndelta-sigma for an ADC and translating its specs onto subblocks\n(the AZTECA/CATALYST and SDOPT line, [19,20]).\n\n";
  let module C = Mixsyn_synth.Converter in
  Printf.printf "%5s %12s | %12s %12s %12s %12s | %s\n" "bits" "rate" "flash" "sar"
    "pipeline" "delta-sigma" "chosen";
  List.iter
    (fun (bits, rate) ->
      let spec = { C.bits; rate_hz = rate; vref = 2.0 } in
      let estimates, best = C.select spec in
      let cell arch =
        match List.find_opt (fun (e : C.estimate) -> e.C.arch = arch) estimates with
        | Some e when e.C.feasible -> Mixsyn_util.Units.format e.C.power_w "W"
        | Some _ -> "-"
        | None -> "?"
      in
      Printf.printf "%5d %9.0f kS | %12s %12s %12s %12s | %s\n" bits (rate /. 1e3)
        (cell C.Flash) (cell C.Sar) (cell C.Pipeline) (cell C.Delta_sigma)
        (match best with Some b -> C.architecture_name b.C.arch | None -> "NONE"))
    [ (6, 50e6); (8, 100e3); (8, 10e6); (10, 1e6); (12, 100e3); (12, 1e6); (14, 44.1e3) ];
  let s = C.synthesize ~seed:29 { C.bits = 10; rate_hz = 1e6; vref = 2.0 } in
  Printf.printf
    "\nspec translation closes the hierarchy: 10b/1MS -> %s -> comparator\n(gain >= %.0f dB, bw >= %.0f MHz) sized at device level: %s, %s\n"
    (C.architecture_name s.C.chosen.C.arch) s.C.chosen.C.comparator_gain_db
    (s.C.chosen.C.comparator_bw_hz /. 1e6)
    (Mixsyn_util.Units.format
       (Option.value (Spec.lookup s.C.comparator.Sizing.performance "power_w") ~default:0.0)
       "W")
    (if s.C.comparator.Sizing.meets_specs then "specs MET" else "specs MISSED")

(* ---------------------------------------------------------------------- *)
(* Ablations: the design choices DESIGN.md section 5 calls out             *)
(* ---------------------------------------------------------------------- *)

let run_ablations () =
  banner "Ablations: design choices isolated";

  section "placer cooling schedule (KOAN-style annealing, miller opamp)";
  let nl =
    Top.miller_ota.Tp.build tech
      [| 60e-6; 20e-6; 30e-6; 60e-6; 45e-6; 1e-6; 50e-6; 3e-12; 5e-12 |]
  in
  let items, _, sym = Mixsyn_layout.Cell_flow.items_of_netlist nl in
  Printf.printf "%8s %10s %12s %12s %9s\n" "cooling" "time" "area" "wirelength" "overlap";
  List.iter
    (fun cooling ->
      let schedule =
        { Mixsyn_opt.Anneal.t_start = 1e3; t_end = 1e-3; cooling; moves_per_stage = 400 }
      in
      let t0 = Unix.gettimeofday () in
      let placement = Mixsyn_layout.Placer.place ~schedule ~seed:23 items sym in
      let dt = Unix.gettimeofday () -. t0 in
      let _, area, wl, _ = Mixsyn_layout.Placer.cost_parts items sym placement in
      Printf.printf "%8.2f %9.2fs %9.0f um2 %9.1f um %9b\n" cooling dt (area *. 1e12)
        (wl *. 1e6)
        (Mixsyn_layout.Placer.overlap_free items placement))
    [ 0.85; 0.93; 0.97 ];

  section "AWE order in the RAIL transient oracle";
  let blocks = Mixsyn_assembly.Block.data_channel_testbench () in
  let fp = Mixsyn_assembly.Floorplan.floorplan ~seed:5 blocks in
  let design =
    { Mixsyn_assembly.Power_grid.pitch = 0.8e-3;
      strap_widths = Array.make 20 10e-6;
      n_vertical = 10;
      n_horizontal = 10 }
  in
  Printf.printf "%6s %12s %12s\n" "order" "spike" "eval time";
  List.iter
    (fun order ->
      let t0 = Unix.gettimeofday () in
      let m = Mixsyn_assembly.Power_grid.evaluate ~awe_order:order fp design in
      Printf.printf "%6d %11.2f%% %10.1f ms\n" order
        (m.Mixsyn_assembly.Power_grid.spike *. 100.)
        ((Unix.gettimeofday () -. t0) *. 1e3))
    [ 1; 2; 3; 5 ];

  section "evaluator cost inside the sizing loop (the OBLX motivation)";
  let x = Tp.midpoint Top.miller_ota in
  let time_evals label f =
    let t0 = Unix.gettimeofday () in
    let n = 200 in
    for _ = 1 to n do
      ignore (f ())
    done;
    Printf.printf "%-24s %10.1f evals/s\n" label
      (float_of_int n /. (Unix.gettimeofday () -. t0))
  in
  time_evals "equations" (fun () -> Mixsyn_synth.Equations.evaluate Top.miller_ota x);
  time_evals "awe hybrid" (fun () -> Mixsyn_synth.Evaluate.awe_hybrid Top.miller_ota x);
  time_evals "full simulation" (fun () ->
      Mixsyn_synth.Evaluate.full_simulation Top.miller_ota x);

  section "substrate-noise weight in the floorplan cost (WRIGHT)";
  Printf.printf "%8s %10s %16s\n" "weight" "area" "victim noise";
  List.iter
    (fun w ->
      let fp = Mixsyn_assembly.Floorplan.floorplan ~seed:5 ~noise_weight:w blocks in
      Printf.printf "%8.1f %7.2f mm2 %13.1f mV\n" w
        (fp.Mixsyn_assembly.Floorplan.fp_area *. 1e6)
        (Mixsyn_assembly.Floorplan.total_victim_noise fp *. 1e3))
    [ 0.0; 0.5; 2.0; 8.0 ];

  section "Monte-Carlo yield of nominal vs corner-robust sizing";
  let specs =
    [ Spec.spec "gain_db" (Spec.At_least 70.0);
      Spec.spec "ugf_hz" (Spec.At_least 8e6);
      Spec.spec "phase_margin_deg" (Spec.At_least 55.0) ]
  in
  let report =
    Mixsyn_synth.Manufacturability.synthesize ~seed:3 Top.miller_ota ~specs
      ~objectives:[ Spec.minimize "power_w" ]
  in
  let y_nominal =
    Mixsyn_synth.Manufacturability.yield_estimate Top.miller_ota
      report.Mixsyn_synth.Manufacturability.nominal.Sizing.params ~specs
  in
  let y_robust =
    Mixsyn_synth.Manufacturability.yield_estimate Top.miller_ota
      report.Mixsyn_synth.Manufacturability.robust.Sizing.params ~specs
  in
  Printf.printf "nominal sizing yield: %5.1f%%   corner-robust sizing yield: %5.1f%%\n"
    (100. *. y_nominal) (100. *. y_robust)

(* ---------------------------------------------------------------------- *)
(* Parallel: domain-pool speedup on the hot evaluation loops                *)
(* ---------------------------------------------------------------------- *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* wall-clock stability: every timed experiment runs [bench_repeats ()]
   times (>= 3 by default) and reports the median and the min, so a
   one-off scheduler hiccup can't fake a regression — or a speedup *)
let bench_repeats () =
  match Option.bind (Sys.getenv_opt "MIXSYN_BENCH_REPEATS") int_of_string_opt with
  | Some r when r >= 1 -> r
  | Some _ | None -> 3

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let k = Array.length a in
  if k = 0 then 0.0
  else if k mod 2 = 1 then a.(k / 2)
  else 0.5 *. (a.((k / 2) - 1) +. a.(k / 2))

let fmin xs = List.fold_left Float.min infinity xs

(* the scaling curve every parallel experiment measures: sequential
   baseline plus these worker counts (the CI gate reads the last point) *)
let curve_jobs = [ 2; 4 ]

let run_parallel () =
  banner "Parallel: domain-pool speedup on the hot evaluation loops";
  let host_cores = Mixsyn_util.Pool.available_cores () in
  let top_jobs = List.fold_left max 1 curve_jobs in
  let repeats = bench_repeats () in
  let gc0 = Gc.quick_stat () in
  Printf.printf
    "each loop runs at --jobs 1 then --jobs {%s} on the same seed (%d repeats,\n\
     median reported); the deterministic reduction makes the results bit-identical.\n\
     this host exposes %d core(s); the pool never fans out past them.\n\n"
    (String.concat "," (List.map string_of_int curve_jobs))
    repeats host_cores;
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let rows = ref [] in
  let bench ~items name f =
    (* allocation is measured on the first sequential run: at --jobs 1
       every solve happens on this domain, so [Gc.minor_words] is exact *)
    let w0 = Gc.minor_words () in
    let seq, seq_s0 = time (fun () -> f 1) in
    let words_per_item = (Gc.minor_words () -. w0) /. float_of_int (max 1 items) in
    let seq_ss =
      seq_s0 :: List.init (repeats - 1) (fun _ -> snd (time (fun () -> f 1)))
    in
    let seq_s = median seq_ss in
    let curve =
      List.map
        (fun j ->
          let par, par_s0 = time (fun () -> f j) in
          let par_ss =
            par_s0 :: List.init (repeats - 1) (fun _ -> snd (time (fun () -> f j)))
          in
          let par_s = median par_ss in
          (j, par_s, fmin par_ss, seq_s /. Float.max par_s 1e-9, seq = par))
        curve_jobs
    in
    let identical = List.for_all (fun (_, _, _, _, id) -> id) curve in
    Printf.printf "%-20s seq %7.3fs " name seq_s;
    List.iter
      (fun (j, par_s, _, speedup, _) -> Printf.printf " j%d %7.3fs %5.2fx " j par_s speedup)
      curve;
    Printf.printf " identical %b  %8.0f w/item\n" identical words_per_item;
    rows := (name, seq_s, fmin seq_ss, curve, identical, words_per_item) :: !rows
  in
  let nl =
    Top.miller_ota.Tp.build tech
      [| 60e-6; 20e-6; 30e-6; 60e-6; 45e-6; 1e-6; 50e-6; 3e-12; 5e-12 |]
  in
  (* annealing multi-start: 4 independent placement chains *)
  let items, _, sym = Mixsyn_layout.Cell_flow.items_of_netlist nl in
  bench ~items:4 "anneal-multistart" (fun j ->
      Mixsyn_layout.Placer.place ~seed:23 ~restarts:4 ~jobs:j items sym);
  (* corner sweep: 17 vertices, each a full simulation of the midpoint
     sizing at that corner *)
  let specs =
    [ Spec.spec "gain_db" (Spec.At_least 70.0);
      Spec.spec "ugf_hz" (Spec.At_least 10e6);
      Spec.spec "phase_margin_deg" (Spec.At_least 60.0) ]
  in
  let x = Tp.midpoint Top.miller_ota in
  let violation corner =
    let cornered = Mixsyn_circuit.Tech.apply_corner tech corner in
    match Mixsyn_synth.Evaluate.full_simulation ~tech:cornered Top.miller_ota x with
    | None -> 10.0
    | Some perf -> Spec.total_violation specs perf
  in
  bench ~items:(List.length Mixsyn_circuit.Tech.corner_space) "corner-sweep" (fun j ->
      let c, v, e = Mixsyn_opt.Corner_search.worst_corner ~refine:false ~jobs:j ~violation () in
      (c.Mixsyn_circuit.Tech.d_vdd, c.Mixsyn_circuit.Tech.d_temp,
       c.Mixsyn_circuit.Tech.d_vth, c.Mixsyn_circuit.Tech.d_kp, v, e));
  (* dense AC sweep: one complex solve per frequency point *)
  let op = Mixsyn_engine.Dc.solve ~tech nl in
  let freqs =
    Mixsyn_engine.Ac.log_sweep ~decades_from:0.0 ~decades_to:9.0 ~points_per_decade:300
  in
  bench ~items:(Array.length freqs) "ac-sweep" (fun j ->
      (Mixsyn_engine.Ac.solve ~tech ~jobs:j nl op ~freqs).Mixsyn_engine.Ac.solutions);
  let rows = List.rev !rows in
  let top_point curve = List.nth curve (List.length curve - 1) in
  let best_speedup =
    List.fold_left
      (fun acc (_, _, _, curve, _, _) ->
        let _, _, _, s, _ = top_point curve in
        Float.max acc s)
      0.0 rows
  in
  let curve_json curve =
    String.concat ","
      (List.map
         (fun (j, p, pmin, sp, _) ->
           Printf.sprintf "{\"jobs\":%d,\"par_s\":%.4f,\"par_s_min\":%.4f,\"speedup\":%.3f}"
             j p pmin sp)
         curve)
  in
  let benches_json =
    String.concat ","
      (List.map
         (fun (n, s, smin, curve, id, w) ->
           let _, p, pmin, sp, _ = top_point curve in
           Printf.sprintf
             "{\"name\":\"%s\",\"seq_s\":%.4f,\"seq_s_min\":%.4f,\"par_s\":%.4f,\"par_s_min\":%.4f,\"speedup\":%.3f,\"identical\":%b,\"minor_words_per_item\":%.1f,\"speedups_by_jobs\":[%s]}"
             n s smin p pmin sp id w (curve_json curve))
         rows)
  in
  let gc1 = Gc.quick_stat () in
  write_file "BENCH_parallel.json"
    (Printf.sprintf
       "{\"experiment\":\"parallel\",\"jobs\":%d,\"host_cores\":%d,\"jobs_measured\":[%s],\"repeats\":%d,\"benches\":[%s],\"best_speedup\":%.3f,\"gc_minor\":%d,\"gc_major\":%d}\n"
       top_jobs host_cores
       (String.concat "," (List.map string_of_int (1 :: curve_jobs)))
       repeats benches_json best_speedup
       (gc1.Gc.minor_collections - gc0.Gc.minor_collections)
       (gc1.Gc.major_collections - gc0.Gc.major_collections));
  Printf.printf "\nbest speedup %.2fx at %d jobs (recorded in BENCH_parallel.json)\n"
    best_speedup top_jobs

(* ---------------------------------------------------------------------- *)
(* Batch: high-throughput batch synthesis - determinism and resume          *)
(* ---------------------------------------------------------------------- *)

let run_batch () =
  let module Batch = Mixsyn_flow.Batch in
  let module Json = Mixsyn_util.Json in
  banner "Batch: manifest execution - journal determinism and checkpoint/resume";
  let host_cores = Mixsyn_util.Pool.available_cores () in
  let top_jobs = List.fold_left max 1 curve_jobs in
  let n = 48 in
  (* every 8th job asks for a gain the certified interval bounds prove
     unreachable on the 5T OTA (its enclosure tops out well under 1000 dB),
     so the static prefilter must journal it as infeasible without running
     the executor — and the skip must survive the byte-identity checks *)
  let infeasible i = i mod 8 = 3 in
  let n_infeasible = List.length (List.filter infeasible (List.init n Fun.id)) in
  Printf.printf
    "a %d-job manifest (%d provably infeasible) runs at --jobs {1,%s};\nthe finished journal must be byte-identical at every worker count, and\nidentical again when the parallel run resumes from a journal cut mid-record.\n\n"
    n n_infeasible
    (String.concat "," (List.map string_of_int curve_jobs));
  let manifest_text =
    String.concat "\n"
      (List.init n (fun i ->
           Printf.sprintf
             "{\"id\": \"job-%02d\", \"seed\": %d, \"specs\": [{\"name\": \"gain_db\", \"at_least\": %s}], \"topology\": \"ota-5t\"}"
             i (i + 1)
             (if infeasible i then "1000.0" else "40.0")))
  in
  let manifest =
    match Batch.manifest_of_string manifest_text with
    | Ok jobs -> jobs
    | Error msg -> failwith ("batch bench manifest: " ^ msg)
  in
  (* the executor is a deterministic stand-in for a full flow: a burst of
     DC solves on a seed-perturbed 5T OTA, heavy enough that the pool has
     work to schedule but cheap enough to sweep 2 x 48 jobs in seconds *)
  let executor (_ : Batch.job) ~seed =
    let mid = Tp.midpoint Top.ota_5t in
    let params =
      Array.mapi
        (fun i v -> v *. (1.0 +. (0.002 *. float_of_int ((seed * 31 + i) mod 5))))
        mid
    in
    let nl = Top.ota_5t.Tp.build tech params in
    let power = ref 0.0 in
    for _ = 1 to 25 do
      let op = Mixsyn_engine.Dc.solve ~tech nl in
      power := Mixsyn_engine.Dc.power nl op
    done;
    Json.Obj [ ("power_w", Json.Num !power); ("solves", Json.Num 25.0) ]
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let read path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let j_seq = Filename.temp_file "msyn_bench_batch_seq" ".journal" in
  let j_par = Filename.temp_file "msyn_bench_batch_par" ".journal" in
  Sys.remove j_seq;
  Sys.remove j_par;
  let repeats = bench_repeats () in
  let gc0 = Gc.quick_stat () in
  (* a repeat must start from a clean journal — resuming a finished one
     would just skip every job — so the journal is deleted between runs;
     the bytes compared below come from the first run of each mode *)
  let rerun ~jobs journal =
    List.init (repeats - 1) (fun _ ->
        Sys.remove journal;
        snd (time (fun () -> Batch.run ~jobs ~executor ~journal manifest)))
  in
  let w0 = Gc.minor_words () in
  let s_seq, seq_s0 = time (fun () -> Batch.run ~jobs:1 ~executor ~journal:j_seq manifest) in
  let minor_words_per_job = (Gc.minor_words () -. w0) /. float_of_int n in
  let bytes_seq = read j_seq in
  let seq_ss = seq_s0 :: rerun ~jobs:1 j_seq in
  let seq_s = median seq_ss in
  Printf.printf "%-24s %8.3fs  %5.1f jobs/s\n" "sequential (--jobs 1)" seq_s
    (float_of_int n /. Float.max seq_s 1e-9);
  (* the scaling curve: a fresh journal per worker count, every finished
     journal compared byte-for-byte against the sequential one *)
  let last_summary = ref s_seq in
  let curve =
    List.map
      (fun j ->
        if Sys.file_exists j_par then Sys.remove j_par;
        let s, par_s0 =
          time (fun () -> Batch.run ~jobs:j ~executor ~journal:j_par manifest)
        in
        let bytes = read j_par in
        let par_ss = par_s0 :: rerun ~jobs:j j_par in
        let par_s = median par_ss in
        last_summary := s;
        Printf.printf "%-24s %8.3fs  %5.1f jobs/s\n"
          (Printf.sprintf "parallel (--jobs %d)" j)
          par_s
          (float_of_int n /. Float.max par_s 1e-9);
        (j, par_s, fmin par_ss, seq_s /. Float.max par_s 1e-9,
         String.equal bytes_seq bytes))
      curve_jobs
  in
  let s_par = !last_summary in
  let _, par_s, par_s_min, speedup, _ = List.nth curve (List.length curve - 1) in
  let identical = List.for_all (fun (_, _, _, _, id) -> id) curve in
  (* simulate an interruption: keep the first half of the parallel journal
     plus a torn final line, then resume and demand the same bytes again *)
  let half =
    let lines = String.split_on_char '\n' bytes_seq in
    let keep = List.filteri (fun i _ -> i < n / 2) lines in
    String.concat "\n" keep ^ "\n" ^ "{\"id\":\"job-99\",\"seed\""
  in
  write_file j_par half;
  let s_res, _ =
    time (fun () -> Batch.run ~jobs:top_jobs ~executor ~journal:j_par manifest)
  in
  let resume_identical = String.equal bytes_seq (read j_par) in
  let throughput = float_of_int n /. Float.max par_s 1e-9 in
  Printf.printf "journal identical at every job count: %b\n" identical;
  Printf.printf "resume from torn journal:  %d skipped, identical %b\n"
    s_res.Batch.skipped resume_identical;
  Printf.printf "prefiltered as infeasible:  %d (expected %d)\n" s_par.Batch.prefiltered
    n_infeasible;
  if
    s_seq.Batch.completed <> n - n_infeasible
    || s_par.Batch.completed <> n - n_infeasible
    || s_par.Batch.prefiltered <> n_infeasible
  then
    Printf.printf "WARNING: %d/%d/%d of %d completed, %d/%d prefiltered\n"
      s_seq.Batch.completed s_par.Batch.completed s_res.Batch.completed n
      s_par.Batch.prefiltered n_infeasible;
  Sys.remove j_seq;
  Sys.remove j_par;

  (* cross-job stage cache: a repeated-spec manifest (the stratified-sampler
     shape — many jobs, few distinct sizing inputs) through the real
     Flow.size_stage, timed with the cache bypassed and then enabled from
     cold; the journals must be byte-identical either way *)
  section "cross-job stage cache (repeated-spec manifest)";
  let cache_n = 32 in
  let cache_uniq = 4 in
  let cache_manifest =
    let text =
      String.concat "\n"
        (List.init cache_n (fun i ->
             Printf.sprintf
               "{\"id\": \"cache-%02d\", \"seed\": 7, \"specs\": [{\"name\": \"gain_db\", \"at_least\": %.1f}], \"objectives\": [{\"minimize\": \"power_w\"}], \"topology\": \"ota-5t\"}"
               i
               (30.0 +. float_of_int (i mod cache_uniq))))
    in
    match Batch.manifest_of_string text with
    | Ok jobs -> jobs
    | Error msg -> failwith ("batch bench cache manifest: " ^ msg)
  in
  let schedule =
    { Mixsyn_opt.Anneal.t_start = 10.0; t_end = 0.05; cooling = 0.85; moves_per_stage = 300 }
  in
  let sizing_executor ~stage_cache (job : Batch.job) ~seed =
    let r =
      Mixsyn_flow.Flow.size_stage ~strategy:Sizing.Equation_annealing ~schedule ~stage_cache
        ~seed ~context:job.Batch.context ~specs:job.Batch.specs
        ~objectives:job.Batch.objectives Top.ota_5t
    in
    Json.Obj
      [ ("cost", Json.Num r.Sizing.cost);
        ("evaluations", Json.Num (float_of_int r.Sizing.evaluations)) ]
  in
  let j_cache = Filename.temp_file "msyn_bench_batch_cache" ".journal" in
  let run_cache ~stage_cache () =
    if Sys.file_exists j_cache then Sys.remove j_cache;
    Mixsyn_flow.Flow.clear_stage_cache ();
    time (fun () ->
        Batch.run ~jobs:top_jobs ~prefilter:false
          ~executor:(sizing_executor ~stage_cache) ~journal:j_cache cache_manifest)
  in
  let s_unc, un0 = run_cache ~stage_cache:false () in
  let bytes_uncached = read j_cache in
  let un_ss =
    un0 :: List.init (repeats - 1) (fun _ -> snd (run_cache ~stage_cache:false ()))
  in
  let s_cached, c0 = run_cache ~stage_cache:true () in
  let bytes_cached = read j_cache in
  let c_ss =
    c0 :: List.init (repeats - 1) (fun _ -> snd (run_cache ~stage_cache:true ()))
  in
  Sys.remove j_cache;
  let uncached_s = median un_ss and cached_s = median c_ss in
  let cache_hits = s_cached.Batch.cache_hits
  and cache_misses = s_cached.Batch.cache_misses in
  let cache_hit_rate =
    float_of_int cache_hits /. float_of_int (max 1 (cache_hits + cache_misses))
  in
  let cache_identical = String.equal bytes_uncached bytes_cached in
  let cache_speedup = uncached_s /. Float.max cached_s 1e-9 in
  if s_unc.Batch.completed <> cache_n || s_cached.Batch.completed <> cache_n then
    Printf.printf "WARNING: cache manifest completed %d/%d uncached, %d/%d cached\n"
      s_unc.Batch.completed cache_n s_cached.Batch.completed cache_n;
  Printf.printf "%-24s %8.3fs\n" "cache bypassed" uncached_s;
  Printf.printf "%-24s %8.3fs  (%d hits / %d misses, %.0f%% hit rate)\n" "cache enabled"
    cached_s cache_hits cache_misses (100.0 *. cache_hit_rate);
  Printf.printf "cache speedup %.2fx, journal identical cached/uncached: %b\n"
    cache_speedup cache_identical;

  let gc1 = Gc.quick_stat () in
  let curve_json =
    String.concat ","
      (List.map
         (fun (j, p, pmin, sp, _) ->
           Printf.sprintf "{\"jobs\":%d,\"par_s\":%.4f,\"par_s_min\":%.4f,\"speedup\":%.3f}"
             j p pmin sp)
         curve)
  in
  write_file "BENCH_batch.json"
    (Printf.sprintf
       "{\"experiment\":\"batch\",\"jobs\":%d,\"host_cores\":%d,\"jobs_measured\":[%s],\"n_jobs\":%d,\"repeats\":%d,\"completed\":%d,\"prefiltered_jobs\":%d,\"seq_s\":%.4f,\"seq_s_min\":%.4f,\"par_s\":%.4f,\"par_s_min\":%.4f,\"speedup\":%.3f,\"speedups_by_jobs\":[%s],\"jobs_per_s\":%.2f,\"identical\":%b,\"resume_identical\":%b,\"resume_skipped\":%d,\"minor_words_per_job\":%.1f,\"stage_cache\":{\"n_jobs\":%d,\"unique_keys\":%d,\"hits\":%d,\"misses\":%d,\"hit_rate\":%.3f,\"uncached_s\":%.4f,\"cached_s\":%.4f,\"speedup\":%.3f,\"identical\":%b},\"gc_minor\":%d,\"gc_major\":%d}\n"
       top_jobs host_cores
       (String.concat "," (List.map string_of_int (1 :: curve_jobs)))
       n repeats s_par.Batch.completed s_par.Batch.prefiltered seq_s (fmin seq_ss) par_s
       par_s_min speedup curve_json throughput identical resume_identical
       s_res.Batch.skipped minor_words_per_job cache_n cache_uniq cache_hits cache_misses
       cache_hit_rate uncached_s cached_s cache_speedup cache_identical
       (gc1.Gc.minor_collections - gc0.Gc.minor_collections)
       (gc1.Gc.major_collections - gc0.Gc.major_collections));
  Printf.printf "\n%d jobs, %.1f jobs/s at %d workers (recorded in BENCH_batch.json)\n" n
    throughput top_jobs

(* ---------------------------------------------------------------------- *)
(* Serve: the persistent synthesis service - HTTP throughput and contract   *)
(* ---------------------------------------------------------------------- *)

let run_serve () =
  let module Batch = Mixsyn_flow.Batch in
  let module Serve = Mixsyn_flow.Serve in
  let module Http = Mixsyn_util.Http in
  let module Json = Mixsyn_util.Json in
  banner "Serve: persistent synthesis service - request latency and byte-identity";
  let host_cores = Mixsyn_util.Pool.available_cores () in
  let workers = List.fold_left max 1 curve_jobs in
  let n = 24 in
  let infeasible i = i mod 8 = 3 in
  Printf.printf
    "a %d-job manifest is submitted over HTTP to a %d-worker server; the\ndrained journal must be byte-identical to a sequential batch run, and\nthe read path is timed for requests/s and latency percentiles.\n\n"
    n workers;
  let manifest_lines =
    List.init n (fun i ->
        Printf.sprintf
          "{\"id\": \"srv-%02d\", \"seed\": %d, \"specs\": [{\"name\": \"gain_db\", \"at_least\": %s}], \"topology\": \"ota-5t\"}"
          i (i + 1)
          (if infeasible i then "1000.0" else "40.0"))
  in
  let manifest =
    match Batch.manifest_of_string (String.concat "\n" manifest_lines) with
    | Ok jobs -> jobs
    | Error msg -> failwith ("serve bench manifest: " ^ msg)
  in
  (* the deterministic stand-in executor the batch bench uses, lightened:
     a burst of DC solves on a seed-perturbed 5T OTA *)
  let executor (_ : Batch.job) ~seed =
    let mid = Tp.midpoint Top.ota_5t in
    let params =
      Array.mapi
        (fun i v -> v *. (1.0 +. (0.002 *. float_of_int ((seed * 31 + i) mod 5))))
        mid
    in
    let nl = Top.ota_5t.Tp.build tech params in
    let power = ref 0.0 in
    for _ = 1 to 5 do
      let op = Mixsyn_engine.Dc.solve ~tech nl in
      power := Mixsyn_engine.Dc.power nl op
    done;
    Json.Obj [ ("power_w", Json.Num !power); ("solves", Json.Num 5.0) ]
  in
  let read path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  (* the sequential batch reference journal *)
  let j_ref = Filename.temp_file "msyn_bench_serve_ref" ".journal" in
  Sys.remove j_ref;
  ignore (Batch.run ~jobs:1 ~executor ~journal:j_ref manifest);
  let bytes_ref = read j_ref in
  Sys.remove j_ref;
  (* boot the server on an ephemeral loopback port *)
  let j_srv = Filename.temp_file "msyn_bench_serve" ".journal" in
  Sys.remove j_srv;
  let cfg =
    { (Serve.default_config ~journal:j_srv) with Serve.workers; queue_capacity = 256 }
  in
  let slot = Atomic.make None in
  let server =
    Domain.spawn (fun () ->
        Serve.run ~executor ~on_ready:(fun h -> Atomic.set slot (Some h)) cfg)
  in
  let rec handle () =
    match Atomic.get slot with
    | Some h -> h
    | None ->
      Unix.sleepf 0.005;
      handle ()
  in
  let h = handle () in
  let port = Serve.port h in
  let call meth path body =
    match Http.request ?body ~timeout_s:30.0 ~host:"127.0.0.1" ~port ~meth ~path () with
    | Ok (status, _, body) -> (status, body)
    | Error msg -> failwith (Printf.sprintf "serve bench: %s %s: %s" meth path msg)
  in
  let state_of body =
    match Json.parse body with
    | Ok j -> Option.value ~default:"?" (Option.bind (Json.member "state" j) Json.to_str)
    | Error _ -> "?"
  in
  (* submit the whole manifest, then poll everything to completion *)
  let t_submit = Unix.gettimeofday () in
  List.iter (fun line -> ignore (call "POST" "/jobs" (Some line))) manifest_lines;
  List.iteri
    (fun i _ ->
      let id = Printf.sprintf "srv-%02d" i in
      let rec poll () =
        let _, body = call "GET" ("/jobs/" ^ id) None in
        match state_of body with
        | "queued" | "running" ->
          Unix.sleepf 0.01;
          poll ()
        | _ -> ()
      in
      poll ())
    manifest_lines;
  let jobs_s = Unix.gettimeofday () -. t_submit in
  Printf.printf "%-28s %8.3fs  %5.1f jobs/s\n" "submit + execute + poll" jobs_s
    (float_of_int n /. Float.max jobs_s 1e-9);
  (* read-path latency: one-shot status and health requests, each timed *)
  let n_requests = 300 in
  let latencies =
    Array.init n_requests (fun i ->
        let path = if i mod 3 = 0 then "/healthz" else Printf.sprintf "/jobs/srv-%02d" (i mod n) in
        let t0 = Unix.gettimeofday () in
        ignore (call "GET" path None);
        Unix.gettimeofday () -. t0)
  in
  let total_s = Array.fold_left ( +. ) 0.0 latencies in
  let rps = float_of_int n_requests /. Float.max total_s 1e-9 in
  Array.sort compare latencies;
  let pct p =
    latencies.(min (n_requests - 1) (int_of_float (p *. float_of_int (n_requests - 1) +. 0.5)))
  in
  let p50_ms = pct 0.50 *. 1e3 and p99_ms = pct 0.99 *. 1e3 in
  Printf.printf "%-28s %8.0f req/s  p50 %.2f ms  p99 %.2f ms\n" "read path (one-shot conns)"
    rps p50_ms p99_ms;
  (* graceful drain, then the byte-identity verdict *)
  let stats = (Serve.drain h; Domain.join server) in
  let bytes_srv = read j_srv in
  Sys.remove j_srv;
  let identical = String.equal bytes_ref bytes_srv in
  let drained = stats.Serve.finished = n in
  Printf.printf "journal identical to sequential batch: %b\n" identical;
  Printf.printf "drained cleanly: %b (%d finished, %d requests served)\n" drained
    stats.Serve.finished stats.Serve.requests;
  (* queue-bound sanity: a 1-worker, capacity-1 server under a burst must
     shed load with 429s rather than grow without bound *)
  let j_q = Filename.temp_file "msyn_bench_serve_q" ".journal" in
  Sys.remove j_q;
  let slow (_ : Batch.job) ~seed =
    Unix.sleepf 0.2;
    Json.Obj [ ("seed", Json.Num (float_of_int seed)) ]
  in
  let cfg_q =
    { (Serve.default_config ~journal:j_q) with Serve.workers = 1; queue_capacity = 1 }
  in
  let slot_q = Atomic.make None in
  let server_q =
    Domain.spawn (fun () ->
        Serve.run ~executor:slow ~on_ready:(fun h -> Atomic.set slot_q (Some h)) cfg_q)
  in
  let rec handle_q () =
    match Atomic.get slot_q with
    | Some h -> h
    | None ->
      Unix.sleepf 0.005;
      handle_q ()
  in
  let hq = handle_q () in
  let burst = 8 in
  let rejected = ref 0 in
  for i = 0 to burst - 1 do
    let body = Printf.sprintf "{\"id\": \"burst-%d\"}" i in
    match
      Http.request ~timeout_s:30.0 ~body ~host:"127.0.0.1" ~port:(Serve.port hq)
        ~meth:"POST" ~path:"/jobs" ()
    with
    | Ok (429, _, _) -> incr rejected
    | Ok _ -> ()
    | Error msg -> failwith ("serve bench burst: " ^ msg)
  done;
  let stats_q = (Serve.drain hq; Domain.join server_q) in
  Sys.remove j_q;
  let queue_full_429 = !rejected in
  Printf.printf "burst of %d on a capacity-1 queue: %d rejected with 429 (server saw %d)\n"
    burst queue_full_429 stats_q.Serve.rejected_queue_full;
  write_file "BENCH_serve.json"
    (Printf.sprintf
       "{\"experiment\":\"serve\",\"host_cores\":%d,\"workers\":%d,\"n_jobs\":%d,\"jobs_wall_s\":%.4f,\"jobs_per_s\":%.2f,\"requests\":%d,\"rps\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"queue_full_429\":%d,\"journal_identical\":%b,\"drained\":%b,\"requests_served\":%d}\n"
       host_cores workers n jobs_s
       (float_of_int n /. Float.max jobs_s 1e-9)
       n_requests rps p50_ms p99_ms queue_full_429 identical drained
       stats.Serve.requests);
  Printf.printf "\n%.0f req/s, p99 %.2f ms (recorded in BENCH_serve.json)\n" rps p99_ms

let all =
  [ ("table1", run_table1);
    ("fig1", run_fig1);
    ("fig2", run_fig2);
    ("fig3", run_fig3);
    ("corners", run_corners);
    ("stacks", run_stacks);
    ("wren", run_wren);
    ("isaac", run_isaac);
    ("road", run_road);
    ("adc", run_adc);
    ("ablations", run_ablations);
    ("parallel", run_parallel);
    ("batch", run_batch);
    ("serve", run_serve) ]

(* experiments that write their own richer BENCH_<name>.json *)
let self_reporting = [ "parallel"; "batch"; "serve" ]

(* run repeats with stdout parked on /dev/null: the repeat is purely for
   timing, and every experiment prints its tables as it runs *)
let quiet f =
  flush stdout;
  Format.print_flush ();
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Format.print_flush ();
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close devnull)
    f

(* run one experiment inside a fresh telemetry scope and print its report,
   so each table/figure comes with the counters and spans that produced it;
   a machine-readable BENCH_<name>.json records median/min wall time over
   [bench_repeats ()] runs, evaluation throughput and the GC collections
   the experiment caused, for trend tracking.  Self-reporting experiments
   repeat internally and are run once here. *)
let run_one (name, f) =
  Mixsyn_util.Telemetry.reset ();
  let gc0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  f ();
  let wall_s0 = Unix.gettimeofday () -. t0 in
  if not (List.mem name self_reporting) then begin
    let evals =
      List.fold_left
        (fun acc c -> acc + Mixsyn_util.Telemetry.counter c)
        0
        [ "sizing.evaluator_invocations"; "anneal.proposed"; "ac.freq_points" ]
    in
    let walls =
      wall_s0
      :: List.init
           (bench_repeats () - 1)
           (fun _ ->
             Mixsyn_util.Telemetry.reset ();
             let t0 = Unix.gettimeofday () in
             quiet f;
             Unix.gettimeofday () -. t0)
    in
    let gc1 = Gc.quick_stat () in
    let wall_s = median walls in
    write_file
      (Printf.sprintf "BENCH_%s.json" name)
      (Printf.sprintf
         "{\"experiment\":\"%s\",\"wall_s\":%.4f,\"wall_s_min\":%.4f,\"repeats\":%d,\"jobs\":%d,\"evals\":%d,\"evals_per_s\":%.1f,\"gc_minor\":%d,\"gc_major\":%d}\n"
         name wall_s (fmin walls) (List.length walls)
         (Mixsyn_util.Pool.default_jobs ())
         evals
         (float_of_int evals /. Float.max wall_s 1e-9)
         (gc1.Gc.minor_collections - gc0.Gc.minor_collections)
         (gc1.Gc.major_collections - gc0.Gc.major_collections))
  end;
  Printf.printf "\n-- telemetry: %s --\n" name;
  Format.printf "%a@." Mixsyn_util.Telemetry.pp_report ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] -> List.iter run_one all
  | [ "micro" ] -> micro ()
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name all with
        | Some f -> run_one (name, f)
        | None ->
          Printf.eprintf "unknown experiment %s; available: micro %s\n" name
            (String.concat " " (List.map fst all));
          exit 1)
      names
