(** Small statistics helpers for benchmark reporting and Monte-Carlo runs. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance; 0 for fewer than two samples. *)

val stddev : float array -> float
val minimum : float array -> float
val maximum : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] clamped into [0,100]; linear interpolation on
    the sorted copy of [xs]. *)

val linear_fit : (float * float) array -> float * float
(** Least-squares line: returns [(slope, intercept)]. *)

val geometric_mean : float array -> float
(** Requires strictly positive samples. *)
