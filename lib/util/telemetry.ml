(* Flow-wide observability: named monotonic counters and nested timed spans
   in one global registry.

   Domain-safe: counters are sharded per domain (each domain owns a shard
   with its own mutex, registered in a global list on first use), so hot
   paths running on many domains at once — 48 batch jobs all counting DC
   iterations — only ever lock their own shard; readers merge every shard
   on demand.  Span mutation still happens under one mutex (span trees are
   read-heavy and cold), and the span *stack* is domain-local, so a worker
   domain opening a span attaches it under the root (its own nesting
   context) instead of corrupting the caller's.  The clock is
   [Unix.gettimeofday], so span durations are wall seconds — the quantity
   that parallel speedups actually change. *)

type span = {
  span_name : string;
  calls : int;
  seconds : float;
  children : span list;
}

(* internal mutable span node; [n_children] is kept in reverse creation
   order and reversed on snapshot *)
type node = {
  n_name : string;
  mutable n_calls : int;
  mutable n_seconds : float;
  mutable n_children : node list;
}

let make_node name = { n_name = name; n_calls = 0; n_seconds = 0.0; n_children = [] }

let root = make_node "<root>"

(* per-domain nesting context: worker domains start at the root *)
let stack : node list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let registry_lock = Mutex.create ()

let locked f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

(* one counter shard per domain; [add] touches only the caller's shard.
   The shard list only ever grows (a dead domain leaves an empty, merged
   shard behind) — bounded in practice because pool workers are spawned
   once and reused. *)
type shard = { s_lock : Mutex.t; s_tbl : (string, int ref) Hashtbl.t }

let shards_lock = Mutex.create ()
let shards : shard list ref = ref []

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = { s_lock = Mutex.create (); s_tbl = Hashtbl.create 32 } in
      Mutex.lock shards_lock;
      shards := s :: !shards;
      Mutex.unlock shards_lock;
      s)

let shard_list () =
  Mutex.lock shards_lock;
  let l = !shards in
  Mutex.unlock shards_lock;
  l

let reset () =
  List.iter
    (fun s ->
      Mutex.lock s.s_lock;
      Hashtbl.reset s.s_tbl;
      Mutex.unlock s.s_lock)
    (shard_list ());
  (locked @@ fun () ->
   root.n_calls <- 0;
   root.n_seconds <- 0.0;
   root.n_children <- []);
  Domain.DLS.set stack []

let add name k =
  let s = Domain.DLS.get shard_key in
  Mutex.lock s.s_lock;
  (match Hashtbl.find_opt s.s_tbl name with
   | Some r -> r := !r + k
   | None -> Hashtbl.replace s.s_tbl name (ref k));
  Mutex.unlock s.s_lock

let count name = add name 1

let counter name =
  List.fold_left
    (fun acc s ->
      Mutex.lock s.s_lock;
      let v = match Hashtbl.find_opt s.s_tbl name with Some r -> !r | None -> 0 in
      Mutex.unlock s.s_lock;
      acc + v)
    0 (shard_list ())

let counters_alist () =
  let merged : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      Mutex.lock s.s_lock;
      Hashtbl.iter
        (fun name r ->
          let prior = Option.value ~default:0 (Hashtbl.find_opt merged name) in
          Hashtbl.replace merged name (prior + !r))
        s.s_tbl;
      Mutex.unlock s.s_lock)
    (shard_list ());
  let pairs = Hashtbl.fold (fun name v acc -> (name, v) :: acc) merged [] in
  List.sort (fun (a, _) (b, _) -> String.compare a b) pairs

let child_of parent name =
  match List.find_opt (fun n -> n.n_name = name) parent.n_children with
  | Some n -> n
  | None ->
    let n = make_node name in
    parent.n_children <- n :: parent.n_children;
    n

let with_span name f =
  let parent = match Domain.DLS.get stack with [] -> root | n :: _ -> n in
  let node = locked (fun () -> child_of parent name) in
  Domain.DLS.set stack (node :: Domain.DLS.get stack);
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      locked (fun () ->
          node.n_calls <- node.n_calls + 1;
          node.n_seconds <- node.n_seconds +. dt);
      match Domain.DLS.get stack with
      | n :: rest when n == node -> Domain.DLS.set stack rest
      | _ -> ())
    f

let rec freeze n =
  { span_name = n.n_name;
    calls = n.n_calls;
    seconds = n.n_seconds;
    children = List.rev_map freeze n.n_children }

let spans () = locked (fun () -> (freeze root).children)

let span_seconds name =
  let rec sum acc (s : span) =
    let acc = if s.span_name = name then acc +. s.seconds else acc in
    List.fold_left sum acc s.children
  in
  List.fold_left sum 0.0 (spans ())

let span_calls name =
  let rec sum acc (s : span) =
    let acc = if s.span_name = name then acc + s.calls else acc in
    List.fold_left sum acc s.children
  in
  List.fold_left sum 0 (spans ())

let top_counters ?(limit = 8) () =
  let by_weight (na, va) (nb, vb) =
    if va <> vb then compare vb va else String.compare na nb
  in
  let rec take k = function
    | x :: rest when k > 0 -> x :: take (k - 1) rest
    | _ -> []
  in
  take limit (List.sort by_weight (counters_alist ()))

(* derived figures the raw counter dump buries: the stage-cache hit rate
   and each domain's busy seconds, appended when those counters are live *)
let derived_segments () =
  let hits = counter "flow.stage_cache.hits"
  and misses = counter "flow.stage_cache.misses" in
  let cache =
    if hits + misses = 0 then []
    else
      [ Printf.sprintf "stage_cache=%.0f%%hit"
          (100.0 *. float_of_int hits /. float_of_int (hits + misses)) ]
  in
  let busy =
    List.filter_map
      (fun (name, v) ->
        match String.split_on_char '.' name with
        | [ "pool"; "domain"; slot; "busy_us" ] when v > 0 ->
          Some (Printf.sprintf "domain%s=%.2fs" slot (float_of_int v *. 1e-6))
        | _ -> None)
      (counters_alist ())
  in
  cache @ busy

let pp_rollup ?limit ppf () =
  match top_counters ?limit () with
  | [] -> Format.fprintf ppf "(no counters)"
  | top ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
      (fun ppf (name, v) -> Format.fprintf ppf "%s=%d" name v)
      ppf top;
    List.iter (fun s -> Format.fprintf ppf ", %s" s) (derived_segments ())

let pp_report ppf () =
  let cs = counters_alist () in
  let ss = spans () in
  if cs = [] && ss = [] then Format.fprintf ppf "telemetry: (empty)"
  else begin
    Format.fprintf ppf "telemetry report@\n";
    if cs <> [] then begin
      Format.fprintf ppf "  counters:@\n";
      List.iter (fun (name, v) -> Format.fprintf ppf "    %-36s %12d@\n" name v) cs
    end;
    if ss <> [] then begin
      Format.fprintf ppf "  spans:@\n";
      let rec walk depth s =
        Format.fprintf ppf "    %s%-*s %6d call%s %9.3fs@\n"
          (String.make (2 * depth) ' ')
          (max 1 (34 - (2 * depth)))
          s.span_name s.calls
          (if s.calls = 1 then " " else "s")
          s.seconds;
        List.iter (walk (depth + 1)) s.children
      in
      List.iter (walk 0) ss
    end
  end

let report () = Format.asprintf "%a" pp_report ()

(* JSON export goes through the canonical Json printer so floats render
   with the same shortest-round-trip encoding as the journal, the batch
   summary and the serve responses *)
let to_json_value () =
  let counters =
    Json.Obj
      (List.map (fun (name, v) -> (name, Json.Num (float_of_int v))) (counters_alist ()))
  in
  let rec span_json s =
    Json.Obj
      [ ("name", Json.Str s.span_name);
        ("calls", Json.Num (float_of_int s.calls));
        ("seconds", Json.Num s.seconds);
        ("children", Json.Arr (List.map span_json s.children)) ]
  in
  Json.Obj [ ("counters", counters); ("spans", Json.Arr (List.map span_json (spans ()))) ]

let to_json () = Json.to_string (to_json_value ())
