(** Memoizing evaluation cache for simulation-in-the-loop optimizers.

    Keys are compared with structural equality, so a [float array]
    parameter vector works directly.  Hit/miss counts are mirrored into
    {!Telemetry} under ["<name>.hits"] / ["<name>.misses"]. *)

type ('k, 'v) t

val create : ?size:int -> string -> ('k, 'v) t

val find_or_compute : ('k, 'v) t -> 'k -> ('k -> 'v) -> 'v
(** Return the cached value for the key, computing and storing it on the
    first visit.  The computation runs at most once per distinct key. *)

val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val hit_rate : ('k, 'v) t -> float
(** Hits over total lookups; 0 before any lookup. *)
