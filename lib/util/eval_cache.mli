(** Memoizing evaluation cache for simulation-in-the-loop optimizers.

    Keys are compared with structural equality, so a [float array]
    parameter vector works directly.  Hit/miss counts are mirrored into
    {!Telemetry} under ["<name>.hits"] / ["<name>.misses"].

    Domain-safe and lock-striped: keys hash onto [shards] independent
    (table, mutex) stripes, so concurrent domains only contend when they
    touch the same stripe.  Misses are {e single-flight} per stripe: while
    one domain computes a key, others asking for the same key block until
    the value lands instead of re-running the evaluator.  Computations run
    outside every lock, and results are bit-identical to a sequential
    run. *)

type ('k, 'v) t

val create : ?size:int -> ?shards:int -> string -> ('k, 'v) t
(** [create name] — a cache with [shards] lock stripes (default 16) and an
    initial capacity of [size] entries spread across them.
    @raise Invalid_argument when [shards < 1]. *)

val find_or_compute : ('k, 'v) t -> 'k -> ('k -> 'v) -> 'v
(** Return the cached value for the key, computing and storing it on the
    first visit.  The computation runs at most once per distinct key even
    under concurrent first visits (single-flight); if it raises, the
    exception propagates to the computing caller, waiters retry, and
    nothing is cached. *)

val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val shard_count : ('k, 'v) t -> int

val hit_rate : ('k, 'v) t -> float
(** Hits over total lookups; 0 before any lookup. *)

val clear : ('k, 'v) t -> unit
(** Drop every cached entry and zero the per-cache hit/miss counters (the
    cumulative {!Telemetry} mirrors are not rewound).  Benchmarks call
    this between repeats so a timed "cold" run is actually cold.
    In-flight computations are unaffected and land into the emptied
    table. *)
