(** Memoizing evaluation cache for simulation-in-the-loop optimizers.

    Keys are compared with structural equality, so a [float array]
    parameter vector works directly.  Hit/miss counts are mirrored into
    {!Telemetry} under ["<name>.hits"] / ["<name>.misses"].

    Domain-safe: a per-cache mutex guards the table, while computations
    run outside it.  Concurrent misses on the same key may compute twice;
    with a deterministic evaluator both computations produce the same
    value, so results stay bit-identical to a sequential run. *)

type ('k, 'v) t

val create : ?size:int -> string -> ('k, 'v) t

val find_or_compute : ('k, 'v) t -> 'k -> ('k -> 'v) -> 'v
(** Return the cached value for the key, computing and storing it on the
    first visit.  Sequentially the computation runs at most once per
    distinct key; concurrent first visits may race and compute it more
    than once (see above). *)

val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val hit_rate : ('k, 'v) t -> float
(** Hits over total lookups; 0 before any lookup. *)
