(* Minimal HTTP/1.1 framing: a pure, total request parser with hard size
   caps, a buffered keep-alive/pipelining reader, a response writer and a
   one-shot client.  Content-Length framing only — the service rejects
   Transfer-Encoding rather than implement chunked decoding it never
   needs. *)

type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
}

type parse_error =
  | Partial
  | Too_large of string
  | Malformed of string

let default_max_header_bytes = 16 * 1024
let default_max_body_bytes = 1024 * 1024

(* ---- pure parsing ------------------------------------------------------ *)

let header req name =
  let name = String.lowercase_ascii name in
  List.assoc_opt name req.headers

(* find the end of the header block: "\r\n\r\n" (or the lenient "\n\n"),
   returning the offset just past it *)
let header_end buf =
  let n = String.length buf in
  let rec scan i =
    if i >= n then None
    else if buf.[i] = '\n' then
      if i + 1 < n && buf.[i + 1] = '\n' then Some (i + 2)
      else if i + 2 < n && buf.[i + 1] = '\r' && buf.[i + 2] = '\n' then Some (i + 3)
      else scan (i + 1)
    else scan (i + 1)
  in
  scan 0

let split_lines block =
  String.split_on_char '\n' block
  |> List.map (fun line ->
         let n = String.length line in
         if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line)

let parse_query s =
  if s = "" then []
  else
    String.split_on_char '&' s
    |> List.filter_map (fun kv ->
           if kv = "" then None
           else
             match String.index_opt kv '=' with
             | None -> Some (kv, "")
             | Some i ->
               Some (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1)))

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ]
    when String.length version >= 7 && String.sub version 0 7 = "HTTP/1." ->
    let path, query =
      match String.index_opt target '?' with
      | None -> (target, [])
      | Some i ->
        ( String.sub target 0 i,
          parse_query (String.sub target (i + 1) (String.length target - i - 1)) )
    in
    if path = "" || path.[0] <> '/' then Error (Malformed "request target must start with /")
    else Ok (String.uppercase_ascii meth, path, query)
  | _ -> Error (Malformed "bad request line")

let parse_header_line line =
  match String.index_opt line ':' with
  | None -> Error (Malformed (Printf.sprintf "bad header line %S" line))
  | Some i ->
    let name = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
    let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
    if name = "" then Error (Malformed "empty header name") else Ok (name, value)

let parse_request ?(max_header_bytes = default_max_header_bytes)
    ?(max_body_bytes = default_max_body_bytes) buf =
  match header_end buf with
  | None ->
    if String.length buf > max_header_bytes then
      Error (Too_large (Printf.sprintf "header block over %d bytes" max_header_bytes))
    else Error Partial
  | Some hdr_end ->
    if hdr_end > max_header_bytes then
      Error (Too_large (Printf.sprintf "header block over %d bytes" max_header_bytes))
    else begin
      let ( let* ) = Result.bind in
      match split_lines (String.sub buf 0 hdr_end) with
      | [] | [ _ ] -> Error (Malformed "empty request")
      | request_line :: rest ->
        let* meth, path, query = parse_request_line request_line in
        let* headers =
          List.fold_left
            (fun acc line ->
              let* acc = acc in
              if line = "" then Ok acc
              else
                let* h = parse_header_line line in
                Ok (h :: acc))
            (Ok []) rest
        in
        let headers = List.rev headers in
        let find name = List.assoc_opt name headers in
        if find "transfer-encoding" <> None then
          Error (Malformed "transfer-encoding not supported; use content-length")
        else begin
          let* len =
            match find "content-length" with
            | None -> Ok 0
            | Some v ->
              (match int_of_string_opt (String.trim v) with
               | Some n when n >= 0 -> Ok n
               | _ -> Error (Malformed (Printf.sprintf "bad content-length %S" v)))
          in
          if len > max_body_bytes then
            Error (Too_large (Printf.sprintf "body of %d bytes over %d cap" len max_body_bytes))
          else if String.length buf < hdr_end + len then Error Partial
          else
            Ok
              ( { meth; path; query; headers; body = String.sub buf hdr_end len },
                hdr_end + len )
        end
    end

(* ---- connection reader ------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  chunk : Bytes.t;
  max_header_bytes : int;
  max_body_bytes : int;
}

type read_error =
  | Closed
  | Timeout
  | Torn
  | Too_big of string
  | Bad of string

let conn ?(max_header_bytes = default_max_header_bytes)
    ?(max_body_bytes = default_max_body_bytes) fd =
  { fd; buf = Buffer.create 1024; chunk = Bytes.create 4096; max_header_bytes;
    max_body_bytes }

(* wait until [fd] is readable or the deadline passes; EINTR retries *)
let rec wait_readable fd deadline =
  let left = deadline -. Unix.gettimeofday () in
  if left <= 0.0 then false
  else
    match Unix.select [ fd ] [] [] left with
    | [], _, _ -> wait_readable fd deadline
    | _ :: _, _, _ -> true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable fd deadline

let next_request ?(timeout_s = 10.0) c =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec loop () =
    let text = Buffer.contents c.buf in
    match
      parse_request ~max_header_bytes:c.max_header_bytes
        ~max_body_bytes:c.max_body_bytes text
    with
    | Ok (req, consumed) ->
      (* keep pipelined leftovers for the next call *)
      let rest = String.sub text consumed (String.length text - consumed) in
      Buffer.clear c.buf;
      Buffer.add_string c.buf rest;
      Ok req
    | Error (Too_large msg) -> Error (Too_big msg)
    | Error (Malformed msg) -> Error (Bad msg)
    | Error Partial ->
      if not (wait_readable c.fd deadline) then Error Timeout
      else begin
        match Unix.read c.fd c.chunk 0 (Bytes.length c.chunk) with
        | 0 -> if Buffer.length c.buf = 0 then Error Closed else Error Torn
        | n ->
          Buffer.add_subbytes c.buf c.chunk 0 n;
          loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          if Buffer.length c.buf = 0 then Error Closed else Error Torn
      end
  in
  loop ()

(* ---- responses --------------------------------------------------------- *)

let reason = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 413 -> "Payload Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let respond ?(headers = []) ?(content_type = "application/json") ?(close = false) fd
    ~status ~body =
  let buf = Buffer.create (256 + String.length body) in
  Buffer.add_string buf (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason status));
  Buffer.add_string buf (Printf.sprintf "Content-Type: %s\r\n" content_type);
  Buffer.add_string buf (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  Buffer.add_string buf
    (if close then "Connection: close\r\n" else "Connection: keep-alive\r\n");
  List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v)) headers;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf body;
  (* best-effort: the peer may already be gone *)
  try write_all fd (Buffer.contents buf)
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) -> ()

(* ---- one-shot client --------------------------------------------------- *)

let read_until_eof ?(deadline = infinity) fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    if deadline < infinity && not (wait_readable fd deadline) then ()
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  loop ();
  Buffer.contents buf

let parse_response text =
  match header_end text with
  | None -> Error "truncated response"
  | Some hdr_end ->
    (match split_lines (String.sub text 0 hdr_end) with
     | status_line :: rest ->
       (match String.split_on_char ' ' status_line with
        | _http :: code :: _ ->
          (match int_of_string_opt code with
           | None -> Error (Printf.sprintf "bad status %S" code)
           | Some status ->
             let headers =
               List.filter_map
                 (fun line ->
                   if line = "" then None
                   else Result.to_option (parse_header_line line))
                 rest
             in
             let body = String.sub text hdr_end (String.length text - hdr_end) in
             let body =
               match
                 Option.bind (List.assoc_opt "content-length" headers) int_of_string_opt
               with
               | Some n when n <= String.length body -> String.sub body 0 n
               | _ -> body
             in
             Ok (status, headers, body))
        | _ -> Error "bad status line")
     | [] -> Error "empty response")

let request ?(headers = []) ?(body = "") ?(timeout_s = 30.0) ~host ~port ~meth ~path () =
  match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
  | [] -> Error (Printf.sprintf "cannot resolve %s" host)
  | ai :: _ ->
    let fd = Unix.socket ai.Unix.ai_family ai.Unix.ai_socktype 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.connect fd ai.Unix.ai_addr with
        | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "connect: %s" (Unix.error_message e))
        | () ->
          let buf = Buffer.create 256 in
          Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" meth path);
          Buffer.add_string buf (Printf.sprintf "Host: %s:%d\r\n" host port);
          Buffer.add_string buf "Connection: close\r\n";
          List.iter
            (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
            headers;
          if body <> "" || meth = "POST" || meth = "PUT" then
            Buffer.add_string buf
              (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
          Buffer.add_string buf "\r\n";
          Buffer.add_string buf body;
          (match write_all fd (Buffer.contents buf) with
           | exception Unix.Unix_error (e, _, _) ->
             Error (Printf.sprintf "write: %s" (Unix.error_message e))
           | () ->
             let deadline = Unix.gettimeofday () +. timeout_s in
             parse_response (read_until_eof ~deadline fd)))
