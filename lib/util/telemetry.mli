(** Flow-wide observability: named monotonic counters and nested timed
    spans in one global registry.

    Every hot path of the synthesis flow reports here — DC Newton
    iterations, AWE order fallbacks, annealer move statistics, router grid
    expansions, sizing-cache hits — so the evaluation-count cost story of
    the paper (simulation-in-the-loop is ~10^3 x an equation evaluation) is
    measurable rather than anecdotal.

    The registry is global and process-wide; call {!reset} between
    experiments.  Span durations use [Unix.gettimeofday], i.e. wall
    seconds — the quantity parallel evaluation actually shrinks.

    Domain-safe: counters are sharded per domain with merge-on-read, so a
    hot loop counting from many {!Pool} workers at once only ever locks
    its own domain's shard (no cross-domain contention on the write path);
    span updates are serialized behind one mutex, and the span nesting
    context is domain-local, so worker spans attach under the root, not
    under the caller's open span. *)

type span = {
  span_name : string;
  calls : int;
  seconds : float;  (** cumulative wall seconds across all calls *)
  children : span list;  (** in creation order *)
}

val reset : unit -> unit
(** Clear every counter and span, and abandon any open span stack. *)

(** {2 Counters} *)

val count : string -> unit
(** Increment a named counter by one, creating it at zero first. *)

val add : string -> int -> unit
(** Increment a named counter by an arbitrary amount. *)

val counter : string -> int
(** Current value; 0 for a counter never touched. *)

val counters_alist : unit -> (string * int) list
(** All counters, sorted by name. *)

val top_counters : ?limit:int -> unit -> (string * int) list
(** The [limit] (default 8) heaviest counters, by value descending then
    name — the rollup a batch summary leads with. *)

val pp_rollup : ?limit:int -> Format.formatter -> unit -> unit
(** One line: ["a=12, b=3, ..."] over {!top_counters};
    ["(no counters)"] when the registry is empty.  When the stage-cache
    counters ([flow.stage_cache.hits]/[.misses]) or the per-domain busy
    counters ([pool.domain.<i>.busy_us]) are live, derived segments
    follow: ["stage_cache=87%hit, domain0=1.20s, domain1=1.10s"]. *)

(** {2 Spans} *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span: nested [with_span] calls
    attach as children, repeated calls at the same position accumulate
    [calls]/[seconds] into one node.  Exception-safe: the span closes on
    raise and the exception propagates. *)

val spans : unit -> span list
(** Snapshot of the span forest. *)

val span_seconds : string -> float
(** Total seconds across every span with this name, anywhere in the forest. *)

val span_calls : string -> int
(** Total calls across every span with this name. *)

(** {2 Reports} *)

val pp_report : Format.formatter -> unit -> unit
val report : unit -> string

val to_json_value : unit -> Json.t
(** The full registry as a canonical {!Json} value:
    [{"counters": {name: n, ...}, "spans": [...]}] — the structure the
    service's [/metrics] endpoint embeds, so every float in it round-trips
    through the same shortest-representation printer as the journal. *)

val to_json : unit -> string
(** [Json.to_string (to_json_value ())]. *)
