(* A fixed-size domain pool for the embarrassingly-parallel evaluation loops
   (corner sweeps, annealing multi-starts, GA populations, frequency sweeps).

   Workers are spawned once, on first demand, and reused for every
   subsequent parallel call; an [at_exit] hook joins them so the process
   always terminates cleanly.  Results are written into an index-addressed
   array and reduced in index order, so a parallel run is bit-identical to
   the sequential one whenever the per-item function is pure — the
   guarantee the optimizer loops rely on.  A call made from inside a worker
   runs sequentially (no nested fan-out, hence no pool deadlock). *)

let hard_cap = 64

(* precedence: set_default_jobs > MIXSYN_JOBS > recommended_domain_count *)
let override = Atomic.make 0

let clamp_jobs n = max 1 (min hard_cap n)

(* the one validation point for every way a job count enters the system:
   the --jobs flag, the MIXSYN_JOBS variable, and programmatic overrides
   all funnel through here, so zero/negative counts are rejected with the
   same message everywhere instead of silently clamping to 1 *)
let validate_jobs n =
  if n < 1 then
    Error (Printf.sprintf "job count must be at least 1 (got %d)" n)
  else Ok (min hard_cap n)

let jobs_of_string s =
  match int_of_string_opt (String.trim s) with
  | None -> Error (Printf.sprintf "invalid job count %S (expected a positive integer)" s)
  | Some n -> validate_jobs n

let set_default_jobs n =
  match validate_jobs n with
  | Ok n -> Atomic.set override n
  | Error msg -> invalid_arg ("Pool.set_default_jobs: " ^ msg)

let env_jobs () =
  match Sys.getenv_opt "MIXSYN_JOBS" with
  | None -> None
  | Some s -> (match jobs_of_string s with Ok n -> Some n | Error _ -> None)

let default_jobs () =
  let o = Atomic.get override in
  if o > 0 then o
  else
    match env_jobs () with
    | Some n -> n
    | None -> clamp_jobs (Domain.recommended_domain_count ())

(* ---- core awareness --------------------------------------------------- *)

(* Running more domains than the machine has cores is never free: the
   extra domains time-share a core, every minor collection still stops all
   of them, and the measured "speedup" goes below 1.  [available_cores]
   is what the scheduler believes the hardware offers; the helper budget
   of every parallel call is capped at [cores - 1] so a --jobs value above
   the core count degrades to core-count-wide execution instead of
   oversubscribing.  Results are unchanged either way (determinism
   contract); only where the work runs moves.

   MIXSYN_POOL_CORES overrides the detected count (tests, containers with
   misreported topology); MIXSYN_POOL_OVERSUBSCRIBE=1 removes the cap
   entirely for A/B measurements.  Both are read per call so tests can
   toggle them with [Unix.putenv]. *)

let available_cores () =
  match Option.bind (Sys.getenv_opt "MIXSYN_POOL_CORES") int_of_string_opt with
  | Some c when c >= 1 -> min c hard_cap
  | Some _ | None -> clamp_jobs (Domain.recommended_domain_count ())

let oversubscribe () =
  match Sys.getenv_opt "MIXSYN_POOL_OVERSUBSCRIBE" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

(* helper tasks (beyond the calling domain) a parallel call over [n] items
   may queue: never more than jobs - 1, never more than there are items to
   share, and never more than spare physical cores unless oversubscription
   was explicitly requested *)
let helper_budget ~jobs ~n =
  let spare = if oversubscribe () then jobs - 1 else min (jobs - 1) (available_cores () - 1) in
  max 0 (min spare (n - 1))

(* ---- GC awareness ----------------------------------------------------- *)

(* In OCaml 5 a minor collection stops *every* domain, so an allocating
   hot loop on one worker stalls the whole pool.  Workers therefore get a
   generous minor heap on spawn (fewer, larger stop-the-world pauses), and
   every parallel call surfaces the collection counts it caused through
   Telemetry, so allocation regressions show up in bench trajectories. *)

let min_worker_minor_heap = 1 lsl 16 (* 64k words, the stdlib floor *)
let default_worker_minor_heap = 1 lsl 22 (* 4M words *)

let worker_minor_heap =
  let init =
    match Option.bind (Sys.getenv_opt "MIXSYN_MINOR_HEAP") int_of_string_opt with
    | Some w when w >= min_worker_minor_heap -> w
    | Some _ | None -> default_worker_minor_heap
  in
  Atomic.make init

let set_worker_minor_heap_words w =
  if w < min_worker_minor_heap then
    invalid_arg
      (Printf.sprintf "Pool.set_worker_minor_heap_words: %d below %d words" w
         min_worker_minor_heap);
  Atomic.set worker_minor_heap w

let worker_minor_heap_words () = Atomic.get worker_minor_heap

(* ---- granularity awareness -------------------------------------------- *)

(* A parallel call over 6 ms of total work loses more to fan-out (queue
   wakeups, cache misses, the stop-the-world exposure of extra running
   domains) than it gains.  A [grain] remembers, per call site, roughly
   how long one item takes; once known, calls whose estimated total work
   is below [min_work_s] run sequentially.  Results are unaffected either
   way — the pool's determinism contract makes sequential and parallel
   execution bit-identical — so the estimate only steers scheduling. *)

(* Beyond the static min-work threshold, a grain also learns whether
   parallel execution actually paid at its call site: it keeps the
   per-item *wall* time of the last sequential and the last parallel run,
   and once both are known and parallel measured no faster, later calls
   run sequentially.  Every [reprobe_period]-th such fallback runs
   parallel anyway to refresh the measurement, so a site that became
   profitable (bigger inputs, idle cores) recovers instead of being stuck
   sequential forever. *)

type grain = {
  g_name : string;
  g_min_work_s : float;
  mutable g_est_item_s : float; (* work seconds per item; negative = unknown *)
  mutable g_seq_item_s : float; (* wall per item, last sequential run *)
  mutable g_par_item_s : float; (* wall per item, last parallel run *)
  mutable g_par_losses : int;   (* efficiency fallbacks since last re-probe *)
}

let reprobe_period = 32

let default_min_work_s =
  match Option.bind (Sys.getenv_opt "MIXSYN_POOL_MIN_WORK_US") float_of_string_opt with
  | Some us when us >= 0.0 && Float.is_finite us -> us *. 1e-6
  | Some _ | None -> 1.0e-3

let grain ?min_work_s name =
  let m =
    match min_work_s with
    | None -> default_min_work_s
    | Some s when s >= 0.0 && Float.is_finite s -> s
    | Some s -> invalid_arg (Printf.sprintf "Pool.grain: bad min_work_s %g" s)
  in
  { g_name = name; g_min_work_s = m; g_est_item_s = -1.0;
    g_seq_item_s = -1.0; g_par_item_s = -1.0; g_par_losses = 0 }

let grain_estimate g = if g.g_est_item_s < 0.0 then None else Some g.g_est_item_s

(* decide (with telemetry) whether a parallel-eligible call should run
   sequentially anyway; [min_work_s = 0.0] opts out of both fallbacks *)
let grain_prefers_sequential g n =
  if g.g_min_work_s <= 0.0 then false
  else if g.g_est_item_s >= 0.0
          && g.g_est_item_s *. float_of_int n < g.g_min_work_s then begin
    (* known-small call site: fan-out overhead would dominate *)
    Telemetry.count "pool.grain_fallbacks";
    true
  end
  else if g.g_seq_item_s >= 0.0 && g.g_par_item_s >= 0.0
          && g.g_par_item_s >= g.g_seq_item_s *. 0.98 then begin
    (* measured: parallel was no faster here (single-core host, memory-
       bound loop, ...).  Run sequentially, but re-probe periodically. *)
    g.g_par_losses <- g.g_par_losses + 1;
    if g.g_par_losses mod reprobe_period = 0 then false
    else begin
      Telemetry.count "pool.grain_inefficient";
      true
    end
  end
  else false

let note_sequential g ~n wall =
  let per = wall /. float_of_int n in
  g.g_est_item_s <- per;
  g.g_seq_item_s <- per

(* ---- the worker pool ------------------------------------------------- *)

let lock = Mutex.create ()
let work_available = Condition.create ()
let queue : (unit -> unit) Queue.t = Queue.create ()
let workers : unit Domain.t list ref = ref []
let worker_total = ref 0
let stopping = ref false

(* true inside a pool worker; parallel calls made there run sequentially *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* stable per-domain slot for utilization accounting: the calling domain
   is slot 0, workers take 1.. in spawn order.  Counter names are
   pre-rendered so the hot path does no formatting. *)
let pool_slot : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let slot_busy_names =
  Array.init hard_cap (fun i -> Printf.sprintf "pool.domain.%d.busy_us" i)

let note_busy t0 =
  let us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  Telemetry.add slot_busy_names.(Domain.DLS.get pool_slot land (hard_cap - 1)) us

let rec worker_loop () =
  Mutex.lock lock;
  while Queue.is_empty queue && not !stopping do
    Condition.wait work_available lock
  done;
  match Queue.take_opt queue with
  | None ->
    (* stopping with an empty queue *)
    Mutex.unlock lock
  | Some task ->
    Mutex.unlock lock;
    (* tasks trap their own exceptions; a raise here would kill the worker *)
    (try task () with _ -> ());
    worker_loop ()

let ensure_workers wanted =
  Mutex.lock lock;
  if not !stopping then
    while !worker_total < wanted && !worker_total < hard_cap - 1 do
      incr worker_total;
      let slot = !worker_total in
      workers :=
        Domain.spawn (fun () ->
            Domain.DLS.set in_worker true;
            Domain.DLS.set pool_slot slot;
            (* size the worker's minor heap before it runs any task *)
            Gc.set
              { (Gc.get ()) with Gc.minor_heap_size = Atomic.get worker_minor_heap };
            worker_loop ())
        :: !workers
    done;
  Mutex.unlock lock

let worker_count () =
  Mutex.lock lock;
  let n = !worker_total in
  Mutex.unlock lock;
  n

let shutdown () =
  Mutex.lock lock;
  stopping := true;
  Condition.broadcast work_available;
  let ws = !workers in
  workers := [];
  worker_total := 0;
  Mutex.unlock lock;
  List.iter Domain.join ws;
  Mutex.lock lock;
  stopping := false;
  Mutex.unlock lock

let () = at_exit shutdown

(* ---- chunked parallel execution -------------------------------------- *)

exception Chunk_failed of int * exn * Printexc.raw_backtrace

(* run [f i a.(i)] for every i in [0, n) across [jobs] participants (the
   caller plus helper tasks on the pool) and return the results in index
   order.  On failure, the exception of the smallest failing index is
   re-raised in the caller — deterministic no matter how chunks were
   interleaved.

   [chunk] is the work-stealing granularity: participants claim [chunk]
   consecutive indices at a time, so it decides what the unit of work is —
   a frequency *band* rather than a point, a whole anneal chain rather
   than a move.  The default splits the range into ~4 chunks per job,
   which amortizes the claim (one atomic per chunk) while still letting a
   fast participant steal from a slow one's share.

   Each participant materializes a claimed chunk as one ordinary array
   ([Array.init] gives float results an unboxed flat array) and publishes
   [(start, piece)] under a mutex; the caller assembles the final array
   from the pieces.  That's O(chunks) transient allocation instead of the
   one ['b option] box per item the previous implementation paid — the
   per-item hot path allocates nothing in the pool itself. *)
let run_chunks ~helpers ?chunk f (a : 'a array) : 'b array =
  let n = Array.length a in
  let next = Atomic.make 0 in
  let chunk =
    match chunk with
    | None -> max 1 (n / ((helpers + 1) * 4))
    | Some c -> c
  in
  let failure = ref None in
  let failure_lock = Mutex.create () in
  let record i exn bt =
    Mutex.lock failure_lock;
    (match !failure with
     | Some (j, _, _) when j <= i -> ()
     | Some _ | None -> failure := Some (i, exn, bt));
    Mutex.unlock failure_lock
  in
  let failed () =
    Mutex.lock failure_lock;
    let f = !failure <> None in
    Mutex.unlock failure_lock;
    f
  in
  let pieces : (int * 'b array) list ref = ref [] in
  let pieces_lock = Mutex.create () in
  let work () =
    let continue = ref true in
    while !continue do
      let start = Atomic.fetch_and_add next chunk in
      if start >= n || failed () then continue := false
      else begin
        let stop = min n (start + chunk) in
        match
          Array.init (stop - start) (fun k ->
              let i = start + k in
              try f i a.(i)
              with exn -> raise (Chunk_failed (i, exn, Printexc.get_raw_backtrace ())))
        with
        | piece ->
          Mutex.lock pieces_lock;
          pieces := (start, piece) :: !pieces;
          Mutex.unlock pieces_lock
        | exception Chunk_failed (i, exn, bt) -> record i exn bt
      end
    done
  in
  ensure_workers helpers;
  let helpers_done = Atomic.make 0 in
  let done_lock = Mutex.create () in
  let done_cond = Condition.create () in
  let helper () =
    let t0 = Unix.gettimeofday () in
    work ();
    note_busy t0;
    Mutex.lock done_lock;
    Atomic.incr helpers_done;
    Condition.broadcast done_cond;
    Mutex.unlock done_lock
  in
  Mutex.lock lock;
  for _ = 1 to helpers do
    Queue.push helper queue
  done;
  Condition.broadcast work_available;
  Mutex.unlock lock;
  let t0 = Unix.gettimeofday () in
  work ();
  note_busy t0;
  Mutex.lock done_lock;
  while Atomic.get helpers_done < helpers do
    Condition.wait done_cond done_lock
  done;
  Mutex.unlock done_lock;
  match !failure with
  | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None ->
    (* n >= 1 and no failure, so at least one non-empty piece exists *)
    let witness = (snd (List.hd !pieces)).(0) in
    let results = Array.make n witness in
    List.iter
      (fun (start, piece) -> Array.blit piece 0 results start (Array.length piece))
      !pieces;
    results

let effective_jobs jobs n =
  let j = match jobs with Some j -> clamp_jobs j | None -> default_jobs () in
  min j (max 1 n)

(* run [f] with this domain marked as a pool participant, so every parallel
   call inside degrades to sequential.  The batch layer wraps each job in
   this: batch-level fan-out keeps the pool, and the flows inside stop
   queueing nested helpers behind long-running sibling jobs. *)
let sequential_scope f =
  let prev = Domain.DLS.get in_worker in
  Domain.DLS.set in_worker true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_worker prev) f

(* book-keeping shared by every parallel run: GC impact through Telemetry,
   and the grain's work / parallel-wall estimates.  Total work is
   approximated as wall * participants (the domains that actually ran, not
   the requested job count), so the min-work test stays honest when the
   core cap shrank the fan-out. *)
let note_parallel_run (g : grain option) ~participants ~n ~t0 ~st0 =
  let st1 = Gc.quick_stat () in
  Telemetry.count "pool.parallel_runs";
  Telemetry.add "pool.minor_collections"
    (st1.Gc.minor_collections - st0.Gc.minor_collections);
  Telemetry.add "pool.major_collections"
    (st1.Gc.major_collections - st0.Gc.major_collections);
  match g with
  | Some g ->
    let wall = Unix.gettimeofday () -. t0 in
    let fn = float_of_int n in
    g.g_est_item_s <- wall *. float_of_int participants /. fn;
    g.g_par_item_s <- wall /. fn
  | None -> ()

let parallel_mapi ?jobs ?chunk ?grain:(g : grain option) f a =
  let n = Array.length a in
  let jobs = effective_jobs jobs n in
  (* validate even on the sequential paths so a bad chunk fails everywhere *)
  (match chunk with
   | Some c when c < 1 -> invalid_arg (Printf.sprintf "Pool: chunk %d not positive" c)
   | Some _ | None -> ());
  if n = 0 then [||]
  else begin
    let parallel_wanted = jobs > 1 && not (Domain.DLS.get in_worker) in
    let run_sequential =
      (not parallel_wanted)
      || (match g with Some g -> grain_prefers_sequential g n | None -> false)
    in
    if run_sequential then begin
      match g with
      | None -> Array.mapi f a
      | Some g ->
        let t0 = Unix.gettimeofday () in
        let r = Array.mapi f a in
        note_sequential g ~n (Unix.gettimeofday () -. t0);
        r
    end
    else begin
      let helpers = helper_budget ~jobs ~n in
      let t0 = Unix.gettimeofday () in
      let st0 = Gc.quick_stat () in
      let r = run_chunks ~helpers ?chunk f a in
      note_parallel_run g ~participants:(helpers + 1) ~n ~t0 ~st0;
      r
    end
  end

(* ---- band-chunked execution ------------------------------------------- *)

(* [parallel_banded n f] evaluates [f start len] over contiguous bands
   covering [0, n) and concatenates the per-band result arrays in index
   order.  The point of the shape: [f] can set up one workspace (a
   factored-matrix scratch, a reusable solution vector) per *band* and
   amortize it over every index inside, where a per-item map would pay
   the setup per point.  The sequential fallback is the best case — a
   single band [f 0 n] with one workspace for the whole range. *)
let parallel_banded ?jobs ?chunk ?grain:(g : grain option) n (f : int -> int -> 'b array) :
  'b array =
  if n < 0 then invalid_arg "Pool.parallel_banded: negative length";
  (match chunk with
   | Some c when c < 1 -> invalid_arg (Printf.sprintf "Pool: chunk %d not positive" c)
   | Some _ | None -> ());
  let jobs = effective_jobs jobs n in
  if n = 0 then [||]
  else begin
    let checked start len piece =
      if Array.length piece <> len then
        invalid_arg
          (Printf.sprintf "Pool.parallel_banded: band (%d, %d) returned %d results"
             start len (Array.length piece));
      piece
    in
    let parallel_wanted = jobs > 1 && not (Domain.DLS.get in_worker) in
    let run_sequential =
      (not parallel_wanted)
      || (match g with Some g -> grain_prefers_sequential g n | None -> false)
    in
    if run_sequential then begin
      let t0 = Unix.gettimeofday () in
      let r = checked 0 n (f 0 n) in
      (match g with
       | Some g -> note_sequential g ~n (Unix.gettimeofday () -. t0)
       | None -> ());
      r
    end
    else begin
      let band =
        match chunk with
        | Some c -> c
        | None ->
          (match g with
           | Some g when g.g_est_item_s > 0.0 ->
             (* enough points that a band is worth its workspace setup,
                but never so many that a participant gets less than one *)
             let target = Float.max g.g_min_work_s 2.5e-4 in
             let by_work = int_of_float (Float.ceil (target /. g.g_est_item_s)) in
             max 1 (min by_work (max 1 ((n + jobs - 1) / jobs)))
           | Some _ | None -> max 1 (n / (jobs * 4)))
      in
      let nbands = (n + band - 1) / band in
      let starts = Array.init nbands (fun b -> b * band) in
      let helpers = helper_budget ~jobs ~n:nbands in
      let t0 = Unix.gettimeofday () in
      let st0 = Gc.quick_stat () in
      let pieces =
        run_chunks ~helpers ~chunk:1
          (fun _ start -> checked start (min band (n - start)) (f start (min band (n - start))))
          starts
      in
      note_parallel_run g ~participants:(helpers + 1) ~n ~t0 ~st0;
      let out = Array.make n pieces.(0).(0) in
      Array.iteri
        (fun b piece -> Array.blit piece 0 out (b * band) (Array.length piece))
        pieces;
      out
    end
  end

let parallel_map ?jobs ?chunk ?grain f a =
  parallel_mapi ?jobs ?chunk ?grain (fun _ x -> f x) a

let parallel_init ?jobs ?chunk ?grain n f =
  if n < 0 then invalid_arg "Pool.parallel_init";
  parallel_map ?jobs ?chunk ?grain f (Array.init n Fun.id)

let parallel_map_list ?jobs ?chunk ?grain f l =
  Array.to_list (parallel_map ?jobs ?chunk ?grain f (Array.of_list l))

let parallel_reduce ?jobs ?chunk ?grain ~map ~combine ~init a =
  Array.fold_left combine init (parallel_map ?jobs ?chunk ?grain map a)
