(* A fixed-size domain pool for the embarrassingly-parallel evaluation loops
   (corner sweeps, annealing multi-starts, GA populations, frequency sweeps).

   Workers are spawned once, on first demand, and reused for every
   subsequent parallel call; an [at_exit] hook joins them so the process
   always terminates cleanly.  Results are written into an index-addressed
   array and reduced in index order, so a parallel run is bit-identical to
   the sequential one whenever the per-item function is pure — the
   guarantee the optimizer loops rely on.  A call made from inside a worker
   runs sequentially (no nested fan-out, hence no pool deadlock). *)

let hard_cap = 64

(* precedence: set_default_jobs > MIXSYN_JOBS > recommended_domain_count *)
let override = Atomic.make 0

let clamp_jobs n = max 1 (min hard_cap n)

(* the one validation point for every way a job count enters the system:
   the --jobs flag, the MIXSYN_JOBS variable, and programmatic overrides
   all funnel through here, so zero/negative counts are rejected with the
   same message everywhere instead of silently clamping to 1 *)
let validate_jobs n =
  if n < 1 then
    Error (Printf.sprintf "job count must be at least 1 (got %d)" n)
  else Ok (min hard_cap n)

let jobs_of_string s =
  match int_of_string_opt (String.trim s) with
  | None -> Error (Printf.sprintf "invalid job count %S (expected a positive integer)" s)
  | Some n -> validate_jobs n

let set_default_jobs n =
  match validate_jobs n with
  | Ok n -> Atomic.set override n
  | Error msg -> invalid_arg ("Pool.set_default_jobs: " ^ msg)

let env_jobs () =
  match Sys.getenv_opt "MIXSYN_JOBS" with
  | None -> None
  | Some s -> (match jobs_of_string s with Ok n -> Some n | Error _ -> None)

let default_jobs () =
  let o = Atomic.get override in
  if o > 0 then o
  else
    match env_jobs () with
    | Some n -> n
    | None -> clamp_jobs (Domain.recommended_domain_count ())

(* ---- the worker pool ------------------------------------------------- *)

let lock = Mutex.create ()
let work_available = Condition.create ()
let queue : (unit -> unit) Queue.t = Queue.create ()
let workers : unit Domain.t list ref = ref []
let worker_total = ref 0
let stopping = ref false

(* true inside a pool worker; parallel calls made there run sequentially *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let rec worker_loop () =
  Mutex.lock lock;
  while Queue.is_empty queue && not !stopping do
    Condition.wait work_available lock
  done;
  match Queue.take_opt queue with
  | None ->
    (* stopping with an empty queue *)
    Mutex.unlock lock
  | Some task ->
    Mutex.unlock lock;
    (* tasks trap their own exceptions; a raise here would kill the worker *)
    (try task () with _ -> ());
    worker_loop ()

let ensure_workers wanted =
  Mutex.lock lock;
  if not !stopping then
    while !worker_total < wanted && !worker_total < hard_cap - 1 do
      incr worker_total;
      workers :=
        Domain.spawn (fun () ->
            Domain.DLS.set in_worker true;
            worker_loop ())
        :: !workers
    done;
  Mutex.unlock lock

let worker_count () =
  Mutex.lock lock;
  let n = !worker_total in
  Mutex.unlock lock;
  n

let shutdown () =
  Mutex.lock lock;
  stopping := true;
  Condition.broadcast work_available;
  let ws = !workers in
  workers := [];
  worker_total := 0;
  Mutex.unlock lock;
  List.iter Domain.join ws;
  Mutex.lock lock;
  stopping := false;
  Mutex.unlock lock

let () = at_exit shutdown

(* ---- chunked parallel execution -------------------------------------- *)

exception Chunk_failed of int * exn * Printexc.raw_backtrace

(* run [run_index i] for every i in [0, n) across [jobs] participants (the
   caller plus helper tasks on the pool).  On failure, the exception of the
   smallest failing index is re-raised in the caller — deterministic no
   matter how chunks were interleaved.

   [chunk] is the work-stealing granularity: participants claim [chunk]
   consecutive indices at a time, so it decides what the unit of work is —
   a frequency *band* rather than a point, a whole anneal chain rather
   than a move.  The default splits the range into ~4 chunks per job,
   which amortizes the claim (one atomic per chunk) while still letting a
   fast participant steal from a slow one's share. *)
let chunked_run ~jobs ?chunk n run_index =
  let next = Atomic.make 0 in
  let chunk =
    match chunk with
    | None -> max 1 (n / (jobs * 4))
    | Some c ->
      if c < 1 then invalid_arg (Printf.sprintf "Pool: chunk %d not positive" c);
      c
  in
  let failure = ref None in
  let failure_lock = Mutex.create () in
  let record i exn bt =
    Mutex.lock failure_lock;
    (match !failure with
     | Some (j, _, _) when j <= i -> ()
     | Some _ | None -> failure := Some (i, exn, bt));
    Mutex.unlock failure_lock
  in
  let failed () =
    Mutex.lock failure_lock;
    let f = !failure <> None in
    Mutex.unlock failure_lock;
    f
  in
  let work () =
    let continue = ref true in
    while !continue do
      let start = Atomic.fetch_and_add next chunk in
      if start >= n || failed () then continue := false
      else begin
        let stop = min n (start + chunk) in
        try
          for i = start to stop - 1 do
            try run_index i
            with exn -> raise (Chunk_failed (i, exn, Printexc.get_raw_backtrace ()))
          done
        with Chunk_failed (i, exn, bt) -> record i exn bt
      end
    done
  in
  let helpers = max 0 (min (jobs - 1) (n - 1)) in
  ensure_workers helpers;
  let helpers_done = Atomic.make 0 in
  let done_lock = Mutex.create () in
  let done_cond = Condition.create () in
  let helper () =
    work ();
    Mutex.lock done_lock;
    Atomic.incr helpers_done;
    Condition.broadcast done_cond;
    Mutex.unlock done_lock
  in
  Mutex.lock lock;
  for _ = 1 to helpers do
    Queue.push helper queue
  done;
  Condition.broadcast work_available;
  Mutex.unlock lock;
  work ();
  Mutex.lock done_lock;
  while Atomic.get helpers_done < helpers do
    Condition.wait done_cond done_lock
  done;
  Mutex.unlock done_lock;
  match !failure with
  | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> ()

let effective_jobs jobs n =
  let j = match jobs with Some j -> clamp_jobs j | None -> default_jobs () in
  min j (max 1 n)

(* run [f] with this domain marked as a pool participant, so every parallel
   call inside degrades to sequential.  The batch layer wraps each job in
   this: batch-level fan-out keeps the pool, and the flows inside stop
   queueing nested helpers behind long-running sibling jobs. *)
let sequential_scope f =
  let prev = Domain.DLS.get in_worker in
  Domain.DLS.set in_worker true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_worker prev) f

let parallel_mapi ?jobs ?chunk f a =
  let n = Array.length a in
  let jobs = effective_jobs jobs n in
  (* validate even on the sequential paths so a bad chunk fails everywhere *)
  (match chunk with
   | Some c when c < 1 -> invalid_arg (Printf.sprintf "Pool: chunk %d not positive" c)
   | Some _ | None -> ());
  if n = 0 then [||]
  else if jobs <= 1 || Domain.DLS.get in_worker then Array.mapi f a
  else begin
    let results = Array.make n None in
    chunked_run ~jobs ?chunk n (fun i -> results.(i) <- Some (f i a.(i)));
    Array.map (function Some v -> v | None -> assert false) results
  end

let parallel_map ?jobs ?chunk f a = parallel_mapi ?jobs ?chunk (fun _ x -> f x) a

let parallel_init ?jobs ?chunk n f =
  if n < 0 then invalid_arg "Pool.parallel_init";
  parallel_map ?jobs ?chunk f (Array.init n Fun.id)

let parallel_map_list ?jobs ?chunk f l =
  Array.to_list (parallel_map ?jobs ?chunk f (Array.of_list l))

let parallel_reduce ?jobs ?chunk ~map ~combine ~init a =
  Array.fold_left combine init (parallel_map ?jobs ?chunk map a)
