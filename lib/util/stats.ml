let mean xs =
  if Array.length xs = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let minimum xs = Array.fold_left Float.min infinity xs
let maximum xs = Array.fold_left Float.max neg_infinity xs

let percentile xs p =
  let n = Array.length xs in
  assert (n > 0);
  let p = Float.min 100.0 (Float.max 0.0 p) in
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let low = int_of_float (Float.floor rank) in
  let high = int_of_float (Float.ceil rank) in
  if low = high then sorted.(low)
  else begin
    let frac = rank -. float_of_int low in
    (sorted.(low) *. (1.0 -. frac)) +. (sorted.(high) *. frac)
  end

let linear_fit pts =
  let n = float_of_int (Array.length pts) in
  let sx = Array.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
  let sy = Array.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
  let sxx = Array.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
  let sxy = Array.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
  let denom = (n *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-300 then (0.0, sy /. n)
  else begin
    let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
    (slope, (sy -. (slope *. sx)) /. n)
  end

let geometric_mean xs =
  assert (Array.length xs > 0);
  let acc = Array.fold_left (fun a x -> a +. log x) 0.0 xs in
  exp (acc /. float_of_int (Array.length xs))
