type t = { lo : float; hi : float }

(* The canonical empty interval.  [is_empty] is the only sanctioned test:
   any interval whose bounds fail [lo <= hi] (in particular NaN bounds)
   behaves as empty under every operation below. *)
let empty = { lo = Float.nan; hi = Float.nan }
let is_empty t = not (t.lo <= t.hi)
let whole = { lo = Float.neg_infinity; hi = Float.infinity }

let is_nan (x : float) = x <> x

let make a b =
  if is_nan a || is_nan b then invalid_arg "Interval.make: NaN bound"
  else if a <= b then { lo = a; hi = b }
  else { lo = b; hi = a }

(* Total variant of [make]: NaN bounds collapse to [empty] instead of
   raising, so unvalidated numeric data can flow straight in. *)
let of_bounds a b =
  if is_nan a || is_nan b then empty
  else if a <= b then { lo = a; hi = b }
  else { lo = b; hi = a }

let point x = if is_nan x then empty else { lo = x; hi = x }

let lo t = t.lo
let hi t = t.hi
let width t = if is_empty t then 0.0 else t.hi -. t.lo
let mid t = 0.5 *. (t.lo +. t.hi)
let contains t x = t.lo <= x && x <= t.hi
let is_point t = t.lo = t.hi
let subset a b = is_empty a || (b.lo <= a.lo && a.hi <= b.hi)
let intersects a b = a.lo <= b.hi && b.lo <= a.hi

let intersect a b =
  if intersects a b then Some { lo = Float.max a.lo b.lo; hi = Float.min a.hi b.hi }
  else None

(* Total intersection: disjoint or empty operands give [empty]. *)
let meet a b =
  if intersects a b then { lo = Float.max a.lo b.lo; hi = Float.min a.hi b.hi }
  else empty

let hull a b =
  if is_empty a then b
  else if is_empty b then a
  else { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

(* Outward rounding.  Results of inexact operations are widened by one ulp
   in each direction so the interval is guaranteed to contain the exact
   real result regardless of the FPU rounding mode.  [Float.pred infinity]
   is [max_float] and [Float.pred neg_infinity] is [neg_infinity] (dually
   for [succ]), which is exactly the directed rounding we want; NaN passes
   through untouched. *)
let down = Float.pred
let up = Float.succ

(* 0 * +-inf is 0 in interval arithmetic (the zero endpoint is exact),
   not the NaN that IEEE multiplication produces. *)
let xmul a b = if a = 0.0 || b = 0.0 then 0.0 else a *. b

let add a b =
  if is_empty a || is_empty b then empty
  else { lo = down (a.lo +. b.lo); hi = up (a.hi +. b.hi) }

let sub a b =
  if is_empty a || is_empty b then empty
  else { lo = down (a.lo -. b.hi); hi = up (a.hi -. b.lo) }

let mul a b =
  if is_empty a || is_empty b then empty
  else
    let p1 = xmul a.lo b.lo and p2 = xmul a.lo b.hi in
    let p3 = xmul a.hi b.lo and p4 = xmul a.hi b.hi in
    { lo = down (Float.min (Float.min p1 p2) (Float.min p3 p4));
      hi = up (Float.max (Float.max p1 p2) (Float.max p3 p4)) }

let neg t = if is_empty t then empty else { lo = -.t.hi; hi = -.t.lo }

let scale s t =
  if is_empty t || is_nan s then empty
  else if s >= 0.0 then { lo = down (xmul s t.lo); hi = up (xmul s t.hi) }
  else { lo = down (xmul s t.hi); hi = up (xmul s t.lo) }

(* Reciprocal of an interval that does not span zero. *)
let inv_nonzero b =
  { lo = down (1.0 /. b.hi); hi = up (1.0 /. b.lo) }

let div a b =
  if is_empty a || is_empty b || contains b 0.0 then None
  else Some (mul a (inv_nonzero b))

(* Extended (Kahan) division: defined for zero-spanning divisors.  The
   result is the interval hull of the true quotient set, so a divisor
   straddling zero yields [whole] unless a sign condition pins one side. *)
let ediv a b =
  if is_empty a || is_empty b then empty
  else if b.lo = 0.0 && b.hi = 0.0 then
    (* division by exactly zero: quotient set is empty *)
    empty
  else if not (contains b 0.0) then mul a (inv_nonzero b)
  else if a.lo = 0.0 && a.hi = 0.0 then point 0.0
  else if b.lo = 0.0 then
    (* divisor in (0, b.hi] *)
    if a.lo >= 0.0 then { lo = down (a.lo /. b.hi); hi = Float.infinity }
    else if a.hi <= 0.0 then { lo = Float.neg_infinity; hi = up (a.hi /. b.hi) }
    else whole
  else if b.hi = 0.0 then
    (* divisor in [b.lo, 0) *)
    if a.lo >= 0.0 then { lo = Float.neg_infinity; hi = up (a.lo /. b.lo) }
    else if a.hi <= 0.0 then { lo = down (a.hi /. b.lo); hi = Float.infinity }
    else whole
  else whole

let inv t = ediv (point 1.0) t

let abs_ t =
  if is_empty t then empty
  else if t.lo >= 0.0 then t
  else if t.hi <= 0.0 then neg t
  else { lo = 0.0; hi = Float.max (-.t.lo) t.hi }

let min_ a b =
  if is_empty a || is_empty b then empty
  else { lo = Float.min a.lo b.lo; hi = Float.min a.hi b.hi }

let max_ a b =
  if is_empty a || is_empty b then empty
  else { lo = Float.max a.lo b.lo; hi = Float.max a.hi b.hi }

let sqrt_ t =
  if is_empty t || t.hi < 0.0 then empty
  else
    let l = if t.lo <= 0.0 then 0.0 else Float.max 0.0 (down (sqrt t.lo)) in
    { lo = l; hi = up (sqrt t.hi) }

let log_with f t =
  if is_empty t || t.hi <= 0.0 then empty
  else
    let l = if t.lo <= 0.0 then Float.neg_infinity else down (f t.lo) in
    { lo = l; hi = up (f t.hi) }

let log_ t = log_with log t
let log10_ t = log_with log10 t

let exp_ t =
  if is_empty t then empty
  else
    let l = if t.lo = Float.neg_infinity then 0.0 else Float.max 0.0 (down (exp t.lo)) in
    { lo = l; hi = up (exp t.hi) }

let atan_ t =
  if is_empty t then empty
  else { lo = down (atan t.lo); hi = up (atan t.hi) }

let rec powi t n =
  if is_empty t then empty
  else if n = 0 then point 1.0
  else if n < 0 then inv (powi t (-n))
  else
    let p x = x ** float_of_int n in
    if n land 1 = 1 then { lo = down (p t.lo); hi = up (p t.hi) }
    else if t.lo >= 0.0 then { lo = Float.max 0.0 (down (p t.lo)); hi = up (p t.hi) }
    else if t.hi <= 0.0 then { lo = Float.max 0.0 (down (p t.hi)); hi = up (p t.lo) }
    else { lo = 0.0; hi = up (p (Float.max (-.t.lo) t.hi)) }

let split t =
  let m = mid t in
  ({ lo = t.lo; hi = m }, { lo = m; hi = t.hi })

(* Geometric bisection for log-scaled quantities (positive intervals);
   falls back to arithmetic bisection otherwise. *)
let split_log t =
  if t.lo > 0.0 && t.hi > 0.0 && t.hi < Float.infinity then begin
    let m = sqrt t.lo *. sqrt t.hi in
    if t.lo < m && m < t.hi then ({ lo = t.lo; hi = m }, { lo = m; hi = t.hi })
    else split t
  end
  else split t

let pp ppf t =
  if is_empty t then Format.fprintf ppf "[empty]"
  else Format.fprintf ppf "[%g, %g]" t.lo t.hi

let to_string t = Format.asprintf "%a" pp t
