(* Cooperative cancellation: a flag + optional wall-clock deadline, made
   ambient per-domain through DLS so deeply nested loops can poll without
   threading a token through every signature. *)

type token = {
  deadline : float option;
  flag : bool Atomic.t;
}

exception Cancelled

let create ?timeout_s () =
  { deadline = Option.map (fun t -> Unix.gettimeofday () +. t) timeout_s;
    flag = Atomic.make false }

let cancel t = Atomic.set t.flag true

let cancelled t =
  Atomic.get t.flag
  || (match t.deadline with Some d -> Unix.gettimeofday () >= d | None -> false)

let check t = if cancelled t then raise Cancelled

let current : token option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let active () = Domain.DLS.get current

let with_token t f =
  let prev = Domain.DLS.get current in
  Domain.DLS.set current (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current prev) f

let guard () = match Domain.DLS.get current with None -> () | Some t -> check t
