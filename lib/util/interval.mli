(** Closed interval arithmetic, grown into a sound abstract domain.

    Used by the topology-selection subsystem ([15] in the paper) for
    feasibility boundary checks, and by [Mixsyn_check.Bounds] as the
    abstract domain of a certified performance-bound interpreter.

    Soundness contract: for every operation [op] here abstracting a real
    function [f], and every [x] in [a] (and [y] in [b]), [f x y] lies in
    [op a b].  Inexact operations round outward by one ulp, so the
    guarantee holds regardless of FPU rounding mode.  The empty interval
    propagates through every operation; NaN inputs collapse to empty
    rather than producing garbage bounds. *)

type t = { lo : float; hi : float }

val empty : t
(** The canonical empty interval.  Test with {!is_empty}, never with [=]. *)

val is_empty : t -> bool

val whole : t
(** [[-inf, +inf]]: no information. *)

val make : float -> float -> t
(** [make lo hi]; the bounds are reordered if necessary.
    @raise Invalid_argument if either bound is NaN. *)

val of_bounds : float -> float -> t
(** Total variant of {!make}: NaN bounds give {!empty} instead of raising. *)

val point : float -> t
(** [point nan] is {!empty}. *)

val lo : t -> float
val hi : t -> float
val width : t -> float
val mid : t -> float
val contains : t -> float -> bool
val is_point : t -> bool

val subset : t -> t -> bool
(** [subset a b] is true when [a] lies within [b]; the empty interval is a
    subset of everything. *)

val intersects : t -> t -> bool
val intersect : t -> t -> t option

val meet : t -> t -> t
(** Total intersection: disjoint or empty operands give {!empty}. *)

val hull : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t option
(** [None] when the divisor spans zero (or either operand is empty). *)

val ediv : t -> t -> t
(** Extended (Kahan) division, total: a zero-spanning divisor yields
    {!whole} (or a half-line when the numerator's sign pins one side);
    division by exactly [[0, 0]] yields {!empty}. *)

val inv : t -> t
(** [ediv (point 1.) t]. *)

val neg : t -> t
val scale : float -> t -> t
val abs_ : t -> t

val min_ : t -> t -> t
(** Elementwise: the image of [Float.min] over the two boxes. *)

val max_ : t -> t -> t

val sqrt_ : t -> t
(** Clips to the domain [[0, inf)]; an interval entirely below zero is
    {!empty}. *)

val log_ : t -> t
(** Natural log, domain [(0, inf)]; an interval touching zero from above
    gets lower bound [-inf], one entirely at or below zero is {!empty}. *)

val log10_ : t -> t
val exp_ : t -> t
val atan_ : t -> t

val powi : t -> int -> t
(** Integer power with even/odd monotonicity handling; negative exponents
    go through {!inv}. *)

val split : t -> t * t
(** Bisection at the midpoint. *)

val split_log : t -> t * t
(** Geometric bisection for log-scaled quantities; falls back to {!split}
    when the interval is not strictly positive and finite. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
