(* Memoization for the expensive evaluators inside optimization loops.

   Annealers and the Nelder-Mead polish revisit parameter vectors —
   rejected moves at clamped bounds, the polish re-scoring the annealed
   optimum — and each revisit used to re-run a full DC + AC/AWE
   evaluation.  The cache keys on the exact (clamped) vector, so results
   are bit-identical to the uncached path; hit/miss counts flow into the
   telemetry registry under "<name>.hits" / "<name>.misses".

   Domain-safe: lookups and inserts are serialized behind a per-cache
   mutex, but [f] runs outside it, so concurrent misses on different keys
   compute in parallel.  Two domains missing the same key may both compute
   it — wasteful but harmless, since evaluators are deterministic and the
   second insert stores the identical value. *)

type ('k, 'v) t = {
  cache_name : string;
  table : ('k, 'v) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(size = 256) name =
  { cache_name = name; table = Hashtbl.create size; lock = Mutex.create (); hits = 0; misses = 0 }

let locked c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

let find_or_compute c key f =
  let cached =
    locked c @@ fun () ->
    match Hashtbl.find_opt c.table key with
    | Some v ->
      c.hits <- c.hits + 1;
      Some v
    | None ->
      c.misses <- c.misses + 1;
      None
  in
  match cached with
  | Some v ->
    Telemetry.count (c.cache_name ^ ".hits");
    v
  | None ->
    Telemetry.count (c.cache_name ^ ".misses");
    let v = f key in
    locked c (fun () -> Hashtbl.replace c.table key v);
    v

let hits c = locked c (fun () -> c.hits)
let misses c = locked c (fun () -> c.misses)
let length c = locked c (fun () -> Hashtbl.length c.table)

let hit_rate c =
  let h, m = locked c (fun () -> (c.hits, c.misses)) in
  let total = h + m in
  if total = 0 then 0.0 else float_of_int h /. float_of_int total
