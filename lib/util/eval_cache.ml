(* Memoization for the expensive evaluators inside optimization loops.

   Annealers and the Nelder-Mead polish revisit parameter vectors —
   rejected moves at clamped bounds, the polish re-scoring the annealed
   optimum — and each revisit used to re-run a full DC + AC/AWE
   evaluation.  The cache keys on the exact (clamped) vector, so results
   are bit-identical to the uncached path; hit/miss counts flow into the
   telemetry registry under "<name>.hits" / "<name>.misses". *)

type ('k, 'v) t = {
  cache_name : string;
  table : ('k, 'v) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(size = 256) name = { cache_name = name; table = Hashtbl.create size; hits = 0; misses = 0 }

let find_or_compute c key f =
  match Hashtbl.find_opt c.table key with
  | Some v ->
    c.hits <- c.hits + 1;
    Telemetry.count (c.cache_name ^ ".hits");
    v
  | None ->
    c.misses <- c.misses + 1;
    Telemetry.count (c.cache_name ^ ".misses");
    let v = f key in
    Hashtbl.replace c.table key v;
    v

let hits c = c.hits
let misses c = c.misses
let length c = Hashtbl.length c.table

let hit_rate c =
  let total = c.hits + c.misses in
  if total = 0 then 0.0 else float_of_int c.hits /. float_of_int total
