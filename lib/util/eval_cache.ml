(* Memoization for the expensive evaluators inside optimization loops.

   Annealers and the Nelder-Mead polish revisit parameter vectors —
   rejected moves at clamped bounds, the polish re-scoring the annealed
   optimum — and each revisit used to re-run a full DC + AC/AWE
   evaluation.  The cache keys on the exact (clamped) vector, so results
   are bit-identical to the uncached path; hit/miss counts flow into the
   telemetry registry under "<name>.hits" / "<name>.misses".

   Domain-safety is lock-striped: keys hash onto [shards] independent
   (table, mutex) stripes, so concurrent domains working disjoint regions
   of the parameter space never serialize on a shared lock.  Within a
   stripe, misses are single-flight: the first domain to miss a key marks
   it in flight and computes outside the lock; later domains asking for
   the same key wait on the stripe's condition variable instead of
   re-running the evaluator.  With a deterministic evaluator the observed
   values are identical either way — single-flight only removes the
   duplicated work the old one-mutex design tolerated. *)

type ('k, 'v) shard = {
  table : ('k, 'v) Hashtbl.t;
  in_flight : ('k, unit) Hashtbl.t;
  lock : Mutex.t;
  settled : Condition.t;        (* signalled when a flight lands or aborts *)
  mutable hits : int;
  mutable misses : int;
}

type ('k, 'v) t = {
  cache_name : string;
  hits_key : string;    (* telemetry names built once, not per lookup *)
  misses_key : string;
  shards : ('k, 'v) shard array;
}

let default_shards = 16

let create ?(size = 256) ?(shards = default_shards) name =
  if shards < 1 then invalid_arg "Eval_cache.create: shards must be at least 1";
  { cache_name = name;
    hits_key = name ^ ".hits";
    misses_key = name ^ ".misses";
    shards =
      Array.init shards (fun _ ->
          { table = Hashtbl.create (max 1 (size / shards));
            in_flight = Hashtbl.create 8;
            lock = Mutex.create ();
            settled = Condition.create ();
            hits = 0;
            misses = 0 }) }

(* Routing must NOT reuse the hash the shard tables bucket with
   ([Hashtbl.hash key], seed 0): the tables are power-of-two sized, so
   with [shards] dividing the bucket count every key routed to shard [s]
   would also land in a bucket index congruent to [s] — 1/shards of each
   table used, chains [shards] times longer.  A distinct seed decorrelates
   the two. *)
let route_seed = 0x2545f49

let shard_of c key =
  c.shards.(Hashtbl.seeded_hash route_seed key mod Array.length c.shards)

let locked s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

(* The annealing hot loop takes the hit path thousands of times per
   second, so it is written flat: one lock, one table probe, no closures,
   no [Fun.protect] (nothing under the lock can raise). *)
let rec acquire c s key f =
  (* called with [s.lock] held: hit, join an existing flight, or open one *)
  match Hashtbl.find_opt s.table key with
  | Some v ->
    s.hits <- s.hits + 1;
    Mutex.unlock s.lock;
    Telemetry.count c.hits_key;
    v
  | None ->
    if Hashtbl.mem s.in_flight key then begin
      Condition.wait s.settled s.lock;
      acquire c s key f
    end
    else begin
      s.misses <- s.misses + 1;
      Hashtbl.add s.in_flight key ();
      Mutex.unlock s.lock;
      Telemetry.count c.misses_key;
      let land_flight cache =
        Mutex.lock s.lock;
        (match cache with
         | Some v -> Hashtbl.replace s.table key v
         | None -> ());
        Hashtbl.remove s.in_flight key;
        Condition.broadcast s.settled;
        Mutex.unlock s.lock
      in
      match f key with
      | v ->
        land_flight (Some v);
        v
      | exception exn ->
        (* an aborted flight releases its waiters; the next asker retries
           the computation rather than caching the failure *)
        land_flight None;
        raise exn
    end

let find_or_compute c key f =
  let s = shard_of c key in
  Mutex.lock s.lock;
  acquire c s key f

let fold_shards c f init =
  Array.fold_left (fun acc s -> locked s (fun () -> f acc s)) init c.shards

let hits c = fold_shards c (fun acc s -> acc + s.hits) 0
let misses c = fold_shards c (fun acc s -> acc + s.misses) 0
let length c = fold_shards c (fun acc s -> acc + Hashtbl.length s.table) 0

let shard_count c = Array.length c.shards

let hit_rate c =
  let h, m = fold_shards c (fun (h, m) s -> (h + s.hits, m + s.misses)) (0, 0) in
  let total = h + m in
  if total = 0 then 0.0 else float_of_int h /. float_of_int total

(* drops entries and zeroes the local hit/miss counters (the Telemetry
   mirrors are left alone — they are cumulative by design).  In-flight
   computations are untouched: they land into the emptied table. *)
let clear c =
  Array.iter
    (fun s ->
      locked s (fun () ->
          Hashtbl.reset s.table;
          s.hits <- 0;
          s.misses <- 0))
    c.shards
