(** Minimal HTTP/1.1 framing over the Unix stdlib.

    Just enough protocol for the synthesis service ({!Mixsyn_flow.Serve}):
    a {e pure} request parser with hard size limits, a buffered
    per-connection reader that supports keep-alive and pipelined requests,
    a response writer, and a one-shot client used by the tests and the
    bench harness.  No chunked transfer encoding, no TLS, no external
    dependencies — the container carries no HTTP library, and the service
    only ever speaks compact JSON over loopback-class links.

    The parser is total: any malformed, oversized or torn input maps to a
    typed error, never an exception, so one hostile connection can't take
    the accept loop down. *)

type request = {
  meth : string;                     (** verb, uppercased (["GET"], ["POST"]) *)
  path : string;                     (** request target without the query string *)
  query : (string * string) list;    (** decoded [k=v] pairs, in order *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;                     (** exactly [Content-Length] bytes *)
}

type parse_error =
  | Partial
      (** the buffer holds a prefix of a valid request — read more bytes *)
  | Too_large of string
      (** header block or declared body over the configured cap *)
  | Malformed of string  (** not HTTP/1.x, or framing this module rejects *)

val parse_request :
  ?max_header_bytes:int ->
  ?max_body_bytes:int ->
  string ->
  (request * int, parse_error) result
(** [parse_request buf] parses one request from the front of [buf],
    returning it with the number of bytes consumed (so pipelined requests
    parse one at a time from the same buffer).  Defaults: 16 KiB of
    headers, 1 MiB of body.  [Transfer-Encoding] is rejected (the service
    requires [Content-Length] framing); a missing [Content-Length] on a
    bodyless request reads as an empty body. *)

val header : request -> string -> string option
(** First header with this (case-insensitive) name. *)

(** {2 Connection reader} *)

type conn
(** A buffered reader over one accepted socket.  Bytes left over after a
    parsed request stay in the buffer, so pipelined requests are served in
    order without re-reading the socket. *)

type read_error =
  | Closed          (** peer closed between requests — normal end *)
  | Timeout         (** deadline passed before a full request arrived *)
  | Torn            (** peer closed mid-request (a torn request) *)
  | Too_big of string
  | Bad of string

val conn : ?max_header_bytes:int -> ?max_body_bytes:int -> Unix.file_descr -> conn

val next_request : ?timeout_s:float -> conn -> (request, read_error) result
(** Read the next request, waiting at most [timeout_s] wall seconds
    (default 10) for it to complete — the per-request deadline that keeps
    a slow or stalled client from pinning the accept loop. *)

(** {2 Responses} *)

val reason : int -> string
(** Canonical reason phrase ([200 -> "OK"], [429 -> "Too Many Requests"]);
    ["Status"] for codes this module never emits. *)

val respond :
  ?headers:(string * string) list ->
  ?content_type:string ->
  ?close:bool ->
  Unix.file_descr ->
  status:int ->
  body:string ->
  unit
(** Write one [HTTP/1.1] response with [Content-Length] framing.
    [content_type] defaults to [application/json] — every body the service
    emits is canonical JSON.  [close] (default [false]) advertises
    [Connection: close] instead of [keep-alive]; the caller that honors a
    client's [Connection: close] must also stop reading and close the
    socket.  Write errors (peer went away) are swallowed: the response is
    best-effort once the socket is dying. *)

(** {2 One-shot client} *)

val request :
  ?headers:(string * string) list ->
  ?body:string ->
  ?timeout_s:float ->
  host:string ->
  port:int ->
  meth:string ->
  path:string ->
  unit ->
  (int * (string * string) list * string, string) result
(** Open a connection, send one request ([Connection: close]), read the
    full response, close.  Returns status, lowercased headers and body.
    Used by the tests, the bench harness and the CI smoke — not a general
    client. *)
