(* Flat allocation-free LU kernels.

   Everything here mirrors the scalar-level operations of [Matrix.Make]
   exactly: the same Doolittle elimination order, the same partial-pivot
   comparison, stdlib [Complex]'s multiply, Smith's-algorithm divide and
   [Float.hypot] magnitude — inlined on unboxed floats so a steady-state
   factor/solve performs zero OCaml-heap allocation.  Keep the two in lock
   step: the test suite asserts bit-for-bit equality against
   [Matrix.Real]/[Matrix.Cplx], not closeness. *)

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

exception Singular of int

(* a pivot is acceptable when it clears [rel_tol] times the largest
   magnitude of its column in the original matrix; the absolute floor only
   matters for all-zero columns.  [Matrix.Make.lu_factor] uses the same
   test so the two kernels classify identically. *)
let rel_tol = 1e-14
let abs_floor = 1e-300

let pivot_threshold col_scale = Float.max abs_floor (rel_tol *. col_scale)

let make_buf n : buf =
  let b = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  Bigarray.Array1.fill b 0.0;
  b

let flatten m =
  let rows = Array.length m in
  let cols = if rows = 0 then 0 else Array.length m.(0) in
  let b = make_buf (rows * cols) in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      Bigarray.Array1.unsafe_set b ((i * cols) + j) m.(i).(j)
    done
  done;
  b

module A1 = Bigarray.Array1
module FA = Float.Array

(* ---------------------------------------------------------------- real -- *)

module Real = struct
  type ws = {
    n : int;
    a : buf;                    (* n*n row-major; LU overwrites it *)
    b : FA.t;                   (* right-hand side *)
    perm : int array;
    col_scale : FA.t;           (* per-column max |a| of the original matrix *)
    mutable in_use : bool;
  }

  let create n =
    { n; a = make_buf (n * n); b = FA.make n 0.0; perm = Array.make n 0;
      col_scale = FA.make n 0.0; in_use = false }

  let size ws = ws.n

  let clear ws =
    A1.fill ws.a 0.0;
    FA.fill ws.b 0 ws.n 0.0

  let stamp ws i j v =
    if i >= 0 && j >= 0 then begin
      let k = (i * ws.n) + j in
      A1.set ws.a k (A1.get ws.a k +. v)
    end

  let rhs ws i v = if i >= 0 then FA.set ws.b i (FA.get ws.b i +. v)

  let set ws i j v = A1.set ws.a ((i * ws.n) + j) v
  let get ws i j = A1.get ws.a ((i * ws.n) + j)

  let swap_rows ws r0 r1 =
    let a = ws.a and n = ws.n in
    for j = 0 to n - 1 do
      let t = A1.unsafe_get a ((r0 * n) + j) in
      A1.unsafe_set a ((r0 * n) + j) (A1.unsafe_get a ((r1 * n) + j));
      A1.unsafe_set a ((r1 * n) + j) t
    done

  let factor ws =
    let a = ws.a and n = ws.n and perm = ws.perm in
    for k = 0 to n - 1 do
      let s = ref 0.0 in
      for i = 0 to n - 1 do
        s := Float.max !s (Float.abs (A1.unsafe_get a ((i * n) + k)))
      done;
      FA.set ws.col_scale k !s;
      perm.(k) <- k
    done;
    for k = 0 to n - 1 do
      let pivot = ref k in
      let best = ref (Float.abs (A1.unsafe_get a ((k * n) + k))) in
      for i = k + 1 to n - 1 do
        let mag = Float.abs (A1.unsafe_get a ((i * n) + k)) in
        if mag > !best then begin
          best := mag;
          pivot := i
        end
      done;
      if !best < pivot_threshold (FA.get ws.col_scale k) then raise (Singular k);
      if !pivot <> k then begin
        swap_rows ws k !pivot;
        let t = perm.(k) in
        perm.(k) <- perm.(!pivot);
        perm.(!pivot) <- t
      end;
      let pv = A1.unsafe_get a ((k * n) + k) in
      for i = k + 1 to n - 1 do
        let f = A1.unsafe_get a ((i * n) + k) /. pv in
        A1.unsafe_set a ((i * n) + k) f;
        if Float.abs f > 0.0 then
          for j = k + 1 to n - 1 do
            A1.unsafe_set a ((i * n) + j)
              (A1.unsafe_get a ((i * n) + j) -. (f *. A1.unsafe_get a ((k * n) + j)))
          done
      done
    done

  let solve ws x =
    if Array.length x < ws.n then invalid_arg "Fmat.Real.solve: result too short";
    let a = ws.a and n = ws.n and perm = ws.perm in
    (* forward substitution: x temporarily holds y *)
    for i = 0 to n - 1 do
      let acc = ref (FA.get ws.b perm.(i)) in
      for j = 0 to i - 1 do
        acc := !acc -. (A1.unsafe_get a ((i * n) + j) *. Array.unsafe_get x j)
      done;
      Array.unsafe_set x i !acc
    done;
    for i = n - 1 downto 0 do
      let acc = ref (Array.unsafe_get x i) in
      for j = i + 1 to n - 1 do
        acc := !acc -. (A1.unsafe_get a ((i * n) + j) *. Array.unsafe_get x j)
      done;
      Array.unsafe_set x i (!acc /. A1.unsafe_get a ((i * n) + i))
    done
end

(* ------------------------------------------------------------- complex -- *)

(* stdlib [Complex] arithmetic on unboxed (re, im) pairs.  The operation
   bodies are transcriptions of complex.ml — change nothing without
   changing [Matrix.Cplx_scalar] to match. *)

module Cplx = struct
  type ws = {
    n : int;
    are : buf;                  (* matrix real plane, n*n row-major *)
    aim : buf;                  (* matrix imaginary plane *)
    bre : FA.t;                 (* right-hand side *)
    bim : FA.t;
    yre : FA.t;                 (* substitution scratch *)
    yim : FA.t;
    perm : int array;
    col_scale : FA.t;
    mutable in_use : bool;
  }

  let create n =
    { n; are = make_buf (n * n); aim = make_buf (n * n);
      bre = FA.make n 0.0; bim = FA.make n 0.0;
      yre = FA.make n 0.0; yim = FA.make n 0.0;
      perm = Array.make n 0; col_scale = FA.make n 0.0; in_use = false }

  let size ws = ws.n

  (* [g]/[c] carry explicit [buf] annotations: without them the kind and
     layout stay polymorphic inside this implementation (only the mli pins
     them), the bigarray primitives fall back to the generic C calls, and
     every element read boxes a float *)
  let load_ac ws ~(g : buf) ~(c : buf) ~omega =
    let n2 = ws.n * ws.n in
    for k = 0 to n2 - 1 do
      A1.unsafe_set ws.are k (A1.unsafe_get g k);
      A1.unsafe_set ws.aim k (omega *. A1.unsafe_get c k)
    done

  let load_ac_transposed ws ~(g : buf) ~(c : buf) ~omega =
    let n = ws.n in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        A1.unsafe_set ws.are ((i * n) + j) (A1.unsafe_get g ((j * n) + i));
        A1.unsafe_set ws.aim ((i * n) + j) (omega *. A1.unsafe_get c ((j * n) + i))
      done
    done

  let set_rhs ws ~re ~im =
    FA.blit re 0 ws.bre 0 ws.n;
    FA.blit im 0 ws.bim 0 ws.n

  let unit_rhs ws k =
    FA.fill ws.bre 0 ws.n 0.0;
    FA.fill ws.bim 0 ws.n 0.0;
    FA.set ws.bre k 1.0

  let swap_rows ws r0 r1 =
    let n = ws.n in
    let swap (a : buf) =
      for j = 0 to n - 1 do
        let t = A1.unsafe_get a ((r0 * n) + j) in
        A1.unsafe_set a ((r0 * n) + j) (A1.unsafe_get a ((r1 * n) + j));
        A1.unsafe_set a ((r1 * n) + j) t
      done
    in
    swap ws.are;
    swap ws.aim

  (* [factor]/[substitute] avoid helper functions and tuple returns on
     purpose: without flambda a float coming back from a local function or
     inside a tuple is boxed, and at thousands of solves per second that
     boxing was most of the AC sweep's allocation.  Local float refs are
     the one safe idiom — the compiler turns non-escaping refs into
     unboxed mutable variables. *)
  let factor ws =
    let are = ws.are and aim = ws.aim and n = ws.n and perm = ws.perm in
    for k = 0 to n - 1 do
      let s = ref 0.0 in
      for i = 0 to n - 1 do
        s :=
          Float.max !s
            (Float.hypot
               (A1.unsafe_get are ((i * n) + k))
               (A1.unsafe_get aim ((i * n) + k)))
      done;
      FA.set ws.col_scale k !s;
      perm.(k) <- k
    done;
    for k = 0 to n - 1 do
      let pivot = ref k in
      let best =
        ref
          (Float.hypot
             (A1.unsafe_get are ((k * n) + k))
             (A1.unsafe_get aim ((k * n) + k)))
      in
      for i = k + 1 to n - 1 do
        let m =
          Float.hypot
            (A1.unsafe_get are ((i * n) + k))
            (A1.unsafe_get aim ((i * n) + k))
        in
        if m > !best then begin
          best := m;
          pivot := i
        end
      done;
      if !best < pivot_threshold (FA.get ws.col_scale k) then raise (Singular k);
      if !pivot <> k then begin
        swap_rows ws k !pivot;
        let t = perm.(k) in
        perm.(k) <- perm.(!pivot);
        perm.(!pivot) <- t
      end;
      let pvr = A1.unsafe_get are ((k * n) + k)
      and pvi = A1.unsafe_get aim ((k * n) + k) in
      for i = k + 1 to n - 1 do
        let xr = A1.unsafe_get are ((i * n) + k)
        and xi = A1.unsafe_get aim ((i * n) + k) in
        (* Smith's division, as in Complex.div *)
        let frr = ref 0.0 and fir = ref 0.0 in
        if Float.abs pvr >= Float.abs pvi then begin
          let r = pvi /. pvr in
          let d = pvr +. (r *. pvi) in
          frr := (xr +. (r *. xi)) /. d;
          fir := (xi -. (r *. xr)) /. d
        end
        else begin
          let r = pvr /. pvi in
          let d = pvi +. (r *. pvr) in
          frr := ((r *. xr) +. xi) /. d;
          fir := ((r *. xi) -. xr) /. d
        end;
        let fr = !frr and fi = !fir in
        A1.unsafe_set are ((i * n) + k) fr;
        A1.unsafe_set aim ((i * n) + k) fi;
        if Float.hypot fr fi > 0.0 then
          for j = k + 1 to n - 1 do
            let mr = A1.unsafe_get are ((k * n) + j)
            and mi = A1.unsafe_get aim ((k * n) + j) in
            (* Complex.mul then Complex.sub, in that order *)
            let pr = (fr *. mr) -. (fi *. mi)
            and pi = (fr *. mi) +. (fi *. mr) in
            A1.unsafe_set are ((i * n) + j) (A1.unsafe_get are ((i * n) + j) -. pr);
            A1.unsafe_set aim ((i * n) + j) (A1.unsafe_get aim ((i * n) + j) -. pi)
          done
      done
    done

  (* forward/back substitution into the scratch vectors; identical scalar
     sequence to [Matrix.Make.lu_solve] *)
  let substitute ws =
    let are = ws.are and aim = ws.aim and n = ws.n and perm = ws.perm in
    let yre = ws.yre and yim = ws.yim in
    for i = 0 to n - 1 do
      let ar = ref (FA.get ws.bre perm.(i)) and ai = ref (FA.get ws.bim perm.(i)) in
      for j = 0 to i - 1 do
        let mr = A1.unsafe_get are ((i * n) + j)
        and mi = A1.unsafe_get aim ((i * n) + j) in
        let xr = FA.unsafe_get yre j and xi = FA.unsafe_get yim j in
        ar := !ar -. ((mr *. xr) -. (mi *. xi));
        ai := !ai -. ((mr *. xi) +. (mi *. xr))
      done;
      FA.unsafe_set yre i !ar;
      FA.unsafe_set yim i !ai
    done;
    for i = n - 1 downto 0 do
      let ar = ref (FA.unsafe_get yre i) and ai = ref (FA.unsafe_get yim i) in
      for j = i + 1 to n - 1 do
        let mr = A1.unsafe_get are ((i * n) + j)
        and mi = A1.unsafe_get aim ((i * n) + j) in
        let xr = FA.unsafe_get yre j and xi = FA.unsafe_get yim j in
        ar := !ar -. ((mr *. xr) -. (mi *. xi));
        ai := !ai -. ((mr *. xi) +. (mi *. xr))
      done;
      let dr = A1.unsafe_get are ((i * n) + i)
      and di = A1.unsafe_get aim ((i * n) + i) in
      if Float.abs dr >= Float.abs di then begin
        let r = di /. dr in
        let d = dr +. (r *. di) in
        FA.unsafe_set yre i ((!ar +. (r *. !ai)) /. d);
        FA.unsafe_set yim i ((!ai -. (r *. !ar)) /. d)
      end
      else begin
        let r = dr /. di in
        let d = di +. (r *. dr) in
        FA.unsafe_set yre i (((r *. !ar) +. !ai) /. d);
        FA.unsafe_set yim i (((r *. !ai) -. !ar) /. d)
      end
    done

  let solve ws x =
    if Array.length x < ws.n then invalid_arg "Fmat.Cplx.solve: result too short";
    substitute ws;
    for i = 0 to ws.n - 1 do
      x.(i) <- { Complex.re = FA.unsafe_get ws.yre i; im = FA.unsafe_get ws.yim i }
    done

  let solve_split ws ~re ~im =
    substitute ws;
    FA.blit ws.yre 0 re 0 ws.n;
    FA.blit ws.yim 0 im 0 ws.n
end

(* ---------------------------------------------- per-domain workspace pool *)

(* One pool per domain keyed by system size, so the evaluator hot loops
   check a workspace out with a DLS read and a hashtable probe — no lock,
   no allocation in the steady state.  A reentrant checkout of a size whose
   pooled workspace is busy falls back to a fresh (unpooled) one. *)

type pools = { real : (int, Real.ws) Hashtbl.t; cplx : (int, Cplx.ws) Hashtbl.t }

let pools : pools Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { real = Hashtbl.create 8; cplx = Hashtbl.create 8 })

let with_real n f =
  let p = Domain.DLS.get pools in
  let ws =
    match Hashtbl.find_opt p.real n with
    | Some ws when not ws.Real.in_use -> ws
    | Some _ -> Real.create n
    | None ->
      let ws = Real.create n in
      Hashtbl.add p.real n ws;
      ws
  in
  ws.Real.in_use <- true;
  Fun.protect ~finally:(fun () -> ws.Real.in_use <- false) (fun () -> f ws)

let with_cplx n f =
  let p = Domain.DLS.get pools in
  let ws =
    match Hashtbl.find_opt p.cplx n with
    | Some ws when not ws.Cplx.in_use -> ws
    | Some _ -> Cplx.create n
    | None ->
      let ws = Cplx.create n in
      Hashtbl.add p.cplx n ws;
      ws
  in
  ws.Cplx.in_use <- true;
  Fun.protect ~finally:(fun () -> ws.Cplx.in_use <- false) (fun () -> f ws)
