type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 core step: advance by the golden ratio and mix. *)
let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next_int64 t }

(* one splitmix64 step per stream: the mixed outputs of successive states
   are the textbook way to seed independent splitmix64 streams *)
let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n";
  Array.init n (fun _ -> split t)

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (next_int64 t) land max_int in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 significant bits, exactly representable in a float mantissa *)
  v /. 9007199254740992.0 *. bound

let uniform t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gauss t =
  let rec draw () =
    let u = float t 1.0 in
    if u = 0.0 then draw () else u
  in
  let u1 = draw () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let gaussian t ~mean ~sigma = mean +. (sigma *. gauss t)

let choice t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
