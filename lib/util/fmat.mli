(** Allocation-free dense linear-algebra kernels on flat [Bigarray] storage.

    The functorized {!Matrix} solvers allocate a boxed matrix copy, a boxed
    intermediate per scalar operation and fresh result vectors on every
    factor/solve — three orders of magnitude more garbage than the answer
    needs.  Inside the evaluator hot loops (one complex solve per frequency
    point, one real solve per Newton iteration) that garbage serializes
    every domain on the stop-the-world minor collector and turns the pool's
    parallelism into a slowdown.

    [Fmat] keeps each linear system in caller-provided, reusable
    {e workspaces}: row-major [float64] bigarrays for the matrix (split
    re/im planes for the complex kernel), [Float.Array]s for the right-hand
    side and scratch vectors, and an [int array] permutation.  Factor and
    solve run fully in place; a steady-state factor+solve allocates nothing
    on the OCaml heap.

    Both kernels perform {e exactly} the scalar operations of
    [Matrix.Make]'s Doolittle LU with partial pivoting — same operation
    order, same pivot comparison ([Float.hypot] magnitudes for complex),
    same Smith's-algorithm complex division — so results are bit-for-bit
    identical to [Matrix.Real] / [Matrix.Cplx] on the same system.  The
    property tests in [test_util.ml] hold this equivalence exactly, not
    within a tolerance. *)

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

exception Singular of int
(** Raised by the factorizations when no acceptable pivot exists in some
    column [k].  The singularity test is {e scaled}: a pivot candidate is
    rejected when its magnitude is below [1e-14] times the largest
    magnitude of the column in the {e original} matrix (with an absolute
    floor of [1e-300]), so well-conditioned but tiny-valued systems (pF/nS
    stamps) factor fine while structurally singular ones are caught instead
    of producing roundoff garbage.  {!Matrix.Make} applies the same test. *)

val pivot_threshold : float -> float
(** [pivot_threshold col_scale] — the smallest acceptable pivot magnitude
    for a column whose largest original-matrix magnitude is [col_scale]:
    [max 1e-300 (1e-14 *. col_scale)].  Shared with {!Matrix.Make} so the
    boxed and flat kernels classify singularity identically. *)

(** Real [n*n] systems: [A x = b]. *)
module Real : sig
  type ws
  (** A reusable workspace for systems of one fixed size: the matrix, the
      right-hand side, the permutation and the solve scratch. *)

  val create : int -> ws
  (** [create n] — a workspace for [n*n] systems, zero-initialized. *)

  val size : ws -> int

  val clear : ws -> unit
  (** Zero the matrix and right-hand side (not needed after [create]). *)

  val stamp : ws -> int -> int -> float -> unit
  (** [stamp ws i j v] adds [v] to [A.(i).(j)].  Negative indices are
      ignored — the MNA ground convention, matching {!Mna.stamp_real}. *)

  val rhs : ws -> int -> float -> unit
  (** [rhs ws i v] adds [v] to [b.(i)]; negative [i] is ignored. *)

  val set : ws -> int -> int -> float -> unit
  (** [set ws i j v] overwrites [A.(i).(j)] (indices must be valid). *)

  val get : ws -> int -> int -> float

  val factor : ws -> unit
  (** LU-factor the matrix in place (destroys it).
      @raise Singular when a pivot column has no acceptable pivot. *)

  val solve : ws -> float array -> unit
  (** [solve ws x] writes the solution of the factored system against the
      workspace right-hand side into [x] (length [size ws]).  [factor] must
      have run since the matrix was last modified.  Allocates nothing. *)
end

(** Complex [n*n] systems [(G + jωC) x = b], stored as split re/im planes. *)
module Cplx : sig
  type ws

  val create : int -> ws
  val size : ws -> int

  val load_ac : ws -> g:buf -> c:buf -> omega:float -> unit
  (** Load the AC system matrix: [re <- G], [im <- omega * C], where [g]
      and [c] are row-major [n*n] bigarrays.  The whole per-frequency matrix
      refresh is these two in-place rescales — no allocation. *)

  val load_ac_transposed : ws -> g:buf -> c:buf -> omega:float -> unit
  (** As {!load_ac} but loads [Aᵀ] — the adjoint system of noise analysis. *)

  val set_rhs : ws -> re:Float.Array.t -> im:Float.Array.t -> unit
  (** Copy a right-hand side into the workspace (overwrites). *)

  val unit_rhs : ws -> int -> unit
  (** [unit_rhs ws k] sets the right-hand side to the unit vector [e_k]. *)

  val factor : ws -> unit
  (** In-place complex LU with partial pivoting on [Float.hypot] pivot
      magnitudes — bit-identical to [Matrix.Cplx.lu_factor].
      @raise Singular as {!Real.factor}. *)

  val solve : ws -> Complex.t array -> unit
  (** Solve against the workspace right-hand side, writing boxed complex
      results into [x] — the only allocation of a steady-state solve is the
      caller's result array. *)

  val solve_split : ws -> re:Float.Array.t -> im:Float.Array.t -> unit
  (** As {!solve} but writes into unboxed split re/im arrays, for callers
      that only consume magnitudes. *)
end

val flatten : float array array -> buf
(** [flatten m] copies a rectangular [float array array] into a fresh
    row-major bigarray — done once per sweep to set up the shared read-only
    [G]/[C] planes. *)

val with_real : int -> (Real.ws -> 'a) -> 'a
(** [with_real n f] runs [f] with a size-[n] real workspace drawn from this
    domain's workspace pool ([Domain.DLS], one pool per domain, keyed by
    size) so steady-state use allocates nothing and never contends on a
    lock.  Reentrant calls of the same size get a fresh workspace. *)

val with_cplx : int -> (Cplx.ws -> 'a) -> 'a
(** Complex counterpart of {!with_real}. *)
