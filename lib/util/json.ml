(* Minimal JSON: recursive-descent parser and canonical compact printer.
   The printer is the journal's byte-identity anchor: field order is the
   caller's, floats use the shortest round-tripping decimal form. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- printing --------------------------------------------------------- *)

let float_repr x =
  if Float.is_integer x && Float.abs x < 1e16 then Printf.sprintf "%.0f" x
  else
    let s15 = Printf.sprintf "%.15g" x in
    if float_of_string s15 = x then s15
    else
      let s16 = Printf.sprintf "%.16g" x in
      if float_of_string s16 = x then s16 else Printf.sprintf "%.17g" x

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string v =
  let buf = Buffer.create 256 in
  let rec emit = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num x ->
      if Float.is_finite x then Buffer.add_string buf (float_repr x)
      else Buffer.add_string buf "null"
    | Str s -> escape_to buf s
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (name, item) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf name;
          Buffer.add_char buf ':';
          emit item)
        fields;
      Buffer.add_char buf '}'
  in
  emit v;
  Buffer.contents buf

(* ---- parsing ---------------------------------------------------------- *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, found %c" c c')
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* encode a \uXXXX code point (no surrogate-pair recombination: the
     manifests and journals this reader serves are ASCII identifiers) *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           (match int_of_string_opt ("0x" ^ hex) with
            | Some cp -> add_utf8 buf cp
            | None -> fail (Printf.sprintf "bad \\u escape %s" hex))
         | c -> fail (Printf.sprintf "bad escape \\%c" c));
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false)
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some x -> Num x
    | None ->
      pos := start;
      fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        Arr (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let name = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (name, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (f :: acc)
          | Some '}' ->
            advance ();
            List.rev (f :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (fields [])
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing input after value";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "json: %s at offset %d" msg at)

(* ---- accessors -------------------------------------------------------- *)

let member name = function Obj fields -> List.assoc_opt name fields | _ -> None
let to_float = function Num x -> Some x | _ -> None

let to_int = function
  | Num x when Float.is_integer x && Float.abs x <= 1e15 -> Some (int_of_float x)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr items -> Some items | _ -> None
let to_obj = function Obj fields -> Some fields | _ -> None
