(** A reusable fixed-size domain pool for parallel candidate evaluation.

    Workers are spawned once (lazily, on first parallel call) and reused by
    every subsequent call; an [at_exit] hook joins them on process exit.
    Results are collected by index and reduced in index order, so for a pure
    per-item function the outcome is bit-identical whatever the job count —
    the determinism contract the corner/anneal/GA/sweep loops depend on.

    Calls made from inside a pool worker run sequentially, so nested
    parallelism degrades gracefully instead of deadlocking the pool. *)

val default_jobs : unit -> int
(** Job count used when [?jobs] is omitted.  Precedence:
    {!set_default_jobs} override, then the [MIXSYN_JOBS] environment
    variable, then [Domain.recommended_domain_count ()].  Always in
    [\[1, 64\]]; malformed [MIXSYN_JOBS] values are ignored. *)

val set_default_jobs : int -> unit
(** Process-wide override of {!default_jobs} (the [--jobs] flag).  Values
    above the pool cap (64) clamp to it.
    @raise Invalid_argument for counts below 1 — callers wanting a clean
    error instead should go through {!validate_jobs}. *)

val validate_jobs : int -> (int, string) result
(** The single validation point for job counts, whatever their origin
    ([--jobs], [MIXSYN_JOBS], API): [Error] with a clear message below 1,
    otherwise [Ok] clamped to the pool cap. *)

val jobs_of_string : string -> (int, string) result
(** {!validate_jobs} after integer parsing — the converter the CLI and the
    environment-variable path share. *)

val available_cores : unit -> int
(** Physical parallelism the scheduler believes the machine offers:
    [MIXSYN_POOL_CORES] when set (tests, containers with misreported
    topology), else [Domain.recommended_domain_count ()], clamped to the
    pool cap.  Every parallel call's helper budget is capped at
    [available_cores () - 1] — a [--jobs] value above the core count runs
    core-count-wide instead of oversubscribing (results unchanged; only
    placement moves).  Set [MIXSYN_POOL_OVERSUBSCRIBE=1] to remove the cap
    for A/B measurements.  Both variables are re-read on each call. *)

type grain
(** A per-call-site granularity memo: remembers roughly how long one item
    of that call site takes, so the pool can run provably-small calls
    sequentially instead of paying fan-out overhead for microseconds of
    work.  Results are unaffected — sequential and parallel execution are
    bit-identical by the determinism contract — only scheduling changes. *)

val grain : ?min_work_s:float -> string -> grain
(** [grain name] makes a fresh (typically module-level) grain.  A parallel
    call carrying it falls back to sequential execution once the estimated
    total work [items * est_item_seconds] is below [min_work_s] (default
    1 ms, overridable process-wide with [MIXSYN_POOL_MIN_WORK_US] in
    microseconds; [~min_work_s:0.0] disables every fallback).  The
    estimate is learned from the wall clock of each run, so the first call
    at a site always uses the requested job count.

    A grain also watches whether parallelism actually paid: it keeps the
    per-item wall time of the last sequential and last parallel run, and
    once both are known and parallel measured no faster (single-core host,
    memory-bound loop), later calls run sequentially too — re-probing in
    parallel every 32nd such call so a site that became profitable
    recovers.  Fallbacks surface as [pool.grain_fallbacks] (min-work) and
    [pool.grain_inefficient] (measured-no-gain) telemetry counters.
    @raise Invalid_argument for negative or non-finite [min_work_s]. *)

val grain_estimate : grain -> float option
(** Current learned seconds-per-item of work, or [None] before the first
    run. *)

val parallel_map :
  ?jobs:int -> ?chunk:int -> ?grain:grain -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map ~jobs f a] is [Array.map f a] evaluated by up to [jobs]
    domains (the caller participates; [jobs - 1] pool workers help).
    [jobs] defaults to {!default_jobs}; [jobs = 1] runs inline with no
    domain machinery.  If any application raises, the exception of the
    {e smallest} failing index is re-raised in the caller (deterministic
    under any scheduling) once all workers have drained.

    [chunk] sets the work-stealing granularity: participants claim [chunk]
    consecutive indices per atomic fetch, making a contiguous {e band} the
    unit of work.  Defaults to [n / (jobs * 4)] (at least 1) — roughly
    four bands per participant.  Pass [~chunk:1] when items are few and
    expensive (anneal chains, batch jobs) and load balance matters more
    than claim overhead.  Results and exceptions are independent of
    [chunk], which only shifts where the work executes.

    [grain] opts the call site into the auto-sequential fallback for
    known-small workloads (see {!grain}).

    The pool itself allocates O(chunks), not O(items): claimed chunks are
    materialized as plain arrays (flat for float results) and blitted into
    the final array, and each parallel run reports its GC impact through
    [Telemetry] ([pool.parallel_runs], [pool.minor_collections],
    [pool.major_collections], [pool.grain_fallbacks]).
    @raise Invalid_argument when [chunk < 1]. *)

val parallel_mapi :
  ?jobs:int -> ?chunk:int -> ?grain:grain -> (int -> 'a -> 'b) -> 'a array -> 'b array

val parallel_map_list :
  ?jobs:int -> ?chunk:int -> ?grain:grain -> ('a -> 'b) -> 'a list -> 'b list

val parallel_init : ?jobs:int -> ?chunk:int -> ?grain:grain -> int -> (int -> 'a) -> 'a array
(** [parallel_init n f] is [Array.init n f] in parallel.
    @raise Invalid_argument when [n < 0]. *)

val parallel_reduce :
  ?jobs:int -> ?chunk:int -> ?grain:grain ->
  map:('a -> 'b) -> combine:('c -> 'b -> 'c) -> init:'c ->
  'a array -> 'c
(** Map in parallel, then fold [combine] over the mapped values in index
    order on the calling domain — deterministic even for non-commutative
    [combine]. *)

val parallel_banded :
  ?jobs:int -> ?chunk:int -> ?grain:grain -> int -> (int -> int -> 'b array) -> 'b array
(** [parallel_banded n f] evaluates [f start len] over contiguous bands
    covering [0, n)] and concatenates the per-band arrays in index order
    ([f] must return exactly [len] results for indices
    [start .. start + len - 1]).  Use it when per-index work shares an
    expensive setup — an AC sweep factoring into one complex workspace,
    a noise sweep reusing one solution vector — so the setup is paid once
    per {e band} instead of once per point.  The sequential fallback is a
    single band [f 0 n]: one workspace for the whole range.

    [chunk] fixes the band size; by default it is auto-sized from the
    grain's learned seconds-per-item so a band carries roughly
    [min_work_s] of work (bands are the unit of stealing, claimed one at
    a time).  Results are independent of the band size whenever [f] is
    pure per index; exception propagation is deterministic at band
    granularity (the smallest failing {e band}'s exception wins).
    @raise Invalid_argument when [n < 0], [chunk < 1], or [f] returns an
    array of the wrong length. *)

val set_worker_minor_heap_words : int -> unit
(** Minor-heap size (in words) applied to each worker domain when it is
    spawned — OCaml 5 minor collections stop every domain, so workers
    running allocating loops get a large nursery (default 4M words,
    overridable with [MIXSYN_MINOR_HEAP]) to make stop-the-world pauses
    rare.  Affects workers spawned after the call; {!shutdown} first to
    resize an already-running pool.
    @raise Invalid_argument below the 64k-word runtime floor. *)

val worker_minor_heap_words : unit -> int
(** The minor-heap size the next spawned worker will use. *)

val effective_jobs : int option -> int -> int
(** [effective_jobs jobs n] — the job count a parallel call over [n] items
    would use: [jobs] (or {!default_jobs} when [None]) clamped to the pool
    cap and to [n].  Lets callers pick between a lazy sequential strategy
    and an eager parallel one before paying for either. *)

val sequential_scope : (unit -> 'a) -> 'a
(** Run [f] with this domain treated as a pool worker: every parallel call
    made inside runs sequentially (exception-safe, restores the previous
    state).  Used by batch-style callers that own the pool at a coarser
    granularity than the loops inside [f]. *)

val worker_count : unit -> int
(** Live worker domains (for tests and benchmarks). *)

val shutdown : unit -> unit
(** Join all workers.  Idempotent; the pool respawns on the next parallel
    call.  Registered with [at_exit], so explicit calls are only needed in
    tests. *)
