module type SCALAR = sig
  type t

  val zero : t
  val one : t
  val of_float : float -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val magnitude : t -> float
  val pp : Format.formatter -> t -> unit
end

module Make (S : SCALAR) = struct
  type mat = S.t array array
  type vec = S.t array

  let create rows cols = Array.make_matrix rows cols S.zero

  let identity n =
    let m = create n n in
    for i = 0 to n - 1 do
      m.(i).(i) <- S.one
    done;
    m

  let copy m = Array.map Array.copy m

  let dims m = (Array.length m, if Array.length m = 0 then 0 else Array.length m.(0))

  let add_entry m i j v = m.(i).(j) <- S.add m.(i).(j) v

  let mat_vec m v =
    let rows, cols = dims m in
    Array.init rows (fun i ->
        let acc = ref S.zero in
        for j = 0 to cols - 1 do
          acc := S.add !acc (S.mul m.(i).(j) v.(j))
        done;
        !acc)

  let mat_mul a b =
    let ra, ca = dims a and _, cb = dims b in
    let m = create ra cb in
    for i = 0 to ra - 1 do
      for k = 0 to ca - 1 do
        let aik = a.(i).(k) in
        for j = 0 to cb - 1 do
          m.(i).(j) <- S.add m.(i).(j) (S.mul aik b.(k).(j))
        done
      done
    done;
    m

  let transpose m =
    let rows, cols = dims m in
    Array.init cols (fun j -> Array.init rows (fun i -> m.(i).(j)))

  let scale s m = Array.map (Array.map (S.mul s)) m

  let add_mat a b =
    let rows, cols = dims a in
    let m = create rows cols in
    for i = 0 to rows - 1 do
      for j = 0 to cols - 1 do
        m.(i).(j) <- S.add a.(i).(j) b.(i).(j)
      done
    done;
    m

  type lu = { lu_mat : mat; perm : int array; sign : bool }

  exception Singular of int

  (* Doolittle LU with partial pivoting; O(n^3), fine for the matrix sizes an
     analog cell or power grid produces (tens to low thousands of nodes).

     The singularity test is scaled: a pivot must clear [Fmat.rel_tol]
     times the largest magnitude of its column in the *original* matrix
     (absolute floor for all-zero columns), so well-conditioned systems
     built from tiny stamps (pF capacitances, nS conductances) factor fine
     while structurally singular ones raise [Singular] instead of
     eliminating down to roundoff garbage.  [Fmat]'s flat kernels apply
     the identical test — keep them in lock step. *)
  let lu_factor a =
    let n, cols = dims a in
    assert (n = cols);
    let m = copy a in
    let perm = Array.init n (fun i -> i) in
    let sign = ref true in
    let col_scale =
      Array.init n (fun k ->
          let s = ref 0.0 in
          for i = 0 to n - 1 do
            s := Float.max !s (S.magnitude a.(i).(k))
          done;
          !s)
    in
    for k = 0 to n - 1 do
      let pivot = ref k in
      let best = ref (S.magnitude m.(k).(k)) in
      for i = k + 1 to n - 1 do
        let mag = S.magnitude m.(i).(k) in
        if mag > !best then begin
          best := mag;
          pivot := i
        end
      done;
      if !best < Fmat.pivot_threshold col_scale.(k) then raise (Singular k);
      if !pivot <> k then begin
        let tmp = m.(k) in
        m.(k) <- m.(!pivot);
        m.(!pivot) <- tmp;
        let tp = perm.(k) in
        perm.(k) <- perm.(!pivot);
        perm.(!pivot) <- tp;
        sign := not !sign
      end;
      let pivot_value = m.(k).(k) in
      for i = k + 1 to n - 1 do
        let factor = S.div m.(i).(k) pivot_value in
        m.(i).(k) <- factor;
        if S.magnitude factor > 0.0 then
          for j = k + 1 to n - 1 do
            m.(i).(j) <- S.sub m.(i).(j) (S.mul factor m.(k).(j))
          done
      done
    done;
    { lu_mat = m; perm; sign = !sign }

  let lu_solve { lu_mat = m; perm; sign = _ } b =
    let n = Array.length perm in
    let y = Array.make n S.zero in
    for i = 0 to n - 1 do
      let acc = ref b.(perm.(i)) in
      for j = 0 to i - 1 do
        acc := S.sub !acc (S.mul m.(i).(j) y.(j))
      done;
      y.(i) <- !acc
    done;
    let x = Array.make n S.zero in
    for i = n - 1 downto 0 do
      let acc = ref y.(i) in
      for j = i + 1 to n - 1 do
        acc := S.sub !acc (S.mul m.(i).(j) x.(j))
      done;
      x.(i) <- S.div !acc m.(i).(i)
    done;
    x

  let solve a b = lu_solve (lu_factor a) b

  let determinant a =
    match lu_factor a with
    | { lu_mat = m; perm; sign } ->
      let n = Array.length perm in
      let det = ref (if sign then S.one else S.neg S.one) in
      for i = 0 to n - 1 do
        det := S.mul !det m.(i).(i)
      done;
      !det
    | exception Singular _ -> S.zero

  let pp ppf m =
    let rows, _ = dims m in
    for i = 0 to rows - 1 do
      Format.fprintf ppf "[ ";
      Array.iter (fun v -> Format.fprintf ppf "%a " S.pp v) m.(i);
      Format.fprintf ppf "]@\n"
    done
end

module Real_scalar = struct
  type t = float

  let zero = 0.0
  let one = 1.0
  let of_float x = x
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let neg x = -.x
  let magnitude = Float.abs
  let pp ppf x = Format.fprintf ppf "%g" x
end

module Cplx_scalar = struct
  type t = Complex.t

  let zero = Complex.zero
  let one = Complex.one
  let of_float x = { Complex.re = x; im = 0.0 }
  let add = Complex.add
  let sub = Complex.sub
  let mul = Complex.mul
  let div = Complex.div
  let neg = Complex.neg
  let magnitude = Complex.norm
  let pp ppf c = Format.fprintf ppf "(%g%+gi)" c.Complex.re c.Complex.im
end

module Real = Make (Real_scalar)
module Cplx = Make (Cplx_scalar)
