(** Minimal JSON for the batch manifest/journal machinery.

    Deliberately tiny — objects, arrays, strings, numbers, booleans, null —
    because the container carries no JSON library and the batch layer needs
    both directions: parsing job manifests and journals, and printing
    records whose bytes must be identical run over run.

    {!to_string} is canonical: no whitespace, object fields in the order
    given, and a deterministic shortest-round-trip float form — the
    property the append-only journal's byte-identity contract rests on. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed).  [Error msg]
    carries a character offset.  Trailing non-space input is an error. *)

val to_string : t -> string
(** Canonical compact printing.  Floats use the shortest decimal form that
    round-trips ([1] not [1.], [0.1] not [0.10000000000000001]); non-finite
    numbers print as [null] (JSON has no representation for them). *)

val float_repr : float -> string
(** The float form {!to_string} uses — exposed for hand-rolled writers that
    must stay byte-compatible with the journal. *)

(** {2 Accessors} — total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field of an object; [None] for missing fields and non-objects. *)

val to_float : t -> float option

val to_int : t -> int option
(** Integral [Num] only. *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
