(** Deterministic pseudo-random number generation.

    All stochastic algorithms in mixsyn (simulated annealing, genetic search,
    Monte-Carlo corners) draw from an explicit [t] so that every experiment is
    reproducible from a seed.  The generator is splitmix64. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. *)

val copy : t -> t
(** Independent copy with identical future output. *)

val split : t -> t
(** [split rng] advances [rng] and returns a new independent generator. *)

val split_n : t -> int -> t array
(** [split_n rng n] advances [rng] [n] times and returns [n] independent
    generators — one deterministic stream per parallel worker, so a
    multi-start run is reproducible at any job count.
    @raise Invalid_argument when [n < 0]. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float rng bound] is uniform in [0, bound). *)

val uniform : t -> float -> float -> float
(** [uniform rng lo hi] is uniform in [lo, hi). *)

val bool : t -> bool

val gauss : t -> float
(** Standard normal deviate (Box–Muller). *)

val gaussian : t -> mean:float -> sigma:float -> float

val choice : t -> 'a array -> 'a
(** Uniformly chosen element. Requires a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
