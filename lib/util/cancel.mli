(** Cooperative cancellation for long-running synthesis work.

    A {!token} carries an optional wall-clock deadline and an explicit
    cancel flag.  The batch layer installs one around each job with
    {!with_token}; code deep inside the flow (stage boundaries, the
    annealer's move loop) calls the ambient {!guard}, which raises
    {!Cancelled} once the token expires.  With no ambient token, {!guard}
    is a few nanoseconds of domain-local lookup — the hooks cost nothing
    outside batch runs.

    Cancellation is cooperative: a job stops at the next guard point, so
    timeout latency is bounded by the longest stretch of unguarded work,
    not by preemption. *)

type token

exception Cancelled

val create : ?timeout_s:float -> unit -> token
(** A fresh token; with [timeout_s] the deadline is that many wall seconds
    from now ([timeout_s <= 0] expires at the first check). *)

val cancel : token -> unit
(** Flag the token cancelled, regardless of any deadline. *)

val cancelled : token -> bool
(** True once {!cancel} was called or the deadline passed. *)

val check : token -> unit
(** @raise Cancelled when {!cancelled} is true. *)

val with_token : token -> (unit -> 'a) -> 'a
(** Run [f] with the token installed as this domain's ambient token
    (restored on exit, exception-safe).  Not inherited by domains spawned
    inside [f]. *)

val active : unit -> token option
(** The ambient token, if any. *)

val guard : unit -> unit
(** {!check} the ambient token; a no-op when none is installed.
    @raise Cancelled when the ambient token is cancelled or expired. *)
