(** Pass 1: electrical rule checking over {!Mixsyn_circuit.Netlist.t}.

    Purely structural — no simulation — so it runs in linear time and can
    gate every netlist the flow constructs.  Rules and severities:

    - [erc.bad-net-id] (error): a terminal references a net outside
      [0, net_count) (from {!Mixsyn_circuit.Netlist.validate}).
    - [erc.duplicate-name] (error): one element name used twice (ditto).
    - [erc.dangling-net] (error): a net with exactly one terminal — a wire
      to nowhere.
    - [erc.unused-net] (warning): a declared net no terminal references.
    - [erc.floating-gate] (error): a net referenced only by MOS gates
      and/or VCCS sense terminals — nothing can set its potential.
    - [erc.floating-bulk] (error): a net referenced only by MOS bulks.
    - [erc.no-dc-path] (error): a referenced net with no DC path to ground
      through resistors, voltage sources or MOS channels (capacitors,
      current sources and controlled sources block DC).
    - [erc.shorted-vsource] (error): a voltage source with both terminals
      on one net.
    - [erc.parallel-vsources] (error): two voltage sources across the same
      net pair — ideal sources in parallel are contradictory.
    - [erc.nonpositive-value] (error): W, L, R or C value <= 0.
    - [erc.suspicious-value] (warning): a value outside the plausible
      integrated range (W/L outside 50 nm..10 mm, R outside 1 mΩ..1 TΩ,
      C outside 1 aF..1 mF). *)

val check : Mixsyn_circuit.Netlist.t -> Diagnostic.t list
(** All ERC findings; [[]] for a clean netlist. *)
