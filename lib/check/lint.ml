exception Check_failed of Diagnostic.t list

let netlist nl = Erc.check nl

let full ?tolerance ?rules nl report =
  Erc.check nl
  @ Drc.check ?rules (Mixsyn_layout.Cell_flow.tagged_geometry report)
  @ Audit.check ?tolerance nl report

let exit_code diags = if Diagnostic.errors diags = [] then 0 else 1

let gate ~stage diags =
  Mixsyn_util.Telemetry.add
    (Printf.sprintf "check.%s.errors" stage)
    (Diagnostic.count Diagnostic.Error diags);
  Mixsyn_util.Telemetry.add
    (Printf.sprintf "check.%s.warnings" stage)
    (Diagnostic.count Diagnostic.Warning diags);
  match Diagnostic.errors diags with
  | [] -> diags
  | _ -> raise (Check_failed (List.sort Diagnostic.compare diags))
