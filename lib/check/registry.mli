(** The closed catalogue of diagnostic rule identifiers.

    One entry per rule id any pass can emit, with a one-line doc.  [msyn
    lint --list-rules] prints the table; the registry test asserts that
    {!Diagnostic.emitted_rules} stays a subset of {!all}, so a new rule id
    cannot ship without documentation. *)

val all : (string * string) list
(** (rule id, one-line doc), grouped by prefix, stable order. *)

val doc : string -> string option

val known : string -> bool

val pp : Format.formatter -> unit -> unit
(** The aligned two-column listing [--list-rules] prints. *)
