(* Certified performance bounds by abstract interpretation.

   The concrete evaluator ([Mixsyn_synth.Equations]) and this module run
   the same expression tree — the equations are written once against the
   numeric DOMAIN and instantiated over floats there and over
   [Mixsyn_util.Interval] here.  Evaluating over the template's parameter
   box therefore yields guaranteed enclosures of every concrete metric the
   optimizer can ever observe inside the box: if the certified interval for
   gain_db tops out at 128 dB, no sizing point reaches 129.  That is what
   lets the flow reject specifications before any Newton or annealing work,
   lets batches skip provably-hopeless jobs, and lets the box contractor
   cut provably-infeasible regions out of the search space. *)

module I = Mixsyn_util.Interval
module Template = Mixsyn_circuit.Template
module Spec = Mixsyn_synth.Spec
module Equations = Mixsyn_synth.Equations

(* ---- boxes ------------------------------------------------------------ *)

let box_of_template (template : Template.t) =
  Array.map (fun (p : Template.param) -> I.make p.Template.lo p.Template.hi)
    template.Template.params

(* pin context bindings the way Sizing does: only names the template
   actually has become point intervals; unknown names are ignored *)
let pin (template : Template.t) context =
  let pinnable =
    List.filter
      (fun (name, _) ->
        Array.exists (fun (p : Template.param) -> p.Template.p_name = name)
          template.Template.params)
      context
  in
  Template.with_fixed template pinnable

(* ---- certified metric enclosures -------------------------------------- *)

let log10_over_20 = Float.log 10.0 /. 20.0

(* dominant pole of the single-pole model: ugf / 10^(gain_db/20) *)
let with_derived metrics =
  match (List.assoc_opt "gain_db" metrics, List.assoc_opt "ugf_hz" metrics) with
  | Some gain_db, Some ugf ->
    let linear_gain = I.exp_ (I.mul gain_db (I.point log10_over_20)) in
    metrics @ [ ("dominant_pole_hz", I.ediv ugf linear_gain) ]
  | _ -> metrics

let certify_box ?(tech = Mixsyn_circuit.Tech.generic_07um) t_name box =
  Option.map with_derived (Equations.Interval_eval.equations tech t_name box)

let certify ?tech ?(context = []) template =
  let pinned = pin template context in
  Option.value (certify_box ?tech template.Template.t_name (box_of_template pinned))
    ~default:[]

let metric_ranges ?tech ?context templates =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (t : Template.t) ->
      Hashtbl.replace tbl t.Template.t_name (certify ?tech ?context t))
    templates;
  fun (t : Template.t) name ->
    match Hashtbl.find_opt tbl t.Template.t_name with
    | Some metrics -> List.assoc_opt name metrics
    | None -> List.assoc_opt name (certify ?tech ?context t)

(* ---- spec compatibility ------------------------------------------------ *)

(* can ANY point of the certified enclosure satisfy the bound?  An empty
   enclosure satisfies nothing: evaluation is nowhere defined on the box. *)
let compatible interval (bound : Spec.bound) =
  (not (I.is_empty interval))
  &&
  match bound with
  | Spec.At_least v -> I.hi interval >= v
  | Spec.At_most v -> I.lo interval <= v
  | Spec.Between (lo, hi) -> I.intersects interval (I.make lo hi)

let bound_to_string (bound : Spec.bound) =
  match bound with
  | Spec.At_least v -> Printf.sprintf "at least %g" v
  | Spec.At_most v -> Printf.sprintf "at most %g" v
  | Spec.Between (lo, hi) -> Printf.sprintf "between %g and %g" lo hi

let infeasible_specs ?tech ?context specs template =
  let certified = certify ?tech ?context template in
  List.filter_map
    (fun (s : Spec.t) ->
      match List.assoc_opt s.Spec.s_name certified with
      | None -> None (* metric not modelled: cannot prove anything *)
      | Some interval ->
        if compatible interval s.Spec.bound then None else Some (s, interval))
    specs

let feasible ?tech ?context specs template =
  infeasible_specs ?tech ?context specs template = []

(* ---- annotation drift -------------------------------------------------- *)

(* the hand table claims a value achievable that the certified enclosure
   excludes by more than this relative slack (the slack absorbs outward
   rounding and asymptotic endpoints like a 90-degree phase margin) *)
let drift_tolerance = 1e-3

let annotation_drift ?tech (template : Template.t) =
  let certified = certify ?tech template in
  List.filter_map
    (fun (name, hand) ->
      match List.assoc_opt name certified with
      | None -> None
      | Some cert ->
        let slack x = drift_tolerance *. Float.abs x in
        let hi_excess = I.hi hand -. (I.hi cert +. slack (I.hi cert)) in
        let lo_excess = I.lo cert -. slack (I.lo cert) -. I.lo hand in
        if I.is_empty cert || hi_excess > 0.0 || lo_excess > 0.0 then
          Some
            (Diagnostic.warning ~rule:"feas.annotation-drift"
               ~loc:(template.Template.t_name ^ "/" ^ name)
               (Format.asprintf
                  "hand-annotated range %a exceeds certified bound %a (%s end optimistic)"
                  I.pp hand I.pp cert
                  (if hi_excess > 0.0 then "upper" else "lower")))
        else None)
    template.Template.feasibility

(* ---- branch-and-prune box contraction ---------------------------------- *)

type contraction = {
  c_template : Template.t;
  explored : int;       (* boxes whose enclosure was evaluated *)
  pruned : int;         (* boxes proven spec-infeasible and dropped *)
  c_infeasible : bool;  (* every box pruned: the whole template is hopeless *)
}

let box_violates ?tech t_name specs box =
  match certify_box ?tech t_name box with
  | None -> false
  | Some metrics ->
    List.exists
      (fun (s : Spec.t) ->
        match List.assoc_opt s.Spec.s_name metrics with
        | None -> false
        | Some interval -> not (compatible interval s.Spec.bound))
      specs

(* relative remaining width of dimension [i], measured against the original
   box (log-widths for log-scaled parameters) — the bisection heuristic *)
let rel_width (params : Template.param array) (box0 : I.t array) i (iv : I.t) =
  let p = params.(i) in
  if I.is_point iv then 0.0
  else if p.Template.log_scale && I.lo iv > 0.0 && I.lo box0.(i) > 0.0 then begin
    let orig = Float.log (I.hi box0.(i) /. I.lo box0.(i)) in
    if orig <= 0.0 then 0.0 else Float.log (I.hi iv /. I.lo iv) /. orig
  end
  else begin
    let orig = I.width box0.(i) in
    if orig <= 0.0 then 0.0 else I.width iv /. orig
  end

let contract ?tech ?(context = []) ?(budget = 63) specs (template : Template.t) =
  let pinned = pin template context in
  let params = pinned.Template.params in
  let n = Array.length params in
  let box0 = box_of_template pinned in
  let queue = Queue.create () in
  Queue.add box0 queue;
  let explored = ref 0 and pruned = ref 0 and splits = ref 0 in
  let survivors = ref [] in
  while not (Queue.is_empty queue) do
    let box = Queue.pop queue in
    incr explored;
    if box_violates ?tech template.Template.t_name specs box then incr pruned
    else begin
      let dim = ref (-1) and best = ref 0.0 in
      for i = 0 to n - 1 do
        let w = rel_width params box0 i box.(i) in
        if w > !best then begin
          best := w;
          dim := i
        end
      done;
      if !dim < 0 || !splits >= budget then survivors := box :: !survivors
      else begin
        incr splits;
        let a, b =
          if params.(!dim).Template.log_scale then I.split_log box.(!dim)
          else I.split box.(!dim)
        in
        let left = Array.copy box and right = Array.copy box in
        left.(!dim) <- a;
        right.(!dim) <- b;
        Queue.add left queue;
        Queue.add right queue
      end
    end
  done;
  match !survivors with
  | [] ->
    (* the entire box is provably infeasible; hand the template back
       unchanged — the pre-flight gate is the place that reports this *)
    { c_template = template; explored = !explored; pruned = !pruned; c_infeasible = true }
  | first :: rest ->
    let hull = Array.copy first in
    List.iter
      (fun box -> Array.iteri (fun i iv -> hull.(i) <- I.hull hull.(i) iv) box)
      rest;
    let changed = ref false in
    Array.iteri
      (fun i iv ->
        if I.lo iv > I.lo box0.(i) || I.hi iv < I.hi box0.(i) then changed := true)
      hull;
    if not !changed then
      { c_template = template; explored = !explored; pruned = !pruned; c_infeasible = false }
    else begin
      let params' =
        Array.mapi
          (fun i (p : Template.param) ->
            { p with Template.lo = I.lo hull.(i); hi = I.hi hull.(i) })
          params
      in
      { c_template = { pinned with Template.params = params' };
        explored = !explored;
        pruned = !pruned;
        c_infeasible = false }
    end

(* ---- symbolic transfer-function bounds --------------------------------- *)

let transfer_bounds nl ~out ~ranges =
  let r = Mixsyn_symbolic.Analyze.transfer nl ~out in
  [ ("dc_gain", Mixsyn_symbolic.Analyze.bound_dc_gain ranges r);
    ("gbw_hz", Mixsyn_symbolic.Analyze.bound_gbw ranges r);
    ("dominant_pole_hz", Mixsyn_symbolic.Analyze.bound_dominant_pole ranges r) ]
