(** The shared currency of the static-verification layer.

    Every pass ({!Erc}, {!Drc}, {!Audit}) reports findings as a flat list of
    diagnostics; severity decides what gates the flow ([Error] fails,
    [Warning] is counted, [Info] is narrative).  Rule identifiers are
    dot-separated and stable (["erc.floating-gate"], ["drc.min-spacing"],
    ["audit.symmetry-broken"]) so they can be suppressed, counted and
    asserted on by name. *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  rule : string;  (** stable dotted identifier, e.g. ["erc.dangling-net"] *)
  loc : string;   (** where: element, net, layer+coordinates, pair *)
  msg : string;   (** what and why, human-readable *)
}

val error : rule:string -> loc:string -> string -> t
val warning : rule:string -> loc:string -> string -> t
val info : rule:string -> loc:string -> string -> t

val emitted_rules : unit -> string list
(** Every rule id that has passed through a constructor in this process,
    sorted.  The registry drift test asserts this stays a subset of
    {!Registry.all}; thread-safe. *)

val severity_name : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val compare : t -> t -> int
(** Severity first (errors lead), then rule, then location. *)

val errors : t list -> t list
val warnings : t list -> t list

val count : severity -> t list -> int

val by_rule : t list -> (string * int) list
(** Occurrences per rule id, sorted by rule. *)

val suppress : rules:string list -> t list -> t list
(** Drop [Warning]/[Info] diagnostics whose rule is listed.  Errors are
    never suppressed: a design that needs an error silenced needs fixing. *)

val pp : Format.formatter -> t -> unit
(** One line: [severity[rule] loc: msg]. *)

val render : t list -> string
(** Sorted listing followed by an [N error(s), M warning(s)] summary;
    ["clean: no diagnostics"] for the empty list. *)

val to_json : t list -> string
(** Machine-readable form: a JSON array of
    [{"severity": s, "rule": r, "loc": l, "msg": m}] objects, sorted as
    {!render}. *)
