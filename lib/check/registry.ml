(* The closed catalogue of diagnostic rule ids.  Every ~rule string built
   anywhere in the tree must appear here — [msyn lint --list-rules] prints
   this table and the registry test in test_check asserts that every rule
   observed at runtime is listed, so the taxonomy cannot drift silently. *)

let all =
  [ (* electrical rule checks *)
    ("erc.bad-net-id", "net id referenced by an element is out of range");
    ("erc.dangling-net", "net with a single connection");
    ("erc.duplicate-name", "two nets share a name");
    ("erc.floating-bulk", "MOS bulk tied to neither rail nor source");
    ("erc.floating-gate", "MOS gate with no DC path to any source");
    ("erc.no-dc-path", "net has no DC path to ground");
    ("erc.nonpositive-value", "element value is zero or negative");
    ("erc.parallel-vsources", "two voltage sources across the same nets");
    ("erc.shorted-vsource", "voltage source with both terminals on one net");
    ("erc.suspicious-value", "element value far outside its plausible decade");
    ("erc.unused-net", "net declared but never connected");
    (* design rule checks *)
    ("drc.contact-enclosure", "contact/via not enclosed by its conductors");
    ("drc.contact-size", "contact/via cut is not the exact rule size");
    ("drc.gate-extension", "poly gate endcap below the extension rule");
    ("drc.min-spacing", "same-layer shapes closer than the spacing rule");
    ("drc.min-width", "shape narrower than the layer's minimum width");
    ("drc.route-spacing", "routing shapes closer than the spacing rule");
    ("drc.well-enclosure", "device not enclosed by its well margin");
    ("drc.well-spacing", "wells closer than the well spacing rule");
    (* constraint audit *)
    ("audit.open-net", "netlist net with no extracted geometry");
    ("audit.pair-merged", "matched pair merged into one extracted net");
    ("audit.short", "extracted geometry shorts two netlist nets");
    ("audit.symmetry-broken", "matched devices placed asymmetrically");
    ("audit.symmetry-missing", "matched device missing from the layout");
    ("audit.unknown-net", "extracted net matching no netlist net");
    ("audit.unrouted-net", "netlist net left unrouted by the router");
    (* certified feasibility (interval abstract interpretation) *)
    ("feas.annotation-drift",
     "hand-written feasibility range exceeds the certified interval bound");
    ("feas.infeasible-spec",
     "specification provably unsatisfiable by every candidate topology");
    ("feas.no-feasible-topology",
     "no candidate passes interval feasibility; flow fell back to all") ]

let doc rule = List.assoc_opt rule all

let known rule = List.mem_assoc rule all

let pp ppf () =
  List.iter (fun (rule, doc) -> Format.fprintf ppf "%-26s %s@\n" rule doc) all
