(** Pass 3: constraint audit — did the backend keep the frontend's promises?

    The constraint-mapping literature the paper leans on (Choudhury &
    Sangiovanni-Vincentelli; KOAN's symmetry annealing) exists because
    placement and routing can silently drop device-level constraints.  This
    pass recomputes the schematic's matching pairs with
    {!Mixsyn_layout.Sensitivity.matching_pairs} and checks them against the
    {e final} placement, and re-derives net connectivity from the routed
    geometry to compare against the netlist's intent.

    Rules and severities:
    - [audit.symmetry-missing] (error): a schematic matching pair whose
      devices were never realized as placeable cells, or whose cells the
      placer was not told to mirror.
    - [audit.symmetry-broken] (error): a matching pair whose cells are not
      mirror-placed about the common axis within [tolerance].
    - [audit.pair-merged] (info): a matching pair merged into one diffusion
      stack — matched by construction.
    - [audit.unrouted-net] (error): a net the router reported failed.
    - [audit.open-net] (error): a net with pins on two or more cells whose
      routed geometry does not connect them all.
    - [audit.unknown-net] (warning): routed wire for a net with no pins in
      the placement — extracted geometry the netlist never asked for.
    - [audit.short] (error): same-layer wire geometry of two different nets
      overlapping. *)

val check :
  ?tolerance:float ->
  Mixsyn_circuit.Netlist.t ->
  Mixsyn_layout.Cell_flow.report ->
  Diagnostic.t list
(** [tolerance] (default 2 µm, a few routing tracks) bounds the allowed
    mirror-placement asymmetry: the axis offset of a pair's centers and
    their vertical misalignment must both stay under it. *)
