module Geom = Mixsyn_layout.Geom
module Rules = Mixsyn_layout.Rules
module D = Diagnostic

(* 0.1 nm: float-safe slack so geometry drawn exactly at a rule passes *)
let eps = 1e-10

let um v = v *. 1e6

let loc_of owner (r : Geom.rect) =
  Printf.sprintf "%s/%s (%.2f,%.2f)-(%.2f,%.2f)um" owner (Geom.layer_name r.Geom.layer)
    (um r.Geom.x0) (um r.Geom.y0) (um r.Geom.x1) (um r.Geom.y1)

let drawn_layers = [ Geom.Ndiff; Geom.Pdiff; Geom.Poly; Geom.Metal1; Geom.Metal2; Geom.Nwell ]

(* routed wire carries a "net:" owner tag (see Cell_flow.tagged_geometry) *)
let is_wire owner = String.length owner >= 4 && String.sub owner 0 4 = "net:"

(* gap between two rects along one axis; negative when they overlap there *)
let gap lo0 hi0 lo1 hi1 = Float.max (lo1 -. hi0) (lo0 -. hi1)

let enclosure_margin ~(outer : Geom.rect) ~(inner : Geom.rect) =
  Float.min
    (Float.min (inner.Geom.x0 -. outer.Geom.x0) (outer.Geom.x1 -. inner.Geom.x1))
    (Float.min (inner.Geom.y0 -. outer.Geom.y0) (outer.Geom.y1 -. inner.Geom.y1))

let check ?(rules = Rules.generic_07um) tagged =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let by_layer l = List.filter (fun (_, r) -> r.Geom.layer = l) tagged in
  (* --- width and cut-size rules, per rectangle --------------------------- *)
  List.iter
    (fun (owner, r) ->
      let w = Geom.width r and h = Geom.height r in
      match r.Geom.layer with
      | Geom.Contact | Geom.Via12 ->
        let size =
          if r.Geom.layer = Geom.Contact then rules.Rules.contact_size else rules.Rules.via_size
        in
        if Float.abs (w -. size) > eps || Float.abs (h -. size) > eps then
          emit
            (D.error ~rule:"drc.contact-size" ~loc:(loc_of owner r)
               (Printf.sprintf "cut is %.2f x %.2f um; must be the square %.2f um cut" (um w)
                  (um h) (um size)))
      | layer ->
        let min_w = rules.Rules.min_width layer in
        if Float.min w h < min_w -. eps then
          emit
            (D.error ~rule:"drc.min-width" ~loc:(loc_of owner r)
               (Printf.sprintf "width %.2f um is under the %.2f um minimum" (um (Float.min w h))
                  (um min_w))))
    tagged;
  (* --- same-layer spacing between different owners ----------------------- *)
  List.iter
    (fun layer ->
      let spacing = rules.Rules.min_spacing layer in
      let rects =
        Array.of_list (List.sort (fun (_, a) (_, b) -> compare a.Geom.x0 b.Geom.x0) (by_layer layer))
      in
      let n = Array.length rects in
      for i = 0 to n - 1 do
        let owner_i, ri = rects.(i) in
        let j = ref (i + 1) in
        (* sorted by x0: once the gap in x alone reaches the rule, no later
           rect can violate against [ri] *)
        while
          !j < n
          && (let _, rj = rects.(!j) in
              rj.Geom.x0 -. ri.Geom.x1 < spacing -. eps)
        do
          let owner_j, rj = rects.(!j) in
          if owner_i <> owner_j then begin
            let dx = gap ri.Geom.x0 ri.Geom.x1 rj.Geom.x0 rj.Geom.x1 in
            let dy = gap ri.Geom.y0 ri.Geom.y1 rj.Geom.y0 rj.Geom.y1 in
            let separation = Float.max dx dy in
            if separation > eps && separation < spacing -. eps then begin
              let rule, mk =
                if layer = Geom.Nwell then ("drc.well-spacing", D.warning)
                else if is_wire owner_i || is_wire owner_j then
                  (* the maze router drops wire squares on a half-pitch grid
                     with no spacing halo around foreign geometry, so routed
                     metal legitimately approaches cells closer than the
                     rule.  Flag it, but do not fail the gate on it. *)
                  ("drc.route-spacing", D.warning)
                else ("drc.min-spacing", D.error)
              in
              emit
                (mk ~rule
                   ~loc:(loc_of owner_i ri)
                   (Printf.sprintf "%.2f um to %s; %s needs %.2f um" (um separation)
                      (loc_of owner_j rj) (Geom.layer_name layer) (um spacing)))
            end
          end;
          incr j
        done
      done)
    drawn_layers;
  (* --- contact/via enclosure --------------------------------------------- *)
  let conductors = by_layer Geom.Ndiff @ by_layer Geom.Pdiff @ by_layer Geom.Poly in
  let metal1 = by_layer Geom.Metal1 in
  let metal2 = by_layer Geom.Metal2 in
  let enclosed ?(margin = 0.0) pool cut =
    List.exists (fun (_, outer) -> enclosure_margin ~outer ~inner:cut >= margin -. eps) pool
  in
  List.iter
    (fun (owner, cut) ->
      match cut.Geom.layer with
      | Geom.Contact ->
        if not (enclosed ~margin:rules.Rules.diff_contact_margin conductors cut) then
          emit
            (D.error ~rule:"drc.contact-enclosure" ~loc:(loc_of owner cut)
               (Printf.sprintf
                  "cut lacks the %.2f um diffusion/poly enclosure margin"
                  (um rules.Rules.diff_contact_margin)))
        else if not (enclosed metal1 cut) then
          emit
            (D.error ~rule:"drc.contact-enclosure" ~loc:(loc_of owner cut)
               "cut is not covered by Metal1")
      | Geom.Via12 ->
        if not (enclosed metal1 cut && enclosed metal2 cut) then
          emit
            (D.error ~rule:"drc.contact-enclosure" ~loc:(loc_of owner cut)
               "via is not covered by both Metal1 and Metal2")
      | _ -> ())
    tagged;
  (* --- poly gate extension past the channel ------------------------------ *)
  let ext = rules.Rules.poly_gate_extension in
  let polys = by_layer Geom.Poly in
  let diffs = by_layer Geom.Ndiff @ by_layer Geom.Pdiff in
  List.iter
    (fun (po, p) ->
      List.iter
        (fun ((don, d) : string * Geom.rect) ->
          if Geom.overlaps p d then begin
            let x_inside = p.Geom.x0 > d.Geom.x0 +. eps && p.Geom.x1 < d.Geom.x1 -. eps in
            let y_inside = p.Geom.y0 > d.Geom.y0 +. eps && p.Geom.y1 < d.Geom.y1 -. eps in
            let vertical_ok =
              p.Geom.y0 <= d.Geom.y0 -. ext +. eps && p.Geom.y1 >= d.Geom.y1 +. ext -. eps
            in
            let horizontal_ok =
              p.Geom.x0 <= d.Geom.x0 -. ext +. eps && p.Geom.x1 >= d.Geom.x1 +. ext -. eps
            in
            let bad =
              (* a gate crosses the diffusion in one axis and must overhang
                 it in the other by the endcap rule *)
              (x_inside && not vertical_ok) || (y_inside && not horizontal_ok)
            in
            if bad then
              emit
                (D.error ~rule:"drc.gate-extension" ~loc:(loc_of po p)
                   (Printf.sprintf "gate poly must extend %.2f um past the diffusion at %s"
                      (um ext) (loc_of don d)))
          end)
        diffs)
    polys;
  (* --- nwell enclosure of pdiff ------------------------------------------ *)
  let wells = by_layer Geom.Nwell in
  List.iter
    (fun ((owner, pd) : string * Geom.rect) ->
      if pd.Geom.layer = Geom.Pdiff then
        if not (enclosed ~margin:rules.Rules.well_margin wells pd) then
          emit
            (D.error ~rule:"drc.well-enclosure" ~loc:(loc_of owner pd)
               (Printf.sprintf "Pdiff lacks the %.2f um Nwell enclosure margin"
                  (um rules.Rules.well_margin))))
    tagged;
  List.rev !diags
