type severity = Error | Warning | Info

type t = {
  severity : severity;
  rule : string;
  loc : string;
  msg : string;
}

(* every rule id that passes through a constructor, process-wide: the
   registry drift test asserts this set stays inside [Registry.all].
   Mutex-protected because batch jobs construct diagnostics from worker
   domains. *)
let emitted_tbl : (string, unit) Hashtbl.t = Hashtbl.create 64
let emitted_lock = Mutex.create ()

let note_rule rule =
  Mutex.lock emitted_lock;
  Hashtbl.replace emitted_tbl rule ();
  Mutex.unlock emitted_lock

let emitted_rules () =
  Mutex.lock emitted_lock;
  let rules = Hashtbl.fold (fun r () acc -> r :: acc) emitted_tbl [] in
  Mutex.unlock emitted_lock;
  List.sort Stdlib.compare rules

let error ~rule ~loc msg = note_rule rule; { severity = Error; rule; loc; msg }
let warning ~rule ~loc msg = note_rule rule; { severity = Warning; rule; loc; msg }
let info ~rule ~loc msg = note_rule rule; { severity = Info; rule; loc; msg }

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  match Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (match Stdlib.compare a.rule b.rule with 0 -> Stdlib.compare a.loc b.loc | c -> c)
  | c -> c

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds
let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let by_rule ds =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun d -> Hashtbl.replace tbl d.rule (1 + Option.value (Hashtbl.find_opt tbl d.rule) ~default:0))
    ds;
  List.sort Stdlib.compare (Hashtbl.fold (fun r n acc -> (r, n) :: acc) tbl [])

let suppress ~rules ds =
  List.filter (fun d -> d.severity = Error || not (List.mem d.rule rules)) ds

let pp ppf d =
  Format.fprintf ppf "%s[%s] %s: %s" (severity_name d.severity) d.rule d.loc d.msg

let render ds =
  match ds with
  | [] -> "clean: no diagnostics"
  | _ ->
    let ds = List.sort compare ds in
    let buf = Buffer.create 256 in
    List.iter (fun d -> Buffer.add_string buf (Format.asprintf "%a@." pp d)) ds;
    Buffer.add_string buf
      (Printf.sprintf "%d error(s), %d warning(s), %d info" (count Error ds)
         (count Warning ds) (count Info ds));
    Buffer.contents buf

(* minimal JSON string escaping: quotes, backslashes, control characters *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ds =
  let ds = List.sort compare ds in
  let one d =
    Printf.sprintf "{\"severity\": \"%s\", \"rule\": \"%s\", \"loc\": \"%s\", \"msg\": \"%s\"}"
      (severity_name d.severity) (escape d.rule) (escape d.loc) (escape d.msg)
  in
  "[" ^ String.concat ", " (List.map one ds) ^ "]"
