(** The combined static gate: ERC + DRC + constraint audit.

    This is what the flow and the [msyn lint] subcommand call.  {!netlist}
    is the cheap pre-layout gate; {!full} adds the two backend passes over a
    finished {!Mixsyn_layout.Cell_flow.report}. *)

exception Check_failed of Diagnostic.t list
(** Raised by {!gate} when any [Error] diagnostic survives; carries the
    complete diagnostic list, errors first. *)

val netlist : Mixsyn_circuit.Netlist.t -> Diagnostic.t list
(** ERC only — {!Erc.check}. *)

val full :
  ?tolerance:float ->
  ?rules:Mixsyn_layout.Rules.t ->
  Mixsyn_circuit.Netlist.t ->
  Mixsyn_layout.Cell_flow.report ->
  Diagnostic.t list
(** All three passes: ERC over the netlist, DRC over the report's tagged
    geometry, the constraint audit over both.  [tolerance] is the audit's
    mirror-placement tolerance. *)

val exit_code : Diagnostic.t list -> int
(** 1 when any [Error] diagnostic is present, 0 otherwise — the [msyn lint]
    process exit status. *)

val gate : stage:string -> Diagnostic.t list -> Diagnostic.t list
(** Telemetry-counting gate for the flow: counts
    [check.<stage>.errors/warnings] into {!Mixsyn_util.Telemetry}, returns
    the diagnostics unchanged when no error is present, and raises
    {!Check_failed} otherwise. *)
