module Netlist = Mixsyn_circuit.Netlist
module CF = Mixsyn_layout.Cell_flow
module Cell = Mixsyn_layout.Cell
module Geom = Mixsyn_layout.Geom
module MR = Mixsyn_layout.Maze_router
module Rules = Mixsyn_layout.Rules
module Sens = Mixsyn_layout.Sensitivity
module St = Mixsyn_layout.Stacker
module D = Diagnostic

let default_tolerance = 2e-6

let cell_center (c : Cell.t) =
  match Geom.bbox c.Cell.rects with
  | Some bb -> Geom.center bb
  | None -> (0.0, 0.0)

(* the placeable item a schematic device ended up in: itself, or the
   diffusion stack that absorbed it *)
let item_of_device stacking =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (st : St.stack) ->
      match st.St.devices with
      | [ single ] -> Hashtbl.replace tbl single single
      | many -> List.iter (fun d -> Hashtbl.replace tbl d st.St.st_name) many)
    stacking.St.stacks;
  fun d -> Hashtbl.find_opt tbl d

let check_symmetry ?(tolerance = default_tolerance) nl (report : CF.report) =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let pairs = Sens.matching_pairs nl in
  let owner = item_of_device (St.linear (Netlist.mos_list nl)) in
  let placed = Hashtbl.create 16 in
  List.iter (fun (c : Cell.t) -> Hashtbl.replace placed c.Cell.cell_name c) report.CF.placed;
  (* resolve each pair to its placed cells first: the mirror axis is shared
     across all pairs, exactly as the placer's cost defines it *)
  let resolved =
    List.filter_map
      (fun (a, b) ->
        let loc = a ^ "," ^ b in
        match (owner a, owner b) with
        | None, _ | _, None ->
          emit
            (D.error ~rule:"audit.symmetry-missing" ~loc
               "matched devices were never realized as placeable cells");
          None
        | Some ia, Some ib when ia = ib ->
          emit
            (D.info ~rule:"audit.pair-merged" ~loc
               (Printf.sprintf "pair merged into stack %s; matched by construction" ia));
          None
        | Some ia, Some ib ->
          (match (Hashtbl.find_opt placed ia, Hashtbl.find_opt placed ib) with
           | Some ca, Some cb -> Some (loc, ca, cb)
           | _ ->
             emit
               (D.error ~rule:"audit.symmetry-missing" ~loc
                  (Printf.sprintf "cells %s/%s are missing from the placement" ia ib));
             None))
      pairs
  in
  (match resolved with
   | [] -> ()
   | _ ->
     let axis =
       List.fold_left
         (fun acc (_, ca, cb) -> acc +. (0.5 *. (fst (cell_center ca) +. fst (cell_center cb))))
         0.0 resolved
       /. float_of_int (List.length resolved)
     in
     List.iter
       (fun (loc, ca, cb) ->
         let xa, ya = cell_center ca and xb, yb = cell_center cb in
         let off_axis = Float.abs (xa +. xb -. (2.0 *. axis)) in
         let off_y = Float.abs (ya -. yb) in
         if off_axis > tolerance || off_y > tolerance then
           emit
             (D.error ~rule:"audit.symmetry-broken" ~loc
                (Printf.sprintf
                   "pair is not mirror-placed: axis offset %.2f um, vertical offset %.2f um exceed %.2f um"
                   (off_axis *. 1e6) (off_y *. 1e6) (tolerance *. 1e6))))
       resolved);
  List.rev !diags

let check_connectivity (report : CF.report) =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let rules = Rules.generic_07um in
  (* the router draws dashed squares on a half-pitch grid; geometry this
     close is one electrical node *)
  let connect_tol = rules.Rules.route_pitch /. 2.0 in
  let skip net = net = "vdd" || net = "0" || net = "vss" in
  List.iter
    (fun net ->
      if not (skip net) then
        emit (D.error ~rule:"audit.unrouted-net" ~loc:net "router gave up on this net"))
    report.CF.route.MR.failed;
  (* pins grouped by net, remembering the owning cell (pins of one cell on
     one net are strapped internally by the generator) *)
  let pins_by_net : (string, (string * Geom.rect) list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (c : Cell.t) ->
      List.iter
        (fun (p : Cell.pin) ->
          let prev = Option.value (Hashtbl.find_opt pins_by_net p.Cell.pin_net) ~default:[] in
          Hashtbl.replace pins_by_net p.Cell.pin_net ((c.Cell.cell_name, p.Cell.pin_rect) :: prev))
        c.Cell.pins)
    report.CF.placed;
  let wires_by_net : (string, Geom.rect list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (w : MR.wire) ->
      let prev = Option.value (Hashtbl.find_opt wires_by_net w.MR.w_net) ~default:[] in
      Hashtbl.replace wires_by_net w.MR.w_net (w.MR.rects @ prev))
    report.CF.route.MR.wires;
  (* wires for nets without any pin: extracted geometry with no intent *)
  Hashtbl.iter
    (fun net _ ->
      if (not (skip net)) && not (Hashtbl.mem pins_by_net net) then
        emit
          (D.warning ~rule:"audit.unknown-net" ~loc:net
             "routed wire exists for a net with no pins in the placement"))
    wires_by_net;
  (* per-net continuity: every pin-bearing cell must join one component *)
  let near a b =
    let dx = Float.max (b.Geom.x0 -. a.Geom.x1) (a.Geom.x0 -. b.Geom.x1) in
    let dy = Float.max (b.Geom.y0 -. a.Geom.y1) (a.Geom.y0 -. b.Geom.y1) in
    Float.max dx dy <= connect_tol
  in
  Hashtbl.iter
    (fun net pins ->
      let cells = List.sort_uniq compare (List.map fst pins) in
      if (not (skip net)) && List.length cells > 1
         && not (List.mem net report.CF.route.MR.failed)
      then begin
        let wire_rects = Option.value (Hashtbl.find_opt wires_by_net net) ~default:[] in
        match wire_rects with
        | [] ->
          emit
            (D.error ~rule:"audit.open-net" ~loc:net
               (Printf.sprintf "pins on %d cells but no routed geometry" (List.length cells)))
        | _ ->
          (* union-find over pins + wire squares; same-cell pins pre-joined *)
          let nodes =
            Array.of_list
              (List.map (fun (cell, r) -> (Some cell, r)) pins
               @ List.map (fun r -> (None, r)) wire_rects)
          in
          let n = Array.length nodes in
          let parent = Array.init n (fun i -> i) in
          let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
          let union a b =
            let ra = find a and rb = find b in
            if ra <> rb then parent.(ra) <- rb
          in
          for i = 0 to n - 1 do
            for j = i + 1 to n - 1 do
              let oi, ri = nodes.(i) and oj, rj = nodes.(j) in
              let same_cell = match (oi, oj) with Some a, Some b -> a = b | _ -> false in
              if same_cell || near ri rj then union i j
            done
          done;
          let roots = ref [] in
          for i = 0 to n - 1 do
            let r = find i in
            if not (List.mem r !roots) then roots := r :: !roots
          done;
          if List.length !roots > 1 then
            emit
              (D.error ~rule:"audit.open-net" ~loc:net
                 (Printf.sprintf
                    "routed geometry leaves the net in %d disconnected pieces across %d cells"
                    (List.length !roots) (List.length cells)))
      end)
    pins_by_net;
  (* cross-net shorts: same-layer overlap of two different nets' wires *)
  let tagged_wires =
    List.concat_map
      (fun (w : MR.wire) -> List.map (fun r -> (w.MR.w_net, r)) w.MR.rects)
      report.CF.route.MR.wires
  in
  let seen_pairs = Hashtbl.create 8 in
  List.iter
    (fun layer ->
      let rects =
        Array.of_list
          (List.sort
             (fun (_, a) (_, b) -> compare a.Geom.x0 b.Geom.x0)
             (List.filter (fun ((_, r) : string * Geom.rect) -> r.Geom.layer = layer) tagged_wires))
      in
      let n = Array.length rects in
      for i = 0 to n - 1 do
        let net_i, ri = rects.(i) in
        let j = ref (i + 1) in
        while !j < n && (snd rects.(!j)).Geom.x0 < ri.Geom.x1 do
          let net_j, rj = rects.(!j) in
          if net_i <> net_j && Geom.overlaps ri rj then begin
            let key = if net_i < net_j then (net_i, net_j) else (net_j, net_i) in
            if not (Hashtbl.mem seen_pairs key) then begin
              Hashtbl.replace seen_pairs key ();
              emit
                (D.error ~rule:"audit.short" ~loc:(fst key ^ "," ^ snd key)
                   (Printf.sprintf "wires of distinct nets overlap on %s" (Geom.layer_name layer)))
            end
          end;
          incr j
        done
      done)
    [ Geom.Metal1; Geom.Metal2 ];
  List.rev !diags

let check ?tolerance nl report =
  check_symmetry ?tolerance nl report @ check_connectivity report
