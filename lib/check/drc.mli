(** Pass 2: geometric design-rule checking over mask rectangles.

    Input is {e owner-tagged} geometry — the owner is the generated cell or
    the routed net a rectangle belongs to (see
    {!Mixsyn_layout.Cell_flow.tagged_geometry}).  Width, enclosure and size
    rules apply to every rectangle; spacing applies only {e between}
    owners: a generator's internal same-net geometry (folded fingers,
    dashed wire segments on the routing grid) intentionally sits at the
    pitch the generator chose, while two different cells or two different
    nets approaching each other is exactly the placement/routing failure
    this pass exists to catch.

    Rules and severities:
    - [drc.min-width] (error): a drawn-layer rectangle narrower than the
      layer's minimum width.
    - [drc.min-spacing] (error): same-layer rectangles of two different
      {e cells} separated by less than the layer's minimum spacing
      (touching or overlapping rectangles are treated as connected, not as
      a spacing violation).
    - [drc.route-spacing] (warning): the same geometric condition when
      either rectangle is routed wire (["net:"] owner).  The maze router
      drops wire squares on a half-pitch grid with no spacing halo around
      foreign geometry, so routed metal legitimately lands closer than the
      rule; surfaced for visibility rather than failing the gate.
    - [drc.contact-size] (error): a contact or via cut that is not exactly
      the process's square cut size.
    - [drc.contact-enclosure] (error): a contact cut not enclosed by
      diffusion/poly with the required margin, or not covered by Metal1.
    - [drc.gate-extension] (error): a poly gate crossing diffusion without
      the required endcap extension past the channel.
    - [drc.well-enclosure] (error): a Pdiff rectangle not enclosed by an
      Nwell with the required margin.
    - [drc.well-spacing] (warning): two different owners' Nwells closer
      than the well spacing rule — usually benign (same-potential wells
      merge) but worth surfacing. *)

val check :
  ?rules:Mixsyn_layout.Rules.t -> (string * Mixsyn_layout.Geom.rect) list -> Diagnostic.t list
(** [check tagged] runs every rule over [(owner, rect)] geometry;
    [rules] defaults to {!Mixsyn_layout.Rules.generic_07um}. *)
