(** Certified performance bounds: interval abstract interpretation of the
    design equations and symbolic transfer functions over parameter boxes.

    Soundness contract: {!certify} evaluates the same expression tree as
    the concrete evaluator ({!Mixsyn_synth.Equations.evaluate}), over
    {!Mixsyn_util.Interval} with outward rounding — so for every parameter
    point inside the template box (after clamping and context pinning),
    every concrete metric lies inside its certified interval.  A
    specification that {!infeasible_specs} reports is therefore provably
    unsatisfiable: no optimizer, however patient, can meet it on that
    template.  The converse does not hold — interval enclosures
    over-approximate, so a spec this module does not reject may still be
    unreachable in practice. *)

val box_of_template : Mixsyn_circuit.Template.t -> Mixsyn_util.Interval.t array
(** One interval per template parameter, [[lo, hi]]. *)

val certify_box :
  ?tech:Mixsyn_circuit.Tech.t ->
  string ->
  Mixsyn_util.Interval.t array ->
  (string * Mixsyn_util.Interval.t) list option
(** Certified metric enclosures of the named template's equations over an
    explicit box; adds the derived ["dominant_pole_hz"] (ugf / linear
    gain).  [None] for templates without an equation model. *)

val certify :
  ?tech:Mixsyn_circuit.Tech.t ->
  ?context:(string * float) list ->
  Mixsyn_circuit.Template.t ->
  (string * Mixsyn_util.Interval.t) list
(** {!certify_box} over the template's own parameter box, with [context]
    bindings pinned to points the way {!Mixsyn_synth.Sizing.size} pins
    them (unknown names ignored).  Empty for unmodelled templates. *)

val metric_ranges :
  ?tech:Mixsyn_circuit.Tech.t ->
  ?context:(string * float) list ->
  Mixsyn_circuit.Template.t list ->
  Mixsyn_circuit.Template.t ->
  string ->
  Mixsyn_util.Interval.t option
(** Memoised {!certify} lookup over a candidate list, shaped for
    {!Mixsyn_synth.Topo_select.interval_feasible}'s [?ranges]. *)

val compatible : Mixsyn_util.Interval.t -> Mixsyn_synth.Spec.bound -> bool
(** Can any point of the enclosure satisfy the bound?  [false] for the
    empty interval. *)

val bound_to_string : Mixsyn_synth.Spec.bound -> string
(** ["at least 70"], ["at most 1e-3"], ["between 40 and 60"]. *)

val infeasible_specs :
  ?tech:Mixsyn_circuit.Tech.t ->
  ?context:(string * float) list ->
  Mixsyn_synth.Spec.t list ->
  Mixsyn_circuit.Template.t ->
  (Mixsyn_synth.Spec.t * Mixsyn_util.Interval.t) list
(** The specs provably unsatisfiable on the template, each with the
    certified enclosure that excludes its bound. *)

val feasible :
  ?tech:Mixsyn_circuit.Tech.t ->
  ?context:(string * float) list ->
  Mixsyn_synth.Spec.t list ->
  Mixsyn_circuit.Template.t ->
  bool

val annotation_drift :
  ?tech:Mixsyn_circuit.Tech.t ->
  Mixsyn_circuit.Template.t ->
  Diagnostic.t list
(** [feas.annotation-drift] warnings for every hand-written
    {!Mixsyn_circuit.Template.t.feasibility} range that claims performance
    outside the certified enclosure (beyond a small relative slack). *)

(** {2 Branch-and-prune box contraction} *)

type contraction = {
  c_template : Mixsyn_circuit.Template.t;
      (** the input template with its parameter box shrunk to the hull of
          the surviving sub-boxes; the very same template value when
          nothing was pruned *)
  explored : int;       (** sub-boxes whose enclosure was evaluated *)
  pruned : int;         (** sub-boxes proven spec-infeasible and dropped *)
  c_infeasible : bool;  (** every sub-box pruned: template provably hopeless *)
}

val contract :
  ?tech:Mixsyn_circuit.Tech.t ->
  ?context:(string * float) list ->
  ?budget:int ->
  Mixsyn_synth.Spec.t list ->
  Mixsyn_circuit.Template.t ->
  contraction
(** Breadth-first bisection (geometric for log-scaled parameters) of the
    parameter box, dropping sub-boxes whose certified enclosure proves a
    spec violated, up to [budget] splits (default 63).  Sound: only
    regions where {e no} point can meet the specs are removed, so the
    contracted box still contains every spec-satisfying sizing.
    Deterministic — no randomness, no wall-clock. *)

(** {2 Symbolic transfer-function bounds} *)

val transfer_bounds :
  Mixsyn_circuit.Netlist.t ->
  out:Mixsyn_circuit.Netlist.net ->
  ranges:(string -> Mixsyn_util.Interval.t) ->
  (string * Mixsyn_util.Interval.t) list
(** ISAAC-side bounds: build the symbolic transfer function to [out] and
    enclose ["dc_gain"], ["gbw_hz"] and ["dominant_pole_hz"] over the
    given small-signal symbol ranges (e.g. gm_m1, gds_m1, c_cl). *)
