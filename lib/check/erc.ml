module Netlist = Mixsyn_circuit.Netlist
module D = Diagnostic

(* how a terminal touches its net: [Drives] can set the net's potential or
   carry its current, [Senses] only observes it (MOS gate, VCCS control),
   [Body] is a MOS bulk tie *)
type touch = Drives | Senses | Body

let touches e =
  match e with
  | Netlist.Mos m ->
    [ (m.Netlist.drain, Drives); (m.Netlist.gate, Senses); (m.Netlist.source, Drives);
      (m.Netlist.bulk, Body) ]
  | Netlist.Resistor { a; b; _ } -> [ (a, Drives); (b, Drives) ]
  | Netlist.Capacitor { a; b; _ } -> [ (a, Drives); (b, Drives) ]
  | Netlist.Vsource { p; n; _ } -> [ (p, Drives); (n, Drives) ]
  | Netlist.Isource { p; n; _ } -> [ (p, Drives); (n, Drives) ]
  | Netlist.Vccs { p; n; cp; cn; _ } -> [ (p, Drives); (n, Drives); (cp, Senses); (cn, Senses) ]

(* union-find over nets for the DC-path rule *)
let find parent i =
  let rec root i = if parent.(i) = i then i else root parent.(i) in
  let r = root i in
  let rec compress i = if parent.(i) <> r then (let p = parent.(i) in parent.(i) <- r; compress p) in
  compress i;
  r

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then parent.(ra) <- rb

let in_range n count = n >= 0 && n < count

let check nl =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let n_nets = Netlist.net_count nl in
  let elements = Netlist.elements nl in
  (* structural smoke problems from the netlist layer itself *)
  List.iter
    (fun problem ->
      let rule =
        if String.length problem >= 10 && String.sub problem 0 10 = "bad-net-id" then
          "erc.bad-net-id"
        else "erc.duplicate-name"
      in
      emit (D.error ~rule ~loc:"netlist" problem))
    (Netlist.validate nl);
  (* per-net touch census.  Out-of-range ids are already reported above;
     clip them so the remaining rules stay total. *)
  let drives = Array.make n_nets 0 in
  let senses = Array.make n_nets 0 in
  let bodies = Array.make n_nets 0 in
  List.iter
    (fun e ->
      List.iter
        (fun (n, touch) ->
          if in_range n n_nets then
            match touch with
            | Drives -> drives.(n) <- drives.(n) + 1
            | Senses -> senses.(n) <- senses.(n) + 1
            | Body -> bodies.(n) <- bodies.(n) + 1)
        (touches e))
    elements;
  let refs n = drives.(n) + senses.(n) + bodies.(n) in
  let net_flagged = Array.make n_nets false in
  for n = 1 to n_nets - 1 do
    let name = Netlist.net_name nl n in
    let flag d = net_flagged.(n) <- true; emit d in
    if refs n = 0 then
      emit (D.warning ~rule:"erc.unused-net" ~loc:name "declared net is never referenced")
    else if drives.(n) = 0 && senses.(n) > 0 then
      flag
        (D.error ~rule:"erc.floating-gate" ~loc:name
           (Printf.sprintf "net is only sensed (%d gate/control terminals); nothing sets its potential"
              senses.(n)))
    else if drives.(n) = 0 then
      flag
        (D.error ~rule:"erc.floating-bulk" ~loc:name
           (Printf.sprintf "net ties %d MOS bulk(s) but connects to nothing else" bodies.(n)))
    else if refs n = 1 then
      flag (D.error ~rule:"erc.dangling-net" ~loc:name "net has a single terminal; a wire to nowhere")
  done;
  (* DC path to ground: resistors, voltage sources and MOS channels conduct
     at DC; capacitors, current sources and VCCS outputs do not *)
  let parent = Array.init n_nets (fun i -> i) in
  List.iter
    (fun e ->
      let link a b = if in_range a n_nets && in_range b n_nets then union parent a b in
      match e with
      | Netlist.Resistor { a; b; _ } -> link a b
      | Netlist.Vsource { p; n; _ } -> link p n
      | Netlist.Mos m -> link m.Netlist.drain m.Netlist.source
      | Netlist.Capacitor _ | Netlist.Isource _ | Netlist.Vccs _ -> ())
    elements;
  let gnd_root = find parent Netlist.gnd in
  for n = 1 to n_nets - 1 do
    if refs n > 0 && (not net_flagged.(n)) && find parent n <> gnd_root then
      emit
        (D.error ~rule:"erc.no-dc-path" ~loc:(Netlist.net_name nl n)
           "no DC path to ground (only capacitors, current sources or controlled sources reach this net)")
  done;
  (* element-level value and source sanity *)
  let geometry name what v =
    if v <= 0.0 then
      emit
        (D.error ~rule:"erc.nonpositive-value" ~loc:name
           (Printf.sprintf "%s = %g must be positive" what v))
    else if v < 50e-9 || v > 10e-3 then
      emit
        (D.warning ~rule:"erc.suspicious-value" ~loc:name
           (Printf.sprintf "%s = %g m is outside the plausible 50 nm .. 10 mm range" what v))
  in
  let vsource_spans = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match e with
      | Netlist.Mos m ->
        geometry m.Netlist.m_name "W" m.Netlist.w;
        geometry m.Netlist.m_name "L" m.Netlist.l
      | Netlist.Resistor { r_name; ohms; _ } ->
        if ohms <= 0.0 then
          emit
            (D.error ~rule:"erc.nonpositive-value" ~loc:r_name
               (Printf.sprintf "R = %g ohm must be positive" ohms))
        else if ohms < 1e-3 || ohms > 1e12 then
          emit
            (D.warning ~rule:"erc.suspicious-value" ~loc:r_name
               (Printf.sprintf "R = %g ohm is outside the plausible 1 mohm .. 1 Tohm range" ohms))
      | Netlist.Capacitor { c_name; farads; _ } ->
        if farads <= 0.0 then
          emit
            (D.error ~rule:"erc.nonpositive-value" ~loc:c_name
               (Printf.sprintf "C = %g F must be positive" farads))
        else if farads < 1e-18 || farads > 1e-3 then
          emit
            (D.warning ~rule:"erc.suspicious-value" ~loc:c_name
               (Printf.sprintf "C = %g F is outside the plausible 1 aF .. 1 mF range" farads))
      | Netlist.Vsource { v_name; p; n; _ } ->
        if p = n then
          emit
            (D.error ~rule:"erc.shorted-vsource" ~loc:v_name
               (Printf.sprintf "both terminals on net %s" (Netlist.net_name nl p)))
        else begin
          let span = (min p n, max p n) in
          match Hashtbl.find_opt vsource_spans span with
          | Some first ->
            emit
              (D.error ~rule:"erc.parallel-vsources" ~loc:(first ^ "," ^ v_name)
                 (Printf.sprintf "two ideal voltage sources across nets %s-%s"
                    (Netlist.net_name nl (fst span)) (Netlist.net_name nl (snd span))))
          | None -> Hashtbl.replace vsource_spans span v_name
        end
      | Netlist.Isource _ | Netlist.Vccs _ -> ())
    elements;
  List.rev !diags
