(** Genetic search over fixed-length real vectors and bitstrings.

    The bitstring form implements topology selection in the optimization loop
    as in DARWIN [28] and the mixed boolean formulations of [26]: genes are
    topology choices, fitness is the sized circuit's merit. *)

type options = {
  population : int;
  generations : int;
  crossover_rate : float;
  mutation_rate : float;
  elite : int;  (** unconditionally surviving top individuals *)
}

val default_options : options

val optimize_real :
  ?options:options ->
  ?jobs:int ->
  rng:Mixsyn_util.Rng.t ->
  lower:float array ->
  upper:float array ->
  fitness:(float array -> float) ->
  unit ->
  float array * float
(** Maximises [fitness] over the box; returns the best individual.

    Population fitness evaluates on the {!Mixsyn_util.Pool} ([jobs]
    defaults to [Pool.default_jobs ()]); genetic operators stay on the
    calling domain, so the run is deterministic at any job count as long
    as [fitness] is pure. *)

val optimize_bits :
  ?options:options ->
  ?jobs:int ->
  rng:Mixsyn_util.Rng.t ->
  length:int ->
  fitness:(bool array -> float) ->
  unit ->
  bool array * float
(** Same evaluation and determinism contract as {!optimize_real}. *)
