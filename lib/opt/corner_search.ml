module Tech = Mixsyn_circuit.Tech

type box = {
  vdd_rel : float * float;
  temp_delta : float * float;
  vth_shift : float * float;
  kp_rel : float * float;
}

let default_box =
  { vdd_rel = (-0.1, 0.1);
    temp_delta = (-60.0, 125.0);
    vth_shift = (-0.05, 0.05);
    kp_rel = (-0.1, 0.1) }

let corner_of_point name = function
  | [| d_vdd; d_temp; d_vth; d_kp |] -> { Tech.corner_name = name; d_vdd; d_temp; d_vth; d_kp }
  | _ -> invalid_arg "corner_of_point: expected 4 coordinates"

(* a 17-vertex sweep over a cheap violation function finishes in a few
   milliseconds — let the pool skip the fan-out when it learns that *)
let sweep_grain = Mixsyn_util.Pool.grain "corner.sweep"

let worst_corner ?(box = default_box) ?(refine = true) ?jobs ~violation () =
  (* the 2^4 vertices plus the centre *)
  let lo = [| fst box.vdd_rel; fst box.temp_delta; fst box.vth_shift; fst box.kp_rel |] in
  let hi = [| snd box.vdd_rel; snd box.temp_delta; snd box.vth_shift; snd box.kp_rel |] in
  let vertices =
    let pick mask i = if mask land (1 lsl i) <> 0 then hi.(i) else lo.(i) in
    Array.append
      (Array.init 16 (fun mask -> Array.init 4 (pick mask)))
      [| Array.init 4 (fun i -> 0.5 *. (lo.(i) +. hi.(i))) |]
  in
  (* the vertex sweep is embarrassingly parallel; the reduction below runs
     in vertex order with a strict [>], so the chosen vertex is the same at
     any job count *)
  let values =
    Mixsyn_util.Pool.parallel_map ?jobs ~grain:sweep_grain
      (fun point -> violation (corner_of_point "search" point))
      vertices
  in
  let evals = ref (Array.length vertices) in
  let best_point = ref (Array.make 4 0.0) and best_violation = ref neg_infinity in
  Array.iteri
    (fun i v ->
      if v > !best_violation then begin
        best_violation := v;
        best_point := vertices.(i)
      end)
    values;
  let point, value =
    if refine && !best_violation > 0.0 then begin
      let negated x =
        incr evals;
        -.violation (corner_of_point "search" x)
      in
      let options = { Nelder_mead.max_evals = 60; tolerance = 1e-9 } in
      let x, fx, _ = Nelder_mead.minimize ~options ~lower:lo ~upper:hi ~f:negated !best_point in
      if -.fx > !best_violation then (x, -.fx) else (!best_point, !best_violation)
    end
    else (!best_point, !best_violation)
  in
  (corner_of_point "worst-case" point, value, !evals)
