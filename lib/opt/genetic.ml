module Rng = Mixsyn_util.Rng

type options = {
  population : int;
  generations : int;
  crossover_rate : float;
  mutation_rate : float;
  elite : int;
}

let default_options =
  { population = 40; generations = 60; crossover_rate = 0.8; mutation_rate = 0.08; elite = 2 }

(* Generic machinery over a representation given by (random, crossover,
   mutate). Tournament selection of size 2.

   Fitness evaluation — the dominant cost when the fitness sizes a circuit
   — fans out over the domain pool; scores land in population order, so
   selection sees exactly what a sequential run would.  Genetic operators
   stay on the calling domain, drawing from [rng] in a fixed order, which
   keeps the whole run deterministic at any job count (provided [fitness]
   is pure). *)
let run options ?jobs rng ~random_individual ~crossover ~mutate ~fitness =
  let pop = Array.init options.population (fun _ -> random_individual ()) in
  let scores = Mixsyn_util.Pool.parallel_map ?jobs fitness pop in
  let best = ref pop.(0) and best_fit = ref scores.(0) in
  let update_best () =
    Array.iteri
      (fun i s ->
        if s > !best_fit then begin
          best_fit := s;
          best := pop.(i)
        end)
      scores
  in
  update_best ();
  let tournament () =
    let a = Rng.int rng options.population and b = Rng.int rng options.population in
    if scores.(a) >= scores.(b) then pop.(a) else pop.(b)
  in
  for _gen = 1 to options.generations do
    (* rank for elitism *)
    let order = Array.init options.population (fun i -> i) in
    Array.sort (fun i j -> compare scores.(j) scores.(i)) order;
    let next = Array.make options.population pop.(0) in
    for e = 0 to options.elite - 1 do
      next.(e) <- pop.(order.(e))
    done;
    for slot = options.elite to options.population - 1 do
      let parent_a = tournament () and parent_b = tournament () in
      let child =
        if Rng.float rng 1.0 < options.crossover_rate then crossover rng parent_a parent_b
        else parent_a
      in
      next.(slot) <- mutate rng child
    done;
    Array.blit next 0 pop 0 options.population;
    let rescored = Mixsyn_util.Pool.parallel_map ?jobs fitness pop in
    Array.blit rescored 0 scores 0 options.population;
    update_best ()
  done;
  (!best, !best_fit)

let optimize_real ?(options = default_options) ?jobs ~rng ~lower ~upper ~fitness () =
  let n = Array.length lower in
  let random_individual () =
    Array.init n (fun i -> Rng.uniform rng lower.(i) upper.(i))
  in
  let crossover rng a b =
    (* blend crossover *)
    Array.init n (fun i ->
        let t = Rng.float rng 1.0 in
        (t *. a.(i)) +. ((1.0 -. t) *. b.(i)))
  in
  let mutate rng x =
    Array.mapi
      (fun i v ->
        if Rng.float rng 1.0 < options.mutation_rate then
          let sigma = 0.1 *. (upper.(i) -. lower.(i)) in
          Float.min upper.(i) (Float.max lower.(i) (Rng.gaussian rng ~mean:v ~sigma))
        else v)
      x
  in
  run options ?jobs rng ~random_individual ~crossover ~mutate ~fitness

let optimize_bits ?(options = default_options) ?jobs ~rng ~length ~fitness () =
  let random_individual () = Array.init length (fun _ -> Rng.bool rng) in
  let crossover rng a b =
    (* single point *)
    let point = Rng.int rng length in
    Array.init length (fun i -> if i < point then a.(i) else b.(i))
  in
  let mutate rng x =
    Array.map (fun b -> if Rng.float rng 1.0 < options.mutation_rate then not b else b) x
  in
  run options ?jobs rng ~random_individual ~crossover ~mutate ~fitness
