type schedule = {
  t_start : float;
  t_end : float;
  cooling : float;
  moves_per_stage : int;
}

let default_schedule = { t_start = 10.0; t_end = 1e-4; cooling = 0.93; moves_per_stage = 200 }

let auto_schedule ?(moves_per_stage = 200) ~cost_scale () =
  (* a non-positive cost_scale would silently produce a schedule that
     [minimize] rejects (or never cools); fail here, naming the input *)
  if not (cost_scale > 0.0) then
    invalid_arg
      (Printf.sprintf "Anneal.auto_schedule: cost_scale %g not positive" cost_scale);
  { t_start = 3.0 *. cost_scale; t_end = 1e-5 *. cost_scale; cooling = 0.93; moves_per_stage }

type 'a problem = {
  initial : 'a;
  cost : 'a -> float;
  neighbor : Mixsyn_util.Rng.t -> temp01:float -> 'a -> 'a;
}

type 'a outcome = {
  best : 'a;
  best_cost : float;
  accepted : int;
  proposed : int;
  stages : int;
}

(* a geometric schedule with [cooling >= 1] or [t_end <= 0] never crosses
   its stopping temperature; reject those up front and cap the stage count
   as a backstop against pathological-but-valid schedules *)
let max_stages = 100_000

let validate_schedule where schedule =
  if not (schedule.cooling > 0.0 && schedule.cooling < 1.0) then
    invalid_arg (Printf.sprintf "%s: cooling %g outside (0, 1)" where schedule.cooling);
  if schedule.t_end <= 0.0 then
    invalid_arg (Printf.sprintf "%s: t_end %g not positive" where schedule.t_end);
  if schedule.t_start <= 0.0 then
    invalid_arg (Printf.sprintf "%s: t_start %g not positive" where schedule.t_start)

let minimize ?(schedule = default_schedule) ~rng problem =
  validate_schedule "Anneal.minimize" schedule;
  let accepted = ref 0 and proposed = ref 0 and stages = ref 0 in
  let current = ref problem.initial in
  let current_cost = ref (problem.cost problem.initial) in
  let best = ref !current and best_cost = ref !current_cost in
  let log_span = log (schedule.t_start /. schedule.t_end) in
  let temp = ref schedule.t_start in
  while !temp > schedule.t_end && !stages < max_stages do
    (* cooperative timeout point: a batch job past its deadline stops here
       rather than finishing the whole schedule *)
    Mixsyn_util.Cancel.guard ();
    incr stages;
    let temp01 =
      if log_span <= 0.0 then 0.0 else log (!temp /. schedule.t_end) /. log_span
    in
    for _ = 1 to schedule.moves_per_stage do
      incr proposed;
      let candidate = problem.neighbor rng ~temp01 !current in
      let cost = problem.cost candidate in
      let delta = cost -. !current_cost in
      let accept =
        delta <= 0.0 || Mixsyn_util.Rng.float rng 1.0 < exp (-.delta /. !temp)
      in
      if accept then begin
        incr accepted;
        current := candidate;
        current_cost := cost;
        if cost < !best_cost then begin
          best := candidate;
          best_cost := cost
        end
      end
    done;
    temp := !temp *. schedule.cooling
  done;
  Mixsyn_util.Telemetry.count "anneal.runs";
  Mixsyn_util.Telemetry.add "anneal.proposed" !proposed;
  Mixsyn_util.Telemetry.add "anneal.accepted" !accepted;
  Mixsyn_util.Telemetry.add "anneal.stages" !stages;
  { best = !best; best_cost = !best_cost; accepted = !accepted; proposed = !proposed; stages = !stages }

(* independent restarts evaluated on the domain pool.  Each restart gets
   its own split RNG stream, so the set of chains is a function of [rng]
   alone; the best-of reduction runs in restart order with a strict [<],
   so ties resolve to the lowest restart index — together this makes the
   outcome identical at any job count. *)
let minimize_multistart ?schedule ?jobs ~restarts ~rng problem =
  if restarts < 1 then
    invalid_arg (Printf.sprintf "Anneal.minimize_multistart: %d restarts" restarts);
  if restarts = 1 then minimize ?schedule ~rng problem
  else begin
    Mixsyn_util.Telemetry.count "anneal.multistarts";
    let rngs = Mixsyn_util.Rng.split_n rng restarts in
    let outcomes =
      (* a whole chain is the unit of work: chains are few and expensive,
         so band them one per worker claim *)
      Mixsyn_util.Pool.parallel_map ?jobs ~chunk:1
        (fun rng -> minimize ?schedule ~rng problem)
        rngs
    in
    Array.fold_left
      (fun acc o ->
        { best = (if o.best_cost < acc.best_cost then o.best else acc.best);
          best_cost = Float.min acc.best_cost o.best_cost;
          accepted = acc.accepted + o.accepted;
          proposed = acc.proposed + o.proposed;
          stages = acc.stages + o.stages })
      outcomes.(0)
      (Array.sub outcomes 1 (restarts - 1))
  end

(* ---- move-based annealing over mutable state -------------------------- *)

(* The pure [problem] API clones the whole state on every proposal, which
   for placement means rebuilding all geometry per move — the allocation
   storm that serializes OCaml 5 domains.  A [moves] problem instead owns
   ONE mutable state per chain: [propose] applies a tentative move in
   place and returns its exact weighted cost delta, and the annealer then
   [commit]s or [revert]s it.  [remember]/[recall] snapshot and restore
   the best state seen, so the chain can wander after its minimum. *)
type 's moves = {
  create : unit -> 's;
  full_cost : 's -> float;
  propose : 's -> Mixsyn_util.Rng.t -> temp01:float -> float;
  commit : 's -> unit;
  revert : 's -> unit;
  remember : 's -> unit;
  recall : 's -> unit;
}

let minimize_moves ?(schedule = default_schedule) ~rng (m : 's moves) =
  validate_schedule "Anneal.minimize_moves" schedule;
  let accepted = ref 0 and proposed = ref 0 and stages = ref 0 in
  let s = m.create () in
  let current_cost = ref (m.full_cost s) in
  let best_cost = ref !current_cost in
  m.remember s;
  let log_span = log (schedule.t_start /. schedule.t_end) in
  let temp = ref schedule.t_start in
  while !temp > schedule.t_end && !stages < max_stages do
    (* cooperative timeout point, as in [minimize] *)
    Mixsyn_util.Cancel.guard ();
    incr stages;
    (* the running cost accumulates per-move deltas; resync it against the
       exact evaluator once per stage so float drift stays bounded by a
       single stage's worth of moves *)
    current_cost := m.full_cost s;
    let temp01 =
      if log_span <= 0.0 then 0.0 else log (!temp /. schedule.t_end) /. log_span
    in
    for _ = 1 to schedule.moves_per_stage do
      incr proposed;
      let delta = m.propose s rng ~temp01 in
      (* same RNG consumption pattern as [minimize]: the acceptance draw
         happens only when delta > 0, via the short-circuit *)
      let accept =
        delta <= 0.0 || Mixsyn_util.Rng.float rng 1.0 < exp (-.delta /. !temp)
      in
      if accept then begin
        incr accepted;
        m.commit s;
        current_cost := !current_cost +. delta;
        if !current_cost < !best_cost then begin
          best_cost := !current_cost;
          m.remember s
        end
      end
      else m.revert s
    done;
    temp := !temp *. schedule.cooling
  done;
  m.recall s;
  (* the recorded [best_cost] carries accumulated-delta rounding; report
     the exact cost of the restored best state instead *)
  let exact_best = m.full_cost s in
  Mixsyn_util.Telemetry.count "anneal.runs";
  Mixsyn_util.Telemetry.add "anneal.proposed" !proposed;
  Mixsyn_util.Telemetry.add "anneal.accepted" !accepted;
  Mixsyn_util.Telemetry.add "anneal.stages" !stages;
  { best = s; best_cost = exact_best; accepted = !accepted; proposed = !proposed;
    stages = !stages }

(* same determinism contract as [minimize_multistart]: per-chain split RNG
   streams, chunk 1, best-of reduction in restart order with strict [<] —
   the outcome is a function of [rng] and [restarts] alone, never [jobs].
   Each chain calls [m.create] on its own domain, so chains share nothing
   mutable. *)
let minimize_moves_multistart ?schedule ?jobs ~restarts ~rng (m : 's moves) =
  if restarts < 1 then
    invalid_arg (Printf.sprintf "Anneal.minimize_moves_multistart: %d restarts" restarts);
  if restarts = 1 then minimize_moves ?schedule ~rng m
  else begin
    Mixsyn_util.Telemetry.count "anneal.multistarts";
    let rngs = Mixsyn_util.Rng.split_n rng restarts in
    let outcomes =
      Mixsyn_util.Pool.parallel_map ?jobs ~chunk:1
        (fun rng -> minimize_moves ?schedule ~rng m)
        rngs
    in
    Array.fold_left
      (fun acc o ->
        { best = (if o.best_cost < acc.best_cost then o.best else acc.best);
          best_cost = Float.min acc.best_cost o.best_cost;
          accepted = acc.accepted + o.accepted;
          proposed = acc.proposed + o.proposed;
          stages = acc.stages + o.stages })
      outcomes.(0)
      (Array.sub outcomes 1 (restarts - 1))
  end
