type schedule = {
  t_start : float;
  t_end : float;
  cooling : float;
  moves_per_stage : int;
}

let default_schedule = { t_start = 10.0; t_end = 1e-4; cooling = 0.93; moves_per_stage = 200 }

let auto_schedule ?(moves_per_stage = 200) ~cost_scale () =
  (* a non-positive cost_scale would silently produce a schedule that
     [minimize] rejects (or never cools); fail here, naming the input *)
  if not (cost_scale > 0.0) then
    invalid_arg
      (Printf.sprintf "Anneal.auto_schedule: cost_scale %g not positive" cost_scale);
  { t_start = 3.0 *. cost_scale; t_end = 1e-5 *. cost_scale; cooling = 0.93; moves_per_stage }

type 'a problem = {
  initial : 'a;
  cost : 'a -> float;
  neighbor : Mixsyn_util.Rng.t -> temp01:float -> 'a -> 'a;
}

type 'a outcome = {
  best : 'a;
  best_cost : float;
  accepted : int;
  proposed : int;
  stages : int;
}

(* a geometric schedule with [cooling >= 1] or [t_end <= 0] never crosses
   its stopping temperature; reject those up front and cap the stage count
   as a backstop against pathological-but-valid schedules *)
let max_stages = 100_000

let minimize ?(schedule = default_schedule) ~rng problem =
  if not (schedule.cooling > 0.0 && schedule.cooling < 1.0) then
    invalid_arg
      (Printf.sprintf "Anneal.minimize: cooling %g outside (0, 1)" schedule.cooling);
  if schedule.t_end <= 0.0 then
    invalid_arg (Printf.sprintf "Anneal.minimize: t_end %g not positive" schedule.t_end);
  if schedule.t_start <= 0.0 then
    invalid_arg (Printf.sprintf "Anneal.minimize: t_start %g not positive" schedule.t_start);
  let accepted = ref 0 and proposed = ref 0 and stages = ref 0 in
  let current = ref problem.initial in
  let current_cost = ref (problem.cost problem.initial) in
  let best = ref !current and best_cost = ref !current_cost in
  let log_span = log (schedule.t_start /. schedule.t_end) in
  let temp = ref schedule.t_start in
  while !temp > schedule.t_end && !stages < max_stages do
    (* cooperative timeout point: a batch job past its deadline stops here
       rather than finishing the whole schedule *)
    Mixsyn_util.Cancel.guard ();
    incr stages;
    let temp01 =
      if log_span <= 0.0 then 0.0 else log (!temp /. schedule.t_end) /. log_span
    in
    for _ = 1 to schedule.moves_per_stage do
      incr proposed;
      let candidate = problem.neighbor rng ~temp01 !current in
      let cost = problem.cost candidate in
      let delta = cost -. !current_cost in
      let accept =
        delta <= 0.0 || Mixsyn_util.Rng.float rng 1.0 < exp (-.delta /. !temp)
      in
      if accept then begin
        incr accepted;
        current := candidate;
        current_cost := cost;
        if cost < !best_cost then begin
          best := candidate;
          best_cost := cost
        end
      end
    done;
    temp := !temp *. schedule.cooling
  done;
  Mixsyn_util.Telemetry.count "anneal.runs";
  Mixsyn_util.Telemetry.add "anneal.proposed" !proposed;
  Mixsyn_util.Telemetry.add "anneal.accepted" !accepted;
  Mixsyn_util.Telemetry.add "anneal.stages" !stages;
  { best = !best; best_cost = !best_cost; accepted = !accepted; proposed = !proposed; stages = !stages }

(* independent restarts evaluated on the domain pool.  Each restart gets
   its own split RNG stream, so the set of chains is a function of [rng]
   alone; the best-of reduction runs in restart order with a strict [<],
   so ties resolve to the lowest restart index — together this makes the
   outcome identical at any job count. *)
let minimize_multistart ?schedule ?jobs ~restarts ~rng problem =
  if restarts < 1 then
    invalid_arg (Printf.sprintf "Anneal.minimize_multistart: %d restarts" restarts);
  if restarts = 1 then minimize ?schedule ~rng problem
  else begin
    Mixsyn_util.Telemetry.count "anneal.multistarts";
    let rngs = Mixsyn_util.Rng.split_n rng restarts in
    let outcomes =
      (* a whole chain is the unit of work: chains are few and expensive,
         so band them one per worker claim *)
      Mixsyn_util.Pool.parallel_map ?jobs ~chunk:1
        (fun rng -> minimize ?schedule ~rng problem)
        rngs
    in
    Array.fold_left
      (fun acc o ->
        { best = (if o.best_cost < acc.best_cost then o.best else acc.best);
          best_cost = Float.min acc.best_cost o.best_cost;
          accepted = acc.accepted + o.accepted;
          proposed = acc.proposed + o.proposed;
          stages = acc.stages + o.stages })
      outcomes.(0)
      (Array.sub outcomes 1 (restarts - 1))
  end
