type options = {
  max_evals : int;
  tolerance : float;
}

let default_options = { max_evals = 2000; tolerance = 1e-10 }

let minimize ?(options = default_options) ~lower ~upper ~f x0 =
  let n = Array.length x0 in
  let evals = ref 0 in
  let clamp x =
    Array.mapi (fun i v -> Float.min upper.(i) (Float.max lower.(i) v)) x
  in
  let eval x =
    incr evals;
    f x
  in
  (* initial simplex: x0 plus a 5 % of-range step along each axis *)
  let vertex i =
    if i = 0 then clamp x0
    else begin
      let x = Array.copy x0 in
      let j = i - 1 in
      let step = 0.05 *. (upper.(j) -. lower.(j)) in
      x.(j) <- x.(j) +. (if x.(j) +. step <= upper.(j) then step else -.step);
      clamp x
    end
  in
  let simplex = Array.init (n + 1) (fun i -> let v = vertex i in (v, eval v)) in
  let sort () = Array.sort (fun (_, a) (_, b) -> compare a b) simplex in
  sort ();
  let centroid () =
    let c = Array.make n 0.0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        c.(j) <- c.(j) +. (fst simplex.(i)).(j)
      done
    done;
    Array.map (fun v -> v /. float_of_int n) c
  in
  let combine a alpha b beta =
    Array.init n (fun i -> (alpha *. a.(i)) +. (beta *. b.(i)))
  in
  let rec loop () =
    sort ();
    let _, f_best = simplex.(0) and _, f_worst = simplex.(n) in
    if !evals >= options.max_evals || f_worst -. f_best < options.tolerance then ()
    else begin
      let c = centroid () in
      let xw, fw = simplex.(n) in
      let reflect = clamp (combine c 2.0 xw (-1.0)) in
      let fr = eval reflect in
      if fr < f_best then begin
        let expand = clamp (combine c 3.0 xw (-2.0)) in
        let fe = eval expand in
        simplex.(n) <- (if fe < fr then (expand, fe) else (reflect, fr))
      end
      else if fr < snd simplex.(n - 1) then simplex.(n) <- (reflect, fr)
      else begin
        let contract = clamp (combine c 0.5 xw 0.5) in
        let fc = eval contract in
        if fc < fw then simplex.(n) <- (contract, fc)
        else begin
          (* shrink toward the best vertex *)
          let xb = fst simplex.(0) in
          for i = 1 to n do
            let xi = fst simplex.(i) in
            let shrunk = clamp (combine xb 0.5 xi 0.5) in
            simplex.(i) <- (shrunk, eval shrunk)
          done
        end
      end;
      loop ()
    end
  in
  loop ();
  sort ();
  Mixsyn_util.Telemetry.count "nelder_mead.runs";
  Mixsyn_util.Telemetry.add "nelder_mead.evaluations" !evals;
  let x_best, f_best = simplex.(0) in
  (x_best, f_best, !evals)
