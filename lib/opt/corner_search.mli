(** Worst-case corner search (the manufacturability extension of ASTRX/OBLX,
    [31] in the paper).

    The paper casts robust synthesis as nonlinear infinite programming: find
    the environment/process corner at which the evolving circuit violates its
    specifications the most, and optimize against that corner.  We search the
    4-dimensional disturbance box (relative Vdd, temperature delta, Vth
    shift, relative Kp) with the deterministic extreme-corner sweep followed
    by a Nelder–Mead refinement inside the box. *)

type box = {
  vdd_rel : float * float;   (** e.g. (-0.1, 0.1) *)
  temp_delta : float * float;
  vth_shift : float * float;
  kp_rel : float * float;
}

val default_box : box

val corner_of_point : string -> float array -> Mixsyn_circuit.Tech.corner
(** [corner_of_point name [|dvdd; dtemp; dvth; dkp|]]. *)

val worst_corner :
  ?box:box ->
  ?refine:bool ->
  ?jobs:int ->
  violation:(Mixsyn_circuit.Tech.corner -> float) ->
  unit ->
  Mixsyn_circuit.Tech.corner * float * int
(** Returns (worst corner, its violation, evaluation count).  [violation]
    must be >= 0 with 0 meaning all specifications met; the search maximises
    it.  With [refine] (default true) the best vertex is polished by
    Nelder–Mead inside the box.

    The 17-point vertex sweep evaluates on the {!Mixsyn_util.Pool} ([jobs]
    defaults to [Pool.default_jobs ()]; the refinement stage is inherently
    sequential).  [violation] must be pure — it runs concurrently, and
    determinism across job counts relies on it returning the same value
    for the same corner. *)
