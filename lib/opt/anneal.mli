(** Generic simulated annealing.

    The workhorse of both the frontend (OPTIMAN, FRIDGE, OBLX sizing) and the
    backend (KOAN placement, WRIGHT floorplanning), so it is polymorphic in
    the state type and fully deterministic given the RNG. *)

type schedule = {
  t_start : float;       (** initial temperature (cost units) *)
  t_end : float;         (** stop when the temperature drops below this *)
  cooling : float;       (** geometric factor per stage, e.g. 0.93 *)
  moves_per_stage : int; (** proposals at each temperature *)
}

val default_schedule : schedule

val auto_schedule : ?moves_per_stage:int -> cost_scale:float -> unit -> schedule
(** Schedule whose initial temperature accepts almost any move of magnitude
    [cost_scale] and whose final temperature freezes them.
    @raise Invalid_argument when [cost_scale] is not strictly positive
    (including [nan]). *)

type 'a problem = {
  initial : 'a;
  cost : 'a -> float;
  neighbor : Mixsyn_util.Rng.t -> temp01:float -> 'a -> 'a;
      (** propose a move; [temp01] falls 1 -> 0 over the run, for
          range-limited moves near freeze-out *)
}

type 'a outcome = {
  best : 'a;
  best_cost : float;
  accepted : int;
  proposed : int;
  stages : int;
}

val minimize :
  ?schedule:schedule -> rng:Mixsyn_util.Rng.t -> 'a problem -> 'a outcome
(** Reports move statistics to {!Mixsyn_util.Telemetry} under
    ["anneal.proposed"] / ["anneal.accepted"] / ["anneal.stages"].  The
    stage count is additionally capped at an internal backstop so a nearly
    flat (yet valid) schedule still terminates.
    @raise Invalid_argument when the schedule cannot terminate:
    [cooling] outside [(0, 1)], or [t_start]/[t_end] not positive. *)

val minimize_multistart :
  ?schedule:schedule ->
  ?jobs:int ->
  restarts:int ->
  rng:Mixsyn_util.Rng.t ->
  'a problem ->
  'a outcome
(** [restarts] independent chains, each on its own {!Mixsyn_util.Rng.split_n}
    stream, evaluated concurrently on the {!Mixsyn_util.Pool} ([jobs]
    defaults to [Pool.default_jobs ()]); chains are few and expensive, so
    each is claimed as its own unit of work ([chunk = 1]).  Returns the lowest-cost chain's
    best (ties to the lowest restart index) with move statistics summed
    over all chains; the outcome depends only on [rng] and [restarts],
    never on [jobs].  [restarts = 1] is exactly [minimize ~rng] — the
    single chain consumes [rng] directly, without splitting.
    @raise Invalid_argument when [restarts < 1] or the schedule is
    divergent. *)

(** {2 Move-based annealing over mutable state}

    The pure {!problem} API clones the whole state per proposal — fine for
    parameter vectors, ruinous for placement, where every clone rebuilds
    geometry and the resulting allocation storm makes OCaml 5's
    stop-the-world minor collections serialize all domains.  A {!moves}
    problem owns {e one} mutable state per chain and evaluates each
    proposal as an O(move) cost {e delta} instead. *)

type 's moves = {
  create : unit -> 's;
      (** fresh chain state at the initial configuration; called once per
          chain, on the domain that runs the chain *)
  full_cost : 's -> float;
      (** exact cost of the current configuration (used at chain start,
          once per stage to resync accumulated deltas, and for the final
          reported cost) *)
  propose : 's -> Mixsyn_util.Rng.t -> temp01:float -> float;
      (** apply one tentative move in place and return its exact weighted
          cost delta; the annealer follows up with [commit] or [revert] *)
  commit : 's -> unit;  (** keep the tentative move *)
  revert : 's -> unit;  (** undo it exactly *)
  remember : 's -> unit;  (** snapshot the current configuration as best *)
  recall : 's -> unit;  (** restore the last remembered snapshot *)
}

val minimize_moves :
  ?schedule:schedule -> rng:Mixsyn_util.Rng.t -> 's moves -> 's outcome
(** One chain over one mutable state.  The RNG draw sequence matches
    {!minimize} exactly (one acceptance draw, only when [delta > 0]), the
    running cost is resynced with [full_cost] at every stage so
    accumulated-delta float drift never exceeds one stage, and [best_cost]
    is the exact [full_cost] of the restored best state.  [outcome.best]
    is the chain's state after [recall] — mutable, owned by the caller.
    Reports the same telemetry counters as {!minimize}.
    @raise Invalid_argument for divergent schedules, as {!minimize}. *)

val minimize_moves_multistart :
  ?schedule:schedule ->
  ?jobs:int ->
  restarts:int ->
  rng:Mixsyn_util.Rng.t ->
  's moves ->
  's outcome
(** Independent chains on the pool, one {!moves.create}d state per chain
    (nothing mutable is shared), with the same split-stream/chunk-1/
    restart-order reduction as {!minimize_multistart} — the outcome
    depends only on [rng] and [restarts], never on [jobs].
    @raise Invalid_argument when [restarts < 1] or the schedule is
    divergent. *)
