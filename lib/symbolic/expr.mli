(** Sparse multivariate polynomials in named circuit symbols and the Laplace
    variable [s] — the term representation of the ISAAC symbolic simulator.

    A term is [coeff * s^s_pow * prod symbols^powers]; a polynomial is a
    normalised term list (sorted, zero-free, merged). *)

type mono = (string * int) list
(** Symbol powers, sorted by name, powers >= 1. *)

type term = { coeff : float; mono : mono; s_pow : int }

type t = term list

val zero : t
val one : t
val const : float -> t
val sym : string -> t
val s : t
(** The Laplace variable. *)

val s_times : int -> t -> t
(** Multiply by s^k. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val scale : float -> t -> t
val is_zero : t -> bool
val term_count : t -> int

val degree_s : t -> int
(** Highest power of [s]. *)

val by_s_power : t -> (int * t) list
(** Split into (s-power, s-free polynomial) groups, ascending. *)

val eval_mono : (string -> float) -> term -> float
(** Numeric value of a term's coefficient times its symbol product ([s]
    excluded). *)

val eval : (string -> float) -> t -> Complex.t -> Complex.t
(** Substitute symbol values and a complex [s]. *)

val eval_s_coeffs : (string -> float) -> t -> float array
(** Numeric coefficient of each s-power, index = power. *)

val symbols : t -> string list
(** Sorted list of the distinct symbols appearing in the polynomial ([s]
    excluded). *)

val eval_mono_interval :
  (string -> Mixsyn_util.Interval.t) -> term -> Mixsyn_util.Interval.t
(** Interval analogue of {!eval_mono}: for any symbol valuation [v] with
    [v name] in [value name] for every symbol, [eval_mono v t] lies in the
    result. *)

val eval_s_coeffs_interval :
  (string -> Mixsyn_util.Interval.t) -> t -> Mixsyn_util.Interval.t array
(** Interval analogue of {!eval_s_coeffs}, with the same enclosure
    guarantee per coefficient. *)

val pp : Format.formatter -> t -> unit
