module Netlist = Mixsyn_circuit.Netlist
module Mna = Mixsyn_engine.Mna
module Mos_model = Mixsyn_engine.Mos_model

type rational = {
  num : Expr.t;
  den : Expr.t;
}

(* Build the symbolic MNA system: matrix of Expr and symbolic RHS. *)
let build_symbolic nl =
  let layout = Mna.layout_of nl in
  let n = layout.Mna.size in
  let a = Array.make_matrix n n Expr.zero in
  let b = Array.make n Expr.zero in
  let stamp i j e = if i >= 0 && j >= 0 then a.(i).(j) <- Expr.add a.(i).(j) e in
  let rhs i e = if i >= 0 then b.(i) <- Expr.add b.(i) e in
  let idx = Mna.node_index in
  let branch = ref (layout.Mna.nets - 1) in
  let conductance_stamp na nb e =
    stamp (idx na) (idx na) e;
    stamp (idx nb) (idx nb) e;
    stamp (idx na) (idx nb) (Expr.neg e);
    stamp (idx nb) (idx na) (Expr.neg e)
  in
  let vccs_stamp p nn cp cn e =
    stamp (idx p) (idx cp) e;
    stamp (idx p) (idx cn) (Expr.neg e);
    stamp (idx nn) (idx cp) (Expr.neg e);
    stamp (idx nn) (idx cn) e
  in
  let each = function
    | Netlist.Resistor { r_name; a = na; b = nb; _ } ->
      conductance_stamp na nb (Expr.sym ("g_" ^ r_name))
    | Netlist.Capacitor { c_name; a = na; b = nb; _ } ->
      conductance_stamp na nb (Expr.s_times 1 (Expr.sym ("c_" ^ c_name)))
    | Netlist.Vccs { g_name; p; n = nn; cp; cn; _ } ->
      vccs_stamp p nn cp cn (Expr.sym ("gm_" ^ g_name))
    | Netlist.Isource { p; n = nn; ac; _ } ->
      if ac <> 0.0 then begin
        rhs (idx p) (Expr.const ac);
        rhs (idx nn) (Expr.const (-.ac))
      end
    | Netlist.Vsource { ac; p; n = nn; _ } ->
      let row = !branch in
      incr branch;
      stamp (idx p) row Expr.one;
      stamp (idx nn) row (Expr.neg Expr.one);
      stamp row (idx p) Expr.one;
      stamp row (idx nn) (Expr.neg Expr.one);
      if ac <> 0.0 then rhs row (Expr.const ac)
    | Netlist.Mos m ->
      let name = m.Netlist.m_name in
      let d = m.Netlist.drain and g = m.Netlist.gate and s = m.Netlist.source
      and bk = m.Netlist.bulk in
      (* transconductances: current gm*vgs, gmb*vbs into the drain *)
      vccs_stamp d s g s (Expr.sym ("gm_" ^ name));
      vccs_stamp d s bk s (Expr.sym ("gmb_" ^ name));
      conductance_stamp d s (Expr.sym ("gds_" ^ name));
      conductance_stamp g s (Expr.s_times 1 (Expr.sym ("cgs_" ^ name)));
      conductance_stamp g d (Expr.s_times 1 (Expr.sym ("cgd_" ^ name)));
      conductance_stamp d bk (Expr.s_times 1 (Expr.sym ("cdb_" ^ name)));
      conductance_stamp s bk (Expr.s_times 1 (Expr.sym ("csb_" ^ name)))
  in
  List.iter each (Netlist.elements nl);
  (layout, a, b)

let determinant matrix =
  let n = Array.length matrix in
  if n = 0 then Expr.one
  else begin
    let memo : (int, Expr.t) Hashtbl.t = Hashtbl.create 256 in
    (* det of the submatrix using columns [col..n-1] and the rows set in
       [mask]; expansion along column [col] *)
    let rec det col mask =
      if col = n then Expr.one
      else
        match Hashtbl.find_opt memo mask with
        | Some d -> d
        | None ->
          let acc = ref Expr.zero in
          let sign = ref 1.0 in
          for row = 0 to n - 1 do
            if mask land (1 lsl row) <> 0 then begin
              let entry = matrix.(row).(col) in
              if not (Expr.is_zero entry) then begin
                let minor = det (col + 1) (mask lxor (1 lsl row)) in
                let contrib = Expr.mul entry minor in
                acc :=
                  Expr.add !acc (if !sign > 0.0 then contrib else Expr.neg contrib)
              end;
              sign := -. !sign
            end
          done;
          Hashtbl.add memo mask !acc;
          !acc
    in
    det 0 ((1 lsl n) - 1)
  end

let transfer nl ~out =
  let layout, a, b = build_symbolic nl in
  let j = Mna.node_index out in
  assert (j >= 0 && j < layout.Mna.size);
  let den = determinant a in
  let a_substituted =
    Array.mapi (fun i row -> Array.mapi (fun k e -> if k = j then b.(i) else e) row) a
  in
  let num = determinant a_substituted in
  { num; den }

let valuation ?(tech = Mixsyn_circuit.Tech.generic_07um) nl op name =
  match String.index_opt name '_' with
  | None -> raise Not_found
  | Some i ->
    let kind = String.sub name 0 i in
    let dev = String.sub name (i + 1) (String.length name - i - 1) in
    let find_mos () =
      let rec search = function
        | [] -> raise Not_found
        | ((m : Netlist.mos), e) :: rest ->
          if m.Netlist.m_name = dev then (m, e) else search rest
      in
      search op.Mna.mos_evals
    in
    let find_element pred =
      let rec search = function
        | [] -> raise Not_found
        | e :: rest -> (match pred e with Some v -> v | None -> search rest)
      in
      search (Netlist.elements nl)
    in
    (match kind with
     | "gm" ->
       (* VCCS or MOS *)
       (try
          let _, e = find_mos () in
          Float.abs e.Mos_model.gm
        with Not_found ->
          find_element (function
            | Netlist.Vccs { g_name; gm; _ } when g_name = dev -> Some gm
            | Netlist.Vccs _ | Netlist.Mos _ | Netlist.Resistor _ | Netlist.Capacitor _
            | Netlist.Vsource _ | Netlist.Isource _ -> None))
     | "gds" -> let _, e = find_mos () in Float.abs e.Mos_model.gds
     | "gmb" -> let _, e = find_mos () in Float.abs e.Mos_model.gmb
     | "g" ->
       find_element (function
         | Netlist.Resistor { r_name; ohms; _ } when r_name = dev -> Some (1.0 /. ohms)
         | Netlist.Resistor _ | Netlist.Vccs _ | Netlist.Mos _ | Netlist.Capacitor _
         | Netlist.Vsource _ | Netlist.Isource _ -> None)
     | "c" ->
       find_element (function
         | Netlist.Capacitor { c_name; farads; _ } when c_name = dev -> Some farads
         | Netlist.Capacitor _ | Netlist.Resistor _ | Netlist.Vccs _ | Netlist.Mos _
         | Netlist.Vsource _ | Netlist.Isource _ -> None)
     | "cgs" | "cgd" | "cdb" | "csb" ->
       let m, e = find_mos () in
       let caps = Mos_model.capacitances tech m e.Mos_model.region in
       (match kind with
        | "cgs" -> caps.Mos_model.cgs
        | "cgd" -> caps.Mos_model.cgd
        | "cdb" -> caps.Mos_model.cdb
        | _ -> caps.Mos_model.csb)
     | _ -> raise Not_found)

let eval_rational value r sval =
  Complex.div (Expr.eval value r.num sval) (Expr.eval value r.den sval)

let num_den_coeffs value r =
  (Expr.eval_s_coeffs value r.num, Expr.eval_s_coeffs value r.den)

let term_count r = Expr.term_count r.num + Expr.term_count r.den

(* --- certified bounds over symbol ranges ------------------------------- *)

module I = Mixsyn_util.Interval

let symbols r =
  List.sort_uniq compare (Expr.symbols r.num @ Expr.symbols r.den)

let bound_num_den ranges r =
  (Expr.eval_s_coeffs_interval ranges r.num, Expr.eval_s_coeffs_interval ranges r.den)

let coeff_at coeffs k = if k < Array.length coeffs then coeffs.(k) else I.point 0.0

let two_pi = 2.0 *. Float.pi

let bound_dc_gain ranges r =
  let num, den = bound_num_den ranges r in
  I.ediv (coeff_at num 0) (coeff_at den 0)

let bound_gbw ranges r =
  let num, den = bound_num_den ranges r in
  I.ediv (I.abs_ (coeff_at num 0)) (I.mul (I.point two_pi) (I.abs_ (coeff_at den 1)))

let bound_dominant_pole ranges r =
  let _, den = bound_num_den ranges r in
  I.ediv (I.abs_ (coeff_at den 0)) (I.mul (I.point two_pi) (I.abs_ (coeff_at den 1)))

let pp ppf r =
  Format.fprintf ppf "N(s) = %a@\nD(s) = %a" Expr.pp r.num Expr.pp r.den
