type mono = (string * int) list

type term = { coeff : float; mono : mono; s_pow : int }

type t = term list

let compare_mono (a : mono) (b : mono) = compare a b

let compare_term_key t1 t2 =
  match compare t1.s_pow t2.s_pow with
  | 0 -> compare_mono t1.mono t2.mono
  | c -> c

(* merge equal keys, drop zeros, keep sorted *)
let normalize terms =
  let sorted = List.sort compare_term_key terms in
  let rec merge = function
    | [] -> []
    | [ t ] -> if t.coeff = 0.0 then [] else [ t ]
    | t1 :: t2 :: rest ->
      if compare_term_key t1 t2 = 0 then
        merge ({ t1 with coeff = t1.coeff +. t2.coeff } :: rest)
      else if t1.coeff = 0.0 then merge (t2 :: rest)
      else t1 :: merge (t2 :: rest)
  in
  merge sorted

let zero = []
let one = [ { coeff = 1.0; mono = []; s_pow = 0 } ]
let const c = if c = 0.0 then [] else [ { coeff = c; mono = []; s_pow = 0 } ]
let sym name = [ { coeff = 1.0; mono = [ (name, 1) ]; s_pow = 0 } ]
let s = [ { coeff = 1.0; mono = []; s_pow = 1 } ]

let s_times k p = List.map (fun t -> { t with s_pow = t.s_pow + k }) p

let add a b = normalize (a @ b)

let neg a = List.map (fun t -> { t with coeff = -.t.coeff }) a

let sub a b = add a (neg b)

let mul_mono (a : mono) (b : mono) : mono =
  let rec go a b =
    match (a, b) with
    | [], m | m, [] -> m
    | (na, pa) :: ra, (nb, pb) :: rb ->
      if na = nb then (na, pa + pb) :: go ra rb
      else if na < nb then (na, pa) :: go ra b
      else (nb, pb) :: go a rb
  in
  go a b

let mul a b =
  let products =
    List.concat_map
      (fun ta ->
        List.map
          (fun tb ->
            { coeff = ta.coeff *. tb.coeff;
              mono = mul_mono ta.mono tb.mono;
              s_pow = ta.s_pow + tb.s_pow })
          b)
      a
  in
  normalize products

let scale c a = if c = 0.0 then [] else List.map (fun t -> { t with coeff = c *. t.coeff }) a

let is_zero = function [] -> true | _ :: _ -> false

let term_count = List.length

let degree_s p = List.fold_left (fun acc t -> max acc t.s_pow) 0 p

let by_s_power p =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun t ->
      let existing = try Hashtbl.find tbl t.s_pow with Not_found -> [] in
      Hashtbl.replace tbl t.s_pow ({ t with s_pow = 0 } :: existing))
    p;
  Hashtbl.fold (fun k v acc -> (k, normalize v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let eval_mono value t =
  List.fold_left (fun acc (name, pow) -> acc *. (value name ** float_of_int pow)) t.coeff t.mono

let eval value p sval =
  List.fold_left
    (fun acc t ->
      let v = eval_mono value t in
      let spow =
        let rec power acc k = if k = 0 then acc else power (Complex.mul acc sval) (k - 1) in
        power Complex.one t.s_pow
      in
      Complex.add acc (Complex.mul { Complex.re = v; im = 0.0 } spow))
    Complex.zero p

let eval_s_coeffs value p =
  let deg = degree_s p in
  let coeffs = Array.make (deg + 1) 0.0 in
  List.iter (fun t -> coeffs.(t.s_pow) <- coeffs.(t.s_pow) +. eval_mono value t) p;
  coeffs

let symbols p =
  let tbl = Hashtbl.create 16 in
  List.iter (fun t -> List.iter (fun (name, _) -> Hashtbl.replace tbl name ()) t.mono) p;
  Hashtbl.fold (fun name () acc -> name :: acc) tbl [] |> List.sort compare

module I = Mixsyn_util.Interval

(* Interval analogue of [eval_mono]: same fold order, each concrete
   operation replaced by its outward-rounded interval counterpart, so the
   result encloses [eval_mono] for every symbol valuation drawn from the
   supplied ranges. *)
let eval_mono_interval value t =
  List.fold_left
    (fun acc (name, pow) -> I.mul acc (I.powi (value name) pow))
    (I.point t.coeff) t.mono

let eval_s_coeffs_interval value p =
  let deg = degree_s p in
  let coeffs = Array.make (deg + 1) (I.point 0.0) in
  List.iter
    (fun t -> coeffs.(t.s_pow) <- I.add coeffs.(t.s_pow) (eval_mono_interval value t))
    p;
  coeffs

let pp_mono ppf (m : mono) =
  List.iter
    (fun (name, pow) ->
      if pow = 1 then Format.fprintf ppf "*%s" name else Format.fprintf ppf "*%s^%d" name pow)
    m

let pp ppf p =
  match p with
  | [] -> Format.pp_print_string ppf "0"
  | terms ->
    List.iteri
      (fun i t ->
        if i > 0 then Format.fprintf ppf " + ";
        Format.fprintf ppf "%g" t.coeff;
        pp_mono ppf t.mono;
        if t.s_pow = 1 then Format.fprintf ppf "*s"
        else if t.s_pow > 1 then Format.fprintf ppf "*s^%d" t.s_pow)
      terms
