(** ISAAC-style symbolic small-signal analysis.

    Builds the MNA matrix with symbolic entries (gm_<dev>, gds_<dev>,
    g_<res>, c_<cap>, cgs_<dev>, ...) and extracts exact transfer functions
    by Cramer's rule with a memoised Laplace determinant expansion.  Circuit
    sizes up to full-opamp complexity (10-12 system unknowns) are practical,
    matching the capability the paper reports for ISAAC. *)

type rational = {
  num : Expr.t;
  den : Expr.t;
}

val transfer :
  Mixsyn_circuit.Netlist.t ->
  out:Mixsyn_circuit.Netlist.net ->
  rational
(** Symbolic transfer from the netlist's AC excitation (the sources with a
    nonzero [ac] field) to the output net voltage. *)

val determinant : Expr.t array array -> Expr.t
(** Memoised Laplace expansion; exposed for tests. *)

val valuation :
  ?tech:Mixsyn_circuit.Tech.t ->
  Mixsyn_circuit.Netlist.t ->
  Mixsyn_engine.Mna.op ->
  string ->
  float
(** Symbol values at an operating point: [valuation nl op "gm_m1"] etc.
    @raise Not_found for unknown symbols. *)

val eval_rational : (string -> float) -> rational -> Complex.t -> Complex.t

val num_den_coeffs : (string -> float) -> rational -> float array * float array
(** Numeric numerator/denominator polynomial coefficients in [s]. *)

val term_count : rational -> int
(** Total number of symbolic terms (numerator + denominator). *)

val symbols : rational -> string list
(** Sorted distinct symbols of numerator and denominator. *)

val bound_num_den :
  (string -> Mixsyn_util.Interval.t) ->
  rational ->
  Mixsyn_util.Interval.t array * Mixsyn_util.Interval.t array
(** Interval analogue of {!num_den_coeffs}: each coefficient interval
    encloses the concrete coefficient for every symbol valuation drawn
    from the supplied ranges. *)

val bound_dc_gain :
  (string -> Mixsyn_util.Interval.t) -> rational -> Mixsyn_util.Interval.t
(** Certified enclosure of num0/den0 (the DC gain) over the symbol box;
    {!Mixsyn_util.Interval.whole} when the denominator's constant
    coefficient may vanish. *)

val bound_gbw :
  (string -> Mixsyn_util.Interval.t) -> rational -> Mixsyn_util.Interval.t
(** Certified enclosure of the single-pole gain-bandwidth estimate
    |num0| / (2 pi |den1|) over the symbol box. *)

val bound_dominant_pole :
  (string -> Mixsyn_util.Interval.t) -> rational -> Mixsyn_util.Interval.t
(** Certified enclosure of the dominant-pole frequency estimate
    |den0| / (2 pi |den1|) over the symbol box. *)

val pp : Format.formatter -> rational -> unit
