module Template = Mixsyn_circuit.Template

type strategy =
  | Design_plan of Design_plan.t
  | Equation_annealing
  | Simulation_annealing
  | Awe_annealing

type result = {
  strategy_name : string;
  params : float array;
  performance : Spec.performance;
  predicted : Spec.performance;
  cost : float;
  evaluations : int;
  elapsed_s : float;
  meets_specs : bool;
}

let strategy_name = function
  | Design_plan p -> p.Design_plan.plan_name
  | Equation_annealing -> "equation-annealing"
  | Simulation_annealing -> "simulation-annealing"
  | Awe_annealing -> "awe-annealing"

let evaluator_of_strategy ?(tech = Mixsyn_circuit.Tech.generic_07um) strategy template x =
  match strategy with
  | Design_plan _ | Equation_annealing -> Equations.evaluate ~tech template x
  | Simulation_annealing -> Evaluate.full_simulation ~tech template x
  | Awe_annealing -> Evaluate.awe_hybrid ~tech template x

let failed_cost = 1e7

(* Canonical content-address of one sizing run, for the cross-job stage
   cache: every input that can change the result is serialized with the
   journal's canonical JSON printer, in fixed field order.  Spec, context
   and objective *order* is preserved deliberately — the cost function
   folds violations in list order, so reordered specs are a different
   float computation and must be a different key.  [size] is
   deterministic in these inputs (seeded annealer, deterministic
   evaluators), which is what makes sharing the result across jobs
   byte-identity-safe. *)
let cache_key ?(tech = Mixsyn_circuit.Tech.generic_07um) ?(seed = 1) ?schedule
    ?(polish = true) ?(context = []) ?(guardband = 1.0) strategy template ~specs
    ~objectives =
  let open Mixsyn_util.Json in
  let bound = function
    | Spec.At_least v -> Arr [ Str "at-least"; Num v ]
    | Spec.At_most v -> Arr [ Str "at-most"; Num v ]
    | Spec.Between (a, b) -> Arr [ Str "between"; Num a; Num b ]
  in
  let spec (s : Spec.t) = Arr [ Str s.Spec.s_name; bound s.Spec.bound; Num s.Spec.weight ] in
  let objective (o : Spec.objective) =
    Arr
      [ Str o.Spec.o_name;
        Str (match o.Spec.direction with `Minimize -> "min" | `Maximize -> "max");
        Num o.Spec.o_weight ]
  in
  (* the template argument may be box-contracted or pinned relative to the
     registry topology of the same name, so the actual parameter boxes are
     part of the key, not just the name *)
  let param (p : Template.param) =
    Arr [ Str p.Template.p_name; Num p.lo; Num p.hi; Bool p.log_scale ]
  in
  let tech_json (t : Mixsyn_circuit.Tech.t) =
    Mixsyn_circuit.Tech.(
      Arr
        [ Str t.tech_name; Num t.vdd; Num t.vth0_n; Num t.vth0_p; Num t.kp_n;
          Num t.kp_p; Num t.lambda_factor; Num t.gamma; Num t.phi; Num t.cox;
          Num t.cov; Num t.cj; Num t.cjsw; Num t.kf; Num t.l_min; Num t.w_min;
          Num t.l_diff; Num t.temp ])
  in
  let schedule_json =
    match schedule with
    | None -> Null
    | Some s ->
      Mixsyn_opt.Anneal.(
        Arr [ Num s.t_start; Num s.t_end; Num s.cooling; Num (float_of_int s.moves_per_stage) ])
  in
  to_string
    (Obj
       [ ("strategy", Str (strategy_name strategy));
         ("template", Str template.Template.t_name);
         ("params", Arr (Array.to_list (Array.map param template.Template.params)));
         ("tech", tech_json tech);
         ("seed", Num (float_of_int seed));
         ("schedule", schedule_json);
         ("polish", Bool polish);
         ("guardband", Num guardband);
         ("context", Arr (List.map (fun (k, v) -> Arr [ Str k; Num v ]) context));
         ("specs", Arr (List.map spec specs));
         ("objectives", Arr (List.map objective objectives)) ])

let size ?(tech = Mixsyn_circuit.Tech.generic_07um) ?(seed = 1) ?schedule ?(polish = true)
    ?(context = []) ?(guardband = 1.0) ?(cache = true) strategy template ~specs ~objectives =
  Mixsyn_util.Telemetry.with_span "sizing.size" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  (* the optimizer chases tightened bounds; verification keeps the originals *)
  let optimizer_specs =
    if guardband = 1.0 then specs
    else
      List.map
        (fun (s : Spec.t) ->
          match s.Spec.bound with
          | Spec.At_least v when v > 0.0 -> { s with Spec.bound = Spec.At_least (v *. guardband) }
          | Spec.At_most v when v > 0.0 -> { s with Spec.bound = Spec.At_most (v /. guardband) }
          | Spec.At_least _ | Spec.At_most _ | Spec.Between _ -> s)
        specs
  in
  let template =
    let pinnable =
      List.filter
        (fun (name, _) ->
          Array.exists (fun p -> p.Template.p_name = name) template.Template.params)
        context
    in
    Template.with_fixed template pinnable
  in
  let evaluations = ref 0 in
  let raw_evaluator = evaluator_of_strategy ~tech strategy template in
  (* memoize on the clamped vector: every evaluator clamps before building
     the netlist, so two proposals that clamp to the same point are the
     same evaluation.  The annealer re-visits points at the bounds and the
     Nelder-Mead polish re-scores the annealed optimum; with the cache
     those revisits are free and the results stay bit-identical (the
     evaluators are deterministic). *)
  let memo : (float array, Spec.performance option) Mixsyn_util.Eval_cache.t =
    Mixsyn_util.Eval_cache.create "sizing.cache"
  in
  (* [count] marks optimizer-loop evaluations; the final prediction read-out
     is free, exactly as in the uncached path *)
  let evaluator ~count x =
    let key = Template.clamp template x in
    let compute key =
      if count then incr evaluations;
      raw_evaluator key
    in
    if cache then Mixsyn_util.Eval_cache.find_or_compute memo key compute
    else compute key
  in
  let cost_of x =
    match evaluator ~count:true x with
    | None -> failed_cost
    | Some perf -> Spec.cost ~specs:optimizer_specs ~objectives perf
  in
  let params =
    match strategy with
    | Design_plan plan ->
      let x, _env = Design_plan.execute ~tech ~context plan specs in
      Template.clamp template x
    | Equation_annealing | Simulation_annealing | Awe_annealing ->
      let rng = Mixsyn_util.Rng.create seed in
      let schedule =
        match schedule with
        | Some s -> s
        | None ->
          (* simulation in the loop is ~10^3 x the cost of an equation
             evaluation, so budget fewer moves (exactly FRIDGE's dilemma) *)
          (match strategy with
           | Equation_annealing -> { Mixsyn_opt.Anneal.t_start = 50.0; t_end = 1e-3; cooling = 0.90; moves_per_stage = 120 }
           | Simulation_annealing | Awe_annealing | Design_plan _ ->
             { Mixsyn_opt.Anneal.t_start = 50.0; t_end = 1e-2; cooling = 0.85; moves_per_stage = 25 })
      in
      let problem =
        { Mixsyn_opt.Anneal.initial = Template.midpoint template;
          cost = cost_of;
          neighbor =
            (fun rng ~temp01 x ->
              Template.perturb template rng ~scale:(0.02 +. (0.3 *. temp01)) x) }
      in
      let outcome =
        Mixsyn_util.Telemetry.with_span "sizing.anneal" (fun () ->
            Mixsyn_opt.Anneal.minimize ~schedule ~rng problem)
      in
      let annealed = outcome.Mixsyn_opt.Anneal.best in
      if polish then begin
        let lower = Array.map (fun p -> p.Template.lo) template.Template.params in
        let upper = Array.map (fun p -> p.Template.hi) template.Template.params in
        let options = { Mixsyn_opt.Nelder_mead.max_evals = 300; tolerance = 1e-12 } in
        let x, _, _ =
          Mixsyn_util.Telemetry.with_span "sizing.polish" (fun () ->
              Mixsyn_opt.Nelder_mead.minimize ~options ~lower ~upper ~f:cost_of annealed)
        in
        x
      end
      else annealed
  in
  let predicted = Option.value (evaluator ~count:false params) ~default:[] in
  (* design verification: always score the result with the full simulator *)
  let performance =
    Mixsyn_util.Telemetry.with_span "sizing.verification" (fun () ->
        Option.value (Evaluate.full_simulation ~tech template params) ~default:[])
  in
  Mixsyn_util.Telemetry.add "sizing.evaluator_invocations" !evaluations;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  { strategy_name = strategy_name strategy;
    params;
    performance;
    predicted;
    cost = Spec.cost ~specs ~objectives performance;
    evaluations = !evaluations;
    elapsed_s;
    meets_specs = Spec.satisfied specs performance }

let pp_result ppf r =
  Format.fprintf ppf "%s: cost=%.3f evals=%d time=%.3fs specs=%s@\n  %a"
    r.strategy_name r.cost r.evaluations r.elapsed_s
    (if r.meets_specs then "MET" else "violated")
    Spec.pp_performance r.performance
