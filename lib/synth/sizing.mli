(** Circuit sizing: the frontend strategies of Section 2.2, one API.

    - [Design_plan p] — knowledge-based execution (IDAC/OASYS, Fig. 1a);
    - [Equation_annealing] — simulated annealing over the analytic design
      equations (OPTIMAN [10] with ISAAC-style models);
    - [Simulation_annealing] — full DC+AC simulation inside the annealing
      loop (FRIDGE [22]);
    - [Awe_annealing] — DC solve + AWE small-signal evaluation
      (the ASTRX/OBLX [23] cost-function style).

    Whatever the strategy, the result is verified with a full simulation —
    the "design verification" step of the hierarchical methodology
    (Section 2.1). *)

type strategy =
  | Design_plan of Design_plan.t
  | Equation_annealing
  | Simulation_annealing
  | Awe_annealing

type result = {
  strategy_name : string;
  params : float array;
  performance : Spec.performance;  (** from the verifying full simulation *)
  predicted : Spec.performance;    (** what the strategy's own evaluator saw *)
  cost : float;
  evaluations : int;
  elapsed_s : float;
  meets_specs : bool;
}

val size :
  ?tech:Mixsyn_circuit.Tech.t ->
  ?seed:int ->
  ?schedule:Mixsyn_opt.Anneal.schedule ->
  ?polish:bool ->
  ?context:(string * float) list ->
  ?guardband:float ->
  ?cache:bool ->
  strategy ->
  Mixsyn_circuit.Template.t ->
  specs:Spec.t list ->
  objectives:Spec.objective list ->
  result
(** [context] carries environment quantities (e.g. [("cl", 5e-12)] for the
    load capacitance): entries naming template parameters are pinned during
    optimization, and all entries are visible to design plans as
    [spec_<name>] bindings.

    [guardband] (default 1.0) tightens every one-sided bound by that factor
    *inside the optimizer only*; the result is still verified and scored
    against the original specifications.  This is how equation-based flows
    compensate their first-order model error in practice.

    [cache] (default [true]) memoizes the strategy evaluator on the clamped
    parameter vector, so annealer re-visits and the Nelder-Mead polish stop
    re-running the full simulation/AWE for points already scored.  Results
    are bit-identical with the cache on or off; [evaluations] counts actual
    evaluator invocations, and hit/miss counts appear in
    {!Mixsyn_util.Telemetry} under ["sizing.cache.hits"] /
    ["sizing.cache.misses"]. *)

val cache_key :
  ?tech:Mixsyn_circuit.Tech.t ->
  ?seed:int ->
  ?schedule:Mixsyn_opt.Anneal.schedule ->
  ?polish:bool ->
  ?context:(string * float) list ->
  ?guardband:float ->
  strategy ->
  Mixsyn_circuit.Template.t ->
  specs:Spec.t list ->
  objectives:Spec.objective list ->
  string
(** Canonical content-address of the {!size} run those arguments describe —
    a canonical-JSON string over every input that can change the result:
    strategy, the template's {e actual} parameter boxes (contraction and
    pinning included), the full technology record, seed, schedule, polish,
    guardband, and the ordered context/spec/objective lists (order is part
    of the key: the cost function folds violations in list order, so a
    reordering is a different float computation).  [size] is deterministic
    in exactly these inputs, which is what lets a batch share one result
    across jobs without breaking journal byte-identity.  Defaults mirror
    {!size}'s. *)

val evaluator_of_strategy :
  ?tech:Mixsyn_circuit.Tech.t ->
  strategy ->
  Mixsyn_circuit.Template.t ->
  float array ->
  Spec.performance option
(** The raw evaluator each strategy uses internally. *)

val pp_result : Format.formatter -> result -> unit
