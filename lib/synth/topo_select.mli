(** Topology selection — the first top-down step of the methodology
    (Section 2.1), in the three styles the paper surveys:

    - {!rule_based}: heuristic scoring of each candidate against the
      specification profile (OPASYN [8], OASYS [1]);
    - {!interval_feasible}: boundary checking of specifications against each
      topology's achievable performance intervals ([15], the AMGIE
      selector);
    - {!ga_select}: topology bits inside the optimization loop, sized by the
      equation evaluator (DARWIN [28] / mixed formulation [26]). *)

type verdict = {
  template : Mixsyn_circuit.Template.t;
  score : float;          (** larger is better *)
  rationale : string list;
}

val rule_based : Spec.t list -> Mixsyn_circuit.Template.t list -> verdict list
(** All candidates, scored, best first. *)

val interval_feasible :
  ?ranges:
    (Mixsyn_circuit.Template.t -> string -> Mixsyn_util.Interval.t option) ->
  Spec.t list ->
  Mixsyn_circuit.Template.t list ->
  Mixsyn_circuit.Template.t list
(** The candidates whose feasibility intervals can satisfy every spec that
    names a published metric.  [ranges], when given, supplies {e derived}
    performance enclosures (e.g. [Mixsyn_check.Bounds.metric_ranges]) that
    prune in conjunction with the hand-written tables: a candidate
    survives only if both admit every spec. *)

val ga_select :
  ?tech:Mixsyn_circuit.Tech.t ->
  ?seed:int ->
  ?options:Mixsyn_opt.Genetic.options ->
  Spec.t list ->
  objectives:Spec.objective list ->
  Mixsyn_circuit.Template.t list ->
  Mixsyn_circuit.Template.t * float array * float
(** Returns (chosen topology, sized parameters, fitness).  The genome is
    topology-selection bits plus a quantised parameter vector; fitness is
    the negated equation-based synthesis cost. *)
