(** First-order design equations for the topology library.

    These are the hand-derived square-law expressions a designer (or IDAC's
    plan author, or ISAAC's simplifier) writes down: transconductances from
    W/L and bias, gain from gm/gds ratios, poles from node capacitances.
    Evaluation costs nanoseconds, which is what makes design plans and
    equation-based optimization fast (Fig. 1a and the OPASYN/OPTIMAN row of
    the paper); the price is first-order accuracy.

    The equations are written once against an abstract numeric {!DOMAIN}
    and instantiated over floats (concrete evaluation, the historical
    behaviour of this module) and over {!Mixsyn_util.Interval} (certified
    performance bounds, consumed by [Mixsyn_check.Bounds]).  Both
    instantiations share one expression tree, so interval results are sound
    over-approximations of the float results by construction. *)

(** Abstract numeric domain the square-law equations are written in. *)
module type DOMAIN = sig
  type v

  val const : float -> v
  val add : v -> v -> v
  val sub : v -> v -> v
  val mul : v -> v -> v
  val div : v -> v -> v
  val sqrt_ : v -> v
  val log10_ : v -> v
  val min_ : v -> v -> v

  val sq : v -> v
  (** [x ** 2.0]. *)

  val atan_ : v -> v
end

module Core (D : DOMAIN) : sig
  val gm_of : Mixsyn_circuit.Tech.t -> kp:float -> w:D.v -> l:D.v -> id:D.v -> D.v
  val gds_of : Mixsyn_circuit.Tech.t -> l:D.v -> id:D.v -> D.v
  val vov_of : kp:float -> w:D.v -> l:D.v -> id:D.v -> D.v
  val gate_cap : Mixsyn_circuit.Tech.t -> w:D.v -> l:D.v -> D.v
  val deg_atan : D.v -> D.v

  val equations :
    Mixsyn_circuit.Tech.t -> string -> D.v array -> (string * D.v) list option
  (** [equations tech t_name x] dispatches on the template name; [None] for
      unknown templates or wrong arity.  Performs no clamping. *)
end

module Float_domain : DOMAIN with type v = float
module Interval_domain : DOMAIN with type v = Mixsyn_util.Interval.t

module Interval_eval : sig
  val gm_of :
    Mixsyn_circuit.Tech.t ->
    kp:float ->
    w:Mixsyn_util.Interval.t ->
    l:Mixsyn_util.Interval.t ->
    id:Mixsyn_util.Interval.t ->
    Mixsyn_util.Interval.t

  val gds_of :
    Mixsyn_circuit.Tech.t ->
    l:Mixsyn_util.Interval.t ->
    id:Mixsyn_util.Interval.t ->
    Mixsyn_util.Interval.t

  val vov_of :
    kp:float ->
    w:Mixsyn_util.Interval.t ->
    l:Mixsyn_util.Interval.t ->
    id:Mixsyn_util.Interval.t ->
    Mixsyn_util.Interval.t

  val gate_cap :
    Mixsyn_circuit.Tech.t ->
    w:Mixsyn_util.Interval.t ->
    l:Mixsyn_util.Interval.t ->
    Mixsyn_util.Interval.t

  val deg_atan : Mixsyn_util.Interval.t -> Mixsyn_util.Interval.t

  val equations :
    Mixsyn_circuit.Tech.t ->
    string ->
    Mixsyn_util.Interval.t array ->
    (string * Mixsyn_util.Interval.t) list option
  (** The square-law equations over parameter boxes: every metric interval
      is a guaranteed enclosure of {!evaluate} over every point of the box
      (clamping aside — callers intersect the box with the template bounds
      first). *)
end

val supported : Mixsyn_circuit.Template.t -> bool

val evaluate :
  ?tech:Mixsyn_circuit.Tech.t ->
  Mixsyn_circuit.Template.t ->
  float array ->
  Spec.performance option
(** Same metric names as {!Evaluate.full_simulation}; [None] for templates
    without an equation model. *)

val gm_of : Mixsyn_circuit.Tech.t -> kp:float -> w:float -> l:float -> id:float -> float
(** Square-law transconductance sqrt(2 kp (W/L) Id). *)

val gds_of : Mixsyn_circuit.Tech.t -> l:float -> id:float -> float
(** Channel-length-modulation output conductance lambda(L) * Id. *)

val vov_of : kp:float -> w:float -> l:float -> id:float -> float
(** Overdrive voltage sqrt(2 Id / (kp W/L)). *)

val gate_cap : Mixsyn_circuit.Tech.t -> w:float -> l:float -> float
val deg_atan : float -> float
