module Template = Mixsyn_circuit.Template
module I = Mixsyn_util.Interval

type verdict = {
  template : Template.t;
  score : float;
  rationale : string list;
}

let spec_target (s : Spec.t) =
  match s.Spec.bound with
  | Spec.At_least v -> v
  | Spec.At_most v -> v
  | Spec.Between (lo, hi) -> 0.5 *. (lo +. hi)

(* Heuristic rules in the OASYS style: prefer the simplest topology that can
   plausibly meet each spec, penalise overkill. *)
let rule_based specs candidates =
  let judge template =
    let rationale = ref [] in
    let note fmt = Printf.ksprintf (fun s -> rationale := s :: !rationale) fmt in
    let score = ref 0.0 in
    let feas name = List.assoc_opt name template.Template.feasibility in
    List.iter
      (fun (s : Spec.t) ->
        match feas s.Spec.s_name with
        | None -> ()
        | Some interval ->
          let target = spec_target s in
          let ok =
            match s.Spec.bound with
            | Spec.At_least v -> I.hi interval >= v
            | Spec.At_most v -> I.lo interval <= v
            | Spec.Between (lo, hi) -> I.intersects interval (I.make lo hi)
          in
          if ok then begin
            score := !score +. 1.0;
            (* margin bonus: being comfortably inside the achievable range *)
            let margin =
              match s.Spec.bound with
              | Spec.At_least v -> (I.hi interval -. v) /. Float.max (Float.abs v) 1e-30
              | Spec.At_most v -> (v -. I.lo interval) /. Float.max (Float.abs v) 1e-30
              | Spec.Between _ -> 0.5
            in
            score := !score +. Float.min 0.5 (0.1 *. margin)
          end
          else begin
            score := !score -. 3.0;
            note "%s target %g outside achievable %g..%g" s.Spec.s_name target
              (I.lo interval) (I.hi interval)
          end)
      specs;
    (* simplicity preference: fewer parameters = cheaper, more robust *)
    score := !score -. (0.05 *. float_of_int (Array.length template.Template.params));
    note "simplicity penalty for %d free parameters" (Array.length template.Template.params);
    { template; score = !score; rationale = List.rev !rationale }
  in
  List.sort (fun a b -> compare b.score a.score) (List.map judge candidates)

let admissible interval (s : Spec.t) =
  (not (I.is_empty interval))
  &&
  match s.Spec.bound with
  | Spec.At_least v -> I.hi interval >= v
  | Spec.At_most v -> I.lo interval <= v
  | Spec.Between (lo, hi) -> I.intersects interval (I.make lo hi)

let interval_feasible ?ranges specs candidates =
  let feasible template =
    List.for_all
      (fun (s : Spec.t) ->
        let hand_ok =
          match List.assoc_opt s.Spec.s_name template.Template.feasibility with
          | None -> true (* unknown metric: cannot prune *)
          | Some interval -> admissible interval s
        in
        (* derived (certified) ranges prune independently of the hand
           table: a spec outside the certified enclosure is provably
           unreachable no matter what the annotation claims *)
        let derived_ok =
          match ranges with
          | None -> true
          | Some r ->
            (match r template s.Spec.s_name with
             | None -> true
             | Some interval -> admissible interval s)
        in
        hand_ok && derived_ok)
      specs
  in
  List.filter feasible candidates

(* Genome layout: [selection bits][bits_per_param * max_params].
   The parameter field is decoded per-topology over its own box. *)
let bits_per_param = 8

let decode_bits bits offset count =
  let acc = ref 0 in
  for i = 0 to count - 1 do
    acc := (!acc lsl 1) lor (if bits.(offset + i) then 1 else 0)
  done;
  !acc

let ga_select ?(tech = Mixsyn_circuit.Tech.generic_07um) ?(seed = 7) ?options specs ~objectives
    candidates =
  let candidates = Array.of_list candidates in
  let n_topologies = Array.length candidates in
  assert (n_topologies > 0);
  let sel_bits =
    let rec bits_needed k acc = if 1 lsl acc >= k then acc else bits_needed k (acc + 1) in
    max 1 (bits_needed n_topologies 0)
  in
  let max_params =
    Array.fold_left (fun acc t -> max acc (Array.length t.Template.params)) 0 candidates
  in
  let genome_length = sel_bits + (bits_per_param * max_params) in
  let decode bits =
    let topo_index = decode_bits bits 0 sel_bits mod n_topologies in
    let template = candidates.(topo_index) in
    let params =
      Array.mapi
        (fun i (p : Template.param) ->
          let raw = decode_bits bits (sel_bits + (i * bits_per_param)) bits_per_param in
          let frac = float_of_int raw /. float_of_int ((1 lsl bits_per_param) - 1) in
          if p.Template.log_scale then p.Template.lo *. ((p.Template.hi /. p.Template.lo) ** frac)
          else p.Template.lo +. (frac *. (p.Template.hi -. p.Template.lo)))
        template.Template.params
    in
    (template, params)
  in
  let fitness bits =
    let template, params = decode bits in
    match Equations.evaluate ~tech template params with
    | None -> -1e9
    | Some perf -> -.Spec.cost ~specs ~objectives perf
  in
  let rng = Mixsyn_util.Rng.create seed in
  let best_bits, best_fitness =
    Mixsyn_opt.Genetic.optimize_bits ?options ~rng ~length:genome_length ~fitness ()
  in
  let template, params = decode best_bits in
  (template, params, best_fitness)
