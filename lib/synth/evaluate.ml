module Netlist = Mixsyn_circuit.Netlist
module Template = Mixsyn_circuit.Template
module Measure = Mixsyn_engine.Measure

let sweep_freqs = Mixsyn_engine.Ac.log_sweep ~decades_from:0.0 ~decades_to:9.5 ~points_per_decade:8

let common_metrics tech nl op =
  let vdd_net = Netlist.find_net nl "vdd" in
  let out = Netlist.find_net nl "out" in
  let power = Mixsyn_engine.Dc.power nl op in
  let low, high = Measure.output_swing nl op ~out ~vdd_net in
  ignore tech;
  [ ("power_w", power);
    ("area_m2", Measure.mos_area nl);
    ("swing_low_v", low);
    ("swing_high_v", high) ]

let with_op tech template x f =
  let nl = template.Template.build tech (Template.clamp template x) in
  match Mixsyn_engine.Dc.solve ~tech nl with
  | op -> f nl op
  | exception Mixsyn_engine.Dc.No_convergence _ -> None
  | exception Mixsyn_util.Matrix.Real.Singular _ -> None

let full_simulation ?(tech = Mixsyn_circuit.Tech.generic_07um) template x =
  with_op tech template x (fun nl op ->
      let out = Netlist.find_net nl "out" in
      let ac = Mixsyn_engine.Ac.solve ~tech nl op ~freqs:sweep_freqs in
      let bode = Measure.bode ac ~out in
      let gain = Measure.dc_gain bode in
      let ugf = Measure.unity_gain_freq bode in
      let pm = Measure.phase_margin bode in
      Some
        ([ ("gain_db", 20.0 *. log10 (Float.max gain 1e-12));
           ("ugf_hz", Option.value ugf ~default:0.0);
           ("phase_margin_deg", Option.value pm ~default:0.0) ]
         @ common_metrics tech nl op))

let awe_hybrid ?(tech = Mixsyn_circuit.Tech.generic_07um) template x =
  with_op tech template x (fun nl op ->
      let out = Netlist.find_net nl "out" in
      match Mixsyn_awe.Awe.of_circuit ~tech nl op ~out ~order:4 with
      | exception Failure _ -> None
      (* a sizing whose conductance matrix degenerates has no AWE model:
         penalize the point like a non-converging DC solve, don't crash *)
      | exception Mixsyn_util.Matrix.Real.Singular _ -> None
      | tf ->
        let gain = Mixsyn_awe.Awe.magnitude tf 0.01 in
        (* unity-gain crossing by bisection on the AWE model *)
        let ugf =
          if gain <= 1.0 then 0.0
          else begin
            let rec bisect lo hi count =
              if count = 0 then sqrt (lo *. hi)
              else begin
                let mid = sqrt (lo *. hi) in
                if Mixsyn_awe.Awe.magnitude tf mid > 1.0 then bisect mid hi (count - 1)
                else bisect lo mid (count - 1)
              end
            in
            bisect 0.01 1e10 60
          end
        in
        let pm =
          if ugf <= 0.0 then 0.0
          else begin
            let h = Mixsyn_awe.Awe.eval tf { Complex.re = 0.0; im = 2.0 *. Float.pi *. ugf } in
            let h0 = Mixsyn_awe.Awe.eval tf { Complex.re = 0.0; im = 2.0 *. Float.pi *. 0.01 } in
            (* phase relative to the low-frequency phase, as the unwrapped
               sweep would measure it *)
            let dphi = (Complex.arg h -. Complex.arg h0) *. 180.0 /. Float.pi in
            let dphi = if dphi > 0.0 then dphi -. 360.0 else dphi in
            180.0 +. dphi
          end
        in
        Some
          ([ ("gain_db", 20.0 *. log10 (Float.max gain 1e-12));
             ("ugf_hz", ugf);
             ("phase_margin_deg", pm) ]
           @ common_metrics tech nl op))
