module Tech = Mixsyn_circuit.Tech
module Template = Mixsyn_circuit.Template
module Interval = Mixsyn_util.Interval

(* The design equations are written once against an abstract numeric domain
   and instantiated twice: over floats for the fast concrete evaluator, and
   over intervals for the certified bound interpreter in
   [Mixsyn_check.Bounds].  Sharing the expression tree is what makes the
   bound sound by construction: every concrete evaluation applies exactly
   the operations the abstract one over-approximates. *)
module type DOMAIN = sig
  type v

  val const : float -> v
  val add : v -> v -> v
  val sub : v -> v -> v
  val mul : v -> v -> v
  val div : v -> v -> v
  val sqrt_ : v -> v
  val log10_ : v -> v
  val min_ : v -> v -> v
  val sq : v -> v
  val atan_ : v -> v
end

module Core (D : DOMAIN) = struct
  let c = D.const
  let ( +! ) = D.add
  let ( -! ) = D.sub
  let ( *! ) = D.mul
  let ( /! ) = D.div

  let gm_of (tech : Tech.t) ~kp ~w ~l ~id =
    (* square law capped by the weak-inversion limit gm <= Id/(n vT): the
       square-law estimate diverges from silicon exactly where optimizers
       like to hide (huge W at tiny Id) *)
    let vt = Mixsyn_util.Units.boltzmann *. tech.Tech.temp /. Mixsyn_util.Units.electron_charge in
    D.min_ (D.sqrt_ (c (2.0 *. kp) *! (w /! l) *! id)) (id /! c (1.5 *. vt))

  let gds_of (tech : Tech.t) ~l ~id = c tech.Tech.lambda_factor /! l *! id

  let vov_of ~kp ~w ~l ~id = D.sqrt_ (c 2.0 *! id /! (c kp *! (w /! l)))

  let deg_atan x = D.atan_ x *! c 180.0 /! c Float.pi

  let gate_cap (tech : Tech.t) ~w ~l =
    (c (2.0 /. 3.0 *. tech.Tech.cox) *! w *! l) +! (c tech.Tech.cov *! w)

  let ota_5t_equations (tech : Tech.t) x =
    match x with
    | [| w1; w3; w5; l; ib; cl |] ->
      let id = ib /! c 2.0 in
      let gm1 = gm_of tech ~kp:tech.Tech.kp_n ~w:w1 ~l ~id in
      let gm3 = gm_of tech ~kp:tech.Tech.kp_p ~w:w3 ~l ~id in
      let gds2 = gds_of tech ~l ~id and gds4 = gds_of tech ~l ~id in
      let gain = gm1 /! (gds2 +! gds4) in
      let ugf = gm1 /! (c (2.0 *. Float.pi) *! cl) in
      (* non-dominant pole at the mirror node *)
      let cmirror = gate_cap tech ~w:w3 ~l *! c 2.0 in
      let p2 = gm3 /! (c (2.0 *. Float.pi) *! cmirror) in
      let pm = c 90.0 -! deg_atan (ugf /! (c 2.0 *! p2)) in
      let vov1 = vov_of ~kp:tech.Tech.kp_n ~w:w1 ~l ~id in
      let vov5 = vov_of ~kp:tech.Tech.kp_n ~w:w5 ~l ~id:ib in
      let vov4 = vov_of ~kp:tech.Tech.kp_p ~w:w3 ~l ~id in
      let vcm = Mixsyn_circuit.Topology.common_mode_fraction *. tech.Tech.vdd in
      let swing_low = c (vcm -. tech.Tech.vth0_n) +! vov1 in
      let swing_high = c tech.Tech.vdd -! vov4 in
      let power = c (tech.Tech.vdd *. 2.0) *! ib in
      let area = (c 2.0 *! w1 *! l) +! (c 2.0 *! w3 *! l) +! (c 2.0 *! w5 *! l) in
      ignore vov5;
      Some
        [ ("gain_db", c 20.0 *! D.log10_ gain);
          ("ugf_hz", ugf);
          ("phase_margin_deg", pm);
          ("power_w", power);
          ("area_m2", area);
          ("swing_low_v", swing_low);
          ("swing_high_v", swing_high) ]
    | _ -> None

  let miller_equations (tech : Tech.t) x =
    match x with
    | [| w1; w3; w5; w6; w7; l; ib; cc; cl |] ->
      let id1 = ib /! c 2.0 in
      let i7 = ib *! (w7 /! w5) in
      let gm1 = gm_of tech ~kp:tech.Tech.kp_n ~w:w1 ~l ~id:id1 in
      let gm6 = gm_of tech ~kp:tech.Tech.kp_p ~w:w6 ~l ~id:i7 in
      let gds2 = gds_of tech ~l ~id:id1 and gds4 = gds_of tech ~l ~id:id1 in
      let gds6 = gds_of tech ~l ~id:i7 and gds7 = gds_of tech ~l ~id:i7 in
      let a1 = gm1 /! (gds2 +! gds4) in
      let a2 = gm6 /! (gds6 +! gds7) in
      (* second-stage systematic offset: M6 mirrors vsg4, so its current wants
         to be id1 * w6/w3 while M7 sinks i7; the imbalance lands on the
         output through the stage output resistance and rails the stage when
         large (a first-order model of what the simulator shows exactly) *)
      let i6_implied = id1 *! (w6 /! w3) in
      let v_offset = (i6_implied -! i7) /! (gds6 +! gds7) in
      let derate = c 1.0 /! (c 1.0 +! D.sq (v_offset /! c 0.5)) in
      let a2 = a2 *! derate in
      let gain = a1 *! a2 in
      (* the compensation capacitor competes with the device parasitics it is
         wired across *)
      let cc_eff = cc +! gate_cap tech ~w:w6 ~l +! (c 0.3 *! gate_cap tech ~w:w1 ~l) in
      let ugf = gm1 /! (c (2.0 *. Float.pi) *! cc_eff) in
      (* output pole (the nulling resistor cancels the RHP zero) and the
         mirror pole both erode the margin; pole splitting only works to the
         extent cc dominates the second-stage input capacitance *)
      let cgs6 = gate_cap tech ~w:w6 ~l in
      let split = cc /! (cc +! cgs6) in
      let p2 = gm6 *! split /! (c (2.0 *. Float.pi) *! cl) in
      let gm3 = gm_of tech ~kp:tech.Tech.kp_p ~w:w3 ~l ~id:id1 in
      let p3 = gm3 /! (c (2.0 *. Float.pi) *! (c 2.0 *! gate_cap tech ~w:w3 ~l)) in
      let pm = c 90.0 -! deg_atan (ugf /! p2) -! deg_atan (ugf /! p3) in
      let vov6 = vov_of ~kp:tech.Tech.kp_p ~w:w6 ~l ~id:i7 in
      let vov7 = vov_of ~kp:tech.Tech.kp_n ~w:w7 ~l ~id:i7 in
      let swing_low = vov7 and swing_high = c tech.Tech.vdd -! vov6 in
      let power = c tech.Tech.vdd *! ((c 2.0 *! ib) +! i7) in
      let area =
        (c 2.0 *! w1 *! l) +! (c 2.0 *! w3 *! l) +! (c 2.0 *! w5 *! l) +! (w6 *! l)
        +! (w7 *! l)
      in
      Some
        [ ("gain_db", c 20.0 *! D.log10_ gain);
          ("ugf_hz", ugf);
          ("phase_margin_deg", pm);
          ("power_w", power);
          ("area_m2", area);
          ("swing_low_v", swing_low);
          ("swing_high_v", swing_high) ]
    | _ -> None

  let folded_cascode_equations (tech : Tech.t) x =
    match x with
    | [| w1; wp; wcp; wn; wcn; l; ib; cl |] ->
      let id = ib /! c 2.0 in
      (* each output branch carries roughly ib/2 extra *)
      let ibranch = ib /! c 2.0 in
      let gm1 = gm_of tech ~kp:tech.Tech.kp_n ~w:w1 ~l ~id in
      let gmcp = gm_of tech ~kp:tech.Tech.kp_p ~w:wcp ~l ~id:ibranch in
      let gmcn = gm_of tech ~kp:tech.Tech.kp_n ~w:wcn ~l ~id:ibranch in
      let gds l id = gds_of tech ~l ~id in
      (* cascoded output resistances *)
      let rout_up = gmcp /! (gds l ibranch *! gds l (ibranch +! id)) in
      let rout_down = gmcn /! (gds l ibranch *! gds l ibranch) in
      let rout = c 1.0 /! ((c 1.0 /! rout_up) +! (c 1.0 /! rout_down)) in
      let gain = gm1 *! rout in
      let ugf = gm1 /! (c (2.0 *. Float.pi) *! cl) in
      (* non-dominant pole at the folding node *)
      let cfold = gate_cap tech ~w:wcp ~l +! gate_cap tech ~w:wp ~l in
      let p2 = gmcp /! (c (2.0 *. Float.pi) *! cfold) in
      let pm = c 90.0 -! deg_atan (ugf /! p2) in
      let vov_cn = vov_of ~kp:tech.Tech.kp_n ~w:wcn ~l ~id:ibranch in
      let vov_n = vov_of ~kp:tech.Tech.kp_n ~w:wn ~l ~id:ibranch in
      let vov_cp = vov_of ~kp:tech.Tech.kp_p ~w:wcp ~l ~id:ibranch in
      let vov_p = vov_of ~kp:tech.Tech.kp_p ~w:wp ~l ~id:(ibranch +! id) in
      let swing_low = vov_cn +! vov_n and swing_high = c tech.Tech.vdd -! vov_cp -! vov_p in
      let power = c tech.Tech.vdd *! (ib +! ib +! (c 2.0 *! ibranch) +! ib) in
      let area =
        ((c 2.0 *! w1) +! (c 2.0 *! wp) +! (c 2.0 *! wcp) +! (c 2.0 *! wn)
         +! (c 2.0 *! wcn) +! (c 4.0 *! w1) +! (wp /! c 2.0))
        *! l
      in
      Some
        [ ("gain_db", c 20.0 *! D.log10_ gain);
          ("ugf_hz", ugf);
          ("phase_margin_deg", pm);
          ("power_w", power);
          ("area_m2", area);
          ("swing_low_v", swing_low);
          ("swing_high_v", swing_high) ]
    | _ -> None

  let comparator_equations (tech : Tech.t) x =
    match x with
    | [| w1; w3; w5; w6; w7; l; ib |] ->
      (match miller_equations tech [| w1; w3; w5; w6; w7; l; ib; c 1e-18; c 0.05e-12 |] with
       | None -> None
       | Some perf ->
         (* without compensation the bandwidth is the first-stage pole *)
         Some
           (List.map
              (fun (name, v) ->
                if name = "ugf_hz" then begin
                  let id1 = ib /! c 2.0 in
                  let gm1 = gm_of tech ~kp:tech.Tech.kp_n ~w:w1 ~l ~id:id1 in
                  (name, gm1 /! c (2.0 *. Float.pi *. 0.2e-12))
                end
                else (name, v))
              perf))
    | _ -> None

  let equations (tech : Tech.t) t_name x =
    match t_name with
    | "ota-5t" -> ota_5t_equations tech x
    | "miller-ota" -> miller_equations tech x
    | "folded-cascode" -> folded_cascode_equations tech x
    | "comparator" -> comparator_equations tech x
    | _ -> None
end

module Float_domain = struct
  type v = float

  let const x = x
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let sqrt_ = sqrt
  let log10_ = log10
  let min_ = Float.min
  let sq x = x ** 2.0
  let atan_ = atan
end

module Interval_domain = struct
  type v = Interval.t

  let const = Interval.point
  let add = Interval.add
  let sub = Interval.sub
  let mul = Interval.mul
  let div = Interval.ediv
  let sqrt_ = Interval.sqrt_
  let log10_ = Interval.log10_
  let min_ = Interval.min_
  let sq t = Interval.powi t 2
  let atan_ = Interval.atan_
end

module F = Core (Float_domain)
module Interval_eval = Core (Interval_domain)

let gm_of = F.gm_of
let gds_of = F.gds_of
let vov_of = F.vov_of
let deg_atan = F.deg_atan
let gate_cap = F.gate_cap

let evaluate ?(tech = Mixsyn_circuit.Tech.generic_07um) template x =
  let x = Template.clamp template x in
  F.equations tech template.Template.t_name x

let supported template =
  match template.Template.t_name with
  | "ota-5t" | "miller-ota" | "folded-cascode" | "comparator" -> true
  | _ -> false
