module Detector = Mixsyn_circuit.Detector
module Netlist = Mixsyn_circuit.Netlist
module Tech = Mixsyn_circuit.Tech

type metrics = Spec.performance

(* Pulse shape (time, volts relative to baseline) of the front-end response
   to the injected charge, either from an AWE model of the linearised
   network or from the transient engine. *)
let pulse_waveform tech config nl op ~use_transient =
  let out = Netlist.find_net nl "out" in
  if use_transient then begin
    let tr = Mixsyn_engine.Tran.solve ~tech nl op ~t_stop:12e-6 ~dt:6e-9 in
    let w = Mixsyn_engine.Tran.waveform tr out in
    let v0 = snd w.(0) in
    Some (Array.map (fun (t, v) -> (t, v -. v0)) w)
  end
  else begin
    match Mixsyn_awe.Awe.of_circuit ~tech nl op ~out ~order:8 with
    | exception Failure _ -> None
    | tf ->
      let tf = Mixsyn_awe.Awe.stable_part tf in
      if Array.length tf.Mixsyn_awe.Awe.poles = 0 then None
      else begin
        let q = config.Detector.q_in in
        (* the AC excitation is a 1 A current source, so the transfer is a
           transimpedance; a charge impulse Q gives v(t) = Q * h(t) *)
        let n = 1200 in
        let t_stop = 12e-6 in
        let w =
          Array.init n (fun k ->
              let t = float_of_int (k + 1) *. t_stop /. float_of_int n in
              (t, q *. Mixsyn_awe.Awe.impulse_response tf t))
        in
        (* validate the reduced model: the pulse must have settled by the
           end of the window, otherwise fall through to the transient *)
        let _, v_peak = Mixsyn_engine.Tran.peak w in
        let _, v_end = w.(n - 1) in
        if Float.abs v_peak > 0.0 && Float.abs v_end < 0.05 *. Float.abs v_peak then Some w
        else None
      end
  end

let swing_of tech (s : Detector.sizing) =
  (* output-stage headroom: each transconductor drops its bias current
     across the stage resistor, gain appetite eats swing *)
  (tech.Tech.vdd -. (s.Detector.a_stage /. 10.0) -. 1.0) /. 2.0

let measure ?(tech = Tech.generic_07um) ?(config = Detector.default_config)
    ?(use_transient = false) s =
  let nl = Detector.build ~config tech s in
  match Mixsyn_engine.Dc.solve ~tech nl with
  | exception Mixsyn_engine.Dc.No_convergence _ -> None
  | exception Mixsyn_util.Matrix.Real.Singular _ -> None
  | op ->
    let waveform =
      match pulse_waveform tech config nl op ~use_transient with
      | Some w -> Some w
      | None ->
        (* AWE model rejected: fall back to the transient engine *)
        if use_transient then None
        else pulse_waveform tech config nl op ~use_transient:true
    in
    (match waveform with
     | None -> None
     | Some w ->
       let t_peak, v_peak = Mixsyn_engine.Tran.peak w in
       if Float.abs v_peak < 1e-9 then None
       else begin
         let threshold = 0.01 *. Float.abs v_peak in
         let t_return = ref t_peak in
         Array.iter (fun (t, v) -> if Float.abs v > threshold then t_return := t) w;
         let counting_rate = 1.0 /. Float.max !t_return 1e-9 in
         let gain_v_per_fc = Float.abs v_peak /. (config.Detector.q_in /. 1e-15) in
         let out = Netlist.find_net nl "out" in
         let freqs =
           Mixsyn_engine.Ac.log_sweep ~decades_from:2.0 ~decades_to:8.0 ~points_per_decade:8
         in
         let noise = Mixsyn_engine.Noise.analyze ~tech nl op ~out ~freqs in
         let vn = noise.Mixsyn_engine.Noise.integrated_rms in
         let enc =
           vn /. (Float.abs v_peak /. config.Detector.q_in)
           /. Mixsyn_util.Units.electron_charge
         in
         Some
           [ ("peaking_time_s", t_peak -. 20e-9);
             ("counting_rate_hz", counting_rate);
             ("enc_electrons", enc);
             ("gain_v_per_fc", gain_v_per_fc);
             ("swing_v", swing_of tech s);
             ("power_w", Detector.estimated_power tech s config);
             ("area_m2", Detector.estimated_area tech s config) ]
       end)

let specs =
  [ Spec.spec "peaking_time_s" (Spec.At_most 1.5e-6);
    Spec.spec "counting_rate_hz" (Spec.At_least 200e3);
    Spec.spec "enc_electrons" (Spec.At_most 1000.0);
    Spec.spec "gain_v_per_fc" (Spec.Between (19.0, 22.0));
    Spec.spec "swing_v" (Spec.At_least 1.0) ]

let objectives = [ Spec.minimize "power_w"; Spec.minimize ~weight:0.3 "area_m2" ]

let manual = Detector.expert_manual_sizing

type synthesis = {
  sizing : Detector.sizing;
  metrics : metrics;
  evaluations : int;
  elapsed_s : float;
  meets : bool;
}

let synthesize ?(tech = Tech.generic_07um) ?(seed = 11) ?(moves = 40) () =
  Mixsyn_util.Telemetry.with_span "detector.synthesize" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let template = Detector.template () in
  let evaluations = ref 0 in
  (* same memoization as Sizing.size: the annealer and the polish revisit
     clamped vectors, and each revisit used to re-run the full AWE measure *)
  let memo : (float array, metrics option) Mixsyn_util.Eval_cache.t =
    Mixsyn_util.Eval_cache.create "detector.cache"
  in
  let cost_of x =
    let perf =
      Mixsyn_util.Eval_cache.find_or_compute memo
        (Mixsyn_circuit.Template.clamp template x)
        (fun key ->
          incr evaluations;
          measure ~tech (Detector.sizing_of_vector key))
    in
    match perf with
    | None -> 1e7
    | Some perf -> Spec.cost ~specs ~objectives perf
  in
  let rng = Mixsyn_util.Rng.create seed in
  let schedule =
    { Mixsyn_opt.Anneal.t_start = 50.0; t_end = 5e-2; cooling = 0.82; moves_per_stage = moves }
  in
  let problem =
    { Mixsyn_opt.Anneal.initial = Mixsyn_circuit.Template.midpoint template;
      cost = cost_of;
      neighbor =
        (fun rng ~temp01 x ->
          Mixsyn_circuit.Template.perturb template rng ~scale:(0.02 +. (0.25 *. temp01)) x) }
  in
  let outcome = Mixsyn_opt.Anneal.minimize ~schedule ~rng problem in
  let lower = Array.map (fun p -> p.Mixsyn_circuit.Template.lo) template.Mixsyn_circuit.Template.params in
  let upper = Array.map (fun p -> p.Mixsyn_circuit.Template.hi) template.Mixsyn_circuit.Template.params in
  let options = { Mixsyn_opt.Nelder_mead.max_evals = 150; tolerance = 1e-10 } in
  let x, _, _ =
    Mixsyn_opt.Nelder_mead.minimize ~options ~lower ~upper ~f:cost_of
      outcome.Mixsyn_opt.Anneal.best
  in
  let sizing = Detector.sizing_of_vector x in
  (* final verification runs the real transient *)
  let metrics = Option.value (measure ~tech ~use_transient:true sizing) ~default:[] in
  { sizing;
    metrics;
    evaluations = !evaluations;
    elapsed_s = Unix.gettimeofday () -. t0;
    meets = Spec.satisfied specs metrics }

type row = {
  metric : string;
  spec_text : string;
  paper_manual : string;
  paper_synthesis : string;
  ours_manual : string;
  ours_synthesis : string;
}

let fmt_metric name perf =
  match Spec.lookup perf name with
  | None -> "-"
  | Some v ->
    (match name with
     | "peaking_time_s" -> Printf.sprintf "%.2f us" (v *. 1e6)
     | "counting_rate_hz" -> Printf.sprintf "%.0f kHz" (v /. 1e3)
     | "enc_electrons" -> Printf.sprintf "%.0f rms e-" v
     | "gain_v_per_fc" -> Printf.sprintf "%.1f V/fC" v
     | "swing_v" -> Printf.sprintf "+-%.2f V" v
     | "power_w" -> Printf.sprintf "%.1f mW" (v *. 1e3)
     | "area_m2" -> Printf.sprintf "%.2f mm2" (v *. 1e6)
     | _ -> Printf.sprintf "%g" v)

let table1 ?(tech = Tech.generic_07um) ?(seed = 11) ?(moves = 40) () =
  let manual_metrics =
    Option.value (measure ~tech ~use_transient:true manual) ~default:[]
  in
  let synth = synthesize ~tech ~seed ~moves () in
  let row metric spec_text paper_manual paper_synthesis =
    { metric;
      spec_text;
      paper_manual;
      paper_synthesis;
      ours_manual = fmt_metric metric manual_metrics;
      ours_synthesis = fmt_metric metric synth.metrics }
  in
  [ row "peaking_time_s" "< 1.5 us" "1.1 us" "1.1 us";
    row "counting_rate_hz" "> 200 kHz" "200 kHz" "294 kHz";
    row "enc_electrons" "< 1000 rms e-" "750 rms e-" "905 rms e-";
    row "gain_v_per_fc" "20 V/fC" "20 V/fC" "21 V/fC";
    row "swing_v" "> -1..1 V" "-1..1 V" "-1.5..1.5 V";
    row "power_w" "minimal" "40 mW" "7 mW";
    row "area_m2" "minimal" "0.7 mm2" "0.6 mm2" ]

let pp_rows ppf rows =
  Format.fprintf ppf "%-18s | %-14s | %-12s | %-12s | %-12s | %-12s@\n" "metric" "spec"
    "paper manual" "paper synth" "ours manual" "ours synth";
  Format.fprintf ppf "%s@\n" (String.make 96 '-');
  List.iter
    (fun r ->
      Format.fprintf ppf "%-18s | %-14s | %-12s | %-12s | %-12s | %-12s@\n" r.metric
        r.spec_text r.paper_manual r.paper_synthesis r.ours_manual r.ours_synthesis)
    rows
