type net_class = Sensitive | Noisy | Neutral

let compatible a b =
  match (a, b) with
  | Sensitive, Noisy | Noisy, Sensitive -> false
  | (Sensitive | Noisy | Neutral), (Sensitive | Noisy | Neutral) -> true

type net_spec = {
  net : string;
  n_class : net_class;
  coupling_budget : float option;
}

type config = {
  rules : Rules.t;
  extra_margin : float;
  adjacency_penalty : float;
  via_cost : float;
}

let default_config =
  { rules = Rules.generic_07um;
    extra_margin = 6e-6;
    adjacency_penalty = 12.0;
    via_cost = 4.0 }

type wire = {
  w_net : string;
  rects : Geom.rect list;
  length : float;
  vias : int;
}

type result = {
  wires : wire list;
  failed : string list;
  total_length : float;
  total_vias : int;
  coupling : (string * string * float) list;
  symmetric_ok : int;
}

(* grid encoding *)
let free_cell = -1
let obstacle = -2

type grid = {
  nx : int;
  ny : int;
  pitch : float;
  ox : float;  (** world x of grid (0,_) *)
  oy : float;
  state : int array;  (** 2 layers: metal1 = layer 0, metal2 = layer 1 *)
  via_base : float;
}

let index g layer x y = (((layer * g.ny) + y) * g.nx) + x

let in_bounds g x y = x >= 0 && x < g.nx && y >= 0 && y < g.ny

let world_of g x y = (g.ox +. (float_of_int x *. g.pitch), g.oy +. (float_of_int y *. g.pitch))

let grid_of g wx wy =
  (int_of_float (Float.round ((wx -. g.ox) /. g.pitch)),
   int_of_float (Float.round ((wy -. g.oy) /. g.pitch)))

let blocks_metal1 (layer : Geom.layer) =
  match layer with
  | Geom.Ndiff | Geom.Pdiff | Geom.Poly | Geom.Metal1 | Geom.Contact -> true
  | Geom.Metal2 | Geom.Via12 | Geom.Nwell -> false

let build_grid config cells =
  let rules = config.rules in
  (* route on half the wiring pitch so closely spaced stack contacts land on
     distinct nodes; wires still reserve a full pitch through the spacing
     cost *)
  let pitch = rules.Rules.route_pitch /. 2.0 in
  let all_rects = List.concat_map (fun (c : Cell.t) -> c.Cell.rects) cells in
  let bb =
    match Geom.bbox all_rects with
    | Some bb -> bb
    | None -> Geom.rect Geom.Metal1 0.0 0.0 1e-5 1e-5
  in
  let m = config.extra_margin in
  let ox = bb.Geom.x0 -. m and oy = bb.Geom.y0 -. m in
  let nx = int_of_float (Float.ceil ((Geom.width bb +. (2.0 *. m)) /. pitch)) + 1 in
  let ny = int_of_float (Float.ceil ((Geom.height bb +. (2.0 *. m)) /. pitch)) + 1 in
  let g =
    { nx; ny; pitch; ox; oy; state = Array.make (2 * nx * ny) free_cell;
      via_base = config.via_cost }
  in
  (* block metal1 under cell geometry *)
  List.iter
    (fun r ->
      if blocks_metal1 r.Geom.layer then begin
        let x0, y0 = grid_of g r.Geom.x0 r.Geom.y0 in
        let x1, y1 = grid_of g r.Geom.x1 r.Geom.y1 in
        for x = max 0 x0 to min (nx - 1) x1 do
          for y = max 0 y0 to min (ny - 1) y1 do
            g.state.(index g 0 x y) <- obstacle
          done
        done
      end)
    all_rects;
  g

(* priority queue: simple binary heap on (cost, key) *)
module Heap = struct
  type t = {
    mutable data : (float * int) array;
    mutable size : int;
  }

  let create () = { data = Array.make 256 (0.0, 0); size = 0 }

  let push h item =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) (0.0, 0) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- item;
    let rec up i =
      if i > 0 then begin
        let parent = (i - 1) / 2 in
        if fst h.data.(i) < fst h.data.(parent) then begin
          let tmp = h.data.(i) in
          h.data.(i) <- h.data.(parent);
          h.data.(parent) <- tmp;
          up parent
        end
      end
    in
    up h.size;
    h.size <- h.size + 1

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let rec down i =
        let left = (2 * i) + 1 and right = (2 * i) + 2 in
        let smallest = ref i in
        if left < h.size && fst h.data.(left) < fst h.data.(!smallest) then smallest := left;
        if right < h.size && fst h.data.(right) < fst h.data.(!smallest) then smallest := right;
        if !smallest <> i then begin
          let tmp = h.data.(i) in
          h.data.(i) <- h.data.(!smallest);
          h.data.(!smallest) <- tmp;
          down !smallest
        end
      in
      down 0;
      Some top
    end
end

(* Dijkstra from a set of sources to any target; returns the path as node
   indices.  [step_cost] prices entering a node. *)
let search g ~sources ~targets ~step_cost =
  let n = Array.length g.state in
  let dist = Array.make n infinity in
  let prev = Array.make n (-1) in
  let heap = Heap.create () in
  let target_set = Array.make n false in
  List.iter (fun t -> target_set.(t) <- true) targets;
  List.iter
    (fun s ->
      dist.(s) <- 0.0;
      Heap.push heap (0.0, s))
    sources;
  let found = ref None in
  let expansions = ref 0 in
  let rec run () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, node) ->
      incr expansions;
      if !found <> None then ()
      else if d > dist.(node) then run ()
      else if target_set.(node) then found := Some node
      else begin
        let layer = node / (g.nx * g.ny) in
        let rest = node mod (g.nx * g.ny) in
        let y = rest / g.nx and x = rest mod g.nx in
        let try_neighbor nlayer nx_ ny_ base =
          if in_bounds g nx_ ny_ then begin
            let ni = index g nlayer nx_ ny_ in
            let sc = step_cost ni in
            if sc < infinity then begin
              let nd = d +. base +. sc in
              if nd < dist.(ni) then begin
                dist.(ni) <- nd;
                prev.(ni) <- node;
                Heap.push heap (nd, ni)
              end
            end
          end
        in
        try_neighbor layer (x + 1) y 1.0;
        try_neighbor layer (x - 1) y 1.0;
        try_neighbor layer x (y + 1) 1.0;
        try_neighbor layer x (y - 1) 1.0;
        try_neighbor (1 - layer) x y g.via_base;
        run ()
      end
  in
  run ();
  Mixsyn_util.Telemetry.add "router.grid_expansions" !expansions;
  match !found with
  | None -> None
  | Some t ->
    let rec trace node acc = if node = -1 then acc else trace prev.(node) (node :: acc) in
    Some (trace t [])

let route_pass ?(config = default_config) ?(symmetric_pairs = []) ~priority ~salt ~cells ~nets () =
  let g = build_grid config cells in
  let nets = Array.of_list nets in
  let net_id = Hashtbl.create 16 in
  Array.iteri (fun i spec -> Hashtbl.replace net_id spec.net i) nets;
  let class_of = Array.map (fun spec -> spec.n_class) nets in
  let via_at = Array.make (Array.length g.state) false in
  (* pin nodes per net *)
  let pin_nodes = Array.make (Array.length nets) [] in
  (* snap each pin to the nearest metal1 node that is free or already owned
     by the same net (pins of distinct nets can sit closer than the pitch) *)
  let assign_pin id gx gy =
    let try_node x y =
      if in_bounds g x y then begin
        let node = index g 0 x y in
        let s = g.state.(node) in
        if s = free_cell || s = obstacle || s = id then begin
          g.state.(node) <- id;
          pin_nodes.(id) <- node :: pin_nodes.(id);
          true
        end
        else false
      end
      else false
    in
    let rec ring r =
      if r > 4 then ()
      else begin
        let hit = ref false in
        for dx = -r to r do
          for dy = -r to r do
            if (not !hit) && max (abs dx) (abs dy) = r then
              if try_node (gx + dx) (gy + dy) then hit := true
          done
        done;
        if not !hit then ring (r + 1)
      end
    in
    ring 0
  in
  List.iter
    (fun (c : Cell.t) ->
      List.iter
        (fun (p : Cell.pin) ->
          match Hashtbl.find_opt net_id p.Cell.pin_net with
          | None -> ()
          | Some id ->
            let x, y = Cell.pin_center p in
            let gx, gy = grid_of g x y in
            assign_pin id gx gy)
        c.Cell.pins)
    cells;
  let incompatible_neighbor id node =
    (* same-layer 4-neighbourhood *)
    let layer = node / (g.nx * g.ny) in
    let rest = node mod (g.nx * g.ny) in
    let y = rest / g.nx and x = rest mod g.nx in
    let bad = ref false in
    let look nx_ ny_ =
      if in_bounds g nx_ ny_ then begin
        let s = g.state.(index g layer nx_ ny_) in
        if s >= 0 && s <> id && not (compatible class_of.(s) class_of.(id)) then bad := true
      end
    in
    look (x + 1) y;
    look (x - 1) y;
    look x (y + 1);
    look x (y - 1);
    !bad
  in
  let step_cost id node =
    let s = g.state.(node) in
    if s = obstacle then infinity
    else if s >= 0 && s <> id then infinity
    else begin
      let budget_scale =
        match nets.(id).coupling_budget with Some _ -> 8.0 | None -> 1.0
      in
      let layer = node / (g.nx * g.ny) in
      let via_extra = if layer = 1 then 0.05 else 0.0 in
      (* mild preference for metal1 *)
      (if incompatible_neighbor id node then config.adjacency_penalty *. budget_scale else 0.0)
      +. via_extra
    end
  in
  let occupy id path =
    List.iter (fun node -> g.state.(node) <- id) path;
    (* vias: layer changes along the path *)
    let rec vias acc = function
      | a :: (b :: _ as rest) ->
        let la = a / (g.nx * g.ny) and lb = b / (g.nx * g.ny) in
        if la <> lb then begin
          via_at.(a) <- true;
          vias (acc + 1) rest
        end
        else vias acc rest
      | [ _ ] | [] -> acc
    in
    vias 0 path
  in
  let rects_of_path path =
    let half = 0.5 *. config.rules.Rules.min_width Geom.Metal1 in
    List.filter_map
      (fun node ->
        let layer_i = node / (g.nx * g.ny) in
        let rest = node mod (g.nx * g.ny) in
        let y = rest / g.nx and x = rest mod g.nx in
        let wx, wy = world_of g x y in
        let layer = if layer_i = 0 then Geom.Metal1 else Geom.Metal2 in
        Some (Geom.rect layer (wx -. half) (wy -. half) (wx +. half) (wy +. half)))
      path
  in
  (* net ordering: sensitive nets first (they get clean tracks), then by pin
     count *)
  let order =
    let ids = Array.to_list (Array.mapi (fun i _ -> i) nets) in
    let rank i =
      (* lower ranks route first: rip-up priority, then sensitivity, then
         pin count; the salt rotates ties so retry passes explore different
         orderings *)
      let prio = if List.mem nets.(i).net priority then 0 else 1 in
      let sens = if class_of.(i) = Sensitive then 0 else 1 in
      (prio, sens, (i + salt) mod max 1 (Array.length nets), -List.length pin_nodes.(i))
    in
    List.sort (fun a b -> compare (rank a) (rank b)) ids
  in
  let wires = ref [] and failed = ref [] in
  let symmetric_ok = ref 0 in
  let mirrored_paths : (string, int list) Hashtbl.t = Hashtbl.create 4 in
  (* symmetry: if net is the second of a pair and its partner routed, try the
     mirror image about the partner's pin-centroid axis *)
  let partner_of net =
    List.fold_left
      (fun acc (a, b) -> if b = net then Some a else acc)
      None symmetric_pairs
  in
  let axis_x =
    (* the global mirror axis: centroid of all pins of paired nets *)
    let xs = ref [] in
    List.iter
      (fun (a, b) ->
        List.iter
          (fun name ->
            match Hashtbl.find_opt net_id name with
            | None -> ()
            | Some id ->
              List.iter
                (fun node ->
                  let rest = node mod (g.nx * g.ny) in
                  xs := float_of_int (rest mod g.nx) :: !xs)
                pin_nodes.(id))
          [ a; b ])
      symmetric_pairs;
    match !xs with
    | [] -> 0.0
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  let mirror_node node =
    let layer = node / (g.nx * g.ny) in
    let rest = node mod (g.nx * g.ny) in
    let y = rest / g.nx and x = rest mod g.nx in
    let mx = int_of_float (Float.round ((2.0 *. axis_x) -. float_of_int x)) in
    if in_bounds g mx y then Some (index g layer mx y) else None
  in
  let route_net id =
    let spec = nets.(id) in
    match pin_nodes.(id) with
    | [] | [ _ ] -> () (* nothing to connect *)
    | first :: rest ->
      let try_mirror () =
        match partner_of spec.net with
        | None -> None
        | Some partner_name ->
          (match Hashtbl.find_opt mirrored_paths partner_name with
           | None -> None
           | Some partner_path ->
             let mirrored = List.filter_map mirror_node partner_path in
             if List.length mirrored <> List.length partner_path then None
             else if
               List.for_all
                 (fun node ->
                   let s = g.state.(node) in
                   s = free_cell || s = id)
                 mirrored
             then Some mirrored
             else None)
      in
      (match try_mirror () with
       | Some path ->
         incr symmetric_ok;
         let vias = occupy id path in
         let rects = rects_of_path path in
         let length = float_of_int (List.length path) *. g.pitch in
         wires := { w_net = spec.net; rects; length; vias } :: !wires
       | None ->
         let tree = ref [ first ] in
         let all_path = ref [] in
         let ok = ref true in
         List.iter
           (fun target ->
             if !ok then begin
               match search g ~sources:!tree ~targets:[ target ] ~step_cost:(step_cost id) with
               | None -> ok := false
               | Some path ->
                 ignore (occupy id path);
                 all_path := path @ !all_path;
                 tree := path @ !tree
             end)
           rest;
         if !ok then begin
           let path = !all_path in
           Hashtbl.replace mirrored_paths spec.net path;
           let vias = occupy id path in
           let rects = rects_of_path path in
           let length = float_of_int (List.length path) *. g.pitch in
           wires := { w_net = spec.net; rects; length; vias } :: !wires
         end
         else failed := spec.net :: !failed)
  in
  List.iter route_net order;
  (* coupling: adjacent same-layer cells of incompatible nets *)
  let coupling_tbl : (int * int, float) Hashtbl.t = Hashtbl.create 16 in
  for layer = 0 to 1 do
    for y = 0 to g.ny - 1 do
      for x = 0 to g.nx - 2 do
        let a = g.state.(index g layer x y) and b = g.state.(index g layer (x + 1) y) in
        if a >= 0 && b >= 0 && a <> b then begin
          let key = (min a b, max a b) in
          let prev = try Hashtbl.find coupling_tbl key with Not_found -> 0.0 in
          Hashtbl.replace coupling_tbl key
            (prev +. (Rules.cap_coupling_per_length *. g.pitch))
        end
      done
    done;
    for x = 0 to g.nx - 1 do
      for y = 0 to g.ny - 2 do
        let a = g.state.(index g layer x y) and b = g.state.(index g layer x (y + 1)) in
        if a >= 0 && b >= 0 && a <> b then begin
          let key = (min a b, max a b) in
          let prev = try Hashtbl.find coupling_tbl key with Not_found -> 0.0 in
          Hashtbl.replace coupling_tbl key
            (prev +. (Rules.cap_coupling_per_length *. g.pitch))
        end
      done
    done
  done;
  let coupling =
    Hashtbl.fold (fun (a, b) c acc -> (nets.(a).net, nets.(b).net, c) :: acc) coupling_tbl []
  in
  let wires = !wires in
  { wires;
    failed = !failed;
    total_length = List.fold_left (fun acc w -> acc +. w.length) 0.0 wires;
    total_vias = List.fold_left (fun acc w -> acc + w.vias) 0 wires;
    coupling;
    symmetric_ok = !symmetric_ok }

let coupling_on result net =
  List.fold_left
    (fun acc (a, b, c) -> if a = net || b = net then acc +. c else acc)
    0.0 result.coupling


let route ?config ?symmetric_pairs ~cells ~nets () =
  (* rip-up and re-route: nets that failed a pass go first in the next,
     and the tie-break ordering is rotated; keep the best pass seen *)
  let rec attempt k salt priority best =
    let result = route_pass ?config ?symmetric_pairs ~priority ~salt ~cells ~nets () in
    let best =
      match best with
      | Some b when List.length b.failed <= List.length result.failed -> Some b
      | Some _ | None -> Some result
    in
    if result.failed = [] || k = 0 then begin
      let final = Option.get best in
      Mixsyn_util.Telemetry.add "router.failed_nets" (List.length final.failed);
      final
    end
    else begin
      Mixsyn_util.Telemetry.count "router.ripup_passes";
      attempt (k - 1) (salt + 1) (result.failed @ priority) best
    end
  in
  Mixsyn_util.Telemetry.count "router.routes";
  attempt 6 0 [] None
