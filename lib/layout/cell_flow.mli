(** Cell-level layout flows — the Fig. 2 experiment.

    {!koan} is the macrocell-style automatic flow: stack extraction,
    annealing placement with symmetry constraints and fold variants, maze
    routing with net classes, parasitic extraction.  {!procedural} is the
    module-generation baseline ([32], the Philips-style practice [5]): a
    fixed row recipe, standing in for the paper's four manual layouts (four
    recipe styles give four baseline layouts). *)

type report = {
  flow_name : string;
  placed : Cell.t list;
  route : Maze_router.result;
  area_m2 : float;        (** bounding box of cells and wiring *)
  wirelength_m : float;
  vias : int;
  complete : bool;        (** all signal nets routed *)
  sensitive_coupling_f : float;
      (** coupling capacitance seen by [Sensitive] nets *)
  parasitics : Extract.net_parasitics list;
}

val classify_net : string -> Maze_router.net_class
(** Heuristic net classes: differential inputs and designated sensitive
    nets are [Sensitive]; supplies, outputs and clocks are [Noisy]. *)

val koan :
  ?seed:int ->
  ?coupling_budgets:(string * float) list ->
  ?restarts:int ->
  ?jobs:int ->
  Mixsyn_circuit.Netlist.t ->
  report
(** [coupling_budgets] activates ROAD-style parasitic-bounded routing for
    the named nets.  [restarts] (default 1) forwards to {!Placer.place} as
    annealing multi-starts per placement attempt.  With [jobs > 1]
    (default {!Mixsyn_util.Pool.default_jobs}) the up-to-4 placement
    attempts evaluate concurrently on the shared domain pool; the report
    depends only on [seed] and [restarts], never on [jobs]. *)

val procedural : ?style:int -> Mixsyn_circuit.Netlist.t -> report
(** [style] in 0..3 selects one of four fixed row recipes. *)

val items_of_netlist :
  Mixsyn_circuit.Netlist.t ->
  Placer.item array * Maze_router.net_spec list * Placer.symmetry
(** The shared preparation: stacks + fold variants + net specs + symmetry
    groups extracted from the schematic.  A matched device absorbed into a
    multi-device stack contributes its stack to the mirror constraints; a
    pair merged into one stack is matched by construction and dropped. *)

val tagged_geometry : report -> (string * Geom.rect) list
(** Every mask rectangle of the finished layout tagged with its owner — the
    generated cell's name, or ["net:<name>"] for routed wire — the form the
    DRC pass consumes.  Pin markers are not mask geometry and are
    excluded. *)
