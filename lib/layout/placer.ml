module Rng = Mixsyn_util.Rng

type item = {
  item_name : string;
  variants : Cell.t array;
}

type site = {
  variant : int;
  orient : Geom.orientation;
  x : float;
  y : float;
}

type placement = site array

type symmetry = {
  mirror_pairs : (int * int) list;
  self_symmetric : int list;
}

let no_symmetry = { mirror_pairs = []; self_symmetric = [] }

type weights = {
  w_overlap : float;
  w_area : float;
  w_wire : float;
  w_symmetry : float;
}

let default_weights =
  (* scales: areas ~1e-10 m^2, wires ~1e-4 m; normalise to comparable units *)
  { w_overlap = 5e12; w_area = 1e12; w_wire = 3e5; w_symmetry = 3e5 }

let realized_cell item site =
  let cell = Cell.transform site.orient item.variants.(site.variant) in
  Cell.translate site.x site.y cell

let realized items placement =
  Array.to_list (Array.mapi (fun i site -> realized_cell items.(i) site) placement)

let footprint item site =
  let cell = item.variants.(site.variant) in
  let w, h =
    match site.orient with
    | Geom.R90 | Geom.R270 | Geom.MXR90 | Geom.MYR90 -> (cell.Cell.ch, cell.Cell.cw)
    | Geom.R0 | Geom.R180 | Geom.MX | Geom.MY -> (cell.Cell.cw, cell.Cell.ch)
  in
  Geom.rect Geom.Metal1 site.x site.y (site.x +. w) (site.y +. h)

let orient_index = function
  | Geom.R0 -> 0
  | Geom.R90 -> 1
  | Geom.R180 -> 2
  | Geom.R270 -> 3
  | Geom.MX -> 4
  | Geom.MY -> 5
  | Geom.MXR90 -> 6
  | Geom.MYR90 -> 7

(* ---- incremental cost evaluator --------------------------------------- *)

(* The annealer proposes ~10^5 single-cell moves per chain.  Rebuilding
   realized cells, a fresh net table and all O(n^2) bloated boxes per move
   (the old [cost_parts]) allocated ~9e8 minor words per chain, and in
   OCaml 5 every minor collection stops all domains — multistart chains
   serialized each other into a slowdown.  [Eval] keeps the placement
   state in flat arrays (per-cell footprint and halo-bloated boxes,
   per-net HPWL bounds over precomputed transformed pin offsets) and
   evaluates a move by recomputing only what it touches: the moved cell's
   boxes, the nets on that cell, the full bbox (O(n) flops, no
   allocation), and the symmetry terms only when a constrained cell
   moved.  Every cached entry is recomputed with arithmetic identical to
   a from-scratch build, so after any move sequence the state is
   *bit-equal* to a fresh evaluator on the same placement — the property
   the tests pin down. *)
module Eval = struct
  (* per (item, variant): footprint dims and transformed pin rects, one
     row per orientation in [Geom.all_orientations] order *)
  type vtab = {
    v_fw : float array;          (* footprint width, per orientation *)
    v_fh : float array;
    v_nets : int array;          (* per pin: net id (orientation-invariant) *)
    v_px0 : float array array;   (* per orientation: per pin, rect x0 *)
    v_py0 : float array array;
    v_px1 : float array array;
    v_py1 : float array array;
  }

  (* shared read-only tables, built once per (items, sym, rules, weights)
     and safely shared across chains on different domains *)
  type tables = {
    t_n : int;
    t_halo : float;
    t_weights : weights;
    t_vt : vtab array array;        (* per item, per variant *)
    t_n_nets : int;
    t_item_nets : int array array;  (* per item: distinct net ids, ascending *)
    t_net_items : int array array;  (* per net: items with pins on it, ascending *)
    t_pairs : (int * int) array;    (* mirror pairs, in declaration order *)
    t_selfs : int array;            (* self-symmetric items, in order *)
    t_sym_member : bool array;      (* per item: referenced by any constraint *)
    t_any_sym : bool;
  }

  (* all-float scratch: flat record, so accumulator stores never box *)
  type scratch = {
    mutable sc_x0 : float;
    mutable sc_y0 : float;
    mutable sc_x1 : float;
    mutable sc_y1 : float;
    mutable sc_acc : float;
  }

  type pending = P_none | P_one | P_swap

  type t = {
    tb : tables;
    (* the placement proper *)
    var_ : int array;
    ori : int array;
    sx : float array;
    sy : float array;
    (* derived state, always bit-equal to a from-scratch rebuild *)
    fx0 : float array; fy0 : float array; fx1 : float array; fy1 : float array;
    bx0 : float array; by0 : float array; bx1 : float array; by1 : float array;
    nx0 : float array; ny0 : float array; nx1 : float array; ny1 : float array;
    ncount : int array;             (* pins currently on each net *)
    mutable bbox_area : float;
    mutable sym_v : float;
    scr : scratch;
    mutable icnt : int;
    (* pending tentative move, for [revert] *)
    mutable pend : pending;
    mutable pi : int; mutable pj : int;
    mutable pi_var : int; mutable pi_ori : int;
    mutable pi_x : float; mutable pi_y : float;
    mutable pj_x : float; mutable pj_y : float;
    (* best-seen snapshot for [remember]/[recall] *)
    s_var : int array; s_ori : int array; s_x : float array; s_y : float array;
  }

  (* -- table construction ----------------------------------------------- *)

  let make_tables ~rules ~weights (items : item array) (sym : symmetry) =
    let n = Array.length items in
    if n = 0 then invalid_arg "Placer: empty item set";
    let net_ids : (string, int) Hashtbl.t = Hashtbl.create 32 in
    let next_net = ref 0 in
    (* net ids in first-appearance order: items ascending, variants
       ascending, pins in cell order — deterministic *)
    let net_id name =
      match Hashtbl.find_opt net_ids name with
      | Some g -> g
      | None ->
        let g = !next_net in
        incr next_net;
        Hashtbl.replace net_ids name g;
        g
    in
    let vt =
      Array.map
        (fun item ->
          Array.map
            (fun cell ->
              let n_orient = Array.length Geom.all_orientations in
              let transformed =
                Array.map (fun o -> Cell.transform o cell) Geom.all_orientations
              in
              let pins0 = transformed.(0).Cell.pins in
              let npins = List.length pins0 in
              let v_nets =
                Array.of_list (List.map (fun p -> net_id p.Cell.pin_net) pins0)
              in
              let row f =
                Array.init n_orient (fun o ->
                    let arr = Array.make npins 0.0 in
                    List.iteri
                      (fun p pin -> arr.(p) <- f pin.Cell.pin_rect)
                      transformed.(o).Cell.pins;
                    arr)
              in
              (* footprint dims come from the *untransformed* variant, with
                 the same swap rule as [footprint] *)
              let fw = Array.make n_orient cell.Cell.cw in
              let fh = Array.make n_orient cell.Cell.ch in
              List.iter
                (fun o ->
                  let k = orient_index o in
                  fw.(k) <- cell.Cell.ch;
                  fh.(k) <- cell.Cell.cw)
                [ Geom.R90; Geom.R270; Geom.MXR90; Geom.MYR90 ];
              { v_fw = fw;
                v_fh = fh;
                v_nets;
                v_px0 = row (fun r -> r.Geom.x0);
                v_py0 = row (fun r -> r.Geom.y0);
                v_px1 = row (fun r -> r.Geom.x1);
                v_py1 = row (fun r -> r.Geom.y1) })
            item.variants)
        items
    in
    let n_nets = !next_net in
    let item_nets =
      Array.map
        (fun rows ->
          let seen = Hashtbl.create 8 in
          Array.iter
            (fun v -> Array.iter (fun g -> Hashtbl.replace seen g ()) v.v_nets)
            rows;
          let l = Hashtbl.fold (fun g () acc -> g :: acc) seen [] in
          Array.of_list (List.sort compare l))
        vt
    in
    let net_items =
      let members = Array.make n_nets [] in
      for i = n - 1 downto 0 do
        Array.iter (fun g -> members.(g) <- i :: members.(g)) item_nets.(i)
      done;
      Array.map Array.of_list members
    in
    let sym_member = Array.make n false in
    List.iter
      (fun (i, j) ->
        sym_member.(i) <- true;
        sym_member.(j) <- true)
      sym.mirror_pairs;
    List.iter (fun i -> sym_member.(i) <- true) sym.self_symmetric;
    { t_n = n;
      t_halo = 1.2 *. rules.Rules.route_pitch;
      t_weights = weights;
      t_vt = vt;
      t_n_nets = n_nets;
      t_item_nets = item_nets;
      t_net_items = net_items;
      t_pairs = Array.of_list sym.mirror_pairs;
      t_selfs = Array.of_list sym.self_symmetric;
      t_sym_member = sym_member;
      t_any_sym = sym.mirror_pairs <> [] || sym.self_symmetric <> [] }

  (* -- exact refresh of derived state ----------------------------------- *)

  (* footprint box: [Geom.rect Metal1 x y (x+.w) (y+.h)] with w,h >= 0, so
     the min/max normalization is the identity; bloated box per
     [Geom.bloat t_halo] *)
  let refresh_cell t i =
    let vt = t.tb.t_vt.(i).(t.var_.(i)) in
    let o = t.ori.(i) in
    let x = t.sx.(i) and y = t.sy.(i) in
    let x1 = x +. vt.v_fw.(o) and y1 = y +. vt.v_fh.(o) in
    t.fx0.(i) <- x;
    t.fy0.(i) <- y;
    t.fx1.(i) <- x1;
    t.fy1.(i) <- y1;
    let halo = t.tb.t_halo in
    t.bx0.(i) <- x -. halo;
    t.by0.(i) <- y -. halo;
    t.bx1.(i) <- x1 +. halo;
    t.by1.(i) <- y1 +. halo

  (* HPWL bounds of net [g]: min/max over realized pin centres, scanned in
     item order then pin order — the same value sequence the old
     per-placement rebuild inserted, and min/max are order-insensitive,
     so the bounds are bit-equal to it *)
  let refresh_net t g =
    let s = t.scr in
    s.sc_x0 <- infinity;
    s.sc_y0 <- infinity;
    s.sc_x1 <- neg_infinity;
    s.sc_y1 <- neg_infinity;
    t.icnt <- 0;
    let members = t.tb.t_net_items.(g) in
    for k = 0 to Array.length members - 1 do
      let i = members.(k) in
      let vt = t.tb.t_vt.(i).(t.var_.(i)) in
      let o = t.ori.(i) in
      let px0 = vt.v_px0.(o) and py0 = vt.v_py0.(o) in
      let px1 = vt.v_px1.(o) and py1 = vt.v_py1.(o) in
      let dx = t.sx.(i) and dy = t.sy.(i) in
      for p = 0 to Array.length vt.v_nets - 1 do
        if vt.v_nets.(p) = g then begin
          (* centre of the translated pin rect, associated exactly as
             [Geom.center (Geom.translate dx dy r)] *)
          let cx = 0.5 *. ((px0.(p) +. dx) +. (px1.(p) +. dx)) in
          let cy = 0.5 *. ((py0.(p) +. dy) +. (py1.(p) +. dy)) in
          s.sc_x0 <- Float.min s.sc_x0 cx;
          s.sc_y0 <- Float.min s.sc_y0 cy;
          s.sc_x1 <- Float.max s.sc_x1 cx;
          s.sc_y1 <- Float.max s.sc_y1 cy;
          t.icnt <- t.icnt + 1
        end
      done
    done;
    t.nx0.(g) <- s.sc_x0;
    t.ny0.(g) <- s.sc_y0;
    t.nx1.(g) <- s.sc_x1;
    t.ny1.(g) <- s.sc_y1;
    t.ncount.(g) <- t.icnt

  (* bounding box over all footprints, folded in index order exactly like
     [Geom.bbox] over the box list *)
  let refresh_bbox t =
    let s = t.scr in
    s.sc_x0 <- t.fx0.(0);
    s.sc_y0 <- t.fy0.(0);
    s.sc_x1 <- t.fx1.(0);
    s.sc_y1 <- t.fy1.(0);
    for i = 1 to t.tb.t_n - 1 do
      s.sc_x0 <- Float.min s.sc_x0 t.fx0.(i);
      s.sc_y0 <- Float.min s.sc_y0 t.fy0.(i);
      s.sc_x1 <- Float.max s.sc_x1 t.fx1.(i);
      s.sc_y1 <- Float.max s.sc_y1 t.fy1.(i)
    done;
    t.bbox_area <- (s.sc_x1 -. s.sc_x0) *. (s.sc_y1 -. s.sc_y0)

  let cxf t i = 0.5 *. (t.fx0.(i) +. t.fx1.(i))
  let cyf t i = 0.5 *. (t.fy0.(i) +. t.fy1.(i))

  (* symmetry violation, with the centre sum, axis division and violation
     accumulation associated exactly as the old list-based code *)
  let sym_term t =
    let tb = t.tb in
    if not tb.t_any_sym then 0.0
    else begin
      let s = t.scr in
      s.sc_acc <- 0.0;
      for k = 0 to Array.length tb.t_pairs - 1 do
        let i, j = tb.t_pairs.(k) in
        s.sc_acc <- s.sc_acc +. (0.5 *. (cxf t i +. cxf t j))
      done;
      for k = 0 to Array.length tb.t_selfs - 1 do
        s.sc_acc <- s.sc_acc +. cxf t tb.t_selfs.(k)
      done;
      let count = Array.length tb.t_pairs + Array.length tb.t_selfs in
      let axis = s.sc_acc /. float_of_int count in
      s.sc_acc <- 0.0;
      for k = 0 to Array.length tb.t_pairs - 1 do
        let i, j = tb.t_pairs.(k) in
        s.sc_acc <-
          s.sc_acc
          +. Float.abs (cxf t i +. cxf t j -. (2.0 *. axis))
          +. Float.abs (cyf t i -. cyf t j)
      done;
      for k = 0 to Array.length tb.t_selfs - 1 do
        s.sc_acc <- s.sc_acc +. Float.abs (cxf t tb.t_selfs.(k) -. axis)
      done;
      s.sc_acc
    end

  let refresh_sym t = t.sym_v <- sym_term t

  (* -- queries (fixed summation order) ---------------------------------- *)

  (* halo-bloated pairwise overlap, identical arithmetic to
     [Geom.intersection_area (bloat halo bi) (bloat halo bj)] *)
  let overlap_total t =
    let s = t.scr in
    s.sc_acc <- 0.0;
    let n = t.tb.t_n in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let w = Float.min t.bx1.(i) t.bx1.(j) -. Float.max t.bx0.(i) t.bx0.(j) in
        let h = Float.min t.by1.(i) t.by1.(j) -. Float.max t.by0.(i) t.by0.(j) in
        if w > 0.0 && h > 0.0 then s.sc_acc <- s.sc_acc +. (w *. h)
        else s.sc_acc <- s.sc_acc +. 0.0
      done
    done;
    s.sc_acc

  let wire_total t =
    let s = t.scr in
    s.sc_acc <- 0.0;
    for g = 0 to t.tb.t_n_nets - 1 do
      if t.ncount.(g) > 0 then
        s.sc_acc <- s.sc_acc +. (t.nx1.(g) -. t.nx0.(g)) +. (t.ny1.(g) -. t.ny0.(g))
    done;
    s.sc_acc

  let cost_parts t = (overlap_total t, t.bbox_area, wire_total t, t.sym_v)

  let cost t =
    let w = t.tb.t_weights in
    (w.w_overlap *. overlap_total t)
    +. (w.w_area *. t.bbox_area)
    +. (w.w_wire *. wire_total t)
    +. (w.w_symmetry *. t.sym_v)

  (* -- move application -------------------------------------------------- *)

  (* overlap of cell [i] against everyone else — the only overlap terms a
     single-cell move can change *)
  let row_overlap t i =
    let s = t.scr in
    s.sc_acc <- 0.0;
    for j = 0 to t.tb.t_n - 1 do
      if j <> i then begin
        let w = Float.min t.bx1.(i) t.bx1.(j) -. Float.max t.bx0.(i) t.bx0.(j) in
        let h = Float.min t.by1.(i) t.by1.(j) -. Float.max t.by0.(i) t.by0.(j) in
        if w > 0.0 && h > 0.0 then s.sc_acc <- s.sc_acc +. (w *. h)
      end
    done;
    s.sc_acc

  let net_hpwl t g =
    if t.ncount.(g) = 0 then 0.0
    else (t.nx1.(g) -. t.nx0.(g)) +. (t.ny1.(g) -. t.ny0.(g))

  let item_wl t i =
    let nets = t.tb.t_item_nets.(i) in
    let acc = ref 0.0 in
    for k = 0 to Array.length nets - 1 do
      acc := !acc +. net_hpwl t nets.(k)
    done;
    !acc

  (* merge-walk the two sorted per-item net lists, applying [f] to each
     distinct net — the affected set of a swap, without allocation *)
  let union_nets t i j f =
    let a = t.tb.t_item_nets.(i) and b = t.tb.t_item_nets.(j) in
    let la = Array.length a and lb = Array.length b in
    let ka = ref 0 and kb = ref 0 in
    while !ka < la || !kb < lb do
      if !kb >= lb then begin f t a.(!ka); incr ka end
      else if !ka >= la then begin f t b.(!kb); incr kb end
      else begin
        let ga = a.(!ka) and gb = b.(!kb) in
        if ga < gb then begin f t ga; incr ka end
        else if gb < ga then begin f t gb; incr kb end
        else begin f t ga; incr ka; incr kb end
      end
    done

  let union_wl t i j =
    let acc = ref 0.0 in
    union_nets t i j (fun t g -> acc := !acc +. net_hpwl t g);
    !acc

  let weighted t ~d_overlap ~d_area ~d_wire ~d_sym =
    let w = t.tb.t_weights in
    (w.w_overlap *. d_overlap) +. (w.w_area *. d_area) +. (w.w_wire *. d_wire)
    +. (w.w_symmetry *. d_sym)

  (* tentatively re-site cell [i]; returns the weighted cost delta *)
  let set_site_raw t i ~variant ~ori ~x ~y =
    if t.pend <> P_none then invalid_arg "Placer.Eval: move already pending";
    let ov0 = row_overlap t i in
    let wl0 = item_wl t i in
    let a0 = t.bbox_area in
    let sv0 = t.sym_v in
    t.pend <- P_one;
    t.pi <- i;
    t.pi_var <- t.var_.(i);
    t.pi_ori <- t.ori.(i);
    t.pi_x <- t.sx.(i);
    t.pi_y <- t.sy.(i);
    t.var_.(i) <- variant;
    t.ori.(i) <- ori;
    t.sx.(i) <- x;
    t.sy.(i) <- y;
    refresh_cell t i;
    let nets = t.tb.t_item_nets.(i) in
    for k = 0 to Array.length nets - 1 do
      refresh_net t nets.(k)
    done;
    refresh_bbox t;
    if t.tb.t_sym_member.(i) then refresh_sym t;
    let ov1 = row_overlap t i in
    let wl1 = item_wl t i in
    weighted t ~d_overlap:(ov1 -. ov0) ~d_area:(t.bbox_area -. a0)
      ~d_wire:(wl1 -. wl0) ~d_sym:(t.sym_v -. sv0)

  (* tentatively exchange the positions of [i] and [j] (variants and
     orientations stay put, as in the annealer's swap move) *)
  let swap_raw t i j =
    if t.pend <> P_none then invalid_arg "Placer.Eval: move already pending";
    if i = j then invalid_arg "Placer.Eval: swap of a cell with itself";
    (* the pair term appears in both rows; subtract one copy *)
    let wij =
      Float.min t.bx1.(i) t.bx1.(j) -. Float.max t.bx0.(i) t.bx0.(j)
    and hij =
      Float.min t.by1.(i) t.by1.(j) -. Float.max t.by0.(i) t.by0.(j)
    in
    let pair0 = if wij > 0.0 && hij > 0.0 then wij *. hij else 0.0 in
    let ov0 = row_overlap t i +. row_overlap t j -. pair0 in
    let wl0 = union_wl t i j in
    let a0 = t.bbox_area in
    let sv0 = t.sym_v in
    t.pend <- P_swap;
    t.pi <- i;
    t.pj <- j;
    t.pi_x <- t.sx.(i);
    t.pi_y <- t.sy.(i);
    t.pj_x <- t.sx.(j);
    t.pj_y <- t.sy.(j);
    t.sx.(i) <- t.pj_x;
    t.sy.(i) <- t.pj_y;
    t.sx.(j) <- t.pi_x;
    t.sy.(j) <- t.pi_y;
    refresh_cell t i;
    refresh_cell t j;
    union_nets t i j refresh_net;
    refresh_bbox t;
    if t.tb.t_sym_member.(i) || t.tb.t_sym_member.(j) then refresh_sym t;
    let wij =
      Float.min t.bx1.(i) t.bx1.(j) -. Float.max t.bx0.(i) t.bx0.(j)
    and hij =
      Float.min t.by1.(i) t.by1.(j) -. Float.max t.by0.(i) t.by0.(j)
    in
    let pair1 = if wij > 0.0 && hij > 0.0 then wij *. hij else 0.0 in
    let ov1 = row_overlap t i +. row_overlap t j -. pair1 in
    let wl1 = union_wl t i j in
    weighted t ~d_overlap:(ov1 -. ov0) ~d_area:(t.bbox_area -. a0)
      ~d_wire:(wl1 -. wl0) ~d_sym:(t.sym_v -. sv0)

  let commit t = t.pend <- P_none

  (* undo the pending move: restore the sites and re-derive exactly the
     entities the move refreshed — derived state is a pure function of the
     sites, so this restores it bit-for-bit *)
  let revert t =
    match t.pend with
    | P_none -> ()
    | P_one ->
      let i = t.pi in
      t.var_.(i) <- t.pi_var;
      t.ori.(i) <- t.pi_ori;
      t.sx.(i) <- t.pi_x;
      t.sy.(i) <- t.pi_y;
      refresh_cell t i;
      let nets = t.tb.t_item_nets.(i) in
      for k = 0 to Array.length nets - 1 do
        refresh_net t nets.(k)
      done;
      refresh_bbox t;
      if t.tb.t_sym_member.(i) then refresh_sym t;
      t.pend <- P_none
    | P_swap ->
      let i = t.pi and j = t.pj in
      t.sx.(i) <- t.pi_x;
      t.sy.(i) <- t.pi_y;
      t.sx.(j) <- t.pj_x;
      t.sy.(j) <- t.pj_y;
      refresh_cell t i;
      refresh_cell t j;
      union_nets t i j refresh_net;
      refresh_bbox t;
      if t.tb.t_sym_member.(i) || t.tb.t_sym_member.(j) then refresh_sym t;
      t.pend <- P_none

  let remember t =
    Array.blit t.var_ 0 t.s_var 0 t.tb.t_n;
    Array.blit t.ori 0 t.s_ori 0 t.tb.t_n;
    Array.blit t.sx 0 t.s_x 0 t.tb.t_n;
    Array.blit t.sy 0 t.s_y 0 t.tb.t_n

  let rebuild t =
    for i = 0 to t.tb.t_n - 1 do
      refresh_cell t i
    done;
    for g = 0 to t.tb.t_n_nets - 1 do
      refresh_net t g
    done;
    refresh_bbox t;
    refresh_sym t

  let recall t =
    Array.blit t.s_var 0 t.var_ 0 t.tb.t_n;
    Array.blit t.s_ori 0 t.ori 0 t.tb.t_n;
    Array.blit t.s_x 0 t.sx 0 t.tb.t_n;
    Array.blit t.s_y 0 t.sy 0 t.tb.t_n;
    t.pend <- P_none;
    rebuild t

  let of_tables tb (placement : placement) =
    let n = tb.t_n in
    if Array.length placement <> n then
      invalid_arg "Placer.Eval: placement length mismatch";
    let t =
      { tb;
        var_ = Array.map (fun s -> s.variant) placement;
        ori = Array.map (fun s -> orient_index s.orient) placement;
        sx = Array.map (fun s -> s.x) placement;
        sy = Array.map (fun s -> s.y) placement;
        fx0 = Array.make n 0.0; fy0 = Array.make n 0.0;
        fx1 = Array.make n 0.0; fy1 = Array.make n 0.0;
        bx0 = Array.make n 0.0; by0 = Array.make n 0.0;
        bx1 = Array.make n 0.0; by1 = Array.make n 0.0;
        nx0 = Array.make tb.t_n_nets 0.0; ny0 = Array.make tb.t_n_nets 0.0;
        nx1 = Array.make tb.t_n_nets 0.0; ny1 = Array.make tb.t_n_nets 0.0;
        ncount = Array.make tb.t_n_nets 0;
        bbox_area = 0.0;
        sym_v = 0.0;
        scr = { sc_x0 = 0.0; sc_y0 = 0.0; sc_x1 = 0.0; sc_y1 = 0.0; sc_acc = 0.0 };
        icnt = 0;
        pend = P_none;
        pi = 0; pj = 0;
        pi_var = 0; pi_ori = 0;
        pi_x = 0.0; pi_y = 0.0; pj_x = 0.0; pj_y = 0.0;
        s_var = Array.make n 0; s_ori = Array.make n 0;
        s_x = Array.make n 0.0; s_y = Array.make n 0.0 }
    in
    rebuild t;
    remember t;
    t

  let create ?(rules = Rules.generic_07um) ?(weights = default_weights) items sym
      placement =
    of_tables (make_tables ~rules ~weights items sym) placement

  let set_site t i (s : site) =
    set_site_raw t i ~variant:s.variant ~ori:(orient_index s.orient) ~x:s.x ~y:s.y

  let swap_positions t i j = swap_raw t i j

  let placement t =
    Array.init t.tb.t_n (fun i ->
        { variant = t.var_.(i);
          orient = Geom.all_orientations.(t.ori.(i));
          x = t.sx.(i);
          y = t.sy.(i) })
end

let cost_parts ?rules items sym placement =
  Eval.cost_parts (Eval.create ?rules items sym placement)

let cost ?rules ?weights items sym placement =
  Eval.cost (Eval.create ?rules ?weights items sym placement)

let wirelength items placement =
  let _, _, wl, _ = cost_parts items no_symmetry placement in
  wl

let overlap_free ?rules:_ items placement =
  (* true geometric overlap, without the routing halo the cost uses *)
  let n = Array.length items in
  let boxes = Array.init n (fun i -> footprint items.(i) placement.(i)) in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Geom.intersection_area boxes.(i) boxes.(j) > 1e-18 then ok := false
    done
  done;
  !ok

let grid = 0.35e-6 (* placement grid: one lambda *)

let snap v = Float.round (v /. grid) *. grid

let place ?(rules = Rules.generic_07um) ?(weights = default_weights) ?schedule ?(seed = 17)
    ?(restarts = 1) ?jobs items sym =
  let n = Array.length items in
  let rng = Rng.create seed in
  (* initial spread: cells side by side with spacing *)
  let initial =
    let x = ref 0.0 in
    Array.init n (fun i ->
        let cell = items.(i).variants.(0) in
        let site = { variant = 0; orient = Geom.R0; x = !x; y = 0.0 } in
        x := !x +. cell.Cell.cw +. (4.0 *. rules.Rules.min_spacing Geom.Ndiff);
        site)
  in
  let span () =
    let boxes = Array.to_list (Array.mapi (fun i s -> footprint items.(i) s) initial) in
    match Geom.bbox boxes with
    | Some bb -> Float.max (Geom.width bb) (Geom.height bb)
    | None -> 1e-5
  in
  let full_span = span () in
  let tables = Eval.make_tables ~rules ~weights items sym in
  (* the same move mix and RNG draw sequence as the old copying neighbor
     (cell, then move choice, then the branch's own draws), but applied in
     place through the incremental evaluator: a move costs O(n) flops
     instead of an O(n^2) geometry rebuild, and allocates nothing *)
  let propose st rng ~temp01 =
    let i = Rng.int rng n in
    let range = full_span *. (0.05 +. (0.5 *. temp01)) in
    let translate () =
      let x = snap (st.Eval.sx.(i) +. Rng.uniform rng (-.range) range) in
      let y = snap (st.Eval.sy.(i) +. Rng.uniform rng (-.range) range) in
      Eval.set_site_raw st i ~variant:st.Eval.var_.(i) ~ori:st.Eval.ori.(i) ~x ~y
    in
    let choice = Rng.int rng 10 in
    if choice < 5 then translate ()
    else if choice < 7 then
      (* reorient *)
      Eval.set_site_raw st i ~variant:st.Eval.var_.(i)
        ~ori:(orient_index (Rng.choice rng Geom.all_orientations))
        ~x:st.Eval.sx.(i) ~y:st.Eval.sy.(i)
    else if choice < 8 && n > 1 then begin
      (* swap positions *)
      let j = (i + 1 + Rng.int rng (n - 1)) mod n in
      Eval.swap_raw st i j
    end
    else begin
      (* change variant (refold) *)
      let variants = Array.length items.(i).variants in
      if variants > 1 then
        Eval.set_site_raw st i ~variant:(Rng.int rng variants) ~ori:st.Eval.ori.(i)
          ~x:st.Eval.sx.(i) ~y:st.Eval.sy.(i)
      else translate ()
    end
  in
  let initial_cost = Eval.cost (Eval.of_tables tables initial) in
  let schedule =
    match schedule with
    | Some s -> s
    | None ->
      { Mixsyn_opt.Anneal.t_start = 0.5 *. Float.max initial_cost 1.0;
        t_end = 1e-6 *. Float.max initial_cost 1.0;
        cooling = 0.93;
        moves_per_stage = 60 * n }
  in
  let moves =
    { Mixsyn_opt.Anneal.create = (fun () -> Eval.of_tables tables initial);
      full_cost = Eval.cost;
      propose;
      commit = Eval.commit;
      revert = Eval.revert;
      remember = Eval.remember;
      recall = Eval.recall }
  in
  let outcome =
    Mixsyn_opt.Anneal.minimize_moves_multistart ~schedule ?jobs ~restarts ~rng moves
  in
  Eval.placement outcome.Mixsyn_opt.Anneal.best
